// Plant monitor: the paper's motivating scenario (Section 1) on the live
// middleware binding. An industrial plant monitoring system processes
// periodic sensor scans on three processors; when readings meet hazard
// criteria, aperiodic alerts must traverse multiple processors within an
// end-to-end deadline to put the process into a fail-safe mode.
//
// The example deploys a real cluster in this process — task manager plus
// three application nodes on TCP loopback, deployed through the
// configuration engine, XML plan, and plan launcher — then drives it with
// arrivals for a few seconds and reports what the middleware did.
//
//	go run ./examples/plantmonitor
package main

import (
	"fmt"
	"log"
	"time"

	rtmw "repro"
)

const workloadJSON = `{
  "name": "plant-monitor",
  "processors": 3,
  "tasks": [
    {
      "id": "pressure-scan",
      "kind": "periodic",
      "period": "120ms",
      "deadline": "120ms",
      "subtasks": [
        {"exec": "8ms", "processor": 0, "replicas": [2]},
        {"exec": "5ms", "processor": 1}
      ]
    },
    {
      "id": "flow-scan",
      "kind": "periodic",
      "period": "150ms",
      "deadline": "150ms",
      "subtasks": [
        {"exec": "7ms", "processor": 1, "replicas": [2]}
      ]
    },
    {
      "id": "hazard-alert",
      "kind": "aperiodic",
      "deadline": "90ms",
      "meanInterarrival": "250ms",
      "subtasks": [
        {"exec": "6ms", "processor": 0, "replicas": [2]},
        {"exec": "4ms", "processor": 1},
        {"exec": "3ms", "processor": 2}
      ]
    },
    {
      "id": "operator-query",
      "kind": "aperiodic",
      "deadline": "200ms",
      "meanInterarrival": "400ms",
      "subtasks": [
        {"exec": "10ms", "processor": 2}
      ]
    }
  ]
}`

func main() {
	w, err := rtmw.ParseWorkload([]byte(workloadJSON))
	if err != nil {
		log.Fatal(err)
	}

	// Alerts tolerate job skipping under overload (a skipped alert re-fires
	// while the hazard persists), components are replicated for load
	// distribution, scans are stateless, and per-job overhead is acceptable.
	res := rtmw.MapAnswers(rtmw.Answers{
		JobSkipping:      true,
		Replication:      true,
		StatePersistence: false,
		Overhead:         rtmw.TolerancePerJob,
	})
	fmt.Printf("deploying plant monitor with configuration %s\n", res.Config)

	c, err := rtmw.StartLiveBinding(rtmw.ClusterOptions{
		Workload: w,
		Config:   res.Config,
		Seed:     2026,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	fmt.Printf("cluster up: manager %s + %d application nodes\n", c.Manager.Addr, len(c.Apps))
	fmt.Printf("deployment plan %q: %d component instances, %d event routes\n",
		c.Plan.Name, len(c.Plan.Instances), len(c.Plan.Connections))

	if err := c.StartDrivers(1.0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("driving plant workload for 3 seconds...")
	time.Sleep(1500 * time.Millisecond)

	// Operating conditions changed: the plant now needs per-task state
	// persistence, so re-balancing jobs of a running task is off the table.
	// Reconfigure the RUNNING cluster — quiesce, swap, resume — without
	// dropping any in-flight scan or alert.
	res2 := rtmw.MapAnswers(rtmw.Answers{
		JobSkipping:      true,
		Replication:      true,
		StatePersistence: true,
		Overhead:         rtmw.TolerancePerJob,
	})
	rep, err := c.Reconfigure(res2.Config)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hot-reconfigured %s -> %s (epoch %d): quiesced %v, %d arrivals deferred, %d jobs in flight\n",
		rep.From, rep.To, rep.Epoch, rep.Quiesce.Round(time.Microsecond), rep.Deferred, rep.InFlightBefore)

	time.Sleep(1500 * time.Millisecond)
	c.StopDrivers()
	c.Drain(2 * time.Second)
	time.Sleep(100 * time.Millisecond)

	var arrived, released, skipped, relocated int64
	for i := range c.Apps {
		te, err := c.TE(i)
		if err != nil {
			log.Fatal(err)
		}
		s := te.StatsSnapshot()
		arrived += s.Arrived
		released += s.Released
		skipped += s.Skipped
		relocated += s.Relocated
	}
	ac, err := c.AC()
	if err != nil {
		log.Fatal(err)
	}
	ctrl := ac.Controller()

	fmt.Printf("\nafter 3 seconds of plant operation:\n")
	fmt.Printf("  arrivals:        %d\n", arrived)
	fmt.Printf("  released:        %d (re-allocated to replicas: %d)\n", released, relocated)
	fmt.Printf("  skipped:         %d\n", skipped)
	fmt.Printf("  completed:       %d (mean response %v)\n",
		c.Collector().Completed(), c.Collector().MeanResponse().Round(time.Microsecond))
	fmt.Printf("  admission tests: %d (mean %v each)\n",
		ctrl.Timing().Test.Count(), ctrl.Timing().Test.Mean().Round(time.Nanosecond))
	fmt.Printf("  idle resets:     %d contributions returned to the ledger\n", ctrl.Stats.IdleResets)
	fmt.Printf("  synthetic utilization now: %v\n", roundAll(ctrl.Ledger().Utils()))
}

// roundAll trims the utilization vector for printing.
func roundAll(us []float64) []float64 {
	out := make([]float64, len(us))
	for i, u := range us {
		out[i] = float64(int(u*1000+0.5)) / 1000
	}
	return out
}
