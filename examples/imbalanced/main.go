// Imbalanced: reproduces the dynamics behind the paper's Figure 6 at small
// scale. Three processors carry all the load (synthetic utilization 0.7
// each) while two spare processors host only replicas — the "blockage in a
// fluid flow valve" scenario where a subset of processors saturates. The
// example runs the same workload under No-LB, LB-per-task and LB-per-job
// and shows load balancing recovering the accepted utilization ratio.
//
//	go run ./examples/imbalanced
package main

import (
	"fmt"
	"log"
	"time"

	rtmw "repro"
)

func main() {
	tasks, err := rtmw.GenerateWorkload(rtmw.Figure6Params(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("imbalanced workload: all subtasks homed on processors 0-2 at utilization 0.7,")
	fmt.Println("replicas on spare processors 3-4 (paper Section 7.2)")
	fmt.Println()

	for _, lb := range []rtmw.Strategy{rtmw.StrategyNone, rtmw.StrategyPerTask, rtmw.StrategyPerJob} {
		cfg := rtmw.Config{AC: rtmw.StrategyPerJob, IR: rtmw.StrategyPerJob, LB: lb}
		sim, err := rtmw.NewSimBinding(rtmw.SimConfig{
			Strategies: cfg,
			NumProcs:   5,
			Horizon:    5 * time.Minute,
			Seed:       1,
		}, tasks)
		if err != nil {
			log.Fatal(err)
		}
		m := sim.Run()
		ctrl := sim.Controller()
		fmt.Printf("%-6s accepted utilization ratio %.3f  (released %4d / %4d jobs, %3d re-allocations)\n",
			cfg, m.AcceptedUtilizationRatio(), m.Total.Released, m.Total.Arrived, ctrl.Stats.Relocations)
	}

	fmt.Println()
	fmt.Println("load balancing moves work to the spare replicas: per-task LB recovers most")
	fmt.Println("of the lost utilization, and per-job LB adds little on top — the paper's")
	fmt.Println("Figure 6 finding.")
}
