// Quickstart: define a small mixed periodic/aperiodic workload, pick a
// strategy combination through the configuration engine, and simulate five
// minutes of middleware operation through the open-world Binding surface —
// a watch stream observing typed lifecycle events, a tenant task joining
// and leaving mid-run, and a live strategy swap halfway through.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	rtmw "repro"
)

func main() {
	// A two-processor system: a periodic control flow crossing both
	// processors (with a replica for its first stage) and an aperiodic
	// operator command with a tight end-to-end deadline.
	tasks := []*rtmw.Task{
		{
			ID:       "control-flow",
			Kind:     rtmw.Periodic,
			Period:   200 * time.Millisecond,
			Deadline: 200 * time.Millisecond,
			Subtasks: []rtmw.Subtask{
				{Index: 0, Exec: 30 * time.Millisecond, Processor: 0, Replicas: []int{1}},
				{Index: 1, Exec: 20 * time.Millisecond, Processor: 1},
			},
		},
		{
			ID:               "operator-command",
			Kind:             rtmw.Aperiodic,
			Deadline:         100 * time.Millisecond,
			MeanInterarrival: 400 * time.Millisecond,
			Subtasks: []rtmw.Subtask{
				{Index: 0, Exec: 25 * time.Millisecond, Processor: 1, Replicas: []int{0}},
			},
		},
	}

	// Ask the configuration engine for a strategy combination: commands may
	// be skipped under overload, components are replicated, no state is
	// carried between jobs, and we accept per-job overhead.
	res := rtmw.MapAnswers(rtmw.Answers{
		JobSkipping:      true,
		Replication:      true,
		StatePersistence: false,
		Overhead:         rtmw.TolerancePerJob,
	})
	fmt.Printf("configuration engine selected %s:\n", res.Config)
	for _, note := range res.Notes {
		fmt.Printf("  - %s\n", note)
	}

	// Build the simulation binding. It shares the Binding surface (Submit /
	// Snapshot / Reconfigure / Stop) with the live cluster binding.
	sim, err := rtmw.NewSimBinding(rtmw.SimConfig{
		Strategies: res.Config,
		NumProcs:   2,
		Horizon:    5 * time.Minute,
		Seed:       42,
	}, tasks)
	if err != nil {
		log.Fatal(err)
	}

	// Watch the run as an ordered stream of typed lifecycle events (the
	// open-world replacement for snapshot polling). Here: only structural
	// and configuration changes plus deadline misses.
	watch, err := sim.Watch(rtmw.WatchOptions{Kinds: []rtmw.WatchKind{
		rtmw.WatchTaskAdded, rtmw.WatchTaskRemoved, rtmw.WatchReconfigured, rtmw.WatchDeadlineMiss,
	}})
	if err != nil {
		log.Fatal(err)
	}
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		for ev := range watch.Events() {
			fmt.Printf("  watch #%d at %v: %v %s\n", ev.Seq, ev.At, ev.Kind, ev.Task)
		}
	}()

	// Open the world mid-run: a diagnostics tenant joins at one minute
	// (EDMS priorities re-assign over the union and its arrivals are
	// admitted against the AUB ledger), bursts a batch of typed-outcome
	// submissions, and leaves at four minutes — withdrawing its remaining
	// ledger contributions while its in-flight jobs still complete.
	tenant := []*rtmw.Task{{
		ID:               "diagnostics",
		Kind:             rtmw.Aperiodic,
		Deadline:         120 * time.Millisecond,
		MeanInterarrival: 500 * time.Millisecond,
		Subtasks: []rtmw.Subtask{
			{Index: 0, Exec: 10 * time.Millisecond, Processor: 0},
		},
	}}
	if err := sim.At(60*time.Second, func() {
		if err := sim.AddTasks(tenant); err != nil {
			log.Fatal(err)
		}
		adms, err := sim.SubmitBatch([]string{"diagnostics", "diagnostics"})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  tenant joined; burst admissions: job %d %s, job %d %s\n",
			adms[0].Job, adms[0].Outcome, adms[1].Job, adms[1].Outcome)
	}); err != nil {
		log.Fatal(err)
	}
	if err := sim.At(240*time.Second, func() {
		if err := sim.RemoveTasks([]string{"diagnostics"}); err != nil {
			log.Fatal(err)
		}
	}); err != nil {
		log.Fatal(err)
	}

	// Hot-reconfigure mid-run: at 2.5 simulated minutes the system swaps to
	// the minimal static configuration without dropping a single admitted
	// job — the paper's reconfigurability claim as a first-class API.
	minimal, err := rtmw.ParseConfig("T_N_N")
	if err != nil {
		log.Fatal(err)
	}
	swap, err := sim.ScheduleReconfig(150*time.Second, minimal)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nrunning 5 simulated minutes with churn:")
	metrics := sim.Run()
	if err := sim.Stop(); err != nil {
		log.Fatal(err)
	}
	<-watchDone
	fmt.Printf("\nreconfigured %s -> %s at %v: quiesced %v, %d arrivals deferred, %d jobs in flight preserved\n",
		swap.From, swap.To, swap.At, swap.Quiesce, swap.Deferred, swap.InFlightBefore)
	fmt.Printf("tenant accounting: %+v\n", metrics.Task("diagnostics"))

	fmt.Printf("\n5 simulated minutes:\n")
	fmt.Printf("  jobs arrived:    %d (periodic %d, aperiodic %d)\n",
		metrics.Total.Arrived, metrics.Periodic.Arrived, metrics.Aperiodic.Arrived)
	fmt.Printf("  jobs released:   %d\n", metrics.Total.Released)
	fmt.Printf("  jobs skipped:    %d\n", metrics.Total.Skipped)
	fmt.Printf("  deadline misses: %d of %d completed\n", metrics.Total.Missed, metrics.Total.Completed)
	fmt.Printf("  accepted utilization ratio: %.3f\n", metrics.AcceptedUtilizationRatio())
	fmt.Printf("  mean end-to-end response:   %v (max %v)\n",
		metrics.Total.MeanResponse().Round(time.Microsecond),
		metrics.Total.MaxResponse.Round(time.Microsecond))
}
