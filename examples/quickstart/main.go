// Quickstart: define a small mixed periodic/aperiodic workload, pick a
// strategy combination through the configuration engine, and simulate five
// minutes of middleware operation through the unified Binding surface —
// including a live strategy swap halfway through the run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	rtmw "repro"
)

func main() {
	// A two-processor system: a periodic control flow crossing both
	// processors (with a replica for its first stage) and an aperiodic
	// operator command with a tight end-to-end deadline.
	tasks := []*rtmw.Task{
		{
			ID:       "control-flow",
			Kind:     rtmw.Periodic,
			Period:   200 * time.Millisecond,
			Deadline: 200 * time.Millisecond,
			Subtasks: []rtmw.Subtask{
				{Index: 0, Exec: 30 * time.Millisecond, Processor: 0, Replicas: []int{1}},
				{Index: 1, Exec: 20 * time.Millisecond, Processor: 1},
			},
		},
		{
			ID:               "operator-command",
			Kind:             rtmw.Aperiodic,
			Deadline:         100 * time.Millisecond,
			MeanInterarrival: 400 * time.Millisecond,
			Subtasks: []rtmw.Subtask{
				{Index: 0, Exec: 25 * time.Millisecond, Processor: 1, Replicas: []int{0}},
			},
		},
	}

	// Ask the configuration engine for a strategy combination: commands may
	// be skipped under overload, components are replicated, no state is
	// carried between jobs, and we accept per-job overhead.
	res := rtmw.MapAnswers(rtmw.Answers{
		JobSkipping:      true,
		Replication:      true,
		StatePersistence: false,
		Overhead:         rtmw.TolerancePerJob,
	})
	fmt.Printf("configuration engine selected %s:\n", res.Config)
	for _, note := range res.Notes {
		fmt.Printf("  - %s\n", note)
	}

	// Build the simulation binding. It shares the Binding surface (Submit /
	// Snapshot / Reconfigure / Stop) with the live cluster binding.
	sim, err := rtmw.NewSimBinding(rtmw.SimConfig{
		Strategies: res.Config,
		NumProcs:   2,
		Horizon:    5 * time.Minute,
		Seed:       42,
	}, tasks)
	if err != nil {
		log.Fatal(err)
	}

	// Hot-reconfigure mid-run: at 2.5 simulated minutes the system swaps to
	// the minimal static configuration without dropping a single admitted
	// job — the paper's reconfigurability claim as a first-class API.
	minimal, err := rtmw.ParseConfig("T_N_N")
	if err != nil {
		log.Fatal(err)
	}
	swap, err := sim.ScheduleReconfig(150*time.Second, minimal)
	if err != nil {
		log.Fatal(err)
	}

	metrics := sim.Run()
	fmt.Printf("\nreconfigured %s -> %s at %v: quiesced %v, %d arrivals deferred, %d jobs in flight preserved\n",
		swap.From, swap.To, swap.At, swap.Quiesce, swap.Deferred, swap.InFlightBefore)

	fmt.Printf("\n5 simulated minutes:\n")
	fmt.Printf("  jobs arrived:    %d (periodic %d, aperiodic %d)\n",
		metrics.Total.Arrived, metrics.Periodic.Arrived, metrics.Aperiodic.Arrived)
	fmt.Printf("  jobs released:   %d\n", metrics.Total.Released)
	fmt.Printf("  jobs skipped:    %d\n", metrics.Total.Skipped)
	fmt.Printf("  deadline misses: %d of %d completed\n", metrics.Total.Missed, metrics.Total.Completed)
	fmt.Printf("  accepted utilization ratio: %.3f\n", metrics.AcceptedUtilizationRatio())
	fmt.Printf("  mean end-to-end response:   %v (max %v)\n",
		metrics.Total.MeanResponse().Round(time.Microsecond),
		metrics.Total.MaxResponse.Round(time.Microsecond))
}
