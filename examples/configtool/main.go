// Configtool: programmatic use of the front-end configuration engine
// (paper Section 6). It walks several application profiles through the four
// questions, shows the Table 1 mapping with its reasoning, demonstrates the
// feasibility check rejecting the contradictory AC-per-task/IR-per-job
// configuration, and prints the generated XML deployment plan for one
// profile.
//
//	go run ./examples/configtool
package main

import (
	"fmt"
	"log"

	rtmw "repro"
)

func main() {
	fmt.Println(rtmw.RenderTable1())

	profiles := []struct {
		name    string
		answers rtmw.Answers
	}{
		{
			name: "video streaming (loss tolerant, stateless, replicated)",
			answers: rtmw.Answers{
				JobSkipping: true, Replication: true,
				StatePersistence: false, Overhead: rtmw.TolerancePerJob,
			},
		},
		{
			name: "integral (PID) process control (no skipping, stateful)",
			answers: rtmw.Answers{
				JobSkipping: false, Replication: true,
				StatePersistence: true, Overhead: rtmw.TolerancePerTask,
			},
		},
		{
			name: "fixed sensors, no replicas, zero overhead budget",
			answers: rtmw.Answers{
				JobSkipping: false, Replication: false,
				StatePersistence: false, Overhead: rtmw.ToleranceNone,
			},
		},
		{
			name: "proportional control (stateless) with per-job budget",
			answers: rtmw.Answers{
				JobSkipping: false, Replication: true,
				StatePersistence: false, Overhead: rtmw.TolerancePerJob,
			},
		},
	}
	for _, p := range profiles {
		res := rtmw.MapAnswers(p.answers)
		fmt.Printf("%s\n  -> %s\n", p.name, res.Config)
		for _, note := range res.Notes {
			fmt.Printf("     %s\n", note)
		}
		fmt.Println()
	}

	// The feasibility check: an explicitly chosen contradictory tuple is
	// rejected rather than deployed.
	if _, err := rtmw.ParseConfig("T_J_N"); err != nil {
		fmt.Printf("feasibility check: T_J_N rejected: %v\n\n", err)
	}

	// Generate the deployment plan for the first profile over a 2-processor
	// workload, as rtmw-config would.
	w, err := rtmw.ParseWorkload([]byte(`{
	  "name": "demo",
	  "processors": 2,
	  "tasks": [
	    {"id": "stream", "kind": "periodic", "period": "100ms", "deadline": "100ms",
	     "subtasks": [
	       {"exec": "10ms", "processor": 0, "replicas": [1]},
	       {"exec": "5ms", "processor": 1, "replicas": [0]}
	     ]},
	    {"id": "viewer-join", "kind": "aperiodic", "deadline": "80ms",
	     "subtasks": [{"exec": "8ms", "processor": 1}]}
	  ]
	}`))
	if err != nil {
		log.Fatal(err)
	}
	plan, err := rtmw.GeneratePlan("demo-plan", w, rtmw.MapAnswers(profiles[0].answers).Config,
		rtmw.DeploymentNode{Name: "manager", Address: "127.0.0.1:7000", Processor: -1},
		[]rtmw.DeploymentNode{
			{Name: "app0", Address: "127.0.0.1:7001", Processor: 0},
			{Name: "app1", Address: "127.0.0.1:7002", Processor: 1},
		})
	if err != nil {
		log.Fatal(err)
	}
	data, err := plan.Encode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated deployment plan (%d instances, %d connections):\n\n%s\n",
		len(plan.Instances), len(plan.Connections), data)

	// Reconfiguration deltas: instead of regenerating and redeploying a
	// full plan, the engine computes the minimal transaction that moves the
	// RUNNING deployment to a new combination (rtmw-config's reconfigure
	// subcommand executes it against live nodes).
	target, err := rtmw.ParseConfig("J_T_T")
	if err != nil {
		log.Fatal(err)
	}
	delta, err := rtmw.ReconfigDelta(plan, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconfiguration delta %s -> %s: %d instance updates, %d new event routes\n",
		delta.FromConfig, delta.ToConfig, len(delta.Updates), len(delta.Connections))
	for _, up := range delta.Updates {
		fmt.Printf("  update %-12s on %-8s %v\n", up.ID, up.Node, up.Attrs)
	}
}
