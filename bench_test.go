package rtmw_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	rtmw "repro"
	"repro/internal/core"
	"repro/internal/eventchan"
	"repro/internal/experiments"
	"repro/internal/orb"
	"repro/internal/sched"
	"repro/internal/workload"
)

// --- Figure 5: accepted utilization ratio, random balanced workloads ---
//
// Each sub-benchmark runs one strategy combination over the paper's full
// parameters (10 task sets, 5 simulated minutes). The reported wall time is
// the cost of regenerating that figure series.

func BenchmarkFigure5(b *testing.B) {
	for _, combo := range rtmw.AllCombinations() {
		combo := combo
		b.Run(combo.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := rtmw.RunFigure5(rtmw.FigureOptions{
					Sets:    10,
					Horizon: 5 * time.Minute,
					Combos:  []rtmw.Config{combo},
				})
				if err != nil {
					b.Fatal(err)
				}
				if results[0].Mean <= 0 {
					b.Fatalf("combo %s produced zero ratio", combo)
				}
			}
		})
	}
}

// --- Figure 6: accepted utilization ratio, imbalanced workloads ---

func BenchmarkFigure6(b *testing.B) {
	for _, combo := range rtmw.AllCombinations() {
		combo := combo
		b.Run(combo.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := rtmw.RunFigure6(rtmw.FigureOptions{
					Sets:    10,
					Horizon: 5 * time.Minute,
					Combos:  []rtmw.Config{combo},
				})
				if err != nil {
					b.Fatal(err)
				}
				if results[0].Mean <= 0 {
					b.Fatalf("combo %s produced zero ratio", combo)
				}
			}
		})
	}
}

// --- Table 1 / Figure 2: the configuration engine's strategy mapping ---

func BenchmarkTable1Mapping(b *testing.B) {
	bools := []bool{false, true}
	tols := []rtmw.Tolerance{rtmw.ToleranceNone, rtmw.TolerancePerTask, rtmw.TolerancePerJob}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, js := range bools {
			for _, rep := range bools {
				for _, sp := range bools {
					for _, tol := range tols {
						r := rtmw.MapAnswers(rtmw.Answers{
							JobSkipping: js, Replication: rep,
							StatePersistence: sp, Overhead: tol,
						})
						if err := r.Config.Validate(); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		}
	}
}

// --- Figure 7/8 primitive operations ---
//
// These isolate the manager-side computations the paper's overhead table
// decomposes (operations 3, 4 and 8) and the transport costs (operation 2).
// The full composed Figure 8 table is produced by `rtmw-bench overhead`,
// which runs the live cluster.

// benchController builds a controller pre-loaded with a Section 7.3-style
// task set.
func benchController(b *testing.B, cfg core.Config) (*core.Controller, []*sched.Task) {
	b.Helper()
	tasks, err := workload.Generate(workload.OverheadParams(0))
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := core.NewController(cfg, workload.MaxProc(tasks)+1)
	if err != nil {
		b.Fatal(err)
	}
	now := time.Duration(0)
	for _, t := range tasks {
		ctrl.Arrive(t, 0, now)
	}
	return ctrl, tasks
}

// BenchmarkAdmissionTest measures operation 4: one AUB admission test
// against a populated ledger.
func BenchmarkAdmissionTest(b *testing.B) {
	ctrl, tasks := benchController(b, core.Config{
		AC: core.StrategyPerJob, IR: core.StrategyNone, LB: core.StrategyNone,
	})
	placement := make([]sched.PlacedStage, len(tasks[0].Subtasks))
	for i, st := range tasks[0].Subtasks {
		placement[i] = sched.PlacedStage{Stage: i, Proc: st.Processor, Util: tasks[0].StageUtil(i)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Ledger().Admissible(placement)
	}
}

// BenchmarkAdmissionParallel measures aggregate admission throughput on the
// sharded ledger: every worker runs a TestAndAdd + WithdrawJob churn loop on
// its own processor (single-shard candidates, the steady-state fast path),
// so with more shards than contending workers the shard locks never collide.
// Sub-benchmarks sweep the shard count; run with -cpu 1,4 to sweep the
// goroutine axis. shards=1 is the serial admission plane — its ratio to the
// multi-shard rows at -cpu 4 is the sharding speedup. submits/sec is the
// aggregate throughput metric; allocs/op must stay 0 on the steady state.
func BenchmarkAdmissionParallel(b *testing.B) {
	const procs = 8
	// Pre-build per-worker state outside the timed region: RunParallel
	// spawns at most GOMAXPROCS workers.
	type workerState struct {
		task      string
		placement []sched.PlacedStage
	}
	states := make([]workerState, 64)
	for w := range states {
		states[w] = workerState{
			task:      fmt.Sprintf("par-%d", w),
			placement: []sched.PlacedStage{{Stage: 0, Proc: w % procs, Util: 0.001}},
		}
	}
	for _, shards := range []int{1, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			ledger := sched.NewShardedLedger(procs, shards)
			var worker atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				st := &states[int(worker.Add(1)-1)%len(states)]
				job := int64(0)
				for pb.Next() {
					ref := sched.JobRef{Task: st.task, Job: job}
					job++
					ok, err := ledger.TestAndAdd(ref, sched.Aperiodic, st.placement, false, time.Hour)
					if err != nil || !ok {
						b.Errorf("admission failed: ok=%v err=%v", ok, err)
						return
					}
					if n := ledger.WithdrawJob(ref); n != 1 {
						b.Errorf("withdraw removed %d contributions", n)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "submits/sec")
		})
	}
}

// BenchmarkLocationPlan measures operation 3: the load balancer's greedy
// lowest-utilization placement.
func BenchmarkLocationPlan(b *testing.B) {
	ctrl, tasks := benchController(b, core.Config{
		AC: core.StrategyPerJob, IR: core.StrategyNone, LB: core.StrategyPerJob,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Location(tasks[i%len(tasks)], int64(i))
	}
}

// BenchmarkIdleResetUpdate measures operation 8: applying an idle-resetting
// report to the synthetic utilization ledger.
func BenchmarkIdleResetUpdate(b *testing.B) {
	cfg := core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerJob, LB: core.StrategyNone}
	tasks, err := workload.Generate(workload.OverheadParams(0))
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := core.NewController(cfg, workload.MaxProc(tasks)+1)
	if err != nil {
		b.Fatal(err)
	}
	t0 := tasks[0]
	placement := []sched.PlacedStage{{Stage: 0, Proc: t0.Subtasks[0].Processor, Util: t0.StageUtil(0)}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := sched.JobRef{Task: t0.ID, Job: int64(i)}
		if d := ctrl.Arrive(t0, int64(i), time.Duration(i)); !d.Accept {
			b.Fatal("benchmark job rejected")
		}
		ctrl.IdleReset([]sched.EntryRef{{Ref: ref, Stage: 0, Proc: placement[0].Proc}})
		ctrl.ExpireJob(ref)
	}
}

// BenchmarkORBInvoke measures a two-way invocation round trip over TCP
// loopback (the transport under operation 2).
func BenchmarkORBInvoke(b *testing.B) {
	server := orb.New("bench-server")
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer server.Shutdown()
	server.RegisterServant("echo", func(op string, arg []byte) ([]byte, error) { return arg, nil })
	client := orb.New("bench-client")
	defer client.Shutdown()
	payload := []byte("ping")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Invoke(ctx, addr.String(), "echo", "op", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventChannelLocal measures a local event push with one
// subscriber.
func BenchmarkEventChannelLocal(b *testing.B) {
	o := orb.New("bench-local")
	defer o.Shutdown()
	ch := eventchan.New("bench-local", o)
	n := 0
	ch.Subscribe("E", func(eventchan.Event) { n++ })
	ev := eventchan.Event{Type: "E", Payload: []byte("x")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ch.Push(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventChannelFederated measures a one-way cross-node event push
// (operation 2's one-way half), including gob framing and the TCP hop.
func BenchmarkEventChannelFederated(b *testing.B) {
	producerORB := orb.New("bench-prod")
	defer producerORB.Shutdown()
	consumerORB := orb.New("bench-cons")
	addr, err := consumerORB.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer consumerORB.Shutdown()

	producer := eventchan.New("bench-prod", producerORB)
	consumer := eventchan.New("bench-cons", consumerORB)
	got := make(chan struct{}, 1024)
	consumer.Subscribe("E", func(eventchan.Event) { got <- struct{}{} })
	producer.AddRemoteSink("E", addr.String())
	ev := eventchan.Event{Type: "E", Payload: []byte("x")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := producer.Push(ev); err != nil {
			b.Fatal(err)
		}
		<-got
	}
}

// BenchmarkAdmissionTestScaling measures operation 4 as the current task
// set grows, supporting the paper's Section 3 argument that the centralized
// admission controller's computation "is significantly lower than task
// execution times" and does not bottleneck the architecture. With the
// indexed ledger the jobs collapse into one signature group per processor,
// so the per-test cost should stay flat as the in-flight count grows —
// compare ns/op across the sub-benchmarks to see the superlinear win over
// the full scan.
func BenchmarkAdmissionTestScaling(b *testing.B) {
	for _, n := range []int{10, 100, 1000, 10000, 100000} {
		n := n
		b.Run(fmt.Sprintf("jobs=%d", n), func(b *testing.B) {
			ctrl, err := core.NewController(core.Config{
				AC: core.StrategyPerJob, IR: core.StrategyNone, LB: core.StrategyNone,
			}, 5)
			if err != nil {
				b.Fatal(err)
			}
			// Fill the ledger with n in-flight single-stage jobs.
			ledger := ctrl.Ledger()
			for i := 0; i < n; i++ {
				ref := sched.JobRef{Task: "bg", Job: int64(i)}
				pl := []sched.PlacedStage{{Stage: 0, Proc: i % 5, Util: 0.4 / float64(n) * 5}}
				if err := ledger.AddJob(ref, sched.Aperiodic, pl, false, time.Hour); err != nil {
					b.Fatal(err)
				}
			}
			cand := []sched.PlacedStage{{Stage: 0, Proc: 0, Util: 0.01}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ledger.Admissible(cand)
			}
		})
	}
}

// BenchmarkFigureRunner measures one Figure 5 sweep (all 15 combinations)
// through the experiment harness at different worker counts; workers=1 is
// the serial baseline, so the ratio between sub-benchmarks is the
// parallel-runner speedup on this machine. jobs/sec and allocs/job are
// reported as custom metrics so the perf trajectory stays comparable across
// machines (ns/op is hardware-bound; allocations per simulated job are not).
func BenchmarkFigureRunner(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var jobs int64
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := rtmw.RunFigure5(rtmw.FigureOptions{
					Sets:    2,
					Horizon: 30 * time.Second,
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != 15 {
					b.Fatalf("got %d combos, want 15", len(results))
				}
				for _, r := range results {
					jobs += r.Jobs
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms1)
			if jobs > 0 {
				b.ReportMetric(float64(jobs)/b.Elapsed().Seconds(), "jobs/sec")
				b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(jobs), "allocs/job")
			}
		})
	}
}

// BenchmarkEventFanout measures gateway fan-out cost as the number of remote
// sinks grows (the federated event channel's scalability axis).
func BenchmarkEventFanout(b *testing.B) {
	for _, sinks := range []int{1, 2, 4} {
		sinks := sinks
		b.Run(fmt.Sprintf("sinks=%d", sinks), func(b *testing.B) {
			producerORB := orb.New("fan-prod")
			defer producerORB.Shutdown()
			producer := eventchan.New("fan-prod", producerORB)
			got := make(chan struct{}, 4096)
			for i := 0; i < sinks; i++ {
				consORB := orb.New(fmt.Sprintf("fan-cons%d", i))
				addr, err := consORB.Listen("127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				defer consORB.Shutdown()
				cons := eventchan.New(fmt.Sprintf("fan-cons%d", i), consORB)
				cons.Subscribe("E", func(eventchan.Event) { got <- struct{}{} })
				producer.AddRemoteSink("E", addr.String())
			}
			ev := eventchan.Event{Type: "E", Payload: []byte("x")}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := producer.Push(ev); err != nil {
					b.Fatal(err)
				}
				for s := 0; s < sinks; s++ {
					<-got
				}
			}
		})
	}
}

// --- Event plane: federated throughput, batched vs pre-refactor path ---

// benchEventPlane measures end-to-end federated event throughput: pubs
// goroutines push b.N events total through one gateway to a remote
// consumer, and the benchmark ends when the last event is delivered.
// batched selects the event plane (group-commit gateway batches over the
// batching ORB writer); otherwise both layers use the pre-refactor
// single-message reference paths (PushUnbatched over the legacy locked
// writer), so the ratio between the two modes is the event-plane speedup.
func benchEventPlane(b *testing.B, pubs int, batched bool) {
	var prodOpts []orb.Option
	if !batched {
		prodOpts = append(prodOpts, orb.WithLegacyWriter())
	}
	producerORB := orb.New("plane-prod", prodOpts...)
	defer producerORB.Shutdown()
	consumerORB := orb.New("plane-cons")
	addr, err := consumerORB.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer consumerORB.Shutdown()

	// Block policy: publishers throttle to the gateway's drain rate instead
	// of ballooning the pending backlog, so the measurement is of the
	// transport, not of the garbage collector.
	producer := eventchan.New("plane-prod", producerORB, eventchan.WithSinkPolicy(eventchan.Block), eventchan.WithSinkQueueDepth(1<<16))
	consumer := eventchan.New("plane-cons", consumerORB)
	total := int64(b.N)
	var got atomic.Int64
	done := make(chan struct{})
	consumer.Subscribe("E", func(eventchan.Event) {
		if got.Add(1) == total {
			close(done)
		}
	})
	producer.AddRemoteSink("E", addr.String())
	push := (*eventchan.Channel).Push
	if !batched {
		push = (*eventchan.Channel).PushUnbatched
	}
	payload := []byte("0123456789abcdef")

	// Settle garbage from prior (sub-)benchmark runs so each mode measures
	// its own allocation behavior, not its predecessor's heap.
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for p := 0; p < pubs; p++ {
		n := b.N / pubs
		if p < b.N%pubs {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := push(producer, eventchan.Event{Type: "E", Payload: payload}); err != nil {
					b.Error(err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		b.Fatalf("delivered %d/%d events", got.Load(), total)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEventPlane is the scaling series behind the event-plane refactor:
// compare batched vs single at each publisher count; the acceptance bar is
// batched ≥ 5× single at 64 publishers.
func BenchmarkEventPlane(b *testing.B) {
	for _, pubs := range []int{1, 8, 64} {
		pubs := pubs
		b.Run(fmt.Sprintf("batched/publishers=%d", pubs), func(b *testing.B) { benchEventPlane(b, pubs, true) })
		b.Run(fmt.Sprintf("single/publishers=%d", pubs), func(b *testing.B) { benchEventPlane(b, pubs, false) })
	}
}

// BenchmarkORBOneWayStream isolates the transport half: a stream of one-way
// invocations on one pooled connection, batched writer vs the legacy locked
// writer, at 1 and 16 concurrent senders.
func BenchmarkORBOneWayStream(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts []orb.Option
	}{
		{"batched", nil},
		{"legacy", []orb.Option{orb.WithLegacyWriter()}},
	} {
		mode := mode
		for _, senders := range []int{1, 16} {
			senders := senders
			b.Run(fmt.Sprintf("%s/senders=%d", mode.name, senders), func(b *testing.B) {
				server := orb.New("stream-server")
				addr, err := server.Listen("127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				defer server.Shutdown()
				total := int64(b.N)
				var got atomic.Int64
				done := make(chan struct{})
				server.RegisterServant("sink", func(op string, arg []byte) ([]byte, error) {
					if got.Add(1) == total {
						close(done)
					}
					return nil, nil
				})
				client := orb.New("stream-client", mode.opts...)
				defer client.Shutdown()
				payload := []byte("0123456789abcdef")
				runtime.GC()
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				for s := 0; s < senders; s++ {
					n := b.N / senders
					if s < b.N%senders {
						n++
					}
					wg.Add(1)
					go func(n int) {
						defer wg.Done()
						for i := 0; i < n; i++ {
							if err := client.InvokeOneWay(addr.String(), "sink", "push", payload); err != nil {
								b.Error(err)
								return
							}
						}
					}(n)
				}
				wg.Wait()
				select {
				case <-done:
				case <-time.After(2 * time.Minute):
					b.Fatalf("dispatched %d/%d one-ways", got.Load(), total)
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
			})
		}
	}
}

// --- Section 2 ablation: AUB vs deferrable-server admission ---

// BenchmarkAblationAUBvsDS measures one full replay of identical aperiodic
// streams through both admission techniques (the comparison that justified
// the paper's choice of AUB).
func BenchmarkAblationAUBvsDS(b *testing.B) {
	opts := experiments.AblationOptions{Procs: 3, Tasks: 9, Horizon: time.Minute, Seeds: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunAblationAUBvsDS(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != 2 {
			b.Fatal("missing technique results")
		}
	}
}

// --- Simulation engine throughput (substrate ablation) ---

// BenchmarkSimulation measures one full 5-minute virtual run of the J_J_J
// configuration over a Figure 5 workload: the cost of the DES substrate
// itself. jobs/sec and allocs/job ride along as custom metrics for the
// cross-machine perf trajectory. The pre-pool engine (retained in
// internal/des reference.go) ran this at ~30.8k allocs/op; the pooled core
// is the same workload at ~1.1k — see BENCH_baseline.json for the guarded
// values.
func BenchmarkSimulation(b *testing.B) {
	tasks, err := rtmw.GenerateWorkload(rtmw.Figure5Params(0))
	if err != nil {
		b.Fatal(err)
	}
	cfg := rtmw.SimConfig{
		Strategies: rtmw.Config{AC: rtmw.StrategyPerJob, IR: rtmw.StrategyPerJob, LB: rtmw.StrategyPerJob},
		NumProcs:   5,
		Horizon:    5 * time.Minute,
		Seed:       1,
	}
	var jobs int64
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := rtmw.NewSimBinding(cfg, tasks)
		if err != nil {
			b.Fatal(err)
		}
		m := sim.Run()
		jobs += m.Total.Arrived
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	if jobs > 0 {
		b.ReportMetric(float64(jobs)/b.Elapsed().Seconds(), "jobs/sec")
		b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(jobs), "allocs/job")
	}
}

// --- Reconfiguration: the quiesce → swap → resume transaction ---

// BenchmarkReconfigure measures the hot-reconfiguration machinery on both
// bindings. sim-run is a full one-minute virtual run with a T_N_N → J_J_J
// swap at 30s (its allocations are deterministic per workload and guarded
// by benchguard); live-swap drives repeated full two-phase transactions —
// quiesce over the ORB, per-node strategy swaps, route wiring, resume —
// against a running in-process cluster, reporting the mean quiesce latency
// as quiesce-ns.
func BenchmarkReconfigure(b *testing.B) {
	b.Run("sim-run", func(b *testing.B) {
		tasks, err := rtmw.GenerateWorkload(rtmw.Figure5Params(0))
		if err != nil {
			b.Fatal(err)
		}
		from, _ := rtmw.ParseConfig("T_N_N")
		to, _ := rtmw.ParseConfig("J_J_J")
		cfg := rtmw.SimConfig{Strategies: from, NumProcs: 5, Horizon: time.Minute, Seed: 1}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim, err := rtmw.NewSimBinding(cfg, tasks)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.ScheduleReconfig(30*time.Second, to); err != nil {
				b.Fatal(err)
			}
			m := sim.Run()
			if m.Total.Released != m.Total.Completed {
				b.Fatalf("jobs lost: %+v", m.Total)
			}
		}
	})
	b.Run("live-swap", func(b *testing.B) {
		w, err := rtmw.ParseWorkload([]byte(`{
		  "name": "bench-reconfig",
		  "processors": 2,
		  "tasks": [
		    {"id": "flow", "kind": "periodic", "period": "80ms", "deadline": "80ms",
		     "subtasks": [
		       {"exec": "4ms", "processor": 0, "replicas": [1]},
		       {"exec": "3ms", "processor": 1}
		     ]},
		    {"id": "alert", "kind": "aperiodic", "deadline": "60ms", "meanInterarrival": "70ms",
		     "subtasks": [{"exec": "2ms", "processor": 1}]}
		  ]
		}`))
		if err != nil {
			b.Fatal(err)
		}
		start, _ := rtmw.ParseConfig("J_J_J")
		alt, _ := rtmw.ParseConfig("J_T_N")
		c, err := rtmw.StartLiveBinding(rtmw.ClusterOptions{Workload: w, Config: start, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		targets := []rtmw.Config{alt, start}
		var quiesce time.Duration
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := c.Reconfigure(targets[i%2])
			if err != nil {
				b.Fatal(err)
			}
			quiesce += rep.Quiesce
		}
		b.StopTimer()
		b.ReportMetric(float64(quiesce.Nanoseconds())/float64(b.N), "quiesce-ns")
	})
}

// BenchmarkChurn measures the open-world lifecycle machinery: one churn
// trial per iteration — a Figure 5 workload under the fully dynamic J_J_J
// combination with tenants joining (AddTasks + SubmitBatch bursts) and
// leaving (RemoveTasks) on fixed virtual-time schedules, observed by an
// always-on watch stream, finished by the ledger invariant audit. Its
// allocations are deterministic per workload and guarded by benchguard;
// jobs/sec rides along for the cross-machine perf trajectory.
func BenchmarkChurn(b *testing.B) {
	opts := rtmw.ChurnOptions{
		Combos:  []rtmw.Config{{AC: rtmw.StrategyPerJob, IR: rtmw.StrategyPerJob, LB: rtmw.StrategyPerJob}},
		Sets:    1,
		Horizon: 30 * time.Second,
		Workers: 1,
	}
	var jobs int64
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := rtmw.RunChurn(opts)
		if err != nil {
			b.Fatal(err)
		}
		r := results[0]
		if r.Lost != 0 || !r.OrderOK || r.TasksAdded == 0 || r.TasksRemoved == 0 {
			b.Fatalf("bad churn trial: %+v", r)
		}
		jobs += r.Arrived
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	if jobs > 0 {
		b.ReportMetric(float64(jobs)/b.Elapsed().Seconds(), "jobs/sec")
		b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(jobs), "allocs/job")
	}
}

// BenchmarkSimHotPath measures the pooled simulation core end to end at the
// scale sweep's platform sizes: one virtual second of the fully dynamic
// J_J_J middleware per iteration, reporting events/sec, jobs/sec and
// allocs/job. The 200-processor/50k-task point is the regime the
// allocation-free rewrite targets — the paper's experiments at 40× the
// testbed's processor count.
func BenchmarkSimHotPath(b *testing.B) {
	for _, pt := range []struct{ procs, tasks int }{{5, 100}, {50, 10_000}, {200, 50_000}} {
		pt := pt
		b.Run(fmt.Sprintf("procs=%d/tasks=%d", pt.procs, pt.tasks), func(b *testing.B) {
			tasks, err := rtmw.GenerateWorkload(rtmw.ScaleWorkloadParams(pt.procs, pt.tasks, 0))
			if err != nil {
				b.Fatal(err)
			}
			cfg := rtmw.SimConfig{
				Strategies: rtmw.Config{AC: rtmw.StrategyPerJob, IR: rtmw.StrategyPerJob, LB: rtmw.StrategyPerJob},
				NumProcs:   pt.procs,
				Horizon:    time.Second,
				Seed:       1,
			}
			var jobs, events int64
			var ms0, ms1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim, err := rtmw.NewSimBinding(cfg, tasks)
				if err != nil {
					b.Fatal(err)
				}
				m := sim.Run()
				jobs += m.Total.Arrived
				events += sim.Engine().Fired()
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms1)
			if jobs > 0 {
				b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
				b.ReportMetric(float64(jobs)/b.Elapsed().Seconds(), "jobs/sec")
				b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(jobs), "allocs/job")
			}
		})
	}
}

// BenchmarkFailover measures the node-loss survival cycle on a live
// three-processor cluster with full replica coverage: per iteration a burst
// of submissions is followed by a hard node kill, the zero-loss failover
// transaction (quiesce → processor-removal delta → standby fence →
// dead-letter redelivery), and the node's recovery via plan redeploy. The
// first iteration pays the workload surgery that evacuates the victim
// processor; later iterations measure the bare transaction plus recovery on
// an already-evacuated processor. failover-ns isolates the Failover call
// from the recovery cost; quiesce-ns is the admission-quiesce span within
// it. Allocations are transport-heavy (a fresh node per recovery), so the
// baseline tolerance is generous.
func BenchmarkFailover(b *testing.B) {
	w, err := rtmw.ParseWorkload([]byte(`{
	  "name": "bench-failover",
	  "processors": 3,
	  "tasks": [
	    {"id": "cam", "kind": "aperiodic", "deadline": "500ms", "meanInterarrival": "250ms",
	     "subtasks": [
	       {"exec": "3ms", "processor": 0, "replicas": [2]},
	       {"exec": "2ms", "processor": 1, "replicas": [2]}
	     ]},
	    {"id": "lidar", "kind": "aperiodic", "deadline": "400ms", "meanInterarrival": "250ms",
	     "subtasks": [{"exec": "4ms", "processor": 1, "replicas": [0]}]},
	    {"id": "fuse", "kind": "aperiodic", "deadline": "600ms", "meanInterarrival": "250ms",
	     "subtasks": [
	       {"exec": "3ms", "processor": 2, "replicas": [0]},
	       {"exec": "2ms", "processor": 0, "replicas": [2]}
	     ]}
	  ]
	}`))
	if err != nil {
		b.Fatal(err)
	}
	cfg, _ := rtmw.ParseConfig("T_T_T")
	c, err := rtmw.StartLiveBinding(rtmw.ClusterOptions{Workload: w, Config: cfg, Seed: 23})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	var failover, quiesce time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids := make([]string, 0, 9)
		for _, task := range c.Tasks() {
			ids = append(ids, task.ID, task.ID, task.ID)
		}
		if _, err := c.SubmitBatch(ids); err != nil {
			b.Fatal(err)
		}
		if err := c.KillNode(1); err != nil {
			b.Fatal(err)
		}
		rep, err := c.Failover(1)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Lost != 0 || len(rep.Withdrawn) != 0 {
			b.Fatalf("failover lost jobs: %+v", rep)
		}
		failover += rep.Duration
		quiesce += rep.Quiesce
		if err := c.RecoverNode(1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(failover.Nanoseconds())/float64(b.N), "failover-ns")
	b.ReportMetric(float64(quiesce.Nanoseconds())/float64(b.N), "quiesce-ns")
	if err := c.AuditAdmissionState(); err != nil {
		b.Fatal(err)
	}
	if _, lost := c.RedeliveryStats(); lost != 0 {
		b.Fatalf("redelivery lost %d jobs", lost)
	}
}
