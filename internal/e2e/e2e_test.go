// Package e2e tests the released command-line pipeline end to end, as a
// user would run it: rtmw-node daemons as separate OS processes, rtmw-config
// generating the XML plan from questionnaire answers, and rtmw-deploy
// executing the plan over the network.
package e2e

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/orb"
)

const e2eWorkload = `{
  "name": "e2e",
  "processors": 2,
  "tasks": [
    {"id": "flow", "kind": "periodic", "period": "100ms", "deadline": "100ms",
     "subtasks": [
       {"exec": "5ms", "processor": 0, "replicas": [1]},
       {"exec": "4ms", "processor": 1}
     ]},
    {"id": "alert", "kind": "aperiodic", "deadline": "80ms",
     "subtasks": [{"exec": "3ms", "processor": 1}]}
  ]
}`

// buildBinaries compiles the three tools into dir.
func buildBinaries(t *testing.T, dir string) {
	t.Helper()
	cmd := exec.Command("go", "build", "-o", dir,
		"repro/cmd/rtmw-node", "repro/cmd/rtmw-config", "repro/cmd/rtmw-deploy")
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
}

// repoRoot locates the module root from the test binary's working directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// startNode launches one rtmw-node process and returns its bound address.
func startNode(t *testing.T, bin, name string, proc int) string {
	t.Helper()
	cmd := exec.Command(bin, "-name", name, "-proc", fmt.Sprint(proc), "-listen", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})

	// The daemon prints "rtmw-node NAME (processor P) listening on ADDR".
	scanner := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for scanner.Scan() {
			line := scanner.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addrCh <- strings.TrimSpace(line[i+len("listening on "):])
				break
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return addr
	case <-time.After(10 * time.Second):
		t.Fatalf("node %s never reported its address", name)
		return ""
	}
}

func TestCommandPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process pipeline in -short mode")
	}
	dir := t.TempDir()
	buildBinaries(t, dir)

	managerAddr := startNode(t, filepath.Join(dir, "rtmw-node"), "manager", -1)
	app0Addr := startNode(t, filepath.Join(dir, "rtmw-node"), "app0", 0)
	app1Addr := startNode(t, filepath.Join(dir, "rtmw-node"), "app1", 1)

	workloadPath := filepath.Join(dir, "workload.json")
	if err := os.WriteFile(workloadPath, []byte(e2eWorkload), 0o644); err != nil {
		t.Fatal(err)
	}
	planPath := filepath.Join(dir, "plan.xml")

	// Configuration engine: answers → strategies → XML plan.
	cfgCmd := exec.Command(filepath.Join(dir, "rtmw-config"),
		"-workload", workloadPath,
		"-job-skipping=true", "-replication=true", "-persistence=false", "-overhead=PJ",
		"-manager", "manager="+managerAddr,
		"-nodes", "app0="+app0Addr+",app1="+app1Addr,
		"-out", planPath,
	)
	var cfgErr bytes.Buffer
	cfgCmd.Stderr = &cfgErr
	if err := cfgCmd.Run(); err != nil {
		t.Fatalf("rtmw-config: %v\n%s", err, cfgErr.String())
	}
	if !strings.Contains(cfgErr.String(), "J_J_J") {
		t.Errorf("rtmw-config did not report the J_J_J selection:\n%s", cfgErr.String())
	}
	planData, err := os.ReadFile(planPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Central-AC", "tk_string", "TaskArrive"} {
		if !strings.Contains(string(planData), want) {
			t.Errorf("plan missing %q", want)
		}
	}

	// Plan launcher: deploy against the live daemons.
	depCmd := exec.Command(filepath.Join(dir, "rtmw-deploy"), "-plan", planPath)
	out, err := depCmd.CombinedOutput()
	if err != nil {
		t.Fatalf("rtmw-deploy: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "deployed plan") {
		t.Errorf("rtmw-deploy output unexpected:\n%s", out)
	}

	// The deployed load balancer's Location facet answers over the ORB:
	// proof that components were installed, configured and activated in the
	// daemon processes.
	client := orb.New("e2e-client")
	defer client.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	taskID := encodeGobString(t, "flow")
	reply, err := client.Invoke(ctx, managerAddr, "lb", "Location", taskID)
	if err != nil {
		t.Fatalf("Location facet: %v", err)
	}
	if len(reply) == 0 {
		t.Error("Location facet returned empty placement")
	}

	// Live reconfiguration against the running daemons: swap J_J_J → J_T_N
	// through the two-phase transaction, rewriting the plan file in place.
	recCmd := exec.Command(filepath.Join(dir, "rtmw-config"), "reconfigure",
		"-plan", planPath, "-config", "J_T_N", "-out", planPath)
	recOut, err := recCmd.CombinedOutput()
	if err != nil {
		t.Fatalf("rtmw-config reconfigure: %v\n%s", err, recOut)
	}
	if !strings.Contains(string(recOut), "entered epoch 1") {
		t.Errorf("reconfigure output missing epoch:\n%s", recOut)
	}
	// The manager's coordination facet reports the new combination.
	cfgReply, err := client.Invoke(ctx, managerAddr, "reconfig", "Config", nil)
	if err != nil {
		t.Fatalf("Config facet: %v", err)
	}
	var liveCfg string
	if err := gob.NewDecoder(bytes.NewReader(cfgReply)).Decode(&liveCfg); err != nil {
		t.Fatal(err)
	}
	if liveCfg != "J_T_N" {
		t.Errorf("running config = %s, want J_T_N", liveCfg)
	}
	// The rewritten plan reads back the new combination too.
	updated, err := os.ReadFile(planPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(updated), "IR_Strategy") {
		t.Error("rewritten plan lost strategy properties")
	}

	// A contradictory target is refused and leaves the running config.
	badCmd := exec.Command(filepath.Join(dir, "rtmw-config"), "reconfigure",
		"-plan", planPath, "-config", "T_J_N")
	if out, err := badCmd.CombinedOutput(); err == nil {
		t.Errorf("contradictory reconfigure succeeded:\n%s", out)
	}
	cfgReply, err = client.Invoke(ctx, managerAddr, "reconfig", "Config", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewDecoder(bytes.NewReader(cfgReply)).Decode(&liveCfg); err != nil {
		t.Fatal(err)
	}
	if liveCfg != "J_T_N" {
		t.Errorf("config disturbed by rejected target: %s", liveCfg)
	}
}

// encodeGobString gob-encodes a string the way the live components do.
func encodeGobString(t *testing.T, s string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
