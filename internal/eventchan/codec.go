package eventchan

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// maxFieldLen bounds the Type and Source fields, whose lengths travel as
// uint16 prefixes.
const maxFieldLen = 0xFFFF

// errFieldTooLong is wrapped by encodeEvent's length-guard errors.
var errFieldTooLong = errors.New("eventchan: event field exceeds 65535 bytes")

// validateEvent checks the length-prefix bounds without encoding, so Push
// can fail fast before an event enters any queue.
func validateEvent(ev Event) error {
	if len(ev.Type) > maxFieldLen {
		return fmt.Errorf("%w (Type is %d bytes)", errFieldTooLong, len(ev.Type))
	}
	if len(ev.Source) > maxFieldLen {
		return fmt.Errorf("%w (Source is %d bytes)", errFieldTooLong, len(ev.Source))
	}
	return nil
}

// encodeEvent flattens an event for the wire:
//
//	uint16 typeLen | type | uint16 sourceLen | source | payload
//
// Type or Source longer than 65535 bytes cannot be length-prefixed and
// returns an error rather than silently truncating the prefix.
func encodeEvent(ev Event) ([]byte, error) {
	if err := validateEvent(ev); err != nil {
		return nil, err
	}
	buf := make([]byte, 2+len(ev.Type)+2+len(ev.Source)+len(ev.Payload))
	off := 0
	binary.BigEndian.PutUint16(buf[off:], uint16(len(ev.Type)))
	off += 2
	off += copy(buf[off:], ev.Type)
	binary.BigEndian.PutUint16(buf[off:], uint16(len(ev.Source)))
	off += 2
	off += copy(buf[off:], ev.Source)
	copy(buf[off:], ev.Payload)
	return buf, nil
}

// decodeEvent parses the wire form.
func decodeEvent(b []byte) (Event, error) {
	typ, rest, err := readLV(b)
	if err != nil {
		return Event{}, err
	}
	src, rest, err := readLV(rest)
	if err != nil {
		return Event{}, err
	}
	return Event{Type: typ, Source: src, Payload: rest}, nil
}

// readLV decodes one uint16 length-prefixed string.
func readLV(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, errors.New("eventchan: truncated event header")
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, errors.New("eventchan: truncated event field")
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// encodeBatch flattens a batch of events for one gateway push:
//
//	uint32 count | count × (uint32 eventLen | encoded event)
func encodeBatch(events []Event) ([]byte, error) {
	size := 4
	for _, ev := range events {
		if err := validateEvent(ev); err != nil {
			return nil, err
		}
		size += 4 + 2 + len(ev.Type) + 2 + len(ev.Source) + len(ev.Payload)
	}
	buf := make([]byte, 4, size)
	binary.BigEndian.PutUint32(buf, uint32(len(events)))
	for _, ev := range events {
		evLen := 2 + len(ev.Type) + 2 + len(ev.Source) + len(ev.Payload)
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(evLen))
		buf = append(buf, hdr[:]...)
		var lv [2]byte
		binary.BigEndian.PutUint16(lv[:], uint16(len(ev.Type)))
		buf = append(buf, lv[:]...)
		buf = append(buf, ev.Type...)
		binary.BigEndian.PutUint16(lv[:], uint16(len(ev.Source)))
		buf = append(buf, lv[:]...)
		buf = append(buf, ev.Source...)
		buf = append(buf, ev.Payload...)
	}
	return buf, nil
}

// decodeBatch parses a batch envelope.
func decodeBatch(b []byte) ([]Event, error) {
	if len(b) < 4 {
		return nil, errors.New("eventchan: truncated batch header")
	}
	count := int(binary.BigEndian.Uint32(b))
	rest := b[4:]
	// Each event costs at least its 4-byte length prefix; reject absurd
	// counts before allocating.
	if count > len(rest)/4 {
		return nil, fmt.Errorf("eventchan: implausible batch count %d for %d bytes", count, len(rest))
	}
	events := make([]Event, 0, count)
	for i := 0; i < count; i++ {
		if len(rest) < 4 {
			return nil, errors.New("eventchan: truncated batch entry header")
		}
		n := int(binary.BigEndian.Uint32(rest))
		rest = rest[4:]
		if n < 0 || len(rest) < n {
			return nil, errors.New("eventchan: truncated batch entry")
		}
		ev, err := decodeEvent(rest[:n])
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("eventchan: %d trailing bytes after batch", len(rest))
	}
	return events, nil
}
