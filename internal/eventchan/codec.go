package eventchan

import (
	"encoding/binary"
	"errors"
)

// encodeEvent flattens an event for the wire:
//
//	uint16 typeLen | type | uint16 sourceLen | source | payload
func encodeEvent(ev Event) []byte {
	buf := make([]byte, 2+len(ev.Type)+2+len(ev.Source)+len(ev.Payload))
	off := 0
	binary.BigEndian.PutUint16(buf[off:], uint16(len(ev.Type)))
	off += 2
	off += copy(buf[off:], ev.Type)
	binary.BigEndian.PutUint16(buf[off:], uint16(len(ev.Source)))
	off += 2
	off += copy(buf[off:], ev.Source)
	copy(buf[off:], ev.Payload)
	return buf
}

// decodeEvent parses the wire form.
func decodeEvent(b []byte) (Event, error) {
	typ, rest, err := readLV(b)
	if err != nil {
		return Event{}, err
	}
	src, rest, err := readLV(rest)
	if err != nil {
		return Event{}, err
	}
	return Event{Type: typ, Source: src, Payload: rest}, nil
}

// readLV decodes one uint16 length-prefixed string.
func readLV(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, errors.New("eventchan: truncated event header")
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, errors.New("eventchan: truncated event field")
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}
