package eventchan

import (
	"sync"
	"testing"
	"time"

	"repro/internal/orb"
)

// newNode builds an ORB + channel pair listening on loopback.
func newNode(t *testing.T, name string) (*Channel, string) {
	t.Helper()
	o := orb.New(name)
	addr, err := o.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Shutdown)
	return New(name, o), addr.String()
}

func TestLocalDelivery(t *testing.T) {
	ch, _ := newNode(t, "n1")
	var got []Event
	ch.Subscribe("TaskArrive", func(ev Event) { got = append(got, ev) })
	ch.Subscribe("Other", func(ev Event) { t.Error("wrong type delivered") })
	if err := ch.Push(Event{Type: "TaskArrive", Payload: []byte("t1")}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Payload) != "t1" || got[0].Source != "n1" {
		t.Errorf("delivered = %+v, want one TaskArrive from n1", got)
	}
}

func TestMultipleSubscribers(t *testing.T) {
	ch, _ := newNode(t, "n1")
	count := 0
	for i := 0; i < 3; i++ {
		ch.Subscribe("E", func(Event) { count++ })
	}
	if err := ch.Push(Event{Type: "E"}); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("delivered to %d subscribers, want 3", count)
	}
}

func TestFederatedForwarding(t *testing.T) {
	producer, _ := newNode(t, "producer")
	consumer, consumerAddr := newNode(t, "consumer")

	var mu sync.Mutex
	var got []Event
	done := make(chan struct{}, 4)
	consumer.Subscribe("Alert", func(ev Event) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
		done <- struct{}{}
	})
	producer.AddRemoteSink("Alert", consumerAddr)
	// Duplicate sink registration is a no-op.
	producer.AddRemoteSink("Alert", consumerAddr)

	if err := producer.Push(Event{Type: "Alert", Payload: []byte("hazard")}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("event never crossed the gateway")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("consumer got %d events, want 1 (duplicate sink must not double-deliver)", len(got))
	}
	if got[0].Source != "producer" || string(got[0].Payload) != "hazard" {
		t.Errorf("event = %+v", got[0])
	}
	pushed, forwarded := producer.Stats()
	if pushed != 1 || forwarded != 1 {
		t.Errorf("producer stats = (%d, %d), want (1, 1)", pushed, forwarded)
	}
}

func TestForwardingOnlySelectedTypes(t *testing.T) {
	producer, _ := newNode(t, "p")
	consumer, consumerAddr := newNode(t, "c")
	hit := make(chan string, 2)
	consumer.Subscribe("A", func(ev Event) { hit <- "A" })
	consumer.Subscribe("B", func(ev Event) { hit <- "B" })
	producer.AddRemoteSink("A", consumerAddr)

	if err := producer.Push(Event{Type: "B"}); err != nil {
		t.Fatal(err)
	}
	if err := producer.Push(Event{Type: "A"}); err != nil {
		t.Fatal(err)
	}
	select {
	case typ := <-hit:
		if typ != "A" {
			t.Errorf("first cross-gateway event = %s, want A (B must stay local)", typ)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event crossed the gateway")
	}
}

func TestPushAfterClose(t *testing.T) {
	ch, _ := newNode(t, "n")
	ch.Close()
	if err := ch.Push(Event{Type: "E"}); err == nil {
		t.Error("push on closed channel succeeded")
	}
}

func TestForwardToDeadPeerReturnsError(t *testing.T) {
	producer, _ := newNode(t, "p")
	producer.AddRemoteSink("E", "127.0.0.1:1")
	if err := producer.Push(Event{Type: "E"}); err == nil {
		t.Error("forward to dead peer succeeded")
	}
}

func TestRemoveRemoteSink(t *testing.T) {
	producer, _ := newNode(t, "p")
	consumer, consumerAddr := newNode(t, "c")
	delivered := make(chan Event, 8)
	consumer.Subscribe("E", func(ev Event) { delivered <- ev })
	producer.AddRemoteSink("E", consumerAddr)

	if err := producer.Push(Event{Type: "E", Payload: []byte("one")}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-delivered:
	case <-time.After(2 * time.Second):
		t.Fatal("event never crossed the gateway")
	}

	producer.RemoveRemoteSink(consumerAddr)
	if err := producer.Push(Event{Type: "E", Payload: []byte("two")}); err != nil {
		t.Fatalf("push after sink removal: %v", err)
	}
	select {
	case ev := <-delivered:
		t.Fatalf("event %q delivered through a removed sink", ev.Payload)
	case <-time.After(200 * time.Millisecond):
	}
	// Removing an unknown address is a no-op.
	producer.RemoveRemoteSink(consumerAddr)
	producer.RemoveRemoteSink("127.0.0.1:1")

	// The failover use: pruning a dead peer makes pushes stop failing.
	producer.AddRemoteSink("E", "127.0.0.1:1")
	if err := producer.Push(Event{Type: "E"}); err == nil {
		t.Fatal("forward to dead peer succeeded")
	}
	producer.RemoveRemoteSink("127.0.0.1:1")
	if err := producer.Push(Event{Type: "E"}); err != nil {
		t.Errorf("push after pruning the dead peer: %v", err)
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	tests := []Event{
		{Type: "TaskArrive", Source: "node-3", Payload: []byte("body")},
		{Type: "", Source: "", Payload: nil},
		{Type: "X", Source: "Y", Payload: make([]byte, 1024)},
	}
	for _, ev := range tests {
		enc, err := encodeEvent(ev)
		if err != nil {
			t.Fatalf("encode(%+v): %v", ev, err)
		}
		got, err := decodeEvent(enc)
		if err != nil {
			t.Fatalf("decode(%+v): %v", ev, err)
		}
		if got.Type != ev.Type || got.Source != ev.Source || string(got.Payload) != string(ev.Payload) {
			t.Errorf("round trip = %+v, want %+v", got, ev)
		}
	}
	if _, err := decodeEvent([]byte{0}); err == nil {
		t.Error("truncated event accepted")
	}
	if _, err := decodeEvent([]byte{0, 5, 'a'}); err == nil {
		t.Error("short event field accepted")
	}
}
