// Package eventchan implements a federated real-time event channel in the
// style of TAO's federated event service, which the paper's architecture
// uses to connect all processors (Figure 1): each node runs a local event
// channel; gateways forward selected event types to peer channels over the
// ORB, where they are pushed to that node's local consumers.
//
// Events are typed and carry an opaque payload; consumers subscribe by event
// type and filter further in their handlers (consumer-side filtering, as in
// TAO's EC). The channel is built as a high-throughput event plane:
//
//   - The subscriber table is sharded by event type hash, so concurrent
//     publishers of unrelated types never contend on one lock; handler
//     lists are copy-on-write, so fan-out iterates without copying.
//   - Local delivery is synchronous in the pusher's goroutine by default;
//     SubscribeBuffered decouples a slow consumer behind its own bounded
//     queue with an explicit drop-or-block overflow policy.
//   - Remote forwarding batches: each peer gateway has a bounded pending
//     queue flushed by whichever pusher arrives first (group commit), so a
//     burst of events crosses the ORB as a few batch pushes instead of one
//     invocation each. A full pending queue fails Push with
//     ErrBackpressure instead of blocking without bound.
package eventchan

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"repro/internal/orb"
)

// ServantKey is the object key every channel registers on its node's ORB so
// peer gateways can push events to it.
const ServantKey = "eventchannel"

// Operations of the channel servant: the scalar push (the original
// single-message path, kept as the reference) and the batch push the
// gateway's group-commit forwarder uses.
const (
	opPush      = "push"
	opPushBatch = "pushbatch"
)

// numShards fixes the subscriber-table shard count. Shard choice only needs
// to spread event types; 32 keeps the footprint trivial while making
// same-shard collisions of hot types unlikely.
const numShards = 32

// Gateway batching defaults, overridable with WithSinkQueueDepth and
// WithSinkBatch.
const (
	// DefaultSinkQueueDepth bounds a remote sink's pending-event queue.
	DefaultSinkQueueDepth = 8192
	// DefaultSinkBatch caps the events coalesced into one gateway push.
	DefaultSinkBatch = 256
	// maxBatchBytes caps a batch's encoded size, well under the ORB's
	// frame limit, so coalescing can never construct an unsendable frame
	// out of individually valid events.
	maxBatchBytes = 4 << 20
)

// ErrBackpressure reports that a remote sink's bounded pending queue was
// full, so the event was not forwarded to that sink. Local delivery still
// happened; callers on best-effort paths count and continue.
var ErrBackpressure = errors.New("eventchan: remote sink queue full")

// Event is one typed event. Payload encoding is up to the producing
// component (the live binding uses encoding/gob).
type Event struct {
	// Type routes the event to subscribers (e.g. "TaskArrive", "Accept").
	Type string
	// Source names the producing node, for diagnostics and tests.
	Source string
	// Payload is the marshaled event body. Delivery is zero-copy: a
	// remotely received Payload aliases the transport buffer (for a
	// batched push, the whole batch's buffer), and a local one aliases the
	// pusher's slice. Handlers that retain a payload past their return
	// must copy it.
	Payload []byte
}

// Handler consumes events. Direct (Subscribe) handlers run synchronously in
// the delivery goroutine and must not block; buffered (SubscribeBuffered)
// handlers run in the subscription's own goroutine.
type Handler func(Event)

// OverflowPolicy selects what a buffered subscription does when its queue is
// full.
type OverflowPolicy int

const (
	// DropNewest discards the incoming event and counts it.
	DropNewest OverflowPolicy = iota
	// Block makes the pusher wait for queue space (bounded-buffer
	// backpressure).
	Block
)

// Subscription is one consumer registration; Cancel removes it. The zero
// value is invalid — Subscribe and SubscribeBuffered return live ones.
type Subscription struct {
	ch        *Channel
	eventType string
	h         Handler
	// queue is nil for direct (synchronous) subscriptions.
	queue   chan Event
	policy  OverflowPolicy
	dropped atomic.Int64
	cancel  chan struct{}
	once    sync.Once
}

// Dropped returns how many events this subscription discarded under the
// DropNewest policy.
func (s *Subscription) Dropped() int64 { return s.dropped.Load() }

// Cancel removes the subscription. A buffered subscription's goroutine
// drains what it already accepted, then exits; Cancel does not wait for it.
func (s *Subscription) Cancel() {
	s.once.Do(func() {
		s.ch.removeSub(s)
		close(s.cancel)
	})
}

// deliver routes one event per the subscription mode and policy.
func (s *Subscription) deliver(ev Event) {
	if s.queue == nil {
		s.h(ev)
		return
	}
	if s.policy == Block {
		select {
		case s.queue <- ev:
		case <-s.cancel:
		}
		return
	}
	select {
	case s.queue <- ev:
	default:
		s.dropped.Add(1)
		s.ch.subDropped.Add(1)
	}
}

// loop is a buffered subscription's delivery goroutine.
func (s *Subscription) loop() {
	defer s.ch.wg.Done()
	for {
		select {
		case ev := <-s.queue:
			s.h(ev)
		case <-s.cancel:
			for {
				select {
				case ev := <-s.queue:
					s.h(ev)
				default:
					return
				}
			}
		}
	}
}

// shard is one slice of the subscriber and gateway tables. The slices it
// holds are copy-on-write: readers grab them under RLock and iterate lock-
// free; writers replace them wholesale.
type shard struct {
	mu    sync.RWMutex
	subs  map[string][]*Subscription
	sinks map[string][]*sink
}

// sink is the gateway state for one peer address, shared by every event
// type forwarded there so cross-type bursts batch together. Forwarding is
// group commit: a pusher appends to pending and, if no flush is in flight,
// becomes the flusher and drains pending in batches; pushers arriving
// mid-flight piggyback and return immediately.
type sink struct {
	addr string

	mu sync.Mutex
	// full is signaled by the flusher whenever it takes the backlog, waking
	// pushers blocked under the Block overflow policy.
	full    sync.Cond
	pending []Event
	// spare is the previous pending backing array, recycled once its batch
	// is flushed, so the two buffers ping-pong instead of the queue
	// reallocating as it slides.
	spare    []Event
	flushing bool

	batches atomic.Int64
	events  atomic.Int64
	dropped atomic.Int64
	errs    atomic.Int64
}

// PlaneStats is a snapshot of the channel's event-plane counters.
type PlaneStats struct {
	// Pushed counts local Push calls; Forwarded counts events handed to the
	// gateway path (every event × sink, the pre-batching unit).
	Pushed, Forwarded int64
	// ForwardBatches counts gateway ORB pushes; Forwarded/ForwardBatches is
	// the achieved federation batching factor.
	ForwardBatches int64
	// ForwardDropped counts events refused with ErrBackpressure.
	ForwardDropped int64
	// ForwardErrors counts failed gateway pushes (each may cover a batch).
	ForwardErrors int64
	// SubscriberDropped counts events discarded by DropNewest buffered
	// subscriptions.
	SubscriberDropped int64
}

// Channel is one node's local event channel plus its gateway state.
type Channel struct {
	node       string
	orb        *orb.ORB
	sinkDepth  int
	sinkBatch  int
	sinkPolicy OverflowPolicy

	shards [numShards]shard
	seed   maphash.Seed

	sinksMu sync.Mutex
	sinks   map[string]*sink // addr → shared gateway state

	closed atomic.Bool
	// lifeMu serializes buffered-subscription startup (closed check +
	// wg.Add) against Close's closed store + wg.Wait.
	lifeMu     sync.Mutex
	wg         sync.WaitGroup // buffered-subscription goroutines
	pushed     atomic.Int64
	forwarded  atomic.Int64
	subDropped atomic.Int64
}

// Option configures a Channel.
type Option func(*Channel)

// WithSinkQueueDepth bounds each remote sink's pending queue (default
// DefaultSinkQueueDepth). A full queue fails Push with ErrBackpressure.
func WithSinkQueueDepth(n int) Option {
	return func(c *Channel) {
		if n > 0 {
			c.sinkDepth = n
		}
	}
}

// WithSinkBatch caps the events coalesced into one gateway push (default
// DefaultSinkBatch).
func WithSinkBatch(n int) Option {
	return func(c *Channel) {
		if n > 0 {
			c.sinkBatch = n
		}
	}
}

// WithSinkPolicy selects what Push does when a remote sink's pending queue
// is full: DropNewest (the default) sheds the event with ErrBackpressure;
// Block waits for the flusher to drain, bounding the pusher instead of the
// pusher's memory.
func WithSinkPolicy(p OverflowPolicy) Option {
	return func(c *Channel) { c.sinkPolicy = p }
}

// New creates the channel and registers its push servant on the node's ORB.
func New(node string, o *orb.ORB, opts ...Option) *Channel {
	c := &Channel{
		node:      node,
		orb:       o,
		sinkDepth: DefaultSinkQueueDepth,
		sinkBatch: DefaultSinkBatch,
		seed:      maphash.MakeSeed(),
		sinks:     make(map[string]*sink),
	}
	for _, opt := range opts {
		opt(c)
	}
	for i := range c.shards {
		c.shards[i].subs = make(map[string][]*Subscription)
		c.shards[i].sinks = make(map[string][]*sink)
	}
	o.RegisterServant(ServantKey, c.servant)
	return c
}

// Node returns the owning node's name.
func (c *Channel) Node() string { return c.node }

// shardFor hashes an event type onto its shard.
func (c *Channel) shardFor(eventType string) *shard {
	return &c.shards[maphash.String(c.seed, eventType)%numShards]
}

// Subscribe registers a local consumer for an event type. The handler runs
// synchronously in each pusher's goroutine. The returned subscription may be
// ignored by consumers that live as long as the channel.
func (c *Channel) Subscribe(eventType string, h Handler) *Subscription {
	if h == nil {
		panic("eventchan: nil handler")
	}
	s := &Subscription{ch: c, eventType: eventType, h: h, cancel: make(chan struct{})}
	c.addSub(s)
	if c.closed.Load() {
		// Close may have scanned the shards before addSub landed; make the
		// late registration inert.
		s.Cancel()
	}
	return s
}

// SubscribeBuffered registers a consumer behind its own bounded queue of the
// given depth, drained by a dedicated goroutine, decoupling a slow handler
// from the pushers. policy selects the overflow behavior: DropNewest sheds
// (counted) or Block applies backpressure to the pusher.
func (c *Channel) SubscribeBuffered(eventType string, depth int, policy OverflowPolicy, h Handler) *Subscription {
	if h == nil {
		panic("eventchan: nil handler")
	}
	if depth <= 0 {
		depth = 1
	}
	s := &Subscription{
		ch:        c,
		eventType: eventType,
		h:         h,
		queue:     make(chan Event, depth),
		policy:    policy,
		cancel:    make(chan struct{}),
	}
	// Serialize against Close: never wg.Add after Close's wg.Wait started,
	// and never start a delivery goroutine Close cannot reap.
	c.lifeMu.Lock()
	if c.closed.Load() {
		c.lifeMu.Unlock()
		s.Cancel()
		return s
	}
	c.wg.Add(1)
	c.lifeMu.Unlock()
	go s.loop()
	c.addSub(s)
	if c.closed.Load() {
		// Close may have scanned the shards before addSub landed.
		s.Cancel()
	}
	return s
}

// addSub installs a subscription copy-on-write.
func (c *Channel) addSub(s *Subscription) {
	sh := c.shardFor(s.eventType)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := sh.subs[s.eventType]
	next := make([]*Subscription, len(cur), len(cur)+1)
	copy(next, cur)
	sh.subs[s.eventType] = append(next, s)
}

// removeSub uninstalls a subscription copy-on-write.
func (c *Channel) removeSub(s *Subscription) {
	sh := c.shardFor(s.eventType)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := sh.subs[s.eventType]
	next := make([]*Subscription, 0, len(cur))
	for _, other := range cur {
		if other != s {
			next = append(next, other)
		}
	}
	if len(next) == 0 {
		delete(sh.subs, s.eventType)
		return
	}
	sh.subs[s.eventType] = next
}

// AddRemoteSink configures the gateway to forward events of the given type
// to the peer channel at addr. Adding the same (type, addr) pair twice is a
// no-op. Sinks for the same address share one batching queue across event
// types.
func (c *Channel) AddRemoteSink(eventType, addr string) {
	c.sinksMu.Lock()
	snk, ok := c.sinks[addr]
	if !ok {
		snk = &sink{addr: addr}
		snk.full.L = &snk.mu
		c.sinks[addr] = snk
	}
	c.sinksMu.Unlock()

	sh := c.shardFor(eventType)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cur := sh.sinks[eventType]
	for _, s := range cur {
		if s.addr == addr {
			return
		}
	}
	next := make([]*sink, len(cur), len(cur)+1)
	copy(next, cur)
	sh.sinks[eventType] = append(next, snk)
}

// RemoveRemoteSink detaches the peer at addr from every event type and
// discards its pending backlog — the failover path prunes routes to a dead
// node so the gateway stops dialing it on every push. Removing an unknown
// address is a no-op. A concurrent flush to the removed sink may still fail
// (counted); no new events are queued to it afterwards.
func (c *Channel) RemoveRemoteSink(addr string) {
	c.sinksMu.Lock()
	snk, ok := c.sinks[addr]
	if ok {
		delete(c.sinks, addr)
	}
	c.sinksMu.Unlock()
	if !ok {
		return
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for ev, cur := range sh.sinks {
			next := make([]*sink, 0, len(cur))
			for _, s := range cur {
				if s.addr != addr {
					next = append(next, s)
				}
			}
			if len(next) == 0 {
				delete(sh.sinks, ev)
			} else if len(next) != len(cur) {
				sh.sinks[ev] = next
			}
		}
		sh.mu.Unlock()
	}
	// Drop the backlog and wake any pusher blocked on the full queue; the
	// events were bound for a dead peer.
	snk.mu.Lock()
	snk.dropped.Add(int64(len(snk.pending)))
	snk.pending = nil
	snk.full.Broadcast()
	snk.mu.Unlock()
}

// Push delivers the event to local subscribers and forwards it through the
// gateway to every configured remote sink. It returns the first forwarding
// error, after attempting all sinks; local delivery always happens. Under
// concurrency the forward may be batched with other in-flight pushes to the
// same peer, in which case a transport failure surfaces on the pusher that
// performed the flush and in ForwardErrors.
func (c *Channel) Push(ev Event) error {
	return c.push(ev, (*Channel).sinkPush)
}

// PushUnbatched is the pre-batching reference path: synchronous local
// fan-out plus one scalar ORB push per (event, sink). It is kept for
// differential tests and as the event-plane benchmark baseline.
func (c *Channel) PushUnbatched(ev Event) error {
	return c.push(ev, (*Channel).forwardSingle)
}

// push is the shared delivery pipeline; forward selects the gateway path
// (batched group commit, or the scalar reference).
func (c *Channel) push(ev Event, forward func(*Channel, *sink, Event) error) error {
	if ev.Source == "" {
		ev.Source = c.node
	}
	if err := validateEvent(ev); err != nil {
		return err
	}
	if c.closed.Load() {
		return fmt.Errorf("eventchan %s: closed", c.node)
	}
	c.pushed.Add(1)

	sh := c.shardFor(ev.Type)
	sh.mu.RLock()
	subs := sh.subs[ev.Type]
	sinks := sh.sinks[ev.Type]
	sh.mu.RUnlock()

	for _, s := range subs {
		s.deliver(ev)
	}
	var firstErr error
	for _, snk := range sinks {
		if err := forward(c, snk, ev); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// forwardSingle sends one event to one peer via the scalar push operation.
func (c *Channel) forwardSingle(snk *sink, ev Event) error {
	body, err := encodeEvent(ev)
	if err != nil {
		return err
	}
	c.forwarded.Add(1)
	snk.batches.Add(1)
	snk.events.Add(1)
	if err := c.orb.InvokeOneWay(snk.addr, ServantKey, opPush, body); err != nil {
		snk.errs.Add(1)
		return fmt.Errorf("eventchan %s: forward %s to %s: %w", c.node, ev.Type, snk.addr, err)
	}
	return nil
}

// sinkPush enqueues the event on the sink's bounded pending queue and
// flushes by group commit: the first pusher to find no flush in flight
// drains the queue in batches; later pushers piggyback their events onto
// the running flush and return immediately.
func (c *Channel) sinkPush(snk *sink, ev Event) error {
	snk.mu.Lock()
	if len(snk.pending) >= c.sinkDepth {
		if c.sinkPolicy == Block {
			for len(snk.pending) >= c.sinkDepth && !c.closed.Load() {
				snk.full.Wait()
			}
			if c.closed.Load() {
				snk.mu.Unlock()
				return fmt.Errorf("eventchan %s: closed", c.node)
			}
		} else {
			snk.dropped.Add(1)
			snk.mu.Unlock()
			return fmt.Errorf("eventchan %s: sink %s: %w", c.node, snk.addr, ErrBackpressure)
		}
	}
	snk.pending = append(snk.pending, ev)
	if snk.flushing {
		snk.mu.Unlock()
		return nil
	}
	snk.flushing = true
	var firstErr error
	for len(snk.pending) > 0 {
		// Take the whole backlog and swap in the recycled buffer, so the
		// queue never reallocates as it slides.
		taken := snk.pending
		snk.pending = snk.spare[:0]
		snk.spare = nil
		snk.full.Broadcast()
		snk.mu.Unlock()

		var err error
		for off := 0; off < len(taken); {
			// Chunk by count and by encoded bytes: events are individually
			// frameable, and the byte cap keeps every coalesced frame that
			// way too.
			end, bytes := off, 0
			for end < len(taken) && end-off < c.sinkBatch {
				sz := 4 + 2 + len(taken[end].Type) + 2 + len(taken[end].Source) + len(taken[end].Payload)
				if end > off && bytes+sz > maxBatchBytes {
					break
				}
				bytes += sz
				end++
			}
			if e := c.flushBatch(snk, taken[off:end]); e != nil && err == nil {
				err = e
			}
			off = end
		}
		// Drop payload references before recycling the buffer.
		clear(taken)

		snk.mu.Lock()
		snk.spare = taken[:0]
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	snk.flushing = false
	snk.mu.Unlock()
	return firstErr
}

// flushBatch pushes one batch to the peer over the ORB. A single event uses
// the scalar operation (no envelope); larger batches use the batch
// operation.
func (c *Channel) flushBatch(snk *sink, batch []Event) error {
	var (
		body []byte
		op   string
		err  error
	)
	if len(batch) == 1 {
		op = opPush
		body, err = encodeEvent(batch[0])
	} else {
		op = opPushBatch
		body, err = encodeBatch(batch)
	}
	if err != nil {
		// Field lengths are validated at Push and batches are chunked under
		// the frame limit, but a single oversized event can still fail here
		// — exactly as it would on the scalar reference path.
		snk.errs.Add(1)
		return err
	}
	c.forwarded.Add(int64(len(batch)))
	snk.batches.Add(1)
	snk.events.Add(int64(len(batch)))
	// Fail-fast send first: it observes (and counts, in the ORB's
	// TransportStats.Overloads) writer-queue saturation. The batch is not
	// shed on overload — delivery falls back to the bounded-blocking send;
	// this sink's own pending queue is the shedding layer.
	err = c.orb.TryInvokeOneWay(snk.addr, ServantKey, op, body)
	if errors.Is(err, orb.ErrOverloaded) {
		err = c.orb.InvokeOneWay(snk.addr, ServantKey, op, body)
	}
	if err != nil {
		snk.errs.Add(1)
		return fmt.Errorf("eventchan %s: forward %d event(s) to %s: %w", c.node, len(batch), snk.addr, err)
	}
	return nil
}

// servant receives pushes from peer gateways and delivers them locally only
// (no re-forwarding: the deployment engine configures a single-hop
// federation, so events cannot loop).
func (c *Channel) servant(op string, arg []byte) ([]byte, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("eventchan %s: closed", c.node)
	}
	switch op {
	case opPush:
		ev, err := decodeEvent(arg)
		if err != nil {
			return nil, err
		}
		c.deliverLocal(ev)
		return nil, nil
	case opPushBatch:
		events, err := decodeBatch(arg)
		if err != nil {
			return nil, err
		}
		// Memoize the shard lookup across a run of same-typed events (the
		// common case for a gateway batch). Subscriptions added mid-batch
		// see the next run; the COW slices make the stale view safe.
		var (
			lastType string
			subs     []*Subscription
			have     bool
		)
		for _, ev := range events {
			if !have || ev.Type != lastType {
				sh := c.shardFor(ev.Type)
				sh.mu.RLock()
				subs = sh.subs[ev.Type]
				sh.mu.RUnlock()
				lastType, have = ev.Type, true
			}
			for _, s := range subs {
				s.deliver(ev)
			}
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("eventchan %s: unknown operation %q", c.node, op)
	}
}

// deliverLocal fans one event out to the local subscribers only.
func (c *Channel) deliverLocal(ev Event) {
	sh := c.shardFor(ev.Type)
	sh.mu.RLock()
	subs := sh.subs[ev.Type]
	sh.mu.RUnlock()
	for _, s := range subs {
		s.deliver(ev)
	}
}

// Close stops accepting pushes and cancels every subscription, waiting for
// buffered delivery goroutines to drain. The owning ORB's shutdown tears
// down the transport.
func (c *Channel) Close() {
	// Setting closed under lifeMu orders it against buffered-subscription
	// startup: a subscriber either saw closed and never wg.Add'd, or its
	// Add is visible before the wg.Wait below.
	c.lifeMu.Lock()
	c.closed.Store(true)
	c.lifeMu.Unlock()
	// Wake pushers blocked on full sinks so they observe the close.
	c.sinksMu.Lock()
	for _, snk := range c.sinks {
		snk.mu.Lock()
		snk.full.Broadcast()
		snk.mu.Unlock()
	}
	c.sinksMu.Unlock()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		var all []*Subscription
		for _, subs := range sh.subs {
			all = append(all, subs...)
		}
		sh.mu.Unlock()
		for _, s := range all {
			s.Cancel()
		}
	}
	c.wg.Wait()
}

// Stats returns the local-push and remote-forward counters.
func (c *Channel) Stats() (pushed, forwarded int64) {
	return c.pushed.Load(), c.forwarded.Load()
}

// PlaneStats snapshots the event-plane counters across all sinks and
// subscriptions.
func (c *Channel) PlaneStats() PlaneStats {
	ps := PlaneStats{
		Pushed:            c.pushed.Load(),
		Forwarded:         c.forwarded.Load(),
		SubscriberDropped: c.subDropped.Load(),
	}
	c.sinksMu.Lock()
	defer c.sinksMu.Unlock()
	for _, snk := range c.sinks {
		ps.ForwardBatches += snk.batches.Load()
		ps.ForwardDropped += snk.dropped.Load()
		ps.ForwardErrors += snk.errs.Load()
	}
	return ps
}
