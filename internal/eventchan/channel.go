// Package eventchan implements a federated real-time event channel in the
// style of TAO's federated event service, which the paper's architecture
// uses to connect all processors (Figure 1): each node runs a local event
// channel; gateways forward selected event types to peer channels over the
// ORB, where they are pushed to that node's local consumers.
//
// Events are typed and carry an opaque payload; consumers subscribe by event
// type and filter further in their handlers (consumer-side filtering, as in
// TAO's EC). Local delivery is synchronous in the pusher's goroutine; remote
// forwarding is a one-way ORB invocation per peer.
package eventchan

import (
	"fmt"
	"sync"

	"repro/internal/orb"
)

// ServantKey is the object key every channel registers on its node's ORB so
// peer gateways can push events to it.
const ServantKey = "eventchannel"

// opPush is the single operation of the channel servant.
const opPush = "push"

// Event is one typed event. Payload encoding is up to the producing
// component (the live binding uses encoding/gob).
type Event struct {
	// Type routes the event to subscribers (e.g. "TaskArrive", "Accept").
	Type string
	// Source names the producing node, for diagnostics and tests.
	Source string
	// Payload is the marshaled event body.
	Payload []byte
}

// Handler consumes events. Handlers run synchronously in the delivery
// goroutine and must not block.
type Handler func(Event)

// Channel is one node's local event channel plus its gateway state.
type Channel struct {
	node string
	orb  *orb.ORB

	mu      sync.RWMutex
	subs    map[string][]Handler
	remotes map[string][]string // event type → peer ORB addresses
	closed  bool

	// Pushed and Forwarded count local pushes and remote forwards, for
	// overhead accounting.
	pushed    int64
	forwarded int64
}

// New creates the channel and registers its push servant on the node's ORB.
func New(node string, o *orb.ORB) *Channel {
	c := &Channel{
		node:    node,
		orb:     o,
		subs:    make(map[string][]Handler),
		remotes: make(map[string][]string),
	}
	o.RegisterServant(ServantKey, c.servant)
	return c
}

// Node returns the owning node's name.
func (c *Channel) Node() string { return c.node }

// Subscribe registers a local consumer for an event type.
func (c *Channel) Subscribe(eventType string, h Handler) {
	if h == nil {
		panic("eventchan: nil handler")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.subs[eventType] = append(c.subs[eventType], h)
}

// AddRemoteSink configures the gateway to forward events of the given type
// to the peer channel at addr. Adding the same (type, addr) pair twice is a
// no-op.
func (c *Channel) AddRemoteSink(eventType, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range c.remotes[eventType] {
		if a == addr {
			return
		}
	}
	c.remotes[eventType] = append(c.remotes[eventType], addr)
}

// Push delivers the event to local subscribers and forwards it through the
// gateway to every configured remote sink. It returns the first forwarding
// error, after attempting all sinks; local delivery always happens.
func (c *Channel) Push(ev Event) error {
	if ev.Source == "" {
		ev.Source = c.node
	}
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return fmt.Errorf("eventchan %s: closed", c.node)
	}
	handlers := append([]Handler(nil), c.subs[ev.Type]...)
	sinks := append([]string(nil), c.remotes[ev.Type]...)
	c.mu.RUnlock()

	c.mu.Lock()
	c.pushed++
	c.mu.Unlock()

	for _, h := range handlers {
		h(ev)
	}
	var firstErr error
	for _, addr := range sinks {
		if err := c.forward(ev, addr); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// forward sends the event to one peer channel.
func (c *Channel) forward(ev Event, addr string) error {
	body := encodeEvent(ev)
	c.mu.Lock()
	c.forwarded++
	c.mu.Unlock()
	if err := c.orb.InvokeOneWay(addr, ServantKey, opPush, body); err != nil {
		return fmt.Errorf("eventchan %s: forward %s to %s: %w", c.node, ev.Type, addr, err)
	}
	return nil
}

// servant receives pushes from peer gateways and delivers them locally only
// (no re-forwarding: the deployment engine configures a single-hop
// federation, so events cannot loop).
func (c *Channel) servant(op string, arg []byte) ([]byte, error) {
	if op != opPush {
		return nil, fmt.Errorf("eventchan %s: unknown operation %q", c.node, op)
	}
	ev, err := decodeEvent(arg)
	if err != nil {
		return nil, err
	}
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return nil, fmt.Errorf("eventchan %s: closed", c.node)
	}
	handlers := append([]Handler(nil), c.subs[ev.Type]...)
	c.mu.RUnlock()
	for _, h := range handlers {
		h(ev)
	}
	return nil, nil
}

// Close stops accepting pushes. The owning ORB's shutdown tears down the
// transport.
func (c *Channel) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
}

// Stats returns the local-push and remote-forward counters.
func (c *Channel) Stats() (pushed, forwarded int64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.pushed, c.forwarded
}
