package eventchan

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/orb"
)

// TestEncodeEventFieldTooLong is the regression test for the silent-
// truncation bug: Type or Source longer than 0xFFFF bytes used to have its
// length prefix wrap modulo 65536 and decode as garbage; now encoding (and
// Push, which validates up front) must fail.
func TestEncodeEventFieldTooLong(t *testing.T) {
	long := strings.Repeat("x", 0x10000)
	for _, ev := range []Event{
		{Type: long, Source: "s"},
		{Type: "t", Source: long},
	} {
		if _, err := encodeEvent(ev); !errors.Is(err, errFieldTooLong) {
			t.Errorf("encodeEvent(%d-byte field) error = %v, want errFieldTooLong", 0x10000, err)
		}
	}
	// Exactly 0xFFFF bytes is still representable.
	max := strings.Repeat("y", 0xFFFF)
	enc, err := encodeEvent(Event{Type: max, Source: max, Payload: []byte("p")})
	if err != nil {
		t.Fatalf("encodeEvent(0xFFFF-byte fields): %v", err)
	}
	got, err := decodeEvent(enc)
	if err != nil || got.Type != max || got.Source != max {
		t.Fatalf("round trip at the limit failed: %v", err)
	}
	// Push rejects before anything is queued or delivered.
	ch, _ := newNode(t, "n")
	ch.Subscribe("t", func(Event) { t.Error("oversized event delivered") })
	if err := ch.Push(Event{Type: "t", Source: long}); !errors.Is(err, errFieldTooLong) {
		t.Errorf("Push error = %v, want errFieldTooLong", err)
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	batches := [][]Event{
		nil,
		{{Type: "A", Source: "n1", Payload: []byte("one")}},
		{
			{Type: "A", Source: "n1", Payload: []byte("one")},
			{Type: "", Source: "", Payload: nil},
			{Type: "B", Source: "n2", Payload: make([]byte, 2048)},
		},
	}
	for _, batch := range batches {
		enc, err := encodeBatch(batch)
		if err != nil {
			t.Fatalf("encodeBatch(%d events): %v", len(batch), err)
		}
		got, err := decodeBatch(enc)
		if err != nil {
			t.Fatalf("decodeBatch(%d events): %v", len(batch), err)
		}
		if len(got) != len(batch) {
			t.Fatalf("round trip = %d events, want %d", len(got), len(batch))
		}
		for i := range batch {
			if got[i].Type != batch[i].Type || got[i].Source != batch[i].Source ||
				string(got[i].Payload) != string(batch[i].Payload) {
				t.Errorf("event %d = %+v, want %+v", i, got[i], batch[i])
			}
		}
	}
	for _, corrupt := range [][]byte{
		{},
		{0, 0, 0, 5},
		{0, 0, 0, 1, 0, 0, 0, 9, 0},
		{0xFF, 0xFF, 0xFF, 0xFF},
	} {
		if _, err := decodeBatch(corrupt); err == nil {
			t.Errorf("decodeBatch(%v) accepted corrupt input", corrupt)
		}
	}
	// Trailing garbage after the declared count is rejected.
	enc, err := encodeBatch([]Event{{Type: "A"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeBatch(append(enc, 0xAB)); err == nil {
		t.Error("decodeBatch accepted trailing bytes")
	}
}

// TestBatchedVsUnbatchedDifferential pushes the same event sequence through
// the batched gateway path and the pre-refactor scalar path and asserts the
// consumer observes the same events either way: batching is a transport
// optimization, not a semantic change.
func TestBatchedVsUnbatchedDifferential(t *testing.T) {
	const n = 200
	run := func(push func(*Channel, Event) error) map[string]int {
		producer, _ := newNode(t, "p")
		consumer, addr := newNode(t, "c")
		var mu sync.Mutex
		got := make(map[string]int, n)
		var count atomic.Int64
		done := make(chan struct{})
		consumer.Subscribe("E", func(ev Event) {
			mu.Lock()
			got[string(ev.Payload)]++
			mu.Unlock()
			if count.Add(1) == n {
				close(done)
			}
		})
		producer.AddRemoteSink("E", addr)
		for i := 0; i < n; i++ {
			if err := push(producer, Event{Type: "E", Payload: []byte(fmt.Sprintf("ev-%d", i))}); err != nil {
				t.Fatal(err)
			}
		}
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d/%d events crossed the gateway", count.Load(), n)
		}
		mu.Lock()
		defer mu.Unlock()
		return got
	}

	batched := run((*Channel).Push)
	unbatched := run((*Channel).PushUnbatched)
	if len(batched) != n || len(unbatched) != n {
		t.Fatalf("distinct events: batched %d, unbatched %d, want %d", len(batched), len(unbatched), n)
	}
	for k, v := range unbatched {
		if batched[k] != v {
			t.Errorf("event %q: batched delivered %d, unbatched %d", k, batched[k], v)
		}
	}
}

// TestBufferedSubscriptionPolicies covers both overflow policies of the
// per-subscriber bounded delivery queue.
func TestBufferedSubscriptionPolicies(t *testing.T) {
	ch, _ := newNode(t, "n")

	// DropNewest: a stuck handler fills the queue; further pushes shed.
	release := make(chan struct{})
	var delivered atomic.Int64
	sub := ch.SubscribeBuffered("D", 2, DropNewest, func(Event) {
		<-release
		delivered.Add(1)
	})
	for i := 0; i < 10; i++ {
		if err := ch.Push(Event{Type: "D"}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for sub.Dropped() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sub.Dropped() == 0 {
		t.Error("DropNewest subscription never dropped on a full queue")
	}
	close(release)

	// Block: every event is eventually delivered, pushers just wait.
	var got atomic.Int64
	all := make(chan struct{})
	ch.SubscribeBuffered("B", 1, Block, func(Event) {
		if got.Add(1) == 50 {
			close(all)
		}
	})
	go func() {
		for i := 0; i < 50; i++ {
			_ = ch.Push(Event{Type: "B"})
		}
	}()
	select {
	case <-all:
	case <-time.After(5 * time.Second):
		t.Fatalf("Block policy delivered %d/50 events", got.Load())
	}
	if ps := ch.PlaneStats(); ps.SubscriberDropped != sub.Dropped() {
		t.Errorf("PlaneStats.SubscriberDropped = %d, want %d", ps.SubscriberDropped, sub.Dropped())
	}
	ch.Close()
}

// TestSinkBlockPolicyDeliversAll verifies the gateway's Block overflow
// policy: a tiny pending queue throttles concurrent pushers instead of
// shedding, and every event still crosses the federation exactly once.
func TestSinkBlockPolicyDeliversAll(t *testing.T) {
	o := orb.New("p-block")
	t.Cleanup(o.Shutdown)
	producer := New("p-block", o, WithSinkQueueDepth(2), WithSinkBatch(1), WithSinkPolicy(Block))
	consumer, addr := newNode(t, "c-block")

	const pubs, per = 4, 200
	var got atomic.Int64
	done := make(chan struct{})
	consumer.Subscribe("E", func(Event) {
		if got.Add(1) == pubs*per {
			close(done)
		}
	})
	producer.AddRemoteSink("E", addr)

	var wg sync.WaitGroup
	var errs atomic.Int64
	for p := 0; p < pubs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := producer.Push(Event{Type: "E", Payload: []byte("x")}); err != nil {
					errs.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	if errs.Load() != 0 {
		t.Fatalf("%d pushes failed under Block policy", errs.Load())
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("delivered %d/%d events", got.Load(), pubs*per)
	}
	if ps := producer.PlaneStats(); ps.ForwardDropped != 0 {
		t.Errorf("Block policy dropped %d events", ps.ForwardDropped)
	}
	// Close wakes any pusher blocked on a full sink (exercised here only
	// for the no-waiter case; the churn test covers concurrent closes).
	producer.Close()
}

// TestSubscriptionCancelStopsDelivery verifies Cancel removes the consumer
// and that other subscribers of the same type are unaffected.
func TestSubscriptionCancelStopsDelivery(t *testing.T) {
	ch, _ := newNode(t, "n")
	var a, b atomic.Int64
	subA := ch.Subscribe("E", func(Event) { a.Add(1) })
	ch.Subscribe("E", func(Event) { b.Add(1) })
	if err := ch.Push(Event{Type: "E"}); err != nil {
		t.Fatal(err)
	}
	subA.Cancel()
	subA.Cancel() // idempotent
	if err := ch.Push(Event{Type: "E"}); err != nil {
		t.Fatal(err)
	}
	if a.Load() != 1 {
		t.Errorf("canceled subscriber saw %d events, want 1", a.Load())
	}
	if b.Load() != 2 {
		t.Errorf("remaining subscriber saw %d events, want 2", b.Load())
	}
}

// TestEventPlaneChurnStress publishes from many goroutines across several
// event types while subscribers churn (subscribe/unsubscribe mid-stream) on
// the sharded table and a federated sink receives batched pushes — the
// -race workout for the whole plane.
func TestEventPlaneChurnStress(t *testing.T) {
	producer, _ := newNode(t, "p")
	consumer, addr := newNode(t, "c")
	var remote atomic.Int64
	consumer.Subscribe("T0", func(Event) { remote.Add(1) })
	producer.AddRemoteSink("T0", addr)

	types := []string{"T0", "T1", "T2", "T3", "T4"}
	const (
		publishers = 8
		perPub     = 500
		churners   = 4
	)

	var local atomic.Int64
	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	for i := 0; i < churners; i++ {
		churnWG.Add(1)
		go func(i int) {
			defer churnWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				typ := types[i%len(types)]
				var sub *Subscription
				if i%2 == 0 {
					sub = producer.Subscribe(typ, func(Event) { local.Add(1) })
				} else {
					sub = producer.SubscribeBuffered(typ, 16, DropNewest, func(Event) { local.Add(1) })
				}
				sub.Cancel()
			}
		}(i)
	}

	var pubWG sync.WaitGroup
	var pushErrs atomic.Int64
	for p := 0; p < publishers; p++ {
		pubWG.Add(1)
		go func(p int) {
			defer pubWG.Done()
			for i := 0; i < perPub; i++ {
				ev := Event{Type: types[(p+i)%len(types)], Payload: []byte{byte(i)}}
				if err := producer.Push(ev); err != nil && !errors.Is(err, ErrBackpressure) {
					pushErrs.Add(1)
					return
				}
			}
		}(p)
	}
	pubWG.Wait()
	close(stop)
	churnWG.Wait()

	if pushErrs.Load() != 0 {
		t.Fatalf("%d pushes failed with non-backpressure errors", pushErrs.Load())
	}
	pushed, forwarded := producer.Stats()
	if pushed != publishers*perPub {
		t.Errorf("pushed = %d, want %d", pushed, publishers*perPub)
	}
	// Every T0 push was either forwarded or counted as dropped backpressure.
	ps := producer.PlaneStats()
	wantT0 := int64(0)
	for p := 0; p < publishers; p++ {
		for i := 0; i < perPub; i++ {
			if (p+i)%len(types) == 0 {
				wantT0++
			}
		}
	}
	if forwarded+ps.ForwardDropped != wantT0 {
		t.Errorf("forwarded %d + dropped %d != %d T0 pushes", forwarded, ps.ForwardDropped, wantT0)
	}
	if ps.ForwardBatches > forwarded {
		t.Errorf("batches %d > forwarded events %d", ps.ForwardBatches, forwarded)
	}
	// The remote side eventually observes every successfully forwarded event.
	deadline := time.Now().Add(10 * time.Second)
	for remote.Load() < forwarded-ps.ForwardErrors && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if ps.ForwardErrors == 0 && remote.Load() != forwarded {
		t.Errorf("remote delivered %d, want %d", remote.Load(), forwarded)
	}
	producer.Close()
	consumer.Close()
}
