package live

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ccm"
	"repro/internal/core"
	"repro/internal/eventchan"
)

// IdleResetter is the live IR component: it records Complete reports from
// the local subtask components and, when the node's executor drains (the
// idle detector), pushes an "Idle Resetting" event with the newly completed,
// unexpired subjobs to the admission controller.
type IdleResetter struct {
	mu       sync.Mutex
	proc     int
	strategy core.Strategy
	rec      *core.IdleResetter
	ch       *eventchan.Channel
	executor *Executor
	active   bool
	closed   bool

	// ReportPush measures the paper's operation 7 (report completed
	// subtasks: idle detection through event push).
	ReportPush core.OpStats
}

var _ ccm.Component = (*IdleResetter)(nil)

// NewIdleResetter returns an unconfigured IR component.
func NewIdleResetter() *IdleResetter { return &IdleResetter{} }

// Configure parses the processor ID and IR strategy.
func (ir *IdleResetter) Configure(attrs map[string]string) error {
	ir.mu.Lock()
	if ir.active {
		ir.mu.Unlock()
		return fmt.Errorf("%w: IR is activated; use Reconfigure", ErrAlreadyActive)
	}
	ir.mu.Unlock()
	proc, err := attrInt(attrs, AttrProcessor)
	if err != nil {
		return err
	}
	strategy, err := parseStrategyAttr(attrs, AttrIRStrategy)
	if err != nil {
		return err
	}
	// Publish under the lock the event handlers read through; configuration
	// arrives in an ORB dispatch goroutine.
	ir.mu.Lock()
	ir.proc = proc
	ir.strategy = strategy
	ir.rec = core.NewIdleResetter(strategy, proc)
	ir.mu.Unlock()
	return nil
}

// Activate subscribes to local Complete reports and installs the idle
// detector on the node executor. The ports are wired whenever an executor
// service exists — even under the None strategy, whose handlers stay inert
// — so a later Reconfigure can enable resetting without re-activation.
// Without an executor service the None strategy stays legal (and fully
// inert); any other strategy needs the idle detector and fails.
func (ir *IdleResetter) Activate(ctx *ccm.Context) error {
	exec, _ := ctx.Service(SvcExecutor).(*Executor)
	ir.mu.Lock()
	if ir.rec == nil {
		ir.mu.Unlock()
		return fmt.Errorf("%w: IR activated before configuration", ErrNotConfigured)
	}
	ir.active = true
	if exec == nil {
		inert := ir.strategy == core.StrategyNone
		ir.mu.Unlock()
		if inert {
			return nil
		}
		return errors.New("live: IR requires an executor service")
	}
	ir.ch = ctx.Events
	ir.executor = exec
	ir.mu.Unlock()
	// Subscribe and install the idle detector outside the lock (delivery
	// holds the shard lock, then handlers take ir.mu).
	ctx.Events.Subscribe(EvComplete, ir.onComplete)
	exec.SetIdleCallback(ir.onIdle)
	return nil
}

// Reconfigure hot-swaps the resetting strategy: the embedded recorder
// refilters its pending completions under the new rule, so the next idle
// report never leaks a completion the new strategy would not record.
// Enabling resetting on a component activated without an executor service
// is refused — the idle detector has nowhere to hang.
func (ir *IdleResetter) Reconfigure(attrs map[string]string) error {
	strategy := core.Strategy(0)
	if _, ok := attrs[AttrIRStrategy]; ok {
		var err error
		if strategy, err = parseStrategyAttr(attrs, AttrIRStrategy); err != nil {
			return err
		}
	}
	ir.mu.Lock()
	defer ir.mu.Unlock()
	if ir.rec == nil {
		return fmt.Errorf("%w: IR reconfigured before configuration", ErrNotConfigured)
	}
	if strategy == 0 {
		return nil
	}
	if strategy != core.StrategyNone && ir.executor == nil {
		return errors.New("live: IR cannot enable resetting without an executor service")
	}
	ir.strategy = strategy
	ir.rec.SetStrategy(strategy)
	return nil
}

// Passivate detaches the idle detector.
func (ir *IdleResetter) Passivate() error {
	ir.mu.Lock()
	defer ir.mu.Unlock()
	ir.closed = true
	if ir.executor != nil {
		ir.executor.SetIdleCallback(nil)
	}
	return nil
}

// onComplete records a local subjob completion.
func (ir *IdleResetter) onComplete(ev eventchan.Event) {
	var c Complete
	if err := decode(ev.Payload, &c); err != nil {
		return
	}
	ir.mu.Lock()
	defer ir.mu.Unlock()
	if ir.closed {
		return
	}
	ir.rec.Complete(c.Ref, c.Stage, c.Kind, time.Duration(c.DeadlineNanos))
}

// onIdle runs as the idle detector: it reports newly completed subjobs.
func (ir *IdleResetter) onIdle() {
	start := time.Now()
	ir.mu.Lock()
	if ir.closed {
		ir.mu.Unlock()
		return
	}
	reports := ir.rec.Report(time.Duration(nowNanos()))
	ch := ir.ch
	proc := ir.proc
	ir.mu.Unlock()
	if len(reports) == 0 {
		return
	}
	_ = ch.Push(eventchan.Event{Type: EvIdleReset, Payload: encode(IdleReset{
		Proc:    proc,
		Entries: reports,
	})})
	ir.ReportPush.Add(time.Since(start))
}
