// Package live binds the configurable middleware services to the real
// transport stack (internal/orb + internal/eventchan + internal/ccm): task
// effectors, the centralized admission controller and load balancer, idle
// resetters, and subtask executors run as CCM-style components on nodes
// connected by the federated event channel, exactly as in the paper's
// Figure 3 component diagram.
//
// The live binding exists for the parts of the evaluation that need real
// clocks and real message passing — the Section 7.3 overhead measurements —
// and for the runnable daemons and examples. The schedulability experiments
// (Figures 5 and 6) use the deterministic simulation binding in
// internal/core instead.
package live

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"repro/internal/sched"
)

// Event type names routed through the federated event channel. TaskArrive,
// Accept, Trigger and IdleReset cross the network (Figure 3's event
// source/sink ports); Release, Complete and Done stay node-local.
const (
	// EvTaskArrive flows TE → AC when a job arrives.
	EvTaskArrive = "TaskArrive"
	// EvAccept flows AC → TE with the admission decision and placement.
	EvAccept = "Accept"
	// EvTrigger flows between consecutive subtask components, possibly
	// across nodes.
	EvTrigger = "Trigger"
	// EvIdleReset flows IR → AC when a processor goes idle.
	EvIdleReset = "IdleReset"
	// EvRelease is the local TE → first-subtask release path (the paper's
	// Release method call).
	EvRelease = "Release"
	// EvComplete is the local subtask → IR completion report (the paper's
	// Complete method call).
	EvComplete = "Complete"
	// EvDone is a local notification that a job's last subtask finished;
	// drivers and metrics collectors subscribe to it.
	EvDone = "Done"
	// EvHeartbeat flows node → manager: each application node's beacon
	// announces liveness to the failure detector.
	EvHeartbeat = "Heartbeat"
	// EvReplicate flows AC → standby AC with one ledger mutation, so a warm
	// standby mirrors admission state without a rebuild on promotion.
	EvReplicate = "Replicate"
)

// TaskArrive announces a job arrival to the admission controller.
type TaskArrive struct {
	// Task and Job identify the arrival.
	Task string
	Job  int64
	// Proc is the arrival processor.
	Proc int
	// ArrivalNanos is the arrival wall-clock time (UnixNano), the base for
	// the job's absolute deadline.
	ArrivalNanos int64
}

// Accept carries the admission decision back to the task effectors.
type Accept struct {
	// Task and Job identify the arrival the decision answers.
	Task string
	Job  int64
	// Ok reports whether the job may be released.
	Ok bool
	// Placement assigns each stage to a processor (nil when rejected).
	Placement []sched.PlacedStage
	// Relocated reports that the first stage moved off the arrival
	// processor, so the duplicate's TE must release it.
	Relocated bool
	// PerTaskDecision marks a decision that settles a periodic task under
	// per-task admission control: the TE caches it.
	PerTaskDecision bool
	// ArrivalNanos echoes the arrival time.
	ArrivalNanos int64
	// Epoch is the reconfiguration epoch the decision was made under. Task
	// effectors only cache per-task decisions stamped with their current
	// epoch, so a decision from before a strategy swap releases its own job
	// but never survives as cached policy.
	Epoch int64
}

// Trigger releases the next subtask in a chain.
type Trigger struct {
	// Task and Job identify the in-flight job.
	Task string
	Job  int64
	// Stage is the subtask to execute now.
	Stage int
	// Placement is the job's full assignment, so downstream stages route
	// themselves.
	Placement []sched.PlacedStage
	// ArrivalNanos is the job's arrival time, carried for response-time and
	// deadline accounting.
	ArrivalNanos int64
}

// IdleReset reports completed subjobs from an idle processor.
type IdleReset struct {
	// Proc is the reporting processor.
	Proc int
	// Entries are the completed, unexpired contributions to remove.
	Entries []sched.EntryRef
}

// Complete is the node-local subtask → IR completion report.
type Complete struct {
	// Ref and Stage identify the completed subjob.
	Ref   sched.JobRef
	Stage int
	// Kind is the owning task's kind (IR-per-task filters on it).
	Kind sched.TaskKind
	// DeadlineNanos is the job's absolute deadline (UnixNano).
	DeadlineNanos int64
}

// Heartbeat is one liveness beacon from an application node.
type Heartbeat struct {
	// Node is the beacon's node name; Proc its application processor.
	Node string
	Proc int
	// Seq increases by one per beacon, so the detector can distinguish a
	// fresh beacon from a delayed duplicate.
	Seq int64
	// SentNanos is the send wall-clock time (UnixNano).
	SentNanos int64
}

// Replication record kinds: each RepRecord applies exactly one ledger
// mutation on the standby's mirror.
const (
	// RepAdmit adds an admitted job's contributions.
	RepAdmit = "admit"
	// RepExpire removes a job's unreported contributions at deadline expiry.
	RepExpire = "expire"
	// RepReset clears completed-and-reported contributions (idle reset).
	RepReset = "reset"
	// RepWithdraw removes every contribution of a departing task.
	RepWithdraw = "withdraw"
	// RepRelocate moves a task's permanent reservation to a new placement
	// (AC-per-task with LB-per-job: the reservation follows the jobs).
	RepRelocate = "relocate"
)

// RepRecord is one epoch-stamped ledger mutation on the AC's replication
// stream. The standby applies records in Seq order and ignores records
// stamped with an epoch older than its fence, which makes pre-failover
// decisions from a deposed AC detectable and discardable.
type RepRecord struct {
	// Epoch is the reconfiguration epoch the mutation happened under.
	Epoch int64
	// Seq is the AC-local emission sequence (strictly increasing).
	Seq int64
	// Kind is one of the Rep* constants.
	Kind string
	// Ref identifies the job (RepAdmit, RepExpire).
	Ref sched.JobRef
	// TaskKind, Placement, Permanent and ExpiryNanos describe an admission
	// (RepAdmit only). ExpiryNanos is zero for permanent reservations.
	TaskKind    sched.TaskKind
	Placement   []sched.PlacedStage
	Permanent   bool
	ExpiryNanos int64
	// Task names the departing task (RepWithdraw).
	Task string
	// Entries are the contributions cleared by an idle reset (RepReset).
	Entries []sched.EntryRef
}

// Done announces the completion of a job's last subtask.
type Done struct {
	// Task and Job identify the finished job.
	Task string
	Job  int64
	// ArrivalNanos and DoneNanos bound the response time.
	ArrivalNanos int64
	DoneNanos    int64
}

// encode gob-encodes an event payload.
func encode(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		// Payload types are closed over in this package; failure to encode
		// one is a programming error.
		panic(fmt.Sprintf("live: encode %T: %v", v, err))
	}
	return buf.Bytes()
}

// decode gob-decodes an event payload into out, returning false (and
// logging nothing) on corrupt payloads so handlers can drop them.
func decode(payload []byte, out any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(out); err != nil {
		return fmt.Errorf("live: decode %T: %w", out, err)
	}
	return nil
}

// nowNanos returns the current wall clock as UnixNano. Live deadlines use
// UnixNano durations so every node on a host shares the same base; the DES
// binding uses virtual offsets instead.
func nowNanos() int64 { return time.Now().UnixNano() }
