package live

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/ccm"
	"repro/internal/eventchan"
	"repro/internal/sched"
)

// StandbyAC is the warm-standby admission state mirror: it tails the active
// AC's epoch-stamped replication stream (EvReplicate) and applies each
// ledger mutation to a private ledger, so promotion after an AC failure
// needs no state rebuild — the mirror IS the ledger a successor AC would
// start from.
//
// The epoch fence is the split-brain guard: after a failover advances the
// configuration epoch, Fence(newEpoch) makes the standby discard any
// straggling records stamped with an older epoch — decisions made by the
// deposed AC after the cluster moved on are detectable (their stamp is
// stale) and ignorable, exactly the property the replication stream's
// epoch stamping exists to provide.
//
// Ordering: records carry an AC-local strictly increasing Seq. Records for
// one job are causally ordered by the AC itself (a job is admitted before
// it can expire or reset); records for different jobs commute on the
// ledger, so the mirror applies them as they arrive and tracks the highest
// Seq seen for observability.
type StandbyAC struct {
	mu     sync.Mutex
	ledger *sched.Ledger
	sub    *eventchan.Subscription

	// minEpoch is the fence: records stamped with an older epoch are ignored.
	minEpoch int64
	// lastSeq is the highest replication Seq applied.
	lastSeq int64
	// applied counts applied records; ignored counts records dropped by the
	// epoch fence; failed counts records whose ledger mutation errored
	// (duplicate admit after a promote race — benign, but counted).
	applied int64
	ignored int64
	failed  int64
}

var _ ccm.Component = (*StandbyAC)(nil)

// NewStandbyAC returns an unconfigured standby.
func NewStandbyAC() *StandbyAC {
	return &StandbyAC{}
}

// Configure sizes the mirror ledger from the Processors attribute.
func (s *StandbyAC) Configure(attrs map[string]string) error {
	procs, err := attrInt(attrs, AttrProcessors)
	if err != nil {
		return err
	}
	if procs <= 0 {
		return fmt.Errorf("live: standby: non-positive processor count %d", procs)
	}
	s.mu.Lock()
	s.ledger = sched.NewLedger(procs)
	s.mu.Unlock()
	return nil
}

// Activate subscribes to the replication stream.
func (s *StandbyAC) Activate(ctx *ccm.Context) error {
	s.mu.Lock()
	if s.ledger == nil {
		s.mu.Unlock()
		return fmt.Errorf("%w: standby activated before configuration", ErrNotConfigured)
	}
	s.mu.Unlock()
	s.sub = ctx.Events.Subscribe(EvReplicate, s.onReplicate)
	return nil
}

// Passivate detaches from the stream. The mirror ledger stays readable.
func (s *StandbyAC) Passivate() error {
	if s.sub != nil {
		s.sub.Cancel()
		s.sub = nil
	}
	return nil
}

// onReplicate applies one replicated ledger mutation.
func (s *StandbyAC) onReplicate(ev eventchan.Event) {
	var rec RepRecord
	if err := decode(ev.Payload, &rec); err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ledger == nil {
		return
	}
	if rec.Epoch < s.minEpoch {
		s.ignored++
		return
	}
	if rec.Seq > s.lastSeq {
		s.lastSeq = rec.Seq
	}
	switch rec.Kind {
	case RepAdmit:
		if err := s.ledger.AddJob(rec.Ref, rec.TaskKind, rec.Placement, rec.Permanent, time.Duration(rec.ExpiryNanos)); err != nil {
			s.failed++
			return
		}
	case RepExpire:
		s.ledger.ExpireJob(rec.Ref)
	case RepReset:
		for _, r := range rec.Entries {
			s.ledger.ResetReported(r)
		}
	case RepWithdraw:
		if rec.Task != "" {
			s.ledger.RemoveTask(rec.Task)
		} else {
			s.ledger.WithdrawJob(rec.Ref)
		}
	case RepRelocate:
		// Under AC-per-task a task owns exactly one ledger job (its
		// permanent reservation); resolve its ref on the mirror and move it.
		for _, ref := range s.ledger.ActiveJobs() {
			if ref.Task == rec.Task {
				if err := s.ledger.Relocate(ref, rec.Placement); err != nil {
					s.failed++
					return
				}
				break
			}
		}
	default:
		s.failed++
		return
	}
	s.applied++
}

// Fence raises the epoch floor: replication records stamped with an older
// epoch are ignored from now on. Called at failover, with the post-failover
// epoch, before any successor AC starts deciding.
func (s *StandbyAC) Fence(epoch int64) {
	s.mu.Lock()
	if epoch > s.minEpoch {
		s.minEpoch = epoch
	}
	s.mu.Unlock()
}

// Promote hands over the mirrored ledger — the whole point of the warm
// standby: a successor AC adopts it as-is, with no rebuild or replay. The
// standby stops mirroring into it (a fresh empty ledger takes its place so
// late records cannot corrupt the promoted state).
func (s *StandbyAC) Promote() *sched.Ledger {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.ledger
	if l != nil {
		s.ledger = sched.NewLedger(l.NumProcs())
	}
	return l
}

// StandbyStats is an observability snapshot of the mirror.
type StandbyStats struct {
	// Applied, Ignored and Failed count replication records by outcome.
	Applied int64
	Ignored int64
	Failed  int64
	// LastSeq is the highest replication sequence applied; MinEpoch the
	// current fence.
	LastSeq  int64
	MinEpoch int64
	// ActiveJobs is the mirror ledger's live job count.
	ActiveJobs int
}

// Stats returns a consistent snapshot.
func (s *StandbyAC) Stats() StandbyStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StandbyStats{
		Applied:  s.applied,
		Ignored:  s.ignored,
		Failed:   s.failed,
		LastSeq:  s.lastSeq,
		MinEpoch: s.minEpoch,
	}
	if s.ledger != nil {
		st.ActiveJobs = len(s.ledger.ActiveJobs())
	}
	return st
}

// Audit checks the mirror ledger's internal invariants.
func (s *StandbyAC) Audit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ledger == nil {
		return fmt.Errorf("%w: standby has no ledger", ErrNotConfigured)
	}
	return s.ledger.CheckInvariants()
}
