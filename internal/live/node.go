package live

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/ccm"
	"repro/internal/eventchan"
	"repro/internal/orb"
)

// Service names components resolve from the container context.
const (
	// SvcExecutor is the node's *Executor.
	SvcExecutor = "executor"
	// SvcExecScale is a float64 multiplier applied to subtask execution
	// times (examples and tests compress time with values < 1).
	SvcExecScale = "execscale"
	// SvcContainer is the node's *ccm.Container, for components that
	// resolve co-deployed peers (the LB's receptacle to the AC).
	SvcContainer = "container"
)

// Node is one live middleware node: an ORB endpoint, a federated event
// channel, an executor, and a component container. Application processors
// and the task manager are both Nodes; the manager simply hosts different
// components and takes Proc = -1.
type Node struct {
	// Name is the node's diagnostic name.
	Name string
	// Proc is the application processor index, or -1 for the task manager.
	Proc int
	// Addr is the bound ORB listen address.
	Addr string

	// ORB, Channel, Container and Executor are the node's substrates.
	ORB       *orb.ORB
	Channel   *eventchan.Channel
	Container *ccm.Container
	Executor  *Executor
}

// NodeOption tunes a node's transport stack at assembly time.
type NodeOption func(*nodeConfig)

// nodeConfig collects the transport options a NodeOption may set.
type nodeConfig struct {
	orbOpts  []orb.Option
	chanOpts []eventchan.Option
}

// WithORBOptions forwards options to the node's ORB (send-queue depth,
// write-batch cap, legacy writer).
func WithORBOptions(opts ...orb.Option) NodeOption {
	return func(c *nodeConfig) { c.orbOpts = append(c.orbOpts, opts...) }
}

// WithChannelOptions forwards options to the node's event channel (sink
// queue depth, sink batch cap).
func WithChannelOptions(opts ...eventchan.Option) NodeOption {
	return func(c *nodeConfig) { c.chanOpts = append(c.chanOpts, opts...) }
}

// NodeTransportStats combines a node's write-path and event-plane counters
// for overload accounting.
type NodeTransportStats struct {
	// ORB counts frames, flushes, bytes and refused overload sends.
	ORB orb.TransportStats
	// Events counts pushes, forwards, federation batches and drops.
	Events eventchan.PlaneStats
}

// NewNode assembles and starts a node listening on bindAddr (use
// "127.0.0.1:0" for tests). execScale compresses subtask execution times;
// pass 1.0 for real time. Options tune the transport plane; defaults suit
// tests and examples.
func NewNode(name string, proc int, bindAddr string, execScale float64, opts ...NodeOption) (*Node, error) {
	if execScale <= 0 {
		return nil, fmt.Errorf("live: node %s: execScale must be positive, got %g", name, execScale)
	}
	var cfg nodeConfig
	// Live nodes default the gateway to the Block policy: the event plane
	// carries control events (Accept, Release, Trigger) whose silent loss
	// strands admitted jobs, so a full sink throttles pushers instead of
	// shedding. Deployments that prefer shedding pass
	// WithChannelOptions(eventchan.WithSinkPolicy(eventchan.DropNewest)).
	cfg.chanOpts = append(cfg.chanOpts, eventchan.WithSinkPolicy(eventchan.Block))
	for _, opt := range opts {
		opt(&cfg)
	}
	o := orb.New(name, cfg.orbOpts...)
	addr, err := o.Listen(bindAddr)
	if err != nil {
		return nil, err
	}
	ch := eventchan.New(name, o, cfg.chanOpts...)
	exec := NewExecutor()
	ctx := &ccm.Context{
		Node:   name,
		ORB:    o,
		Events: ch,
		Services: map[string]any{
			SvcExecutor:  exec,
			SvcExecScale: execScale,
		},
	}
	container := ccm.NewContainer(ctx)
	ctx.Services[SvcContainer] = container
	return &Node{
		Name:      name,
		Proc:      proc,
		Addr:      addr.String(),
		ORB:       o,
		Channel:   ch,
		Container: container,
		Executor:  exec,
	}, nil
}

// Close shuts the node down: container passivation, executor stop, then
// transport teardown.
func (n *Node) Close() error {
	err := n.Container.Shutdown()
	n.Executor.Close()
	n.Channel.Close()
	n.ORB.Shutdown()
	return err
}

// TransportStats snapshots the node's transport-plane counters.
func (n *Node) TransportStats() NodeTransportStats {
	return NodeTransportStats{
		ORB:    n.ORB.TransportStats(),
		Events: n.Channel.PlaneStats(),
	}
}

// --- attribute helpers shared by the live components ---

// attrString fetches a required string attribute.
func attrString(attrs map[string]string, key string) (string, error) {
	v, ok := attrs[key]
	if !ok || v == "" {
		return "", fmt.Errorf("live: missing attribute %q", key)
	}
	return v, nil
}

// attrInt fetches a required integer attribute.
func attrInt(attrs map[string]string, key string) (int, error) {
	s, err := attrString(attrs, key)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("live: attribute %q: %w", key, err)
	}
	return n, nil
}

// attrInt64 fetches a required 64-bit integer attribute.
func attrInt64(attrs map[string]string, key string) (int64, error) {
	s, err := attrString(attrs, key)
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("live: attribute %q: %w", key, err)
	}
	return n, nil
}

// attrDuration fetches a required duration attribute ("250ms").
func attrDuration(attrs map[string]string, key string) (time.Duration, error) {
	s, err := attrString(attrs, key)
	if err != nil {
		return 0, err
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("live: attribute %q: %w", key, err)
	}
	return d, nil
}

// attrBool fetches an optional boolean attribute (default false).
func attrBool(attrs map[string]string, key string) (bool, error) {
	s, ok := attrs[key]
	if !ok || s == "" {
		return false, nil
	}
	b, err := strconv.ParseBool(s)
	if err != nil {
		return false, fmt.Errorf("live: attribute %q: %w", key, err)
	}
	return b, nil
}
