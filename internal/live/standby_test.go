package live

import (
	"errors"
	"testing"
	"time"

	"repro/internal/ccm"
	"repro/internal/eventchan"
	"repro/internal/sched"
)

// pushRep pushes one replication record into the node's channel, which
// delivers it synchronously to the standby's subscription.
func pushRep(t *testing.T, node *Node, rec RepRecord) {
	t.Helper()
	if err := node.Channel.Push(eventchan.Event{Type: EvReplicate, Payload: encode(rec)}); err != nil {
		t.Fatal(err)
	}
}

func TestStandbyACMirrorsFencesAndPromotes(t *testing.T) {
	node, err := NewNode("sb-test", -1, "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	sb := NewStandbyAC()
	if err := sb.Activate(&ccm.Context{Node: "sb-test", ORB: node.ORB, Events: node.Channel}); !errors.Is(err, ErrNotConfigured) {
		t.Fatalf("Activate before Configure: %v, want ErrNotConfigured", err)
	}
	if err := sb.Configure(nil); err == nil {
		t.Error("Configure accepted missing processor count")
	}
	if err := sb.Configure(map[string]string{AttrProcessors: "0"}); err == nil {
		t.Error("Configure accepted zero processors")
	}
	if err := sb.Configure(map[string]string{AttrProcessors: "2"}); err != nil {
		t.Fatal(err)
	}
	if err := sb.Activate(&ccm.Context{Node: "sb-test", ORB: node.ORB, Events: node.Channel}); err != nil {
		t.Fatal(err)
	}
	defer sb.Passivate()

	expiry := time.Duration(time.Now().Add(time.Hour).UnixNano())
	refX := sched.JobRef{Task: "x", Job: 1}
	pushRep(t, node, RepRecord{
		Epoch: 0, Seq: 1, Kind: RepAdmit, Ref: refX, TaskKind: sched.Aperiodic,
		Placement:   []sched.PlacedStage{{Stage: 0, Proc: 0, Util: 0.1}, {Stage: 1, Proc: 1, Util: 0.2}},
		ExpiryNanos: int64(expiry),
	})
	st := sb.Stats()
	if st.Applied != 1 || st.ActiveJobs != 1 || st.LastSeq != 1 {
		t.Fatalf("after admit: %+v", st)
	}

	// The mirror applies expiry and withdrawal records.
	pushRep(t, node, RepRecord{Epoch: 0, Seq: 2, Kind: RepExpire, Ref: refX})
	if st = sb.Stats(); st.Applied != 2 || st.ActiveJobs != 0 {
		t.Fatalf("after expire: %+v", st)
	}

	// The epoch fence drops records from the deposed era.
	sb.Fence(5)
	pushRep(t, node, RepRecord{
		Epoch: 2, Seq: 3, Kind: RepAdmit, Ref: sched.JobRef{Task: "stale", Job: 9},
		TaskKind:  sched.Aperiodic,
		Placement: []sched.PlacedStage{{Stage: 0, Proc: 0, Util: 0.1}},
	})
	st = sb.Stats()
	if st.Ignored != 1 || st.ActiveJobs != 0 || st.MinEpoch != 5 {
		t.Fatalf("fence leaked a stale record: %+v", st)
	}
	// Fence never lowers the floor.
	sb.Fence(3)
	if st = sb.Stats(); st.MinEpoch != 5 {
		t.Fatalf("Fence lowered the floor: %+v", st)
	}

	// Post-fence records apply; a task withdrawal clears all its jobs.
	for i, job := range []int64{10, 11} {
		pushRep(t, node, RepRecord{
			Epoch: 5, Seq: 4 + int64(i), Kind: RepAdmit,
			Ref: sched.JobRef{Task: "y", Job: job}, TaskKind: sched.Aperiodic,
			Placement:   []sched.PlacedStage{{Stage: 0, Proc: 1, Util: 0.05}},
			ExpiryNanos: int64(expiry),
		})
	}
	pushRep(t, node, RepRecord{Epoch: 5, Seq: 6, Kind: RepWithdraw, Task: "y"})
	if st = sb.Stats(); st.ActiveJobs != 0 || st.LastSeq != 6 {
		t.Fatalf("after task withdrawal: %+v", st)
	}

	// Unknown record kinds are counted, not applied.
	pushRep(t, node, RepRecord{Epoch: 5, Seq: 7, Kind: "mystery"})
	if st = sb.Stats(); st.Failed != 1 {
		t.Fatalf("unknown kind not counted: %+v", st)
	}
	if err := sb.Audit(); err != nil {
		t.Fatal(err)
	}

	// Promote hands over the mirror and replaces it with a fresh ledger.
	pushRep(t, node, RepRecord{
		Epoch: 5, Seq: 8, Kind: RepAdmit, Ref: sched.JobRef{Task: "z", Job: 1},
		TaskKind: sched.Periodic, Permanent: true,
		Placement: []sched.PlacedStage{{Stage: 0, Proc: 0, Util: 0.3}},
	})
	ledger := sb.Promote()
	if ledger == nil || len(ledger.ActiveJobs()) != 1 {
		t.Fatalf("promoted ledger = %v", ledger)
	}
	if err := ledger.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st = sb.Stats(); st.ActiveJobs != 0 {
		t.Fatalf("standby kept jobs after promotion: %+v", st)
	}
	// Late records land on the fresh ledger, not the promoted one.
	pushRep(t, node, RepRecord{
		Epoch: 5, Seq: 9, Kind: RepAdmit, Ref: sched.JobRef{Task: "late", Job: 1},
		TaskKind:    sched.Aperiodic,
		Placement:   []sched.PlacedStage{{Stage: 0, Proc: 1, Util: 0.1}},
		ExpiryNanos: int64(expiry),
	})
	if got := len(ledger.ActiveJobs()); got != 1 {
		t.Errorf("late record corrupted the promoted ledger: %d jobs", got)
	}
	if st = sb.Stats(); st.ActiveJobs != 1 {
		t.Errorf("fresh mirror missed the late record: %+v", st)
	}
}
