package live

import (
	"errors"
	"testing"

	"repro/internal/ccm"
	"repro/internal/core"
	"repro/internal/eventchan"
	"repro/internal/sched"
)

// TestSentinelErrors pins the exported sentinels so Binding callers can
// discriminate failures with errors.Is.
func TestSentinelErrors(t *testing.T) {
	// Activate before Configure → ErrNotConfigured.
	node, err := NewNode("sent-test", -1, "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	ctx := &ccm.Context{Node: "sent-test", ORB: node.ORB, Events: node.Channel}
	if err := NewAdmissionController().Activate(ctx); !errors.Is(err, ErrNotConfigured) {
		t.Errorf("AC Activate error = %v, want ErrNotConfigured", err)
	}
	if err := NewIdleResetter().Activate(ctx); !errors.Is(err, ErrNotConfigured) {
		t.Errorf("IR Activate error = %v, want ErrNotConfigured", err)
	}
	if err := NewTaskEffector().Reconfigure(nil); !errors.Is(err, ErrNotConfigured) {
		t.Errorf("TE Reconfigure error = %v, want ErrNotConfigured", err)
	}

	// Bad strategy attributes → ErrInvalidStrategy.
	attrs := acAttrs()
	attrs[AttrIRStrategy] = "Z"
	if err := NewAdmissionController().Configure(attrs); !errors.Is(err, ErrInvalidStrategy) {
		t.Errorf("bad strategy error = %v, want ErrInvalidStrategy", err)
	}
	attrs = acAttrs()
	attrs[AttrACStrategy] = "T"
	attrs[AttrIRStrategy] = "J"
	if err := NewAdmissionController().Configure(attrs); !errors.Is(err, ErrInvalidStrategy) {
		t.Errorf("contradictory combo error = %v, want ErrInvalidStrategy", err)
	}

	// Configure after Activate → ErrAlreadyActive.
	ac := NewAdmissionController()
	if err := ac.Configure(acAttrs()); err != nil {
		t.Fatal(err)
	}
	if err := ac.Activate(ctx); err != nil {
		t.Fatal(err)
	}
	if err := ac.Configure(acAttrs()); !errors.Is(err, ErrAlreadyActive) {
		t.Errorf("re-Configure error = %v, want ErrAlreadyActive", err)
	}

	// Reconfigure without quiesce → ErrNotQuiesced; double quiesce →
	// ErrQuiesced.
	if err := ac.Reconfigure(map[string]string{}); !errors.Is(err, ErrNotQuiesced) {
		t.Errorf("unquiesced Reconfigure error = %v, want ErrNotQuiesced", err)
	}
	if _, err := ac.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if _, err := ac.Quiesce(); !errors.Is(err, ErrQuiesced) {
		t.Errorf("double Quiesce error = %v, want ErrQuiesced", err)
	}
	if _, err := ac.Resume(); err != nil {
		t.Fatal(err)
	}
}

// TestACReconfigureSwapsStrategies pins the AC's hot-swap under quiesce:
// the embedded controller changes combination without being rebuilt.
func TestACReconfigureSwapsStrategies(t *testing.T) {
	node, err := NewNode("acre-test", -1, "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	ac := NewAdmissionController()
	if err := ac.Configure(acAttrs()); err != nil { // J_T_N
		t.Fatal(err)
	}
	if err := ac.Activate(&ccm.Context{Node: "acre-test", ORB: node.ORB, Events: node.Channel}); err != nil {
		t.Fatal(err)
	}
	ctrl := ac.Controller()
	epoch, err := ac.Quiesce()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Errorf("upcoming epoch = %d", epoch)
	}
	err = ac.Reconfigure(map[string]string{
		AttrACStrategy: "J", AttrIRStrategy: "J", AttrLBStrategy: "J", AttrEpoch: "1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := ac.Resume(); err != nil || n != 0 {
		t.Fatalf("Resume = %d, %v", n, err)
	}
	if got := ctrl.Config().String(); got != "J_J_J" {
		t.Errorf("controller config = %s, want J_J_J", got)
	}
	if ac.Controller() != ctrl {
		t.Error("controller was rebuilt; the ledger did not survive")
	}
	if ac.Epoch() != 1 {
		t.Errorf("epoch = %d", ac.Epoch())
	}
	// Invalid target under quiesce leaves the config untouched.
	if _, err := ac.Quiesce(); err != nil {
		t.Fatal(err)
	}
	err = ac.Reconfigure(map[string]string{AttrACStrategy: "T", AttrIRStrategy: "J"})
	if !errors.Is(err, ErrInvalidStrategy) {
		t.Errorf("contradictory Reconfigure error = %v", err)
	}
	// A malformed epoch must also fail BEFORE anything mutates: an error
	// return means nothing changed.
	if err := ac.Reconfigure(map[string]string{AttrACStrategy: "T", AttrEpoch: "bogus"}); err == nil {
		t.Error("bogus epoch accepted")
	}
	if _, err := ac.Resume(); err != nil {
		t.Fatal(err)
	}
	if got := ctrl.Config().String(); got != "J_J_J" {
		t.Errorf("config disturbed by rejected target: %s", got)
	}
	if ac.Epoch() != 1 {
		t.Errorf("epoch disturbed by rejected target: %d", ac.Epoch())
	}
}

// TestTEReconfigureDropsStaleDecisions pins the epoch filter: cached
// per-task decisions clear on reconfigure, and an Accept stamped with the
// old epoch releases its job without being re-cached.
func TestTEReconfigureDropsStaleDecisions(t *testing.T) {
	node, err := NewNode("tere-test", 0, "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	te := NewTaskEffector()
	if err := te.Configure(map[string]string{AttrProcessor: "0", AttrWorkload: testWorkloadJSON}); err != nil {
		t.Fatal(err)
	}
	if err := te.Activate(&ccm.Context{Node: "tere-test", ORB: node.ORB, Events: node.Channel}); err != nil {
		t.Fatal(err)
	}
	// Arrive then deliver an epoch-0 per-task decision: it caches.
	if _, err := te.Arrive("p"); err != nil {
		t.Fatal(err)
	}
	accept := func(job int64, epoch int64) {
		te.onAccept(eventchan.Event{Type: EvAccept, Payload: encode(Accept{
			Task: "p", Job: job, Ok: true,
			Placement:       []sched.PlacedStage{{Stage: 0, Proc: 0, Util: 0.05}},
			PerTaskDecision: true,
			Epoch:           epoch,
		})})
	}
	accept(0, 0)
	cached := len(*te.decided.Load())
	if cached != 1 {
		t.Fatalf("decision not cached: %d", cached)
	}

	// Reconfigure to epoch 1: the cache clears.
	if err := te.Reconfigure(map[string]string{AttrEpoch: "1"}); err != nil {
		t.Fatal(err)
	}
	cached = len(*te.decided.Load())
	if cached != 0 {
		t.Fatalf("cache survived reconfigure: %d", cached)
	}

	// A stale epoch-0 Accept for a held job releases it but is not cached.
	if _, err := te.Arrive("p"); err != nil {
		t.Fatal(err)
	}
	accept(1, 0)
	cached = len(*te.decided.Load())
	released := te.StatsSnapshot().Released
	if cached != 0 {
		t.Error("stale-epoch decision was cached")
	}
	if released != 2 {
		t.Errorf("released = %d, want 2 (stale decision must still release its job)", released)
	}
	// A current-epoch Accept caches again.
	if _, err := te.Arrive("p"); err != nil {
		t.Fatal(err)
	}
	accept(2, 1)
	cached = len(*te.decided.Load())
	if cached != 1 {
		t.Error("current-epoch decision not cached")
	}
}

// TestIRReconfigureSwapsRule pins the IR hot-swap: pending completions are
// refiltered and the strategy changes in place.
func TestIRReconfigureSwapsRule(t *testing.T) {
	ir := core.NewIdleResetter(core.StrategyPerJob, 0)
	ir.Complete(sched.JobRef{Task: "p", Job: 0}, 0, sched.Periodic, 1e9)
	ir.Complete(sched.JobRef{Task: "a", Job: 0}, 0, sched.Aperiodic, 1e9)
	if ir.PendingCount() != 2 {
		t.Fatalf("pending = %d", ir.PendingCount())
	}
	// Per-job → per-task drops the pending periodic completion.
	ir.SetStrategy(core.StrategyPerTask)
	if ir.PendingCount() != 1 {
		t.Errorf("pending after per-task swap = %d, want 1", ir.PendingCount())
	}
	// → none drops everything.
	ir.SetStrategy(core.StrategyNone)
	if ir.PendingCount() != 0 {
		t.Errorf("pending after none swap = %d", ir.PendingCount())
	}

	// The live component refuses enabling IR without an executor.
	comp := NewIdleResetter()
	if err := comp.Configure(map[string]string{AttrProcessor: "0", AttrIRStrategy: "N"}); err != nil {
		t.Fatal(err)
	}
	node, err := NewNode("irre-test", 0, "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := comp.Activate(&ccm.Context{Node: "irre-test", ORB: node.ORB, Events: node.Channel}); err != nil {
		t.Fatal(err)
	}
	if err := comp.Reconfigure(map[string]string{AttrIRStrategy: "J"}); err == nil {
		t.Error("IR enabled resetting without an executor service")
	}
	if err := comp.Reconfigure(map[string]string{}); err != nil {
		t.Errorf("no-op reconfigure failed: %v", err)
	}
}
