package live

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ccm"
	"repro/internal/core"
	"repro/internal/eventchan"
	"repro/internal/orb"
	"repro/internal/sched"
	"repro/internal/spec"
)

// teTask is the effector's per-task record: the (swappable) task definition
// and the job-number allocator. The record survives reconfigurations as long
// as its task ID stays in the workload, so job numbering never restarts or
// races across a swap.
type teTask struct {
	task    atomic.Pointer[sched.Task]
	nextJob atomic.Int64
}

// TaskEffector is the live TE component (paper Section 5): it holds arriving
// tasks in a waiting queue, pushes "Task Arrive" events to the admission
// controller, and releases jobs when the corresponding "Accept" event
// arrives. Its Per-task behavior caches per-task admission decisions so
// subsequent jobs of an admitted periodic task release immediately without
// another round trip.
//
// One instance runs on each application processor. Accept events fan out to
// every effector; the effector on the task's home (arrival) processor owns
// the decision and publishes the Release event, which the federation routes
// to the node hosting the assigned first stage — when the first stage was
// re-allocated, that is the duplicate's node (the paper's operation 6).
//
// Concurrency: the cached per-task fast path is lock-free — the task index
// and the decision cache are copy-on-write maps behind atomic pointers, job
// numbers come from per-task atomic counters, and the stats are atomic — so
// a flood of cached releases never contends with first-admission arrivals
// holding te.mu for the waiting queue. A cached submission racing a
// reconfiguration may settle under the decision cached just before the swap;
// that matches the decision-event semantics (a stale Accept still settles
// its own job, it just is not re-cached as policy).
type TaskEffector struct {
	mu   sync.Mutex
	proc int
	// tasks is the COW task index (task ID -> record); decided is the COW
	// per-task decision cache (Accept.PerTaskDecision). Writers clone under
	// te.mu; readers only Load.
	tasks   atomic.Pointer[map[string]*teTask]
	decided atomic.Pointer[map[string]*Accept]
	// waiting holds arrivals awaiting a decision, by arrival time
	// (UnixNano). Holds whose TaskArrive was lost in a batched gateway
	// flush (the failure surfaces on the flusher, not on piggybacked
	// pushers) would otherwise leak: sweepWaiting purges holds past every
	// possible deadline.
	waiting map[sched.JobRef]int64
	// maxDeadline bounds how long any hold can still get a decision.
	maxDeadline time.Duration
	// sweepAt is the waiting size that triggers the next amortized sweep.
	sweepAt int
	// epoch is the reconfiguration epoch this effector trusts: Accept
	// events stamped with an older epoch release their job but are not
	// cached as per-task decisions.
	epoch  int64
	ch     atomic.Pointer[eventchan.Channel]
	active bool
	closed atomic.Bool

	// Stats counts the effector's view of the workload. Fields are updated
	// atomically; use StatsSnapshot for a consistent copy.
	Stats TEStats
	// HoldPush measures the paper's operation 1 (hold task + push event).
	HoldPush core.OpStats
}

// TEStats aggregates effector-side counters.
type TEStats struct {
	// Arrived counts jobs arriving on this processor.
	Arrived int64
	// Released counts jobs this effector released.
	Released int64
	// Skipped counts jobs rejected by the admission controller.
	Skipped int64
	// Relocated counts released jobs whose first stage moved to a replica.
	Relocated int64
	// Overloaded counts arrivals whose TaskArrive push was refused by
	// transport backpressure (the event plane shed the load explicitly).
	Overloaded int64
}

var _ ccm.Component = (*TaskEffector)(nil)

// NewTaskEffector returns an unconfigured TE component.
func NewTaskEffector() *TaskEffector {
	te := &TaskEffector{
		waiting: make(map[sched.JobRef]int64),
		sweepAt: minWaitingSweep,
	}
	empty := make(map[string]*Accept)
	te.decided.Store(&empty)
	return te
}

// lookupTask resolves a task record from the COW index without locking.
//
//rtmw:noalloc
func (te *TaskEffector) lookupTask(taskID string) (*teTask, bool) {
	tp := te.tasks.Load()
	if tp == nil {
		return nil, false
	}
	tt, ok := (*tp)[taskID]
	return tt, ok
}

// cachedDecision returns the per-task cached decision, lock-free.
//
//rtmw:noalloc
func (te *TaskEffector) cachedDecision(taskID string) (*Accept, bool) {
	dec, ok := (*te.decided.Load())[taskID]
	return dec, ok
}

// storeDecision publishes a cached decision copy-on-write. Caller holds
// te.mu (writers serialize; readers stay lock-free).
func (te *TaskEffector) storeDecision(taskID string, dec *Accept) {
	old := *te.decided.Load()
	next := make(map[string]*Accept, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[taskID] = dec
	te.decided.Store(&next)
}

// clearDecisions drops the whole decision cache. Caller holds te.mu.
func (te *TaskEffector) clearDecisions() {
	empty := make(map[string]*Accept)
	te.decided.Store(&empty)
}

// Configure parses the processor ID and workload.
func (te *TaskEffector) Configure(attrs map[string]string) error {
	te.mu.Lock()
	if te.active {
		te.mu.Unlock()
		return fmt.Errorf("%w: TE is activated; use Reconfigure", ErrAlreadyActive)
	}
	te.mu.Unlock()
	proc, err := attrInt(attrs, AttrProcessor)
	if err != nil {
		return err
	}
	wl, err := attrString(attrs, AttrWorkload)
	if err != nil {
		return err
	}
	w, err := spec.Parse([]byte(wl))
	if err != nil {
		return err
	}
	tasks, err := w.SchedTasks()
	if err != nil {
		return err
	}
	index := make(map[string]*teTask, len(tasks))
	var maxDL time.Duration
	for _, t := range tasks {
		tt := &teTask{}
		tt.task.Store(t)
		index[t.ID] = tt
		if t.Deadline > maxDL {
			maxDL = t.Deadline
		}
	}
	// Configuration and activation arrive over the ORB in dispatch
	// goroutines; publish the fields under the lock (the index itself is
	// an atomic pointer for the lock-free readers).
	te.mu.Lock()
	te.proc = proc
	te.tasks.Store(&index)
	te.maxDeadline = maxDL
	te.mu.Unlock()
	return nil
}

// Activate subscribes to Accept events.
func (te *TaskEffector) Activate(ctx *ccm.Context) error {
	te.mu.Lock()
	te.ch.Store(ctx.Events)
	te.active = true
	te.mu.Unlock()
	// Subscribe outside the lock: delivery fan-out holds the channel's
	// shard lock while handlers take te.mu, so the reverse order here
	// could deadlock.
	ctx.Events.Subscribe(EvAccept, te.onAccept)
	return nil
}

// Reconfigure is the effector's hot-swap stage: it drops the cached
// per-task decisions (they were decided under the previous strategy
// combination or task set) and adopts the coordinator's epoch so in-flight
// Accept events from the old epoch release their jobs without being
// re-cached. Jobs holding in the waiting queue stay held; the admission
// controller replays their buffered arrivals under the new configuration.
//
// A Workload attribute swaps the effector's task set in place (the
// open-world AddTasks/RemoveTasks delta): new tasks start their job
// numbering at zero, tasks surviving the swap keep their job-number
// allocator (their record is carried over, so numbering never restarts),
// and holds, decisions and numbering of tasks no longer in the workload are
// dropped — their in-flight jobs keep executing on the subtask components,
// which drain independently.
func (te *TaskEffector) Reconfigure(attrs map[string]string) error {
	var newTasks []*sched.Task
	haveWorkload := false
	if wl, ok := attrs[AttrWorkload]; ok && wl != "" {
		w, err := spec.Parse([]byte(wl))
		if err != nil {
			return err
		}
		tasks, err := w.SchedTasks()
		if err != nil {
			return err
		}
		newTasks = tasks
		haveWorkload = true
	}
	te.mu.Lock()
	defer te.mu.Unlock()
	if te.tasks.Load() == nil {
		return fmt.Errorf("%w: TE reconfigured before configuration", ErrNotConfigured)
	}
	if _, ok := attrs[AttrEpoch]; ok {
		epoch, err := attrInt64(attrs, AttrEpoch)
		if err != nil {
			return err
		}
		te.epoch = epoch
	} else {
		te.epoch++
	}
	if haveWorkload {
		old := *te.tasks.Load()
		index := make(map[string]*teTask, len(newTasks))
		var maxDL time.Duration
		for _, t := range newTasks {
			tt, ok := old[t.ID]
			if !ok {
				tt = &teTask{}
			}
			tt.task.Store(t)
			index[t.ID] = tt
			if t.Deadline > maxDL {
				maxDL = t.Deadline
			}
		}
		for ref := range te.waiting {
			if _, ok := index[ref.Task]; !ok {
				delete(te.waiting, ref)
			}
		}
		te.tasks.Store(&index)
		te.maxDeadline = maxDL
	}
	te.clearDecisions()
	return nil
}

// Passivate stops accepting arrivals.
func (te *TaskEffector) Passivate() error {
	te.closed.Store(true)
	return nil
}

// Proc returns the effector's processor ID.
func (te *TaskEffector) Proc() int {
	te.mu.Lock()
	defer te.mu.Unlock()
	return te.proc
}

// StatsSnapshot returns a copy of the counters.
func (te *TaskEffector) StatsSnapshot() TEStats {
	return TEStats{
		Arrived:    atomic.LoadInt64(&te.Stats.Arrived),
		Released:   atomic.LoadInt64(&te.Stats.Released),
		Skipped:    atomic.LoadInt64(&te.Stats.Skipped),
		Relocated:  atomic.LoadInt64(&te.Stats.Relocated),
		Overloaded: atomic.LoadInt64(&te.Stats.Overloaded),
	}
}

// Arrive is the application-facing entry point: one job of the named task
// arrives at this processor (the task's home processor). It returns the
// assigned job number. SubmitJob is the typed-outcome form.
func (te *TaskEffector) Arrive(taskID string) (int64, error) {
	adm, err := te.SubmitJob(taskID)
	return adm.Job, err
}

// settleCached resolves one arrival against a cached per-task decision
// without taking te.mu: job number from the task's atomic allocator, stats
// atomically, and the release (if accepted) pushed directly.
//
//rtmw:noalloc
func (te *TaskEffector) settleCached(taskID string, tt *teTask, dec *Accept) core.Admission {
	job := tt.nextJob.Add(1) - 1
	atomic.AddInt64(&te.Stats.Arrived, 1)
	adm := core.Admission{Task: taskID, Job: job}
	if dec.Ok {
		atomic.AddInt64(&te.Stats.Released, 1)
		if dec.Relocated {
			atomic.AddInt64(&te.Stats.Relocated, 1)
		}
		adm.Outcome = core.AdmissionAccepted
		adm.Placement = dec.Placement
		te.release(te.ch.Load(), taskID, job, dec.Placement, nowNanos())
	} else {
		atomic.AddInt64(&te.Stats.Skipped, 1)
		adm.Outcome = core.AdmissionRejected
		adm.Reason = "per-task admission decision cached as rejected"
	}
	return adm
}

// SubmitJob injects one job arrival and returns its typed Admission: cached
// per-task decisions resolve synchronously (Accepted or Rejected) on the
// lock-free fast path, every other arrival pushes a "Task Arrive" event and
// returns Pending — the terminal outcome travels back as an Accept event and
// surfaces on the binding's watch stream.
func (te *TaskEffector) SubmitJob(taskID string) (core.Admission, error) {
	start := time.Now()
	adm := core.Admission{Task: taskID, Job: -1}
	if te.closed.Load() {
		return adm, fmt.Errorf("live: task effector passivated: %w", core.ErrStopped)
	}
	tt, ok := te.lookupTask(taskID)
	if !ok {
		return adm, fmt.Errorf("live: te: %w: %q", core.ErrUnknownTask, taskID)
	}

	// Per-task fast path: a cached decision releases or skips immediately,
	// never touching te.mu.
	if dec, ok := te.cachedDecision(taskID); ok {
		return te.settleCached(taskID, tt, dec), nil
	}

	te.mu.Lock()
	job := tt.nextJob.Add(1) - 1
	atomic.AddInt64(&te.Stats.Arrived, 1)
	arrival := nowNanos()
	adm.Job = job
	ref := sched.JobRef{Task: taskID, Job: job}
	te.waiting[ref] = arrival
	te.sweepWaitingLocked(arrival)
	proc := te.proc
	te.mu.Unlock()
	ch := te.ch.Load()

	adm.Outcome = core.AdmissionPending
	adm.Reason = "admission decision round trip in flight"
	err := ch.Push(eventchan.Event{Type: EvTaskArrive, Payload: encode(TaskArrive{
		Task:         taskID,
		Job:          job,
		Proc:         proc,
		ArrivalNanos: arrival,
	})})
	if err != nil {
		// The arrival failed (shed or transport loss): no Accept will
		// answer this hold, so release it — a late decision for the ref is
		// dropped as stale by onAccept. The outcome is terminal: no watch
		// event will ever resolve this admission, so it must not read as
		// pending.
		te.mu.Lock()
		delete(te.waiting, ref)
		te.mu.Unlock()
		if TransportOverloaded(err) {
			atomic.AddInt64(&te.Stats.Overloaded, 1)
		}
		adm.Outcome = core.AdmissionRejected
		adm.Reason = "arrival shed: " + err.Error()
	}
	te.HoldPush.Add(time.Since(start))
	return adm, err
}

// SubmitBatch injects one arrival per named task in order, amortizing the
// transport: cached decisions settle on the lock-free fast path, then the
// lock is taken once to hold the undecided arrivals, and their "Task
// Arrive" events push back to back so the gateway's group-commit forwarder
// coalesces them into a few ORB frames instead of one invocation each. IDs
// are validated up front: an unknown task fails the whole batch before any
// arrival is injected. A transport error on an individual push resolves
// that entry's Admission as Rejected (no watch event will ever answer it)
// with the error in Reason; the first such error is also returned.
func (te *TaskEffector) SubmitBatch(taskIDs []string) ([]core.Admission, error) {
	start := time.Now()
	if te.closed.Load() {
		return nil, fmt.Errorf("live: task effector passivated: %w", core.ErrStopped)
	}
	records := make([]*teTask, len(taskIDs))
	for i, id := range taskIDs {
		tt, ok := te.lookupTask(id)
		if !ok {
			return nil, fmt.Errorf("live: te: %w: %q", core.ErrUnknownTask, id)
		}
		records[i] = tt
	}
	type pendingPush struct {
		idx int
		ev  TaskArrive
		ref sched.JobRef
	}
	out := make([]core.Admission, len(taskIDs))
	var pending []int
	decided := *te.decided.Load()
	for i, id := range taskIDs {
		if dec, ok := decided[id]; ok {
			out[i] = te.settleCached(id, records[i], dec)
			continue
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return out, nil
	}

	var pushes []pendingPush
	arrival := nowNanos()
	te.mu.Lock()
	for _, i := range pending {
		id := taskIDs[i]
		job := records[i].nextJob.Add(1) - 1
		atomic.AddInt64(&te.Stats.Arrived, 1)
		out[i] = core.Admission{Task: id, Job: job}
		ref := sched.JobRef{Task: id, Job: job}
		te.waiting[ref] = arrival
		out[i].Outcome = core.AdmissionPending
		out[i].Reason = "admission decision round trip in flight"
		pushes = append(pushes, pendingPush{idx: i, ref: ref, ev: TaskArrive{
			Task: id, Job: job, Proc: te.proc, ArrivalNanos: arrival,
		}})
	}
	te.sweepWaitingLocked(arrival)
	te.mu.Unlock()
	ch := te.ch.Load()

	var firstErr error
	for _, p := range pushes {
		err := ch.Push(eventchan.Event{Type: EvTaskArrive, Payload: encode(p.ev)})
		if err == nil {
			continue
		}
		te.mu.Lock()
		delete(te.waiting, p.ref)
		te.mu.Unlock()
		if TransportOverloaded(err) {
			atomic.AddInt64(&te.Stats.Overloaded, 1)
		}
		out[p.idx].Outcome = core.AdmissionRejected
		out[p.idx].Reason = "arrival shed: " + err.Error()
		if firstErr == nil {
			firstErr = err
		}
	}
	te.HoldPush.Add(time.Since(start))
	return out, firstErr
}

// minWaitingSweep is the smallest waiting-map size that triggers a sweep.
const minWaitingSweep = 128

// sweepWaitingLocked amortizes hold cleanup: once the waiting map reaches
// the watermark, holds older than the longest task deadline — which can no
// longer receive a meaningful decision — are purged, and the watermark
// doubles with the surviving population. Called with te.mu held.
func (te *TaskEffector) sweepWaitingLocked(nowNanos int64) {
	if len(te.waiting) < te.sweepAt || te.maxDeadline <= 0 {
		return
	}
	horizon := nowNanos - int64(te.maxDeadline)
	for ref, arrived := range te.waiting {
		if arrived < horizon {
			delete(te.waiting, ref)
		}
	}
	te.sweepAt = 2 * len(te.waiting)
	if te.sweepAt < minWaitingSweep {
		te.sweepAt = minWaitingSweep
	}
}

// TransportOverloaded reports whether err is an explicit backpressure signal
// from the event plane (a full ORB send queue or gateway sink queue) rather
// than a transport failure: the operation was shed, not broken.
func TransportOverloaded(err error) bool {
	return errors.Is(err, orb.ErrOverloaded) || errors.Is(err, eventchan.ErrBackpressure)
}

// onAccept handles a decision event. Only the task's home effector acts: it
// clears the hold and publishes the Release event, which the federation
// routes to the node hosting the assigned first stage.
func (te *TaskEffector) onAccept(ev eventchan.Event) {
	var dec Accept
	if err := decode(ev.Payload, &dec); err != nil {
		return
	}
	if te.closed.Load() {
		return
	}
	tt, known := te.lookupTask(dec.Task)
	if !known {
		return
	}
	t := tt.task.Load()
	te.mu.Lock()
	if t.Subtasks[0].Processor != te.proc {
		// Not the home effector for this task.
		te.mu.Unlock()
		return
	}
	ref := sched.JobRef{Task: dec.Task, Job: dec.Job}
	if _, held := te.waiting[ref]; !held {
		// Duplicate or stale decision.
		te.mu.Unlock()
		return
	}
	delete(te.waiting, ref)

	if dec.PerTaskDecision && dec.Epoch == te.epoch {
		// Same-epoch decisions become cached per-task policy; a stale
		// decision from before a reconfiguration still settles its own job
		// below but must not survive the swap as policy.
		if _, ok := te.cachedDecision(dec.Task); !ok {
			cached := dec
			te.storeDecision(dec.Task, &cached)
		}
	}
	te.mu.Unlock()

	if !dec.Ok {
		atomic.AddInt64(&te.Stats.Skipped, 1)
		return
	}
	atomic.AddInt64(&te.Stats.Released, 1)
	if dec.Relocated {
		atomic.AddInt64(&te.Stats.Relocated, 1)
	}
	te.release(te.ch.Load(), dec.Task, dec.Job, dec.Placement, dec.ArrivalNanos)
}

// release publishes the Release event that starts the first subtask. The
// event channel delivers it locally and across the federation; the subtask
// component on the assigned processor picks it up.
func (te *TaskEffector) release(ch *eventchan.Channel, task string, job int64, placement []sched.PlacedStage, arrivalNanos int64) {
	if ch == nil {
		return
	}
	_ = ch.Push(eventchan.Event{Type: EvRelease, Payload: encode(Trigger{
		Task:         task,
		Job:          job,
		Stage:        0,
		Placement:    placement,
		ArrivalNanos: arrivalNanos,
	})})
}
