package live

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ccm"
	"repro/internal/core"
	"repro/internal/eventchan"
	"repro/internal/orb"
	"repro/internal/sched"
	"repro/internal/spec"
)

// TaskEffector is the live TE component (paper Section 5): it holds arriving
// tasks in a waiting queue, pushes "Task Arrive" events to the admission
// controller, and releases jobs when the corresponding "Accept" event
// arrives. Its Per-task behavior caches per-task admission decisions so
// subsequent jobs of an admitted periodic task release immediately without
// another round trip.
//
// One instance runs on each application processor. Accept events fan out to
// every effector; the effector on the task's home (arrival) processor owns
// the decision and publishes the Release event, which the federation routes
// to the node hosting the assigned first stage — when the first stage was
// re-allocated, that is the duplicate's node (the paper's operation 6).
type TaskEffector struct {
	mu      sync.Mutex
	proc    int
	tasks   map[string]*sched.Task
	nextJob map[string]int64
	// decided caches per-task decisions (Accept.PerTaskDecision).
	decided map[string]*Accept
	// waiting holds arrivals awaiting a decision, by arrival time
	// (UnixNano). Holds whose TaskArrive was lost in a batched gateway
	// flush (the failure surfaces on the flusher, not on piggybacked
	// pushers) would otherwise leak: sweepWaiting purges holds past every
	// possible deadline.
	waiting map[sched.JobRef]int64
	// maxDeadline bounds how long any hold can still get a decision.
	maxDeadline time.Duration
	// sweepAt is the waiting size that triggers the next amortized sweep.
	sweepAt int
	// epoch is the reconfiguration epoch this effector trusts: Accept
	// events stamped with an older epoch release their job but are not
	// cached as per-task decisions.
	epoch  int64
	ch     *eventchan.Channel
	active bool
	closed bool

	// Stats counts the effector's view of the workload.
	Stats TEStats
	// HoldPush measures the paper's operation 1 (hold task + push event).
	HoldPush core.OpStats
}

// TEStats aggregates effector-side counters.
type TEStats struct {
	// Arrived counts jobs arriving on this processor.
	Arrived int64
	// Released counts jobs this effector released.
	Released int64
	// Skipped counts jobs rejected by the admission controller.
	Skipped int64
	// Relocated counts released jobs whose first stage moved to a replica.
	Relocated int64
	// Overloaded counts arrivals whose TaskArrive push was refused by
	// transport backpressure (the event plane shed the load explicitly).
	Overloaded int64
}

var _ ccm.Component = (*TaskEffector)(nil)

// NewTaskEffector returns an unconfigured TE component.
func NewTaskEffector() *TaskEffector {
	return &TaskEffector{
		nextJob: make(map[string]int64),
		decided: make(map[string]*Accept),
		waiting: make(map[sched.JobRef]int64),
		sweepAt: minWaitingSweep,
	}
}

// Configure parses the processor ID and workload.
func (te *TaskEffector) Configure(attrs map[string]string) error {
	te.mu.Lock()
	if te.active {
		te.mu.Unlock()
		return fmt.Errorf("%w: TE is activated; use Reconfigure", ErrAlreadyActive)
	}
	te.mu.Unlock()
	proc, err := attrInt(attrs, AttrProcessor)
	if err != nil {
		return err
	}
	wl, err := attrString(attrs, AttrWorkload)
	if err != nil {
		return err
	}
	w, err := spec.Parse([]byte(wl))
	if err != nil {
		return err
	}
	tasks, err := w.SchedTasks()
	if err != nil {
		return err
	}
	index := make(map[string]*sched.Task, len(tasks))
	var maxDL time.Duration
	for _, t := range tasks {
		index[t.ID] = t
		if t.Deadline > maxDL {
			maxDL = t.Deadline
		}
	}
	// Configuration and activation arrive over the ORB in dispatch
	// goroutines; publish the fields under the same lock Arrive reads them
	// under.
	te.mu.Lock()
	te.proc = proc
	te.tasks = index
	te.maxDeadline = maxDL
	te.mu.Unlock()
	return nil
}

// Activate subscribes to Accept events.
func (te *TaskEffector) Activate(ctx *ccm.Context) error {
	te.mu.Lock()
	te.ch = ctx.Events
	te.active = true
	te.mu.Unlock()
	// Subscribe outside the lock: delivery fan-out holds the channel's
	// shard lock while handlers take te.mu, so the reverse order here
	// could deadlock.
	ctx.Events.Subscribe(EvAccept, te.onAccept)
	return nil
}

// Reconfigure is the effector's hot-swap stage: it drops the cached
// per-task decisions (they were decided under the previous strategy
// combination) and adopts the coordinator's epoch so in-flight Accept
// events from the old epoch release their jobs without being re-cached.
// Jobs holding in the waiting queue stay held; the admission controller
// replays their buffered arrivals under the new configuration.
func (te *TaskEffector) Reconfigure(attrs map[string]string) error {
	te.mu.Lock()
	defer te.mu.Unlock()
	if te.tasks == nil {
		return fmt.Errorf("%w: TE reconfigured before configuration", ErrNotConfigured)
	}
	if _, ok := attrs[AttrEpoch]; ok {
		epoch, err := attrInt64(attrs, AttrEpoch)
		if err != nil {
			return err
		}
		te.epoch = epoch
	} else {
		te.epoch++
	}
	clear(te.decided)
	return nil
}

// Passivate stops accepting arrivals.
func (te *TaskEffector) Passivate() error {
	te.mu.Lock()
	defer te.mu.Unlock()
	te.closed = true
	return nil
}

// Proc returns the effector's processor ID.
func (te *TaskEffector) Proc() int {
	te.mu.Lock()
	defer te.mu.Unlock()
	return te.proc
}

// StatsSnapshot returns a copy of the counters.
func (te *TaskEffector) StatsSnapshot() TEStats {
	te.mu.Lock()
	defer te.mu.Unlock()
	return te.Stats
}

// Arrive is the application-facing entry point: one job of the named task
// arrives at this processor (the task's home processor). It returns the
// assigned job number.
func (te *TaskEffector) Arrive(taskID string) (int64, error) {
	start := time.Now()
	te.mu.Lock()
	if te.closed {
		te.mu.Unlock()
		return 0, errors.New("live: task effector passivated")
	}
	t, ok := te.tasks[taskID]
	if !ok {
		te.mu.Unlock()
		return 0, errors.New("live: unknown task " + taskID)
	}
	job := te.nextJob[taskID]
	te.nextJob[taskID] = job + 1
	te.Stats.Arrived++
	arrival := nowNanos()

	// Per-task fast path: a cached decision releases or skips immediately.
	if dec, ok := te.decided[taskID]; ok {
		ch := te.ch
		if dec.Ok {
			te.Stats.Released++
			if dec.Relocated {
				te.Stats.Relocated++
			}
			te.mu.Unlock()
			te.release(ch, t.ID, job, dec.Placement, arrival)
		} else {
			te.Stats.Skipped++
			te.mu.Unlock()
		}
		return job, nil
	}

	ref := sched.JobRef{Task: taskID, Job: job}
	te.waiting[ref] = arrival
	te.sweepWaitingLocked(arrival)
	ch := te.ch
	proc := te.proc
	te.mu.Unlock()

	err := ch.Push(eventchan.Event{Type: EvTaskArrive, Payload: encode(TaskArrive{
		Task:         taskID,
		Job:          job,
		Proc:         proc,
		ArrivalNanos: arrival,
	})})
	if err != nil {
		// The arrival failed (shed or transport loss): no Accept will
		// answer this hold, so release it — a late decision for the ref is
		// dropped as stale by onAccept.
		te.mu.Lock()
		delete(te.waiting, ref)
		if TransportOverloaded(err) {
			te.Stats.Overloaded++
		}
		te.mu.Unlock()
	}
	te.HoldPush.Add(time.Since(start))
	return job, err
}

// minWaitingSweep is the smallest waiting-map size that triggers a sweep.
const minWaitingSweep = 128

// sweepWaitingLocked amortizes hold cleanup: once the waiting map reaches
// the watermark, holds older than the longest task deadline — which can no
// longer receive a meaningful decision — are purged, and the watermark
// doubles with the surviving population. Called with te.mu held.
func (te *TaskEffector) sweepWaitingLocked(nowNanos int64) {
	if len(te.waiting) < te.sweepAt || te.maxDeadline <= 0 {
		return
	}
	horizon := nowNanos - int64(te.maxDeadline)
	for ref, arrived := range te.waiting {
		if arrived < horizon {
			delete(te.waiting, ref)
		}
	}
	te.sweepAt = 2 * len(te.waiting)
	if te.sweepAt < minWaitingSweep {
		te.sweepAt = minWaitingSweep
	}
}

// TransportOverloaded reports whether err is an explicit backpressure signal
// from the event plane (a full ORB send queue or gateway sink queue) rather
// than a transport failure: the operation was shed, not broken.
func TransportOverloaded(err error) bool {
	return errors.Is(err, orb.ErrOverloaded) || errors.Is(err, eventchan.ErrBackpressure)
}

// onAccept handles a decision event. Only the task's home effector acts: it
// clears the hold and publishes the Release event, which the federation
// routes to the node hosting the assigned first stage.
func (te *TaskEffector) onAccept(ev eventchan.Event) {
	var dec Accept
	if err := decode(ev.Payload, &dec); err != nil {
		return
	}
	te.mu.Lock()
	if te.closed {
		te.mu.Unlock()
		return
	}
	t, known := te.tasks[dec.Task]
	if !known || t.Subtasks[0].Processor != te.proc {
		// Not the home effector for this task.
		te.mu.Unlock()
		return
	}
	ref := sched.JobRef{Task: dec.Task, Job: dec.Job}
	if _, held := te.waiting[ref]; !held {
		// Duplicate or stale decision.
		te.mu.Unlock()
		return
	}
	delete(te.waiting, ref)

	if dec.PerTaskDecision && dec.Epoch == te.epoch {
		// Same-epoch decisions become cached per-task policy; a stale
		// decision from before a reconfiguration still settles its own job
		// below but must not survive the swap as policy.
		if _, ok := te.decided[dec.Task]; !ok {
			cached := dec
			te.decided[dec.Task] = &cached
		}
	}

	if !dec.Ok {
		te.Stats.Skipped++
		te.mu.Unlock()
		return
	}
	te.Stats.Released++
	if dec.Relocated {
		te.Stats.Relocated++
	}
	ch := te.ch
	te.mu.Unlock()

	te.release(ch, dec.Task, dec.Job, dec.Placement, dec.ArrivalNanos)
}

// release publishes the Release event that starts the first subtask. The
// event channel delivers it locally and across the federation; the subtask
// component on the assigned processor picks it up.
func (te *TaskEffector) release(ch *eventchan.Channel, task string, job int64, placement []sched.PlacedStage, arrivalNanos int64) {
	if ch == nil {
		return
	}
	_ = ch.Push(eventchan.Event{Type: EvRelease, Payload: encode(Trigger{
		Task:         task,
		Job:          job,
		Stage:        0,
		Placement:    placement,
		ArrivalNanos: arrivalNanos,
	})})
}
