package live

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ccm"
	"repro/internal/eventchan"
)

// AttrHeartbeatPeriod configures the beacon interval (Go duration string).
const AttrHeartbeatPeriod = "HeartbeatPeriod"

// DefaultHeartbeatPeriod is the beacon interval when the attribute is unset.
const DefaultHeartbeatPeriod = 25 * time.Millisecond

// HeartbeatBeacon is the liveness beacon component: one instance runs on
// each application node and periodically pushes an EvHeartbeat event, which
// the federation routes to the manager's failure detector. Beacons bypass
// the gateway's group-commit batching (PushUnbatched) so detection latency
// is bounded by the beacon period plus one network hop, not by batch
// residency.
type HeartbeatBeacon struct {
	mu     sync.Mutex
	proc   int
	period time.Duration
	node   string
	ch     *eventchan.Channel
	seq    atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

var _ ccm.Component = (*HeartbeatBeacon)(nil)

// NewHeartbeatBeacon returns an unconfigured beacon.
func NewHeartbeatBeacon() *HeartbeatBeacon {
	return &HeartbeatBeacon{period: DefaultHeartbeatPeriod}
}

// Configure parses the processor ID and optional beacon period.
func (hb *HeartbeatBeacon) Configure(attrs map[string]string) error {
	proc, err := attrInt(attrs, AttrProcessor)
	if err != nil {
		return err
	}
	period := DefaultHeartbeatPeriod
	if _, ok := attrs[AttrHeartbeatPeriod]; ok {
		period, err = attrDuration(attrs, AttrHeartbeatPeriod)
		if err != nil {
			return err
		}
	}
	hb.mu.Lock()
	hb.proc = proc
	if period > 0 {
		hb.period = period
	}
	hb.mu.Unlock()
	return nil
}

// Activate starts the beacon goroutine.
func (hb *HeartbeatBeacon) Activate(ctx *ccm.Context) error {
	hb.mu.Lock()
	defer hb.mu.Unlock()
	if hb.stop != nil {
		return ErrAlreadyActive
	}
	hb.node = ctx.Node
	hb.ch = ctx.Events
	hb.stop = make(chan struct{})
	hb.wg.Add(1)
	go hb.run(hb.ch, hb.node, hb.proc, hb.period, hb.stop)
	return nil
}

// run pushes beacons until stopped. Push failures are ignored: a partitioned
// or dying node simply stops being heard, which is exactly the signal the
// detector consumes.
func (hb *HeartbeatBeacon) run(ch *eventchan.Channel, node string, proc int, period time.Duration, stop chan struct{}) {
	defer hb.wg.Done()
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		_ = ch.PushUnbatched(eventchan.Event{Type: EvHeartbeat, Payload: encode(Heartbeat{
			Node:      node,
			Proc:      proc,
			Seq:       hb.seq.Add(1),
			SentNanos: nowNanos(),
		})})
	}
}

// Passivate stops the beacon and waits for the goroutine to exit.
func (hb *HeartbeatBeacon) Passivate() error {
	hb.mu.Lock()
	stop := hb.stop
	hb.stop = nil
	hb.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	hb.wg.Wait()
	return nil
}

// Beats returns the number of beacons sent.
func (hb *HeartbeatBeacon) Beats() int64 { return hb.seq.Load() }
