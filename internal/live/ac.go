package live

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ccm"
	"repro/internal/core"
	"repro/internal/eventchan"
	"repro/internal/sched"
	"repro/internal/spec"
)

// Attribute names shared with the deployment plans. AC_Strategy, IR_Strategy
// and LB_Strategy take the paper's N/T/J abbreviations.
const (
	AttrACStrategy = "AC_Strategy"
	AttrIRStrategy = "IR_Strategy"
	AttrLBStrategy = "LB_Strategy"
	AttrProcessors = "Processors"
	AttrWorkload   = "Workload"
	AttrProcessor  = "Processor"
	// AttrACShards sets the number of admission-plane shards the controller's
	// ledger is split into (clamped to [1, min(Processors, 64)]). When absent
	// it defaults to min(Processors, 8). Shard count 1 reproduces the
	// historical serial admission plane bit for bit.
	AttrACShards = "AC_Shards"
	// AttrEpoch carries the reconfiguration epoch stamped by the
	// coordinator into every Reconfigure attribute set: components adopt it
	// so stale cross-epoch decisions are recognizable.
	AttrEpoch = "Epoch"
	// AttrReplicate ("true"/"false") turns on the AC's replication stream:
	// every ledger mutation is published as an epoch-stamped EvReplicate
	// record for a warm-standby mirror (StandbyAC).
	AttrReplicate = "Replicate"
)

// ReconfigServantKey is the ORB object key of the admission controller's
// reconfiguration coordination facet (Quiesce / Resume / Epoch / Config).
const ReconfigServantKey = "reconfig"

// acTimerStripes is the number of independently locked expiry-timer maps.
const acTimerStripes = 16

// acTimerStripe is one lock-striped slice of the pending expiry timers, so
// concurrent decisions scheduling and firing expiries do not serialize on a
// single map lock.
type acTimerStripe struct {
	mu sync.Mutex
	m  map[sched.JobRef]*time.Timer
}

// AdmissionController is the live AC component (paper Section 5): it
// consumes "Task Arrive" events from task effectors and "Idle Resetting"
// events from idle resetters, runs the load balancer's Location computation
// and the AUB admission test through the embedded policy controller, and
// publishes "Accept" events. One instance is deployed on the central task
// manager node.
//
// Concurrency: decisions no longer serialize on a component-wide mutex. The
// admission test and ledger commit are synchronized inside the sharded
// ledger (concurrent single-shard candidates admit in parallel), so mu is a
// read-write reconfiguration lock: decision, expiry, and idle-reset paths
// hold it shared, while Configure / Quiesce / Reconfigure / Resume /
// Passivate hold it exclusively — a swap begins only after every in-flight
// decision drains, and no decision ever observes mixed strategy state.
type AdmissionController struct {
	mu     sync.RWMutex
	cfg    core.Config
	ctrl   *core.Controller
	tasks  map[string]*sched.Task
	ch     *eventchan.Channel
	timers [acTimerStripes]acTimerStripe
	active bool
	closed bool

	// Reconfiguration state: while quiesced, TaskArrive events buffer in
	// deferred instead of being decided; Resume replays them under the
	// then-current (new) configuration. epoch stamps every Accept so task
	// effectors can drop stale cross-epoch per-task decisions. deferMu
	// orders concurrent appends from event-dispatch goroutines, which hold
	// mu only shared.
	epoch    int64
	quiesced bool
	deferMu  sync.Mutex
	deferred []TaskArrive

	// Replication state: when replicate is set, every ledger mutation is
	// published as an EvReplicate record stamped with the current epoch and
	// a strictly increasing sequence (repSeq, advanced atomically because
	// decisions emit under the shared lock).
	replicate bool
	repSeq    int64

	// DecisionDelay measures operation time from TaskArrive receipt to
	// Accept push (manager-side total).
	DecisionDelay core.OpStats
	// ResetApply measures the manager-side time to apply one idle-resetting
	// report to the ledger (operation 8's AC half).
	ResetApply core.OpStats
}

// Compile-time interface checks: the strategy-bearing components are both
// installable units and live-reconfigurable ones.
var (
	_ ccm.Component      = (*AdmissionController)(nil)
	_ ccm.Reconfigurable = (*AdmissionController)(nil)
	_ ccm.Reconfigurable = (*TaskEffector)(nil)
	_ ccm.Reconfigurable = (*IdleResetter)(nil)
	_ ccm.Reconfigurable = (*LoadBalancer)(nil)
)

// NewAdmissionController returns an unconfigured AC component.
func NewAdmissionController() *AdmissionController {
	ac := &AdmissionController{}
	for i := range ac.timers {
		ac.timers[i].m = make(map[sched.JobRef]*time.Timer)
	}
	return ac
}

// timerStripe returns the expiry-timer stripe owning ref.
func (ac *AdmissionController) timerStripe(ref sched.JobRef) *acTimerStripe {
	h := fnv.New32a()
	_, _ = h.Write([]byte(ref.Task))
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(ref.Job >> (8 * i))
	}
	_, _ = h.Write(b[:])
	return &ac.timers[h.Sum32()%acTimerStripes]
}

// Configure parses the strategy tuple, processor count, shard count, and
// workload. It is the one-shot pre-activation stage; live strategy changes
// go through Reconfigure.
func (ac *AdmissionController) Configure(attrs map[string]string) error {
	ac.mu.RLock()
	active := ac.active
	ac.mu.RUnlock()
	if active {
		return fmt.Errorf("%w: AC is activated; use Reconfigure", ErrAlreadyActive)
	}
	var cfg core.Config
	var err error
	if cfg.AC, err = parseStrategyAttr(attrs, AttrACStrategy); err != nil {
		return err
	}
	if cfg.IR, err = parseStrategyAttr(attrs, AttrIRStrategy); err != nil {
		return err
	}
	if cfg.LB, err = parseStrategyAttr(attrs, AttrLBStrategy); err != nil {
		return err
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidStrategy, err)
	}
	procs, err := attrInt(attrs, AttrProcessors)
	if err != nil {
		return err
	}
	shards := 0
	if _, ok := attrs[AttrACShards]; ok {
		if shards, err = attrInt(attrs, AttrACShards); err != nil {
			return err
		}
		if shards < 1 {
			return fmt.Errorf("live: ac: attribute %q must be at least 1, got %d", AttrACShards, shards)
		}
	}
	if shards == 0 {
		shards = procs
		if shards > 8 {
			shards = 8
		}
	}
	replicate := false
	if _, ok := attrs[AttrReplicate]; ok {
		if replicate, err = attrBool(attrs, AttrReplicate); err != nil {
			return err
		}
	}
	wl, err := attrString(attrs, AttrWorkload)
	if err != nil {
		return err
	}
	w, err := spec.Parse([]byte(wl))
	if err != nil {
		return err
	}
	tasks, err := w.SchedTasks()
	if err != nil {
		return err
	}
	ctrl, err := core.NewControllerSharded(cfg, procs, shards)
	if err != nil {
		return err
	}
	ctrl.EnableTiming()
	index := make(map[string]*sched.Task, len(tasks))
	for _, t := range tasks {
		index[t.ID] = t
	}
	// Publish under the lock the event handlers read through: ORB dispatch
	// goroutines carry no other happens-before edge to them.
	ac.mu.Lock()
	ac.cfg = cfg
	ac.ctrl = ctrl
	ac.tasks = index
	ac.replicate = replicate
	ac.mu.Unlock()
	return nil
}

// Controller exposes the embedded policy object (overhead harness and tests).
func (ac *AdmissionController) Controller() *core.Controller {
	ac.mu.RLock()
	defer ac.mu.RUnlock()
	return ac.ctrl
}

// Activate subscribes the component's event sinks and registers the
// reconfiguration coordination facet.
func (ac *AdmissionController) Activate(ctx *ccm.Context) error {
	ac.mu.Lock()
	if ac.ctrl == nil {
		ac.mu.Unlock()
		return fmt.Errorf("%w: AC activated before configuration", ErrNotConfigured)
	}
	ac.ch = ctx.Events
	ac.active = true
	ac.mu.Unlock()
	// Subscribe outside the lock (delivery holds the shard lock, then
	// handlers take ac.mu).
	ctx.Events.Subscribe(EvTaskArrive, ac.onTaskArrive)
	ctx.Events.Subscribe(EvIdleReset, ac.onIdleReset)
	ctx.ORB.RegisterServant(ReconfigServantKey, ac.reconfigServant)
	return nil
}

// Passivate stops the pending expiry timers.
func (ac *AdmissionController) Passivate() error {
	ac.mu.Lock()
	ac.closed = true
	ac.mu.Unlock()
	for i := range ac.timers {
		st := &ac.timers[i]
		st.mu.Lock()
		for ref, tm := range st.m {
			tm.Stop()
			delete(st.m, ref)
		}
		st.mu.Unlock()
	}
	return nil
}

// onTaskArrive handles one "Task Arrive" event: while the controller is
// quiesced for a reconfiguration the arrival is buffered (and decided under
// the new configuration at Resume); otherwise it is decided immediately.
func (ac *AdmissionController) onTaskArrive(ev eventchan.Event) {
	var arr TaskArrive
	if err := decode(ev.Payload, &arr); err != nil {
		return
	}
	ac.mu.RLock()
	if ac.closed {
		ac.mu.RUnlock()
		return
	}
	if ac.quiesced {
		// Append while still holding the read lock: Resume drains the buffer
		// under the write lock, so an arrival that saw quiesced==true cannot
		// slip in after the drain.
		ac.deferMu.Lock()
		ac.deferred = append(ac.deferred, arr)
		ac.deferMu.Unlock()
		ac.mu.RUnlock()
		return
	}
	defer ac.mu.RUnlock()
	ac.decideRLocked(arr)
}

// decideRLocked runs one arrival end to end: decision, expiry scheduling,
// and the epoch-stamped Accept push. Caller holds mu shared; concurrent
// decisions synchronize inside the sharded ledger and the timer stripes.
func (ac *AdmissionController) decideRLocked(arr TaskArrive) {
	start := time.Now()
	t, ok := ac.tasks[arr.Task]
	if !ok {
		return
	}
	d := ac.ctrl.Arrive(t, arr.Job, time.Duration(arr.ArrivalNanos))
	ref := sched.JobRef{Task: arr.Task, Job: arr.Job}
	ac.replicateDecision(t, ref, arr.ArrivalNanos, d)
	if d.Accept && !d.Reserved {
		ac.scheduleExpiry(ref, time.Unix(0, arr.ArrivalNanos).Add(t.Deadline))
	}
	perTask := t.Kind == sched.Periodic &&
		ac.cfg.AC == core.StrategyPerTask &&
		ac.cfg.LB != core.StrategyPerJob

	out := Accept{
		Task:            arr.Task,
		Job:             arr.Job,
		Ok:              d.Accept,
		Placement:       d.Placement,
		Relocated:       d.Relocated,
		PerTaskDecision: perTask,
		ArrivalNanos:    arr.ArrivalNanos,
		Epoch:           ac.epoch,
	}
	ac.DecisionDelay.Add(time.Since(start))
	if ac.ch != nil {
		// Best effort: a dead effector node surfaces in its own metrics.
		_ = ac.ch.Push(eventchan.Event{Type: EvAccept, Payload: encode(out)})
	}
}

// replicateRLocked publishes one ledger mutation on the replication
// stream, stamped with the current epoch and the next sequence number.
// Callers hold mu (shared or exclusive). The push is best effort: a lost
// record surfaces as mirror drift in the standby's audit, never as a
// data-plane failure.
func (ac *AdmissionController) replicateRLocked(rec RepRecord) {
	if !ac.replicate || ac.ch == nil {
		return
	}
	rec.Epoch = ac.epoch
	rec.Seq = atomic.AddInt64(&ac.repSeq, 1)
	_ = ac.ch.Push(eventchan.Event{Type: EvReplicate, Payload: encode(rec)})
}

// replicateDecision emits the ledger mutation (if any) implied by one
// admission decision: a tested accept added contributions (permanent for
// per-task reservations, expiring otherwise), and an untested accept under
// LB-per-job relocated the task's reservation. Untested accepts under the
// other balancers touch no ledger state. Caller holds mu shared.
func (ac *AdmissionController) replicateDecision(t *sched.Task, ref sched.JobRef, arrivalNanos int64, d core.Decision) {
	if !ac.replicate || !d.Accept {
		return
	}
	switch {
	case d.Tested:
		rec := RepRecord{Kind: RepAdmit, Ref: ref, TaskKind: t.Kind, Placement: d.Placement, Permanent: d.Reserved}
		if !d.Reserved {
			rec.ExpiryNanos = arrivalNanos + int64(t.Deadline)
		}
		ac.replicateRLocked(rec)
	case ac.cfg.LB == core.StrategyPerJob:
		ac.replicateRLocked(RepRecord{Kind: RepRelocate, Task: t.ID, Placement: d.Placement})
	}
}

// scheduleExpiry registers the deadline-expiry timer for an accepted job.
func (ac *AdmissionController) scheduleExpiry(ref sched.JobRef, at time.Time) {
	st := ac.timerStripe(ref)
	st.mu.Lock()
	st.m[ref] = time.AfterFunc(time.Until(at), func() { ac.expire(ref) })
	st.mu.Unlock()
}

// Epoch returns the current reconfiguration epoch.
func (ac *AdmissionController) Epoch() int64 {
	ac.mu.RLock()
	defer ac.mu.RUnlock()
	return ac.epoch
}

// Quiesced reports whether admission is currently quiesced.
func (ac *AdmissionController) Quiesced() bool {
	ac.mu.RLock()
	defer ac.mu.RUnlock()
	return ac.quiesced
}

// Quiesce is phase one of the reconfiguration protocol: new TaskArrive
// events buffer instead of being decided, so the strategy objects can swap
// without a decision ever observing mixed state. Acquiring the write lock
// waits out every in-flight decision first. Accept events already pushed
// stay valid — they were decided wholly under the old configuration. It
// returns the epoch the upcoming swap will enter.
func (ac *AdmissionController) Quiesce() (int64, error) {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	if ac.ctrl == nil {
		return 0, fmt.Errorf("%w: AC quiesced before configuration", ErrNotConfigured)
	}
	if ac.quiesced {
		return 0, ErrQuiesced
	}
	ac.quiesced = true
	return ac.epoch + 1, nil
}

// Reconfigure is the component lifecycle's hot-swap stage: it installs a
// new strategy combination and/or task set on the running controller. The
// controller must be quiesced; the embedded policy object rebases its ledger
// and decision memory in place, so every in-flight job's contributions
// survive. Missing strategy attributes keep their current values; an Epoch
// attribute adopts the coordinator's epoch (otherwise the epoch increments
// locally).
//
// A Workload attribute swaps the admission task set (the open-world
// AddTasks/RemoveTasks delta): tasks joining the workload become admissible
// at their next arrival, and tasks leaving it have their remaining ledger
// contributions — including permanent per-task reservations — withdrawn
// through the controller's task index and their pending expiry timers
// cancelled. Jobs of departed tasks that were already released keep
// executing; withdrawal only frees the synthetic utilization backing future
// admission decisions.
func (ac *AdmissionController) Reconfigure(attrs map[string]string) error {
	// Parse the new task set outside the lock; nothing mutates on error.
	var newTasks map[string]*sched.Task
	if wl, ok := attrs[AttrWorkload]; ok && wl != "" {
		w, err := spec.Parse([]byte(wl))
		if err != nil {
			return err
		}
		tasks, err := w.SchedTasks()
		if err != nil {
			return err
		}
		newTasks = make(map[string]*sched.Task, len(tasks))
		for _, t := range tasks {
			newTasks[t.ID] = t
		}
	}
	ac.mu.Lock()
	defer ac.mu.Unlock()
	if ac.ctrl == nil {
		return fmt.Errorf("%w: AC reconfigured before configuration", ErrNotConfigured)
	}
	if !ac.quiesced {
		return ErrNotQuiesced
	}
	cfg := ac.cfg
	var err error
	if _, ok := attrs[AttrACStrategy]; ok {
		if cfg.AC, err = parseStrategyAttr(attrs, AttrACStrategy); err != nil {
			return err
		}
	}
	if _, ok := attrs[AttrIRStrategy]; ok {
		if cfg.IR, err = parseStrategyAttr(attrs, AttrIRStrategy); err != nil {
			return err
		}
	}
	if _, ok := attrs[AttrLBStrategy]; ok {
		if cfg.LB, err = parseStrategyAttr(attrs, AttrLBStrategy); err != nil {
			return err
		}
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidStrategy, err)
	}
	if newTasks != nil {
		procs := ac.ctrl.Ledger().NumProcs()
		for _, t := range newTasks {
			for _, st := range t.Subtasks {
				for _, p := range st.Candidates() {
					if p >= procs {
						return fmt.Errorf("live: ac: task %s references processor %d but deployment has %d", t.ID, p, procs)
					}
				}
			}
		}
	}
	// Parse everything — including the epoch — before mutating: the
	// controller rebase below is irreversible, so an error return must
	// mean nothing changed.
	epoch := ac.epoch + 1
	if _, ok := attrs[AttrEpoch]; ok {
		var err error
		if epoch, err = attrInt64(attrs, AttrEpoch); err != nil {
			return err
		}
	}
	// A swap away from per-task admission withdraws the permanent
	// reservations inside the controller; snapshot their refs first so the
	// replication stream can mirror exactly those withdrawals.
	var withdrawnReservations []sched.JobRef
	if ac.replicate && ac.cfg.AC == core.StrategyPerTask && cfg.AC != core.StrategyPerTask {
		withdrawnReservations = ac.ctrl.Reservations()
	}
	if _, err := ac.ctrl.Reconfigure(cfg); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidStrategy, err)
	}
	for _, ref := range withdrawnReservations {
		ac.replicateRLocked(RepRecord{Kind: RepWithdraw, Ref: ref})
	}
	if newTasks != nil {
		for id := range ac.tasks {
			if _, ok := newTasks[id]; ok {
				continue
			}
			ac.ctrl.RemoveTask(id)
			ac.replicateRLocked(RepRecord{Kind: RepWithdraw, Task: id})
			for i := range ac.timers {
				st := &ac.timers[i]
				st.mu.Lock()
				for ref, tm := range st.m {
					if ref.Task == id {
						tm.Stop()
						delete(st.m, ref)
					}
				}
				st.mu.Unlock()
			}
		}
		ac.tasks = newTasks
	}
	ac.cfg = cfg
	ac.epoch = epoch
	return nil
}

// Resume is phase two's tail: admission reopens and every arrival buffered
// during the quiesce is decided — in arrival order — under the new
// configuration. The replay goes through the controller's batch admission
// path, so a burst of buffered aperiodic arrivals under LB-none takes each
// admission shard's lock once instead of once per arrival. It returns the
// number of replayed arrivals.
func (ac *AdmissionController) Resume() (int, error) {
	ac.mu.Lock()
	if !ac.quiesced {
		ac.mu.Unlock()
		return 0, ErrNotQuiesced
	}
	ac.quiesced = false
	ac.deferMu.Lock()
	deferred := ac.deferred
	ac.deferred = nil
	ac.deferMu.Unlock()
	ac.mu.Unlock()
	ac.mu.RLock()
	defer ac.mu.RUnlock()
	if ac.closed {
		return 0, nil
	}
	ac.replayRLocked(deferred)
	return len(deferred), nil
}

// replayRLocked decides a buffered arrival batch under the current
// configuration. Caller holds mu shared.
func (ac *AdmissionController) replayRLocked(arrs []TaskArrive) {
	if len(arrs) == 0 {
		return
	}
	start := time.Now()
	batch := make([]core.BatchArrival, 0, len(arrs))
	kept := make([]TaskArrive, 0, len(arrs))
	for _, arr := range arrs {
		t, ok := ac.tasks[arr.Task]
		if !ok {
			continue
		}
		batch = append(batch, core.BatchArrival{Task: t, Job: arr.Job, Now: time.Duration(arr.ArrivalNanos)})
		kept = append(kept, arr)
	}
	decisions := ac.ctrl.ArriveBatch(batch)
	elapsed := time.Since(start)
	for i, d := range decisions {
		arr := kept[i]
		t := batch[i].Task
		ref := sched.JobRef{Task: arr.Task, Job: arr.Job}
		ac.replicateDecision(t, ref, arr.ArrivalNanos, d)
		if d.Accept && !d.Reserved {
			ac.scheduleExpiry(ref, time.Unix(0, arr.ArrivalNanos).Add(t.Deadline))
		}
		perTask := t.Kind == sched.Periodic &&
			ac.cfg.AC == core.StrategyPerTask &&
			ac.cfg.LB != core.StrategyPerJob
		out := Accept{
			Task:            arr.Task,
			Job:             arr.Job,
			Ok:              d.Accept,
			Placement:       d.Placement,
			Relocated:       d.Relocated,
			PerTaskDecision: perTask,
			ArrivalNanos:    arr.ArrivalNanos,
			Epoch:           ac.epoch,
		}
		ac.DecisionDelay.Add(elapsed / time.Duration(len(decisions)))
		if ac.ch != nil {
			_ = ac.ch.Push(eventchan.Event{Type: EvAccept, Payload: encode(out)})
		}
	}
}

// reconfigServant exposes the coordination half of the protocol over the
// ORB, so deployment tools (the plan launcher's ExecuteReconfig, the
// rtmw-config reconfigure subcommand) can drive a swap on a running node.
func (ac *AdmissionController) reconfigServant(op string, arg []byte) ([]byte, error) {
	switch op {
	case "Quiesce":
		epoch, err := ac.Quiesce()
		if err != nil {
			return nil, err
		}
		return encode(epoch), nil
	case "Resume":
		n, err := ac.Resume()
		if err != nil {
			return nil, err
		}
		return encode(int64(n)), nil
	case "Epoch":
		return encode(ac.Epoch()), nil
	case "Config":
		ac.mu.RLock()
		cfg := ac.cfg.String()
		ac.mu.RUnlock()
		return encode(cfg), nil
	default:
		return nil, fmt.Errorf("live: reconfig: unknown operation %q", op)
	}
}

// expire removes a job's contributions at its absolute deadline.
func (ac *AdmissionController) expire(ref sched.JobRef) {
	ac.mu.RLock()
	defer ac.mu.RUnlock()
	if ac.closed {
		return
	}
	st := ac.timerStripe(ref)
	st.mu.Lock()
	delete(st.m, ref)
	st.mu.Unlock()
	if ac.ctrl.ExpireJob(ref) > 0 {
		ac.replicateRLocked(RepRecord{Kind: RepExpire, Ref: ref})
	}
}

// onIdleReset applies an "Idle Resetting" report, accounting how many
// contributions the ledger actually released (entries may already be gone
// through deadline expiry, so the applied count is the ground truth the
// experiments report).
func (ac *AdmissionController) onIdleReset(ev eventchan.Event) {
	var rep IdleReset
	if err := decode(ev.Payload, &rep); err != nil {
		return
	}
	ac.mu.RLock()
	if ac.closed {
		ac.mu.RUnlock()
		return
	}
	// Time only the ledger apply, not decode or lock acquisition.
	start := time.Now()
	ac.ctrl.IdleReset(rep.Entries)
	elapsed := time.Since(start)
	ac.replicateRLocked(RepRecord{Kind: RepReset, Entries: rep.Entries})
	ac.mu.RUnlock()
	ac.ResetApply.Add(elapsed)
}

// ResetsApplied returns the number of ledger contributions removed through
// idle-resetting reports so far (the controller's IdleResets counter).
func (ac *AdmissionController) ResetsApplied() int64 {
	ac.mu.RLock()
	defer ac.mu.RUnlock()
	if ac.ctrl == nil {
		return 0
	}
	return ac.ctrl.Stats.IdleResets
}

// AuditLedger runs the admission ledger's invariant audit. The audit itself
// takes every admission shard's lock in the global lock order, so it is safe
// to run while decisions and expiry timers are still live; the shared
// component lock only pins the controller against reconfiguration.
func (ac *AdmissionController) AuditLedger() error {
	ac.mu.RLock()
	defer ac.mu.RUnlock()
	if ac.ctrl == nil {
		return nil
	}
	return ac.ctrl.Ledger().CheckInvariants()
}

// ActiveLedgerJobs snapshots the ledger's active job references.
func (ac *AdmissionController) ActiveLedgerJobs() []sched.JobRef {
	ac.mu.RLock()
	defer ac.mu.RUnlock()
	if ac.ctrl == nil {
		return nil
	}
	return ac.ctrl.Ledger().ActiveJobs()
}

// CompletedOn exposes the ledger's per-processor view of completed,
// still-active contributions (through the per-processor entry index), so
// remote idle resetters and diagnostic tools can reconcile their local
// pending sets against the manager's ledger.
func (ac *AdmissionController) CompletedOn(proc int, includePeriodic bool) []sched.EntryRef {
	ac.mu.RLock()
	defer ac.mu.RUnlock()
	if ac.ctrl == nil {
		return nil
	}
	return ac.ctrl.Ledger().CompletedOn(proc, includePeriodic)
}

// parseStrategyAttr reads one N/T/J attribute; unparseable values wrap
// ErrInvalidStrategy.
func parseStrategyAttr(attrs map[string]string, key string) (core.Strategy, error) {
	s, err := attrString(attrs, key)
	if err != nil {
		return 0, err
	}
	st, err := core.ParseStrategy(s)
	if err != nil {
		return 0, fmt.Errorf("%w: attribute %q: %v", ErrInvalidStrategy, key, err)
	}
	return st, nil
}

// LoadBalancer is the live LB component. The placement heuristic itself
// runs inside the admission controller's policy object (the two components
// are co-deployed on the task manager, as in the paper, and their
// interaction is the Location call); this component exposes the "Location"
// facet as an ORB servant so external tools can ask for the plan the
// balancer would produce, and carries the LB_Strategy attribute through the
// deployment path.
type LoadBalancer struct {
	mu         sync.Mutex
	strategy   core.Strategy
	acInstance string
	ac         *AdmissionController
	tasks      map[string]*sched.Task
}

var _ ccm.Component = (*LoadBalancer)(nil)

// AttrACInstance names the admission controller instance the balancer
// serves; it defaults to "Central-AC".
const AttrACInstance = "AC_Instance"

// NewLoadBalancer returns an unconfigured LB component; the AC instance is
// resolved from the container at activation.
func NewLoadBalancer() *LoadBalancer {
	return &LoadBalancer{acInstance: "Central-AC"}
}

// Configure parses the LB strategy and workload.
func (lb *LoadBalancer) Configure(attrs map[string]string) error {
	strategy, err := parseStrategyAttr(attrs, AttrLBStrategy)
	if err != nil {
		return err
	}
	wl, err := attrString(attrs, AttrWorkload)
	if err != nil {
		return err
	}
	w, err := spec.Parse([]byte(wl))
	if err != nil {
		return err
	}
	tasks, err := w.SchedTasks()
	if err != nil {
		return err
	}
	index := make(map[string]*sched.Task, len(tasks))
	for _, t := range tasks {
		index[t.ID] = t
	}
	lb.mu.Lock()
	lb.strategy = strategy
	if id, ok := attrs[AttrACInstance]; ok && id != "" {
		lb.acInstance = id
	}
	lb.tasks = index
	lb.mu.Unlock()
	return nil
}

// Activate resolves the co-deployed admission controller and registers the
// Location facet.
func (lb *LoadBalancer) Activate(ctx *ccm.Context) error {
	container, _ := ctx.Service(SvcContainer).(*ccm.Container)
	if container == nil {
		return errors.New("live: LB requires the container service")
	}
	lb.mu.Lock()
	acInstance := lb.acInstance
	lb.mu.Unlock()
	comp, ok := container.Lookup(acInstance)
	if !ok {
		return fmt.Errorf("live: LB: admission controller instance %q not installed", acInstance)
	}
	ac, ok := comp.(*AdmissionController)
	if !ok {
		return fmt.Errorf("live: LB: instance %q is not an admission controller", acInstance)
	}
	lb.mu.Lock()
	lb.ac = ac
	lb.mu.Unlock()
	ctx.ORB.RegisterServant("lb", lb.servant)
	return nil
}

// Passivate is a no-op; the ORB teardown retires the servant.
func (lb *LoadBalancer) Passivate() error { return nil }

// Reconfigure adopts a new LB strategy and/or workload attribute. The
// placement heuristic itself lives in the admission controller's policy
// object (swapped by the AC's Reconfigure); this keeps the component's
// advertised strategy and task index in sync for the Location facet and
// diagnostics.
func (lb *LoadBalancer) Reconfigure(attrs map[string]string) error {
	var newTasks map[string]*sched.Task
	if wl, ok := attrs[AttrWorkload]; ok && wl != "" {
		w, err := spec.Parse([]byte(wl))
		if err != nil {
			return err
		}
		tasks, err := w.SchedTasks()
		if err != nil {
			return err
		}
		newTasks = make(map[string]*sched.Task, len(tasks))
		for _, t := range tasks {
			newTasks[t.ID] = t
		}
	}
	if _, ok := attrs[AttrLBStrategy]; ok {
		strategy, err := parseStrategyAttr(attrs, AttrLBStrategy)
		if err != nil {
			return err
		}
		lb.mu.Lock()
		lb.strategy = strategy
		lb.mu.Unlock()
	}
	if newTasks != nil {
		lb.mu.Lock()
		lb.tasks = newTasks
		lb.mu.Unlock()
	}
	return nil
}

// Strategy returns the configured LB strategy.
func (lb *LoadBalancer) Strategy() core.Strategy {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.strategy
}

// servant answers Location(taskID) with the gob-encoded placement.
func (lb *LoadBalancer) servant(op string, arg []byte) ([]byte, error) {
	if op != "Location" {
		return nil, fmt.Errorf("live: lb: unknown operation %q", op)
	}
	var taskID string
	if err := decode(arg, &taskID); err != nil {
		return nil, err
	}
	lb.mu.Lock()
	t, ok := lb.tasks[taskID]
	ac := lb.ac
	lb.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("live: lb: unknown task %q", taskID)
	}
	if ac == nil {
		return nil, errors.New("live: lb: not activated")
	}
	ctrl := ac.Controller()
	if ctrl == nil {
		return nil, errors.New("live: lb: admission controller not configured")
	}
	return encode(ctrl.Location(t, 0)), nil
}
