package live

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/ccm"
	"repro/internal/core"
	"repro/internal/eventchan"
	"repro/internal/sched"
)

// Subtask attribute names.
const (
	AttrTask     = "Task"
	AttrStage    = "Stage"
	AttrExec     = "Exec"
	AttrPriority = "Priority"
	AttrDeadline = "Deadline"
	AttrKind     = "Kind"
	AttrLast     = "Last"
)

// Subtask is the live F/I Subtask and Last Subtask component: it owns a
// dispatch slot at a fixed EDMS priority in the node's executor, consumes
// Release (stage 0) and Trigger (later stages) events targeted at its
// (task, stage, processor) identity, executes the subjob, reports the
// completion to the local IR component, and either publishes the next
// Trigger (F/I) or the Done notification (Last) — the paper's two subtask
// component kinds, unified by the Last attribute.
//
// One instance is deployed per (task, stage) on the stage's home processor
// and on every replica processor (the duplicates in Figure 1).
type Subtask struct {
	task     string
	stage    int
	exec     time.Duration
	deadline time.Duration
	kind     sched.TaskKind
	last     bool
	proc     int

	// priority is the EDMS dispatch priority. It is atomic because the
	// open-world AddTasks delta re-assigns priorities over the union task set
	// while delivery goroutines keep submitting subjobs.
	priority atomic.Int32

	ch       *eventchan.Channel
	executor *Executor
	scale    float64

	// ReleaseHandle measures the paper's operations 5/6: handling a Release
	// event through submission to the dispatch queue (on the home processor
	// that is "release the task"; on a replica it is "release the duplicate
	// task").
	ReleaseHandle core.OpStats
	// Executed counts subjobs run by this instance.
	Executed int64
}

var _ ccm.Component = (*Subtask)(nil)

// NewSubtask returns an unconfigured subtask component.
func NewSubtask() *Subtask { return &Subtask{} }

// Configure parses the instance attributes.
func (s *Subtask) Configure(attrs map[string]string) error {
	var err error
	if s.task, err = attrString(attrs, AttrTask); err != nil {
		return err
	}
	if s.stage, err = attrInt(attrs, AttrStage); err != nil {
		return err
	}
	if s.exec, err = attrDuration(attrs, AttrExec); err != nil {
		return err
	}
	prio, err := attrInt(attrs, AttrPriority)
	if err != nil {
		return err
	}
	s.priority.Store(int32(prio))
	if s.deadline, err = attrDuration(attrs, AttrDeadline); err != nil {
		return err
	}
	if s.proc, err = attrInt(attrs, AttrProcessor); err != nil {
		return err
	}
	if s.last, err = attrBool(attrs, AttrLast); err != nil {
		return err
	}
	kind, err := attrString(attrs, AttrKind)
	if err != nil {
		return err
	}
	switch kind {
	case "periodic":
		s.kind = sched.Periodic
	case "aperiodic":
		s.kind = sched.Aperiodic
	default:
		return fmt.Errorf("live: subtask kind %q invalid", kind)
	}
	return nil
}

// Activate wires the component's ports and dispatch thread.
func (s *Subtask) Activate(ctx *ccm.Context) error {
	exec, _ := ctx.Service(SvcExecutor).(*Executor)
	if exec == nil {
		return errors.New("live: subtask requires an executor service")
	}
	s.executor = exec
	s.scale = 1
	if sc, ok := ctx.Service(SvcExecScale).(float64); ok && sc > 0 {
		s.scale = sc
	}
	s.ch = ctx.Events
	if s.stage == 0 {
		ctx.Events.Subscribe(EvRelease, s.onTrigger)
	} else {
		ctx.Events.Subscribe(EvTrigger, s.onTrigger)
	}
	return nil
}

// Passivate is a no-op: the executor drains at node shutdown.
func (s *Subtask) Passivate() error { return nil }

// Reconfigure adopts a re-assigned EDMS priority (the open-world AddTasks
// delta renumbers priorities over the union task set). Subjobs already in
// the dispatch queue keep the priority they were submitted with; subsequent
// releases use the new value. Other attributes are coordination state and
// ignored.
func (s *Subtask) Reconfigure(attrs map[string]string) error {
	if _, ok := attrs[AttrPriority]; !ok {
		return nil
	}
	prio, err := attrInt(attrs, AttrPriority)
	if err != nil {
		return err
	}
	s.priority.Store(int32(prio))
	return nil
}

var _ ccm.Reconfigurable = (*Subtask)(nil)

// onTrigger filters events for this instance and submits the subjob.
func (s *Subtask) onTrigger(ev eventchan.Event) {
	start := time.Now()
	var trg Trigger
	if err := decode(ev.Payload, &trg); err != nil {
		return
	}
	if trg.Task != s.task || trg.Stage != s.stage {
		return
	}
	if trg.Stage >= len(trg.Placement) || trg.Placement[trg.Stage].Proc != s.proc {
		return
	}
	s.executor.Submit(int(s.priority.Load()), func() { s.run(trg) })
	if s.stage == 0 {
		s.ReleaseHandle.Add(time.Since(start))
	}
}

// run executes one subjob and drives the completion protocol.
func (s *Subtask) run(trg Trigger) {
	BusyWait(time.Duration(float64(s.exec) * s.scale))
	s.Executed++

	// Paper: "Both F/I Subtask and Last Subtask components call the
	// Complete method of the local IR component" — a local event here.
	deadline := time.Unix(0, trg.ArrivalNanos).Add(s.deadline)
	_ = s.ch.Push(eventchan.Event{Type: EvComplete, Payload: encode(Complete{
		Ref:           sched.JobRef{Task: trg.Task, Job: trg.Job},
		Stage:         s.stage,
		Kind:          s.kind,
		DeadlineNanos: deadline.UnixNano(),
	})})

	if s.last {
		_ = s.ch.Push(eventchan.Event{Type: EvDone, Payload: encode(Done{
			Task:         trg.Task,
			Job:          trg.Job,
			ArrivalNanos: trg.ArrivalNanos,
			DoneNanos:    nowNanos(),
		})})
		return
	}
	next := trg
	next.Stage = trg.Stage + 1
	_ = s.ch.Push(eventchan.Event{Type: EvTrigger, Payload: encode(next)})
}
