package live

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestExecutorRunsByPriority(t *testing.T) {
	e := NewExecutor()
	defer e.Close()
	var mu sync.Mutex
	var got []string
	var wg sync.WaitGroup
	block := make(chan struct{})
	// First job occupies the worker so the rest queue up and sort.
	wg.Add(4)
	e.Submit(5, func() { <-block; wg.Done() })
	time.Sleep(20 * time.Millisecond)
	for _, s := range []struct {
		prio  int
		label string
	}{{3, "c"}, {1, "a"}, {2, "b"}} {
		s := s
		e.Submit(s.prio, func() {
			mu.Lock()
			got = append(got, s.label)
			mu.Unlock()
			wg.Done()
		})
	}
	close(block)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}

func TestExecutorFIFOWithinPriority(t *testing.T) {
	e := NewExecutor()
	defer e.Close()
	var mu sync.Mutex
	var got []int
	var wg sync.WaitGroup
	block := make(chan struct{})
	wg.Add(6)
	e.Submit(1, func() { <-block; wg.Done() })
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < 5; i++ {
		i := i
		e.Submit(2, func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
			wg.Done()
		})
	}
	close(block)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
}

func TestExecutorIdleCallback(t *testing.T) {
	e := NewExecutor()
	defer e.Close()
	var idles atomic.Int64
	e.SetIdleCallback(func() { idles.Add(1) })
	done := make(chan struct{})
	e.Submit(1, func() {})
	e.Submit(1, func() { close(done) })
	<-done
	// Wait for the worker to drain and report idle.
	deadline := time.Now().Add(time.Second)
	for idles.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if idles.Load() == 0 {
		t.Fatal("idle callback never fired")
	}
	if !e.Idle() {
		t.Error("executor not idle after drain")
	}
}

func TestExecutorCloseDropsQueued(t *testing.T) {
	e := NewExecutor()
	started := make(chan struct{})
	release := make(chan struct{})
	var ran atomic.Int64
	e.Submit(1, func() { close(started); <-release; ran.Add(1) })
	<-started
	e.Submit(1, func() { ran.Add(1) }) // queued behind the running job
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	e.Close() // waits for the running job, drops the queued one
	if got := ran.Load(); got != 1 {
		t.Errorf("ran %d jobs, want 1 (queued job dropped at close)", got)
	}
	e.Submit(1, func() { t.Error("submit after close executed") })
	time.Sleep(20 * time.Millisecond)
	e.Close() // idempotent
}

func TestExecutorNilSubmitPanics(t *testing.T) {
	e := NewExecutor()
	defer e.Close()
	defer func() {
		if recover() == nil {
			t.Error("nil work did not panic")
		}
	}()
	e.Submit(1, nil)
}

func TestBusyWait(t *testing.T) {
	start := time.Now()
	BusyWait(3 * time.Millisecond)
	if elapsed := time.Since(start); elapsed < 3*time.Millisecond {
		t.Errorf("BusyWait returned after %v, want at least 3ms", elapsed)
	}
	BusyWait(0)  // no-op
	BusyWait(-1) // no-op
}
