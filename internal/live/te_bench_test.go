package live

import (
	"sync"
	"testing"

	"repro/internal/ccm"
	"repro/internal/core"
	"repro/internal/eventchan"
	"repro/internal/sched"
)

// benchTE builds an activated effector with a cached per-task decision for
// task "p" (task "a" stays undecided, so its submissions take the slow
// path through te.mu and the event plane).
func benchTE(tb testing.TB) *TaskEffector {
	tb.Helper()
	node, err := NewNode("te-bench", 0, "127.0.0.1:0", 1)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { node.Close() })
	te := NewTaskEffector()
	if err := te.Configure(map[string]string{AttrProcessor: "0", AttrWorkload: testWorkloadJSON}); err != nil {
		tb.Fatal(err)
	}
	if err := te.Activate(&ccm.Context{Node: "te-bench", ORB: node.ORB, Events: node.Channel}); err != nil {
		tb.Fatal(err)
	}
	if _, err := te.Arrive("p"); err != nil {
		tb.Fatal(err)
	}
	te.onAccept(eventchan.Event{Type: EvAccept, Payload: encode(Accept{
		Task: "p", Job: 0, Ok: true,
		Placement:       []sched.PlacedStage{{Stage: 0, Proc: 0, Util: 0.05}},
		PerTaskDecision: true,
		Epoch:           0,
	})})
	if _, ok := te.cachedDecision("p"); !ok {
		tb.Fatal("per-task decision was not cached")
	}
	return te
}

// BenchmarkTECachedSubmit measures the cached per-task Submit fast path:
// solo, and racing a goroutine that continuously injects first-admission
// (undecided) arrivals through the slow path. The slow path holds te.mu;
// the cached path must not, so the two sub-benchmark times should stay in
// the same ballpark.
func BenchmarkTECachedSubmit(b *testing.B) {
	cached := func(b *testing.B, te *TaskEffector) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := te.SubmitJob("p"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("solo", func(b *testing.B) {
		cached(b, benchTE(b))
	})
	b.Run("vs-first-admission", func(b *testing.B) {
		te := benchTE(b)
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			n := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Slow path: te.mu, waiting-map hold, TaskArrive push.
				_, _ = te.SubmitJob("a")
				if n++; n%1024 == 0 {
					te.mu.Lock()
					clear(te.waiting)
					te.mu.Unlock()
				}
			}
		}()
		cached(b, te)
		close(stop)
		<-done
	})
}

// TestTEConcurrentCachedSubmit drives cached and first-admission submissions
// concurrently (run under -race) and checks the atomic counters add up.
func TestTEConcurrentCachedSubmit(t *testing.T) {
	te := benchTE(t)
	base := te.StatsSnapshot()
	const workers = 4
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				adm, err := te.SubmitJob("p")
				if err != nil {
					t.Error(err)
					return
				}
				if adm.Outcome != core.AdmissionAccepted {
					t.Errorf("cached submit outcome = %v", adm.Outcome)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_, _ = te.SubmitJob("a")
			}
		}()
	}
	wg.Wait()
	s := te.StatsSnapshot()
	if got, want := s.Arrived-base.Arrived, int64(2*workers*perWorker); got != want {
		t.Errorf("Arrived delta = %d, want %d", got, want)
	}
	if got, want := s.Released-base.Released, int64(workers*perWorker); got < want {
		t.Errorf("Released delta = %d, want at least %d", got, want)
	}
	seen := make(map[int64]bool)
	te.mu.Lock()
	for ref := range te.waiting {
		if ref.Task == "a" {
			if seen[ref.Job] {
				t.Errorf("job number %d assigned twice", ref.Job)
			}
			seen[ref.Job] = true
		}
	}
	te.mu.Unlock()
}
