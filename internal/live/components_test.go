package live

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ccm"
	"repro/internal/eventchan"
	"repro/internal/sched"
)

const testWorkloadJSON = `{
  "name": "unit",
  "processors": 2,
  "tasks": [
    {"id": "p", "kind": "periodic", "period": "100ms", "deadline": "100ms",
     "subtasks": [{"exec": "5ms", "processor": 0, "replicas": [1]}]},
    {"id": "a", "kind": "aperiodic", "deadline": "80ms",
     "subtasks": [{"exec": "4ms", "processor": 1}]}
  ]
}`

func acAttrs() map[string]string {
	return map[string]string{
		AttrACStrategy: "J",
		AttrIRStrategy: "T",
		AttrLBStrategy: "N",
		AttrProcessors: "2",
		AttrWorkload:   testWorkloadJSON,
	}
}

func TestAdmissionControllerConfigure(t *testing.T) {
	ac := NewAdmissionController()
	if err := ac.Configure(acAttrs()); err != nil {
		t.Fatal(err)
	}
	if ac.Controller() == nil {
		t.Fatal("controller not built")
	}
	if got := ac.Controller().Config().String(); got != "J_T_N" {
		t.Errorf("config = %s", got)
	}

	tests := []struct {
		name   string
		mutate func(map[string]string)
	}{
		{"missing AC strategy", func(m map[string]string) { delete(m, AttrACStrategy) }},
		{"bad strategy", func(m map[string]string) { m[AttrIRStrategy] = "Z" }},
		{"bad processors", func(m map[string]string) { m[AttrProcessors] = "x" }},
		{"missing workload", func(m map[string]string) { delete(m, AttrWorkload) }},
		{"broken workload", func(m map[string]string) { m[AttrWorkload] = "{" }},
		{"contradictory combo", func(m map[string]string) { m[AttrACStrategy] = "T"; m[AttrIRStrategy] = "J" }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			attrs := acAttrs()
			tt.mutate(attrs)
			if err := NewAdmissionController().Configure(attrs); err == nil {
				t.Error("Configure accepted invalid attrs")
			}
		})
	}
}

func TestAdmissionControllerActivateRequiresConfigure(t *testing.T) {
	ac := NewAdmissionController()
	node, err := NewNode("t", -1, "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	err = ac.Activate(&ccm.Context{Node: "t", ORB: node.ORB, Events: node.Channel})
	if err == nil {
		t.Error("Activate before Configure succeeded")
	}
}

func TestTaskEffectorConfigure(t *testing.T) {
	te := NewTaskEffector()
	attrs := map[string]string{AttrProcessor: "1", AttrWorkload: testWorkloadJSON}
	if err := te.Configure(attrs); err != nil {
		t.Fatal(err)
	}
	if te.Proc() != 1 {
		t.Errorf("Proc() = %d", te.Proc())
	}
	if err := NewTaskEffector().Configure(map[string]string{AttrProcessor: "0"}); err == nil {
		t.Error("Configure without workload succeeded")
	}
	if err := NewTaskEffector().Configure(map[string]string{
		AttrProcessor: "zero", AttrWorkload: testWorkloadJSON,
	}); err == nil {
		t.Error("Configure with bad processor succeeded")
	}
}

func TestTaskEffectorArriveUnknownTask(t *testing.T) {
	te := NewTaskEffector()
	if err := te.Configure(map[string]string{AttrProcessor: "0", AttrWorkload: testWorkloadJSON}); err != nil {
		t.Fatal(err)
	}
	node, err := NewNode("te-test", 0, "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := te.Activate(&ccm.Context{Node: "te-test", ORB: node.ORB, Events: node.Channel}); err != nil {
		t.Fatal(err)
	}
	if _, err := te.Arrive("ghost"); err == nil {
		t.Error("Arrive(ghost) succeeded")
	}
	if err := te.Passivate(); err != nil {
		t.Fatal(err)
	}
	if _, err := te.Arrive("p"); err == nil {
		t.Error("Arrive after Passivate succeeded")
	}
}

func subtaskAttrs() map[string]string {
	return map[string]string{
		AttrTask:      "p",
		AttrStage:     "0",
		AttrExec:      "5ms",
		AttrPriority:  "2",
		AttrDeadline:  "100ms",
		AttrKind:      "periodic",
		AttrLast:      "true",
		AttrProcessor: "0",
	}
}

func TestSubtaskConfigure(t *testing.T) {
	if err := NewSubtask().Configure(subtaskAttrs()); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(map[string]string)
	}{
		{"missing task", func(m map[string]string) { delete(m, AttrTask) }},
		{"bad stage", func(m map[string]string) { m[AttrStage] = "x" }},
		{"bad exec", func(m map[string]string) { m[AttrExec] = "fast" }},
		{"bad kind", func(m map[string]string) { m[AttrKind] = "sometimes" }},
		{"bad last", func(m map[string]string) { m[AttrLast] = "maybe" }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			attrs := subtaskAttrs()
			tt.mutate(attrs)
			if err := NewSubtask().Configure(attrs); err == nil {
				t.Error("Configure accepted invalid attrs")
			}
		})
	}
}

func TestSubtaskActivateRequiresExecutor(t *testing.T) {
	st := NewSubtask()
	if err := st.Configure(subtaskAttrs()); err != nil {
		t.Fatal(err)
	}
	node, err := NewNode("st-test", 0, "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	ctx := &ccm.Context{Node: "st-test", ORB: node.ORB, Events: node.Channel}
	if err := st.Activate(ctx); err == nil {
		t.Error("Activate without executor service succeeded")
	}
}

func TestIdleResetterConfigure(t *testing.T) {
	ir := NewIdleResetter()
	if err := ir.Configure(map[string]string{AttrProcessor: "0", AttrIRStrategy: "J"}); err != nil {
		t.Fatal(err)
	}
	if err := NewIdleResetter().Configure(map[string]string{AttrProcessor: "0"}); err == nil {
		t.Error("Configure without strategy succeeded")
	}
	// Strategy None activates inertly even without an executor.
	inert := NewIdleResetter()
	if err := inert.Configure(map[string]string{AttrProcessor: "0", AttrIRStrategy: "N"}); err != nil {
		t.Fatal(err)
	}
	node, err := NewNode("ir-test", 0, "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := inert.Activate(&ccm.Context{Node: "ir-test", ORB: node.ORB, Events: node.Channel}); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterAll(t *testing.T) {
	reg := ccm.NewRegistry()
	if err := Register(reg); err != nil {
		t.Fatal(err)
	}
	impls := reg.Implementations()
	want := []string{ImplAdmissionController, ImplHeartbeatBeacon, ImplIdleResetter, ImplLoadBalancer, ImplStandbyAC, ImplSubtask, ImplTaskEffector}
	if len(impls) != len(want) {
		t.Fatalf("Implementations = %v", impls)
	}
	for _, name := range want {
		if _, err := reg.Create(name); err != nil {
			t.Errorf("Create(%s): %v", name, err)
		}
	}
	// Double registration fails loudly.
	if err := Register(reg); err == nil {
		t.Error("second Register succeeded")
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	in := Trigger{
		Task: "t", Job: 42, Stage: 1,
		Placement: []sched.PlacedStage{{Stage: 0, Proc: 2, Util: 0.25}},
	}
	var out Trigger
	if err := decode(encode(in), &out); err != nil {
		t.Fatal(err)
	}
	if out.Task != in.Task || out.Job != in.Job || len(out.Placement) != 1 || out.Placement[0].Proc != 2 {
		t.Errorf("round trip = %+v", out)
	}
	if err := decode([]byte("garbage"), &out); err == nil {
		t.Error("garbage decoded")
	}
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode("x", 0, "127.0.0.1:0", 0); err == nil {
		t.Error("zero execScale accepted")
	}
	if _, err := NewNode("x", 0, "256.0.0.1:99999", 1); err == nil {
		t.Error("bad bind address accepted")
	}
}

func TestAttrHelpers(t *testing.T) {
	attrs := map[string]string{"s": "v", "i": "7", "d": "25ms", "b": "true"}
	if v, err := attrString(attrs, "s"); err != nil || v != "v" {
		t.Errorf("attrString = %q, %v", v, err)
	}
	if _, err := attrString(attrs, "missing"); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("attrString missing = %v", err)
	}
	if n, err := attrInt(attrs, "i"); err != nil || n != 7 {
		t.Errorf("attrInt = %d, %v", n, err)
	}
	if d, err := attrDuration(attrs, "d"); err != nil || d != 25*time.Millisecond {
		t.Errorf("attrDuration = %v, %v", d, err)
	}
	if b, err := attrBool(attrs, "b"); err != nil || !b {
		t.Errorf("attrBool = %v, %v", b, err)
	}
	if b, err := attrBool(attrs, "absent"); err != nil || b {
		t.Errorf("attrBool absent = %v, %v", b, err)
	}
	if _, err := attrBool(map[string]string{"b": "probably"}, "b"); err == nil {
		t.Error("attrBool accepted garbage")
	}
}

func TestCollector(t *testing.T) {
	tasks := []*sched.Task{{
		ID: "t", Kind: sched.Aperiodic, Deadline: 50 * time.Millisecond,
		Subtasks: []sched.Subtask{{Exec: time.Millisecond}},
	}}
	node, err := NewNode("coll-test", 0, "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	c := NewCollector(tasks)
	c.Attach(node.Channel)

	base := time.Now().UnixNano()
	push := func(task string, resp time.Duration) {
		_ = node.Channel.Push(eventchan.Event{Type: EvDone, Payload: encode(Done{
			Task:         task,
			Job:          0,
			ArrivalNanos: base,
			DoneNanos:    base + int64(resp),
		})})
	}
	push("t", 10*time.Millisecond) // met
	push("t", 80*time.Millisecond) // missed
	if c.Completed() != 2 {
		t.Errorf("Completed = %d", c.Completed())
	}
	if c.Missed() != 1 {
		t.Errorf("Missed = %d", c.Missed())
	}
	if got := c.MeanResponse(); got != 45*time.Millisecond {
		t.Errorf("MeanResponse = %v", got)
	}
}
