package live

import "errors"

// Sentinel errors for the live binding's configuration and reconfiguration
// paths, so callers of the unified Binding API can discriminate failures
// with errors.Is instead of matching message strings. Sites wrap these with
// contextual detail (component, attribute); the sentinel is the stable part.
var (
	// ErrNotConfigured marks a lifecycle call on a component that has not
	// been configured yet (Activate or Reconfigure before Configure).
	ErrNotConfigured = errors.New("live: component not configured")
	// ErrAlreadyActive marks a Configure call on a component that is already
	// activated; live attribute changes must go through Reconfigure.
	ErrAlreadyActive = errors.New("live: component already active")
	// ErrInvalidStrategy marks a strategy attribute that does not parse or a
	// combination the feasibility rules reject.
	ErrInvalidStrategy = errors.New("live: invalid strategy")
	// ErrNotQuiesced marks a strategy swap attempted while the admission
	// controller is still deciding arrivals: the two-phase protocol requires
	// Quiesce before Reconfigure.
	ErrNotQuiesced = errors.New("live: admission controller not quiesced")
	// ErrQuiesced marks an operation refused because the admission
	// controller is already quiesced (a concurrent reconfiguration is in
	// progress).
	ErrQuiesced = errors.New("live: admission controller already quiesced")
	// ErrNodeDown marks an operation addressed to a node the failure
	// detector has declared dead and no failover has re-homed yet.
	ErrNodeDown = errors.New("live: node down")
	// ErrFailoverInProgress marks a lifecycle operation refused while a
	// failover reconfiguration is running; submits are deferred and
	// replayed instead of failing.
	ErrFailoverInProgress = errors.New("live: failover in progress")
)
