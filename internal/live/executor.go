package live

import (
	"container/heap"
	"sync"
	"time"
)

// job is one queued execution request.
type execJob struct {
	priority int
	seq      int64
	run      func()
}

// execHeap orders jobs by (priority, submission order).
type execHeap []*execJob

func (h execHeap) Len() int { return len(h) }
func (h execHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority < h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h execHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *execHeap) Push(x any)   { *h = append(*h, x.(*execJob)) }
func (h *execHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

// Executor is a node's CPU stand-in: a single dispatch worker draining a
// priority queue of subjob executions, with an idle callback invoked when
// the queue empties — the live counterpart of the paper's per-component
// dispatching threads plus the lowest-priority idle detector thread.
//
// Execution is run-to-completion (no preemption): Go cannot preempt a
// running goroutine by OS priority the way the paper's KURT-Linux threads
// are preempted. Higher-priority subjobs still overtake queued lower-
// priority ones; exact preemption semantics are covered by the simulation
// binding.
type Executor struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  execHeap
	seq    int64
	busy   bool
	closed bool
	onIdle func()

	wg sync.WaitGroup
}

// NewExecutor starts the dispatch worker.
func NewExecutor() *Executor {
	e := &Executor{}
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(1)
	go e.loop()
	return e
}

// SetIdleCallback installs fn, invoked by the worker each time the queue
// drains. Passing nil disables it.
func (e *Executor) SetIdleCallback(fn func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.onIdle = fn
}

// Submit enqueues work at a priority (smaller runs first). Submissions after
// Close are dropped.
func (e *Executor) Submit(priority int, run func()) {
	if run == nil {
		panic("live: nil work submitted")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.seq++
	heap.Push(&e.queue, &execJob{priority: priority, seq: e.seq, run: run})
	e.cond.Signal()
}

// Idle reports whether the executor has no queued or running work.
func (e *Executor) Idle() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return !e.busy && len(e.queue) == 0
}

// loop is the dispatch worker.
func (e *Executor) loop() {
	defer e.wg.Done()
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		if e.closed {
			e.mu.Unlock()
			return
		}
		j := heap.Pop(&e.queue).(*execJob)
		e.busy = true
		e.mu.Unlock()

		j.run()

		e.mu.Lock()
		e.busy = false
		drained := len(e.queue) == 0
		idle := e.onIdle
		e.mu.Unlock()
		if drained && idle != nil {
			idle()
		}
	}
}

// Close stops the worker after the running job (if any) finishes. Queued
// jobs are discarded.
func (e *Executor) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.closed = true
	e.queue = nil
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}

// BusyWait spins for approximately d, modeling subtask execution time.
// Sleeping would under-represent CPU contention; spinning matches the
// paper's CPU-bound synthetic subtasks. Long durations still sleep most of
// the interval to avoid burning test time.
func BusyWait(d time.Duration) {
	if d <= 0 {
		return
	}
	if d > 2*time.Millisecond {
		time.Sleep(d - time.Millisecond)
		d = time.Millisecond
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
