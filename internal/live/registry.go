package live

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/ccm"
	"repro/internal/eventchan"
	"repro/internal/sched"
)

// Implementation names in the component repository, referenced by
// deployment plans.
const (
	ImplTaskEffector        = "TaskEffector"
	ImplAdmissionController = "AdmissionController"
	ImplLoadBalancer        = "LoadBalancer"
	ImplSubtask             = "Subtask"
	ImplIdleResetter        = "IdleResetter"
	ImplHeartbeatBeacon     = "HeartbeatBeacon"
	ImplStandbyAC           = "StandbyAC"
)

// Register adds the live component implementations to a component
// repository used by node daemons and in-process clusters.
func Register(reg *ccm.Registry) error {
	pairs := []struct {
		name    string
		factory ccm.Factory
	}{
		{ImplTaskEffector, func() ccm.Component { return NewTaskEffector() }},
		{ImplAdmissionController, func() ccm.Component { return NewAdmissionController() }},
		{ImplLoadBalancer, func() ccm.Component { return NewLoadBalancer() }},
		{ImplSubtask, func() ccm.Component { return NewSubtask() }},
		{ImplIdleResetter, func() ccm.Component { return NewIdleResetter() }},
		{ImplHeartbeatBeacon, func() ccm.Component { return NewHeartbeatBeacon() }},
		{ImplStandbyAC, func() ccm.Component { return NewStandbyAC() }},
	}
	for _, p := range pairs {
		if err := reg.Register(p.name, p.factory); err != nil {
			return err
		}
	}
	return nil
}

// Driver generates the arrival process for the tasks homed on one node,
// standing in for the physical system feeding the task effector: periodic
// tasks release on their phase/period grid, aperiodic tasks follow Poisson
// arrivals. Arrival timing may be compressed with the same scale factor the
// executor applies to execution times.
type Driver struct {
	te    *TaskEffector
	tasks []*sched.Task
	scale float64
	rng   *rand.Rand
	rngMu sync.Mutex

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewDriver prepares a driver over the tasks whose first stage is homed on
// the effector's processor. timeScale < 1 compresses the schedule.
func NewDriver(te *TaskEffector, tasks []*sched.Task, timeScale float64, seed int64) *Driver {
	local := make([]*sched.Task, 0, len(tasks))
	for _, t := range tasks {
		if t.Subtasks[0].Processor == te.Proc() {
			local = append(local, t.Clone())
		}
	}
	if timeScale <= 0 {
		timeScale = 1
	}
	return &Driver{
		te:    te,
		tasks: local,
		scale: timeScale,
		rng:   rand.New(rand.NewSource(seed)),
		stop:  make(chan struct{}),
	}
}

// Start launches one arrival goroutine per task. Stop terminates them.
func (d *Driver) Start() {
	for _, t := range d.tasks {
		t := t
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.generate(t)
		}()
	}
}

// Stop halts arrival generation and waits for the goroutines to exit.
func (d *Driver) Stop() {
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
	d.wg.Wait()
}

// generate produces the arrival sequence for one task until stopped.
func (d *Driver) generate(t *sched.Task) {
	next := time.Duration(float64(t.Phase) * d.scale)
	if t.Kind == sched.Aperiodic {
		next += d.exp(t.MeanInterarrival)
	}
	timer := time.NewTimer(next)
	defer timer.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-timer.C:
		}
		if _, err := d.te.Arrive(t.ID); err != nil && !TransportOverloaded(err) {
			// Overload means the plane shed this arrival (counted by the
			// TE); keep generating. Any other error is terminal.
			return
		}
		var gap time.Duration
		if t.Kind == sched.Periodic {
			gap = time.Duration(float64(t.Period) * d.scale)
		} else {
			gap = d.exp(t.MeanInterarrival)
		}
		timer.Reset(gap)
	}
}

// exp samples a scaled exponential interarrival.
func (d *Driver) exp(mean time.Duration) time.Duration {
	d.rngMu.Lock()
	u := d.rng.Float64()
	for u == 0 {
		u = d.rng.Float64()
	}
	d.rngMu.Unlock()
	return time.Duration(-float64(mean) * d.scale * math.Log(u))
}

// Collector aggregates job completions from the nodes' local Done events.
type Collector struct {
	mu        sync.Mutex
	completed int64
	missed    int64
	totalResp time.Duration
	maxResp   time.Duration
	deadlines map[string]time.Duration
}

// NewCollector builds a collector knowing each task's end-to-end deadline.
func NewCollector(tasks []*sched.Task) *Collector {
	dl := make(map[string]time.Duration, len(tasks))
	for _, t := range tasks {
		dl[t.ID] = t.Deadline
	}
	return &Collector{deadlines: dl}
}

// Attach subscribes the collector to a node's Done events.
func (c *Collector) Attach(ch *eventchan.Channel) {
	ch.Subscribe(EvDone, func(ev eventchan.Event) {
		var done Done
		if err := decode(ev.Payload, &done); err != nil {
			return
		}
		resp := time.Duration(done.DoneNanos - done.ArrivalNanos)
		c.mu.Lock()
		defer c.mu.Unlock()
		c.completed++
		c.totalResp += resp
		if resp > c.maxResp {
			c.maxResp = resp
		}
		if dl, ok := c.deadlines[done.Task]; ok && resp > dl {
			c.missed++
		}
	})
}

// Completed returns the number of completed jobs observed.
func (c *Collector) Completed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.completed
}

// Missed returns the number of completed jobs over deadline. Live-binding
// response times include real network and scheduling noise; the exact
// guarantee experiments run on the simulation binding.
func (c *Collector) Missed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.missed
}

// MeanResponse returns the mean observed response time.
func (c *Collector) MeanResponse() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.completed == 0 {
		return 0
	}
	return c.totalResp / time.Duration(c.completed)
}
