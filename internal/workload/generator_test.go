package workload

import (
	"testing"
	"time"

	"repro/internal/sched"
)

func TestGenerateFigure5Shape(t *testing.T) {
	for set := 0; set < 10; set++ {
		tasks, err := Generate(Figure5Params(set))
		if err != nil {
			t.Fatalf("set %d: %v", set, err)
		}
		if len(tasks) != 9 {
			t.Fatalf("set %d: %d tasks, want 9", set, len(tasks))
		}
		var aper, per int
		for _, tk := range tasks {
			if err := tk.Validate(); err != nil {
				t.Errorf("set %d: %v", set, err)
			}
			switch tk.Kind {
			case sched.Aperiodic:
				aper++
				if tk.MeanInterarrival != tk.Deadline {
					t.Errorf("set %d task %s: mean interarrival %v != deadline %v",
						set, tk.ID, tk.MeanInterarrival, tk.Deadline)
				}
			case sched.Periodic:
				per++
				if tk.Period != tk.Deadline {
					t.Errorf("set %d task %s: period %v != deadline %v", set, tk.ID, tk.Period, tk.Deadline)
				}
				if tk.Phase >= tk.Period {
					t.Errorf("set %d task %s: phase %v >= period %v", set, tk.ID, tk.Phase, tk.Period)
				}
			}
			if tk.Deadline < 250*time.Millisecond || tk.Deadline > 10*time.Second {
				t.Errorf("set %d task %s: deadline %v out of [250ms, 10s]", set, tk.ID, tk.Deadline)
			}
			if n := len(tk.Subtasks); n < 1 || n > 5 {
				t.Errorf("set %d task %s: %d stages, want 1..5", set, tk.ID, n)
			}
			if tk.Priority == 0 {
				t.Errorf("set %d task %s: no EDMS priority assigned", set, tk.ID)
			}
			for _, st := range tk.Subtasks {
				if st.Processor < 0 || st.Processor > 4 {
					t.Errorf("set %d task %s: home processor %d out of range", set, tk.ID, st.Processor)
				}
				if len(st.Replicas) != 1 {
					t.Errorf("set %d task %s: %d replicas, want 1", set, tk.ID, len(st.Replicas))
				}
			}
		}
		if aper != 4 || per != 5 {
			t.Errorf("set %d: %d aperiodic / %d periodic, want 4/5", set, aper, per)
		}
	}
}

// perProcUtil sums home-placed synthetic utilization per processor.
func perProcUtil(tasks []*sched.Task) map[int]float64 {
	utils := make(map[int]float64)
	for _, tk := range tasks {
		for i, st := range tk.Subtasks {
			utils[st.Processor] += tk.StageUtil(i)
		}
	}
	return utils
}

func TestGenerateFigure5UtilizationTarget(t *testing.T) {
	tasks, err := Generate(Figure5Params(0))
	if err != nil {
		t.Fatal(err)
	}
	for proc, u := range perProcUtil(tasks) {
		// Scaling is exact up to the nanosecond rounding of execution times.
		if u < 0.49 || u > 0.51 {
			t.Errorf("processor %d synthetic utilization %g, want 0.5", proc, u)
		}
	}
}

func TestGenerateFigure6Shape(t *testing.T) {
	tasks, err := Generate(Figure6Params(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range tasks {
		if n := len(tk.Subtasks); n < 1 || n > 3 {
			t.Errorf("task %s: %d stages, want 1..3", tk.ID, n)
		}
		for _, st := range tk.Subtasks {
			if st.Processor > 2 {
				t.Errorf("task %s: home processor %d, want group {0,1,2}", tk.ID, st.Processor)
			}
			for _, r := range st.Replicas {
				if r != 3 && r != 4 {
					t.Errorf("task %s: replica on %d, want group {3,4}", tk.ID, r)
				}
			}
		}
	}
	for proc, u := range perProcUtil(tasks) {
		if proc > 2 {
			t.Errorf("home utilization on replica processor %d", proc)
			continue
		}
		if u < 0.69 || u > 0.71 {
			t.Errorf("processor %d synthetic utilization %g, want 0.7", proc, u)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Figure5Params(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Figure5Params(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("different task counts for same seed")
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Deadline != b[i].Deadline ||
			len(a[i].Subtasks) != len(b[i].Subtasks) || a[i].Phase != b[i].Phase {
			t.Fatalf("task %d differs between identical generations", i)
		}
		for s := range a[i].Subtasks {
			if a[i].Subtasks[s].Exec != b[i].Subtasks[s].Exec ||
				a[i].Subtasks[s].Processor != b[i].Subtasks[s].Processor {
				t.Fatalf("task %d stage %d differs between identical generations", i, s)
			}
		}
	}
	// Different sets differ.
	c, err := Generate(Figure5Params(3))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i].Deadline != c[i].Deadline {
			same = false
			break
		}
	}
	if same {
		t.Error("sets 2 and 3 generated identical deadlines")
	}
}

func TestGenerateValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"no tasks", func(p *Params) { p.NumAperiodic, p.NumPeriodic = 0, 0 }},
		{"bad stages", func(p *Params) { p.MinStages = 0 }},
		{"stages inverted", func(p *Params) { p.MinStages, p.MaxStages = 4, 2 }},
		{"no home procs", func(p *Params) { p.HomeProcs = nil }},
		{"no replica procs", func(p *Params) { p.ReplicaProcs = nil }},
		{"zero util", func(p *Params) { p.TargetUtil = 0 }},
		{"util too high", func(p *Params) { p.TargetUtil = 1.0 }},
		{"bad deadlines", func(p *Params) { p.MinDeadline = 0 }},
		{"deadlines inverted", func(p *Params) { p.MinDeadline, p.MaxDeadline = time.Second, time.Millisecond }},
		{"replica pool collides", func(p *Params) { p.HomeProcs = []int{0}; p.ReplicaProcs = []int{0} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := Figure5Params(0)
			tt.mutate(&p)
			if _, err := Generate(p); err == nil {
				t.Error("Generate accepted invalid params")
			}
		})
	}
}

func TestMaxProc(t *testing.T) {
	tasks, err := Generate(Figure6Params(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := MaxProc(tasks); got != 4 {
		t.Errorf("MaxProc = %d, want 4 (replica group)", got)
	}
}
