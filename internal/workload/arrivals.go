package workload

// Arrival-shape generators for the declarative scenario engine
// (internal/scenario): each Shape turns into a deterministic timeline of
// arrival instants for one task, given the scenario seed. The shapes model
// the traffic regimes an open CPS deployment actually sees — steady Poisson
// background load, flash crowds, diurnal tides, Markov-modulated bursts and
// correlated multi-task spikes — so scenarios exercise admission control far
// from the paper's stationary Section 7 workloads.
//
// Generation is pure: the same (shape, horizon, rng state) always yields the
// same instants, which is what lets the scenario engine feed an identical
// timeline to the simulation and the live cluster, and lets record/replay
// reproduce a run bit-for-bit.

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/sched"
)

// ShapeKind names one arrival-shape generator.
type ShapeKind string

// Arrival shapes.
const (
	// ShapeConstant is a homogeneous Poisson process at Rate arrivals/sec.
	ShapeConstant ShapeKind = "constant"
	// ShapeFlashCrowd is a baseline Poisson process at Rate that ramps to
	// Peak over Ramp starting at At, holds the plateau for Hold, and ramps
	// back down over Ramp — the viral-event / alarm-flood regime.
	ShapeFlashCrowd ShapeKind = "flashcrowd"
	// ShapeDiurnal is a sinusoidal tide between Rate (trough) and Peak
	// (crest) with the given Period, starting at the trough.
	ShapeDiurnal ShapeKind = "diurnal"
	// ShapeMMPP is a two-state Markov-modulated Poisson process: a base
	// state at Rate with mean dwell DwellBase and a burst state at Peak with
	// mean dwell DwellBurst.
	ShapeMMPP ShapeKind = "mmpp"
	// ShapeSpike fires Burst back-to-back arrivals at At and then every
	// Every thereafter (Every zero means a single spike). A spike block
	// naming several tasks hits all of them at the same instants — the
	// correlated multi-task spike regime.
	ShapeSpike ShapeKind = "spike"
	// ShapeNatural reproduces the task's own arrival process (periodic
	// releases from its phase, or Poisson arrivals at its mean
	// interarrival), as the closed-loop simulation would schedule it.
	ShapeNatural ShapeKind = "natural"
)

// Shape parameterizes one arrival-shape generator. Rates are in arrivals per
// second of scenario (virtual) time.
type Shape struct {
	Kind ShapeKind
	// Rate is the baseline rate (trough/base state); Peak the elevated rate
	// where the shape has one.
	Rate float64
	Peak float64
	// At, Ramp and Hold describe the flash crowd envelope; At is also the
	// first spike instant.
	At   time.Duration
	Ramp time.Duration
	Hold time.Duration
	// Period is the diurnal cycle length.
	Period time.Duration
	// DwellBase and DwellBurst are the MMPP mean state-dwell times.
	DwellBase  time.Duration
	DwellBurst time.Duration
	// Every and Burst describe the spike train.
	Every time.Duration
	Burst int
}

// Validate checks the shape's parameters for its kind. ShapeNatural needs no
// parameters (the task supplies them).
func (s Shape) Validate() error {
	switch s.Kind {
	case ShapeConstant:
		if s.Rate <= 0 {
			return fmt.Errorf("workload: constant shape needs rate > 0, got %g", s.Rate)
		}
	case ShapeFlashCrowd:
		if s.Rate < 0 || s.Peak <= 0 || s.Peak < s.Rate {
			return fmt.Errorf("workload: flashcrowd shape needs 0 <= rate <= peak with peak > 0, got rate=%g peak=%g", s.Rate, s.Peak)
		}
		if s.Ramp <= 0 || s.Hold < 0 || s.At < 0 {
			return fmt.Errorf("workload: flashcrowd shape needs ramp > 0 and non-negative at/hold")
		}
	case ShapeDiurnal:
		if s.Rate < 0 || s.Peak <= 0 || s.Peak < s.Rate {
			return fmt.Errorf("workload: diurnal shape needs 0 <= rate <= peak with peak > 0, got rate=%g peak=%g", s.Rate, s.Peak)
		}
		if s.Period <= 0 {
			return fmt.Errorf("workload: diurnal shape needs period > 0")
		}
	case ShapeMMPP:
		if s.Rate < 0 || s.Peak <= 0 {
			return fmt.Errorf("workload: mmpp shape needs rate >= 0 and peak > 0, got rate=%g peak=%g", s.Rate, s.Peak)
		}
		if s.DwellBase <= 0 || s.DwellBurst <= 0 {
			return fmt.Errorf("workload: mmpp shape needs positive dwellBase and dwellBurst")
		}
	case ShapeSpike:
		if s.Burst <= 0 {
			return fmt.Errorf("workload: spike shape needs burst > 0, got %d", s.Burst)
		}
		if s.At <= 0 && s.Every <= 0 {
			return fmt.Errorf("workload: spike shape needs at or every")
		}
	case ShapeNatural:
		// Parameterized by the task itself.
	default:
		return fmt.Errorf("workload: unknown arrival shape %q", s.Kind)
	}
	return nil
}

// rateAt evaluates the shape's instantaneous rate for the time-varying
// shapes (flashcrowd, diurnal).
func (s Shape) rateAt(t time.Duration) float64 {
	switch s.Kind {
	case ShapeFlashCrowd:
		rampUpEnd := s.At + s.Ramp
		holdEnd := rampUpEnd + s.Hold
		rampDownEnd := holdEnd + s.Ramp
		switch {
		case t < s.At || t >= rampDownEnd:
			return s.Rate
		case t < rampUpEnd:
			f := float64(t-s.At) / float64(s.Ramp)
			return s.Rate + (s.Peak-s.Rate)*f
		case t < holdEnd:
			return s.Peak
		default:
			f := float64(t-holdEnd) / float64(s.Ramp)
			return s.Peak - (s.Peak-s.Rate)*f
		}
	case ShapeDiurnal:
		// Starts at the trough: rate(0) = Rate, rate(Period/2) = Peak.
		phase := 2*math.Pi*float64(t)/float64(s.Period) - math.Pi/2
		return s.Rate + (s.Peak-s.Rate)*(1+math.Sin(phase))/2
	default:
		return s.Rate
	}
}

// expDur samples an exponential duration with the given mean.
func expDur(rng *rand.Rand, mean time.Duration) time.Duration {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return time.Duration(-float64(mean) * math.Log(u))
}

// expInterarrival samples an exponential interarrival for a rate in
// arrivals/sec.
func expInterarrival(rng *rand.Rand, rate float64) time.Duration {
	return expDur(rng, time.Duration(float64(time.Second)/rate))
}

// Times generates the shape's arrival instants over [0, horizon], sorted
// ascending. The same rng state always produces the same instants.
func (s Shape) Times(horizon time.Duration, rng *rand.Rand) []time.Duration {
	var out []time.Duration
	switch s.Kind {
	case ShapeConstant:
		for t := expInterarrival(rng, s.Rate); t <= horizon; t += expInterarrival(rng, s.Rate) {
			out = append(out, t)
		}
	case ShapeFlashCrowd, ShapeDiurnal:
		// Thinning (non-homogeneous Poisson): candidates at the peak rate,
		// accepted with probability rate(t)/peak. Both rng draws happen for
		// every candidate, so the sequence is deterministic.
		rmax := math.Max(s.Rate, s.Peak)
		for t := expInterarrival(rng, rmax); t <= horizon; t += expInterarrival(rng, rmax) {
			if rng.Float64()*rmax <= s.rateAt(t) {
				out = append(out, t)
			}
		}
	case ShapeMMPP:
		t := time.Duration(0)
		burst := false
		for t < horizon {
			dwellMean, rate := s.DwellBase, s.Rate
			if burst {
				dwellMean, rate = s.DwellBurst, s.Peak
			}
			end := t + expDur(rng, dwellMean)
			if end > horizon {
				end = horizon
			}
			if rate > 0 {
				for at := t + expInterarrival(rng, rate); at <= end; at += expInterarrival(rng, rate) {
					out = append(out, at)
				}
			}
			t = end
			burst = !burst
		}
	case ShapeSpike:
		first := s.At
		if first <= 0 {
			first = s.Every
		}
		for t := first; t <= horizon; t += s.Every {
			for b := 0; b < s.Burst; b++ {
				out = append(out, t)
			}
			if s.Every <= 0 {
				break
			}
		}
	}
	return out
}

// NaturalTimes generates the arrival instants a task's own arrival process
// would produce over [0, horizon]: periodic releases at phase + k·period, or
// Poisson arrivals at the task's mean interarrival offset by the phase —
// mirroring the closed-loop simulation's scheduling so an open-loop scenario
// drives the same long-run load for tasks no shape claims.
func NaturalTimes(t *sched.Task, horizon time.Duration, rng *rand.Rand) []time.Duration {
	var out []time.Duration
	if t.Kind == sched.Periodic {
		for at := t.Phase; at <= horizon; at += t.Period {
			out = append(out, at)
		}
		return out
	}
	for at := t.Phase + expDur(rng, t.MeanInterarrival); at <= horizon; at += expDur(rng, t.MeanInterarrival) {
		out = append(out, at)
	}
	return out
}
