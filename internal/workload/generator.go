// Package workload generates the randomized task sets used by the paper's
// evaluation (Section 7): balanced random workloads for Figure 5, imbalanced
// workloads for Figure 6, and the smaller random workloads used for the
// overhead measurements in Section 7.3.
//
// Generation is fully deterministic given Params.Seed, so experiments are
// reproducible and each of the paper's "10 randomly generated task sets"
// corresponds to one seed.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sched"
)

// Params describes one randomized task-set generation, mirroring the
// workload descriptions in Sections 7.1 and 7.2.
type Params struct {
	// NumAperiodic and NumPeriodic count tasks by kind (the paper uses 4
	// aperiodic + 5 periodic).
	NumAperiodic int
	NumPeriodic  int
	// MinStages and MaxStages bound the uniformly distributed number of
	// subtasks per task (1..5 for Figure 5, 1..3 for Figure 6 and the
	// overhead runs).
	MinStages int
	MaxStages int
	// HomeProcs lists the processors home subtasks are randomly assigned to.
	HomeProcs []int
	// ReplicaProcs lists the processors duplicates are randomly picked from.
	// A replica is never placed on its subtask's home processor; when
	// ReplicaProcs equals HomeProcs the duplicate lands on one of "the other"
	// application processors, as in Section 7.1.
	ReplicaProcs []int
	// TargetUtil is the per-processor synthetic utilization if all tasks
	// arrive simultaneously (0.5 in Section 7.1, 0.7 in Section 7.2).
	// Execution times are scaled per processor to hit it exactly.
	TargetUtil float64
	// MinDeadline and MaxDeadline bound the uniformly distributed end-to-end
	// deadlines (250 ms to 10 s in the paper). Periodic tasks use period =
	// deadline, as in Section 7.1.
	MinDeadline time.Duration
	MaxDeadline time.Duration
	// Seed makes generation deterministic.
	Seed int64
}

// validate checks parameter sanity.
func (p Params) validate() error {
	switch {
	case p.NumAperiodic < 0 || p.NumPeriodic < 0 || p.NumAperiodic+p.NumPeriodic == 0:
		return fmt.Errorf("workload: need at least one task (aperiodic=%d periodic=%d)", p.NumAperiodic, p.NumPeriodic)
	case p.MinStages < 1 || p.MaxStages < p.MinStages:
		return fmt.Errorf("workload: invalid stage bounds [%d, %d]", p.MinStages, p.MaxStages)
	case len(p.HomeProcs) == 0:
		return fmt.Errorf("workload: no home processors")
	case len(p.ReplicaProcs) == 0:
		return fmt.Errorf("workload: no replica processors")
	case p.TargetUtil <= 0 || p.TargetUtil >= 1:
		return fmt.Errorf("workload: target utilization %g out of (0, 1)", p.TargetUtil)
	case p.MinDeadline <= 0 || p.MaxDeadline < p.MinDeadline:
		return fmt.Errorf("workload: invalid deadline bounds [%v, %v]", p.MinDeadline, p.MaxDeadline)
	}
	// A subtask needs at least one candidate replica different from any home
	// processor choice.
	if len(p.ReplicaProcs) == 1 {
		for _, h := range p.HomeProcs {
			if h == p.ReplicaProcs[0] {
				return fmt.Errorf("workload: replica pool {%d} collides with home processor %d", p.ReplicaProcs[0], h)
			}
		}
	}
	return nil
}

// Figure5Params returns the Section 7.1 balanced random workload for one of
// the ten task sets: 9 tasks (4 aperiodic, 5 periodic), 1-5 subtasks per
// task over 5 application processors, deadlines uniform in [250 ms, 10 s],
// per-processor synthetic utilization 0.5, and one duplicate per subtask on
// a random other processor.
func Figure5Params(set int) Params {
	return Params{
		NumAperiodic: 4,
		NumPeriodic:  5,
		MinStages:    1,
		MaxStages:    5,
		HomeProcs:    []int{0, 1, 2, 3, 4},
		ReplicaProcs: []int{0, 1, 2, 3, 4},
		TargetUtil:   0.5,
		MinDeadline:  250 * time.Millisecond,
		MaxDeadline:  10 * time.Second,
		Seed:         figureSeed(5, set),
	}
}

// Figure6Params returns the Section 7.2 imbalanced workload for one of the
// ten task sets: all home subtasks on processors {0,1,2} at synthetic
// utilization 0.7, all duplicates on the spare processors {3,4}, and 1-3
// subtasks per task.
func Figure6Params(set int) Params {
	return Params{
		NumAperiodic: 4,
		NumPeriodic:  5,
		MinStages:    1,
		MaxStages:    3,
		HomeProcs:    []int{0, 1, 2},
		ReplicaProcs: []int{3, 4},
		TargetUtil:   0.7,
		MinDeadline:  250 * time.Millisecond,
		MaxDeadline:  10 * time.Second,
		Seed:         figureSeed(6, set),
	}
}

// OverheadParams returns the Section 7.3 workload: as Figure 5 but with 1-3
// subtasks per task over 3 application processors.
func OverheadParams(set int) Params {
	return Params{
		NumAperiodic: 4,
		NumPeriodic:  5,
		MinStages:    1,
		MaxStages:    3,
		HomeProcs:    []int{0, 1, 2},
		ReplicaProcs: []int{0, 1, 2},
		TargetUtil:   0.5,
		MinDeadline:  250 * time.Millisecond,
		MaxDeadline:  10 * time.Second,
		Seed:         figureSeed(7, set),
	}
}

// figureSeed derives a distinct deterministic seed per (figure, set).
func figureSeed(figure, set int) int64 {
	return int64(figure)*1_000_003 + int64(set)*7919 + 1
}

// ScaleParams returns a large-scenario workload for the scalability sweep:
// the Figure 5 shape stretched to procs processors and tasks end-to-end
// tasks, with the paper's 4:5 aperiodic:periodic ratio preserved. Deadlines
// are drawn from [100 ms, 2 s] — shorter than the figure workloads — so a
// horizon of a few virtual seconds already releases several jobs per task
// and the sweep exercises steady-state admission churn at populations the
// paper's five-processor testbed could not host.
func ScaleParams(procs, tasks, set int) Params {
	if procs < 2 {
		procs = 2
	}
	if tasks < 1 {
		tasks = 1
	}
	all := make([]int, procs)
	for i := range all {
		all[i] = i
	}
	aper := tasks * 4 / 9
	return Params{
		NumAperiodic: aper,
		NumPeriodic:  tasks - aper,
		MinStages:    1,
		MaxStages:    3,
		HomeProcs:    all,
		ReplicaProcs: all,
		TargetUtil:   0.5,
		MinDeadline:  100 * time.Millisecond,
		MaxDeadline:  2 * time.Second,
		Seed:         figureSeed(9, set) ^ int64(procs)*2_000_003 ^ int64(tasks)*97,
	}
}

// Generate produces a random task set per the parameters. Periodic task
// phases are staggered uniformly within one period; aperiodic tasks use
// Poisson arrivals with mean interarrival equal to their deadline, which
// makes an aperiodic task's long-run load comparable to a periodic task with
// period = deadline (the paper normalizes both through the "if all tasks
// arrive simultaneously" synthetic utilization).
func Generate(p Params) ([]*sched.Task, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	total := p.NumAperiodic + p.NumPeriodic
	tasks := make([]*sched.Task, 0, total)

	type stageRef struct {
		task  int
		stage int
	}
	// Raw execution weights per stage; scaled per processor afterwards so
	// each processor's synthetic utilization is exactly TargetUtil.
	weights := make(map[stageRef]float64)
	byProc := make(map[int][]stageRef)

	for i := 0; i < total; i++ {
		kind := sched.Periodic
		name := fmt.Sprintf("P%d", i-p.NumAperiodic)
		if i < p.NumAperiodic {
			kind = sched.Aperiodic
			name = fmt.Sprintf("A%d", i)
		}
		deadline := p.MinDeadline + time.Duration(rng.Int63n(int64(p.MaxDeadline-p.MinDeadline)+1))
		t := &sched.Task{
			ID:       name,
			Kind:     kind,
			Deadline: deadline,
		}
		if kind == sched.Periodic {
			t.Period = deadline
			t.Phase = time.Duration(rng.Int63n(int64(t.Period)))
		} else {
			t.MeanInterarrival = deadline
		}
		numStages := p.MinStages + rng.Intn(p.MaxStages-p.MinStages+1)
		for s := 0; s < numStages; s++ {
			home := p.HomeProcs[rng.Intn(len(p.HomeProcs))]
			replica := pickReplica(rng, p.ReplicaProcs, home)
			t.Subtasks = append(t.Subtasks, sched.Subtask{
				Index:     s,
				Processor: home,
				Replicas:  []int{replica},
				// Exec filled in after scaling.
				Exec: time.Nanosecond,
			})
			ref := stageRef{task: i, stage: s}
			w := rng.Float64()
			for w == 0 {
				w = rng.Float64()
			}
			weights[ref] = w
			byProc[home] = append(byProc[home], ref)
		}
		tasks = append(tasks, t)
	}

	// Scale execution times so each processor's synthetic utilization (sum
	// of C/D over home-placed stages) is exactly TargetUtil.
	for _, refs := range byProc {
		var sum float64
		for _, r := range refs {
			sum += weights[r]
		}
		for _, r := range refs {
			t := tasks[r.task]
			util := weights[r] / sum * p.TargetUtil
			exec := time.Duration(util * float64(t.Deadline))
			if exec <= 0 {
				exec = time.Microsecond
			}
			t.Subtasks[r.stage].Exec = exec
		}
	}

	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("workload: generated invalid task: %w", err)
		}
	}
	sched.AssignEDMSPriorities(tasks)
	return tasks, nil
}

// pickReplica draws a replica processor different from home.
func pickReplica(rng *rand.Rand, pool []int, home int) int {
	for {
		r := pool[rng.Intn(len(pool))]
		if r != home {
			return r
		}
	}
}

// Scale returns copies of the tasks with every duration (period, deadline,
// phase, mean interarrival, execution times) multiplied by factor. Synthetic
// utilizations are invariant under scaling, so a compressed workload
// exercises the same admission behavior in less wall-clock time — used by
// the live overhead experiments.
func Scale(tasks []*sched.Task, factor float64) []*sched.Task {
	if factor <= 0 {
		panic("workload: non-positive scale factor")
	}
	scaleDur := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) * factor)
	}
	out := make([]*sched.Task, len(tasks))
	for i, t := range tasks {
		c := t.Clone()
		c.Period = scaleDur(t.Period)
		c.Deadline = scaleDur(t.Deadline)
		c.Phase = scaleDur(t.Phase)
		c.MeanInterarrival = scaleDur(t.MeanInterarrival)
		for s := range c.Subtasks {
			c.Subtasks[s].Exec = scaleDur(t.Subtasks[s].Exec)
			if c.Subtasks[s].Exec <= 0 {
				c.Subtasks[s].Exec = time.Microsecond
			}
		}
		out[i] = c
	}
	return out
}

// MaxProc returns the highest processor index referenced by the tasks, for
// sizing simulations.
func MaxProc(tasks []*sched.Task) int {
	maxP := 0
	for _, t := range tasks {
		for _, st := range t.Subtasks {
			for _, p := range st.Candidates() {
				if p > maxP {
					maxP = p
				}
			}
		}
	}
	return maxP
}
