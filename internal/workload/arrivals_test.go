package workload

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/sched"
)

func shapeTimes(t *testing.T, s Shape, horizon time.Duration, seed int64) []time.Duration {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate(%+v): %v", s, err)
	}
	return s.Times(horizon, rand.New(rand.NewSource(seed)))
}

func assertSortedWithin(t *testing.T, times []time.Duration, horizon time.Duration) {
	t.Helper()
	for i, at := range times {
		if at < 0 || at > horizon {
			t.Fatalf("arrival %d at %v outside [0, %v]", i, at, horizon)
		}
		if i > 0 && at < times[i-1] {
			t.Fatalf("arrival %d at %v before predecessor %v", i, at, times[i-1])
		}
	}
}

// Same shape + same seed must always produce the same instants: the whole
// scenario engine rests on this.
func TestShapeTimesDeterministic(t *testing.T) {
	shapes := []Shape{
		{Kind: ShapeConstant, Rate: 5},
		{Kind: ShapeFlashCrowd, Rate: 1, Peak: 20, At: 5 * time.Second, Ramp: 2 * time.Second, Hold: 3 * time.Second},
		{Kind: ShapeDiurnal, Rate: 0.5, Peak: 8, Period: 10 * time.Second},
		{Kind: ShapeMMPP, Rate: 1, Peak: 15, DwellBase: 3 * time.Second, DwellBurst: time.Second},
		{Kind: ShapeSpike, At: 2 * time.Second, Every: 4 * time.Second, Burst: 3},
	}
	const horizon = 30 * time.Second
	for _, s := range shapes {
		a := shapeTimes(t, s, horizon, 42)
		b := shapeTimes(t, s, horizon, 42)
		if len(a) != len(b) {
			t.Fatalf("%s: runs differ in length: %d vs %d", s.Kind, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: arrival %d differs: %v vs %v", s.Kind, i, a[i], b[i])
			}
		}
		assertSortedWithin(t, a, horizon)
		if len(a) == 0 {
			t.Fatalf("%s: produced no arrivals over %v", s.Kind, horizon)
		}
	}
}

// The spike train is fully deterministic: burst arrivals at exact instants.
func TestShapeSpikeTrain(t *testing.T) {
	s := Shape{Kind: ShapeSpike, At: 5 * time.Second, Every: 5 * time.Second, Burst: 4}
	times := shapeTimes(t, s, 20*time.Second, 1)
	if want := 4 * 4; len(times) != want { // spikes at 5, 10, 15, 20s
		t.Fatalf("got %d arrivals, want %d", len(times), want)
	}
	for i, at := range times {
		want := time.Duration(5+5*(i/4)) * time.Second
		if at != want {
			t.Fatalf("arrival %d at %v, want %v", i, at, want)
		}
	}

	single := Shape{Kind: ShapeSpike, At: 3 * time.Second, Burst: 2}
	times = shapeTimes(t, single, 20*time.Second, 1)
	if len(times) != 2 || times[0] != 3*time.Second || times[1] != 3*time.Second {
		t.Fatalf("single spike: got %v", times)
	}
}

// The flash crowd's plateau must be denser than its baseline.
func TestShapeFlashCrowdDensity(t *testing.T) {
	s := Shape{Kind: ShapeFlashCrowd, Rate: 1, Peak: 30, At: 10 * time.Second, Ramp: 2 * time.Second, Hold: 6 * time.Second}
	times := shapeTimes(t, s, 30*time.Second, 7)
	var base, plateau int
	for _, at := range times {
		switch {
		case at < 10*time.Second:
			base++
		case at >= 12*time.Second && at < 18*time.Second:
			plateau++
		}
	}
	// 10s of baseline at ~1/s vs 6s of plateau at ~30/s.
	if plateau <= 3*base {
		t.Fatalf("plateau not denser than baseline: %d plateau arrivals vs %d baseline", plateau, base)
	}
}

// Invalid parameterizations must be rejected.
func TestShapeValidate(t *testing.T) {
	bad := []Shape{
		{Kind: ShapeConstant},
		{Kind: ShapeConstant, Rate: -1},
		{Kind: ShapeFlashCrowd, Rate: 5, Peak: 1, Ramp: time.Second},
		{Kind: ShapeFlashCrowd, Rate: 1, Peak: 5},
		{Kind: ShapeDiurnal, Rate: 1, Peak: 5},
		{Kind: ShapeMMPP, Rate: 1, Peak: 5},
		{Kind: ShapeSpike},
		{Kind: ShapeKind("wavelet")},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid shape", s)
		}
	}
}

// NaturalTimes mirrors the task's own process: exact periodic releases,
// Poisson for aperiodic — both deterministic under a fixed seed.
func TestNaturalTimes(t *testing.T) {
	p := &sched.Task{ID: "p", Kind: sched.Periodic, Period: 4 * time.Second, Phase: time.Second, Deadline: 4 * time.Second}
	times := NaturalTimes(p, 13*time.Second, rand.New(rand.NewSource(1)))
	want := []time.Duration{time.Second, 5 * time.Second, 9 * time.Second, 13 * time.Second}
	if len(times) != len(want) {
		t.Fatalf("periodic: got %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("periodic: got %v, want %v", times, want)
		}
	}

	a := &sched.Task{ID: "a", Kind: sched.Aperiodic, MeanInterarrival: time.Second, Deadline: time.Second}
	x := NaturalTimes(a, 30*time.Second, rand.New(rand.NewSource(9)))
	y := NaturalTimes(a, 30*time.Second, rand.New(rand.NewSource(9)))
	if len(x) == 0 || len(x) != len(y) {
		t.Fatalf("aperiodic: nondeterministic or empty: %d vs %d arrivals", len(x), len(y))
	}
	assertSortedWithin(t, x, 30*time.Second)
}
