package spec

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sched"
)

const sampleJSON = `{
  "name": "plant-monitor",
  "processors": 3,
  "tasks": [
    {
      "id": "sensor-scan",
      "kind": "periodic",
      "period": "500ms",
      "deadline": "500ms",
      "subtasks": [
        {"exec": "20ms", "processor": 0, "replicas": [1]},
        {"exec": "10ms", "processor": 2}
      ]
    },
    {
      "id": "hazard-alert",
      "kind": "aperiodic",
      "deadline": "250ms",
      "subtasks": [
        {"exec": "15ms", "processor": 1}
      ]
    }
  ]
}`

func TestParseSample(t *testing.T) {
	w, err := Parse([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "plant-monitor" || w.Processors != 3 || len(w.Tasks) != 2 {
		t.Fatalf("parsed workload = %+v", w)
	}
	tasks, err := w.SchedTasks()
	if err != nil {
		t.Fatal(err)
	}
	if tasks[0].Kind != sched.Periodic || tasks[0].Period != 500*time.Millisecond {
		t.Errorf("task 0 = %+v", tasks[0])
	}
	if tasks[1].Kind != sched.Aperiodic {
		t.Errorf("task 1 kind = %v", tasks[1].Kind)
	}
	// Aperiodic mean interarrival defaults to the deadline.
	if tasks[1].MeanInterarrival != 250*time.Millisecond {
		t.Errorf("mean interarrival = %v, want 250ms", tasks[1].MeanInterarrival)
	}
	// EDMS: shorter deadline gets higher priority (smaller number).
	if tasks[1].Priority >= tasks[0].Priority {
		t.Errorf("priorities: alert %d vs scan %d, want alert higher", tasks[1].Priority, tasks[0].Priority)
	}
	if got := tasks[0].Subtasks[0].Replicas; len(got) != 1 || got[0] != 1 {
		t.Errorf("replicas = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		json string
	}{
		{"bad json", `{`},
		{"zero processors", `{"processors": 0, "tasks": []}`},
		{"bad kind", `{"processors": 1, "tasks": [{"id": "x", "kind": "sometimes", "deadline": "1s",
			"subtasks": [{"exec": "1ms", "processor": 0}]}]}`},
		{"processor out of range", `{"processors": 1, "tasks": [{"id": "x", "kind": "periodic",
			"period": "1s", "deadline": "1s", "subtasks": [{"exec": "1ms", "processor": 3}]}]}`},
		{"replica out of range", `{"processors": 1, "tasks": [{"id": "x", "kind": "periodic",
			"period": "1s", "deadline": "1s", "subtasks": [{"exec": "1ms", "processor": 0, "replicas": [9]}]}]}`},
		{"bad duration", `{"processors": 1, "tasks": [{"id": "x", "kind": "periodic",
			"period": "xyz", "deadline": "1s", "subtasks": [{"exec": "1ms", "processor": 0}]}]}`},
		{"missing subtasks", `{"processors": 1, "tasks": [{"id": "x", "kind": "periodic",
			"period": "1s", "deadline": "1s", "subtasks": []}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse([]byte(tt.json)); err == nil {
				t.Error("Parse accepted invalid spec")
			}
		})
	}
}

func TestRoundTrip(t *testing.T) {
	w, err := Parse([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	encoded, err := w.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(encoded), `"500ms"`) {
		t.Errorf("encoded durations not human readable:\n%s", encoded)
	}
	w2, err := Parse(encoded)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Name != w.Name || len(w2.Tasks) != len(w.Tasks) {
		t.Error("round trip lost data")
	}
}

func TestFromTasksRoundTrip(t *testing.T) {
	orig, err := Parse([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := orig.SchedTasks()
	if err != nil {
		t.Fatal(err)
	}
	w := FromTasks("copy", 3, tasks)
	tasks2, err := w.SchedTasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks2) != len(tasks) {
		t.Fatal("task count changed")
	}
	for i := range tasks {
		if tasks[i].ID != tasks2[i].ID || tasks[i].Deadline != tasks2[i].Deadline ||
			tasks[i].Kind != tasks2[i].Kind || len(tasks[i].Subtasks) != len(tasks2[i].Subtasks) {
			t.Errorf("task %d changed in round trip: %+v vs %+v", i, tasks[i], tasks2[i])
		}
	}
}

func TestDurationNumericJSON(t *testing.T) {
	var d Duration
	if err := d.UnmarshalJSON([]byte(`1500000`)); err != nil {
		t.Fatal(err)
	}
	if time.Duration(d) != 1500*time.Microsecond {
		t.Errorf("numeric duration = %v", time.Duration(d))
	}
	if err := d.UnmarshalJSON([]byte(`true`)); err == nil {
		t.Error("bool accepted as duration")
	}
}
