// Package spec defines the workload specification file format the front-end
// configuration engine consumes (Section 6: "The application developer first
// provides a workload specification file which describes each end-to-end
// task and where its subtasks execute"), and its conversion to and from the
// scheduling model.
//
// The format is JSON with human-readable durations ("250ms", "1.5s").
package spec

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/sched"
)

// Duration wraps time.Duration with "250ms"-style JSON encoding.
type Duration time.Duration

// MarshalJSON encodes as a duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a duration string or a number of nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("spec: bad duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err == nil {
		*d = Duration(n)
		return nil
	}
	return fmt.Errorf("spec: duration must be a string or integer: %s", b)
}

// SubtaskSpec describes one stage of an end-to-end task.
type SubtaskSpec struct {
	// Exec is the stage's worst-case execution time.
	Exec Duration `json:"exec"`
	// Processor is the home processor index.
	Processor int `json:"processor"`
	// Replicas lists processors hosting duplicates of the stage's component.
	Replicas []int `json:"replicas,omitempty"`
}

// TaskSpec describes one end-to-end task.
type TaskSpec struct {
	// ID names the task.
	ID string `json:"id"`
	// Kind is "periodic" or "aperiodic".
	Kind string `json:"kind"`
	// Period is required for periodic tasks.
	Period Duration `json:"period,omitempty"`
	// Deadline is the end-to-end deadline.
	Deadline Duration `json:"deadline"`
	// Phase optionally delays the first release.
	Phase Duration `json:"phase,omitempty"`
	// MeanInterarrival is the mean of the Poisson interarrival distribution
	// for aperiodic tasks; it defaults to the deadline.
	MeanInterarrival Duration `json:"meanInterarrival,omitempty"`
	// Subtasks is the stage chain.
	Subtasks []SubtaskSpec `json:"subtasks"`
}

// Workload is the top-level specification file.
type Workload struct {
	// Name labels the workload in generated deployment plans.
	Name string `json:"name"`
	// Processors is the number of application processors.
	Processors int `json:"processors"`
	// Tasks lists every end-to-end task.
	Tasks []TaskSpec `json:"tasks"`
}

// Parse decodes and validates a workload specification.
func Parse(data []byte) (*Workload, error) {
	var w Workload
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("spec: parse: %w", err)
	}
	if _, err := w.SchedTasks(); err != nil {
		return nil, err
	}
	return &w, nil
}

// Encode renders the workload as indented JSON.
func (w *Workload) Encode() ([]byte, error) {
	return json.MarshalIndent(w, "", "  ")
}

// SchedTasks converts the specification to validated scheduling-model tasks
// with EDMS priorities assigned.
func (w *Workload) SchedTasks() ([]*sched.Task, error) {
	if w.Processors <= 0 {
		return nil, fmt.Errorf("spec: workload needs a positive processor count, got %d", w.Processors)
	}
	out := make([]*sched.Task, 0, len(w.Tasks))
	for _, ts := range w.Tasks {
		t := &sched.Task{
			ID:               ts.ID,
			Period:           time.Duration(ts.Period),
			Deadline:         time.Duration(ts.Deadline),
			Phase:            time.Duration(ts.Phase),
			MeanInterarrival: time.Duration(ts.MeanInterarrival),
		}
		switch ts.Kind {
		case "periodic":
			t.Kind = sched.Periodic
		case "aperiodic":
			t.Kind = sched.Aperiodic
			if t.MeanInterarrival == 0 {
				t.MeanInterarrival = t.Deadline
			}
		default:
			return nil, fmt.Errorf("spec: task %s: kind must be periodic or aperiodic, got %q", ts.ID, ts.Kind)
		}
		for i, st := range ts.Subtasks {
			if st.Processor >= w.Processors {
				return nil, fmt.Errorf("spec: task %s stage %d: processor %d out of range (workload has %d)",
					ts.ID, i, st.Processor, w.Processors)
			}
			for _, r := range st.Replicas {
				if r >= w.Processors {
					return nil, fmt.Errorf("spec: task %s stage %d: replica %d out of range (workload has %d)",
						ts.ID, i, r, w.Processors)
				}
			}
			t.Subtasks = append(t.Subtasks, sched.Subtask{
				Index:     i,
				Exec:      time.Duration(st.Exec),
				Processor: st.Processor,
				Replicas:  append([]int(nil), st.Replicas...),
			})
		}
		if err := t.Validate(); err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	sched.AssignEDMSPriorities(out)
	return out, nil
}

// FromTasks builds a specification from scheduling-model tasks (used to
// persist generated workloads).
func FromTasks(name string, processors int, tasks []*sched.Task) *Workload {
	w := &Workload{Name: name, Processors: processors}
	for _, t := range tasks {
		ts := TaskSpec{
			ID:       t.ID,
			Deadline: Duration(t.Deadline),
			Phase:    Duration(t.Phase),
		}
		switch t.Kind {
		case sched.Periodic:
			ts.Kind = "periodic"
			ts.Period = Duration(t.Period)
		case sched.Aperiodic:
			ts.Kind = "aperiodic"
			ts.MeanInterarrival = Duration(t.MeanInterarrival)
		}
		for _, st := range t.Subtasks {
			ts.Subtasks = append(ts.Subtasks, SubtaskSpec{
				Exec:      Duration(st.Exec),
				Processor: st.Processor,
				Replicas:  append([]int(nil), st.Replicas...),
			})
		}
		w.Tasks = append(w.Tasks, ts)
	}
	return w
}
