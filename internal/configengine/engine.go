// Package configengine is the paper's front-end configuration engine
// (Section 6): it takes a workload specification and the developer's answers
// to four application-characteristic questions, maps them to admission
// control / idle resetting / load balancing strategies per Table 1,
// performs the feasibility check that rejects contradictory combinations,
// assigns EDMS priorities from end-to-end deadlines, and generates the
// XML-based deployment plan consumed by the deployment engine.
//
// Plan generation and delta emission are a deterministic surface: the same
// spec and answers must yield a byte-identical plan.
//
//rtmw:deterministic file
package configengine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/live"
	"repro/internal/sched"
	"repro/internal/spec"
)

// Tolerance answers the engine's fourth question: "How much extra overhead
// can you accept as it potentially improves schedulability?"
type Tolerance int

// Tolerance levels (the paper's N / PT / PJ).
const (
	// ToleranceNone accepts no extra overhead.
	ToleranceNone Tolerance = iota + 1
	// TolerancePerTask accepts some overhead per task.
	TolerancePerTask
	// TolerancePerJob accepts some overhead per job.
	TolerancePerJob
)

// String returns the paper's abbreviation.
func (t Tolerance) String() string {
	switch t {
	case ToleranceNone:
		return "N"
	case TolerancePerTask:
		return "PT"
	case TolerancePerJob:
		return "PJ"
	default:
		return fmt.Sprintf("Tolerance(%d)", int(t))
	}
}

// ParseTolerance reads an N/PT/PJ answer.
func ParseTolerance(s string) (Tolerance, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "N", "NONE":
		return ToleranceNone, nil
	case "PT", "TASK", "PER-TASK":
		return TolerancePerTask, nil
	case "PJ", "JOB", "PER-JOB":
		return TolerancePerJob, nil
	default:
		return 0, fmt.Errorf("configengine: unknown overhead tolerance %q (want N, PT or PJ)", s)
	}
}

// Answers are the developer's responses to the engine's four questions.
type Answers struct {
	// JobSkipping: does the application allow job skipping? (criterion C1)
	JobSkipping bool
	// Replication: does the application have replicated components?
	// (criterion C3)
	Replication bool
	// StatePersistence: does the application require state persistence
	// between jobs of the same task? (criterion C2)
	StatePersistence bool
	// Overhead is the acceptable extra overhead (question 4).
	Overhead Tolerance
}

// DefaultAnswers returns the defaults the paper's engine supplies when the
// developer provides no characteristics: per-task admission control, idle
// resetting, and load balancing.
func DefaultAnswers() Answers {
	return Answers{
		JobSkipping:      false,
		Replication:      true,
		StatePersistence: true,
		Overhead:         TolerancePerTask,
	}
}

// Result is the engine's strategy selection with its reasoning trail.
type Result struct {
	// Config is the selected valid strategy combination.
	Config core.Config
	// Notes explain each mapping decision and any capping applied.
	Notes []string
}

// MapAnswers applies Table 1 and the overhead question to select a valid
// strategy combination:
//
//   - C1 (job skipping): no → AC per task; yes → AC per job (only spent when
//     the developer accepts per-job overhead).
//   - Overhead: none → no idle resetting; per task → IR per task; per job →
//     IR per job (capped to per task under AC per task, the feasibility rule
//     of Section 4.5).
//   - C3 (replication): no → no LB. C2 (state persistency): yes → LB per
//     task; no → LB per job, capped by the overhead tolerance.
func MapAnswers(a Answers) Result {
	if a.Overhead == 0 {
		a.Overhead = TolerancePerTask
	}
	var r Result

	// Admission control (criterion C1 + overhead).
	switch {
	case a.JobSkipping && a.Overhead == TolerancePerJob:
		r.Config.AC = core.StrategyPerJob
		r.note("AC per job: job skipping allowed and per-job overhead accepted (reduces admission pessimism)")
	case a.JobSkipping:
		r.Config.AC = core.StrategyPerTask
		r.note("AC per task: job skipping allowed but per-job overhead not accepted")
	default:
		r.Config.AC = core.StrategyPerTask
		r.note("AC per task: job skipping not allowed, so every admitted task must release all its jobs")
	}

	// Idle resetting (overhead tolerance, feasibility-capped).
	switch a.Overhead {
	case ToleranceNone:
		r.Config.IR = core.StrategyNone
		r.note("IR disabled: no extra overhead accepted")
	case TolerancePerTask:
		r.Config.IR = core.StrategyPerTask
		r.note("IR per task: resets completed aperiodic subjobs at idle time")
	case TolerancePerJob:
		if r.Config.AC == core.StrategyPerTask {
			r.Config.IR = core.StrategyPerTask
			r.note("IR capped to per task: per-job resetting contradicts per-task admission control (Section 4.5)")
		} else {
			r.Config.IR = core.StrategyPerJob
			r.note("IR per job: resets completed aperiodic and periodic subjobs")
		}
	}

	// Load balancing (criteria C3 and C2 + overhead).
	switch {
	case !a.Replication:
		r.Config.LB = core.StrategyNone
		r.note("LB disabled: components are not replicated, so subtasks cannot be re-allocated")
	case a.StatePersistence:
		r.Config.LB = core.StrategyPerTask
		r.note("LB per task: state persistency forbids re-allocating jobs of a running task")
	case a.Overhead == TolerancePerJob:
		r.Config.LB = core.StrategyPerJob
		r.note("LB per job: stateless tasks re-balance at every job arrival")
	case a.Overhead == TolerancePerTask:
		r.Config.LB = core.StrategyPerTask
		r.note("LB per task: stateless tasks balance once at first arrival within the accepted overhead")
	default:
		r.Config.LB = core.StrategyNone
		r.note("LB disabled: no extra overhead accepted")
	}

	if err := r.Config.Validate(); err != nil {
		// Unreachable by construction; surface loudly if the mapping ever
		// regresses.
		panic(fmt.Sprintf("configengine: mapping produced invalid config %s: %v", r.Config, err))
	}
	return r
}

// note appends one reasoning line.
func (r *Result) note(s string) { r.Notes = append(r.Notes, s) }

// ValidateConfig checks an explicitly chosen combination, for developers who
// bypass the questionnaire. It is the feasibility check that "detects and
// disallows" incompatible service configurations.
func ValidateConfig(cfg core.Config) error { return cfg.Validate() }

// RenderTable1 formats the paper's Table 1 (criteria → middleware
// strategies).
func RenderTable1() string {
	var b strings.Builder
	b.WriteString("Table 1: Criteria and Middleware Strategies\n")
	fmt.Fprintf(&b, "%-26s %-12s %s\n", "", "No", "Yes")
	fmt.Fprintf(&b, "%-26s %-12s %s\n", "C1: Job Skipping", "AC per Task", "AC per Job")
	fmt.Fprintf(&b, "%-26s %-12s %s\n", "C2: State Persistency", "LB per Job", "LB per Task")
	fmt.Fprintf(&b, "%-26s %-12s %s\n", "C3: Component Replication", "No LB", "LB")
	return b.String()
}

// GeneratePlan builds the XML deployment plan for a workload under a
// strategy combination over the given nodes: one task manager node hosting
// the Central-AC and Central-LB instances, and one application node per
// processor hosting a task effector, an idle resetter, and a subtask
// component instance for every (task, stage) homed or replicated there. It
// also emits the minimal event-channel federation routes.
func GeneratePlan(name string, w *spec.Workload, cfg core.Config, manager deploy.Node, apps []deploy.Node) (*deploy.Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tasks, err := w.SchedTasks()
	if err != nil {
		return nil, err
	}
	if len(apps) != w.Processors {
		return nil, fmt.Errorf("configengine: workload needs %d application nodes, got %d", w.Processors, len(apps))
	}
	nodeOf := make(map[int]string, len(apps))
	for i, n := range apps {
		if n.Processor != i {
			return nil, fmt.Errorf("configengine: application node %d declares processor %d", i, n.Processor)
		}
		nodeOf[i] = n.Name
	}
	wlJSON, err := w.Encode()
	if err != nil {
		return nil, err
	}
	workload := string(wlJSON)

	p := &deploy.Plan{Name: name}
	p.Nodes = append(p.Nodes, manager)
	p.Nodes = append(p.Nodes, apps...)

	// Central services on the task manager. The admission controller
	// publishes its replication stream so the co-deployed warm standby can
	// mirror admission state for failover.
	p.Instances = append(p.Instances, deploy.Instance{
		ID: "Central-AC", Node: manager.Name, Implementation: live.ImplAdmissionController,
		ConfigProperties: []deploy.ConfigProperty{
			deploy.StringProperty(live.AttrACStrategy, cfg.AC.String()),
			deploy.StringProperty(live.AttrIRStrategy, cfg.IR.String()),
			deploy.StringProperty(live.AttrLBStrategy, cfg.LB.String()),
			deploy.StringProperty(live.AttrProcessors, strconv.Itoa(w.Processors)),
			deploy.StringProperty(live.AttrWorkload, workload),
			deploy.StringProperty(live.AttrReplicate, "true"),
		},
	})
	p.Instances = append(p.Instances, deploy.Instance{
		ID: "Central-LB", Node: manager.Name, Implementation: live.ImplLoadBalancer,
		ConfigProperties: []deploy.ConfigProperty{
			deploy.StringProperty(live.AttrLBStrategy, cfg.LB.String()),
			deploy.StringProperty(live.AttrWorkload, workload),
		},
	})
	p.Instances = append(p.Instances, deploy.Instance{
		ID: "Standby-AC", Node: manager.Name, Implementation: live.ImplStandbyAC,
		ConfigProperties: []deploy.ConfigProperty{
			deploy.StringProperty(live.AttrProcessors, strconv.Itoa(w.Processors)),
		},
	})

	// Per-processor task effectors, idle resetters, and heartbeat beacons.
	for i := range apps {
		p.Instances = append(p.Instances, deploy.Instance{
			ID: fmt.Sprintf("TE-%d", i), Node: nodeOf[i], Implementation: live.ImplTaskEffector,
			ConfigProperties: []deploy.ConfigProperty{
				deploy.StringProperty(live.AttrProcessor, strconv.Itoa(i)),
				deploy.StringProperty(live.AttrWorkload, workload),
			},
		})
		p.Instances = append(p.Instances, deploy.Instance{
			ID: fmt.Sprintf("IR-%d", i), Node: nodeOf[i], Implementation: live.ImplIdleResetter,
			ConfigProperties: []deploy.ConfigProperty{
				deploy.StringProperty(live.AttrProcessor, strconv.Itoa(i)),
				deploy.StringProperty(live.AttrIRStrategy, cfg.IR.String()),
			},
		})
		p.Instances = append(p.Instances, deploy.Instance{
			ID: fmt.Sprintf("HB-%d", i), Node: nodeOf[i], Implementation: live.ImplHeartbeatBeacon,
			ConfigProperties: []deploy.ConfigProperty{
				deploy.StringProperty(live.AttrProcessor, strconv.Itoa(i)),
			},
		})
	}

	// Subtask component instances: home plus duplicates. EDMS priorities
	// come from the deadline ordering (the engine "assigns priorities in
	// order of tasks' end-to-end deadlines").
	p.Instances = append(p.Instances, subtaskInstances(tasks, nodeOf)...)

	p.Connections = planConnections(tasks, cfg, manager.Name, nodeOf)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// subtaskInstances builds the Sub-* component instance declarations for the
// given tasks: one per (task, stage, candidate processor), home plus
// duplicates, carrying the task's current EDMS priority.
func subtaskInstances(tasks []*sched.Task, nodeOf map[int]string) []deploy.Instance {
	var out []deploy.Instance
	for _, t := range tasks {
		for s, st := range t.Subtasks {
			last := s == len(t.Subtasks)-1
			for _, proc := range st.Candidates() {
				out = append(out, deploy.Instance{
					ID:             fmt.Sprintf("Sub-%s-%d@P%d", t.ID, s, proc),
					Node:           nodeOf[proc],
					Implementation: live.ImplSubtask,
					ConfigProperties: []deploy.ConfigProperty{
						deploy.StringProperty(live.AttrTask, t.ID),
						deploy.StringProperty(live.AttrStage, strconv.Itoa(s)),
						deploy.StringProperty(live.AttrExec, st.Exec.String()),
						deploy.StringProperty(live.AttrPriority, strconv.Itoa(t.Priority)),
						deploy.StringProperty(live.AttrDeadline, t.Deadline.String()),
						deploy.StringProperty(live.AttrKind, t.Kind.String()),
						deploy.StringProperty(live.AttrLast, strconv.FormatBool(last)),
						deploy.StringProperty(live.AttrProcessor, strconv.Itoa(proc)),
					},
				})
			}
		}
	}
	return out
}

// ReconfigDelta computes the minimal reconfiguration transaction that moves
// a running deployment — described by the plan it was launched from — to the
// target strategy combination: per-instance attribute updates for the
// strategy-bearing components (the central AC and LB, every idle resetter,
// and every task effector's cache reset) plus the federation routes the new
// configuration needs that the plan does not already wire. The target is
// validated through the same feasibility rules as a fresh configuration, so
// a contradictory combination is rejected before anything touches the
// running system. The current combination is read back from the plan's
// admission controller instance.
func ReconfigDelta(p *deploy.Plan, to core.Config) (*deploy.Delta, error) {
	if err := to.Validate(); err != nil {
		return nil, err
	}
	st, err := readPlanState(p)
	if err != nil {
		return nil, err
	}
	acInst, from, tasks, nodeOf := st.ac, st.config, st.tasks, st.nodeOf

	d := &deploy.Delta{
		Plan:        p,
		FromConfig:  from.String(),
		ToConfig:    to.String(),
		ManagerNode: acInst.Node,
		ManagerKey:  live.ReconfigServantKey,
		EpochAttr:   live.AttrEpoch,
	}

	// Manager-hosted instances first: the policy object must swap before
	// the effector caches reset, so a reset cache can only refill with
	// new-configuration decisions.
	d.Updates = append(d.Updates, deploy.InstanceUpdate{
		ID: acInst.ID, Node: acInst.Node,
		Attrs: map[string]string{
			live.AttrACStrategy: to.AC.String(),
			live.AttrIRStrategy: to.IR.String(),
			live.AttrLBStrategy: to.LB.String(),
		},
	})
	for _, inst := range p.Instances {
		switch inst.Implementation {
		case live.ImplLoadBalancer:
			d.Updates = append(d.Updates, deploy.InstanceUpdate{
				ID: inst.ID, Node: inst.Node,
				Attrs: map[string]string{live.AttrLBStrategy: to.LB.String()},
			})
		case live.ImplIdleResetter:
			d.Updates = append(d.Updates, deploy.InstanceUpdate{
				ID: inst.ID, Node: inst.Node,
				Attrs: map[string]string{live.AttrIRStrategy: to.IR.String()},
			})
		case live.ImplTaskEffector:
			// Epoch-only update: drops the cached per-task decisions.
			d.Updates = append(d.Updates, deploy.InstanceUpdate{
				ID: inst.ID, Node: inst.Node, Attrs: map[string]string{},
			})
		}
	}

	// Federation routes the new configuration needs beyond the running
	// plan's (the gateway ignores re-adds, so this subtraction is a pure
	// optimization — and documentation of what actually changes).
	have := make(map[deploy.Connection]bool, len(p.Connections))
	for _, c := range p.Connections {
		have[c] = true
	}
	for _, c := range planConnections(tasks, to, d.ManagerNode, nodeOf) {
		if !have[c] {
			d.Connections = append(d.Connections, c)
		}
	}
	return d, nil
}

// planState is the running deployment's configuration and task set, read
// back from its plan: the admission controller instance, the active strategy
// combination, the parsed workload, the scheduling-model tasks, and the
// processor → node map.
type planState struct {
	ac       *deploy.Instance
	config   core.Config
	workload *spec.Workload
	tasks    []*sched.Task
	nodeOf   map[int]string
}

// readPlanState reads the running configuration and task set from the plan's
// admission controller instance.
func readPlanState(p *deploy.Plan) (*planState, error) {
	var acInst *deploy.Instance
	for i := range p.Instances {
		if p.Instances[i].Implementation == live.ImplAdmissionController {
			acInst = &p.Instances[i]
			break
		}
	}
	if acInst == nil {
		return nil, fmt.Errorf("configengine: plan %q has no admission controller instance", p.Name)
	}
	acAttrs := acInst.Attrs()
	var from core.Config
	var err error
	if from.AC, err = planStrategy(acAttrs, live.AttrACStrategy); err != nil {
		return nil, err
	}
	if from.IR, err = planStrategy(acAttrs, live.AttrIRStrategy); err != nil {
		return nil, err
	}
	if from.LB, err = planStrategy(acAttrs, live.AttrLBStrategy); err != nil {
		return nil, err
	}
	wlJSON, ok := acAttrs[live.AttrWorkload]
	if !ok {
		return nil, fmt.Errorf("configengine: plan %q: admission controller has no workload attribute", p.Name)
	}
	w, err := spec.Parse([]byte(wlJSON))
	if err != nil {
		return nil, err
	}
	tasks, err := w.SchedTasks()
	if err != nil {
		return nil, err
	}
	nodeOf := make(map[int]string, len(p.Nodes))
	for _, n := range p.Nodes {
		if n.Processor >= 0 {
			nodeOf[n.Processor] = n.Name
		}
	}
	return &planState{ac: acInst, config: from, workload: w, tasks: tasks, nodeOf: nodeOf}, nil
}

// taskSetDelta builds the shared shape of an open-world task-set
// reconfiguration: the strategy combination is untouched; the AC, LB and
// every TE adopt the new workload, and surviving subtask instances whose
// EDMS priority changed under the re-assignment get priority updates.
func taskSetDelta(p *deploy.Plan, st *planState, next []*sched.Task) (*deploy.Delta, error) {
	nextSpec := spec.FromTasks(st.workload.Name, st.workload.Processors, next)
	wlJSON, err := nextSpec.Encode()
	if err != nil {
		return nil, err
	}
	workload := string(wlJSON)

	d := &deploy.Delta{
		Plan:        p,
		FromConfig:  st.config.String(),
		ToConfig:    st.config.String(),
		ManagerNode: st.ac.Node,
		ManagerKey:  live.ReconfigServantKey,
		EpochAttr:   live.AttrEpoch,
	}
	// Manager-hosted instances first (the AC must learn the new task set —
	// and withdraw departed tasks' ledger contributions — before effector
	// caches reset and refill).
	d.Updates = append(d.Updates, deploy.InstanceUpdate{
		ID: st.ac.ID, Node: st.ac.Node,
		Attrs: map[string]string{live.AttrWorkload: workload},
	})
	prio := make(map[string]int, len(next))
	for _, t := range next {
		prio[t.ID] = t.Priority
	}
	for _, inst := range p.Instances {
		switch inst.Implementation {
		case live.ImplLoadBalancer:
			d.Updates = append(d.Updates, deploy.InstanceUpdate{
				ID: inst.ID, Node: inst.Node,
				Attrs: map[string]string{live.AttrWorkload: workload},
			})
		case live.ImplTaskEffector:
			d.Updates = append(d.Updates, deploy.InstanceUpdate{
				ID: inst.ID, Node: inst.Node,
				Attrs: map[string]string{live.AttrWorkload: workload},
			})
		case live.ImplSubtask:
			attrs := inst.Attrs()
			newPrio, ok := prio[attrs[live.AttrTask]]
			if !ok {
				// A departed task's instance: it stays installed to drain its
				// in-flight jobs and goes inert once they finish.
				continue
			}
			if attrs[live.AttrPriority] == strconv.Itoa(newPrio) {
				continue
			}
			d.Updates = append(d.Updates, deploy.InstanceUpdate{
				ID: inst.ID, Node: inst.Node,
				Attrs: map[string]string{live.AttrPriority: strconv.Itoa(newPrio)},
			})
		}
	}
	return d, nil
}

// AddTasksDelta computes the reconfiguration transaction that registers new
// tasks on a running deployment: the union workload (with EDMS priorities
// re-assigned over it) is pushed to the admission controller, the load
// balancer and every task effector; the added tasks' subtask component
// instances install onto the running nodes; surviving instances whose
// priority changed under the re-assignment are updated in place; and the
// federation routes the enlarged task set needs beyond the running plan's
// are wired. The launcher executes it under the same quiesce protocol as a
// strategy swap, so no in-flight decision ever observes a half-updated task
// set.
func AddTasksDelta(p *deploy.Plan, add []*sched.Task) (*deploy.Delta, error) {
	if len(add) == 0 {
		return nil, fmt.Errorf("configengine: add tasks: empty task list")
	}
	st, err := readPlanState(p)
	if err != nil {
		return nil, err
	}
	existing := make(map[string]bool, len(st.tasks))
	for _, t := range st.tasks {
		existing[t.ID] = true
	}
	union := append([]*sched.Task{}, st.tasks...)
	for _, t := range add {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if existing[t.ID] {
			return nil, fmt.Errorf("configengine: add tasks: %w: %q", core.ErrTaskExists, t.ID)
		}
		existing[t.ID] = true
		for _, sub := range t.Subtasks {
			for _, proc := range sub.Candidates() {
				if proc >= st.workload.Processors {
					return nil, fmt.Errorf("configengine: add tasks: task %s references processor %d but deployment has %d",
						t.ID, proc, st.workload.Processors)
				}
			}
		}
		union = append(union, t.Clone())
	}
	sched.AssignEDMSPriorities(union)

	d, err := taskSetDelta(p, st, union)
	if err != nil {
		return nil, err
	}
	added := union[len(st.tasks):]
	d.Installs = subtaskInstances(added, st.nodeOf)

	// Federation routes the enlarged task set needs that the plan lacks.
	have := make(map[deploy.Connection]bool, len(p.Connections))
	for _, c := range p.Connections {
		have[c] = true
	}
	for _, c := range planConnections(union, st.config, d.ManagerNode, st.nodeOf) {
		if !have[c] {
			d.Connections = append(d.Connections, c)
		}
	}
	return d, nil
}

// RemoveTasksDelta computes the reconfiguration transaction that withdraws
// tasks from a running deployment: the shrunken workload (EDMS priorities
// re-assigned over the survivors) is pushed to the admission controller —
// which releases the departed tasks' remaining ledger contributions — the
// load balancer and every task effector. The departed tasks' subtask
// instances stay installed so their in-flight jobs drain; they go inert once
// no effector can release jobs for them. Routes are never removed (a stale
// route only forwards events nobody publishes).
func RemoveTasksDelta(p *deploy.Plan, ids []string) (*deploy.Delta, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("configengine: remove tasks: empty ID list")
	}
	st, err := readPlanState(p)
	if err != nil {
		return nil, err
	}
	drop := make(map[string]bool, len(ids))
	for _, id := range ids {
		if drop[id] {
			return nil, fmt.Errorf("configengine: remove tasks: duplicate ID %q", id)
		}
		drop[id] = true
	}
	remaining := make([]*sched.Task, 0, len(st.tasks))
	for _, t := range st.tasks {
		if drop[t.ID] {
			delete(drop, t.ID)
			continue
		}
		remaining = append(remaining, t)
	}
	// Report the first unknown ID in the caller's argument order, not an
	// arbitrary one from map order.
	for _, id := range ids {
		if drop[id] {
			return nil, fmt.Errorf("configengine: remove tasks: %w: %q", core.ErrUnknownTask, id)
		}
	}
	if len(remaining) == 0 {
		return nil, fmt.Errorf("configengine: remove tasks: cannot remove every task from the deployment")
	}
	sched.AssignEDMSPriorities(remaining)
	return taskSetDelta(p, st, remaining)
}

// FailoverOutcome describes the workload surgery a failover delta performs.
type FailoverOutcome struct {
	// Rehomed maps task IDs to the stages that moved off the dead processor
	// (stage index → surviving processor).
	Rehomed map[string]map[int]int
	// Withdrawn lists tasks that could not survive the loss: some stage had
	// neither a surviving home nor a surviving replica. Their admission
	// state is withdrawn by the delta.
	Withdrawn []string
}

// FailoverDelta computes the reconfiguration transaction that removes a dead
// processor from a running deployment: every task stage homed on the dead
// processor is re-homed onto its lowest-numbered surviving replica, the dead
// processor disappears from every replica list, tasks with an unreplicated
// stage on the dead processor are withdrawn (their admission state is
// released; in-flight jobs of such tasks are lost with the node — that is
// what replication is for), EDMS priorities are re-assigned over the
// survivors, and the dead node is listed in SkipNodes so the executor never
// RPCs it while Apply still folds the full update set into the plan (a later
// node recovery reinstalls from that plan state).
//
// The delta deliberately does not shrink the processor count: the dead
// processor keeps its slot in the ledger (its residual contributions age out
// by deadline expiry) and a recovered node can reclaim it.
func FailoverDelta(p *deploy.Plan, deadProc int) (*deploy.Delta, *FailoverOutcome, error) {
	st, err := readPlanState(p)
	if err != nil {
		return nil, nil, err
	}
	deadNode, ok := st.nodeOf[deadProc]
	if !ok {
		return nil, nil, fmt.Errorf("configengine: failover: no node hosts processor %d", deadProc)
	}

	out := &FailoverOutcome{Rehomed: make(map[string]map[int]int)}
	var next []*sched.Task
	for _, t := range st.tasks {
		nt := t.Clone()
		lost := false
		for s := range nt.Subtasks {
			sub := &nt.Subtasks[s]
			survivors := make([]int, 0, len(sub.Replicas))
			for _, r := range sub.Replicas {
				if r != deadProc {
					survivors = append(survivors, r)
				}
			}
			if sub.Processor == deadProc {
				if len(survivors) == 0 {
					lost = true
					break
				}
				// Lowest-numbered surviving replica becomes the home:
				// deterministic, and its subtask instance is already
				// installed (duplicates deploy with the plan).
				best := survivors[0]
				for _, r := range survivors[1:] {
					if r < best {
						best = r
					}
				}
				rest := make([]int, 0, len(survivors)-1)
				for _, r := range survivors {
					if r != best {
						rest = append(rest, r)
					}
				}
				sub.Processor = best
				sub.Replicas = rest
				if out.Rehomed[nt.ID] == nil {
					out.Rehomed[nt.ID] = make(map[int]int)
				}
				out.Rehomed[nt.ID][s] = best
			} else {
				sub.Replicas = survivors
			}
		}
		if lost {
			out.Withdrawn = append(out.Withdrawn, t.ID)
			continue
		}
		next = append(next, nt)
	}
	if len(next) == 0 {
		return nil, nil, fmt.Errorf("configengine: failover: no task survives the loss of processor %d", deadProc)
	}
	sched.AssignEDMSPriorities(next)

	d, err := taskSetDelta(p, st, next)
	if err != nil {
		return nil, nil, err
	}
	d.SkipNodes = []string{deadNode}

	// Federation routes the re-homed task set needs beyond the running
	// plan's; routes touching the dead node are pointless (the executor
	// would skip them anyway) and are filtered here so the plan does not
	// accumulate them either.
	have := make(map[deploy.Connection]bool, len(p.Connections))
	for _, c := range p.Connections {
		have[c] = true
	}
	for _, c := range planConnections(next, st.config, d.ManagerNode, st.nodeOf) {
		if c.SourceNode == deadNode || c.SinkNode == deadNode {
			continue
		}
		if !have[c] {
			d.Connections = append(d.Connections, c)
		}
	}
	return d, out, nil
}

// planStrategy reads one strategy attribute from a plan instance.
func planStrategy(attrs map[string]string, key string) (core.Strategy, error) {
	v, ok := attrs[key]
	if !ok {
		return 0, fmt.Errorf("configengine: plan instance missing attribute %q", key)
	}
	s, err := core.ParseStrategy(v)
	if err != nil {
		return 0, fmt.Errorf("configengine: attribute %q: %w", key, err)
	}
	return s, nil
}

// planConnections computes the minimal federation routes.
func planConnections(tasks []*sched.Task, cfg core.Config, manager string, nodeOf map[int]string) []deploy.Connection {
	type route struct {
		ev, src, dst string
	}
	seen := make(map[route]bool)
	var out []deploy.Connection
	add := func(ev, src, dst string) {
		if src == dst {
			return
		}
		r := route{ev, src, dst}
		if seen[r] {
			return
		}
		seen[r] = true
		out = append(out, deploy.Connection{EventType: ev, SourceNode: src, SinkNode: dst})
	}

	for _, t := range tasks {
		home := nodeOf[t.Subtasks[0].Processor]
		// Arrivals flow home → manager; decisions flow back.
		add(live.EvTaskArrive, home, manager)
		add(live.EvAccept, manager, home)
		// Releases reach every processor that may host the first stage.
		for _, proc := range t.Subtasks[0].Candidates() {
			add(live.EvRelease, home, nodeOf[proc])
		}
		// Triggers connect every candidate of stage s to every candidate of
		// stage s+1.
		for s := 0; s+1 < len(t.Subtasks); s++ {
			for _, from := range t.Subtasks[s].Candidates() {
				for _, to := range t.Subtasks[s+1].Candidates() {
					add(live.EvTrigger, nodeOf[from], nodeOf[to])
				}
			}
		}
	}
	// Node-fanout routes walk processors in ascending order so the emitted
	// connection list — and therefore the plan bytes — are deterministic.
	procs := make([]int, 0, len(nodeOf))
	for p := range nodeOf {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	// Idle resetting reports flow from every application node to the
	// manager, unless resetting is disabled.
	if cfg.IR != core.StrategyNone {
		for _, p := range procs {
			add(live.EvIdleReset, nodeOf[p], manager)
		}
	}
	// Heartbeat beacons flow from every application node to the manager's
	// failure detector.
	for _, p := range procs {
		add(live.EvHeartbeat, nodeOf[p], manager)
	}
	return out
}
