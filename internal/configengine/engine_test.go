package configengine

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/spec"
)

func TestMapAnswersTable(t *testing.T) {
	tests := []struct {
		name string
		a    Answers
		want string
	}{
		// The paper's Figure 4 example: answers (N, Y, Y, PT) → all three
		// services per task.
		{
			name: "figure 4 example",
			a:    Answers{JobSkipping: false, Replication: true, StatePersistence: true, Overhead: TolerancePerTask},
			want: "T_T_T",
		},
		{
			name: "most aggressive",
			a:    Answers{JobSkipping: true, Replication: true, StatePersistence: false, Overhead: TolerancePerJob},
			want: "J_J_J",
		},
		{
			name: "no overhead at all",
			a:    Answers{JobSkipping: false, Replication: false, StatePersistence: false, Overhead: ToleranceNone},
			want: "T_N_N",
		},
		{
			name: "job skipping without per-job budget stays per task",
			a:    Answers{JobSkipping: true, Replication: true, StatePersistence: true, Overhead: TolerancePerTask},
			want: "T_T_T",
		},
		{
			name: "per-job IR capped under per-task AC",
			a:    Answers{JobSkipping: false, Replication: true, StatePersistence: false, Overhead: TolerancePerJob},
			want: "T_T_J",
		},
		{
			name: "no replication disables LB",
			a:    Answers{JobSkipping: true, Replication: false, StatePersistence: false, Overhead: TolerancePerJob},
			want: "J_J_N",
		},
		{
			name: "state persistence pins LB per task",
			a:    Answers{JobSkipping: true, Replication: true, StatePersistence: true, Overhead: TolerancePerJob},
			want: "J_J_T",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := MapAnswers(tt.a)
			if r.Config.String() != tt.want {
				t.Errorf("MapAnswers(%+v) = %s, want %s\nnotes: %v", tt.a, r.Config, tt.want, r.Notes)
			}
			if err := r.Config.Validate(); err != nil {
				t.Errorf("mapping produced invalid config: %v", err)
			}
			if len(r.Notes) != 3 {
				t.Errorf("want one note per service axis, got %v", r.Notes)
			}
		})
	}
}

func TestMapAnswersDefaults(t *testing.T) {
	// "If application characteristics are not provided by the developers,
	// our configuration engine can supply default configuration settings,
	// i.e., per task admission control, idle resetting and load balancing."
	r := MapAnswers(DefaultAnswers())
	if r.Config.String() != "T_T_T" {
		t.Errorf("defaults = %s, want T_T_T", r.Config)
	}
	// Zero-valued tolerance is treated as the per-task default.
	r = MapAnswers(Answers{Replication: true, StatePersistence: true})
	if r.Config.String() != "T_T_T" {
		t.Errorf("zero tolerance = %s, want T_T_T", r.Config)
	}
}

func TestMapAnswersAlwaysValid(t *testing.T) {
	// Exhaustive: every answer combination maps to one of the 15 valid
	// combinations.
	bools := []bool{false, true}
	tols := []Tolerance{ToleranceNone, TolerancePerTask, TolerancePerJob}
	for _, js := range bools {
		for _, rep := range bools {
			for _, sp := range bools {
				for _, tol := range tols {
					r := MapAnswers(Answers{JobSkipping: js, Replication: rep, StatePersistence: sp, Overhead: tol})
					if err := r.Config.Validate(); err != nil {
						t.Errorf("answers (%v,%v,%v,%v) mapped to invalid %s: %v", js, rep, sp, tol, r.Config, err)
					}
				}
			}
		}
	}
}

func TestValidateConfigRejectsContradiction(t *testing.T) {
	bad := core.Config{AC: core.StrategyPerTask, IR: core.StrategyPerJob, LB: core.StrategyNone}
	if err := ValidateConfig(bad); err == nil {
		t.Error("ValidateConfig accepted AC-per-task/IR-per-job")
	}
}

func TestParseTolerance(t *testing.T) {
	for in, want := range map[string]Tolerance{
		"N": ToleranceNone, "none": ToleranceNone,
		"PT": TolerancePerTask, "pt": TolerancePerTask,
		"PJ": TolerancePerJob, "per-job": TolerancePerJob,
	} {
		got, err := ParseTolerance(in)
		if err != nil || got != want {
			t.Errorf("ParseTolerance(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseTolerance("huge"); err == nil {
		t.Error("ParseTolerance accepted garbage")
	}
	if ToleranceNone.String() != "N" || TolerancePerTask.String() != "PT" || TolerancePerJob.String() != "PJ" {
		t.Error("tolerance abbreviations wrong")
	}
}

func TestRenderTable1(t *testing.T) {
	out := RenderTable1()
	for _, want := range []string{"C1: Job Skipping", "AC per Task", "AC per Job",
		"C2: State Persistency", "LB per Job", "C3: Component Replication", "No LB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

// testWorkload is a two-processor workload with a replicated two-stage task.
func testWorkload(t *testing.T) *spec.Workload {
	t.Helper()
	w, err := spec.Parse([]byte(`{
	  "name": "gen-test",
	  "processors": 2,
	  "tasks": [
	    {"id": "flow", "kind": "periodic", "period": "1s", "deadline": "1s",
	     "subtasks": [
	       {"exec": "50ms", "processor": 0, "replicas": [1]},
	       {"exec": "30ms", "processor": 1, "replicas": [0]}
	     ]},
	    {"id": "alert", "kind": "aperiodic", "deadline": "400ms",
	     "subtasks": [{"exec": "20ms", "processor": 1}]}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func planNodes() (deploy.Node, []deploy.Node) {
	manager := deploy.Node{Name: "manager", Address: "127.0.0.1:9100", Processor: -1}
	apps := []deploy.Node{
		{Name: "app0", Address: "127.0.0.1:9101", Processor: 0},
		{Name: "app1", Address: "127.0.0.1:9102", Processor: 1},
	}
	return manager, apps
}

func TestGeneratePlan(t *testing.T) {
	w := testWorkload(t)
	manager, apps := planNodes()
	cfg := core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerTask, LB: core.StrategyPerTask}
	p, err := GeneratePlan("test-plan", w, cfg, manager, apps)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	byID := make(map[string]deploy.Instance)
	for _, inst := range p.Instances {
		byID[inst.ID] = inst
	}
	// Central services.
	ac, ok := byID["Central-AC"]
	if !ok || ac.Node != "manager" {
		t.Fatalf("Central-AC = %+v", ac)
	}
	attrs := ac.Attrs()
	if attrs["AC_Strategy"] != "J" || attrs["IR_Strategy"] != "T" || attrs["LB_Strategy"] != "T" {
		t.Errorf("AC attrs = %v", attrs)
	}
	if attrs["Processors"] != "2" {
		t.Errorf("Processors attr = %q", attrs["Processors"])
	}
	if _, ok := byID["Central-LB"]; !ok {
		t.Error("Central-LB missing")
	}
	// Effectors and resetters per node.
	for i := 0; i < 2; i++ {
		for _, id := range []string{"TE-", "IR-"} {
			if _, ok := byID[id+string(rune('0'+i))]; !ok {
				t.Errorf("%s%d missing", id, i)
			}
		}
	}
	// Subtask instances: flow stage 0 on procs {0,1}, stage 1 on {1,0};
	// alert stage 0 on proc 1 only. Total 5.
	subCount := 0
	for id := range byID {
		if strings.HasPrefix(id, "Sub-") {
			subCount++
		}
	}
	if subCount != 5 {
		t.Errorf("%d subtask instances, want 5", subCount)
	}
	// The last stage of flow is marked Last; EDMS priority of alert (400ms
	// deadline) is higher (smaller) than flow (1s).
	flowLast := byID["Sub-flow-1@P1"].Attrs()
	if flowLast["Last"] != "true" {
		t.Errorf("flow stage 1 Last = %q", flowLast["Last"])
	}
	alertPrio := byID["Sub-alert-0@P1"].Attrs()["Priority"]
	flowPrio := byID["Sub-flow-0@P0"].Attrs()["Priority"]
	if !(alertPrio < flowPrio) {
		t.Errorf("EDMS priorities: alert %s vs flow %s", alertPrio, flowPrio)
	}

	// Connections: arrivals from both home nodes, accepts back, triggers
	// between stage candidates, releases to stage-0 replicas, idle resets.
	haveConn := make(map[string]bool)
	for _, c := range p.Connections {
		haveConn[c.EventType+":"+c.SourceNode+">"+c.SinkNode] = true
	}
	for _, want := range []string{
		"TaskArrive:app0>manager", "TaskArrive:app1>manager",
		"Accept:manager>app0", "Accept:manager>app1",
		"Release:app0>app1", // flow stage-0 replica on processor 1
		"Trigger:app0>app1", // flow stage 0 home → stage 1 home
		"IdleReset:app0>manager", "IdleReset:app1>manager",
	} {
		if !haveConn[want] {
			t.Errorf("missing connection %s (have %v)", want, haveConn)
		}
	}
}

func TestGeneratePlanNoIRConnectionsWhenDisabled(t *testing.T) {
	w := testWorkload(t)
	manager, apps := planNodes()
	cfg := core.Config{AC: core.StrategyPerJob, IR: core.StrategyNone, LB: core.StrategyNone}
	p, err := GeneratePlan("no-ir", w, cfg, manager, apps)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Connections {
		if c.EventType == "IdleReset" {
			t.Error("IdleReset route emitted although IR is disabled")
		}
	}
}

func TestGeneratePlanErrors(t *testing.T) {
	w := testWorkload(t)
	manager, apps := planNodes()
	bad := core.Config{AC: core.StrategyPerTask, IR: core.StrategyPerJob, LB: core.StrategyNone}
	if _, err := GeneratePlan("x", w, bad, manager, apps); err == nil {
		t.Error("GeneratePlan accepted invalid config")
	}
	good := core.Config{AC: core.StrategyPerTask, IR: core.StrategyNone, LB: core.StrategyNone}
	if _, err := GeneratePlan("x", w, good, manager, apps[:1]); err == nil {
		t.Error("GeneratePlan accepted missing app node")
	}
	swapped := []deploy.Node{apps[1], apps[0]}
	if _, err := GeneratePlan("x", w, good, manager, swapped); err == nil {
		t.Error("GeneratePlan accepted mis-ordered processors")
	}
}
