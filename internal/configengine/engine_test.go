package configengine

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/live"
	"repro/internal/spec"
)

func TestMapAnswersTable(t *testing.T) {
	tests := []struct {
		name string
		a    Answers
		want string
	}{
		// The paper's Figure 4 example: answers (N, Y, Y, PT) → all three
		// services per task.
		{
			name: "figure 4 example",
			a:    Answers{JobSkipping: false, Replication: true, StatePersistence: true, Overhead: TolerancePerTask},
			want: "T_T_T",
		},
		{
			name: "most aggressive",
			a:    Answers{JobSkipping: true, Replication: true, StatePersistence: false, Overhead: TolerancePerJob},
			want: "J_J_J",
		},
		{
			name: "no overhead at all",
			a:    Answers{JobSkipping: false, Replication: false, StatePersistence: false, Overhead: ToleranceNone},
			want: "T_N_N",
		},
		{
			name: "job skipping without per-job budget stays per task",
			a:    Answers{JobSkipping: true, Replication: true, StatePersistence: true, Overhead: TolerancePerTask},
			want: "T_T_T",
		},
		{
			name: "per-job IR capped under per-task AC",
			a:    Answers{JobSkipping: false, Replication: true, StatePersistence: false, Overhead: TolerancePerJob},
			want: "T_T_J",
		},
		{
			name: "no replication disables LB",
			a:    Answers{JobSkipping: true, Replication: false, StatePersistence: false, Overhead: TolerancePerJob},
			want: "J_J_N",
		},
		{
			name: "state persistence pins LB per task",
			a:    Answers{JobSkipping: true, Replication: true, StatePersistence: true, Overhead: TolerancePerJob},
			want: "J_J_T",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := MapAnswers(tt.a)
			if r.Config.String() != tt.want {
				t.Errorf("MapAnswers(%+v) = %s, want %s\nnotes: %v", tt.a, r.Config, tt.want, r.Notes)
			}
			if err := r.Config.Validate(); err != nil {
				t.Errorf("mapping produced invalid config: %v", err)
			}
			if len(r.Notes) != 3 {
				t.Errorf("want one note per service axis, got %v", r.Notes)
			}
		})
	}
}

func TestMapAnswersDefaults(t *testing.T) {
	// "If application characteristics are not provided by the developers,
	// our configuration engine can supply default configuration settings,
	// i.e., per task admission control, idle resetting and load balancing."
	r := MapAnswers(DefaultAnswers())
	if r.Config.String() != "T_T_T" {
		t.Errorf("defaults = %s, want T_T_T", r.Config)
	}
	// Zero-valued tolerance is treated as the per-task default.
	r = MapAnswers(Answers{Replication: true, StatePersistence: true})
	if r.Config.String() != "T_T_T" {
		t.Errorf("zero tolerance = %s, want T_T_T", r.Config)
	}
}

func TestMapAnswersAlwaysValid(t *testing.T) {
	// Exhaustive: every answer combination maps to one of the 15 valid
	// combinations.
	bools := []bool{false, true}
	tols := []Tolerance{ToleranceNone, TolerancePerTask, TolerancePerJob}
	for _, js := range bools {
		for _, rep := range bools {
			for _, sp := range bools {
				for _, tol := range tols {
					r := MapAnswers(Answers{JobSkipping: js, Replication: rep, StatePersistence: sp, Overhead: tol})
					if err := r.Config.Validate(); err != nil {
						t.Errorf("answers (%v,%v,%v,%v) mapped to invalid %s: %v", js, rep, sp, tol, r.Config, err)
					}
				}
			}
		}
	}
}

func TestValidateConfigRejectsContradiction(t *testing.T) {
	bad := core.Config{AC: core.StrategyPerTask, IR: core.StrategyPerJob, LB: core.StrategyNone}
	if err := ValidateConfig(bad); err == nil {
		t.Error("ValidateConfig accepted AC-per-task/IR-per-job")
	}
}

func TestParseTolerance(t *testing.T) {
	for in, want := range map[string]Tolerance{
		"N": ToleranceNone, "none": ToleranceNone,
		"PT": TolerancePerTask, "pt": TolerancePerTask,
		"PJ": TolerancePerJob, "per-job": TolerancePerJob,
	} {
		got, err := ParseTolerance(in)
		if err != nil || got != want {
			t.Errorf("ParseTolerance(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseTolerance("huge"); err == nil {
		t.Error("ParseTolerance accepted garbage")
	}
	if ToleranceNone.String() != "N" || TolerancePerTask.String() != "PT" || TolerancePerJob.String() != "PJ" {
		t.Error("tolerance abbreviations wrong")
	}
}

func TestRenderTable1(t *testing.T) {
	out := RenderTable1()
	for _, want := range []string{"C1: Job Skipping", "AC per Task", "AC per Job",
		"C2: State Persistency", "LB per Job", "C3: Component Replication", "No LB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

// testWorkload is a two-processor workload with a replicated two-stage task.
func testWorkload(t *testing.T) *spec.Workload {
	t.Helper()
	w, err := spec.Parse([]byte(`{
	  "name": "gen-test",
	  "processors": 2,
	  "tasks": [
	    {"id": "flow", "kind": "periodic", "period": "1s", "deadline": "1s",
	     "subtasks": [
	       {"exec": "50ms", "processor": 0, "replicas": [1]},
	       {"exec": "30ms", "processor": 1, "replicas": [0]}
	     ]},
	    {"id": "alert", "kind": "aperiodic", "deadline": "400ms",
	     "subtasks": [{"exec": "20ms", "processor": 1}]}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func planNodes() (deploy.Node, []deploy.Node) {
	manager := deploy.Node{Name: "manager", Address: "127.0.0.1:9100", Processor: -1}
	apps := []deploy.Node{
		{Name: "app0", Address: "127.0.0.1:9101", Processor: 0},
		{Name: "app1", Address: "127.0.0.1:9102", Processor: 1},
	}
	return manager, apps
}

func TestGeneratePlan(t *testing.T) {
	w := testWorkload(t)
	manager, apps := planNodes()
	cfg := core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerTask, LB: core.StrategyPerTask}
	p, err := GeneratePlan("test-plan", w, cfg, manager, apps)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	byID := make(map[string]deploy.Instance)
	for _, inst := range p.Instances {
		byID[inst.ID] = inst
	}
	// Central services.
	ac, ok := byID["Central-AC"]
	if !ok || ac.Node != "manager" {
		t.Fatalf("Central-AC = %+v", ac)
	}
	attrs := ac.Attrs()
	if attrs["AC_Strategy"] != "J" || attrs["IR_Strategy"] != "T" || attrs["LB_Strategy"] != "T" {
		t.Errorf("AC attrs = %v", attrs)
	}
	if attrs["Processors"] != "2" {
		t.Errorf("Processors attr = %q", attrs["Processors"])
	}
	if _, ok := byID["Central-LB"]; !ok {
		t.Error("Central-LB missing")
	}
	// Effectors and resetters per node.
	for i := 0; i < 2; i++ {
		for _, id := range []string{"TE-", "IR-"} {
			if _, ok := byID[id+string(rune('0'+i))]; !ok {
				t.Errorf("%s%d missing", id, i)
			}
		}
	}
	// Subtask instances: flow stage 0 on procs {0,1}, stage 1 on {1,0};
	// alert stage 0 on proc 1 only. Total 5.
	subCount := 0
	for id := range byID {
		if strings.HasPrefix(id, "Sub-") {
			subCount++
		}
	}
	if subCount != 5 {
		t.Errorf("%d subtask instances, want 5", subCount)
	}
	// The last stage of flow is marked Last; EDMS priority of alert (400ms
	// deadline) is higher (smaller) than flow (1s).
	flowLast := byID["Sub-flow-1@P1"].Attrs()
	if flowLast["Last"] != "true" {
		t.Errorf("flow stage 1 Last = %q", flowLast["Last"])
	}
	alertPrio := byID["Sub-alert-0@P1"].Attrs()["Priority"]
	flowPrio := byID["Sub-flow-0@P0"].Attrs()["Priority"]
	if !(alertPrio < flowPrio) {
		t.Errorf("EDMS priorities: alert %s vs flow %s", alertPrio, flowPrio)
	}

	// Connections: arrivals from both home nodes, accepts back, triggers
	// between stage candidates, releases to stage-0 replicas, idle resets.
	haveConn := make(map[string]bool)
	for _, c := range p.Connections {
		haveConn[c.EventType+":"+c.SourceNode+">"+c.SinkNode] = true
	}
	for _, want := range []string{
		"TaskArrive:app0>manager", "TaskArrive:app1>manager",
		"Accept:manager>app0", "Accept:manager>app1",
		"Release:app0>app1", // flow stage-0 replica on processor 1
		"Trigger:app0>app1", // flow stage 0 home → stage 1 home
		"IdleReset:app0>manager", "IdleReset:app1>manager",
	} {
		if !haveConn[want] {
			t.Errorf("missing connection %s (have %v)", want, haveConn)
		}
	}
}

func TestGeneratePlanNoIRConnectionsWhenDisabled(t *testing.T) {
	w := testWorkload(t)
	manager, apps := planNodes()
	cfg := core.Config{AC: core.StrategyPerJob, IR: core.StrategyNone, LB: core.StrategyNone}
	p, err := GeneratePlan("no-ir", w, cfg, manager, apps)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Connections {
		if c.EventType == "IdleReset" {
			t.Error("IdleReset route emitted although IR is disabled")
		}
	}
}

func TestGeneratePlanErrors(t *testing.T) {
	w := testWorkload(t)
	manager, apps := planNodes()
	bad := core.Config{AC: core.StrategyPerTask, IR: core.StrategyPerJob, LB: core.StrategyNone}
	if _, err := GeneratePlan("x", w, bad, manager, apps); err == nil {
		t.Error("GeneratePlan accepted invalid config")
	}
	good := core.Config{AC: core.StrategyPerTask, IR: core.StrategyNone, LB: core.StrategyNone}
	if _, err := GeneratePlan("x", w, good, manager, apps[:1]); err == nil {
		t.Error("GeneratePlan accepted missing app node")
	}
	swapped := []deploy.Node{apps[1], apps[0]}
	if _, err := GeneratePlan("x", w, good, manager, swapped); err == nil {
		t.Error("GeneratePlan accepted mis-ordered processors")
	}
}

// TestMapAnswersCrossProduct drives the engine over the full answer
// cross-product — every job-skipping × replication × persistence ×
// tolerance combination, including the unset zero tolerance the engine
// defaults — and pins that every result is one of the 15 valid
// combinations and the two contradictory AC-per-task/IR-per-job shapes are
// never emitted.
func TestMapAnswersCrossProduct(t *testing.T) {
	valid := make(map[core.Config]bool, 15)
	for _, c := range core.AllCombinations() {
		valid[c] = true
	}
	if len(valid) != 15 {
		t.Fatalf("AllCombinations returned %d combos", len(valid))
	}
	bools := []bool{false, true}
	tols := []Tolerance{0, ToleranceNone, TolerancePerTask, TolerancePerJob}
	seen := make(map[core.Config]bool)
	count := 0
	for _, js := range bools {
		for _, rep := range bools {
			for _, sp := range bools {
				for _, tol := range tols {
					count++
					a := Answers{JobSkipping: js, Replication: rep, StatePersistence: sp, Overhead: tol}
					r := MapAnswers(a)
					if err := r.Config.Validate(); err != nil {
						t.Errorf("answers %+v produced invalid config %s: %v", a, r.Config, err)
					}
					if !valid[r.Config] {
						t.Errorf("answers %+v produced %s, not among the 15 valid combos", a, r.Config)
					}
					if r.Config.AC == core.StrategyPerTask && r.Config.IR == core.StrategyPerJob {
						t.Errorf("answers %+v emitted the contradictory %s", a, r.Config)
					}
					if len(r.Notes) < 3 {
						t.Errorf("answers %+v produced %d notes, want one per axis", a, len(r.Notes))
					}
					seen[r.Config] = true
				}
			}
		}
	}
	if count != 32 {
		t.Fatalf("cross-product covered %d answer tuples, want 32", count)
	}
	// The zero tolerance aliases per-task, so the distinct reachable set is
	// what the 2×2×2×3 real cross-product maps to.
	if len(seen) < 5 {
		t.Errorf("mapping reached only %d distinct configs: %v", len(seen), seen)
	}
}

// TestReconfigDelta pins the delta computation: attribute updates for every
// strategy-bearing instance, epoch-reset updates for the effectors, and the
// IdleReset routes that turning resetting on requires.
func TestReconfigDelta(t *testing.T) {
	w := testWorkload(t)
	manager, apps := planNodes()
	from := core.Config{AC: core.StrategyPerTask, IR: core.StrategyNone, LB: core.StrategyNone}
	p, err := GeneratePlan("delta-test", w, from, manager, apps)
	if err != nil {
		t.Fatal(err)
	}
	to := core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerJob, LB: core.StrategyPerJob}
	d, err := ReconfigDelta(p, to)
	if err != nil {
		t.Fatal(err)
	}
	if d.FromConfig != "T_N_N" || d.ToConfig != "J_J_J" {
		t.Errorf("delta configs = %s -> %s", d.FromConfig, d.ToConfig)
	}
	if d.ManagerNode != "manager" || d.ManagerKey != live.ReconfigServantKey || d.EpochAttr != live.AttrEpoch {
		t.Errorf("delta coordination fields = %+v", d)
	}

	updates := make(map[string]map[string]string, len(d.Updates))
	for _, up := range d.Updates {
		updates[up.ID] = up.Attrs
	}
	ac, ok := updates["Central-AC"]
	if !ok || ac[live.AttrACStrategy] != "J" || ac[live.AttrIRStrategy] != "J" || ac[live.AttrLBStrategy] != "J" {
		t.Errorf("Central-AC update = %v", ac)
	}
	if lb, ok := updates["Central-LB"]; !ok || lb[live.AttrLBStrategy] != "J" {
		t.Errorf("Central-LB update = %v", lb)
	}
	for _, id := range []string{"IR-0", "IR-1"} {
		if ir, ok := updates[id]; !ok || ir[live.AttrIRStrategy] != "J" {
			t.Errorf("%s update = %v", id, ir)
		}
	}
	for _, id := range []string{"TE-0", "TE-1"} {
		if te, ok := updates[id]; !ok || len(te) != 0 {
			t.Errorf("%s update = %v (want epoch-only)", id, te)
		}
	}
	// The AC update must come first: policy swaps before cache resets.
	if d.Updates[0].ID != "Central-AC" {
		t.Errorf("first update = %s, want Central-AC", d.Updates[0].ID)
	}

	// IR none → per-job adds the IdleReset routes the plan lacks.
	wantRoutes := map[deploy.Connection]bool{
		{EventType: live.EvIdleReset, SourceNode: "app0", SinkNode: "manager"}: true,
		{EventType: live.EvIdleReset, SourceNode: "app1", SinkNode: "manager"}: true,
	}
	for _, c := range d.Connections {
		if !wantRoutes[c] {
			t.Errorf("unexpected route %+v", c)
		}
		delete(wantRoutes, c)
	}
	for c := range wantRoutes {
		t.Errorf("missing route %+v", c)
	}

	// Applying the delta folds the new strategies into the plan, so a
	// subsequent delta reads the new current config.
	d.Apply(p)
	d2, err := ReconfigDelta(p, from)
	if err != nil {
		t.Fatal(err)
	}
	if d2.FromConfig != "J_J_J" {
		t.Errorf("plan after Apply reads %s, want J_J_J", d2.FromConfig)
	}
	if len(d2.Connections) != 0 {
		t.Errorf("reverse delta re-adds routes: %+v", d2.Connections)
	}
}

// TestReconfigDeltaRejectsInvalid pins target validation and the
// plan-shape errors.
func TestReconfigDeltaRejectsInvalid(t *testing.T) {
	w := testWorkload(t)
	manager, apps := planNodes()
	p, err := GeneratePlan("delta-test", w, core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerJob, LB: core.StrategyNone}, manager, apps)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReconfigDelta(p, core.Config{AC: core.StrategyPerTask, IR: core.StrategyPerJob, LB: core.StrategyNone}); err == nil {
		t.Error("contradictory target accepted")
	}
	if _, err := ReconfigDelta(&deploy.Plan{Name: "empty"}, core.Config{AC: core.StrategyPerJob, IR: core.StrategyNone, LB: core.StrategyNone}); err == nil {
		t.Error("plan without admission controller accepted")
	}
}

// failoverWorkload3 is a three-processor workload exercising every failover
// outcome when processor 1 dies: "piped" re-homes its stage-1 onto replica 2,
// "solo" has no replica and is withdrawn, and "other" merely loses processor
// 1 from a replica list.
func failoverWorkload3(t *testing.T) *spec.Workload {
	t.Helper()
	w, err := spec.Parse([]byte(`{
	  "name": "failover-test",
	  "processors": 3,
	  "tasks": [
	    {"id": "piped", "kind": "aperiodic", "deadline": "500ms",
	     "subtasks": [
	       {"exec": "5ms", "processor": 0, "replicas": [2]},
	       {"exec": "4ms", "processor": 1, "replicas": [2]}
	     ]},
	    {"id": "solo", "kind": "aperiodic", "deadline": "400ms",
	     "subtasks": [{"exec": "3ms", "processor": 1}]},
	    {"id": "other", "kind": "aperiodic", "deadline": "600ms",
	     "subtasks": [{"exec": "2ms", "processor": 2, "replicas": [1, 0]}]}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestFailoverDelta(t *testing.T) {
	w := failoverWorkload3(t)
	manager := deploy.Node{Name: "manager", Address: "127.0.0.1:9100", Processor: -1}
	apps := []deploy.Node{
		{Name: "app0", Address: "127.0.0.1:9101", Processor: 0},
		{Name: "app1", Address: "127.0.0.1:9102", Processor: 1},
		{Name: "app2", Address: "127.0.0.1:9103", Processor: 2},
	}
	cfg := core.Config{AC: core.StrategyPerTask, IR: core.StrategyPerTask, LB: core.StrategyPerTask}
	p, err := GeneratePlan("failover-test", w, cfg, manager, apps)
	if err != nil {
		t.Fatal(err)
	}

	d, out, err := FailoverDelta(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The dead node is skipped by the executor but kept in the plan.
	if len(d.SkipNodes) != 1 || d.SkipNodes[0] != "app1" {
		t.Errorf("SkipNodes = %v, want [app1]", d.SkipNodes)
	}
	if got := out.Rehomed["piped"][1]; got != 2 {
		t.Errorf("piped stage 1 re-homed to %d, want 2 (lowest surviving replica)", got)
	}
	if len(out.Withdrawn) != 1 || out.Withdrawn[0] != "solo" {
		t.Errorf("Withdrawn = %v, want [solo]", out.Withdrawn)
	}

	// The AC update carries the post-surgery workload: solo gone, piped
	// re-homed with the dead processor purged from every replica list.
	var wlJSON string
	for _, up := range d.Updates {
		if up.ID == "Central-AC" {
			wlJSON = up.Attrs[live.AttrWorkload]
		}
	}
	if wlJSON == "" {
		t.Fatal("delta has no Central-AC workload update")
	}
	next, err := spec.Parse([]byte(wlJSON))
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[string]spec.TaskSpec, len(next.Tasks))
	for _, task := range next.Tasks {
		byID[task.ID] = task
	}
	if _, ok := byID["solo"]; ok {
		t.Error("withdrawn task still in the post-failover workload")
	}
	piped, ok := byID["piped"]
	if !ok || piped.Subtasks[1].Processor != 2 || len(piped.Subtasks[1].Replicas) != 0 {
		t.Errorf("piped after surgery = %+v", piped)
	}
	other := byID["other"]
	for _, r := range other.Subtasks[0].Replicas {
		if r == 1 {
			t.Errorf("dead processor survives in a replica list: %v", other.Subtasks[0].Replicas)
		}
	}

	// No node hosts processor 7.
	if _, _, err := FailoverDelta(p, 7); err == nil {
		t.Error("FailoverDelta accepted an unhosted processor")
	}
	// A workload whose every task dies with the processor is an error, not an
	// empty deployment.
	solo, err := spec.Parse([]byte(`{
	  "name": "all-lost", "processors": 2,
	  "tasks": [{"id": "s", "kind": "aperiodic", "deadline": "100ms",
	             "subtasks": [{"exec": "2ms", "processor": 1}]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := GeneratePlan("all-lost", solo, cfg,
		deploy.Node{Name: "manager", Address: "127.0.0.1:9200", Processor: -1},
		[]deploy.Node{
			{Name: "app0", Address: "127.0.0.1:9201", Processor: 0},
			{Name: "app1", Address: "127.0.0.1:9202", Processor: 1},
		})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := FailoverDelta(p2, 1); err == nil {
		t.Error("FailoverDelta produced a deployment with no surviving task")
	}
}
