package autopilot

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// stubBinding is an in-memory Binding: a watch hub for the sensor side and
// recorded Reconfigure/RemoveTasks calls for the actuator side.
type stubBinding struct {
	hub core.WatchHub

	mu           sync.Mutex
	cfg          core.Config
	reconfigs    []core.Config
	removed      [][]string
	failReconfig bool
}

func (s *stubBinding) Watch(opts core.WatchOptions) (*core.WatchStream, error) {
	return s.hub.Subscribe(opts), nil
}

func (s *stubBinding) Reconfigure(to core.Config) (*core.ReconfigReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failReconfig {
		return nil, errors.New("stub: reconfigure refused")
	}
	s.cfg = to
	s.reconfigs = append(s.reconfigs, to)
	return &core.ReconfigReport{}, nil
}

func (s *stubBinding) RemoveTasks(ids []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.removed = append(s.removed, append([]string(nil), ids...))
	return nil
}

func (s *stubBinding) Snapshot() core.BindingSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return core.BindingSnapshot{Config: s.cfg}
}

func (s *stubBinding) removals() [][]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]string, len(s.removed))
	copy(out, s.removed)
	return out
}

var (
	cfgCalm  = core.Config{AC: core.StrategyPerTask, IR: core.StrategyPerTask, LB: core.StrategyNone}
	cfgBurst = core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerJob, LB: core.StrategyNone}
)

// propOptions are the shared controller options for the property tests:
// classification by absolute aggregate-rate thresholds only (MMPP fit and
// overload ratios disabled), so a schedule's regime is a pure function of
// its rate.
func propOptions() Options {
	return Options{
		Tick:       50 * time.Millisecond,
		Window:     200 * time.Millisecond,
		MinDwell:   300 * time.Millisecond,
		Cooldown:   700 * time.Millisecond,
		Calm:       cfgCalm,
		Burst:      cfgBurst,
		RateHigh:   150,
		RateLow:    80,
		BurstEnter: 1000, BurstExit: 999,
		MissHigh: 2, RejectHigh: 2,
	}
}

// driveSchedule runs the controller over a piecewise-constant rate schedule,
// emitting admitted events through the stub's hub and ticking every
// opts.Tick, exactly as the sim driver would.
type rateSegment struct {
	until time.Duration
	rate  float64 // arrivals/sec
}

func driveSchedule(t *testing.T, ap *Autopilot, stub *stubBinding, schedule []rateSegment) {
	t.Helper()
	tick := ap.opts.Tick
	now := time.Duration(0)
	carry := 0.0
	seg := 0
	horizon := schedule[len(schedule)-1].until
	for now < horizon {
		for seg < len(schedule)-1 && now >= schedule[seg].until {
			seg++
		}
		// Emit this tick's arrivals, evenly spaced, with fractional carry so
		// the long-run rate is exact.
		carry += schedule[seg].rate * tick.Seconds()
		n := int(carry)
		carry -= float64(n)
		for i := 0; i < n; i++ {
			at := now + time.Duration(float64(tick)*float64(i)/float64(n))
			stub.hub.Emit(core.WatchEvent{Kind: core.WatchAdmitted, Task: "t0", Job: int64(i), At: at})
		}
		now += tick
		ap.drain()
		ap.tick(now)
	}
}

// actuationTimes extracts the successful actuation instants from the journal.
func actuationTimes(ap *Autopilot) []time.Duration {
	var out []time.Duration
	for _, d := range ap.Journal() {
		if d.Err == "" {
			out = append(out, d.At)
		}
	}
	return out
}

// TestAutopilotNoFlapProperty is the randomized no-flap property test:
// whatever the regime schedule, any two successful actuations are separated
// by at least max(MinDwell, Cooldown).
func TestAutopilotNoFlapProperty(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		opts := propOptions()
		stub := &stubBinding{cfg: cfgCalm}
		if rng.Intn(2) == 1 {
			stub.cfg = cfgBurst
		}
		ap, err := New(opts)
		if err != nil {
			t.Fatalf("trial %d: New: %v", trial, err)
		}
		if err := ap.attach(stub, 0); err != nil {
			t.Fatalf("trial %d: attach: %v", trial, err)
		}

		// Random piecewise schedule: segment lengths 200ms..2s, rates drawn
		// across the calm/hysteresis/burst bands, ~20s total.
		rates := []float64{10, 60, 120, 220, 400}
		var schedule []rateSegment
		until := time.Duration(0)
		for until < 20*time.Second {
			until += 200*time.Millisecond + time.Duration(rng.Int63n(int64(1800*time.Millisecond)))
			schedule = append(schedule, rateSegment{until: until, rate: rates[rng.Intn(len(rates))]})
		}
		driveSchedule(t, ap, stub, schedule)

		acts := actuationTimes(ap)
		minGap := opts.Cooldown
		if opts.MinDwell > minGap {
			minGap = opts.MinDwell
		}
		for i := 1; i < len(acts); i++ {
			if gap := acts[i] - acts[i-1]; gap < minGap {
				t.Fatalf("trial %d: actuations %d and %d only %v apart (min %v)\njournal: %+v",
					trial, i-1, i, gap, minGap, ap.Journal())
			}
		}
		st := ap.Stats()
		if st.Ticks == 0 || st.Events == 0 {
			t.Fatalf("trial %d: controller saw nothing (ticks %d, events %d)", trial, st.Ticks, st.Events)
		}
	}
}

// TestAutopilotStableRegimeNeverActuates: when the traffic never leaves one
// regime and the starting config already matches that regime's target, the
// dedup gate means zero actuations, ever.
func TestAutopilotStableRegimeNeverActuates(t *testing.T) {
	cases := []struct {
		name  string
		start core.Config
		rate  float64
	}{
		{"calm", cfgCalm, 10},
		{"burst", cfgBurst, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stub := &stubBinding{cfg: tc.start}
			ap, err := New(propOptions())
			if err != nil {
				t.Fatal(err)
			}
			if err := ap.attach(stub, 0); err != nil {
				t.Fatal(err)
			}
			driveSchedule(t, ap, stub, []rateSegment{{until: 10 * time.Second, rate: tc.rate}})
			if st := ap.Stats(); st.Actuations != 0 {
				t.Fatalf("stable %s regime actuated %d times: %+v", tc.name, st.Actuations, ap.Journal())
			}
			if len(stub.reconfigs) != 0 {
				t.Fatalf("binding saw %d reconfigures in a stable regime", len(stub.reconfigs))
			}
		})
	}
}

// TestAutopilotRegimeTransitions checks the intended behavior end to end: a
// calm→burst→calm schedule produces exactly two actuations with the right
// targets.
func TestAutopilotRegimeTransitions(t *testing.T) {
	stub := &stubBinding{cfg: cfgCalm}
	ap, err := New(propOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.attach(stub, 0); err != nil {
		t.Fatal(err)
	}
	driveSchedule(t, ap, stub, []rateSegment{
		{until: 5 * time.Second, rate: 10},
		{until: 10 * time.Second, rate: 400},
		{until: 15 * time.Second, rate: 10},
	})
	if len(stub.reconfigs) != 2 {
		t.Fatalf("expected 2 reconfigures (burst, then calm), got %v", stub.reconfigs)
	}
	if stub.reconfigs[0] != cfgBurst || stub.reconfigs[1] != cfgCalm {
		t.Fatalf("wrong targets: %v", stub.reconfigs)
	}
	st := ap.Stats()
	if st.Actuations != 2 {
		t.Fatalf("Stats.Actuations = %d, want 2", st.Actuations)
	}
	if st.Regime != "calm" {
		t.Fatalf("final regime %q, want calm", st.Regime)
	}
}

// TestAutopilotOverloadShed: the overload regime's RemoveTasks action fires
// exactly once per controller lifetime, shares the hysteresis gates, and is
// journaled.
func TestAutopilotOverloadShed(t *testing.T) {
	opts := propOptions()
	opts.RejectHigh = 0.5 // enable rejection-triggered overload
	opts.OverloadShed = []string{"victim"}
	var shedAt time.Duration
	opts.OnShed = func(at time.Duration, ids []string) { shedAt = at }
	stub := &stubBinding{cfg: cfgCalm}
	ap, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.attach(stub, 0); err != nil {
		t.Fatal(err)
	}

	// Drive two separated overload episodes: every arrival rejected.
	emitRejected := func(from, until time.Duration, rate float64) {
		tick := opts.Tick
		for now := from; now < until; now += tick {
			n := int(rate * tick.Seconds())
			for i := 0; i < n; i++ {
				at := now + time.Duration(float64(tick)*float64(i)/float64(n))
				stub.hub.Emit(core.WatchEvent{Kind: core.WatchRejected, Task: "victim", At: at})
			}
			ap.drain()
			ap.tick(now + tick)
		}
	}
	emitCalm := func(from, until time.Duration) {
		tick := opts.Tick
		for now := from; now < until; now += tick {
			stub.hub.Emit(core.WatchEvent{Kind: core.WatchAdmitted, Task: "t0", At: now})
			ap.drain()
			ap.tick(now + tick)
		}
	}
	emitRejected(0, 5*time.Second, 400)
	emitCalm(5*time.Second, 10*time.Second)
	emitRejected(10*time.Second, 15*time.Second, 400)

	removed := stub.removals()
	if len(removed) != 1 || len(removed[0]) != 1 || removed[0][0] != "victim" {
		t.Fatalf("expected exactly one shed of [victim], got %v", removed)
	}
	st := ap.Stats()
	if st.Sheds != 1 {
		t.Fatalf("Stats.Sheds = %d, want 1", st.Sheds)
	}
	if shedAt == 0 {
		t.Fatal("OnShed hook never ran")
	}
	var shedDecisions int
	for _, d := range ap.Journal() {
		if len(d.Shed) > 0 {
			shedDecisions++
			if d.Regime != "overload" {
				t.Fatalf("shed decision in regime %q", d.Regime)
			}
		}
	}
	if shedDecisions != 1 {
		t.Fatalf("journal has %d shed decisions, want 1", shedDecisions)
	}
}

// TestAutopilotActuationError: a refused Reconfigure journals the error,
// counts in ActuationErrors, and leaves the active config unchanged so the
// controller retries after the dwell.
func TestAutopilotActuationError(t *testing.T) {
	stub := &stubBinding{cfg: cfgCalm, failReconfig: true}
	ap, err := New(propOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.attach(stub, 0); err != nil {
		t.Fatal(err)
	}
	driveSchedule(t, ap, stub, []rateSegment{{until: 5 * time.Second, rate: 400}})
	st := ap.Stats()
	if st.Actuations != 0 {
		t.Fatalf("Actuations = %d despite failing binding", st.Actuations)
	}
	if st.ActuationErrors == 0 {
		t.Fatal("no actuation errors recorded")
	}
	j := ap.Journal()
	if len(j) == 0 || j[0].Err == "" {
		t.Fatalf("journal missing error decisions: %+v", j)
	}
}

// TestAutopilotMaxActuationsCap: the hard cap stops the controller even when
// the regime keeps changing.
func TestAutopilotMaxActuationsCap(t *testing.T) {
	opts := propOptions()
	opts.MaxActuations = 1
	stub := &stubBinding{cfg: cfgCalm}
	ap, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.attach(stub, 0); err != nil {
		t.Fatal(err)
	}
	driveSchedule(t, ap, stub, []rateSegment{
		{until: 5 * time.Second, rate: 400},
		{until: 10 * time.Second, rate: 10},
		{until: 15 * time.Second, rate: 400},
	})
	st := ap.Stats()
	if st.Actuations != 1 {
		t.Fatalf("Actuations = %d, want the cap of 1", st.Actuations)
	}
	if st.SuppressedCap == 0 {
		t.Fatal("cap suppression never counted")
	}
}

// TestAutopilotLiveDriverConcurrency exercises the wall-clock driver under
// the race detector: the live goroutine ingests and ticks while other
// goroutines emit events and read Stats/Journal/Snapshot concurrently.
func TestAutopilotLiveDriverConcurrency(t *testing.T) {
	opts := propOptions()
	opts.Tick = time.Millisecond
	stub := &stubBinding{cfg: cfgCalm}
	ap, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.Start(stub); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		i := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
				stub.hub.Emit(core.WatchEvent{
					Kind: core.WatchAdmitted, Task: "t0", Job: i,
					At: time.Duration(time.Now().UnixNano()),
				})
				i++
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = ap.Stats()
				_ = ap.Journal()
			}
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	ap.Stop()
	ap.Stop() // idempotent
	if st := ap.Stats(); st.Events == 0 || st.Ticks == 0 {
		t.Fatalf("live driver idle: %+v", st)
	}
}

// TestOptionsValidate rejects incoherent hysteresis bands.
func TestOptionsValidate(t *testing.T) {
	bad := propOptions()
	bad.BurstEnter, bad.BurstExit = 2, 3
	if _, err := New(bad); err == nil {
		t.Fatal("expected error for exit >= enter")
	}
	bad = propOptions()
	bad.RateHigh, bad.RateLow = 100, 200
	if _, err := New(bad); err == nil {
		t.Fatal("expected error for low > high")
	}
}

// TestRingDecay: a silent stretch slides the window empty.
func TestRingDecay(t *testing.T) {
	r := newRing(200*time.Millisecond, 8)
	for i := 0; i < 10; i++ {
		r.add(time.Duration(i) * 10 * time.Millisecond)
	}
	r.advance(100 * time.Millisecond)
	if got := r.sum(); got != 10 {
		t.Fatalf("sum after fill = %d, want 10", got)
	}
	r.advance(time.Second)
	if got := r.sum(); got != 0 {
		t.Fatalf("sum after silence = %d, want 0", got)
	}
}
