package autopilot

import (
	"math"
	"sync/atomic"
	"time"
)

// Sliding-window estimators for the autopilot's sensor plane. Everything on
// the per-event ingest path is a time-bucketed ring of atomic counters:
// writes are a single atomic add (no locks, no allocations), and readers sum
// the live buckets. The ring is single-writer — ingest and tick both run on
// the driver goroutine (or the sim engine thread) — so bucket advancement
// needs no CAS loop; atomics make the counters safe for concurrent Stats()
// readers.

// ring is a sliding-window event counter: len(buckets) buckets of width
// `width` each, covering a window of width*len(buckets). Stale buckets are
// zeroed lazily as time advances past them.
type ring struct {
	width   time.Duration
	buckets []atomic.Int64
	// last is the absolute index (now/width) of the most recently written
	// bucket. Writer-owned; never read outside the driver goroutine.
	last int64
}

func newRing(window time.Duration, buckets int) *ring {
	if buckets < 1 {
		buckets = 1
	}
	w := window / time.Duration(buckets)
	if w <= 0 {
		w = time.Millisecond
	}
	return &ring{width: w, buckets: make([]atomic.Int64, buckets)}
}

// advance rotates the ring forward to cover `now`, zeroing every bucket the
// window slid past. Monotonically non-decreasing: events that arrive with an
// older timestamp land in the current bucket.
//
//rtmw:noalloc
func (r *ring) advance(now time.Duration) {
	idx := int64(now / r.width)
	if idx <= r.last {
		return
	}
	n := int64(len(r.buckets))
	steps := idx - r.last
	if steps > n {
		steps = n
	}
	for i := int64(1); i <= steps; i++ {
		r.buckets[(r.last+i)%n].Store(0)
	}
	r.last = idx
}

// add counts one event at `now`. Hot path: one divide, at most a short
// zeroing loop on bucket rollover, one atomic add.
//
//rtmw:noalloc
func (r *ring) add(now time.Duration) {
	r.advance(now)
	r.buckets[r.last%int64(len(r.buckets))].Add(1)
}

// sum returns the event count across the live window.
func (r *ring) sum() int64 {
	var total int64
	for i := range r.buckets {
		total += r.buckets[i].Load()
	}
	return total
}

// window is the ring's total span.
func (r *ring) window() time.Duration {
	return r.width * time.Duration(len(r.buckets))
}

// rate converts the windowed count to events per second.
func (r *ring) rate() float64 {
	return float64(r.sum()) / r.window().Seconds()
}

// taskEst estimates one task's arrival process: a windowed rate ring plus a
// two-state MMPP (Markov-modulated Poisson) fit in the spirit of the HMM
// validation literature — an EWMA base-state rate, a burst state entered
// when the observed rate exceeds burstEnter x base and left when it falls
// under burstExit x base. The hysteresis gap (enter > exit) keeps the state
// from chattering on rates that hover near a single threshold. All fields
// past the ring are tick-path only.
type taskEst struct {
	id       string
	arrivals *ring
	baseRate float64
	// burstRate tracks the elevated state's EWMA level while in burst; kept
	// for the decision journal.
	burstRate float64
	inBurst   bool
	removed   bool
}

// observe folds the current windowed rate into the MMPP fit and returns
// whether the task is in its burst state. minRate floors the base level so a
// near-idle task's first few arrivals don't read as an infinite ratio.
func (t *taskEst) observe(alpha, burstEnter, burstExit, minRate float64) bool {
	r := t.arrivals.rate()
	base := math.Max(t.baseRate, minRate)
	if t.inBurst {
		t.burstRate += alpha * (r - t.burstRate)
		if r < burstExit*base {
			t.inBurst = false
		}
		return t.inBurst
	}
	if t.baseRate == 0 {
		t.baseRate = r
	} else {
		t.baseRate += alpha * (r - t.baseRate)
	}
	if r > burstEnter*math.Max(t.baseRate, minRate) {
		t.inBurst = true
		t.burstRate = r
	}
	return t.inBurst
}

// cusum is a two-sided CUSUM change detector over the normalized deviation
// of a signal from its EWMA mean: S+ accumulates positive drift, S-
// negative, each leaking by the slack k per step; crossing the threshold h
// raises a shift alarm and re-anchors the mean at the current level so the
// detector re-arms for the next regime.
type cusum struct {
	alpha  float64 // EWMA smoothing for the running mean
	k      float64 // slack per step, in normalized units
	h      float64 // alarm threshold, in normalized units
	mean   float64
	sPos   float64
	sNeg   float64
	primed bool
}

// update folds one observation in and reports whether a shift alarm fired.
func (c *cusum) update(x, minLevel float64) bool {
	if !c.primed {
		c.mean = x
		c.primed = true
		return false
	}
	dev := (x - c.mean) / math.Max(math.Abs(c.mean), minLevel)
	c.mean += c.alpha * (x - c.mean)
	c.sPos = math.Max(0, c.sPos+dev-c.k)
	c.sNeg = math.Max(0, c.sNeg-dev-c.k)
	if c.sPos > c.h || c.sNeg > c.h {
		c.sPos, c.sNeg = 0, 0
		c.mean = x
		return true
	}
	return false
}
