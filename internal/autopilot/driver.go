package autopilot

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// Binding is the slice of the binding surface the controller needs: the
// sensor (Watch), the actuator (Reconfigure) and the initial state
// (Snapshot). Both core.SimSystem and cluster.Cluster satisfy it.
type Binding interface {
	Watch(opts core.WatchOptions) (*core.WatchStream, error)
	Reconfigure(to core.Config) (*core.ReconfigReport, error)
	RemoveTasks(ids []string) error
	Snapshot() core.BindingSnapshot
}

// attach wires the controller to a binding: subscribe the sensor stream and
// anchor the policy clock at `now` in the binding's timebase.
func (a *Autopilot) attach(b Binding, now time.Duration) error {
	if a.started {
		return fmt.Errorf("autopilot: already attached")
	}
	stream, err := b.Watch(core.WatchOptions{Buffer: a.opts.WatchBuffer})
	if err != nil {
		return fmt.Errorf("autopilot: watch: %w", err)
	}
	a.bind = b
	a.stream = stream
	a.active = b.Snapshot().Config
	a.regimeSince = now
	a.started = true
	return nil
}

// drain ingests every buffered Watch event without blocking. In the sim the
// hub's emissions are synchronous on the engine thread, so by the time a
// tick callback runs, every event up to the current virtual instant is
// already sitting in the buffer — draining here is exact, not approximate.
func (a *Autopilot) drain() {
	for {
		select {
		case ev, ok := <-a.stream.Events():
			if !ok {
				return
			}
			a.ingest(ev)
		default:
			return
		}
	}
}

// AttachSim drives the controller on a simulation binding in virtual time:
// a self-rescheduling SimSystem.At callback chain drains the watch buffer
// and runs one decision tick every Options.Tick from `from+Tick` until
// `until`. Decisions therefore depend only on the virtual-time event
// sequence — the same scenario always yields the same actuations, and a
// recorded run replays bit-for-bit. Call before SimSystem.Run.
func (a *Autopilot) AttachSim(sim *core.SimSystem, from, until time.Duration) error {
	if err := a.attach(sim, from); err != nil {
		return err
	}
	var step func()
	step = func() {
		a.drain()
		now := sim.Engine().Now()
		a.tick(now)
		if next := now + a.opts.Tick; next <= until {
			sim.At(next, step) //nolint:errcheck // next > now by construction
		} else {
			a.stream.Cancel()
		}
	}
	if err := sim.At(from+a.opts.Tick, step); err != nil {
		a.stream.Cancel()
		return fmt.Errorf("autopilot: schedule first tick: %w", err)
	}
	return nil
}

// Start drives the controller on a live binding in wall-clock time: one
// goroutine owns both ingest and the decision ticker, so the estimator
// single-writer discipline holds on the live path too. Stop tears it down.
func (a *Autopilot) Start(b Binding) error {
	now := time.Duration(time.Now().UnixNano())
	if err := a.attach(b, now); err != nil {
		return err
	}
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go a.loop()
	return nil
}

// minLiveTick floors the live ticker: a heavily time-compressed scenario
// can scale Options.Tick below what a wall-clock ticker can honor.
const minLiveTick = time.Millisecond

func (a *Autopilot) loop() {
	defer close(a.done)
	defer a.stream.Cancel()
	period := a.opts.Tick
	if period < minLiveTick {
		period = minLiveTick
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case ev, ok := <-a.stream.Events():
			if !ok {
				return
			}
			a.ingest(ev)
		case <-ticker.C:
			a.tick(time.Duration(time.Now().UnixNano()))
		case <-a.stop:
			return
		}
	}
}

// Stop halts the live driver and waits for its goroutine to exit.
// Idempotent; a no-op for sim-attached controllers (their tick chain ends
// at the horizon).
func (a *Autopilot) Stop() {
	if a.stop == nil {
		return
	}
	a.stopOnce.Do(func() { close(a.stop) })
	<-a.done
}
