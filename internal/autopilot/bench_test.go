package autopilot

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
)

// BenchmarkAutopilot measures the controller's two hot paths: per-Watch-event
// estimator ingest (which must stay allocation-free once the per-task
// estimators exist — it runs once per job lifecycle event) and one decision
// tick (window summary + change detector + classification; runs once per
// Tick, so its cost is bounded but not guarded).
func BenchmarkAutopilot(b *testing.B) {
	const tasks = 16
	prebuilt := func(opts Options) (*Autopilot, []core.WatchEvent) {
		ap, err := New(opts)
		if err != nil {
			b.Fatal(err)
		}
		events := make([]core.WatchEvent, 1024)
		for i := range events {
			kind := core.WatchAdmitted
			switch i % 8 {
			case 5:
				kind = core.WatchRejected
			case 6:
				kind = core.WatchCompleted
			case 7:
				kind = core.WatchDeadlineMiss
			}
			events[i] = core.WatchEvent{
				Kind: kind,
				Task: fmt.Sprintf("t%d", i%tasks),
				Job:  int64(i),
				At:   time.Duration(i) * 100 * time.Microsecond,
			}
		}
		// Warm pass: registers every task estimator (the one cold
		// allocation per task) so the timed loop is the steady state.
		for _, ev := range events {
			ap.ingest(ev)
		}
		return ap, events
	}

	b.Run("ingest", func(b *testing.B) {
		ap, events := prebuilt(Options{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ap.ingest(events[i%len(events)])
		}
	})

	b.Run("tick", func(b *testing.B) {
		// Disable every regime trigger and park the active config at the
		// calm target: the bench measures the window summary and
		// classification, not actuation (there is no binding attached).
		ap, events := prebuilt(Options{
			MissHigh: 2, RejectHigh: 2,
			BurstEnter: 1000, BurstExit: 999,
		})
		ap.active = ap.opts.Calm
		horizon := events[len(events)-1].At
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ap.tick(horizon + time.Duration(i)*ap.opts.Tick)
		}
	})
}
