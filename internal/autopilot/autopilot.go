// Package autopilot closes the control loop the paper leaves to an
// operator: it tails a binding's Watch stream into lock-free sliding-window
// estimators (per-task arrival rate and burstiness via a two-state
// MMPP/Markov-modulated fit, deadline-miss and rejection rates), detects
// regime shifts with an EWMA mean plus a two-sided CUSUM change detector,
// and maps the detected regime to a strategy configuration through a policy
// engine with hysteresis — minimum regime dwell time, a cooldown after every
// actuation, and action deduplication — so the controller provably never
// flaps. The same controller drives both bindings: in the simulation its
// ticks ride SimSystem.At (virtual time, deterministic and replayable); on
// the live cluster a goroutine ticks on the wall clock.
//
// The no-flap guarantee is structural, not statistical. An actuation
// requires (1) the classified regime to have been stable for at least
// MinDwell, (2) at least Cooldown elapsed since the previous actuation, and
// (3) the regime's target config to differ from the active one. After
// actuating, the active config equals the regime's target, so an unchanged
// regime can never actuate again (dedup), and any two actuations are
// separated by at least max(MinDwell, Cooldown) because a different regime
// must first survive its own dwell.
package autopilot

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Regime is the controller's classification of the traffic the window shows.
type Regime int32

// Regimes, ordered by escalation.
const (
	// RegimeCalm is the stationary background regime: no task in its MMPP
	// burst state and the aggregate arrival rate at or under RateLow.
	RegimeCalm Regime = iota + 1
	// RegimeBurst is elevated arrivals: some task's MMPP fit is in its burst
	// state, or the aggregate rate crossed RateHigh.
	RegimeBurst
	// RegimeOverload is confirmed damage: the windowed deadline-miss or
	// rejection rate crossed its ceiling.
	RegimeOverload
)

// String names the regime.
func (r Regime) String() string {
	switch r {
	case RegimeCalm:
		return "calm"
	case RegimeBurst:
		return "burst"
	case RegimeOverload:
		return "overload"
	default:
		return fmt.Sprintf("Regime(%d)", int32(r))
	}
}

// Options tunes the controller. Durations and rates are in the binding's
// timebase — virtual time in the sim, wall-clock on the live cluster; Scale
// converts sim-time options for a time-compressed live run. The zero value
// of every field selects a sensible default.
type Options struct {
	// Tick is the decision cadence.
	Tick time.Duration
	// Window is the sliding estimator window; Buckets its ring resolution.
	Window  time.Duration
	Buckets int

	// MinDwell is how long a classified regime must persist before the
	// policy may act on it; Cooldown the minimum gap after an actuation
	// before the next one. Together with action dedup they are the no-flap
	// hysteresis.
	MinDwell time.Duration
	Cooldown time.Duration
	// MaxActuations caps total actuations (0 = unbounded). The cap is a
	// hard safety stop, not the normal bounding mechanism — hysteresis is.
	MaxActuations int64

	// Calm, Burst and Overload are the policy table: the configuration each
	// regime steers toward. Zero values default to T_T_N for calm (cached
	// per-task admission, cheapest steady-state path), J_J_N for burst
	// (per-job testing sheds what the bound cannot hold), and the burst
	// config for overload.
	Calm     core.Config
	Burst    core.Config
	Overload core.Config

	// BurstEnter and BurstExit are the per-task MMPP fit thresholds, as
	// multiples of the task's EWMA base rate (enter > exit for hysteresis).
	BurstEnter float64
	BurstExit  float64
	// RateHigh and RateLow are absolute aggregate arrival-rate thresholds
	// (events/sec) that classify burst/calm independent of the MMPP fit —
	// they catch slow ramps (diurnal tides) the ratio test tracks too
	// closely to trip on. Zero disables the absolute test.
	RateHigh float64
	RateLow  float64
	// MissHigh and RejectHigh are windowed deadline-miss and rejection-rate
	// ceilings that classify overload. A value above 1 can never trigger,
	// which is the idiom for disabling one of the two overload signals.
	MissHigh   float64
	RejectHigh float64

	// OverloadShed names load-shedding victim tasks: the first time the
	// controller actuates in the overload regime it also RemoveTasks them —
	// the policy engine's structural action beyond strategy swaps. At most
	// once per controller lifetime (removal is not reversible from here).
	OverloadShed []string

	// EWMAAlpha smooths the estimator means; CUSUMSlack and CUSUMThreshold
	// parameterize the change detector (normalized units).
	EWMAAlpha      float64
	CUSUMSlack     float64
	CUSUMThreshold float64

	// WatchBuffer sizes the controller's Watch subscription.
	WatchBuffer int
	// JournalCap bounds the decision journal (oldest entries dropped).
	JournalCap int

	// OnAction, if set, is called synchronously after every successful
	// actuation with the actuation time and the config transition — the
	// scenario recorder uses it to journal actuations as replayable
	// reconfigure ops. OnShed is the analogue for an overload shed: it runs
	// after the RemoveTasks call so the caller can journal the removal and
	// retire the tasks from its own bookkeeping.
	OnAction func(at time.Duration, from, to core.Config)
	OnShed   func(at time.Duration, ids []string)
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Tick <= 0 {
		o.Tick = 250 * time.Millisecond
	}
	if o.Window <= 0 {
		o.Window = time.Second
	}
	if o.Buckets <= 0 {
		o.Buckets = 8
	}
	if o.MinDwell <= 0 {
		o.MinDwell = 500 * time.Millisecond
	}
	if o.Cooldown <= 0 {
		o.Cooldown = time.Second
	}
	if o.Calm == (core.Config{}) {
		o.Calm = core.Config{AC: core.StrategyPerTask, IR: core.StrategyPerTask, LB: core.StrategyNone}
	}
	if o.Burst == (core.Config{}) {
		o.Burst = core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerJob, LB: core.StrategyNone}
	}
	if o.Overload == (core.Config{}) {
		o.Overload = o.Burst
	}
	if o.BurstEnter <= 0 {
		o.BurstEnter = 3
	}
	if o.BurstExit <= 0 {
		o.BurstExit = 1.5
	}
	if o.MissHigh <= 0 {
		o.MissHigh = 0.3
	}
	if o.RejectHigh <= 0 {
		o.RejectHigh = 0.5
	}
	if o.EWMAAlpha <= 0 {
		o.EWMAAlpha = 0.2
	}
	if o.CUSUMSlack <= 0 {
		o.CUSUMSlack = 0.25
	}
	if o.CUSUMThreshold <= 0 {
		o.CUSUMThreshold = 2
	}
	if o.WatchBuffer <= 0 {
		o.WatchBuffer = 1 << 15
	}
	if o.JournalCap <= 0 {
		o.JournalCap = 256
	}
	return o
}

// Scale converts scenario-time options for a live run compressed by factor f
// (f = 10 means 10x faster than scenario time): durations divide by f, rate
// thresholds multiply by f. Ratios and rate-of-rate thresholds are
// dimensionless and pass through.
func (o Options) Scale(f float64) Options {
	if f <= 0 || f == 1 {
		return o
	}
	o.Tick = time.Duration(float64(o.Tick) / f)
	o.Window = time.Duration(float64(o.Window) / f)
	o.MinDwell = time.Duration(float64(o.MinDwell) / f)
	o.Cooldown = time.Duration(float64(o.Cooldown) / f)
	o.RateHigh *= f
	o.RateLow *= f
	return o
}

// validate rejects incoherent options after defaulting.
func (o Options) validate() error {
	for _, c := range []core.Config{o.Calm, o.Burst, o.Overload} {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("autopilot: policy config: %w", err)
		}
	}
	if o.BurstExit >= o.BurstEnter {
		return fmt.Errorf("autopilot: burst hysteresis needs exit (%g) < enter (%g)", o.BurstExit, o.BurstEnter)
	}
	if o.RateHigh > 0 && o.RateLow > o.RateHigh {
		return fmt.Errorf("autopilot: rate hysteresis needs low (%g) <= high (%g)", o.RateLow, o.RateHigh)
	}
	return nil
}

// minSamples is the windowed event count below which the miss and rejection
// ratios are considered too noisy to classify overload from.
const minSamples = 8

// minRateFloor floors MMPP base rates and CUSUM normalization so near-idle
// tasks don't produce unbounded ratios (events/sec).
const minRateFloor = 1.0

// WindowStats is one tick's view of the sliding window, recorded with every
// decision so the journal explains what the controller saw.
type WindowStats struct {
	// AggRate is the aggregate admitted+rejected arrival rate (events/sec).
	AggRate float64 `json:"agg_rate"`
	// MissRate is windowed deadline misses over completions; RejectRate
	// windowed rejections over arrivals.
	MissRate   float64 `json:"miss_rate"`
	RejectRate float64 `json:"reject_rate"`
	// Arrivals and Completions are the windowed raw counts behind the
	// ratios.
	Arrivals    int64 `json:"arrivals"`
	Completions int64 `json:"completions"`
	// BurstTasks is how many tasks' MMPP fits are in the burst state.
	BurstTasks int `json:"burst_tasks"`
	// WatchDropped is the controller's cumulative sensor loss: events its
	// subscription dropped because ingest fell behind.
	WatchDropped int64 `json:"watch_dropped"`
}

// Decision is one journal entry: an actuation and why it fired.
type Decision struct {
	// At is the actuation time in the binding's timebase (ns).
	At time.Duration `json:"at_ns"`
	// Seq numbers actuations from 1.
	Seq int64 `json:"seq"`
	// Regime is the classification that triggered the actuation; Trigger a
	// human-readable statement of the signal that selected it.
	Regime  string `json:"regime"`
	Trigger string `json:"trigger"`
	// From and To are the config transition (equal when the decision only
	// shed tasks).
	From string `json:"from"`
	To   string `json:"to"`
	// Shed lists tasks the decision removed (overload shedding).
	Shed []string `json:"shed,omitempty"`
	// Stats is the window snapshot the classification was made from.
	Stats WindowStats `json:"stats"`
	// Err records an actuation failure (the decision still journals).
	Err string `json:"err,omitempty"`
}

// Stats are the controller's cumulative counters.
type Stats struct {
	// Events is total Watch events ingested; Ticks total decision ticks.
	Events int64 `json:"events"`
	Ticks  int64 `json:"ticks"`
	// ShiftAlarms counts CUSUM change alarms; RegimeChanges classified
	// regime transitions (actuated or not).
	ShiftAlarms   int64 `json:"shift_alarms"`
	RegimeChanges int64 `json:"regime_changes"`
	// Actuations counts successful Reconfigure calls; ActuationErrors
	// failed ones; Sheds tasks removed by overload shedding.
	Actuations      int64 `json:"actuations"`
	ActuationErrors int64 `json:"actuation_errors"`
	Sheds           int64 `json:"sheds"`
	// SuppressedDwell, SuppressedCooldown and SuppressedCap count ticks
	// where a config change was wanted but hysteresis (or the hard cap)
	// held it back — the visible no-flap machinery.
	SuppressedDwell    int64 `json:"suppressed_dwell"`
	SuppressedCooldown int64 `json:"suppressed_cooldown"`
	SuppressedCap      int64 `json:"suppressed_cap"`
	// WatchDropped is sensor loss on the controller's own subscription.
	WatchDropped int64 `json:"watch_dropped"`
	// Regime is the current classification.
	Regime string `json:"regime"`
}

// Autopilot is the controller. Ingest and tick run on a single goroutine
// (the sim engine thread or the live driver); Stats and Journal are safe
// from any goroutine.
type Autopilot struct {
	opts Options

	bind   Binding
	stream *core.WatchStream

	// Estimators. tasks is touched only on the driver goroutine (ingest and
	// tick); the rings inside are atomic for Stats readers.
	tasks       map[string]*taskEst
	arrivals    *ring
	rejects     *ring
	completions *ring
	misses      *ring

	detector cusum

	// Policy state (driver goroutine only).
	regime      Regime
	regimeSince time.Duration
	active      core.Config
	lastAct     time.Duration
	actuated    bool
	shedDone    bool
	started     bool

	// Counters (atomic: read by Stats from any goroutine).
	events             atomic.Int64
	ticks              atomic.Int64
	shiftAlarms        atomic.Int64
	regimeChanges      atomic.Int64
	actuations         atomic.Int64
	actuationErrors    atomic.Int64
	sheds              atomic.Int64
	suppressedDwell    atomic.Int64
	suppressedCooldown atomic.Int64
	suppressedCap      atomic.Int64
	curRegime          atomic.Int32

	journalMu sync.Mutex
	journal   []Decision

	// Live driver plumbing.
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// New builds a controller from the options (defaults applied, then
// validated). The controller is inert until attached to a binding with
// AttachSim or Start.
func New(opts Options) (*Autopilot, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	a := &Autopilot{
		opts:        opts,
		tasks:       make(map[string]*taskEst),
		arrivals:    newRing(opts.Window, opts.Buckets),
		rejects:     newRing(opts.Window, opts.Buckets),
		completions: newRing(opts.Window, opts.Buckets),
		misses:      newRing(opts.Window, opts.Buckets),
		detector:    cusum{alpha: opts.EWMAAlpha, k: opts.CUSUMSlack, h: opts.CUSUMThreshold},
		regime:      RegimeCalm,
	}
	a.curRegime.Store(int32(RegimeCalm))
	return a, nil
}

// ingest folds one Watch event into the estimators. Hot path: a map lookup
// and one or two atomic ring adds — no locks, no allocations (task add and
// remove are the cold exceptions).
//
//rtmw:noalloc
func (a *Autopilot) ingest(ev core.WatchEvent) {
	a.events.Add(1)
	switch ev.Kind {
	case core.WatchAdmitted:
		a.arrivals.add(ev.At)
		a.taskFor(ev.Task).arrivals.add(ev.At)
	case core.WatchRejected:
		a.arrivals.add(ev.At)
		a.rejects.add(ev.At)
		a.taskFor(ev.Task).arrivals.add(ev.At)
	case core.WatchCompleted:
		a.completions.add(ev.At)
	case core.WatchDeadlineMiss:
		a.misses.add(ev.At)
	case core.WatchTaskAdded:
		a.addTask(ev.Task)
	case core.WatchTaskRemoved:
		if t := a.tasks[ev.Task]; t != nil {
			t.removed = true
		}
	case core.WatchReconfigured:
		// The actuator's own confirmation; the policy tracks intent (the
		// config it last commanded), so nothing to fold in.
	}
}

// taskFor returns the task's estimator, registering one on first sight —
// tasks present before the controller subscribed never emit TaskAdded, so
// their first arrival registers them (a one-time allocation per task; the
// steady-state ingest path stays allocation-free).
func (a *Autopilot) taskFor(id string) *taskEst {
	t, ok := a.tasks[id]
	if !ok {
		t = &taskEst{id: id, arrivals: newRing(a.opts.Window, a.opts.Buckets)}
		a.tasks[id] = t
	}
	return t
}

// addTask registers an estimator for a task (idempotent).
func (a *Autopilot) addTask(id string) {
	a.taskFor(id).removed = false
}

// window summarizes the sliding window at `now`, advancing every ring so a
// silent stretch decays the estimates.
func (a *Autopilot) window(now time.Duration) WindowStats {
	a.arrivals.advance(now)
	a.rejects.advance(now)
	a.completions.advance(now)
	a.misses.advance(now)
	st := WindowStats{
		Arrivals:    a.arrivals.sum(),
		Completions: a.completions.sum(),
	}
	st.AggRate = a.arrivals.rate()
	if st.Completions > 0 {
		st.MissRate = float64(a.misses.sum()) / float64(st.Completions)
	}
	if st.Arrivals > 0 {
		st.RejectRate = float64(a.rejects.sum()) / float64(st.Arrivals)
	}
	o := &a.opts
	for _, t := range a.tasks {
		if t.removed {
			continue
		}
		t.arrivals.advance(now)
		if t.observe(o.EWMAAlpha, o.BurstEnter, o.BurstExit, minRateFloor) {
			st.BurstTasks++
		}
	}
	if a.stream != nil {
		st.WatchDropped = a.stream.Dropped()
	}
	return st
}

// classify maps the window onto a regime. The neutral band — no burst
// signal but the aggregate rate still above RateLow — keeps the previous
// regime, which is the classifier's own hysteresis.
func (a *Autopilot) classify(st WindowStats) (Regime, string) {
	if st.Completions >= minSamples && st.MissRate >= a.opts.MissHigh {
		return RegimeOverload, fmt.Sprintf("window miss rate %.2f >= %.2f", st.MissRate, a.opts.MissHigh)
	}
	if st.Arrivals >= minSamples && st.RejectRate >= a.opts.RejectHigh {
		return RegimeOverload, fmt.Sprintf("window reject rate %.2f >= %.2f", st.RejectRate, a.opts.RejectHigh)
	}
	if st.BurstTasks > 0 {
		return RegimeBurst, fmt.Sprintf("%d task(s) in MMPP burst state", st.BurstTasks)
	}
	if a.opts.RateHigh > 0 && st.AggRate >= a.opts.RateHigh {
		return RegimeBurst, fmt.Sprintf("aggregate rate %.1f/s >= %.1f/s", st.AggRate, a.opts.RateHigh)
	}
	if a.opts.RateLow <= 0 || st.AggRate <= a.opts.RateLow {
		return RegimeCalm, "no burst signal"
	}
	return a.regime, "rate in hysteresis band; holding regime"
}

// target is the policy table.
func (a *Autopilot) target(r Regime) core.Config {
	switch r {
	case RegimeBurst:
		return a.opts.Burst
	case RegimeOverload:
		return a.opts.Overload
	default:
		return a.opts.Calm
	}
}

// tick runs one decision round at `now`: summarize the window, update the
// change detector, classify, and actuate if — and only if — the hysteresis
// gate opens.
//
//rtmw:noalloc
func (a *Autopilot) tick(now time.Duration) {
	a.ticks.Add(1)
	st := a.window(now)
	if a.detector.update(st.AggRate, minRateFloor) {
		a.shiftAlarms.Add(1)
	}
	regime, trigger := a.classify(st)
	if regime != a.regime {
		a.regime = regime
		a.regimeSince = now
		a.regimeChanges.Add(1)
		a.curRegime.Store(int32(regime))
	}
	to := a.target(a.regime)
	shed := a.regime == RegimeOverload && !a.shedDone && len(a.opts.OverloadShed) > 0
	if to == a.active && !shed {
		return // dedup: the regime's config is already live
	}
	if now-a.regimeSince < a.opts.MinDwell {
		a.suppressedDwell.Add(1)
		return
	}
	if a.actuated && now-a.lastAct < a.opts.Cooldown {
		a.suppressedCooldown.Add(1)
		return
	}
	if a.opts.MaxActuations > 0 && a.actuations.Load() >= a.opts.MaxActuations {
		a.suppressedCap.Add(1)
		return
	}
	a.actuate(now, a.regime, trigger, to, shed, st)
}

// actuate commands the binding — a Reconfigure toward the target config,
// plus the one-time overload shed when asked — and journals the decision.
func (a *Autopilot) actuate(now time.Duration, regime Regime, trigger string, to core.Config, shed bool, st WindowStats) {
	from := a.active
	d := Decision{
		At:      now,
		Regime:  regime.String(),
		Trigger: trigger,
		From:    from.String(),
		To:      to.String(),
		Stats:   st,
	}
	if to != a.active {
		if _, err := a.bind.Reconfigure(to); err != nil {
			a.actuationErrors.Add(1)
			d.Err = err.Error()
			d.Seq = a.actuations.Load()
			a.record(d)
			return
		}
		a.active = to
		a.lastAct = now
		a.actuated = true
		d.Seq = a.actuations.Add(1)
		if a.opts.OnAction != nil {
			a.opts.OnAction(now, from, to)
		}
	}
	if shed {
		if err := a.bind.RemoveTasks(a.opts.OverloadShed); err != nil {
			d.Err = err.Error()
		} else {
			a.shedDone = true
			a.lastAct = now
			a.actuated = true
			d.Shed = a.opts.OverloadShed
			a.sheds.Add(int64(len(a.opts.OverloadShed)))
			for _, id := range a.opts.OverloadShed {
				if t := a.tasks[id]; t != nil {
					t.removed = true
				}
			}
			if a.opts.OnShed != nil {
				a.opts.OnShed(now, a.opts.OverloadShed)
			}
		}
	}
	a.record(d)
}

// record appends to the bounded decision journal.
func (a *Autopilot) record(d Decision) {
	a.journalMu.Lock()
	defer a.journalMu.Unlock()
	if len(a.journal) >= a.opts.JournalCap {
		copy(a.journal, a.journal[1:])
		a.journal = a.journal[:len(a.journal)-1]
	}
	a.journal = append(a.journal, d)
}

// Journal returns a copy of the decision journal, oldest first.
func (a *Autopilot) Journal() []Decision {
	a.journalMu.Lock()
	defer a.journalMu.Unlock()
	out := make([]Decision, len(a.journal))
	copy(out, a.journal)
	return out
}

// Stats snapshots the controller's counters. Safe from any goroutine.
func (a *Autopilot) Stats() Stats {
	s := Stats{
		Events:             a.events.Load(),
		Ticks:              a.ticks.Load(),
		ShiftAlarms:        a.shiftAlarms.Load(),
		RegimeChanges:      a.regimeChanges.Load(),
		Actuations:         a.actuations.Load(),
		ActuationErrors:    a.actuationErrors.Load(),
		Sheds:              a.sheds.Load(),
		SuppressedDwell:    a.suppressedDwell.Load(),
		SuppressedCooldown: a.suppressedCooldown.Load(),
		SuppressedCap:      a.suppressedCap.Load(),
		Regime:             Regime(a.curRegime.Load()).String(),
	}
	if a.stream != nil {
		s.WatchDropped = a.stream.Dropped()
	}
	return s
}
