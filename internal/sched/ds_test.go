package sched

import (
	"math/rand"
	"testing"
	"time"
)

func mustServer(t *testing.T, budget, period time.Duration) *DeferrableServer {
	t.Helper()
	s, err := NewDeferrableServer(budget, period)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewDeferrableServerValidation(t *testing.T) {
	cases := []struct {
		budget, period time.Duration
	}{
		{0, time.Second},
		{time.Second, 0},
		{2 * time.Second, time.Second}, // budget > period
		{-time.Second, time.Second},
	}
	for _, c := range cases {
		if _, err := NewDeferrableServer(c.budget, c.period); err == nil {
			t.Errorf("NewDeferrableServer(%v, %v) accepted", c.budget, c.period)
		}
	}
}

func TestSupplyBound(t *testing.T) {
	// Budget 20ms, period 100ms: blackout 80ms.
	s := mustServer(t, 20*time.Millisecond, 100*time.Millisecond)
	tests := []struct {
		window time.Duration
		want   time.Duration
	}{
		{0, 0},
		{80 * time.Millisecond, 0}, // inside the blackout
		{90 * time.Millisecond, 10 * time.Millisecond},    // partial first chunk
		{100 * time.Millisecond, 20 * time.Millisecond},   // one full budget
		{180 * time.Millisecond, 20 * time.Millisecond},   // second blackout
		{200 * time.Millisecond, 40 * time.Millisecond},   // two budgets
		{280 * time.Millisecond, 40 * time.Millisecond},   // third blackout
		{290 * time.Millisecond, 50 * time.Millisecond},   // partial third
		{1080 * time.Millisecond, 200 * time.Millisecond}, // ten budgets
	}
	for _, tt := range tests {
		if got := s.SupplyBound(tt.window); got != tt.want {
			t.Errorf("SupplyBound(%v) = %v, want %v", tt.window, got, tt.want)
		}
	}
}

func TestSupplyBoundMonotonic(t *testing.T) {
	s := mustServer(t, 7*time.Millisecond, 31*time.Millisecond)
	prev := time.Duration(-1)
	for w := time.Duration(0); w <= 500*time.Millisecond; w += time.Millisecond {
		got := s.SupplyBound(w)
		if got < prev {
			t.Fatalf("SupplyBound not monotonic at %v: %v < %v", w, got, prev)
		}
		// Supply can never exceed the server bandwidth share of the window
		// plus one budget.
		if limit := time.Duration(float64(w)*s.Utilization()) + 7*time.Millisecond; got > limit {
			t.Fatalf("SupplyBound(%v) = %v exceeds bandwidth bound %v", w, got, limit)
		}
		prev = got
	}
}

func TestServerAdmitAndRelease(t *testing.T) {
	s := mustServer(t, 20*time.Millisecond, 100*time.Millisecond)
	ref := JobRef{Task: "a", Job: 0}
	// 20ms of work due in 100ms: exactly one budget — admissible.
	if !s.Admissible(0, 20*time.Millisecond, 100*time.Millisecond) {
		t.Fatal("single-budget job rejected")
	}
	if err := s.Commit(ref, 20*time.Millisecond, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(ref, time.Millisecond, time.Second); err == nil {
		t.Error("double commit accepted")
	}
	// A second job with the same deadline cannot fit.
	if s.Admissible(0, 5*time.Millisecond, 100*time.Millisecond) {
		t.Error("over-committed job admitted")
	}
	// But a job with a later deadline can use the next replenishment.
	if !s.Admissible(0, 20*time.Millisecond, 200*time.Millisecond) {
		t.Error("next-period job rejected")
	}
	// Completion frees the capacity.
	s.Complete(ref)
	if s.Backlog() != 0 {
		t.Errorf("Backlog = %d after completion", s.Backlog())
	}
	if !s.Admissible(0, 5*time.Millisecond, 100*time.Millisecond) {
		t.Error("capacity not released after completion")
	}
}

func TestServerExpire(t *testing.T) {
	s := mustServer(t, 10*time.Millisecond, 50*time.Millisecond)
	if err := s.Commit(JobRef{Task: "a", Job: 0}, 10*time.Millisecond, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(JobRef{Task: "b", Job: 0}, 10*time.Millisecond, 300*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if n := s.Expire(150 * time.Millisecond); n != 1 {
		t.Errorf("Expire removed %d, want 1", n)
	}
	if s.Backlog() != 1 {
		t.Errorf("Backlog = %d, want 1", s.Backlog())
	}
}

func TestServerAdmissibleRejectsDegenerate(t *testing.T) {
	s := mustServer(t, 10*time.Millisecond, 50*time.Millisecond)
	if s.Admissible(0, 0, time.Second) {
		t.Error("zero-exec job admitted")
	}
	if s.Admissible(time.Second, time.Millisecond, time.Second) {
		t.Error("already-expired job admitted")
	}
}

func TestDSAdmissionEndToEnd(t *testing.T) {
	ds, err := NewDSAdmission(2, 20*time.Millisecond, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	task := &Task{
		ID: "a", Kind: Aperiodic, Deadline: 200 * time.Millisecond,
		Subtasks: []Subtask{
			{Index: 0, Exec: 15 * time.Millisecond, Processor: 0},
			{Index: 1, Exec: 15 * time.Millisecond, Processor: 1},
		},
	}
	if !ds.Arrive(task, 0, 0) {
		t.Fatal("feasible end-to-end job rejected")
	}
	// Saturating one stage's server blocks the whole task: the first heavy
	// job fills the single 20 ms budget available before its 100 ms
	// deadline; an identical second job cannot fit.
	heavy := &Task{
		ID: "h", Kind: Aperiodic, Deadline: 100 * time.Millisecond,
		Subtasks: []Subtask{{Index: 0, Exec: 19 * time.Millisecond, Processor: 0}},
	}
	if !ds.Arrive(heavy, 0, 0) {
		t.Fatal("first heavy job rejected")
	}
	if ds.Arrive(heavy, 1, 0) {
		t.Error("second heavy job admitted despite server saturation on processor 0")
	}
	ds.Expire(time.Second)
	if !ds.Arrive(heavy, 2, time.Second) {
		t.Error("job rejected after backlog expired")
	}
	if ds.Server(0).Backlog() == 0 {
		t.Error("commitment not recorded")
	}
}

func TestDSAdmissionValidation(t *testing.T) {
	if _, err := NewDSAdmission(0, time.Millisecond, time.Second); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := NewDSAdmission(2, 0, time.Second); err == nil {
		t.Error("invalid server parameters accepted")
	}
}

// TestDSNeverOverAdmits drives random arrivals and checks that right after
// every admission, the cumulative committed demand by each deadline stays
// within the supply bound evaluated at the admission instant — i.e. the
// Commit bookkeeping never books more work than Admissible verified the
// server can deliver. (At later instants the committed work would have been
// partially served, which this model does not simulate, so the bound is only
// meaningful at admission time.)
func TestDSNeverOverAdmits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := mustServer(t, 10*time.Millisecond, 40*time.Millisecond)
	now := time.Duration(0)
	admitted := 0
	for i := 0; i < 2000; i++ {
		now += time.Duration(rng.Intn(10)) * time.Millisecond
		s.Expire(now)
		exec := time.Duration(1+rng.Intn(10)) * time.Millisecond
		deadline := now + time.Duration(20+rng.Intn(300))*time.Millisecond
		if !s.Admissible(now, exec, deadline) {
			continue
		}
		if err := s.Commit(JobRef{Task: "r", Job: int64(i)}, exec, deadline); err != nil {
			t.Fatal(err)
		}
		admitted++
		// Invariant at the admission instant: cumulative demand by each
		// commitment deadline ≤ supply bound over [now, deadline].
		var points []*dsCommitment
		for _, c := range s.commitments {
			points = append(points, c)
		}
		for _, p := range points {
			var demand time.Duration
			for _, c := range points {
				if c.deadline <= p.deadline {
					demand += c.remaining
				}
			}
			if demand > s.SupplyBound(p.deadline-now) {
				t.Fatalf("step %d: demand %v by %v exceeds supply %v",
					i, demand, p.deadline, s.SupplyBound(p.deadline-now))
			}
		}
	}
	if admitted == 0 {
		t.Fatal("no jobs admitted; test is vacuous")
	}
}
