package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestAUBTerm(t *testing.T) {
	tests := []struct {
		u    float64
		want float64
	}{
		{u: 0, want: 0},
		{u: -0.5, want: 0},
		{u: 0.5, want: 0.75},
		{u: 1, want: math.Inf(1)},
		{u: 1.5, want: math.Inf(1)},
	}
	for _, tt := range tests {
		if got := AUBTerm(tt.u); got != tt.want {
			t.Errorf("AUBTerm(%g) = %g, want %g", tt.u, got, tt.want)
		}
	}
}

func TestAUBTermMonotonic(t *testing.T) {
	// f is strictly increasing on [0, 1).
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 1))
		b = math.Abs(math.Mod(b, 1))
		if a > b {
			a, b = b, a
		}
		if a == b {
			return true
		}
		return AUBTerm(a) < AUBTerm(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathFeasible(t *testing.T) {
	tests := []struct {
		name  string
		utils []float64
		want  bool
	}{
		{name: "empty", utils: nil, want: true},
		{name: "one half-loaded stage", utils: []float64{0.5}, want: true},
		{name: "two half-loaded stages", utils: []float64{0.5, 0.5}, want: false},
		{name: "full processor", utils: []float64{1.0}, want: false},
		{name: "many light stages", utils: []float64{0.1, 0.1, 0.1, 0.1}, want: true},
		// The single-stage AUB bound is 2 - sqrt(2) ≈ 0.5858.
		{name: "single just-feasible", utils: []float64{0.585}, want: true},
		{name: "single just-infeasible", utils: []float64{0.587}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := PathFeasible(tt.utils); got != tt.want {
				t.Errorf("PathFeasible(%v) = %v, want %v", tt.utils, got, tt.want)
			}
		})
	}
}

func TestRemovalReasonString(t *testing.T) {
	if RemovedExpiry.String() != "expiry" || RemovedIdleReset.String() != "idle-reset" ||
		RemovedRelocation.String() != "relocation" || RemovedWithdrawal.String() != "withdrawal" {
		t.Error("unexpected RemovalReason strings")
	}
	if RemovalReason(0).String() != "RemovalReason(0)" {
		t.Error("zero RemovalReason should format numerically")
	}
}

func place(stages ...PlacedStage) []PlacedStage { return stages }

func TestLedgerAddAndExpire(t *testing.T) {
	l := NewLedger(3)
	ref := JobRef{Task: "t1", Job: 0}
	pl := place(
		PlacedStage{Stage: 0, Proc: 0, Util: 0.2},
		PlacedStage{Stage: 1, Proc: 2, Util: 0.1},
	)
	if err := l.AddJob(ref, Aperiodic, pl, false, time.Second); err != nil {
		t.Fatal(err)
	}
	if got := l.Util(0); !almostEqual(got, 0.2) {
		t.Errorf("Util(0) = %g, want 0.2", got)
	}
	if got := l.Util(2); !almostEqual(got, 0.1) {
		t.Errorf("Util(2) = %g, want 0.1", got)
	}
	if got := l.Util(1); got != 0 {
		t.Errorf("Util(1) = %g, want 0", got)
	}
	// Double admission must fail.
	if err := l.AddJob(ref, Aperiodic, pl, false, time.Second); err == nil {
		t.Error("AddJob accepted duplicate job")
	}
	if n := l.ExpireJob(ref); n != 2 {
		t.Errorf("ExpireJob removed %d entries, want 2", n)
	}
	for p := 0; p < 3; p++ {
		if got := l.Util(p); got != 0 {
			t.Errorf("after expiry Util(%d) = %g, want 0", p, got)
		}
	}
	// Expiring again is a no-op.
	if n := l.ExpireJob(ref); n != 0 {
		t.Errorf("second ExpireJob removed %d entries, want 0", n)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestLedgerAddJobErrors(t *testing.T) {
	l := NewLedger(2)
	bad := place(PlacedStage{Stage: 0, Proc: 5, Util: 0.1})
	if err := l.AddJob(JobRef{Task: "x", Job: 0}, Periodic, bad, false, time.Second); err == nil {
		t.Error("AddJob accepted out-of-range processor")
	}
	neg := place(PlacedStage{Stage: 0, Proc: 0, Util: -0.1})
	if err := l.AddJob(JobRef{Task: "y", Job: 0}, Periodic, neg, false, time.Second); err == nil {
		t.Error("AddJob accepted negative utilization")
	}
}

func TestLedgerPermanentReservation(t *testing.T) {
	l := NewLedger(2)
	ref := JobRef{Task: "p1", Job: 0}
	pl := place(PlacedStage{Stage: 0, Proc: 0, Util: 0.3})
	if err := l.AddJob(ref, Periodic, pl, true, 0); err != nil {
		t.Fatal(err)
	}
	// Expiry must not touch a permanent per-task reservation.
	if n := l.ExpireJob(ref); n != 0 {
		t.Errorf("ExpireJob removed %d permanent entries", n)
	}
	if got := l.Util(0); !almostEqual(got, 0.3) {
		t.Errorf("Util(0) = %g after expiry of permanent entry", got)
	}
	// Idle resetting must not touch it either, even when completed.
	l.MarkComplete(ref, 0)
	if l.ResetEntry(EntryRef{Ref: ref, Stage: 0, Proc: 0}) {
		t.Error("ResetEntry removed a permanent reservation")
	}
	// RemoveTask withdraws it.
	if n := l.RemoveTask("p1"); n != 1 {
		t.Errorf("RemoveTask removed %d entries, want 1", n)
	}
	if got := l.Util(0); got != 0 {
		t.Errorf("Util(0) = %g after RemoveTask", got)
	}
}

func TestLedgerIdleReset(t *testing.T) {
	l := NewLedger(2)
	ap := JobRef{Task: "a1", Job: 0}
	per := JobRef{Task: "p1", Job: 3}
	if err := l.AddJob(ap, Aperiodic, place(PlacedStage{Stage: 0, Proc: 0, Util: 0.2}), false, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := l.AddJob(per, Periodic, place(PlacedStage{Stage: 0, Proc: 0, Util: 0.25}), false, time.Second); err != nil {
		t.Fatal(err)
	}

	// Nothing completed yet: nothing to reset.
	if refs := l.CompletedOn(0, true); len(refs) != 0 {
		t.Fatalf("CompletedOn before completion = %v", refs)
	}
	if l.ResetEntry(EntryRef{Ref: ap, Stage: 0, Proc: 0}) {
		t.Error("ResetEntry succeeded for uncompleted subjob")
	}

	l.MarkComplete(ap, 0)
	l.MarkComplete(per, 0)

	// IR per task: aperiodic subjobs only.
	refs := l.CompletedOn(0, false)
	if len(refs) != 1 || refs[0].Ref != ap {
		t.Fatalf("CompletedOn(aperiodic only) = %v, want [%v]", refs, ap)
	}
	// IR per job: both.
	refs = l.CompletedOn(0, true)
	if len(refs) != 2 {
		t.Fatalf("CompletedOn(both) = %v, want 2 entries", refs)
	}

	if !l.ResetEntry(EntryRef{Ref: ap, Stage: 0, Proc: 0}) {
		t.Error("ResetEntry failed for completed aperiodic subjob")
	}
	if got := l.Util(0); !almostEqual(got, 0.25) {
		t.Errorf("Util(0) = %g after aperiodic reset, want 0.25", got)
	}
	// Double reset is a no-op.
	if l.ResetEntry(EntryRef{Ref: ap, Stage: 0, Proc: 0}) {
		t.Error("second ResetEntry succeeded")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestLedgerAdmissible(t *testing.T) {
	l := NewLedger(2)
	// Background in-flight job visiting both processors at 0.3 each:
	// f(0.3) + f(0.3) = 0.7286 ≤ 1, feasible.
	base := place(
		PlacedStage{Stage: 0, Proc: 0, Util: 0.3},
		PlacedStage{Stage: 1, Proc: 1, Util: 0.3},
	)
	if !l.Admissible(base) {
		t.Fatal("empty ledger rejected feasible two-stage job")
	}
	if err := l.AddJob(JobRef{Task: "bg", Job: 0}, Periodic, base, false, time.Second); err != nil {
		t.Fatal(err)
	}

	// Light candidate on processor 0: own condition f(0.35) = 0.444 and
	// background condition f(0.35) + f(0.3) = 0.809 both pass.
	cand := place(PlacedStage{Stage: 0, Proc: 0, Util: 0.05})
	if !l.Admissible(cand) {
		t.Error("feasible candidate rejected")
	}

	// A candidate that would push processor 0 to 1.0 must be rejected.
	heavy := place(PlacedStage{Stage: 0, Proc: 0, Util: 0.7})
	if l.Admissible(heavy) {
		t.Error("candidate saturating processor 0 admitted")
	}

	// A candidate whose own condition passes but which breaks the in-flight
	// background job's condition must be rejected: candidate on processor 1
	// at 0.25 gives own f(0.55) = 0.886 ≤ 1, but background becomes
	// f(0.3) + f(0.55) = 1.25 > 1.
	breaker := place(PlacedStage{Stage: 0, Proc: 1, Util: 0.25})
	if l.Admissible(breaker) {
		t.Error("candidate breaking in-flight job condition admitted")
	}
}

func TestLedgerAdmissibleSkipsCompletedJobs(t *testing.T) {
	l := NewLedger(2)
	done := JobRef{Task: "done", Job: 0}
	if err := l.AddJob(done, Aperiodic, place(
		PlacedStage{Stage: 0, Proc: 0, Util: 0.3},
		PlacedStage{Stage: 1, Proc: 1, Util: 0.3},
	), false, time.Second); err != nil {
		t.Fatal(err)
	}
	l.MarkComplete(done, 0)
	l.MarkComplete(done, 1)
	// The fully completed job cannot miss its deadline anymore, so only the
	// candidate's own condition matters: candidate on processor 1 at 0.2
	// gives own f(0.5) = 0.75 ≤ 1, while the completed job's hypothetical
	// condition f(0.3) + f(0.5) = 1.11 would have failed.
	cand := place(PlacedStage{Stage: 0, Proc: 1, Util: 0.2})
	if !l.Admissible(cand) {
		t.Error("candidate rejected due to already-completed job")
	}
}

func TestLedgerRelocate(t *testing.T) {
	l := NewLedger(3)
	ref := JobRef{Task: "m1", Job: 0}
	if err := l.AddJob(ref, Periodic, place(
		PlacedStage{Stage: 0, Proc: 0, Util: 0.2},
		PlacedStage{Stage: 1, Proc: 1, Util: 0.1},
	), true, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.Relocate(ref, place(
		PlacedStage{Stage: 0, Proc: 2, Util: 0.2},
		PlacedStage{Stage: 1, Proc: 1, Util: 0.1},
	)); err != nil {
		t.Fatal(err)
	}
	if got := l.Util(0); got != 0 {
		t.Errorf("Util(0) = %g after relocation, want 0", got)
	}
	if got := l.Util(2); !almostEqual(got, 0.2) {
		t.Errorf("Util(2) = %g after relocation, want 0.2", got)
	}
	if err := l.Relocate(JobRef{Task: "nope", Job: 9}, nil); err == nil {
		t.Error("Relocate of unknown job succeeded")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestLedgerActiveJobsOrdering(t *testing.T) {
	l := NewLedger(1)
	for _, ref := range []JobRef{{Task: "b", Job: 1}, {Task: "a", Job: 2}, {Task: "a", Job: 0}} {
		if err := l.AddJob(ref, Aperiodic, place(PlacedStage{Proc: 0, Util: 0.01}), false, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	got := l.ActiveJobs()
	want := []JobRef{{Task: "a", Job: 0}, {Task: "a", Job: 2}, {Task: "b", Job: 1}}
	if len(got) != len(want) {
		t.Fatalf("ActiveJobs() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ActiveJobs() = %v, want %v", got, want)
		}
	}
}

// TestLedgerRandomOps drives the ledger through random operation sequences
// and checks the accounting invariants after every step.
func TestLedgerRandomOps(t *testing.T) {
	const (
		numProcs = 4
		numOps   = 5000
	)
	rng := rand.New(rand.NewSource(42))
	l := NewLedger(numProcs)
	var live []JobRef
	next := int64(0)

	for op := 0; op < numOps; op++ {
		switch rng.Intn(4) {
		case 0: // admit
			ref := JobRef{Task: "t", Job: next}
			next++
			stages := 1 + rng.Intn(3)
			pl := make([]PlacedStage, stages)
			for s := range pl {
				pl[s] = PlacedStage{Stage: s, Proc: rng.Intn(numProcs), Util: rng.Float64() * 0.3}
			}
			kind := Periodic
			if rng.Intn(2) == 0 {
				kind = Aperiodic
			}
			if err := l.AddJob(ref, kind, pl, false, time.Duration(op)*time.Millisecond); err != nil {
				t.Fatal(err)
			}
			live = append(live, ref)
		case 1: // expire
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			l.ExpireJob(live[i])
			live = append(live[:i], live[i+1:]...)
		case 2: // complete a random stage
			if len(live) == 0 {
				continue
			}
			l.MarkComplete(live[rng.Intn(len(live))], rng.Intn(3))
		case 3: // idle reset on a random processor
			proc := rng.Intn(numProcs)
			for _, r := range l.CompletedOn(proc, rng.Intn(2) == 0) {
				l.ResetEntry(r)
			}
		}
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
	}
}

// TestAdmissibleNeverBreaksCondition verifies by construction that any
// sequence of admissions accepted by the test keeps condition (1) holding
// for every in-flight job.
func TestAdmissibleNeverBreaksCondition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const numProcs = 3
	l := NewLedger(numProcs)
	type admitted struct {
		procs []int
	}
	var adm []admitted
	for i := 0; i < 400; i++ {
		stages := 1 + rng.Intn(3)
		pl := make([]PlacedStage, stages)
		procs := make([]int, stages)
		for s := range pl {
			p := rng.Intn(numProcs)
			pl[s] = PlacedStage{Stage: s, Proc: p, Util: rng.Float64() * 0.4}
			procs[s] = p
		}
		if !l.Admissible(pl) {
			continue
		}
		ref := JobRef{Task: "t", Job: int64(i)}
		if err := l.AddJob(ref, Aperiodic, pl, false, time.Hour); err != nil {
			t.Fatal(err)
		}
		adm = append(adm, admitted{procs: procs})
		// Every admitted (never-completed) job must satisfy condition (1)
		// under the post-admission utilizations.
		for _, a := range adm {
			var sum float64
			for _, p := range a.procs {
				sum += AUBTerm(l.Util(p))
			}
			if sum > 1+1e-9 {
				t.Fatalf("after admission %d: condition violated (sum=%g)", i, sum)
			}
		}
	}
	if len(adm) == 0 {
		t.Fatal("no jobs admitted; test is vacuous")
	}
}
