package sched

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// ActiveJobs returns the references of jobs that still hold at least one
// active contribution, in deterministic order, mirroring Ledger.ActiveJobs.
// Cross-shard jobs are deduplicated across their partial records.
func (sl *ShardedLedger) ActiveJobs() []JobRef {
	all := sl.allMask()
	sl.lockMask(all)
	seen := make(map[JobRef]struct{})
	var out []JobRef
	for s := range sl.shards {
		for _, ref := range sl.shards[s].l.ActiveJobs() {
			if _, dup := seen[ref]; dup {
				continue
			}
			seen[ref] = struct{}{}
			out = append(out, ref)
		}
	}
	sl.unlockMask(all)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Task != out[j].Task {
			return out[i].Task < out[j].Task
		}
		return out[i].Job < out[j].Job
	})
	return out
}

// referenceAdmissibleAll is the full-scan admission reference over the whole
// sharded state: every in-flight job's condition recomputed from records,
// with cross-shard jobs evaluated once from the cross registry instead of
// per-partial. Caller holds every shard lock and crossMu.
func (sl *ShardedLedger) referenceAdmissibleAll(placement []PlacedStage) bool {
	delta := make(map[int]float64, len(placement))
	for _, p := range placement {
		delta[p.Proc] += p.Util
	}
	utilAt := func(proc int) float64 {
		return sl.shards[sl.procShard[proc]].l.util[proc] + delta[proc]
	}
	var sum float64
	for _, p := range placement {
		sum += AUBTerm(utilAt(p.Proc))
	}
	if sum > 1 {
		return false
	}
	for s := range sl.shards {
		l := sl.shards[s].l
		for k, rec := range l.jobs {
			if !rec.inFlight() || !rec.active() {
				continue
			}
			ref := JobRef{Task: l.taskNames[k.tid], Job: k.job}
			if _, isCross := sl.cross.jobs[ref]; isCross {
				// Partial record of a cross job; the registry pass below
				// evaluates the full signature.
				continue
			}
			var js float64
			for _, e := range rec.entries {
				if e.removed != 0 {
					continue
				}
				js += AUBTerm(utilAt(e.proc))
				if js > 1 {
					return false
				}
			}
		}
	}
	for _, cr := range sl.cross.jobs {
		if !crossCounted(cr) {
			continue
		}
		var js float64
		for i := range cr.entries {
			if cr.entries[i].removed != 0 {
				continue
			}
			js += AUBTerm(utilAt(cr.entries[i].proc))
			if js > 1 {
				return false
			}
		}
	}
	return true
}

// nearBoundaryAllLocked reports whether any job's AUB sum lies within eps of
// the admission bound, where summation order can flip a decision. Caller
// holds every shard lock and crossMu.
func (sl *ShardedLedger) nearBoundaryAllLocked(eps float64) bool {
	for s := range sl.shards {
		if sl.shards[s].l.nearAUBBoundary(eps) {
			return true
		}
	}
	for _, cr := range sl.cross.jobs {
		if !crossCounted(cr) {
			continue
		}
		var sum float64
		for i := range cr.entries {
			if cr.entries[i].removed == 0 {
				sum += AUBTerm(sl.mirrorUtil(cr.entries[i].proc))
			}
		}
		if math.Abs(sum-1) <= eps {
			return true
		}
	}
	return false
}

// CheckInvariants audits the whole sharded structure: each shard ledger's own
// invariants, processor ownership, the atomic util/term mirrors, the route
// map, the cross registry, and the global violated counter. It takes every
// shard lock in ascending index order (the global lock order), then crossMu.
func (sl *ShardedLedger) CheckInvariants() error {
	all := sl.allMask()
	sl.lockMask(all)
	defer sl.unlockMask(all)
	sl.crossMu.Lock()
	defer sl.crossMu.Unlock()

	shardMask := make(map[JobRef]uint64)
	for s := range sl.shards {
		l := sl.shards[s].l
		if err := l.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		if sl.shards[s].epoch.Load()&1 != 0 {
			return fmt.Errorf("sched: shard %d epoch odd (%d) with no writer", s, sl.shards[s].epoch.Load())
		}
		if sl.shards[s].prevViolated != l.violated {
			return fmt.Errorf("sched: shard %d pushed violated %d, ledger holds %d", s, sl.shards[s].prevViolated, l.violated)
		}
		for k, rec := range l.jobs {
			ref := JobRef{Task: l.taskNames[k.tid], Job: k.job}
			shardMask[ref] |= 1 << uint(s)
			for _, e := range rec.entries {
				if int(sl.procShard[e.proc]) != s {
					return fmt.Errorf("sched: shard %d holds entry %s/%d on processor %d owned by shard %d",
						s, ref, e.stage, e.proc, sl.procShard[e.proc])
				}
			}
		}
	}

	for p := 0; p < sl.numProcs; p++ {
		l := sl.shards[sl.procShard[p]].l
		if got, want := sl.mirrorUtil(p), l.util[p]; math.Float64bits(got) != math.Float64bits(want) {
			return fmt.Errorf("sched: processor %d util mirror %g, shard holds %g", p, got, want)
		}
		if got, want := sl.mirrorTerm(p), l.term[p]; math.Float64bits(got) != math.Float64bits(want) {
			return fmt.Errorf("sched: processor %d term mirror %g, shard holds %g", p, got, want)
		}
	}
	// Every other shard must carry zero utilization on processors it does not
	// own.
	for s := range sl.shards {
		for p := 0; p < sl.numProcs; p++ {
			if int(sl.procShard[p]) != s && sl.shards[s].l.util[p] != 0 {
				return fmt.Errorf("sched: shard %d carries utilization %g on foreign processor %d", s, sl.shards[s].l.util[p], p)
			}
		}
	}

	routed := make(map[JobRef]uint64)
	for i := range sl.routes {
		st := &sl.routes[i]
		st.mu.Lock()
		for ref, mask := range st.m {
			routed[ref] = mask
		}
		st.mu.Unlock()
	}
	if len(routed) != len(shardMask) {
		return fmt.Errorf("sched: route map holds %d jobs, shards hold %d", len(routed), len(shardMask))
	}
	for ref, want := range shardMask {
		if got, ok := routed[ref]; !ok || got != want {
			return fmt.Errorf("sched: job %s routed to mask %#x, shards hold %#x", ref, routed[ref], want)
		}
	}

	// Cross registry: exactly the multi-shard jobs, with entries matching the
	// per-shard partials and correct per-processor registration.
	crossFlags := 0
	for ref, mask := range shardMask {
		cr := sl.cross.jobs[ref]
		if bits.OnesCount64(mask) > 1 && cr == nil {
			return fmt.Errorf("sched: multi-shard job %s missing from cross registry", ref)
		}
		if bits.OnesCount64(mask) == 1 && cr != nil {
			return fmt.Errorf("sched: single-shard job %s present in cross registry", ref)
		}
	}
	if int(sl.crossCount.Load()) != len(sl.cross.jobs) {
		return fmt.Errorf("sched: crossCount %d, registry holds %d", sl.crossCount.Load(), len(sl.cross.jobs))
	}
	for ref, cr := range sl.cross.jobs {
		if cr.mask != shardMask[ref] {
			return fmt.Errorf("sched: cross job %s has mask %#x, shards hold %#x", ref, cr.mask, shardMask[ref])
		}
		type entryState struct {
			stage, proc int
			completed   bool
			removed     RemovalReason
		}
		counts := make(map[entryState]int)
		partials := 0
		for m := cr.mask; m != 0; m &= m - 1 {
			l := sl.shards[bits.TrailingZeros64(m)].l
			rec, _, ok := l.lookupJob(ref)
			if !ok {
				return fmt.Errorf("sched: cross job %s missing its partial in shard %d", ref, bits.TrailingZeros64(m))
			}
			for _, e := range rec.entries {
				counts[entryState{e.stage, e.proc, e.completed, e.removed}]++
				partials++
			}
		}
		if partials != len(cr.entries) {
			return fmt.Errorf("sched: cross job %s mirrors %d entries, partials hold %d", ref, len(cr.entries), partials)
		}
		for i := range cr.entries {
			st := entryState{cr.entries[i].stage, cr.entries[i].proc, cr.entries[i].completed, cr.entries[i].removed}
			if counts[st] == 0 {
				return fmt.Errorf("sched: cross job %s mirror entry stage %d proc %d disagrees with partials", ref, st.stage, st.proc)
			}
			counts[st]--
		}
		for _, p := range cr.procs {
			found := 0
			for _, c := range sl.cross.byProc[p] {
				if c == cr {
					found++
				}
			}
			if found != 1 {
				return fmt.Errorf("sched: cross job %s registered %d times on processor %d", ref, found, p)
			}
		}
		want := crossCounted(cr) && sl.crossSumExceeds(cr, nil, nil)
		if cr.violated != want {
			return fmt.Errorf("sched: cross job %s violated flag %v, recomputed %v", ref, cr.violated, want)
		}
		if cr.violated {
			crossFlags++
		}
	}
	for p := 0; p < sl.numProcs; p++ {
		if int(sl.crossOnProc[p].Load()) != len(sl.cross.byProc[p]) {
			return fmt.Errorf("sched: processor %d crossOnProc %d, index holds %d", p, sl.crossOnProc[p].Load(), len(sl.cross.byProc[p]))
		}
		for _, cr := range sl.cross.byProc[p] {
			if sl.cross.jobs[cr.ref] != cr {
				return fmt.Errorf("sched: processor %d cross index holds unregistered job %s", p, cr.ref)
			}
		}
	}

	wantViolated := crossFlags
	for s := range sl.shards {
		wantViolated += sl.shards[s].l.violated
	}
	if got := sl.violated.Load(); got != int64(wantViolated) {
		return fmt.Errorf("sched: global violated %d, recomputed %d (shards + %d cross flags)", got, wantViolated, crossFlags)
	}

	// The O(1) violated gate must agree with the full-scan reference on the
	// empty candidate, away from floating-point boundary states.
	fast := sl.violated.Load() == 0
	if ref := sl.referenceAdmissibleAll(nil); fast != ref && !sl.nearBoundaryAllLocked(1e-9) {
		return fmt.Errorf("sched: violated gate says admissible=%v, reference says %v", fast, ref)
	}
	return nil
}
