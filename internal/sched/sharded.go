package sched

// Sharded admission plane.
//
// ShardedLedger splits the AUB ledger into N shards so independent admission
// traffic takes independent locks. The shards partition the *processors* into
// contiguous blocks (shard(p) = p·N/numProcs); a signature group whose
// processors fall inside one block lives entirely in that shard, so
// single-shard candidates — the overwhelming majority, since a task's visit
// signature is fixed — admit inside one shard lock. Per-processor synthetic
// utilization is authoritative only in the shard owning the processor, which
// keeps every shard's util/term caches exact no matter how jobs span shards.
//
// Jobs whose placement spans blocks ("cross jobs") are split into per-shard
// partial records (keeping per-processor accounting exact) plus one
// authoritative full-signature record in the cross registry, evaluated
// against lock-free atomic mirrors of the per-processor AUB terms. Cross
// candidates use optimistic admission: a seqlock-validated epoch snapshot
// computes the candidate's own condition lock-free and rejects without any
// lock; plausible admits validate-or-retry under the involved shard locks
// (bounded retries, then the ordered-lock path unconditionally), so admission
// never livelocks.
//
// Lock-ordering invariant (see also the package comment in task.go): shard
// mutexes are only ever acquired in ascending shard index; crossMu nests
// inside the shard locks; route-stripe mutexes and the journal mutex are
// leaves (acquired last, never while waiting on any other ledger lock).
// AuditLedger/CheckInvariants and every other whole-ledger operation take all
// shard locks in that fixed global order.

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// maxShards bounds the shard count so a job's shard set fits a uint64 mask.
const maxShards = 64

// routeStripeCount is the number of stripes in the job→shard-mask route map.
// A power of two so the stripe hash is a mask.
const routeStripeCount = 32

// ledgerShard is one shard: a full-width Ledger whose utilization is
// authoritative for the shard's processor block, its own mutex, and a seqlock
// epoch (odd while a mutation is in progress) validating optimistic readers.
type ledgerShard struct {
	mu    sync.Mutex //rtmw:lockrank 1 indexed
	l     *Ledger
	epoch atomic.Uint64
	// prevViolated is the shard ledger's violated count last pushed into the
	// global counter, maintained under mu.
	prevViolated int
	// Pad to keep hot shard state on distinct cache lines.
	_ [64]byte
}

func (sh *ledgerShard) beginWrite() { sh.epoch.Add(1) }
func (sh *ledgerShard) endWrite()   { sh.epoch.Add(1) }

// routeStripe is one stripe of the job→shard-mask index consulted by
// reference-keyed operations (expiry, withdrawal, completion) to find the
// shards holding a job.
type routeStripe struct {
	mu sync.Mutex //rtmw:lockrank 3 indexed
	m  map[JobRef]uint64
	_  [40]byte
}

// crossEntry mirrors one contribution of a cross-shard job in the cross
// registry: enough state to re-derive the job's full processor-visit
// signature and in-flight status without visiting the per-shard partials.
type crossEntry struct {
	stage     int
	proc      int
	completed bool
	removed   RemovalReason
}

// crossRec is the authoritative full-signature record of one cross-shard
// job. The per-shard partial records keep the processor accounting exact;
// this record carries the whole-job AUB condition, which no single shard can
// evaluate alone.
type crossRec struct {
	ref       JobRef
	mask      uint64
	permanent bool
	kind      TaskKind
	entries   []crossEntry
	// procs is the distinct-processor membership of byProc, fixed at insert.
	procs []int
	// violated reports whether the job's condition currently exceeds the
	// bound (counted in the global violated counter).
	violated bool
	// stamp dedupes multi-processor visits within one scan.
	stamp uint64
}

// crossSet is the cross-shard job registry, guarded by ShardedLedger.crossMu.
type crossSet struct {
	jobs   map[JobRef]*crossRec
	byProc [][]*crossRec
	stamp  uint64
	// signature scratch for condition evaluation.
	sumProcs  []int
	sumCounts []int
}

// ledgerOpKind enumerates journaled mutations for the linearization-replay
// differential test.
type ledgerOpKind uint8

const (
	opTestAndAdd ledgerOpKind = iota + 1
	opAddJob
	opExpireJob
	opWithdrawJob
	opRemoveTask
	opMarkComplete
	opResetEntry
	opResetReported
	opRelocate
)

// ledgerOp is one journaled mutation with its observed result. The journal
// order is a valid linearization: every pair of non-commuting operations
// holds a common lock while appending.
type ledgerOp struct {
	kind      ledgerOpKind
	ref       JobRef
	task      string
	taskKind  TaskKind
	placement []PlacedStage
	permanent bool
	expiry    time.Duration
	stage     int
	entry     EntryRef
	decision  bool
	n         int
}

// opJournal records mutations under the mutating operation's locks (its own
// mutex is the innermost lock in the ledger order).
type opJournal struct {
	mu  sync.Mutex //rtmw:lockrank 3
	ops []ledgerOp
}

// ShardedLedgerStats counts cross-shard admission activity. Single-shard
// operations are deliberately not counted: a shared counter on the hot path
// would serialize the very traffic sharding parallelizes.
type ShardedLedgerStats struct {
	// CrossAdmits counts committed cross-shard admissions.
	CrossAdmits uint64
	// OptimisticRejects counts cross candidates rejected lock-free from a
	// validated epoch snapshot.
	OptimisticRejects uint64
	// EpochRetries counts optimistic snapshots invalidated by a concurrent
	// shard mutation before falling back to the ordered-lock path.
	EpochRetries uint64
}

// ShardedLedger is the sharded synthetic-utilization ledger: a drop-in
// admission plane with the Ledger method set plus the atomic TestAndAdd
// admission path, safe for concurrent use. With one shard every operation
// delegates to a single plain Ledger, making decisions and floating-point
// state bit-identical to the unsharded ledger.
type ShardedLedger struct {
	numProcs  int
	nshards   int
	procShard []int32

	shards []ledgerShard

	// violated is the global count of in-flight condition violations: the sum
	// of every shard ledger's violated counter plus the flagged cross jobs.
	// Any positive value rejects all candidates (monotonicity: adding
	// utilization cannot repair a violated condition). Shard-local partial
	// groups may over-flag a cross job its full record also flags; that is
	// harmless, because a partial sum above the bound implies the full sum is
	// too.
	violated atomic.Int64

	// utilBits/termBits mirror each owning shard's util/term as float bits,
	// stored under the owner's lock after every settle; readers (the
	// optimistic cross path, cross-registry evaluation, Util/Utils) load them
	// without locks.
	utilBits []atomic.Uint64
	termBits []atomic.Uint64

	// crossOnProc counts cross jobs registered on each processor; operations
	// touching a processor with a zero count skip crossMu entirely.
	crossOnProc []atomic.Int32
	crossCount  atomic.Int64

	crossMu sync.Mutex //rtmw:lockrank 2
	cross   crossSet

	routes [routeStripeCount]routeStripe

	// journal, when enabled, records every mutation for linearization replay.
	journal *opJournal

	scratch sync.Pool // *multiScratch

	crossAdmits       atomic.Uint64
	optimisticRejects atomic.Uint64
	epochRetries      atomic.Uint64
}

// multiScratch is pooled per-call scratch for multi-shard operations.
type multiScratch struct {
	part    []PlacedStage
	touched []int
	delta   []float64
	tent    []float64
	procs   []int
}

// NewShardedLedger returns an empty sharded ledger over numProcs processors
// split into shards contiguous processor blocks. The shard count is clamped
// to [1, min(numProcs, 64)].
func NewShardedLedger(numProcs, shards int) *ShardedLedger {
	if shards < 1 {
		shards = 1
	}
	if shards > numProcs {
		shards = numProcs
	}
	if shards > maxShards {
		shards = maxShards
	}
	sl := &ShardedLedger{
		numProcs:    numProcs,
		nshards:     shards,
		procShard:   make([]int32, numProcs),
		shards:      make([]ledgerShard, shards),
		utilBits:    make([]atomic.Uint64, numProcs),
		termBits:    make([]atomic.Uint64, numProcs),
		crossOnProc: make([]atomic.Int32, numProcs),
	}
	for p := 0; p < numProcs; p++ {
		sl.procShard[p] = int32(p * shards / numProcs)
	}
	for s := range sl.shards {
		sl.shards[s].l = NewLedger(numProcs)
	}
	sl.cross.jobs = make(map[JobRef]*crossRec)
	sl.cross.byProc = make([][]*crossRec, numProcs)
	for i := range sl.routes {
		sl.routes[i].m = make(map[JobRef]uint64)
	}
	sl.scratch.New = func() any {
		return &multiScratch{
			part:    make([]PlacedStage, 0, 16),
			touched: make([]int, 0, 16),
			delta:   make([]float64, 0, 16),
			tent:    make([]float64, 0, 16),
			procs:   make([]int, 0, 16),
		}
	}
	return sl
}

// NumProcs returns the number of processors the ledger tracks.
func (sl *ShardedLedger) NumProcs() int { return sl.numProcs }

// NumShards returns the shard count.
func (sl *ShardedLedger) NumShards() int { return sl.nshards }

// StatsSnapshot returns the cross-shard admission counters.
func (sl *ShardedLedger) StatsSnapshot() ShardedLedgerStats {
	return ShardedLedgerStats{
		CrossAdmits:       sl.crossAdmits.Load(),
		OptimisticRejects: sl.optimisticRejects.Load(),
		EpochRetries:      sl.epochRetries.Load(),
	}
}

// shardOf returns the shard owning a processor.
func (sl *ShardedLedger) shardOf(proc int) int { return int(sl.procShard[proc]) }

// maskOf returns the shard mask of a placement. Empty placements map to
// shard 0 so the job record still has a home.
func (sl *ShardedLedger) maskOf(placement []PlacedStage) uint64 {
	var mask uint64
	for _, p := range placement {
		mask |= 1 << uint(sl.procShard[p.Proc])
	}
	if mask == 0 {
		mask = 1
	}
	return mask
}

// lockMask acquires the shard locks named by mask in ascending index order —
// the package's global lock order.
func (sl *ShardedLedger) lockMask(mask uint64) {
	for m := mask; m != 0; m &= m - 1 {
		sl.shards[bits.TrailingZeros64(m)].mu.Lock()
	}
}

// unlockMask releases the shard locks named by mask.
func (sl *ShardedLedger) unlockMask(mask uint64) {
	for m := mask; m != 0; m &= m - 1 {
		sl.shards[bits.TrailingZeros64(m)].mu.Unlock()
	}
}

// beginWriteMask/endWriteMask bracket a mutation of every shard in mask for
// the seqlock epochs.
func (sl *ShardedLedger) beginWriteMask(mask uint64) {
	for m := mask; m != 0; m &= m - 1 {
		sl.shards[bits.TrailingZeros64(m)].beginWrite()
	}
}

func (sl *ShardedLedger) endWriteMask(mask uint64) {
	for m := mask; m != 0; m &= m - 1 {
		sl.shards[bits.TrailingZeros64(m)].endWrite()
	}
}

// allMask returns the mask naming every shard.
func (sl *ShardedLedger) allMask() uint64 {
	if sl.nshards == maxShards {
		return ^uint64(0)
	}
	return (1 << uint(sl.nshards)) - 1
}

// syncProc publishes a processor's util/term into the atomic mirrors. Caller
// holds the owning shard's lock.
func (sl *ShardedLedger) syncProc(proc int) {
	l := sl.shards[sl.procShard[proc]].l
	sl.utilBits[proc].Store(math.Float64bits(l.util[proc]))
	sl.termBits[proc].Store(math.Float64bits(l.term[proc]))
}

// syncPlacementProcs publishes the mirrors of every processor a placement
// touches. Duplicate processors store twice, which is idempotent and cheaper
// than deduplicating.
func (sl *ShardedLedger) syncPlacementProcs(placement []PlacedStage) {
	for _, p := range placement {
		sl.syncProc(p.Proc)
	}
}

// mirrorTerm loads a processor's AUB term from the atomic mirror.
func (sl *ShardedLedger) mirrorTerm(proc int) float64 {
	return math.Float64frombits(sl.termBits[proc].Load())
}

// mirrorUtil loads a processor's synthetic utilization from the atomic
// mirror.
func (sl *ShardedLedger) mirrorUtil(proc int) float64 {
	return math.Float64frombits(sl.utilBits[proc].Load())
}

// pushViolated publishes a shard ledger's violated-count delta into the
// global counter. Caller holds the shard's lock.
func (sl *ShardedLedger) pushViolated(sh *ledgerShard) {
	if d := sh.l.violated - sh.prevViolated; d != 0 {
		sl.violated.Add(int64(d))
		sh.prevViolated = sh.l.violated
	}
}

// Util returns the processor's current synthetic utilization from the atomic
// mirror (lock-free; exact, since mirrors are stored under the owning shard's
// lock after every settle).
func (sl *ShardedLedger) Util(proc int) float64 {
	if proc < 0 || proc >= sl.numProcs {
		return 0
	}
	return sl.mirrorUtil(proc)
}

// Utils returns a copy of all per-processor synthetic utilizations.
func (sl *ShardedLedger) Utils() []float64 {
	out := make([]float64, sl.numProcs)
	for p := range out {
		out[p] = sl.mirrorUtil(p)
	}
	return out
}

// stripeFor hashes a job reference onto its route stripe (FNV-1a over the
// task name and job number).
func (sl *ShardedLedger) stripeFor(ref JobRef) *routeStripe {
	h := uint64(14695981039346656037)
	for i := 0; i < len(ref.Task); i++ {
		h ^= uint64(ref.Task[i])
		h *= 1099511628211
	}
	j := uint64(ref.Job)
	for i := 0; i < 8; i++ {
		h ^= (j >> (8 * uint(i))) & 0xff
		h *= 1099511628211
	}
	return &sl.routes[h&(routeStripeCount-1)]
}

// routeGet returns the shard mask a job was recorded under.
func (sl *ShardedLedger) routeGet(ref JobRef) (uint64, bool) {
	st := sl.stripeFor(ref)
	st.mu.Lock()
	mask, ok := st.m[ref]
	st.mu.Unlock()
	return mask, ok
}

// routePutIfAbsent records a job's shard mask, failing if the job is already
// routed (a double admission). Stripe locks are leaves: callers hold the
// involved shard locks.
func (sl *ShardedLedger) routePutIfAbsent(ref JobRef, mask uint64) bool {
	st := sl.stripeFor(ref)
	st.mu.Lock()
	if _, ok := st.m[ref]; ok {
		st.mu.Unlock()
		return false
	}
	st.m[ref] = mask
	st.mu.Unlock()
	return true
}

// routeSet unconditionally records a job's shard mask (relocation).
func (sl *ShardedLedger) routeSet(ref JobRef, mask uint64) {
	st := sl.stripeFor(ref)
	st.mu.Lock()
	st.m[ref] = mask
	st.mu.Unlock()
}

// routeDelete forgets a job's route.
func (sl *ShardedLedger) routeDelete(ref JobRef) {
	st := sl.stripeFor(ref)
	st.mu.Lock()
	delete(st.m, ref)
	st.mu.Unlock()
}

// enableJournal turns on mutation journaling for linearization-replay tests.
// Must be called before any concurrent use.
func (sl *ShardedLedger) enableJournal() { sl.journal = &opJournal{} }

// journalOps snapshots the journal.
func (sl *ShardedLedger) journalOps() []ledgerOp {
	if sl.journal == nil {
		return nil
	}
	sl.journal.mu.Lock()
	out := append([]ledgerOp(nil), sl.journal.ops...)
	sl.journal.mu.Unlock()
	return out
}

// journalAppend records one mutation. Called while the mutation's locks are
// still held so the journal order is a valid linearization.
func (sl *ShardedLedger) journalAppend(op ledgerOp) {
	if sl.journal == nil {
		return
	}
	op.placement = append([]PlacedStage(nil), op.placement...)
	sl.journal.mu.Lock()
	sl.journal.ops = append(sl.journal.ops, op)
	sl.journal.mu.Unlock()
}
