// Package sched implements the real-time scheduling theory underlying the
// middleware: the end-to-end task model, aperiodic utilization bound (AUB)
// schedulability analysis with synthetic-utilization accounting and the idle
// resetting rule, and End-to-end Deadline Monotonic Scheduling (EDMS)
// priority assignment.
//
// The model follows Zhang, Gill, Lu (WUCSE-2008-5): a task T_i is a chain of
// subtasks T_i,j placed on different processors; the release of subtask j is
// triggered by the completion of subtask j-1; the task is subject to an
// end-to-end deadline. Periodic tasks have a fixed interarrival time (their
// period); aperiodic tasks arrive at arbitrary instants and every arrival is
// treated as an independent single-release task.
//
// All virtual timestamps in this package are time.Duration offsets from the
// start of an experiment; real-time bindings convert wall-clock instants to
// the same representation.
//
// # Concurrency
//
// The plain Ledger is not safe for concurrent use; callers serialize access
// (the simulation core is single-goroutine by construction). ShardedLedger
// is the concurrent admission plane: it partitions processors into shards,
// each with its own lock, and is safe for concurrent use by any number of
// goroutines. Its internal lock-ordering invariant — shard mutexes in
// ascending shard index, then crossMu, then route-stripe/journal leaf
// mutexes — is documented at the top of sharded.go; any new whole-ledger
// operation must follow it.
package sched

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// TaskKind distinguishes periodic from aperiodic tasks.
type TaskKind int

// Task kinds. Enums start at one so the zero value is invalid and cannot be
// mistaken for a real kind.
const (
	Periodic TaskKind = iota + 1
	Aperiodic
)

// String returns the lowercase name of the kind.
func (k TaskKind) String() string {
	switch k {
	case Periodic:
		return "periodic"
	case Aperiodic:
		return "aperiodic"
	default:
		return fmt.Sprintf("TaskKind(%d)", int(k))
	}
}

// Subtask is one stage of an end-to-end task: an execution demand bound to a
// home processor, optionally replicated on other processors for load
// balancing.
type Subtask struct {
	// Index is the zero-based position of the stage within its task chain.
	Index int
	// Exec is the worst-case execution time of every subjob of this stage.
	Exec time.Duration
	// Processor is the home processor the stage was originally assigned to.
	Processor int
	// Replicas lists the processors hosting duplicates of the stage's
	// component, excluding the home processor. The stage may be re-allocated
	// only to one of these processors.
	Replicas []int
}

// Candidates returns the set of processors the stage may execute on: the
// home processor followed by all replicas. The returned slice is freshly
// allocated and safe for the caller to modify.
func (s Subtask) Candidates() []int {
	out := make([]int, 0, 1+len(s.Replicas))
	out = append(out, s.Processor)
	out = append(out, s.Replicas...)
	return out
}

// Task is an end-to-end task: a chain of subtasks with an end-to-end
// deadline. The execution time of every subtask, the end-to-end deadline,
// and (for periodic tasks) the period are known a priori, per the paper's
// task model.
type Task struct {
	// ID uniquely names the task within a workload.
	ID string
	// Kind is Periodic or Aperiodic.
	Kind TaskKind
	// Period is the interarrival time of consecutive jobs of a periodic
	// task. It is zero for aperiodic tasks.
	Period time.Duration
	// Deadline is the end-to-end deadline (maximum allowable response time)
	// of every job, relative to the job's arrival.
	Deadline time.Duration
	// Phase is the arrival offset of the first job of a periodic task, or
	// the arrival time of the single job of a fully specified aperiodic
	// arrival; workload generators use it to stagger releases.
	Phase time.Duration
	// MeanInterarrival is the mean of the exponential interarrival
	// distribution of an aperiodic task (Poisson arrivals). Zero for
	// periodic tasks.
	MeanInterarrival time.Duration
	// Subtasks is the stage chain, ordered by Index.
	Subtasks []Subtask
	// Priority is the EDMS priority assigned to every subjob of the task.
	// Smaller values are higher priority. AssignEDMSPriorities fills it in.
	Priority int
}

// NumStages returns the number of subtasks in the chain.
func (t *Task) NumStages() int { return len(t.Subtasks) }

// StageUtil returns the synthetic utilization contribution of stage i:
// C_i / D (execution time over end-to-end deadline).
func (t *Task) StageUtil(i int) float64 {
	if t.Deadline <= 0 {
		return 0
	}
	return float64(t.Subtasks[i].Exec) / float64(t.Deadline)
}

// TotalUtil returns the sum of the task's per-stage synthetic utilization
// contributions. It is the per-job quantity aggregated by the accepted
// utilization ratio metric.
func (t *Task) TotalUtil() float64 {
	var u float64
	for i := range t.Subtasks {
		u += t.StageUtil(i)
	}
	return u
}

// Validate checks the structural invariants of the task definition.
func (t *Task) Validate() error {
	switch {
	case t.ID == "":
		return errors.New("sched: task has empty ID")
	case t.Kind != Periodic && t.Kind != Aperiodic:
		return fmt.Errorf("sched: task %s: invalid kind %d", t.ID, int(t.Kind))
	case t.Deadline <= 0:
		return fmt.Errorf("sched: task %s: non-positive deadline %v", t.ID, t.Deadline)
	case t.Kind == Periodic && t.Period <= 0:
		return fmt.Errorf("sched: periodic task %s: non-positive period %v", t.ID, t.Period)
	case t.Kind == Aperiodic && t.Period != 0:
		return fmt.Errorf("sched: aperiodic task %s: has period %v", t.ID, t.Period)
	case len(t.Subtasks) == 0:
		return fmt.Errorf("sched: task %s: no subtasks", t.ID)
	}
	for i, st := range t.Subtasks {
		if st.Index != i {
			return fmt.Errorf("sched: task %s: subtask %d has index %d", t.ID, i, st.Index)
		}
		if st.Exec <= 0 {
			return fmt.Errorf("sched: task %s: subtask %d has non-positive execution time %v", t.ID, i, st.Exec)
		}
		if st.Processor < 0 {
			return fmt.Errorf("sched: task %s: subtask %d has negative processor %d", t.ID, i, st.Processor)
		}
		for _, r := range st.Replicas {
			if r == st.Processor {
				return fmt.Errorf("sched: task %s: subtask %d replica duplicates home processor %d", t.ID, i, r)
			}
			if r < 0 {
				return fmt.Errorf("sched: task %s: subtask %d has negative replica processor %d", t.ID, i, r)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the task. Workload code hands tasks across
// package boundaries; cloning keeps the slices from aliasing (copy slices at
// boundaries).
func (t *Task) Clone() *Task {
	c := *t
	c.Subtasks = make([]Subtask, len(t.Subtasks))
	for i, st := range t.Subtasks {
		st.Replicas = append([]int(nil), st.Replicas...)
		c.Subtasks[i] = st
	}
	return &c
}

// AssignEDMSPriorities assigns End-to-end Deadline Monotonic Scheduling
// priorities to the tasks in place: a subtask has higher priority (smaller
// value) if it belongs to a task with a shorter end-to-end deadline. Ties
// are broken by task ID so the assignment is deterministic. Priorities start
// at one.
func AssignEDMSPriorities(tasks []*Task) {
	order := make([]*Task, len(tasks))
	copy(order, tasks)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Deadline != order[j].Deadline {
			return order[i].Deadline < order[j].Deadline
		}
		return order[i].ID < order[j].ID
	})
	for i, t := range order {
		t.Priority = i + 1
	}
}

// JobRef identifies one release (job) of a task. Aperiodic arrivals are
// independent single-release tasks, so their Job numbers also increase per
// arrival.
type JobRef struct {
	// Task is the task ID.
	Task string
	// Job is the release sequence number, starting at zero.
	Job int64
}

// String formats the reference as "task#job".
func (r JobRef) String() string { return fmt.Sprintf("%s#%d", r.Task, r.Job) }
