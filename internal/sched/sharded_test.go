package sched

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// shardedTwinHarness drives a plain Ledger and a ShardedLedger through one
// identical random operation sequence — including cross-shard placements,
// admission-checked TestAndAdd, force AddJob overloads, relocation and task
// withdrawal — and after every mutation asserts that the two agree on
// utilizations, admission decisions, active jobs, and that the sharded
// structure passes its own invariant audit.
func shardedTwinHarness(t *testing.T, seed int64, shards, ops int, utilEq func(t *testing.T, step int, op string, plain, sharded float64)) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const procs = 6
	ref := NewLedger(procs)
	sl := NewShardedLedger(procs, shards)

	var live []JobRef
	nextJob := int64(0)

	randPlacement := func(maxUtil float64) []PlacedStage {
		stages := 1 + rng.Intn(3)
		pl := make([]PlacedStage, stages)
		for s := range pl {
			pl[s] = PlacedStage{Stage: s, Proc: rng.Intn(procs), Util: rng.Float64() * maxUtil}
		}
		return pl
	}

	check := func(step int, op string) {
		t.Helper()
		if err := sl.CheckInvariants(); err != nil {
			t.Fatalf("seed %d step %d after %s: %v", seed, step, op, err)
		}
		for p := 0; p < procs; p++ {
			utilEq(t, step, op, ref.Util(p), sl.Util(p))
		}
		for q := 0; q < 4; q++ {
			cand := randPlacement(0.5)
			want := ref.Admissible(cand)
			if got := sl.Admissible(cand); got != want {
				t.Fatalf("seed %d step %d after %s: sharded Admissible(%v)=%v, plain=%v",
					seed, step, op, cand, got, want)
			}
		}
		pa, sa := ref.ActiveJobs(), sl.ActiveJobs()
		if len(pa) != len(sa) {
			t.Fatalf("seed %d step %d after %s: plain has %d active jobs, sharded %d", seed, step, op, len(pa), len(sa))
		}
		for i := range pa {
			if pa[i] != sa[i] {
				t.Fatalf("seed %d step %d after %s: active jobs diverge at %d: %v vs %v", seed, step, op, i, pa[i], sa[i])
			}
		}
	}

	for step := 0; step < ops; step++ {
		var op string
		switch rng.Intn(12) {
		case 0, 1: // Force AddJob so overloaded (violating) states are exercised.
			r := JobRef{Task: fmt.Sprintf("t%d", rng.Intn(5)), Job: nextJob}
			nextJob++
			kind := Aperiodic
			if rng.Intn(2) == 0 {
				kind = Periodic
			}
			permanent := rng.Intn(5) == 0
			pl := randPlacement(0.6)
			if err := ref.AddJob(r, kind, pl, permanent, time.Duration(step)*time.Millisecond); err != nil {
				t.Fatalf("seed %d step %d: plain AddJob: %v", seed, step, err)
			}
			if err := sl.AddJob(r, kind, pl, permanent, time.Duration(step)*time.Millisecond); err != nil {
				t.Fatalf("seed %d step %d: sharded AddJob: %v", seed, step, err)
			}
			live = append(live, r)
			op = "AddJob"
		case 2, 3: // TestAndAdd: the sharded atomic admission path against the
			// plain test-then-add pair.
			r := JobRef{Task: fmt.Sprintf("t%d", rng.Intn(5)), Job: nextJob}
			nextJob++
			pl := randPlacement(0.4)
			want := ref.Admissible(pl)
			if want {
				if err := ref.AddJob(r, Aperiodic, pl, false, time.Duration(step)*time.Millisecond); err != nil {
					t.Fatalf("seed %d step %d: plain AddJob after admit: %v", seed, step, err)
				}
			}
			got, err := sl.TestAndAdd(r, Aperiodic, pl, false, time.Duration(step)*time.Millisecond)
			if err != nil {
				t.Fatalf("seed %d step %d: TestAndAdd: %v", seed, step, err)
			}
			if got != want {
				t.Fatalf("seed %d step %d: TestAndAdd(%v)=%v, plain admission=%v", seed, step, pl, got, want)
			}
			if got {
				live = append(live, r)
			}
			op = "TestAndAdd"
		case 4: // ExpireJob (sometimes of an unknown job).
			r := JobRef{Task: "nope", Job: -1}
			if len(live) > 0 && rng.Intn(8) != 0 {
				i := rng.Intn(len(live))
				r = live[i]
				live = append(live[:i], live[i+1:]...)
			}
			if pn, sn := ref.ExpireJob(r), sl.ExpireJob(r); pn != sn {
				t.Fatalf("seed %d step %d: ExpireJob(%s) removed %d (plain) vs %d (sharded)", seed, step, r, pn, sn)
			}
			op = "ExpireJob"
		case 5: // WithdrawJob.
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			r := live[i]
			live = append(live[:i], live[i+1:]...)
			if pn, sn := ref.WithdrawJob(r), sl.WithdrawJob(r); pn != sn {
				t.Fatalf("seed %d step %d: WithdrawJob(%s) removed %d (plain) vs %d (sharded)", seed, step, r, pn, sn)
			}
			op = "WithdrawJob"
		case 6: // MarkComplete on a random live job and stage.
			if len(live) == 0 {
				continue
			}
			r := live[rng.Intn(len(live))]
			stage := rng.Intn(3)
			ref.MarkComplete(r, stage)
			sl.MarkComplete(r, stage)
			op = "MarkComplete"
		case 7: // ResetEntry via CompletedOn, as the idle resetters do.
			proc := rng.Intn(procs)
			inclP := rng.Intn(2) == 0
			pres, sres := ref.CompletedOn(proc, inclP), sl.CompletedOn(proc, inclP)
			if len(pres) != len(sres) {
				t.Fatalf("seed %d step %d: CompletedOn(%d) %d entries (plain) vs %d (sharded)", seed, step, proc, len(pres), len(sres))
			}
			for i := range pres {
				if pres[i] != sres[i] {
					t.Fatalf("seed %d step %d: CompletedOn(%d)[%d] %v (plain) vs %v (sharded)", seed, step, proc, i, pres[i], sres[i])
				}
				if pok, sok := ref.ResetEntry(pres[i]), sl.ResetEntry(sres[i]); pok != sok {
					t.Fatalf("seed %d step %d: ResetEntry(%v) %v (plain) vs %v (sharded)", seed, step, pres[i], pok, sok)
				}
			}
			op = "ResetEntry"
		case 8: // ResetReported on a raw random reference (mostly misses).
			if len(live) == 0 {
				continue
			}
			er := EntryRef{Ref: live[rng.Intn(len(live))], Stage: rng.Intn(3), Proc: rng.Intn(procs)}
			if pok, sok := ref.ResetReported(er), sl.ResetReported(er); pok != sok {
				t.Fatalf("seed %d step %d: ResetReported(%v) %v (plain) vs %v (sharded)", seed, step, er, pok, sok)
			}
			op = "ResetReported"
		case 9, 10: // Relocate a live job, often across shard boundaries.
			if len(live) == 0 {
				continue
			}
			r := live[rng.Intn(len(live))]
			pl := randPlacement(0.4)
			perr := ref.Relocate(r, pl)
			serr := sl.Relocate(r, pl)
			if (perr == nil) != (serr == nil) {
				t.Fatalf("seed %d step %d: Relocate(%s) plain err %v, sharded err %v", seed, step, r, perr, serr)
			}
			op = "Relocate"
		case 11: // RemoveTask withdraws every job of one task name.
			task := fmt.Sprintf("t%d", rng.Intn(5))
			if pn, sn := ref.RemoveTask(task), sl.RemoveTask(task); pn != sn {
				t.Fatalf("seed %d step %d: RemoveTask(%s) removed %d (plain) vs %d (sharded)", seed, step, task, pn, sn)
			}
			kept := live[:0]
			for _, r := range live {
				if r.Task != task {
					kept = append(kept, r)
				}
			}
			live = kept
			op = "RemoveTask"
		}
		check(step, op)
	}
}

// TestShardedLedgerDifferential is the sharded-vs-reference differential
// property test: under random operation sequences spanning shard boundaries,
// the sharded ledger must be decision- and state-equivalent to the plain
// ledger. Utilizations may drift by float-rounding only where a cross-shard
// relocation re-accumulates a processor's sum.
func TestShardedLedgerDifferential(t *testing.T) {
	approx := func(t *testing.T, step int, op string, plain, sharded float64) {
		t.Helper()
		if math.Abs(plain-sharded) > 1e-9 {
			t.Fatalf("step %d after %s: plain util %g, sharded %g", step, op, plain, sharded)
		}
	}
	for _, shards := range []int{2, 3, 6} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				shardedTwinHarness(t, seed, shards, 100, approx)
			}
		})
	}
}

// TestShardedLedgerSingleShardBitIdentical pins the delegation property the
// golden-metrics test relies on: with one shard, every operation routes
// through a single plain ledger, so per-processor utilizations stay
// bit-identical to the unsharded ledger at every step.
func TestShardedLedgerSingleShardBitIdentical(t *testing.T) {
	exact := func(t *testing.T, step int, op string, plain, sharded float64) {
		t.Helper()
		if math.Float64bits(plain) != math.Float64bits(sharded) {
			t.Fatalf("step %d after %s: plain util bits %x, sharded %x", step, op, math.Float64bits(plain), math.Float64bits(sharded))
		}
	}
	for seed := int64(0); seed < 6; seed++ {
		shardedTwinHarness(t, seed, 1, 100, exact)
	}
}

// TestShardedBatchEquivalence pins the SubmitBatch grouping contract: a
// mixed-shard batch admitted with per-shard lock grouping produces exactly
// the same decisions and ledger state as submitting the same candidates
// sequentially — and a registered cross-shard job forces the strict in-order
// fallback without changing the outcome.
func TestShardedBatchEquivalence(t *testing.T) {
	const procs, shards = 8, 4
	build := func(withCross bool) (*ShardedLedger, []BatchCandidate) {
		rng := rand.New(rand.NewSource(7))
		sl := NewShardedLedger(procs, shards)
		if withCross {
			// A cross-shard job spanning processors 0 and 7 disables grouping.
			ok, err := sl.TestAndAdd(JobRef{Task: "cross", Job: 0}, Aperiodic,
				[]PlacedStage{{Stage: 0, Proc: 0, Util: 0.2}, {Stage: 1, Proc: 7, Util: 0.2}}, false, time.Hour)
			if err != nil || !ok {
				t.Fatalf("seeding cross job: ok=%v err=%v", ok, err)
			}
		}
		var cands []BatchCandidate
		for i := 0; i < 40; i++ {
			// Single-shard placements scattered over all shards; utilizations
			// large enough that later candidates get rejected.
			base := 2 * rng.Intn(shards)
			pl := []PlacedStage{
				{Stage: 0, Proc: base, Util: 0.15 + 0.2*rng.Float64()},
				{Stage: 1, Proc: base + 1, Util: 0.15 + 0.2*rng.Float64()},
			}
			cands = append(cands, BatchCandidate{
				Ref: JobRef{Task: fmt.Sprintf("b%d", i%5), Job: int64(i)}, Kind: Aperiodic,
				Placement: pl, Expiry: time.Hour,
			})
		}
		return sl, cands
	}
	for _, withCross := range []bool{false, true} {
		name := "grouped"
		if withCross {
			name = "fallback-with-cross-job"
		}
		t.Run(name, func(t *testing.T) {
			batched, cands := build(withCross)
			sequential, _ := build(withCross)
			got := batched.TestAndAddBatch(cands)
			want := make([]bool, len(cands))
			for i, c := range cands {
				want[i], _ = sequential.TestAndAdd(c.Ref, c.Kind, c.Placement, c.Permanent, c.Expiry)
			}
			for i := range cands {
				if got[i] != want[i] {
					t.Fatalf("candidate %d: batch decision %v, sequential %v", i, got[i], want[i])
				}
			}
			for p := 0; p < procs; p++ {
				if bu, su := batched.Util(p), sequential.Util(p); math.Float64bits(bu) != math.Float64bits(su) {
					t.Fatalf("processor %d: batch util %g, sequential %g", p, bu, su)
				}
			}
			if err := batched.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// concurrentWorkload runs an admission-only mixed workload (TestAndAdd with
// single- and cross-shard placements, MarkComplete, ResetReported, expiry,
// withdrawal, RemoveTask) from several goroutines against a journaling
// sharded ledger and returns it for replay. Admission-checked traffic never
// creates a violated condition, so every pair of non-commuting operations
// holds a common shard lock while journaling, making the journal order a
// valid linearization.
func concurrentWorkload(t *testing.T, seed int64, procs, shards, workers, opsPer int) *ShardedLedger {
	t.Helper()
	sl := NewShardedLedger(procs, shards)
	sl.enableJournal()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*1000 + int64(w)))
			type ownedJob struct {
				ref JobRef
				pl  []PlacedStage
			}
			var owned []ownedJob
			nextJob := int64(0)
			task := func() string { return fmt.Sprintf("w%d-t%d", w, rng.Intn(3)) }
			for i := 0; i < opsPer; i++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // TestAndAdd, ~1/3 cross-shard.
					stages := 1 + rng.Intn(3)
					pl := make([]PlacedStage, stages)
					if rng.Intn(3) == 0 {
						for s := range pl {
							pl[s] = PlacedStage{Stage: s, Proc: rng.Intn(procs), Util: 0.05 * rng.Float64()}
						}
					} else {
						base := rng.Intn(shards) * (procs / shards)
						for s := range pl {
							pl[s] = PlacedStage{Stage: s, Proc: base + rng.Intn(procs/shards), Util: 0.05 * rng.Float64()}
						}
					}
					r := JobRef{Task: task(), Job: int64(w)*1_000_000 + nextJob}
					nextJob++
					ok, err := sl.TestAndAdd(r, Aperiodic, pl, false, time.Hour)
					if err != nil {
						t.Errorf("worker %d: TestAndAdd: %v", w, err)
						return
					}
					if ok {
						owned = append(owned, ownedJob{r, pl})
					}
				case 4, 5: // MarkComplete on an owned job.
					if len(owned) == 0 {
						continue
					}
					j := owned[rng.Intn(len(owned))]
					sl.MarkComplete(j.ref, j.pl[rng.Intn(len(j.pl))].Stage)
				case 6: // ResetReported on an owned entry.
					if len(owned) == 0 {
						continue
					}
					j := owned[rng.Intn(len(owned))]
					st := j.pl[rng.Intn(len(j.pl))]
					sl.ResetReported(EntryRef{Ref: j.ref, Stage: st.Stage, Proc: st.Proc})
				case 7: // ExpireJob an owned job.
					if len(owned) == 0 {
						continue
					}
					k := rng.Intn(len(owned))
					sl.ExpireJob(owned[k].ref)
					owned = append(owned[:k], owned[k+1:]...)
				case 8: // WithdrawJob an owned job.
					if len(owned) == 0 {
						continue
					}
					k := rng.Intn(len(owned))
					sl.WithdrawJob(owned[k].ref)
					owned = append(owned[:k], owned[k+1:]...)
				case 9: // RemoveTask one of this worker's task names.
					name := task()
					sl.RemoveTask(name)
					kept := owned[:0]
					for _, j := range owned {
						if j.ref.Task != name {
							kept = append(kept, j)
						}
					}
					owned = kept
				}
			}
		}()
	}
	wg.Wait()
	return sl
}

// replayJournal applies a sharded ledger's journal, in order, to a fresh
// plain ledger, failing if any recorded decision or removal count disagrees
// with what the plain ledger produces at the same point.
func replayJournal(t *testing.T, sl *ShardedLedger, procs int) *Ledger {
	t.Helper()
	l := NewLedger(procs)
	for i, op := range sl.journalOps() {
		switch op.kind {
		case opTestAndAdd:
			got := l.Admissible(op.placement)
			if got {
				if err := l.AddJob(op.ref, op.taskKind, op.placement, op.permanent, op.expiry); err != nil {
					t.Fatalf("journal[%d]: replay AddJob(%s): %v", i, op.ref, err)
				}
			}
			if got != op.decision {
				t.Fatalf("journal[%d]: TestAndAdd(%s) decided %v, replay decides %v", i, op.ref, op.decision, got)
			}
		case opAddJob:
			if err := l.AddJob(op.ref, op.taskKind, op.placement, op.permanent, op.expiry); err != nil {
				t.Fatalf("journal[%d]: replay AddJob(%s): %v", i, op.ref, err)
			}
		case opExpireJob:
			if n := l.ExpireJob(op.ref); n != op.n {
				t.Fatalf("journal[%d]: ExpireJob(%s) removed %d, replay removes %d", i, op.ref, op.n, n)
			}
		case opWithdrawJob:
			if n := l.WithdrawJob(op.ref); n != op.n {
				t.Fatalf("journal[%d]: WithdrawJob(%s) removed %d, replay removes %d", i, op.ref, op.n, n)
			}
		case opRemoveTask:
			if n := l.RemoveTask(op.task); n != op.n {
				t.Fatalf("journal[%d]: RemoveTask(%s) removed %d, replay removes %d", i, op.task, op.n, n)
			}
		case opMarkComplete:
			l.MarkComplete(op.ref, op.stage)
		case opResetEntry:
			if got := l.ResetEntry(op.entry); got != op.decision {
				t.Fatalf("journal[%d]: ResetEntry(%v) returned %v, replay returns %v", i, op.entry, op.decision, got)
			}
		case opResetReported:
			if got := l.ResetReported(op.entry); got != op.decision {
				t.Fatalf("journal[%d]: ResetReported(%v) returned %v, replay returns %v", i, op.entry, op.decision, got)
			}
		case opRelocate:
			if err := l.Relocate(op.ref, op.placement); err != nil {
				t.Fatalf("journal[%d]: replay Relocate(%s): %v", i, op.ref, err)
			}
		default:
			t.Fatalf("journal[%d]: unknown op kind %d", i, op.kind)
		}
	}
	return l
}

// TestShardedLedgerConcurrentLinearizable is the concurrent half of the
// differential property test (run under -race in CI): parallel goroutines
// drive admission, completion, idle resetting, expiry, withdrawal and task
// removal — including cross-shard candidates — and the journal of what the
// sharded ledger actually decided must replay exactly on a plain sequential
// ledger, ending in an identical state.
func TestShardedLedgerConcurrentLinearizable(t *testing.T) {
	const procs, shards, workers, opsPer = 8, 4, 4, 150
	for seed := int64(0); seed < 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sl := concurrentWorkload(t, seed, procs, shards, workers, opsPer)
			if err := sl.CheckInvariants(); err != nil {
				t.Fatalf("post-run audit: %v", err)
			}
			l := replayJournal(t, sl, procs)
			for p := 0; p < procs; p++ {
				if pu, su := l.Util(p), sl.Util(p); math.Float64bits(pu) != math.Float64bits(su) {
					t.Fatalf("processor %d: replay util %g, sharded %g", p, pu, su)
				}
			}
			pa, sa := l.ActiveJobs(), sl.ActiveJobs()
			if len(pa) != len(sa) {
				t.Fatalf("replay has %d active jobs, sharded %d", len(pa), len(sa))
			}
			for i := range pa {
				if pa[i] != sa[i] {
					t.Fatalf("active jobs diverge at %d: %v vs %v", i, pa[i], sa[i])
				}
			}
		})
	}
}

// TestShardedRemoveTaskVsParallelSubmit races RemoveTask against parallel
// TestAndAdd on the same signature group and pins the lifecycle accounting:
// every admitted job is either withdrawn by a RemoveTask sweep or still
// active at the end — zero lost jobs — and the ledger passes a full audit.
func TestShardedRemoveTaskVsParallelSubmit(t *testing.T) {
	const procs, shards, workers, jobsPer = 8, 4, 4, 200
	sl := NewShardedLedger(procs, shards)
	// Every submitter uses the same two-processor signature (one shard), the
	// worst case for the per-group contention the sharding is meant to keep
	// correct.
	placement := []PlacedStage{{Stage: 0, Proc: 0, Util: 1e-6}, {Stage: 1, Proc: 1, Util: 1e-6}}
	var admitted, withdrawnEntries atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < jobsPer; i++ {
				ref := JobRef{Task: "burst", Job: int64(w)*jobsPer + int64(i)}
				ok, err := sl.TestAndAdd(ref, Aperiodic, placement, false, time.Hour)
				if err != nil {
					t.Errorf("worker %d: TestAndAdd: %v", w, err)
					return
				}
				if ok {
					admitted.Add(1)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			withdrawnEntries.Add(int64(sl.RemoveTask("burst")))
		}
	}()
	wg.Wait()
	withdrawnEntries.Add(int64(sl.RemoveTask("burst")))
	if err := sl.CheckInvariants(); err != nil {
		t.Fatalf("post-run audit: %v", err)
	}
	if rem := len(sl.ActiveJobs()); rem != 0 {
		t.Fatalf("%d jobs still active after final RemoveTask", rem)
	}
	// Each admitted job carries exactly len(placement) contributions, all
	// withdrawn by some RemoveTask sweep.
	if got, want := withdrawnEntries.Load(), admitted.Load()*int64(len(placement)); got != want {
		t.Fatalf("RemoveTask withdrew %d contributions, %d admissions should yield %d — jobs lost or duplicated",
			got, admitted.Load(), want)
	}
}
