package sched

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// differentialHarness drives one ledger through a random operation sequence
// and, after every mutation, asserts that the indexed Admissible agrees with
// the full-scan referenceAdmissible on a batch of random candidate
// placements, and that CheckInvariants (which audits every index) holds.
func differentialHarness(t *testing.T, seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const procs = 6
	l := NewLedger(procs)

	var live []JobRef
	nextJob := int64(0)

	randPlacement := func(maxUtil float64) []PlacedStage {
		stages := 1 + rng.Intn(3)
		pl := make([]PlacedStage, stages)
		for s := range pl {
			pl[s] = PlacedStage{Stage: s, Proc: rng.Intn(procs), Util: rng.Float64() * maxUtil}
		}
		return pl
	}

	checkAgreement := func(step int, op string) {
		t.Helper()
		if err := l.CheckInvariants(); err != nil {
			t.Fatalf("seed %d step %d after %s: %v", seed, step, op, err)
		}
		for q := 0; q < 4; q++ {
			cand := randPlacement(0.5)
			fast := l.Admissible(cand)
			ref := l.referenceAdmissible(cand)
			if fast != ref {
				t.Fatalf("seed %d step %d after %s: Admissible(%v) = %v, reference = %v",
					seed, step, op, cand, fast, ref)
			}
		}
	}

	for step := 0; step < ops; step++ {
		var op string
		switch rng.Intn(10) {
		case 0, 1, 2: // AddJob, deliberately without an admission check so
			// overloaded (violating) states are exercised too.
			ref := JobRef{Task: fmt.Sprintf("t%d", rng.Intn(5)), Job: nextJob}
			nextJob++
			kind := Aperiodic
			if rng.Intn(2) == 0 {
				kind = Periodic
			}
			permanent := rng.Intn(5) == 0
			if err := l.AddJob(ref, kind, randPlacement(0.6), permanent, time.Duration(step)*time.Millisecond); err != nil {
				t.Fatalf("seed %d step %d: AddJob: %v", seed, step, err)
			}
			live = append(live, ref)
			op = "AddJob"
		case 3, 4: // ExpireJob (sometimes of an unknown job).
			ref := JobRef{Task: "nope", Job: -1}
			if len(live) > 0 && rng.Intn(8) != 0 {
				i := rng.Intn(len(live))
				ref = live[i]
				live = append(live[:i], live[i+1:]...)
			}
			l.ExpireJob(ref)
			op = "ExpireJob"
		case 5: // MarkComplete on a random live job and stage.
			if len(live) == 0 {
				continue
			}
			l.MarkComplete(live[rng.Intn(len(live))], rng.Intn(3))
			op = "MarkComplete"
		case 6: // ResetEntry via CompletedOn, as the idle resetters do.
			proc := rng.Intn(procs)
			for _, r := range l.CompletedOn(proc, rng.Intn(2) == 0) {
				l.ResetEntry(r)
			}
			op = "ResetEntry"
		case 7: // ResetEntry on a raw random reference (mostly misses).
			if len(live) == 0 {
				continue
			}
			l.ResetEntry(EntryRef{Ref: live[rng.Intn(len(live))], Stage: rng.Intn(3), Proc: rng.Intn(procs)})
			op = "ResetEntry-raw"
		case 8: // Relocate a live job.
			if len(live) == 0 {
				continue
			}
			ref := live[rng.Intn(len(live))]
			if err := l.Relocate(ref, randPlacement(0.4)); err != nil {
				t.Fatalf("seed %d step %d: Relocate(%s): %v", seed, step, ref, err)
			}
			op = "Relocate"
		case 9: // RemoveTask withdraws every job of one task name.
			task := fmt.Sprintf("t%d", rng.Intn(5))
			l.RemoveTask(task)
			kept := live[:0]
			for _, ref := range live {
				if ref.Task != task {
					kept = append(kept, ref)
				}
			}
			live = kept
			op = "RemoveTask"
		}
		checkAgreement(step, op)
	}
}

// TestLedgerDifferentialAdmissible is the differential property test for the
// indexed admission fast path: random AddJob/ExpireJob/MarkComplete/
// ResetEntry/Relocate/RemoveTask sequences must leave the indexed Admissible
// decision-equivalent to the full-scan reference on every query, with all
// ledger indexes passing CheckInvariants at every step.
func TestLedgerDifferentialAdmissible(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			differentialHarness(t, seed, 120)
		})
	}
}

// TestLedgerAdmissibleOverload pins the violated-counter behavior: once any
// in-flight job's condition is broken by force-added load, every candidate is
// rejected by both evaluations, and draining the overload restores agreement.
func TestLedgerAdmissibleOverload(t *testing.T) {
	l := NewLedger(2)
	ref := JobRef{Task: "x", Job: 0}
	pl := []PlacedStage{{Stage: 0, Proc: 0, Util: 0.5}}
	if err := l.AddJob(ref, Aperiodic, pl, false, time.Hour); err != nil {
		t.Fatal(err)
	}
	// Force the processor far past the bound without admission checks.
	heavy := JobRef{Task: "y", Job: 0}
	if err := l.AddJob(heavy, Aperiodic, []PlacedStage{{Stage: 0, Proc: 0, Util: 0.9}}, false, time.Hour); err != nil {
		t.Fatal(err)
	}
	cand := []PlacedStage{{Stage: 0, Proc: 1, Util: 0.01}}
	if l.Admissible(cand) {
		t.Error("candidate admitted while an in-flight job's condition is violated")
	}
	if l.referenceAdmissible(cand) {
		t.Error("reference admitted while an in-flight job's condition is violated")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	l.ExpireJob(heavy)
	if !l.Admissible(cand) {
		t.Error("candidate rejected after the overload drained")
	}
	if got, want := l.Admissible(cand), l.referenceAdmissible(cand); got != want {
		t.Errorf("fast %v disagrees with reference %v after drain", got, want)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLedgerAdmissibleSkipsUntouchedJobs asserts the structural property the
// refactor is about: a candidate whose processors no ledger job visits must
// not trigger any per-group evaluation (only the O(1) violated check), so
// the decision cost is independent of the in-flight job count.
func TestLedgerAdmissibleSkipsUntouchedJobs(t *testing.T) {
	l := NewLedger(4)
	for i := 0; i < 500; i++ {
		ref := JobRef{Task: "bg", Job: int64(i)}
		pl := []PlacedStage{{Stage: 0, Proc: i % 3, Util: 0.001}}
		if err := l.AddJob(ref, Aperiodic, pl, false, time.Hour); err != nil {
			t.Fatal(err)
		}
	}
	// 500 jobs collapse into 3 signature groups.
	if len(l.groups) != 3 {
		t.Fatalf("got %d signature groups, want 3", len(l.groups))
	}
	// A candidate on the untouched processor 3 perturbs no group.
	cand := []PlacedStage{{Stage: 0, Proc: 3, Util: 0.2}}
	if len(l.procGroups[3]) != 0 {
		t.Fatalf("processor 3 unexpectedly indexes %d groups", len(l.procGroups[3]))
	}
	if !l.Admissible(cand) || !l.referenceAdmissible(cand) {
		t.Error("trivially feasible candidate rejected")
	}
}
