package sched

import (
	"fmt"
	"math/bits"
	"sort"
	"time"
)

// lockRouted acquires the shard locks of a routed job (in ascending index
// order) and revalidates the route under them — a concurrent relocation may
// change the job's shard set between the lookup and the lock. Returns the
// validated mask; ok=false means the job is not in the ledger. The caller
// must unlockMask the returned mask.
func (sl *ShardedLedger) lockRouted(ref JobRef) (uint64, bool) {
	for {
		mask, ok := sl.routeGet(ref)
		if !ok {
			return 0, false
		}
		sl.lockMask(mask)
		cur, stillOK := sl.routeGet(ref)
		if stillOK && cur == mask {
			return mask, true
		}
		sl.unlockMask(mask)
		if !stillOK {
			return 0, false
		}
	}
}

// settleCrossProcs re-evaluates cross jobs on the given processors if any are
// registered there. Caller holds the shard locks owning the processors.
func (sl *ShardedLedger) settleCrossProcs(procs []int) {
	need := false
	for _, p := range procs {
		if sl.crossOnProc[p].Load() > 0 {
			need = true
			break
		}
	}
	if !need {
		return
	}
	sl.crossMu.Lock()
	sl.crossSettleProcs(procs)
	sl.crossMu.Unlock()
}

// ExpireJob removes all remaining non-permanent contributions of the job
// because its absolute deadline passed, mirroring Ledger.ExpireJob. It
// returns the number of contributions removed.
func (sl *ShardedLedger) ExpireJob(ref JobRef) int {
	mask, ok := sl.lockRouted(ref)
	if !ok {
		return 0
	}
	var n int
	if bits.OnesCount64(mask) == 1 {
		n = sl.expireSingleLocked(&sl.shards[bits.TrailingZeros64(mask)], ref)
	} else {
		n = sl.expireMultiLocked(mask, ref)
	}
	sl.unlockMask(mask)
	return n
}

func (sl *ShardedLedger) expireSingleLocked(sh *ledgerShard, ref JobRef) int {
	rec, _, ok := sh.l.lookupJob(ref)
	if !ok {
		return 0
	}
	var touchedBuf [8]int
	touched := touchedBuf[:0]
	for _, e := range rec.entries {
		if !e.permanent && e.removed == 0 {
			touched = touchProc(touched, e.proc)
		}
	}
	sh.beginWrite()
	n := sh.l.ExpireJob(ref)
	for _, p := range touched {
		sl.syncProc(p)
	}
	sl.pushViolated(sh)
	if _, _, still := sh.l.lookupJob(ref); !still {
		sl.routeDelete(ref)
	}
	sl.settleCrossProcs(touched)
	sl.journalAppend(ledgerOp{kind: opExpireJob, ref: ref, n: n})
	sh.endWrite()
	return n
}

func (sl *ShardedLedger) expireMultiLocked(mask uint64, ref JobRef) int {
	sl.crossMu.Lock()
	defer sl.crossMu.Unlock()
	cr := sl.cross.jobs[ref]
	if cr == nil {
		return 0
	}
	if cr.permanent {
		// Permanent entries are uniform per job and survive expiry; the job
		// stays in place, exactly like the plain ledger's permanentOnly path.
		sl.journalAppend(ledgerOp{kind: opExpireJob, ref: ref})
		return 0
	}
	var touchedBuf [8]int
	touched := touchedBuf[:0]
	for i := range cr.entries {
		if cr.entries[i].removed == 0 {
			touched = touchProc(touched, cr.entries[i].proc)
		}
	}
	sl.beginWriteMask(mask)
	n := 0
	for m := mask; m != 0; m &= m - 1 {
		n += sl.shards[bits.TrailingZeros64(m)].l.ExpireJob(ref)
	}
	for i := range cr.entries {
		if cr.entries[i].removed == 0 {
			cr.entries[i].removed = RemovedExpiry
		}
	}
	sl.crossForget(cr)
	sl.routeDelete(ref)
	for _, p := range touched {
		sl.syncProc(p)
	}
	for m := mask; m != 0; m &= m - 1 {
		sl.pushViolated(&sl.shards[bits.TrailingZeros64(m)])
	}
	sl.crossSettleProcs(touched)
	sl.journalAppend(ledgerOp{kind: opExpireJob, ref: ref, n: n})
	sl.endWriteMask(mask)
	return n
}

// WithdrawJob removes every remaining contribution of one job, including
// permanent reservations, mirroring Ledger.WithdrawJob. It returns the
// number of contributions removed.
func (sl *ShardedLedger) WithdrawJob(ref JobRef) int {
	mask, ok := sl.lockRouted(ref)
	if !ok {
		return 0
	}
	var n int
	if bits.OnesCount64(mask) == 1 {
		n = sl.withdrawSingleLocked(&sl.shards[bits.TrailingZeros64(mask)], ref)
	} else {
		n = sl.withdrawMultiLocked(mask, ref)
	}
	sl.unlockMask(mask)
	return n
}

func (sl *ShardedLedger) withdrawSingleLocked(sh *ledgerShard, ref JobRef) int {
	rec, _, ok := sh.l.lookupJob(ref)
	if !ok {
		return 0
	}
	var touchedBuf [8]int
	touched := touchedBuf[:0]
	for _, e := range rec.entries {
		if e.removed == 0 {
			touched = touchProc(touched, e.proc)
		}
	}
	sh.beginWrite()
	n := sh.l.WithdrawJob(ref)
	for _, p := range touched {
		sl.syncProc(p)
	}
	sl.pushViolated(sh)
	sl.routeDelete(ref)
	sl.settleCrossProcs(touched)
	sl.journalAppend(ledgerOp{kind: opWithdrawJob, ref: ref, n: n})
	sh.endWrite()
	return n
}

func (sl *ShardedLedger) withdrawMultiLocked(mask uint64, ref JobRef) int {
	sl.crossMu.Lock()
	defer sl.crossMu.Unlock()
	cr := sl.cross.jobs[ref]
	if cr == nil {
		return 0
	}
	var touchedBuf [8]int
	touched := touchedBuf[:0]
	for i := range cr.entries {
		if cr.entries[i].removed == 0 {
			touched = touchProc(touched, cr.entries[i].proc)
		}
	}
	sl.beginWriteMask(mask)
	n := 0
	for m := mask; m != 0; m &= m - 1 {
		n += sl.shards[bits.TrailingZeros64(m)].l.WithdrawJob(ref)
	}
	for i := range cr.entries {
		if cr.entries[i].removed == 0 {
			cr.entries[i].removed = RemovedWithdrawal
		}
	}
	sl.crossForget(cr)
	sl.routeDelete(ref)
	for _, p := range touched {
		sl.syncProc(p)
	}
	for m := mask; m != 0; m &= m - 1 {
		sl.pushViolated(&sl.shards[bits.TrailingZeros64(m)])
	}
	sl.crossSettleProcs(touched)
	sl.journalAppend(ledgerOp{kind: opWithdrawJob, ref: ref, n: n})
	sl.endWriteMask(mask)
	return n
}

// RemoveTask withdraws every job of one task across all shards, mirroring
// Ledger.RemoveTask. It takes every shard lock in ascending order (the global
// lock order) and returns the number of contributions removed.
func (sl *ShardedLedger) RemoveTask(task string) int {
	all := sl.allMask()
	sl.lockMask(all)
	sl.crossMu.Lock()
	sl.beginWriteMask(all)
	n := 0
	for s := range sl.shards {
		n += sl.shards[s].l.RemoveTask(task)
	}
	for ref, cr := range sl.cross.jobs {
		if ref.Task != task {
			continue
		}
		for i := range cr.entries {
			if cr.entries[i].removed == 0 {
				cr.entries[i].removed = RemovedWithdrawal
			}
		}
		sl.crossForget(cr)
	}
	for p := 0; p < sl.numProcs; p++ {
		sl.syncProc(p)
	}
	for s := range sl.shards {
		sl.pushViolated(&sl.shards[s])
	}
	for _, cr := range sl.cross.jobs {
		sl.crossReflag(cr)
	}
	for i := range sl.routes {
		st := &sl.routes[i]
		st.mu.Lock()
		for ref := range st.m {
			if ref.Task == task {
				delete(st.m, ref)
			}
		}
		st.mu.Unlock()
	}
	sl.journalAppend(ledgerOp{kind: opRemoveTask, task: task, n: n})
	sl.endWriteMask(all)
	sl.crossMu.Unlock()
	sl.unlockMask(all)
	return n
}

// MarkComplete records that the subjob of the given stage finished executing,
// mirroring Ledger.MarkComplete. Unknown references are ignored.
func (sl *ShardedLedger) MarkComplete(ref JobRef, stage int) {
	mask, ok := sl.lockRouted(ref)
	if !ok {
		return
	}
	defer sl.unlockMask(mask)
	if bits.OnesCount64(mask) == 1 {
		sh := &sl.shards[bits.TrailingZeros64(mask)]
		sh.l.MarkComplete(ref, stage)
		sl.pushViolated(sh)
		sl.journalAppend(ledgerOp{kind: opMarkComplete, ref: ref, stage: stage})
		return
	}
	sl.crossMu.Lock()
	for m := mask; m != 0; m &= m - 1 {
		sh := &sl.shards[bits.TrailingZeros64(m)]
		sh.l.MarkComplete(ref, stage)
		sl.pushViolated(sh)
	}
	if cr := sl.cross.jobs[ref]; cr != nil {
		for i := range cr.entries {
			if cr.entries[i].stage == stage {
				cr.entries[i].completed = true
			}
		}
		sl.crossReflag(cr)
	}
	sl.journalAppend(ledgerOp{kind: opMarkComplete, ref: ref, stage: stage})
	sl.crossMu.Unlock()
}

// ResetEntry applies the idle resetting rule to a single reported
// contribution, mirroring Ledger.ResetEntry. It returns true if utilization
// was released.
func (sl *ShardedLedger) ResetEntry(r EntryRef) bool {
	mask, ok := sl.lockRouted(r.Ref)
	if !ok {
		return false
	}
	defer sl.unlockMask(mask)
	if bits.OnesCount64(mask) == 1 {
		sh := &sl.shards[bits.TrailingZeros64(mask)]
		released := sh.l.ResetEntry(r)
		if released {
			sh.beginWrite()
			sl.syncProc(r.Proc)
			sl.pushViolated(sh)
			sh.endWrite()
			var pb [1]int
			pb[0] = r.Proc
			sl.settleCrossProcs(pb[:])
		}
		sl.journalAppend(ledgerOp{kind: opResetEntry, ref: r.Ref, entry: r, decision: released})
		return released
	}
	sl.crossMu.Lock()
	defer sl.crossMu.Unlock()
	released := false
	if r.Proc >= 0 && r.Proc < sl.numProcs {
		if s := sl.shardOf(r.Proc); mask&(1<<uint(s)) != 0 {
			sh := &sl.shards[s]
			released = sh.l.ResetEntry(r)
			if released {
				sh.beginWrite()
				sl.syncProc(r.Proc)
				sl.pushViolated(sh)
				sh.endWrite()
				if cr := sl.cross.jobs[r.Ref]; cr != nil {
					for i := range cr.entries {
						if cr.entries[i].stage == r.Stage && cr.entries[i].proc == r.Proc {
							if cr.entries[i].removed == 0 {
								cr.entries[i].removed = RemovedIdleReset
							}
							break
						}
					}
					sl.crossReflag(cr)
				}
				var pb [1]int
				pb[0] = r.Proc
				sl.crossSettleProcs(pb[:])
			}
		}
	}
	sl.journalAppend(ledgerOp{kind: opResetEntry, ref: r.Ref, entry: r, decision: released})
	return released
}

// ResetReported applies one idle-resetting report entry — MarkComplete
// followed by ResetEntry as a single operation — mirroring
// Ledger.ResetReported.
func (sl *ShardedLedger) ResetReported(r EntryRef) bool {
	mask, ok := sl.lockRouted(r.Ref)
	if !ok {
		return false
	}
	defer sl.unlockMask(mask)
	if bits.OnesCount64(mask) == 1 {
		sh := &sl.shards[bits.TrailingZeros64(mask)]
		released := sh.l.ResetReported(r)
		// The MarkComplete half mutates counted state even when the reset
		// half fails, so the violated push is unconditional.
		sl.pushViolated(sh)
		if released {
			sh.beginWrite()
			sl.syncProc(r.Proc)
			sh.endWrite()
			var pb [1]int
			pb[0] = r.Proc
			sl.settleCrossProcs(pb[:])
		}
		sl.journalAppend(ledgerOp{kind: opResetReported, ref: r.Ref, entry: r, decision: released})
		return released
	}
	sl.crossMu.Lock()
	defer sl.crossMu.Unlock()
	// The plain ledger marks the stage complete across the whole job before
	// resetting the single entry; replicate on every involved shard, then
	// reset on the entry's owner shard.
	for m := mask; m != 0; m &= m - 1 {
		sl.shards[bits.TrailingZeros64(m)].l.MarkComplete(r.Ref, r.Stage)
	}
	cr := sl.cross.jobs[r.Ref]
	if cr != nil {
		for i := range cr.entries {
			if cr.entries[i].stage == r.Stage {
				cr.entries[i].completed = true
			}
		}
	}
	released := false
	if r.Proc >= 0 && r.Proc < sl.numProcs {
		if s := sl.shardOf(r.Proc); mask&(1<<uint(s)) != 0 {
			sh := &sl.shards[s]
			released = sh.l.ResetEntry(r)
			if released {
				sh.beginWrite()
				sl.syncProc(r.Proc)
				sh.endWrite()
				if cr != nil {
					for i := range cr.entries {
						if cr.entries[i].stage == r.Stage && cr.entries[i].proc == r.Proc {
							if cr.entries[i].removed == 0 {
								cr.entries[i].removed = RemovedIdleReset
							}
							break
						}
					}
				}
			}
		}
	}
	for m := mask; m != 0; m &= m - 1 {
		sl.pushViolated(&sl.shards[bits.TrailingZeros64(m)])
	}
	if cr != nil {
		sl.crossReflag(cr)
	}
	if released {
		var pb [1]int
		pb[0] = r.Proc
		sl.crossSettleProcs(pb[:])
	}
	sl.journalAppend(ledgerOp{kind: opResetReported, ref: r.Ref, entry: r, decision: released})
	return released
}

// CompletedOn returns the completed, still-active contributions on the given
// processor, mirroring Ledger.CompletedOn. Entries on a processor live only
// in the shard owning it, so one shard lock suffices.
func (sl *ShardedLedger) CompletedOn(proc int, includePeriodic bool) []EntryRef {
	if proc < 0 || proc >= sl.numProcs {
		return nil
	}
	sh := &sl.shards[sl.procShard[proc]]
	sh.mu.Lock()
	out := sh.l.CompletedOn(proc, includePeriodic)
	sh.mu.Unlock()
	return out
}

// entrySnap is a detached copy of one ledger entry, used to move a job's
// records between shard ledgers during cross-shard relocation.
type entrySnap struct {
	stage     int
	proc      int
	amount    float64
	kind      TaskKind
	permanent bool
	expiry    time.Duration
	completed bool
	removed   RemovalReason
}

// extractJob detaches a job from the ledger, returning snapshots of its
// entries (including completed and removed ones) and releasing its active
// utilization without recording a removal — the job is moving, not ending.
// Returns nil when the job is unknown.
func (l *Ledger) extractJob(ref JobRef) []entrySnap {
	rec, k, ok := l.lookupJob(ref)
	if !ok {
		return nil
	}
	snaps := make([]entrySnap, 0, len(rec.entries))
	var touchedBuf [8]int
	touched := touchedBuf[:0]
	for _, e := range rec.entries {
		snaps = append(snaps, entrySnap{
			stage: e.stage, proc: e.proc, amount: e.amount, kind: e.kind,
			permanent: e.permanent, expiry: e.expiry,
			completed: e.completed, removed: e.removed,
		})
		if e.removed == 0 {
			l.procEntryRemove(e)
			l.util[e.proc] -= e.amount
			touched = touchProc(touched, e.proc)
			// Mark so forgetJob does not double-remove the entry from the
			// processor index; the snapshot above preserved the real state.
			e.removed = RemovedRelocation
		}
	}
	for _, p := range touched {
		l.settleProc(p)
	}
	l.forgetJob(k, rec)
	return snaps
}

// importJob attaches previously extracted entry snapshots as a job record.
// The caller guarantees ref is not already present.
func (l *Ledger) importJob(ref JobRef, snaps []entrySnap) {
	if len(snaps) == 0 {
		return
	}
	k := jobKey{l.internTask(ref.Task), ref.Job}
	rec := l.allocRec()
	var touchedBuf [8]int
	touched := touchedBuf[:0]
	for i := range snaps {
		e := l.allocEntry()
		e.ref = ref
		e.stage = snaps[i].stage
		e.proc = snaps[i].proc
		e.amount = snaps[i].amount
		e.kind = snaps[i].kind
		e.permanent = snaps[i].permanent
		e.expiry = snaps[i].expiry
		e.completed = snaps[i].completed
		e.removed = snaps[i].removed
		rec.entries = append(rec.entries, e)
		if e.removed == 0 {
			l.procEntryAdd(e)
			l.util[e.proc] += e.amount
			touched = touchProc(touched, e.proc)
		}
	}
	for _, p := range touched {
		l.settleProc(p)
	}
	l.jobs[k] = rec
	jobs := l.taskJobs[k.tid]
	if jobs == nil {
		jobs = make(map[int64]*jobRec)
		l.taskJobs[k.tid] = jobs
	}
	jobs[k.job] = rec
	l.reindex(rec)
}

// crossInsertSnaps registers a cross-shard job rebuilt from relocation
// snapshots (unlike crossInsert, the entries carry completed/removed state).
// Caller holds crossMu and the involved shard locks.
func (sl *ShardedLedger) crossInsertSnaps(ref JobRef, mask uint64, snaps []entrySnap) {
	cr := &crossRec{ref: ref, mask: mask, permanent: snaps[0].permanent, kind: snaps[0].kind}
	cr.entries = make([]crossEntry, len(snaps))
	for i := range snaps {
		cr.entries[i] = crossEntry{
			stage: snaps[i].stage, proc: snaps[i].proc,
			completed: snaps[i].completed, removed: snaps[i].removed,
		}
	}
	for i := range snaps {
		if snaps[i].removed == 0 {
			cr.procs = touchProc(cr.procs, snaps[i].proc)
		}
	}
	sl.cross.jobs[ref] = cr
	for _, p := range cr.procs {
		sl.cross.byProc[p] = append(sl.cross.byProc[p], cr)
		sl.crossOnProc[p].Add(1)
	}
	sl.crossCount.Add(1)
	sl.crossReflag(cr)
}

// Relocate moves the active contributions of a job to a new placement,
// mirroring Ledger.Relocate. Same-shard relocations delegate to the plain
// ledger; relocations that enter or leave a shard extract the job's records
// and reinsert them under every involved shard lock.
func (sl *ShardedLedger) Relocate(ref JobRef, placement []PlacedStage) error {
	for _, p := range placement {
		if p.Proc < 0 || p.Proc >= sl.numProcs {
			return fmt.Errorf("sched: relocate: job %s stage %d on unknown processor %d", ref, p.Stage, p.Proc)
		}
	}
	for {
		mask, ok := sl.routeGet(ref)
		if !ok {
			return fmt.Errorf("sched: relocate: job %s not in ledger", ref)
		}
		lockM := mask | sl.maskOf(placement)
		sl.lockMask(lockM)
		cur, stillOK := sl.routeGet(ref)
		if !stillOK {
			sl.unlockMask(lockM)
			return fmt.Errorf("sched: relocate: job %s not in ledger", ref)
		}
		if cur != mask {
			sl.unlockMask(lockM)
			continue
		}
		err := sl.relocateLocked(mask, lockM, ref, placement)
		sl.unlockMask(lockM)
		return err
	}
}

func (sl *ShardedLedger) relocateLocked(oldMask, lockM uint64, ref JobRef, placement []PlacedStage) error {
	if len(placement) == 0 {
		// No stage can move; the plain ledger is a no-op after the lookup.
		sl.journalAppend(ledgerOp{kind: opRelocate, ref: ref, placement: placement})
		return nil
	}
	if bits.OnesCount64(oldMask) == 1 && sl.maskOf(placement)&^oldMask == 0 {
		// Same-shard relocation: pure delegation, bit-identical to the plain
		// ledger (the only path a one-shard ledger ever takes).
		sh := &sl.shards[bits.TrailingZeros64(oldMask)]
		rec, _, ok := sh.l.lookupJob(ref)
		if !ok {
			return fmt.Errorf("sched: relocate: job %s not in ledger", ref)
		}
		var touchedBuf [8]int
		touched := touchedBuf[:0]
		for _, e := range rec.entries {
			if e.removed == 0 {
				touched = touchProc(touched, e.proc)
			}
		}
		for _, p := range placement {
			touched = touchProc(touched, p.Proc)
		}
		sh.beginWrite()
		err := sh.l.Relocate(ref, placement)
		if err == nil {
			for _, p := range touched {
				sl.syncProc(p)
			}
			sl.pushViolated(sh)
			sl.settleCrossProcs(touched)
			sl.journalAppend(ledgerOp{kind: opRelocate, ref: ref, placement: placement})
		}
		sh.endWrite()
		return err
	}

	byStage := make(map[int]PlacedStage, len(placement))
	for _, p := range placement {
		byStage[p.Stage] = p
	}
	sl.crossMu.Lock()
	defer sl.crossMu.Unlock()
	sl.beginWriteMask(lockM)
	defer sl.endWriteMask(lockM)

	var snaps []entrySnap
	for m := oldMask; m != 0; m &= m - 1 {
		snaps = append(snaps, sl.shards[bits.TrailingZeros64(m)].l.extractJob(ref)...)
	}
	if len(snaps) == 0 {
		sl.routeDelete(ref)
		return fmt.Errorf("sched: relocate: job %s not in ledger", ref)
	}
	// Reassemble in stage order: partial extraction visits shards in index
	// order, but placements are recorded stage-ordered everywhere.
	sort.SliceStable(snaps, func(i, j int) bool { return snaps[i].stage < snaps[j].stage })

	var touchedBuf [16]int
	touched := touchedBuf[:0]
	for i := range snaps {
		if snaps[i].removed == 0 {
			touched = touchProc(touched, snaps[i].proc)
		}
	}
	for i := range snaps {
		if snaps[i].removed != 0 {
			continue
		}
		if p, ok := byStage[snaps[i].stage]; ok && p.Proc != snaps[i].proc {
			snaps[i].proc = p.Proc
			snaps[i].amount = p.Util
			touched = touchProc(touched, p.Proc)
		}
	}
	var newMask uint64
	for i := range snaps {
		newMask |= 1 << uint(sl.procShard[snaps[i].proc])
	}
	var partBuf [8]entrySnap
	for m := newMask; m != 0; m &= m - 1 {
		s := bits.TrailingZeros64(m)
		part := partBuf[:0]
		for i := range snaps {
			if int(sl.procShard[snaps[i].proc]) == s {
				part = append(part, snaps[i])
			}
		}
		sl.shards[s].l.importJob(ref, part)
	}
	if cr := sl.cross.jobs[ref]; cr != nil {
		sl.crossForget(cr)
	}
	if bits.OnesCount64(newMask) > 1 {
		sl.crossInsertSnaps(ref, newMask, snaps)
	}
	for _, p := range touched {
		sl.syncProc(p)
	}
	for m := lockM; m != 0; m &= m - 1 {
		sl.pushViolated(&sl.shards[bits.TrailingZeros64(m)])
	}
	sl.crossSettleProcs(touched)
	sl.routeSet(ref, newMask)
	sl.journalAppend(ledgerOp{kind: opRelocate, ref: ref, placement: placement})
	return nil
}
