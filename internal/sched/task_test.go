package sched

import (
	"testing"
	"time"
)

func validTask() *Task {
	return &Task{
		ID:       "t1",
		Kind:     Periodic,
		Period:   500 * time.Millisecond,
		Deadline: 500 * time.Millisecond,
		Subtasks: []Subtask{
			{Index: 0, Exec: 50 * time.Millisecond, Processor: 0, Replicas: []int{2}},
			{Index: 1, Exec: 25 * time.Millisecond, Processor: 1},
		},
	}
}

func TestTaskValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Task)
		wantErr bool
	}{
		{name: "valid", mutate: func(*Task) {}, wantErr: false},
		{name: "empty id", mutate: func(tk *Task) { tk.ID = "" }, wantErr: true},
		{name: "zero kind", mutate: func(tk *Task) { tk.Kind = 0 }, wantErr: true},
		{name: "bad kind", mutate: func(tk *Task) { tk.Kind = 9 }, wantErr: true},
		{name: "zero deadline", mutate: func(tk *Task) { tk.Deadline = 0 }, wantErr: true},
		{name: "periodic without period", mutate: func(tk *Task) { tk.Period = 0 }, wantErr: true},
		{name: "aperiodic with period", mutate: func(tk *Task) { tk.Kind = Aperiodic }, wantErr: true},
		{name: "aperiodic ok", mutate: func(tk *Task) { tk.Kind = Aperiodic; tk.Period = 0 }, wantErr: false},
		{name: "no subtasks", mutate: func(tk *Task) { tk.Subtasks = nil }, wantErr: true},
		{name: "bad index", mutate: func(tk *Task) { tk.Subtasks[1].Index = 5 }, wantErr: true},
		{name: "zero exec", mutate: func(tk *Task) { tk.Subtasks[0].Exec = 0 }, wantErr: true},
		{name: "negative processor", mutate: func(tk *Task) { tk.Subtasks[0].Processor = -1 }, wantErr: true},
		{name: "replica equals home", mutate: func(tk *Task) { tk.Subtasks[0].Replicas = []int{0} }, wantErr: true},
		{name: "negative replica", mutate: func(tk *Task) { tk.Subtasks[0].Replicas = []int{-3} }, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tk := validTask()
			tt.mutate(tk)
			err := tk.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTaskKindString(t *testing.T) {
	if got := Periodic.String(); got != "periodic" {
		t.Errorf("Periodic.String() = %q", got)
	}
	if got := Aperiodic.String(); got != "aperiodic" {
		t.Errorf("Aperiodic.String() = %q", got)
	}
	if got := TaskKind(0).String(); got != "TaskKind(0)" {
		t.Errorf("TaskKind(0).String() = %q", got)
	}
}

func TestStageAndTotalUtil(t *testing.T) {
	tk := validTask()
	if got, want := tk.StageUtil(0), 0.1; !almostEqual(got, want) {
		t.Errorf("StageUtil(0) = %g, want %g", got, want)
	}
	if got, want := tk.StageUtil(1), 0.05; !almostEqual(got, want) {
		t.Errorf("StageUtil(1) = %g, want %g", got, want)
	}
	if got, want := tk.TotalUtil(), 0.15; !almostEqual(got, want) {
		t.Errorf("TotalUtil() = %g, want %g", got, want)
	}
}

func TestSubtaskCandidates(t *testing.T) {
	st := Subtask{Processor: 3, Replicas: []int{1, 4}}
	got := st.Candidates()
	want := []int{3, 1, 4}
	if len(got) != len(want) {
		t.Fatalf("Candidates() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Candidates() = %v, want %v", got, want)
		}
	}
	// Mutating the result must not affect the subtask.
	got[0] = 99
	if st.Processor != 3 {
		t.Error("Candidates() aliases subtask state")
	}
}

func TestTaskClone(t *testing.T) {
	tk := validTask()
	c := tk.Clone()
	c.Subtasks[0].Exec = time.Second
	c.Subtasks[0].Replicas[0] = 7
	if tk.Subtasks[0].Exec != 50*time.Millisecond {
		t.Error("Clone aliases Subtasks slice")
	}
	if tk.Subtasks[0].Replicas[0] != 2 {
		t.Error("Clone aliases Replicas slice")
	}
}

func TestAssignEDMSPriorities(t *testing.T) {
	mk := func(id string, d time.Duration) *Task {
		return &Task{ID: id, Kind: Aperiodic, Deadline: d,
			Subtasks: []Subtask{{Exec: time.Millisecond}}}
	}
	tasks := []*Task{
		mk("c", 3*time.Second),
		mk("a", time.Second),
		mk("b", time.Second),
		mk("d", 500*time.Millisecond),
	}
	AssignEDMSPriorities(tasks)
	want := map[string]int{"d": 1, "a": 2, "b": 3, "c": 4}
	for _, tk := range tasks {
		if tk.Priority != want[tk.ID] {
			t.Errorf("task %s priority = %d, want %d", tk.ID, tk.Priority, want[tk.ID])
		}
	}
}

func TestJobRefString(t *testing.T) {
	r := JobRef{Task: "alert", Job: 7}
	if got := r.String(); got != "alert#7" {
		t.Errorf("String() = %q", got)
	}
}

func almostEqual(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
