package sched

import (
	"fmt"
	"testing"
	"time"
)

// populatedLedger fills a 5-processor ledger with n in-flight two-stage
// jobs spread over the processors, the shape of a heavily loaded admission
// controller. Each processor ends at synthetic utilization 0.3, so every
// job's AUB condition holds (2·f(0.3) ≈ 0.73) and admission tests exercise
// the real evaluation path rather than a short-circuit rejection.
func populatedLedger(b *testing.B, n int) *Ledger {
	b.Helper()
	l := NewLedger(5)
	for i := 0; i < n; i++ {
		ref := JobRef{Task: "bg", Job: int64(i)}
		pl := []PlacedStage{
			{Stage: 0, Proc: i % 5, Util: 0.75 / float64(n)},
			{Stage: 1, Proc: (i + 2) % 5, Util: 0.75 / float64(n)},
		}
		if err := l.AddJob(ref, Aperiodic, pl, false, time.Hour); err != nil {
			b.Fatal(err)
		}
	}
	return l
}

// BenchmarkAdmissibleIndexedVsReference compares the indexed admission test
// against the paper-literal full scan on identical ledgers. The indexed
// cost depends on the number of distinct processor-visit signatures (here a
// handful), the reference on the number of in-flight jobs, so the gap grows
// linearly with the job count.
func BenchmarkAdmissibleIndexedVsReference(b *testing.B) {
	cand := []PlacedStage{{Stage: 0, Proc: 0, Util: 0.01}}
	for _, n := range []int{100, 1000, 10000, 100000} {
		l := populatedLedger(b, n)
		b.Run(fmt.Sprintf("indexed/jobs=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l.Admissible(cand)
			}
		})
		b.Run(fmt.Sprintf("reference/jobs=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l.referenceAdmissible(cand)
			}
		})
	}
}

// BenchmarkCompletedOn measures the per-processor index behind the idle
// resetters' report construction: half the jobs' first stages are completed
// before measurement.
func BenchmarkCompletedOn(b *testing.B) {
	for _, n := range []int{100, 10000} {
		l := populatedLedger(b, n)
		for i := 0; i < n; i += 2 {
			l.MarkComplete(JobRef{Task: "bg", Job: int64(i)}, 0)
		}
		b.Run(fmt.Sprintf("jobs=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				l.CompletedOn(i%5, true)
			}
		})
	}
}

// BenchmarkLedgerChurn measures the full mutation cycle (admit, complete,
// reset, expire) at a sustained in-flight population, the admission
// controller's steady-state write load.
func BenchmarkLedgerChurn(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		l := populatedLedger(b, n)
		b.Run(fmt.Sprintf("inflight=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ref := JobRef{Task: "churn", Job: int64(i)}
				pl := []PlacedStage{{Stage: 0, Proc: i % 5, Util: 0.001}}
				if !l.Admissible(pl) {
					b.Fatal("churn job rejected")
				}
				if err := l.AddJob(ref, Aperiodic, pl, false, time.Hour); err != nil {
					b.Fatal(err)
				}
				l.MarkComplete(ref, 0)
				l.ResetEntry(EntryRef{Ref: ref, Stage: 0, Proc: i % 5})
				l.ExpireJob(ref)
			}
		})
	}
}
