package sched

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// AUBTerm computes the per-processor term of the aperiodic utilization bound
// condition: f(u) = u(1 - u/2) / (1 - u). The condition for task T_i under
// EDMS is Σ_j f(U_Vij) ≤ 1 over the processors T_i visits (condition (1) in
// the paper, after Abdelzaher et al.). For u ≥ 1 the term is +Inf: a fully
// (or over-) utilized processor can never satisfy the condition.
func AUBTerm(u float64) float64 {
	if u >= 1 {
		return math.Inf(1)
	}
	if u <= 0 {
		return 0
	}
	return u * (1 - u/2) / (1 - u)
}

// PathFeasible reports whether a task visiting processors with the given
// synthetic utilizations satisfies the AUB condition Σ f(u) ≤ 1.
func PathFeasible(utils []float64) bool {
	var sum float64
	for _, u := range utils {
		sum += AUBTerm(u)
		if sum > 1 {
			return false
		}
	}
	return sum <= 1
}

// RemovalReason records why a contribution left the ledger.
type RemovalReason int

// Removal reasons. Enums start at one; the zero value means "not removed".
const (
	// RemovedExpiry marks contributions removed because the job's absolute
	// deadline passed, at which point the task leaves the current task set
	// S(t).
	RemovedExpiry RemovalReason = iota + 1
	// RemovedIdleReset marks contributions of completed subjobs removed
	// early by the idle resetting rule.
	RemovedIdleReset
	// RemovedRelocation marks contributions withdrawn because the load
	// balancer re-allocated the stage to a different processor.
	RemovedRelocation
)

// String returns the lowercase name of the reason.
func (r RemovalReason) String() string {
	switch r {
	case RemovedExpiry:
		return "expiry"
	case RemovedIdleReset:
		return "idle-reset"
	case RemovedRelocation:
		return "relocation"
	default:
		return fmt.Sprintf("RemovalReason(%d)", int(r))
	}
}

// PlacedStage is one stage of a job bound to a concrete processor, with its
// synthetic utilization amount. The admission controller obtains placements
// from the load balancer and records them in the ledger.
type PlacedStage struct {
	// Stage is the zero-based subtask index.
	Stage int
	// Proc is the processor the stage will execute on.
	Proc int
	// Util is the stage's synthetic utilization contribution C/D.
	Util float64
}

// EntryRef names one ledger contribution: a (job, stage) pair and the
// processor carrying its utilization. Idle resetters report these back to
// the admission controller.
type EntryRef struct {
	// Ref is the owning job.
	Ref JobRef
	// Stage is the subtask index within the job.
	Stage int
	// Proc is the processor carrying the contribution.
	Proc int
}

// entry is one live or historical contribution record.
type entry struct {
	ref       JobRef
	stage     int
	proc      int
	amount    float64
	kind      TaskKind
	permanent bool
	expiry    time.Duration // absolute virtual deadline; 0 when permanent
	completed bool
	removed   RemovalReason // 0 while active
}

// jobKey indexes jobs in the ledger.
type jobKey struct {
	task string
	job  int64
}

// jobRec groups the entries of one admitted job.
type jobRec struct {
	entries []*entry
}

// active reports whether the job still carries at least one non-removed
// contribution.
func (j *jobRec) active() bool {
	for _, e := range j.entries {
		if e.removed == 0 {
			return true
		}
	}
	return false
}

// inFlight reports whether the job still has at least one uncompleted stage.
// Only in-flight jobs can still miss their deadlines, so the admission test
// is evaluated over in-flight jobs plus the candidate.
func (j *jobRec) inFlight() bool {
	for _, e := range j.entries {
		if !e.completed {
			return true
		}
	}
	return false
}

// Ledger is the synthetic-utilization ledger maintained by the admission
// controller. It tracks, per processor, the sum of C/D contributions of the
// current task set, with per-entry state so the per-task/per-job admission
// strategies and the three idle-resetting strategies are all policies over
// the same records.
//
// Ledger is not safe for concurrent use; the admission controller serializes
// access (the paper's architecture is a single centralized AC).
type Ledger struct {
	util []float64
	jobs map[jobKey]*jobRec
}

// NewLedger returns an empty ledger over numProcs processors numbered
// 0..numProcs-1.
func NewLedger(numProcs int) *Ledger {
	return &Ledger{
		util: make([]float64, numProcs),
		jobs: make(map[jobKey]*jobRec),
	}
}

// NumProcs returns the number of processors the ledger tracks.
func (l *Ledger) NumProcs() int { return len(l.util) }

// Util returns the current synthetic utilization of the processor.
func (l *Ledger) Util(proc int) float64 {
	if proc < 0 || proc >= len(l.util) {
		return 0
	}
	return l.util[proc]
}

// Utils returns a copy of all per-processor synthetic utilizations.
func (l *Ledger) Utils() []float64 {
	return append([]float64(nil), l.util...)
}

// AddJob records the contributions of an admitted job placed per placement.
// When permanent is true the contributions never expire (the per-task
// admission strategy reserves a periodic task's synthetic utilization for
// its whole lifetime); otherwise expiry is the job's absolute deadline.
// Adding an already-present job is an error: the admission controller must
// not double-admit.
func (l *Ledger) AddJob(ref JobRef, kind TaskKind, placement []PlacedStage, permanent bool, expiry time.Duration) error {
	k := jobKey{ref.Task, ref.Job}
	if _, ok := l.jobs[k]; ok {
		return fmt.Errorf("sched: job %s already in ledger", ref)
	}
	rec := &jobRec{entries: make([]*entry, 0, len(placement))}
	for _, p := range placement {
		if p.Proc < 0 || p.Proc >= len(l.util) {
			return fmt.Errorf("sched: job %s stage %d placed on unknown processor %d", ref, p.Stage, p.Proc)
		}
		if p.Util < 0 {
			return fmt.Errorf("sched: job %s stage %d has negative utilization %g", ref, p.Stage, p.Util)
		}
		e := &entry{
			ref:       ref,
			stage:     p.Stage,
			proc:      p.Proc,
			amount:    p.Util,
			kind:      kind,
			permanent: permanent,
			expiry:    expiry,
		}
		rec.entries = append(rec.entries, e)
		l.util[p.Proc] += p.Util
	}
	l.jobs[k] = rec
	return nil
}

// ExpireJob removes all remaining contributions of the job because its
// absolute deadline passed, and forgets the job. Permanent entries are not
// removed by expiry (per-task reservations outlive individual deadlines);
// jobs made only of permanent entries are left in place. It returns the
// number of contributions removed.
func (l *Ledger) ExpireJob(ref JobRef) int {
	k := jobKey{ref.Task, ref.Job}
	rec, ok := l.jobs[k]
	if !ok {
		return 0
	}
	n := 0
	permanentOnly := true
	for _, e := range rec.entries {
		if e.permanent {
			continue
		}
		permanentOnly = false
		if e.removed == 0 {
			e.removed = RemovedExpiry
			l.subtract(e.proc, e.amount)
			n++
		}
	}
	if !permanentOnly {
		delete(l.jobs, k)
	}
	return n
}

// RemoveTask withdraws a permanent per-task reservation entirely (the task
// left the system). It returns the number of contributions removed.
func (l *Ledger) RemoveTask(task string) int {
	n := 0
	for k, rec := range l.jobs {
		if k.task != task {
			continue
		}
		for _, e := range rec.entries {
			if e.removed == 0 {
				e.removed = RemovedExpiry
				l.subtract(e.proc, e.amount)
				n++
			}
		}
		delete(l.jobs, k)
	}
	return n
}

// MarkComplete records that the subjob of the given stage finished
// executing, making its contribution eligible for idle resetting. Unknown
// references are ignored (the job may already have expired).
func (l *Ledger) MarkComplete(ref JobRef, stage int) {
	rec, ok := l.jobs[jobKey{ref.Task, ref.Job}]
	if !ok {
		return
	}
	for _, e := range rec.entries {
		if e.stage == stage {
			e.completed = true
		}
	}
}

// ResetEntry applies the idle resetting rule to a single reported
// contribution: if the entry is known, completed, and still active, its
// contribution is removed. It returns true if utilization was released.
// Permanent (per-task reserved) entries are never reset: the per-task
// admission strategy must keep the reservation, which is exactly why the
// AC-per-task/IR-per-job combination is invalid.
func (l *Ledger) ResetEntry(r EntryRef) bool {
	rec, ok := l.jobs[jobKey{r.Ref.Task, r.Ref.Job}]
	if !ok {
		return false
	}
	for _, e := range rec.entries {
		if e.stage != r.Stage || e.proc != r.Proc {
			continue
		}
		if e.permanent || !e.completed || e.removed != 0 {
			return false
		}
		e.removed = RemovedIdleReset
		l.subtract(e.proc, e.amount)
		return true
	}
	return false
}

// CompletedOn returns the completed, still-active contributions on the given
// processor, optionally restricted to aperiodic tasks. Idle resetter
// components use it (in the simulation binding) to build their report when
// the processor goes idle. Results are ordered deterministically.
func (l *Ledger) CompletedOn(proc int, includePeriodic bool) []EntryRef {
	var out []EntryRef
	for _, rec := range l.jobs {
		for _, e := range rec.entries {
			if e.proc != proc || !e.completed || e.removed != 0 || e.permanent {
				continue
			}
			if !includePeriodic && e.kind == Periodic {
				continue
			}
			out = append(out, EntryRef{Ref: e.ref, Stage: e.stage, Proc: e.proc})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ref.Task != out[j].Ref.Task {
			return out[i].Ref.Task < out[j].Ref.Task
		}
		if out[i].Ref.Job != out[j].Ref.Job {
			return out[i].Ref.Job < out[j].Ref.Job
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// Relocate moves the active contributions of a job to a new placement (used
// by AC-per-task with LB-per-job, where an admitted task's reservation
// follows the jobs). Completed/removed entries are left as-is.
func (l *Ledger) Relocate(ref JobRef, placement []PlacedStage) error {
	rec, ok := l.jobs[jobKey{ref.Task, ref.Job}]
	if !ok {
		return fmt.Errorf("sched: relocate: job %s not in ledger", ref)
	}
	byStage := make(map[int]PlacedStage, len(placement))
	for _, p := range placement {
		if p.Proc < 0 || p.Proc >= len(l.util) {
			return fmt.Errorf("sched: relocate: job %s stage %d on unknown processor %d", ref, p.Stage, p.Proc)
		}
		byStage[p.Stage] = p
	}
	for _, e := range rec.entries {
		p, ok := byStage[e.stage]
		if !ok || e.removed != 0 || e.proc == p.Proc {
			continue
		}
		l.subtract(e.proc, e.amount)
		e.proc = p.Proc
		e.amount = p.Util
		l.util[p.Proc] += p.Util
	}
	return nil
}

// subtract decreases a processor's utilization, clamping tiny negative
// floating-point residue to zero.
func (l *Ledger) subtract(proc int, amount float64) {
	l.util[proc] -= amount
	if l.util[proc] < 0 && l.util[proc] > -1e-9 {
		l.util[proc] = 0
	}
}

// Admissible evaluates the AUB admission test for a candidate job with the
// given placement: with the candidate's contributions tentatively added,
// condition (1) must continue to hold for the candidate and for every
// in-flight job in the current task set. It does not modify the ledger.
func (l *Ledger) Admissible(placement []PlacedStage) bool {
	// Tentative utilizations: current plus the candidate's contributions.
	delta := make(map[int]float64, len(placement))
	for _, p := range placement {
		delta[p.Proc] += p.Util
	}
	utilAt := func(proc int) float64 {
		return l.util[proc] + delta[proc]
	}

	// Candidate's own condition.
	var sum float64
	for _, p := range placement {
		sum += AUBTerm(utilAt(p.Proc))
	}
	if sum > 1 {
		return false
	}

	// Condition for every in-flight admitted job, over the processors its
	// active contributions visit. Fully completed jobs cannot miss their
	// deadlines anymore and are skipped.
	for _, rec := range l.jobs {
		if !rec.inFlight() || !rec.active() {
			continue
		}
		var s float64
		for _, e := range rec.entries {
			if e.removed != 0 {
				continue
			}
			s += AUBTerm(utilAt(e.proc))
			if s > 1 {
				return false
			}
		}
	}
	return true
}

// ActiveJobs returns the references of jobs that still hold at least one
// active contribution, in deterministic order. Intended for tests and
// instrumentation.
func (l *Ledger) ActiveJobs() []JobRef {
	var out []JobRef
	for k, rec := range l.jobs {
		if rec.active() {
			out = append(out, JobRef{Task: k.task, Job: k.job})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Task != out[j].Task {
			return out[i].Task < out[j].Task
		}
		return out[i].Job < out[j].Job
	})
	return out
}

// CheckInvariants recomputes per-processor utilization from entry records
// and verifies it matches the running sums within tolerance, and that no
// utilization is negative. Property tests call it after random operation
// sequences.
func (l *Ledger) CheckInvariants() error {
	recomputed := make([]float64, len(l.util))
	for _, rec := range l.jobs {
		for _, e := range rec.entries {
			if e.removed == 0 {
				recomputed[e.proc] += e.amount
			}
		}
	}
	for p := range l.util {
		if l.util[p] < 0 {
			return fmt.Errorf("sched: processor %d has negative utilization %g", p, l.util[p])
		}
		if diff := math.Abs(l.util[p] - recomputed[p]); diff > 1e-6 {
			return fmt.Errorf("sched: processor %d utilization drift: running %g vs recomputed %g", p, l.util[p], recomputed[p])
		}
	}
	return nil
}
