package sched

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// AUBTerm computes the per-processor term of the aperiodic utilization bound
// condition: f(u) = u(1 - u/2) / (1 - u). The condition for task T_i under
// EDMS is Σ_j f(U_Vij) ≤ 1 over the processors T_i visits (condition (1) in
// the paper, after Abdelzaher et al.). For u ≥ 1 the term is +Inf: a fully
// (or over-) utilized processor can never satisfy the condition.
func AUBTerm(u float64) float64 {
	if u >= 1 {
		return math.Inf(1)
	}
	if u <= 0 {
		return 0
	}
	return u * (1 - u/2) / (1 - u)
}

// PathFeasible reports whether a task visiting processors with the given
// synthetic utilizations satisfies the AUB condition Σ f(u) ≤ 1.
func PathFeasible(utils []float64) bool {
	var sum float64
	for _, u := range utils {
		sum += AUBTerm(u)
		if sum > 1 {
			return false
		}
	}
	return sum <= 1
}

// RemovalReason records why a contribution left the ledger.
type RemovalReason int

// Removal reasons. Enums start at one; the zero value means "not removed".
const (
	// RemovedExpiry marks contributions removed because the job's absolute
	// deadline passed, at which point the task leaves the current task set
	// S(t).
	RemovedExpiry RemovalReason = iota + 1
	// RemovedIdleReset marks contributions of completed subjobs removed
	// early by the idle resetting rule.
	RemovedIdleReset
	// RemovedRelocation marks contributions withdrawn because the load
	// balancer re-allocated the stage to a different processor.
	RemovedRelocation
	// RemovedWithdrawal marks contributions withdrawn because the whole
	// task left the system (RemoveTask), before any deadline expired.
	RemovedWithdrawal
)

// String returns the lowercase name of the reason.
func (r RemovalReason) String() string {
	switch r {
	case RemovedExpiry:
		return "expiry"
	case RemovedIdleReset:
		return "idle-reset"
	case RemovedRelocation:
		return "relocation"
	case RemovedWithdrawal:
		return "withdrawal"
	default:
		return fmt.Sprintf("RemovalReason(%d)", int(r))
	}
}

// PlacedStage is one stage of a job bound to a concrete processor, with its
// synthetic utilization amount. The admission controller obtains placements
// from the load balancer and records them in the ledger.
type PlacedStage struct {
	// Stage is the zero-based subtask index.
	Stage int
	// Proc is the processor the stage will execute on.
	Proc int
	// Util is the stage's synthetic utilization contribution C/D.
	Util float64
}

// EntryRef names one ledger contribution: a (job, stage) pair and the
// processor carrying its utilization. Idle resetters report these back to
// the admission controller.
type EntryRef struct {
	// Ref is the owning job.
	Ref JobRef
	// Stage is the subtask index within the job.
	Stage int
	// Proc is the processor carrying the contribution.
	Proc int
}

// entry is one live or historical contribution record.
type entry struct {
	ref       JobRef
	stage     int
	proc      int
	amount    float64
	kind      TaskKind
	permanent bool
	expiry    time.Duration // absolute virtual deadline; 0 when permanent
	completed bool
	removed   RemovalReason // 0 while active
	// procPos is the entry's position in procEntries[proc] while active,
	// maintained by procEntryAdd/procEntryRemove.
	procPos int
}

// jobKey indexes jobs in the ledger by interned task ID: hashing an (int32,
// int64) pair on every admission/expiry/reset is markedly cheaper than
// hashing the task-name string, and the interning table is consulted once
// per public call.
type jobKey struct {
	tid int32
	job int64
}

// jobRec groups the entries of one admitted job.
type jobRec struct {
	entries []*entry
	// group is the signature group the job currently belongs to; nil while
	// the job has no active contribution.
	group *sigGroup
	// counted reports whether the job is currently included in
	// group.counted (it is in flight and active).
	counted bool
}

// active reports whether the job still carries at least one non-removed
// contribution.
func (j *jobRec) active() bool {
	for _, e := range j.entries {
		if e.removed == 0 {
			return true
		}
	}
	return false
}

// inFlight reports whether the job still has at least one uncompleted stage.
// Only in-flight jobs can still miss their deadlines, so the admission test
// is evaluated over in-flight jobs plus the candidate.
func (j *jobRec) inFlight() bool {
	for _, e := range j.entries {
		if !e.completed {
			return true
		}
	}
	return false
}

// signature returns the canonical processor-visit signature of the job's
// active contributions: the multiset of processors its non-removed entries
// occupy, encoded deterministically, plus the per-processor entry counts.
// Jobs with equal signatures have identical AUB sums, so the ledger
// evaluates each signature once per admission test instead of once per job.
func (j *jobRec) signature() (string, []int, map[int]int) {
	count := make(map[int]int)
	for _, e := range j.entries {
		if e.removed == 0 {
			count[e.proc]++
		}
	}
	if len(count) == 0 {
		return "", nil, nil
	}
	procs := make([]int, 0, len(count))
	for p := range count {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	var b strings.Builder
	for i, p := range procs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(p))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(count[p]))
	}
	return b.String(), procs, count
}

// sigGroup aggregates every ledger job sharing one processor-visit
// signature. The AUB condition of a job depends only on its signature (the
// per-processor terms are shared by all jobs), so one cached sum serves the
// whole group and Admissible touches groups, not jobs.
type sigGroup struct {
	sig    string
	procs  []int // sorted distinct processors of the signature
	counts []int // active entries per processor, parallel to procs
	// procPos holds, parallel to procs, the group's position in each
	// processor's procGroups slice, maintained by procGroupAdd/Remove.
	procPos []int
	// members is the number of jobRecs pointing at this group.
	members int
	// counted is the number of member jobs that are in flight and active —
	// exactly the jobs the admission test must cover.
	counted int
	// cachedSum is Σ_p count[p]·f(util[p]) under the current utilizations,
	// recomputed whenever a constituent processor's utilization changes.
	cachedSum float64
}

// Ledger is the synthetic-utilization ledger maintained by the admission
// controller. It tracks, per processor, the sum of C/D contributions of the
// current task set, with per-entry state so the per-task/per-job admission
// strategies and the three idle-resetting strategies are all policies over
// the same records.
//
// Internally the ledger is fully indexed so the admission hot path never
// scans the job map: per-processor entry sets serve CompletedOn, a
// task→jobs index serves RemoveTask, and jobs are aggregated into
// processor-visit signature groups with cached AUB sums so Admissible only
// re-evaluates the groups whose processors a candidate perturbs.
//
// Ledger is not safe for concurrent use; the admission controller serializes
// access (the paper's architecture is a single centralized AC).
type Ledger struct {
	util []float64
	term []float64 // term[p] = AUBTerm(util[p]), maintained with util
	jobs map[jobKey]*jobRec

	// taskIDs interns task names to dense IDs (never removed; a task
	// re-registered after RemoveTask reuses its ID) and taskNames maps back.
	taskIDs   map[string]int32
	taskNames []string

	procEntries [][]*entry           // active entries per processor (swap-remove via entry.procPos)
	taskJobs    []map[int64]*jobRec  // jobs per interned task ID
	groups      map[string]*sigGroup // signature → group
	procGroups  [][]*sigGroup        // groups whose signature visits proc (swap-remove via sigGroup.procPos)
	// violated counts groups with counted > 0 whose cachedSum already
	// exceeds 1: while any exist, no candidate is admissible (adding
	// utilization can only grow a group's sum).
	violated int

	// Record pools: entry, jobRec and sigGroup records cycle through free
	// lists instead of the heap, so steady-state admission traffic (admit →
	// reset/expire → forget) allocates nothing once the pools warm up.
	// Recycling happens only in forgetJob/leaveGroup, after every index has
	// dropped its pointer.
	freeEntries []*entry
	freeRecs    []*jobRec
	freeGroups  []*sigGroup

	// Signature scratch for reindex: parallel (proc, count) arrays and the
	// encoding buffer, reused across calls so deriving a job's signature
	// allocates only when a previously unseen signature creates a group.
	sigProcs  []int
	sigCounts []int
	sigBuf    []byte
	// sigNames interns signature strings across group churn: a signature
	// that disappears and reappears reuses the string materialized the
	// first time. Bounded by the distinct signatures ever seen.
	sigNames map[string]string

	// candDelta/candTerm are Admissible's dense scratch: the candidate's
	// per-processor utilization delta and the tentative AUB terms of the
	// perturbed processors, computed once per test instead of once per
	// signature-group visit. Zeroed (for the touched processors) on exit.
	candDelta []float64
	candTerm  []float64
}

// NewLedger returns an empty ledger over numProcs processors numbered
// 0..numProcs-1.
func NewLedger(numProcs int) *Ledger {
	l := &Ledger{
		util:        make([]float64, numProcs),
		term:        make([]float64, numProcs),
		jobs:        make(map[jobKey]*jobRec),
		taskIDs:     make(map[string]int32),
		procEntries: make([][]*entry, numProcs),
		groups:      make(map[string]*sigGroup),
		procGroups:  make([][]*sigGroup, numProcs),
	}
	return l
}

// NumProcs returns the number of processors the ledger tracks.
func (l *Ledger) NumProcs() int { return len(l.util) }

// allocEntry takes a zeroed entry from the pool.
func (l *Ledger) allocEntry() *entry {
	if n := len(l.freeEntries); n > 0 {
		e := l.freeEntries[n-1]
		l.freeEntries = l.freeEntries[:n-1]
		*e = entry{}
		return e
	}
	return &entry{}
}

// allocRec takes an empty job record from the pool, keeping its entries
// capacity.
func (l *Ledger) allocRec() *jobRec {
	if n := len(l.freeRecs); n > 0 {
		r := l.freeRecs[n-1]
		l.freeRecs = l.freeRecs[:n-1]
		return r
	}
	return &jobRec{}
}

// allocGroup takes an empty signature group from the pool.
func (l *Ledger) allocGroup() *sigGroup {
	if n := len(l.freeGroups); n > 0 {
		g := l.freeGroups[n-1]
		l.freeGroups = l.freeGroups[:n-1]
		return g
	}
	return &sigGroup{}
}

// internTask returns the dense ID for a task name, creating one (with its
// empty per-task job index) on first use.
func (l *Ledger) internTask(task string) int32 {
	if tid, ok := l.taskIDs[task]; ok {
		return tid
	}
	tid := int32(len(l.taskNames))
	l.taskIDs[task] = tid
	l.taskNames = append(l.taskNames, task)
	l.taskJobs = append(l.taskJobs, nil)
	return tid
}

// lookupJob resolves a public job reference against the interned indexes.
func (l *Ledger) lookupJob(ref JobRef) (*jobRec, jobKey, bool) {
	tid, ok := l.taskIDs[ref.Task]
	if !ok {
		return nil, jobKey{}, false
	}
	k := jobKey{tid, ref.Job}
	rec, ok := l.jobs[k]
	return rec, k, ok
}

// procEntryAdd appends an active entry to its processor's index, recording
// its position for O(1) swap-removal.
func (l *Ledger) procEntryAdd(e *entry) {
	s := l.procEntries[e.proc]
	e.procPos = len(s)
	l.procEntries[e.proc] = append(s, e)
}

// procEntryRemove swap-removes an entry from its processor's index.
func (l *Ledger) procEntryRemove(e *entry) {
	s := l.procEntries[e.proc]
	last := len(s) - 1
	moved := s[last]
	s[e.procPos] = moved
	moved.procPos = e.procPos
	s[last] = nil
	l.procEntries[e.proc] = s[:last]
}

// procGroupAdd registers a group in the per-processor group index of every
// processor its signature visits.
func (l *Ledger) procGroupAdd(g *sigGroup) {
	g.procPos = g.procPos[:0]
	for _, p := range g.procs {
		s := l.procGroups[p]
		g.procPos = append(g.procPos, len(s))
		l.procGroups[p] = append(s, g)
	}
}

// procGroupRemove swap-removes a group from every per-processor index it is
// registered in, fixing the moved group's back-pointer for that processor.
func (l *Ledger) procGroupRemove(g *sigGroup) {
	for i, p := range g.procs {
		s := l.procGroups[p]
		last := len(s) - 1
		pos := g.procPos[i]
		moved := s[last]
		s[pos] = moved
		if moved != g {
			for j, mp := range moved.procs {
				if mp == p {
					moved.procPos[j] = pos
					break
				}
			}
		}
		s[last] = nil
		l.procGroups[p] = s[:last]
	}
}

// signatureInto computes rec's processor-visit signature into the ledger's
// scratch buffers: the returned bytes are the canonical encoding (empty when
// the job has no active contribution) and l.sigProcs/l.sigCounts hold the
// sorted distinct processors with their entry counts. The encoding is
// byte-identical to jobRec.signature's, without the per-call map, slice and
// string allocations.
func (l *Ledger) signatureInto(j *jobRec) []byte {
	procs := l.sigProcs[:0]
	counts := l.sigCounts[:0]
	for _, e := range j.entries {
		if e.removed != 0 {
			continue
		}
		found := false
		for i := range procs {
			if procs[i] == e.proc {
				counts[i]++
				found = true
				break
			}
		}
		if !found {
			procs = append(procs, e.proc)
			counts = append(counts, 1)
		}
	}
	// Insertion sort of the parallel arrays; a job has at most a handful of
	// stages.
	for i := 1; i < len(procs); i++ {
		for k := i; k > 0 && procs[k] < procs[k-1]; k-- {
			procs[k], procs[k-1] = procs[k-1], procs[k]
			counts[k], counts[k-1] = counts[k-1], counts[k]
		}
	}
	buf := l.sigBuf[:0]
	for i, p := range procs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(p), 10)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, int64(counts[i]), 10)
	}
	l.sigProcs, l.sigCounts, l.sigBuf = procs, counts, buf
	return buf
}

// internSig returns the canonical string for a signature encoding,
// materializing it at most once per distinct signature.
func (l *Ledger) internSig(sig []byte) string {
	if s, ok := l.sigNames[string(sig)]; ok {
		return s
	}
	if l.sigNames == nil {
		l.sigNames = make(map[string]string)
	}
	s := string(sig)
	l.sigNames[s] = s
	return s
}

// Util returns the current synthetic utilization of the processor.
func (l *Ledger) Util(proc int) float64 {
	if proc < 0 || proc >= len(l.util) {
		return 0
	}
	return l.util[proc]
}

// Utils returns a copy of all per-processor synthetic utilizations.
func (l *Ledger) Utils() []float64 {
	return append([]float64(nil), l.util...)
}

// addUtil changes a processor's utilization and settles its caches. Batch
// mutations touching several entries use raw util adjustments plus one
// settleProc per distinct processor instead, so shared signature groups are
// refreshed once per processor rather than once per entry.
func (l *Ledger) addUtil(proc int, amount float64) {
	l.util[proc] += amount
	l.settleProc(proc)
}

// settleProc finalizes a processor after raw utilization adjustments:
// clamps tiny negative floating-point residue to zero, recaches the AUB
// term, and refreshes the cached sums of every signature group visiting the
// processor.
func (l *Ledger) settleProc(proc int) {
	if l.util[proc] < 0 && l.util[proc] > -1e-9 {
		l.util[proc] = 0
	}
	l.term[proc] = AUBTerm(l.util[proc])
	for _, g := range l.procGroups[proc] {
		l.refreshGroupSum(g)
	}
}

// touchProc appends a processor to a small deduplicated batch buffer.
func touchProc(procs []int, proc int) []int {
	for _, p := range procs {
		if p == proc {
			return procs
		}
	}
	return append(procs, proc)
}

// refreshGroupSum recomputes a group's cached AUB sum from the current
// per-processor terms (a fresh deterministic sum over the sorted signature,
// never an incremental adjustment, so the cache cannot drift), maintaining
// the violated counter.
func (l *Ledger) refreshGroupSum(g *sigGroup) {
	was := g.counted > 0 && g.cachedSum > 1
	var s float64
	for i, p := range g.procs {
		s += float64(g.counts[i]) * l.term[p]
	}
	g.cachedSum = s
	l.flipViolated(g, was)
}

// flipViolated adjusts the violated counter after a group's counted or
// cachedSum changed; was is the group's violation status before the change.
func (l *Ledger) flipViolated(g *sigGroup, was bool) {
	now := g.counted > 0 && g.cachedSum > 1
	if was && !now {
		l.violated--
	} else if !was && now {
		l.violated++
	}
}

// setCounted flips a job's membership in its group's counted tally.
func (l *Ledger) setCounted(rec *jobRec, counted bool) {
	g := rec.group
	if g == nil || rec.counted == counted {
		rec.counted = counted && g != nil
		return
	}
	was := g.counted > 0 && g.cachedSum > 1
	if counted {
		g.counted++
	} else {
		g.counted--
	}
	rec.counted = counted
	l.flipViolated(g, was)
}

// leaveGroup detaches a job from its current signature group, releasing the
// group when the last member leaves.
func (l *Ledger) leaveGroup(rec *jobRec) {
	g := rec.group
	if g == nil {
		return
	}
	l.setCounted(rec, false)
	g.members--
	if g.members == 0 {
		delete(l.groups, g.sig)
		l.procGroupRemove(g)
		// Recycle: an empty group can never be violated (that requires
		// counted > 0), so dropping it does not touch the violated counter.
		g.sig = ""
		g.procs = g.procs[:0]
		g.counts = g.counts[:0]
		g.counted = 0
		g.cachedSum = 0
		l.freeGroups = append(l.freeGroups, g)
	}
	rec.group = nil
}

// reindex re-derives a job's signature group membership and counted status
// after any mutation of its entries. It must run after the utilization
// updates of the same mutation so a newly created group caches the final
// sums.
func (l *Ledger) reindex(rec *jobRec) {
	sig := l.signatureInto(rec)
	// string(sig) in the comparison and map lookup below does not allocate;
	// the signature is only materialized as a string when a new group is
	// created.
	if rec.group == nil || rec.group.sig != string(sig) {
		l.leaveGroup(rec)
		if len(sig) > 0 {
			g, ok := l.groups[string(sig)]
			if !ok {
				g = l.allocGroup()
				g.sig = l.internSig(sig)
				g.procs = append(g.procs[:0], l.sigProcs...)
				g.counts = append(g.counts[:0], l.sigCounts...)
				l.groups[g.sig] = g
				l.procGroupAdd(g)
				// Fill the cache; with no counted members yet the
				// violated flip inside is a no-op.
				l.refreshGroupSum(g)
			}
			g.members++
			rec.group = g
		}
	}
	l.setCounted(rec, rec.group != nil && rec.inFlight() && rec.active())
}

// forgetJob removes a job record and all its index state. The caller has
// already settled the job's utilization contributions.
func (l *Ledger) forgetJob(k jobKey, rec *jobRec) {
	l.leaveGroup(rec)
	for _, e := range rec.entries {
		if e.removed == 0 {
			l.procEntryRemove(e)
		}
	}
	delete(l.jobs, k)
	if jobs := l.taskJobs[k.tid]; jobs != nil {
		// The emptied inner map is kept: the task's next job reuses it (and
		// its buckets), so steady-state admit/expire churn does not
		// reallocate the index. RemoveTask drops the whole map.
		delete(jobs, k.job)
	}
	// Every index has dropped the record; recycle it and its entries.
	for i, e := range rec.entries {
		l.freeEntries = append(l.freeEntries, e)
		rec.entries[i] = nil
	}
	rec.entries = rec.entries[:0]
	rec.group = nil
	rec.counted = false
	l.freeRecs = append(l.freeRecs, rec)
}

// AddJob records the contributions of an admitted job placed per placement.
// When permanent is true the contributions never expire (the per-task
// admission strategy reserves a periodic task's synthetic utilization for
// its whole lifetime); otherwise expiry is the job's absolute deadline.
// Adding an already-present job is an error: the admission controller must
// not double-admit.
func (l *Ledger) AddJob(ref JobRef, kind TaskKind, placement []PlacedStage, permanent bool, expiry time.Duration) error {
	k := jobKey{l.internTask(ref.Task), ref.Job}
	if _, ok := l.jobs[k]; ok {
		return fmt.Errorf("sched: job %s already in ledger", ref)
	}
	for _, p := range placement {
		if p.Proc < 0 || p.Proc >= len(l.util) {
			return fmt.Errorf("sched: job %s stage %d placed on unknown processor %d", ref, p.Stage, p.Proc)
		}
		if p.Util < 0 {
			return fmt.Errorf("sched: job %s stage %d has negative utilization %g", ref, p.Stage, p.Util)
		}
	}
	rec := l.allocRec()
	var touchedBuf [8]int
	touched := touchedBuf[:0]
	for _, p := range placement {
		e := l.allocEntry()
		e.ref = ref
		e.stage = p.Stage
		e.proc = p.Proc
		e.amount = p.Util
		e.kind = kind
		e.permanent = permanent
		e.expiry = expiry
		rec.entries = append(rec.entries, e)
		l.procEntryAdd(e)
		l.util[p.Proc] += p.Util
		touched = touchProc(touched, p.Proc)
	}
	for _, p := range touched {
		l.settleProc(p)
	}
	l.jobs[k] = rec
	jobs := l.taskJobs[k.tid]
	if jobs == nil {
		jobs = make(map[int64]*jobRec)
		l.taskJobs[k.tid] = jobs
	}
	jobs[k.job] = rec
	l.reindex(rec)
	return nil
}

// ExpireJob removes all remaining contributions of the job because its
// absolute deadline passed, and forgets the job. Permanent entries are not
// removed by expiry (per-task reservations outlive individual deadlines);
// jobs made only of permanent entries are left in place. It returns the
// number of contributions removed.
func (l *Ledger) ExpireJob(ref JobRef) int {
	rec, k, ok := l.lookupJob(ref)
	if !ok {
		return 0
	}
	n := 0
	permanentOnly := true
	var touchedBuf [8]int
	touched := touchedBuf[:0]
	for _, e := range rec.entries {
		if e.permanent {
			continue
		}
		permanentOnly = false
		if e.removed == 0 {
			e.removed = RemovedExpiry
			l.procEntryRemove(e)
			l.util[e.proc] -= e.amount
			touched = touchProc(touched, e.proc)
			n++
		}
	}
	for _, p := range touched {
		l.settleProc(p)
	}
	if !permanentOnly {
		l.forgetJob(k, rec)
	}
	return n
}

// WithdrawJob removes every remaining contribution of one job — including
// permanent per-task reservation entries, which ExpireJob deliberately skips
// — and forgets the job. It is the reconfiguration rebase primitive: when
// the admission strategy moves away from per-task control, each task's
// permanent reservation is withdrawn so the ledger reflects only per-job
// contributions under the new strategy. It returns the number of
// contributions removed.
func (l *Ledger) WithdrawJob(ref JobRef) int {
	rec, k, ok := l.lookupJob(ref)
	if !ok {
		return 0
	}
	n := 0
	var touchedBuf [8]int
	touched := touchedBuf[:0]
	for _, e := range rec.entries {
		if e.removed == 0 {
			e.removed = RemovedWithdrawal
			l.procEntryRemove(e)
			l.util[e.proc] -= e.amount
			touched = touchProc(touched, e.proc)
			n++
		}
	}
	for _, p := range touched {
		l.settleProc(p)
	}
	l.forgetJob(k, rec)
	return n
}

// RemoveTask withdraws a permanent per-task reservation entirely (the task
// left the system). It returns the number of contributions removed.
func (l *Ledger) RemoveTask(task string) int {
	tid, ok := l.taskIDs[task]
	if !ok {
		return 0
	}
	n := 0
	// Withdraw in job order, not map order: the per-processor subtraction
	// sequence determines the exact floating-point residue, and a
	// deterministic order keeps independently driven ledgers (shards, replay
	// harnesses, golden runs) bit-identical.
	jobIDs := make([]int64, 0, len(l.taskJobs[tid]))
	for job := range l.taskJobs[tid] {
		jobIDs = append(jobIDs, job)
	}
	sort.Slice(jobIDs, func(i, j int) bool { return jobIDs[i] < jobIDs[j] })
	for _, job := range jobIDs {
		rec := l.taskJobs[tid][job]
		var touchedBuf [8]int
		touched := touchedBuf[:0]
		for _, e := range rec.entries {
			if e.removed == 0 {
				e.removed = RemovedWithdrawal
				l.procEntryRemove(e)
				l.util[e.proc] -= e.amount
				touched = touchProc(touched, e.proc)
				n++
			}
		}
		for _, p := range touched {
			l.settleProc(p)
		}
		l.forgetJob(jobKey{tid, job}, rec)
	}
	l.taskJobs[tid] = nil
	return n
}

// MarkComplete records that the subjob of the given stage finished
// executing, making its contribution eligible for idle resetting. Unknown
// references are ignored (the job may already have expired).
func (l *Ledger) MarkComplete(ref JobRef, stage int) {
	rec, _, ok := l.lookupJob(ref)
	if !ok {
		return
	}
	l.markCompleteRec(rec, stage)
}

// markCompleteRec is MarkComplete after the job lookup.
func (l *Ledger) markCompleteRec(rec *jobRec, stage int) {
	changed := false
	for _, e := range rec.entries {
		if e.stage == stage && !e.completed {
			e.completed = true
			changed = true
		}
	}
	if changed {
		// The active set — and with it the signature group — is unchanged,
		// but the job may have left the in-flight set, which drops it from
		// the admission test.
		l.setCounted(rec, rec.group != nil && rec.inFlight() && rec.active())
	}
}

// ResetEntry applies the idle resetting rule to a single reported
// contribution: if the entry is known, completed, and still active, its
// contribution is removed. It returns true if utilization was released.
// Permanent (per-task reserved) entries are never reset: the per-task
// admission strategy must keep the reservation, which is exactly why the
// AC-per-task/IR-per-job combination is invalid.
func (l *Ledger) ResetEntry(r EntryRef) bool {
	rec, _, ok := l.lookupJob(r.Ref)
	if !ok {
		return false
	}
	return l.resetEntryRec(rec, r)
}

// resetEntryRec is ResetEntry after the job lookup.
func (l *Ledger) resetEntryRec(rec *jobRec, r EntryRef) bool {
	for _, e := range rec.entries {
		if e.stage != r.Stage || e.proc != r.Proc {
			continue
		}
		if e.permanent || !e.completed || e.removed != 0 {
			return false
		}
		e.removed = RemovedIdleReset
		l.procEntryRemove(e)
		l.addUtil(e.proc, -e.amount)
		l.reindex(rec)
		return true
	}
	return false
}

// ResetReported applies one idle-resetting report entry: MarkComplete
// followed by ResetEntry, with a single job lookup. It is behaviorally
// identical to calling the two methods in that order — the admission
// controller's hot path for "Idle Resetting" events uses it, while the two
// standalone methods remain the granular API (and the differential property
// test's ground truth).
func (l *Ledger) ResetReported(r EntryRef) bool {
	rec, _, ok := l.lookupJob(r.Ref)
	if !ok {
		return false
	}
	l.markCompleteRec(rec, r.Stage)
	return l.resetEntryRec(rec, r)
}

// CompletedOn returns the completed, still-active contributions on the given
// processor, optionally restricted to aperiodic tasks. Idle resetter
// components use it (in the simulation binding) to build their report when
// the processor goes idle. It reads the per-processor entry index, so the
// cost scales with the processor's own entries rather than the whole job
// map. Results are ordered deterministically.
func (l *Ledger) CompletedOn(proc int, includePeriodic bool) []EntryRef {
	if proc < 0 || proc >= len(l.procEntries) {
		return nil
	}
	var out []EntryRef
	for _, e := range l.procEntries[proc] {
		if !e.completed || e.removed != 0 || e.permanent {
			continue
		}
		if !includePeriodic && e.kind == Periodic {
			continue
		}
		out = append(out, EntryRef{Ref: e.ref, Stage: e.stage, Proc: e.proc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ref.Task != out[j].Ref.Task {
			return out[i].Ref.Task < out[j].Ref.Task
		}
		if out[i].Ref.Job != out[j].Ref.Job {
			return out[i].Ref.Job < out[j].Ref.Job
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// Relocate moves the active contributions of a job to a new placement (used
// by AC-per-task with LB-per-job, where an admitted task's reservation
// follows the jobs). Completed/removed entries are left as-is.
func (l *Ledger) Relocate(ref JobRef, placement []PlacedStage) error {
	rec, _, ok := l.lookupJob(ref)
	if !ok {
		return fmt.Errorf("sched: relocate: job %s not in ledger", ref)
	}
	byStage := make(map[int]PlacedStage, len(placement))
	for _, p := range placement {
		if p.Proc < 0 || p.Proc >= len(l.util) {
			return fmt.Errorf("sched: relocate: job %s stage %d on unknown processor %d", ref, p.Stage, p.Proc)
		}
		byStage[p.Stage] = p
	}
	var touchedBuf [8]int
	touched := touchedBuf[:0]
	for _, e := range rec.entries {
		p, ok := byStage[e.stage]
		if !ok || e.removed != 0 || e.proc == p.Proc {
			continue
		}
		l.procEntryRemove(e)
		l.util[e.proc] -= e.amount
		touched = touchProc(touched, e.proc)
		e.proc = p.Proc
		e.amount = p.Util
		l.procEntryAdd(e)
		l.util[e.proc] += p.Util
		touched = touchProc(touched, e.proc)
	}
	if len(touched) > 0 {
		for _, p := range touched {
			l.settleProc(p)
		}
		l.reindex(rec)
	}
	return nil
}

// Admissible evaluates the AUB admission test for a candidate job with the
// given placement: with the candidate's contributions tentatively added,
// condition (1) must continue to hold for the candidate and for every
// in-flight job in the current task set. It does not modify the ledger.
//
// The evaluation is indexed: jobs visiting none of the candidate's
// processors keep their cached (already ≤ 1, else the violated counter
// short-circuits) sums untouched, and the perturbed jobs are evaluated once
// per distinct processor-visit signature instead of once per job. The
// decision is equivalent to the full-scan referenceAdmissible.
//
//rtmw:noalloc
func (l *Ledger) Admissible(placement []PlacedStage) bool {
	for _, p := range placement {
		if p.Util < 0 {
			// Negative candidates void the monotonicity the fast path
			// relies on; fall back to the reference evaluation.
			return l.referenceAdmissible(placement)
		}
	}
	if l.candDelta == nil {
		//rtmw:ignore noalloc one-time lazy scratch, amortized to zero over the ledger's life
		l.candDelta = make([]float64, len(l.util))
		//rtmw:ignore noalloc one-time lazy scratch, amortized to zero over the ledger's life
		l.candTerm = make([]float64, len(l.util))
	}
	// Dense candidate deltas, accumulated in placement order so the sums
	// are bit-identical to a per-processor candidateDelta walk, plus the
	// tentative AUB term of each perturbed processor, computed once per
	// test instead of once per signature-group visit.
	delta, tent := l.candDelta, l.candTerm
	var procsBuf [8]int
	touched := procsBuf[:0]
	for _, p := range placement {
		delta[p.Proc] += p.Util
		touched = touchProc(touched, p.Proc)
	}
	for _, p := range touched {
		tent[p] = AUBTerm(l.util[p] + delta[p])
	}
	ok := l.admitScan(placement, delta, tent, touched)
	for _, p := range touched {
		delta[p] = 0
		tent[p] = 0
	}
	return ok
}

// admitScan is Admissible after the scratch is primed; split out so every
// early return shares the caller's scratch cleanup.
//
//rtmw:noalloc
func (l *Ledger) admitScan(placement []PlacedStage, delta, tent []float64, touched []int) bool {
	// Candidate's own condition under the tentative utilizations.
	var sum float64
	for _, p := range placement {
		sum += tent[p.Proc]
	}
	if sum > 1 {
		return false
	}

	// Some in-flight job already violates its condition without the
	// candidate; adding utilization cannot repair it.
	if l.violated > 0 {
		return false
	}

	// Re-evaluate only the signature groups that visit a perturbed
	// processor; every other in-flight job's sum is its cached sum, which
	// the violated counter already vouches for. Unperturbed processors use
	// the cached term (term[p] = AUBTerm(util[p]) by invariant), so the
	// evaluation is bit-identical to recomputing every term.
	var seenBuf [16]*sigGroup
	seen := seenBuf[:0]
	for _, pp := range touched {
		if delta[pp] == 0 {
			continue
		}
		for _, g := range l.procGroups[pp] {
			if g.counted == 0 {
				continue
			}
			visited := false
			for _, s := range seen {
				if s == g {
					visited = true
					break
				}
			}
			if visited {
				continue
			}
			seen = append(seen, g)
			var s float64
			for qi, q := range g.procs {
				t := l.term[q]
				if delta[q] != 0 {
					t = tent[q]
				}
				s += float64(g.counts[qi]) * t
				if s > 1 {
					return false
				}
			}
		}
	}
	return true
}

// referenceAdmissible is the paper-literal full-scan admission test: every
// in-flight job's condition is recomputed from its entry records. It is the
// behavioral reference for the indexed Admissible, kept for CheckInvariants
// and the differential property tests.
func (l *Ledger) referenceAdmissible(placement []PlacedStage) bool {
	delta := make(map[int]float64, len(placement))
	for _, p := range placement {
		delta[p.Proc] += p.Util
	}
	utilAt := func(proc int) float64 {
		return l.util[proc] + delta[proc]
	}

	// Candidate's own condition.
	var sum float64
	for _, p := range placement {
		sum += AUBTerm(utilAt(p.Proc))
	}
	if sum > 1 {
		return false
	}

	// Condition for every in-flight admitted job, over the processors its
	// active contributions visit. Fully completed jobs cannot miss their
	// deadlines anymore and are skipped.
	for _, rec := range l.jobs {
		if !rec.inFlight() || !rec.active() {
			continue
		}
		var s float64
		for _, e := range rec.entries {
			if e.removed != 0 {
				continue
			}
			s += AUBTerm(utilAt(e.proc))
			if s > 1 {
				return false
			}
		}
	}
	return true
}

// ActiveJobs returns the references of jobs that still hold at least one
// active contribution, in deterministic order. Intended for tests and
// instrumentation.
func (l *Ledger) ActiveJobs() []JobRef {
	var out []JobRef
	for k, rec := range l.jobs {
		if rec.active() {
			out = append(out, JobRef{Task: l.taskNames[k.tid], Job: k.job})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Task != out[j].Task {
			return out[i].Task < out[j].Task
		}
		return out[i].Job < out[j].Job
	})
	return out
}

// CheckInvariants recomputes per-processor utilization from entry records
// and verifies it matches the running sums within tolerance, that no
// utilization is negative, and that every index (per-processor entries,
// task→jobs, signature groups with their cached sums and the violated
// counter) agrees with the ground-truth records. It also cross-checks the
// indexed Admissible against referenceAdmissible on the empty candidate.
// Property tests call it after random operation sequences.
func (l *Ledger) CheckInvariants() error {
	recomputed := make([]float64, len(l.util))
	activeEntries := 0
	for _, rec := range l.jobs {
		for _, e := range rec.entries {
			if e.removed == 0 {
				recomputed[e.proc] += e.amount
				activeEntries++
				if pe := l.procEntries[e.proc]; e.procPos < 0 || e.procPos >= len(pe) || pe[e.procPos] != e {
					return fmt.Errorf("sched: active entry %s/%d missing from processor %d index", e.ref, e.stage, e.proc)
				}
			}
		}
	}
	for p := range l.util {
		if l.util[p] < 0 {
			return fmt.Errorf("sched: processor %d has negative utilization %g", p, l.util[p])
		}
		if diff := math.Abs(l.util[p] - recomputed[p]); diff > 1e-6 {
			return fmt.Errorf("sched: processor %d utilization drift: running %g vs recomputed %g", p, l.util[p], recomputed[p])
		}
		if l.term[p] != AUBTerm(l.util[p]) {
			return fmt.Errorf("sched: processor %d has stale AUB term cache", p)
		}
	}
	indexed := 0
	for p := range l.procEntries {
		indexed += len(l.procEntries[p])
		for _, e := range l.procEntries[p] {
			if e.removed != 0 {
				return fmt.Errorf("sched: removed entry %s/%d still in processor %d index", e.ref, e.stage, p)
			}
			if e.proc != p {
				return fmt.Errorf("sched: entry %s/%d indexed under processor %d but placed on %d", e.ref, e.stage, p, e.proc)
			}
		}
	}
	if indexed != activeEntries {
		return fmt.Errorf("sched: processor index holds %d entries, records hold %d", indexed, activeEntries)
	}

	taskIndexed := 0
	for tid, jobs := range l.taskJobs {
		for job, rec := range jobs {
			taskIndexed++
			if l.jobs[jobKey{int32(tid), job}] != rec {
				return fmt.Errorf("sched: task index entry %s/%d does not match job map", l.taskNames[tid], job)
			}
		}
	}
	if taskIndexed != len(l.jobs) {
		return fmt.Errorf("sched: task index holds %d jobs, job map holds %d", taskIndexed, len(l.jobs))
	}

	members := make(map[*sigGroup]int)
	counted := make(map[*sigGroup]int)
	for k, rec := range l.jobs {
		task := l.taskNames[k.tid]
		sig, _, _ := rec.signature()
		switch {
		case sig == "" && rec.group != nil:
			return fmt.Errorf("sched: inactive job %s/%d still grouped", task, k.job)
		case sig != "" && rec.group == nil:
			return fmt.Errorf("sched: active job %s/%d has no signature group", task, k.job)
		case rec.group != nil && rec.group.sig != sig:
			return fmt.Errorf("sched: job %s/%d grouped under %q, signature is %q", task, k.job, rec.group.sig, sig)
		}
		if rec.group != nil {
			members[rec.group]++
			want := rec.inFlight() && rec.active()
			if rec.counted != want {
				return fmt.Errorf("sched: job %s/%d counted=%v, want %v", task, k.job, rec.counted, want)
			}
			if rec.counted {
				counted[rec.group]++
			}
		}
	}
	wantViolated := 0
	for sig, g := range l.groups {
		if g.sig != sig {
			return fmt.Errorf("sched: group keyed %q names itself %q", sig, g.sig)
		}
		if g.members != members[g] {
			return fmt.Errorf("sched: group %q has %d members, records show %d", sig, g.members, members[g])
		}
		if g.counted != counted[g] {
			return fmt.Errorf("sched: group %q counts %d in-flight jobs, records show %d", sig, g.counted, counted[g])
		}
		if len(g.counts) != len(g.procs) {
			return fmt.Errorf("sched: group %q has %d counts for %d processors", sig, len(g.counts), len(g.procs))
		}
		var s float64
		for i, p := range g.procs {
			s += float64(g.counts[i]) * l.term[p]
		}
		if math.Abs(s-g.cachedSum) > 1e-9 && !(math.IsInf(s, 1) && math.IsInf(g.cachedSum, 1)) {
			return fmt.Errorf("sched: group %q cached sum %g, recomputed %g", sig, g.cachedSum, s)
		}
		for i, p := range g.procs {
			pg := l.procGroups[p]
			if i >= len(g.procPos) || g.procPos[i] < 0 || g.procPos[i] >= len(pg) || pg[g.procPos[i]] != g {
				return fmt.Errorf("sched: group %q missing from processor %d group index", sig, p)
			}
		}
		if g.counted > 0 && g.cachedSum > 1 {
			wantViolated++
		}
	}
	if len(members) != len(l.groups) {
		return fmt.Errorf("sched: %d groups referenced by jobs, %d registered", len(members), len(l.groups))
	}
	for p := range l.procGroups {
		for _, g := range l.procGroups[p] {
			if l.groups[g.sig] != g {
				return fmt.Errorf("sched: processor %d group index holds unregistered group %q", p, g.sig)
			}
		}
	}
	if l.violated != wantViolated {
		return fmt.Errorf("sched: violated counter %d, recomputed %d", l.violated, wantViolated)
	}

	if fast, ref := l.Admissible(nil), l.referenceAdmissible(nil); fast != ref {
		// The indexed path sums count[p]·f(u_p) over sorted processors, the
		// reference sums f(u_p) once per entry in record order; at a job sum
		// within rounding distance of the bound the two can legitimately
		// land on opposite sides, so only flag disagreements away from it.
		if !l.nearAUBBoundary(1e-9) {
			return fmt.Errorf("sched: indexed Admissible(nil)=%v disagrees with reference %v", fast, ref)
		}
	}
	return nil
}

// nearAUBBoundary reports whether any in-flight job's AUB sum lies within
// eps of the admission bound 1, where floating-point summation order can
// flip the decision.
func (l *Ledger) nearAUBBoundary(eps float64) bool {
	for _, rec := range l.jobs {
		if !rec.inFlight() || !rec.active() {
			continue
		}
		var s float64
		for _, e := range rec.entries {
			if e.removed == 0 {
				s += AUBTerm(l.util[e.proc])
			}
		}
		if math.Abs(s-1) <= eps {
			return true
		}
	}
	return false
}
