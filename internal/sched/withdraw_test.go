package sched

import (
	"testing"
	"time"
)

// TestWithdrawJob pins the reconfiguration rebase primitive: unlike
// ExpireJob, WithdrawJob removes permanent reservation entries too, and
// leaves every ledger index consistent.
func TestWithdrawJob(t *testing.T) {
	l := NewLedger(2)
	ref := JobRef{Task: "res", Job: 0}
	placement := []PlacedStage{
		{Stage: 0, Proc: 0, Util: 0.3},
		{Stage: 1, Proc: 1, Util: 0.2},
	}
	if err := l.AddJob(ref, Periodic, placement, true, 0); err != nil {
		t.Fatal(err)
	}
	// Expiry must not touch the permanent reservation...
	if n := l.ExpireJob(ref); n != 0 {
		t.Errorf("ExpireJob removed %d permanent contributions", n)
	}
	if got := l.Util(0); got != 0.3 {
		t.Errorf("util after expiry attempt = %g", got)
	}
	// ...but withdrawal removes it entirely.
	if n := l.WithdrawJob(ref); n != 2 {
		t.Errorf("WithdrawJob removed %d contributions, want 2", n)
	}
	if got := l.Util(0); got != 0 {
		t.Errorf("util(0) after withdrawal = %g", got)
	}
	if got := l.Util(1); got != 0 {
		t.Errorf("util(1) after withdrawal = %g", got)
	}
	if n := l.WithdrawJob(ref); n != 0 {
		t.Errorf("second withdrawal removed %d", n)
	}
	if n := l.WithdrawJob(JobRef{Task: "ghost", Job: 9}); n != 0 {
		t.Errorf("unknown-job withdrawal removed %d", n)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWithdrawJobMixedEntries pins withdrawal of a job whose entries are
// partially completed and partially reset.
func TestWithdrawJobMixedEntries(t *testing.T) {
	l := NewLedger(2)
	ref := JobRef{Task: "mix", Job: 1}
	placement := []PlacedStage{
		{Stage: 0, Proc: 0, Util: 0.25},
		{Stage: 1, Proc: 1, Util: 0.25},
	}
	if err := l.AddJob(ref, Aperiodic, placement, false, time.Hour); err != nil {
		t.Fatal(err)
	}
	l.MarkComplete(ref, 0)
	if !l.ResetEntry(EntryRef{Ref: ref, Stage: 0, Proc: 0}) {
		t.Fatal("reset failed")
	}
	// Only the stage-1 entry is still active.
	if n := l.WithdrawJob(ref); n != 1 {
		t.Errorf("WithdrawJob removed %d contributions, want 1", n)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := l.ActiveJobs(); len(got) != 0 {
		t.Errorf("active jobs after withdrawal: %v", got)
	}
}
