package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestEDMSPermutationInvariant checks with testing/quick that EDMS priority
// assignment depends only on the task set, not on input order.
func TestEDMSPermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		mk := func() []*Task {
			tasks := make([]*Task, n)
			for i := range tasks {
				tasks[i] = &Task{
					ID:       string(rune('a' + i)),
					Kind:     Aperiodic,
					Deadline: time.Duration(1+rng.Intn(5)) * time.Second,
					Subtasks: []Subtask{{Exec: time.Millisecond}},
				}
			}
			return tasks
		}
		base := mk()
		prio := make(map[string]int, n)
		AssignEDMSPriorities(base)
		for _, tk := range base {
			prio[tk.ID] = tk.Priority
		}
		// Shuffle copies of the same tasks (same IDs and deadlines).
		shuffled := make([]*Task, n)
		for i, tk := range base {
			c := tk.Clone()
			c.Priority = 0
			shuffled[i] = c
		}
		rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		AssignEDMSPriorities(shuffled)
		for _, tk := range shuffled {
			if prio[tk.ID] != tk.Priority {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestEDMSPrioritiesAreDense checks that priorities are exactly 1..n.
func TestEDMSPrioritiesAreDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		tasks := make([]*Task, n)
		for i := range tasks {
			tasks[i] = &Task{
				ID:       string(rune('A' + i)),
				Kind:     Aperiodic,
				Deadline: time.Duration(1+rng.Intn(3)) * time.Second,
				Subtasks: []Subtask{{Exec: time.Millisecond}},
			}
		}
		AssignEDMSPriorities(tasks)
		seen := make(map[int]bool, n)
		for _, tk := range tasks {
			seen[tk.Priority] = true
		}
		for p := 1; p <= n; p++ {
			if !seen[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestAUBTermBounds property-checks that the AUB term stays within its
// analytical envelope: u ≤ f(u) for u in [0,1) (pessimism) and f(u) < ∞
// below 1.
func TestAUBTermBounds(t *testing.T) {
	f := func(raw float64) bool {
		u := raw - float64(int64(raw)) // fractional part in (-1, 1)
		if u < 0 {
			u = -u
		}
		if u >= 1 {
			return true
		}
		v := AUBTerm(u)
		return v >= u && v < 1e18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLedgerAddExpireInverse property-checks that expiring a job exactly
// undoes its admission.
func TestLedgerAddExpireInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := NewLedger(4)
		// Background load.
		for i := 0; i < rng.Intn(10); i++ {
			pl := []PlacedStage{{Stage: 0, Proc: rng.Intn(4), Util: rng.Float64() * 0.2}}
			if err := l.AddJob(JobRef{Task: "bg", Job: int64(i)}, Periodic, pl, false, time.Hour); err != nil {
				return false
			}
		}
		before := l.Utils()
		ref := JobRef{Task: "x", Job: 0}
		stages := 1 + rng.Intn(3)
		pl := make([]PlacedStage, stages)
		for s := range pl {
			pl[s] = PlacedStage{Stage: s, Proc: rng.Intn(4), Util: rng.Float64() * 0.3}
		}
		if err := l.AddJob(ref, Aperiodic, pl, false, time.Hour); err != nil {
			return false
		}
		l.ExpireJob(ref)
		after := l.Utils()
		for i := range before {
			d := after[i] - before[i]
			if d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return l.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
