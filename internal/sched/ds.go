package sched

import (
	"fmt"
	"sort"
	"time"
)

// This file implements deferrable-server (DS) admission control, the
// alternative aperiodic scheduling technique the paper's prior work (Zhang
// et al., RTAS 2007) evaluated against the aperiodic utilization bound. The
// paper adopts AUB because it performs comparably with a simpler middleware
// mechanism (Section 2); this implementation exists to reproduce that
// comparison as an ablation.
//
// Model: each processor dedicates a deferrable server with budget B
// replenished every period P to aperiodic subjobs. An aperiodic job is
// admitted if, on every processor it visits, the server can supply the
// job's execution demand before its end-to-end deadline, given the work
// already committed to that server. Supply is bounded with the classic
// periodic-server supply bound function, which is conservative (safe) for a
// deferrable server.

// DeferrableServer is one processor's aperiodic server with its committed
// backlog. It is not safe for concurrent use.
type DeferrableServer struct {
	budget time.Duration
	period time.Duration

	// commitments holds admitted-but-unfinished work, by job.
	commitments map[dsKey]*dsCommitment
}

// dsKey indexes server commitments by job reference.
type dsKey struct {
	task string
	job  int64
}

// dsCommitment is one admitted job's demand on a server.
type dsCommitment struct {
	remaining time.Duration
	deadline  time.Duration // absolute virtual deadline
}

// NewDeferrableServer returns a server with the given budget and period.
// Budget must not exceed the period.
func NewDeferrableServer(budget, period time.Duration) (*DeferrableServer, error) {
	if budget <= 0 || period <= 0 || budget > period {
		return nil, fmt.Errorf("sched: invalid deferrable server (budget %v, period %v)", budget, period)
	}
	return &DeferrableServer{
		budget:      budget,
		period:      period,
		commitments: make(map[dsKey]*dsCommitment),
	}, nil
}

// Utilization returns the server's bandwidth B/P.
func (s *DeferrableServer) Utilization() float64 {
	return float64(s.budget) / float64(s.period)
}

// SupplyBound returns a lower bound on the execution time the server
// delivers in any window of the given length: the periodic-server supply
// bound function sbf(L) = max over whole replenishments plus the partial
// final chunk, offset by the worst-case initial blackout of P - B.
func (s *DeferrableServer) SupplyBound(window time.Duration) time.Duration {
	blackout := s.period - s.budget
	if window <= blackout {
		return 0
	}
	avail := window - blackout
	full := avail / s.period
	rest := avail - full*s.period
	if rest > s.budget {
		rest = s.budget
	}
	return full*s.budget + rest
}

// Admissible reports whether a new demand (exec by absolute deadline) fits:
// for every commitment deadline d (including the candidate's), the total
// remaining work due by d must not exceed the supply bound over [now, d].
// This is the EDF demand test against the server's supply.
func (s *DeferrableServer) Admissible(now time.Duration, exec time.Duration, deadline time.Duration) bool {
	if exec <= 0 || deadline <= now {
		return false
	}
	// Collect deadlines of live commitments plus the candidate.
	type point struct {
		deadline time.Duration
		work     time.Duration
	}
	points := make([]point, 0, len(s.commitments)+1)
	for _, c := range s.commitments {
		if c.deadline > now && c.remaining > 0 {
			points = append(points, point{c.deadline, c.remaining})
		}
	}
	points = append(points, point{deadline, exec})
	sort.Slice(points, func(i, j int) bool { return points[i].deadline < points[j].deadline })

	var demand time.Duration
	for _, p := range points {
		demand += p.work
		if demand > s.SupplyBound(p.deadline-now) {
			return false
		}
	}
	return true
}

// Commit records an admitted job's demand. Committing the same job twice is
// an error.
func (s *DeferrableServer) Commit(ref JobRef, exec, deadline time.Duration) error {
	k := dsKey{ref.Task, ref.Job}
	if _, ok := s.commitments[k]; ok {
		return fmt.Errorf("sched: job %s already committed to server", ref)
	}
	s.commitments[k] = &dsCommitment{remaining: exec, deadline: deadline}
	return nil
}

// Complete removes a finished job's remaining demand.
func (s *DeferrableServer) Complete(ref JobRef) {
	delete(s.commitments, dsKey{ref.Task, ref.Job})
}

// Expire drops commitments whose deadlines have passed.
func (s *DeferrableServer) Expire(now time.Duration) int {
	n := 0
	for k, c := range s.commitments {
		if c.deadline <= now {
			delete(s.commitments, k)
			n++
		}
	}
	return n
}

// Backlog returns the number of live commitments.
func (s *DeferrableServer) Backlog() int { return len(s.commitments) }

// DSAdmission is a multi-processor deferrable-server admission controller
// for end-to-end aperiodic tasks: one server per processor; a job is
// admitted only if every stage fits its processor's server.
type DSAdmission struct {
	servers []*DeferrableServer
}

// NewDSAdmission builds one server per processor with uniform budget and
// period.
func NewDSAdmission(numProcs int, budget, period time.Duration) (*DSAdmission, error) {
	if numProcs <= 0 {
		return nil, fmt.Errorf("sched: DS admission needs processors, got %d", numProcs)
	}
	servers := make([]*DeferrableServer, numProcs)
	for i := range servers {
		s, err := NewDeferrableServer(budget, period)
		if err != nil {
			return nil, err
		}
		servers[i] = s
	}
	return &DSAdmission{servers: servers}, nil
}

// Server returns processor i's server.
func (d *DSAdmission) Server(i int) *DeferrableServer { return d.servers[i] }

// Arrive tests and (if admissible) commits one aperiodic job of the task
// arriving at now, placing stages on their home processors. It reports
// whether the job was admitted.
func (d *DSAdmission) Arrive(t *Task, job int64, now time.Duration) bool {
	deadline := now + t.Deadline
	for i, st := range t.Subtasks {
		if st.Processor >= len(d.servers) {
			return false
		}
		if !d.servers[st.Processor].Admissible(now, t.Subtasks[i].Exec, deadline) {
			return false
		}
	}
	ref := JobRef{Task: t.ID, Job: job}
	for i, st := range t.Subtasks {
		// Commit per stage; stage refs share the job ref because each server
		// tracks only its local share.
		if err := d.servers[st.Processor].Commit(JobRef{Task: ref.Task, Job: ref.Job<<8 | int64(i)}, t.Subtasks[i].Exec, deadline); err != nil {
			return false
		}
	}
	return true
}

// Expire drops expired commitments on every server.
func (d *DSAdmission) Expire(now time.Duration) {
	for _, s := range d.servers {
		s.Expire(now)
	}
}
