package sched

import (
	"fmt"
	"math/bits"
	"time"
)

// crossCounted reports whether a cross job participates in the admission
// test: it still has an uncompleted stage (in flight) and at least one active
// contribution — the same predicate jobRec.inFlight()/active() applies to
// shard-local jobs.
func crossCounted(cr *crossRec) bool {
	inFlight, active := false, false
	for i := range cr.entries {
		if !cr.entries[i].completed {
			inFlight = true
		}
		if cr.entries[i].removed == 0 {
			active = true
		}
	}
	return inFlight && active
}

// crossSumExceeds evaluates a cross job's full AUB condition exactly as the
// plain ledger evaluates a signature group: counts[i]·term over the sorted
// distinct processors of the active entries, with the early break once the
// running sum exceeds the bound. touched/tent, when non-nil, substitute
// tentative terms for the candidate's perturbed processors. Caller holds
// crossMu (the scratch arrays live on the cross set).
func (sl *ShardedLedger) crossSumExceeds(cr *crossRec, touched []int, tent []float64) bool {
	procs := sl.cross.sumProcs[:0]
	counts := sl.cross.sumCounts[:0]
	for i := range cr.entries {
		if cr.entries[i].removed != 0 {
			continue
		}
		q := cr.entries[i].proc
		found := false
		for j := range procs {
			if procs[j] == q {
				counts[j]++
				found = true
				break
			}
		}
		if !found {
			procs = append(procs, q)
			counts = append(counts, 1)
		}
	}
	for i := 1; i < len(procs); i++ {
		for k := i; k > 0 && procs[k] < procs[k-1]; k-- {
			procs[k], procs[k-1] = procs[k-1], procs[k]
			counts[k], counts[k-1] = counts[k-1], counts[k]
		}
	}
	sl.cross.sumProcs, sl.cross.sumCounts = procs, counts
	var s float64
	for i, q := range procs {
		t := sl.mirrorTerm(q)
		for j, tp := range touched {
			if tp == q {
				t = tent[j]
				break
			}
		}
		s += float64(counts[i]) * t
		if s > 1 {
			return true
		}
	}
	return false
}

// crossReflag recomputes one cross job's violation flag from the current
// mirror terms, maintaining the global violated counter. Caller holds
// crossMu.
func (sl *ShardedLedger) crossReflag(cr *crossRec) {
	now := crossCounted(cr) && sl.crossSumExceeds(cr, nil, nil)
	if now != cr.violated {
		if now {
			sl.violated.Add(1)
		} else {
			sl.violated.Add(-1)
		}
		cr.violated = now
	}
}

// crossSettleProcs re-evaluates every cross job registered on the given
// processors after their utilizations changed. Caller holds crossMu and the
// locks of the shards owning the processors (so the mirrors are current).
func (sl *ShardedLedger) crossSettleProcs(procs []int) {
	sl.cross.stamp++
	for _, p := range procs {
		for _, cr := range sl.cross.byProc[p] {
			if cr.stamp == sl.cross.stamp {
				continue
			}
			cr.stamp = sl.cross.stamp
			sl.crossReflag(cr)
		}
	}
}

// crossCheckAdmit evaluates every counted cross job touching a perturbed
// processor under the candidate's tentative terms. Caller holds crossMu and
// the candidate's shard locks.
func (sl *ShardedLedger) crossCheckAdmit(touched []int, tent []float64) bool {
	sl.cross.stamp++
	for _, p := range touched {
		for _, cr := range sl.cross.byProc[p] {
			if cr.stamp == sl.cross.stamp {
				continue
			}
			cr.stamp = sl.cross.stamp
			if !crossCounted(cr) {
				continue
			}
			if sl.crossSumExceeds(cr, touched, tent) {
				return false
			}
		}
	}
	return true
}

// crossInsert registers a cross-shard job from its placement. Caller holds
// crossMu and the involved shard locks.
func (sl *ShardedLedger) crossInsert(ref JobRef, mask uint64, kind TaskKind, placement []PlacedStage, permanent bool) {
	cr := &crossRec{ref: ref, mask: mask, permanent: permanent, kind: kind}
	cr.entries = make([]crossEntry, len(placement))
	for i, p := range placement {
		cr.entries[i] = crossEntry{stage: p.Stage, proc: p.Proc}
	}
	for _, p := range placement {
		seen := false
		for _, q := range cr.procs {
			if q == p.Proc {
				seen = true
				break
			}
		}
		if !seen {
			cr.procs = append(cr.procs, p.Proc)
		}
	}
	sl.cross.jobs[ref] = cr
	for _, p := range cr.procs {
		sl.cross.byProc[p] = append(sl.cross.byProc[p], cr)
		sl.crossOnProc[p].Add(1)
	}
	sl.crossCount.Add(1)
	sl.crossReflag(cr)
}

// crossForget unregisters a cross job. Caller holds crossMu.
func (sl *ShardedLedger) crossForget(cr *crossRec) {
	if cr.violated {
		sl.violated.Add(-1)
		cr.violated = false
	}
	for _, p := range cr.procs {
		s := sl.cross.byProc[p]
		for i, c := range s {
			if c == cr {
				s[i] = s[len(s)-1]
				s[len(s)-1] = nil
				sl.cross.byProc[p] = s[:len(s)-1]
				break
			}
		}
		sl.crossOnProc[p].Add(-1)
	}
	delete(sl.cross.jobs, cr.ref)
	sl.crossCount.Add(-1)
}

// anyCrossOnPlacement reports whether any cross job is registered on a
// processor the placement touches. Caller holds the shard locks owning those
// processors, so a zero count cannot concurrently become nonzero.
func (sl *ShardedLedger) anyCrossOnPlacement(placement []PlacedStage) bool {
	for _, p := range placement {
		if sl.crossOnProc[p.Proc].Load() > 0 {
			return true
		}
	}
	return false
}

// tentativeInto accumulates the candidate's per-processor deltas (in
// placement order, matching the plain ledger's floating-point accumulation)
// and the tentative AUB terms of the perturbed processors, reading
// utilizations through at. The parallel touched/delta/tent slices are
// appended to and returned.
func tentativeInto(placement []PlacedStage, at func(int) float64,
	touched []int, delta, tent []float64) ([]int, []float64, []float64) {
	for _, p := range placement {
		found := false
		for i := range touched {
			if touched[i] == p.Proc {
				delta[i] += p.Util
				found = true
				break
			}
		}
		if !found {
			touched = append(touched, p.Proc)
			delta = append(delta, p.Util)
		}
	}
	for i := range touched {
		tent = append(tent, AUBTerm(at(touched[i])+delta[i]))
	}
	return touched, delta, tent
}

// tentOf returns the tentative term of a perturbed processor.
func tentOf(touched []int, tent []float64, proc int) float64 {
	for i := range touched {
		if touched[i] == proc {
			return tent[i]
		}
	}
	return 0
}

// Admissible evaluates the AUB admission test for a candidate placement
// without mutating the ledger. Decision-equivalent to Ledger.Admissible on
// the same operation history.
func (sl *ShardedLedger) Admissible(placement []PlacedStage) bool {
	if len(placement) == 0 {
		return sl.violated.Load() == 0
	}
	for _, p := range placement {
		if p.Util < 0 {
			// Negative candidates void the monotonicity both the violated
			// short-circuit and the group evaluation rely on; take every lock
			// and run the full-scan reference.
			all := sl.allMask()
			sl.lockMask(all)
			sl.crossMu.Lock()
			ok := sl.referenceAdmissibleAll(placement)
			sl.crossMu.Unlock()
			sl.unlockMask(all)
			return ok
		}
	}
	mask := sl.maskOf(placement)
	if bits.OnesCount64(mask) == 1 {
		sh := &sl.shards[bits.TrailingZeros64(mask)]
		sh.mu.Lock()
		ok := sl.violated.Load() == 0 && sh.l.Admissible(placement)
		if ok && sl.anyCrossOnPlacement(placement) {
			var touchedBuf [8]int
			var deltaBuf, tentBuf [8]float64
			touched, delta, tent := tentativeInto(placement,
				func(p int) float64 { return sh.l.util[p] },
				touchedBuf[:0], deltaBuf[:0], tentBuf[:0])
			_ = delta
			sl.crossMu.Lock()
			ok = sl.crossCheckAdmit(touched, tent)
			sl.crossMu.Unlock()
		}
		sh.mu.Unlock()
		return ok
	}
	sc := sl.scratch.Get().(*multiScratch)
	sl.lockMask(mask)
	ok := sl.admitEvalLocked(mask, placement, sc, true)
	sl.unlockMask(mask)
	sl.putScratch(sc)
	return ok
}

// putScratch resets and returns a multiScratch to the pool.
func (sl *ShardedLedger) putScratch(sc *multiScratch) {
	sc.part = sc.part[:0]
	sc.touched = sc.touched[:0]
	sc.delta = sc.delta[:0]
	sc.tent = sc.tent[:0]
	sc.procs = sc.procs[:0]
	sl.scratch.Put(sc)
}

// partialInto filters a placement down to the stages owned by one shard,
// appending into buf.
func (sl *ShardedLedger) partialInto(placement []PlacedStage, shard int, buf []PlacedStage) []PlacedStage {
	for _, p := range placement {
		if int(sl.procShard[p.Proc]) == shard {
			buf = append(buf, p)
		}
	}
	return buf
}

// admitEvalLocked evaluates a multi-shard candidate with the involved shard
// locks held: the candidate's own condition over real utilizations, the
// global violated short-circuit, each shard's local perturbed-group check
// against the candidate's partial placement, and the cross-registry check
// when any perturbed processor carries cross jobs. takeCross selects whether
// this call acquires crossMu itself (Admissible) or runs with it already
// held by the caller (the commit path keeps it across evaluation and
// insert).
func (sl *ShardedLedger) admitEvalLocked(mask uint64, placement []PlacedStage, sc *multiScratch, takeCross bool) bool {
	if sl.violated.Load() > 0 {
		return false
	}
	sc.touched, sc.delta, sc.tent = tentativeInto(placement,
		func(p int) float64 { return sl.shards[sl.procShard[p]].l.util[p] },
		sc.touched[:0], sc.delta[:0], sc.tent[:0])
	var sum float64
	for _, p := range placement {
		sum += tentOf(sc.touched, sc.tent, p.Proc)
	}
	if sum > 1 {
		return false
	}
	for m := mask; m != 0; m &= m - 1 {
		s := bits.TrailingZeros64(m)
		sc.part = sl.partialInto(placement, s, sc.part[:0])
		if !sl.shards[s].l.Admissible(sc.part) {
			return false
		}
	}
	needCross := false
	for _, p := range sc.touched {
		if sl.crossOnProc[p].Load() > 0 {
			needCross = true
			break
		}
	}
	if !needCross {
		return true
	}
	if takeCross {
		sl.crossMu.Lock()
		defer sl.crossMu.Unlock()
	}
	return sl.crossCheckAdmit(sc.touched, sc.tent)
}

// validatePlacement mirrors Ledger.AddJob's argument checks.
func (sl *ShardedLedger) validatePlacement(ref JobRef, placement []PlacedStage) error {
	for _, p := range placement {
		if p.Proc < 0 || p.Proc >= sl.numProcs {
			return fmt.Errorf("sched: job %s stage %d placed on unknown processor %d", ref, p.Stage, p.Proc)
		}
		if p.Util < 0 {
			return fmt.Errorf("sched: job %s stage %d has negative utilization %g", ref, p.Stage, p.Util)
		}
	}
	return nil
}

// addSingleLocked commits a single-shard job. Caller holds the shard lock.
func (sl *ShardedLedger) addSingleLocked(sh *ledgerShard, mask uint64, ref JobRef, kind TaskKind, placement []PlacedStage, permanent bool, expiry time.Duration) error {
	if !sl.routePutIfAbsent(ref, mask) {
		return fmt.Errorf("sched: job %s already in ledger", ref)
	}
	sh.beginWrite()
	if err := sh.l.AddJob(ref, kind, placement, permanent, expiry); err != nil {
		sh.endWrite()
		sl.routeDelete(ref)
		return err
	}
	sl.syncPlacementProcs(placement)
	sl.pushViolated(sh)
	if sl.anyCrossOnPlacement(placement) {
		var procsBuf [8]int
		procs := procsBuf[:0]
		for _, p := range placement {
			procs = touchProc(procs, p.Proc)
		}
		sl.crossMu.Lock()
		sl.crossSettleProcs(procs)
		sl.crossMu.Unlock()
	}
	sh.endWrite()
	return nil
}

// addMultiLocked commits a cross-shard job as per-shard partials plus a
// cross-registry record. Caller holds every shard lock in mask and crossMu.
func (sl *ShardedLedger) addMultiLocked(mask uint64, ref JobRef, kind TaskKind, placement []PlacedStage, permanent bool, expiry time.Duration, sc *multiScratch) error {
	if !sl.routePutIfAbsent(ref, mask) {
		return fmt.Errorf("sched: job %s already in ledger", ref)
	}
	// Partial dup check: the same ref could already exist shard-locally
	// without a route only through a bug; AddJob below would catch it, but
	// after a sibling shard already committed. Check first so commit cannot
	// half-apply.
	for m := mask; m != 0; m &= m - 1 {
		s := bits.TrailingZeros64(m)
		if _, _, ok := sl.shards[s].l.lookupJob(ref); ok {
			sl.routeDelete(ref)
			return fmt.Errorf("sched: job %s already in ledger", ref)
		}
	}
	sl.beginWriteMask(mask)
	for m := mask; m != 0; m &= m - 1 {
		s := bits.TrailingZeros64(m)
		sc.part = sl.partialInto(placement, s, sc.part[:0])
		if err := sl.shards[s].l.AddJob(ref, kind, sc.part, permanent, expiry); err != nil {
			// Unreachable after validation and the dup check; surface loudly.
			panic(fmt.Sprintf("sched: sharded partial add %s: %v", ref, err))
		}
	}
	sl.syncPlacementProcs(placement)
	for m := mask; m != 0; m &= m - 1 {
		sl.pushViolated(&sl.shards[bits.TrailingZeros64(m)])
	}
	sl.crossInsert(ref, mask, kind, placement, permanent)
	sc.procs = sc.procs[:0]
	for _, p := range placement {
		sc.procs = touchProc(sc.procs, p.Proc)
	}
	sl.crossSettleProcs(sc.procs)
	sl.endWriteMask(mask)
	return nil
}

// AddJob records a job's contributions unconditionally (no admission test),
// mirroring Ledger.AddJob. Tests and benchmarks use it to construct ledger
// states, including overloaded ones.
func (sl *ShardedLedger) AddJob(ref JobRef, kind TaskKind, placement []PlacedStage, permanent bool, expiry time.Duration) error {
	if err := sl.validatePlacement(ref, placement); err != nil {
		return err
	}
	mask := sl.maskOf(placement)
	if bits.OnesCount64(mask) == 1 {
		sh := &sl.shards[bits.TrailingZeros64(mask)]
		sh.mu.Lock()
		err := sl.addSingleLocked(sh, mask, ref, kind, placement, permanent, expiry)
		if err == nil {
			sl.journalAppend(ledgerOp{kind: opAddJob, ref: ref, taskKind: kind, placement: placement, permanent: permanent, expiry: expiry})
		}
		sh.mu.Unlock()
		return err
	}
	sc := sl.scratch.Get().(*multiScratch)
	sl.lockMask(mask)
	sl.crossMu.Lock()
	err := sl.addMultiLocked(mask, ref, kind, placement, permanent, expiry, sc)
	if err == nil {
		sl.journalAppend(ledgerOp{kind: opAddJob, ref: ref, taskKind: kind, placement: placement, permanent: permanent, expiry: expiry})
	}
	sl.crossMu.Unlock()
	sl.unlockMask(mask)
	sl.putScratch(sc)
	return err
}

// TestAndAdd atomically runs the AUB admission test and, on success, records
// the job — the concurrent-safe replacement for an Admissible/AddJob pair,
// which would admit two conflicting candidates under concurrency. It returns
// whether the job was admitted; the error reports argument problems or a
// double admission (both also rejections).
//
//rtmw:noalloc
func (sl *ShardedLedger) TestAndAdd(ref JobRef, kind TaskKind, placement []PlacedStage, permanent bool, expiry time.Duration) (bool, error) {
	if err := sl.validatePlacement(ref, placement); err != nil {
		return false, err
	}
	if len(placement) == 0 {
		// An empty placement admits iff nothing is violated; record the empty
		// job in shard 0 for parity with the plain ledger.
		sh := &sl.shards[0]
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if sl.violated.Load() > 0 {
			sl.journalAppend(ledgerOp{kind: opTestAndAdd, ref: ref, taskKind: kind, permanent: permanent, expiry: expiry, decision: false})
			return false, nil
		}
		err := sl.addSingleLocked(sh, 1, ref, kind, placement, permanent, expiry)
		if err != nil {
			return false, err
		}
		sl.journalAppend(ledgerOp{kind: opTestAndAdd, ref: ref, taskKind: kind, permanent: permanent, expiry: expiry, decision: true})
		return true, nil
	}
	mask := sl.maskOf(placement)
	if bits.OnesCount64(mask) == 1 {
		sh := &sl.shards[bits.TrailingZeros64(mask)]
		sh.mu.Lock()
		ok, err := sl.testAndAddShardLocked(sh, mask, ref, kind, placement, permanent, expiry)
		sh.mu.Unlock()
		return ok, err
	}
	return sl.testAndAddMulti(mask, ref, kind, placement, permanent, expiry)
}

// testAndAddShardLocked is the single-shard admission fast path: evaluate and
// commit entirely inside one shard lock (plus crossMu only when cross jobs
// touch the candidate's processors). Zero allocations on the steady-state
// path.
//
//rtmw:noalloc
func (sl *ShardedLedger) testAndAddShardLocked(sh *ledgerShard, mask uint64, ref JobRef, kind TaskKind, placement []PlacedStage, permanent bool, expiry time.Duration) (bool, error) {
	ok := sl.violated.Load() == 0 && sh.l.Admissible(placement)
	crossTouched := ok && sl.anyCrossOnPlacement(placement)
	if crossTouched {
		var touchedBuf [8]int
		var deltaBuf, tentBuf [8]float64
		touched, _, tent := tentativeInto(placement,
			//rtmw:ignore noalloc accessor stays on the stack: tentativeInto's at param never escapes
			func(p int) float64 { return sh.l.util[p] },
			touchedBuf[:0], deltaBuf[:0], tentBuf[:0])
		sl.crossMu.Lock()
		ok = sl.crossCheckAdmit(touched, tent)
		if ok {
			// Keep crossMu across the commit: the admitted utilization
			// changes these processors' terms, and the registered cross jobs
			// must re-settle within the same critical section the decision
			// was made in.
			err := sl.addSingleCrossLocked(sh, mask, ref, kind, placement, permanent, expiry, touched)
			sl.journalDecision(ref, kind, placement, permanent, expiry, err == nil)
			sl.crossMu.Unlock()
			return err == nil, err
		}
		sl.journalDecision(ref, kind, placement, permanent, expiry, false)
		sl.crossMu.Unlock()
		return false, nil
	}
	if ok {
		err := sl.addSingleLocked(sh, mask, ref, kind, placement, permanent, expiry)
		sl.journalDecision(ref, kind, placement, permanent, expiry, err == nil)
		return err == nil, err
	}
	sl.journalDecision(ref, kind, placement, permanent, expiry, false)
	return false, nil
}

// addSingleCrossLocked commits a single-shard job while crossMu is already
// held (the candidate's processors carry cross jobs).
func (sl *ShardedLedger) addSingleCrossLocked(sh *ledgerShard, mask uint64, ref JobRef, kind TaskKind, placement []PlacedStage, permanent bool, expiry time.Duration, touched []int) error {
	if !sl.routePutIfAbsent(ref, mask) {
		return fmt.Errorf("sched: job %s already in ledger", ref)
	}
	sh.beginWrite()
	if err := sh.l.AddJob(ref, kind, placement, permanent, expiry); err != nil {
		sh.endWrite()
		sl.routeDelete(ref)
		return err
	}
	sl.syncPlacementProcs(placement)
	sl.pushViolated(sh)
	sl.crossSettleProcs(touched)
	sh.endWrite()
	return nil
}

// journalDecision records a TestAndAdd outcome.
func (sl *ShardedLedger) journalDecision(ref JobRef, kind TaskKind, placement []PlacedStage, permanent bool, expiry time.Duration, ok bool) {
	sl.journalAppend(ledgerOp{kind: opTestAndAdd, ref: ref, taskKind: kind, placement: placement, permanent: permanent, expiry: expiry, decision: ok})
}

// crossAdmitRetries bounds the optimistic epoch-snapshot attempts before the
// ordered-lock path runs unconditionally.
const crossAdmitRetries = 2

// testAndAddMulti admits a cross-shard candidate: optimistic lock-free
// rejection from a seqlock-validated snapshot of the utilization mirrors,
// then the ordered-lock evaluate-and-commit path.
func (sl *ShardedLedger) testAndAddMulti(mask uint64, ref JobRef, kind TaskKind, placement []PlacedStage, permanent bool, expiry time.Duration) (bool, error) {
	// Optimistic pre-check: the candidate's own condition, computed from the
	// atomic mirrors with no lock held. A consistent epoch snapshot across
	// the involved shards means the mirrors describe a real ledger state, so
	// a failing condition can reject immediately — admission only ever adds
	// utilization, so the condition cannot improve while we look. Journaled
	// runs skip this: a lock-free rejection has no lock to order its journal
	// entry under.
	if sl.journal == nil {
		var snapBuf [maxShards]uint64
		for try := 0; try <= crossAdmitRetries; try++ {
			consistent := true
			i := 0
			for m := mask; m != 0; m &= m - 1 {
				e := sl.shards[bits.TrailingZeros64(m)].epoch.Load()
				if e&1 != 0 {
					consistent = false
					break
				}
				snapBuf[i] = e
				i++
			}
			if !consistent {
				sl.epochRetries.Add(1)
				continue
			}
			var touchedBuf [8]int
			var deltaBuf, tentBuf [8]float64
			touched, _, tent := tentativeInto(placement, sl.mirrorUtil,
				touchedBuf[:0], deltaBuf[:0], tentBuf[:0])
			var sum float64
			for _, p := range placement {
				sum += tentOf(touched, tent, p.Proc)
			}
			i = 0
			valid := true
			for m := mask; m != 0; m &= m - 1 {
				if sl.shards[bits.TrailingZeros64(m)].epoch.Load() != snapBuf[i] {
					valid = false
					break
				}
				i++
			}
			if !valid {
				sl.epochRetries.Add(1)
				continue
			}
			if sum > 1 {
				sl.optimisticRejects.Add(1)
				return false, nil
			}
			break
		}
	}

	sc := sl.scratch.Get().(*multiScratch)
	sl.lockMask(mask)
	sl.crossMu.Lock()
	ok := sl.admitEvalLocked(mask, placement, sc, false)
	var err error
	if ok {
		err = sl.addMultiLocked(mask, ref, kind, placement, permanent, expiry, sc)
		ok = err == nil
		if ok {
			sl.crossAdmits.Add(1)
		}
	}
	sl.journalDecision(ref, kind, placement, permanent, expiry, ok)
	sl.crossMu.Unlock()
	sl.unlockMask(mask)
	sl.putScratch(sc)
	return ok, err
}

// BatchCandidate is one job of a TestAndAddBatch.
type BatchCandidate struct {
	Ref       JobRef
	Kind      TaskKind
	Placement []PlacedStage
	Permanent bool
	Expiry    time.Duration
}

// TestAndAddBatch admits a batch of candidates, returning one decision per
// candidate (parallel to cands). When every candidate is single-shard and no
// cross job is registered, the batch is grouped by target shard so each
// shard lock is taken once per batch; candidates on distinct shards then
// commute exactly (disjoint processors, disjoint signature groups, and
// admission can never create a violation), so the decisions equal the
// sequential submission order's. Any cross-shard candidate or registered
// cross job falls back to in-order submission, where that reordering
// argument does not hold.
func (sl *ShardedLedger) TestAndAddBatch(cands []BatchCandidate) []bool {
	out := make([]bool, len(cands))
	grouped := sl.crossCount.Load() == 0
	var shardOf []int
	if grouped {
		shardOf = make([]int, len(cands))
		for i := range cands {
			if len(cands[i].Placement) == 0 {
				grouped = false
				break
			}
			if sl.validatePlacement(cands[i].Ref, cands[i].Placement) != nil {
				grouped = false
				break
			}
			mask := sl.maskOf(cands[i].Placement)
			if bits.OnesCount64(mask) != 1 {
				grouped = false
				break
			}
			shardOf[i] = bits.TrailingZeros64(mask)
		}
	}
	if !grouped {
		for i := range cands {
			ok, _ := sl.TestAndAdd(cands[i].Ref, cands[i].Kind, cands[i].Placement, cands[i].Permanent, cands[i].Expiry)
			out[i] = ok
		}
		return out
	}
	for s := 0; s < sl.nshards; s++ {
		first := true
		for i := range cands {
			if shardOf[i] != s {
				continue
			}
			if first {
				sl.shards[s].mu.Lock()
				first = false
			}
			ok, _ := sl.testAndAddShardLocked(&sl.shards[s], 1<<uint(s),
				cands[i].Ref, cands[i].Kind, cands[i].Placement, cands[i].Permanent, cands[i].Expiry)
			out[i] = ok
		}
		if !first {
			sl.shards[s].mu.Unlock()
		}
	}
	return out
}
