package cluster

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/spec"
)

// miniWorkload is a small two-processor workload: a replicated two-stage
// periodic flow and a single-stage aperiodic alert. Durations are already
// compressed so tests run quickly at ExecScale 1.
func miniWorkload(t *testing.T) *spec.Workload {
	t.Helper()
	w, err := spec.Parse([]byte(`{
	  "name": "mini",
	  "processors": 2,
	  "tasks": [
	    {"id": "flow", "kind": "periodic", "period": "80ms", "deadline": "80ms",
	     "subtasks": [
	       {"exec": "4ms", "processor": 0, "replicas": [1]},
	       {"exec": "3ms", "processor": 1}
	     ]},
	    {"id": "alert", "kind": "aperiodic", "deadline": "60ms", "meanInterarrival": "70ms",
	     "subtasks": [{"exec": "2ms", "processor": 1}]}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func startCluster(t *testing.T, cfg core.Config) *Cluster {
	t.Helper()
	c, err := Start(Options{
		Workload: miniWorkload(t),
		Config:   cfg,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterEndToEnd(t *testing.T) {
	cfg := core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerJob, LB: core.StrategyPerJob}
	c := startCluster(t, cfg)

	// The deployment plan reflects the full topology.
	if len(c.Plan.Instances) < 7 {
		t.Errorf("plan has %d instances, expected at least AC, LB, 2×TE, 2×IR, subtasks", len(c.Plan.Instances))
	}

	if err := c.StartDrivers(1.0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(600 * time.Millisecond)
	c.StopDrivers()
	if !c.Drain(2 * time.Second) {
		t.Fatal("executors never drained")
	}
	// Give trailing Done events time to land.
	time.Sleep(50 * time.Millisecond)

	var arrived, released int64
	for i := 0; i < 2; i++ {
		te, err := c.TE(i)
		if err != nil {
			t.Fatal(err)
		}
		s := te.StatsSnapshot()
		arrived += s.Arrived
		released += s.Released
	}
	if arrived == 0 {
		t.Fatal("no arrivals generated")
	}
	if released == 0 {
		t.Fatal("no jobs released")
	}
	completed := c.Collector().Completed()
	if completed == 0 {
		t.Fatal("no jobs completed end to end")
	}
	if completed > released {
		t.Errorf("completed %d > released %d", completed, released)
	}

	// The admission controller saw real traffic and its ledger is sane.
	ac, err := c.AC()
	if err != nil {
		t.Fatal(err)
	}
	ctrl := ac.Controller()
	if ctrl.Stats.Tests == 0 {
		t.Error("admission controller never ran a test")
	}
	// Audit through the AC's lock: expiry timers may still be mutating the
	// ledger, and reading it bare races with them.
	if err := ac.AuditLedger(); err != nil {
		t.Error(err)
	}
	// Per-job AC + IR per job: timing instrumentation collected samples.
	if ctrl.Timing().Test.Count() == 0 {
		t.Error("no admission-test timing samples")
	}
}

func TestClusterPerTaskFastPath(t *testing.T) {
	cfg := core.Config{AC: core.StrategyPerTask, IR: core.StrategyNone, LB: core.StrategyNone}
	c := startCluster(t, cfg)
	if err := c.StartDrivers(1.0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	c.StopDrivers()
	c.Drain(2 * time.Second)

	ac, err := c.AC()
	if err != nil {
		t.Fatal(err)
	}
	ctrl := ac.Controller()
	// flow is periodic: tested once. alert is aperiodic: tested per arrival.
	te1, err := c.TE(1)
	if err != nil {
		t.Fatal(err)
	}
	alertArrivals := te1.StatsSnapshot().Arrived
	if ctrl.Stats.Tests < 1 || ctrl.Stats.Tests > 1+alertArrivals {
		t.Errorf("Tests = %d, want 1 (flow) + up to %d (alerts)", ctrl.Stats.Tests, alertArrivals)
	}
	te0, err := c.TE(0)
	if err != nil {
		t.Fatal(err)
	}
	if s := te0.StatsSnapshot(); s.Released < 2 {
		t.Errorf("per-task fast path released %d jobs, want several", s.Released)
	}
}

func TestClusterIdleResettingFlows(t *testing.T) {
	cfg := core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerJob, LB: core.StrategyNone}
	c := startCluster(t, cfg)
	if err := c.StartDrivers(1.0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	c.StopDrivers()
	c.Drain(2 * time.Second)
	time.Sleep(100 * time.Millisecond)

	ac, err := c.AC()
	if err != nil {
		t.Fatal(err)
	}
	if ac.Controller().Stats.IdleResets == 0 {
		t.Error("no idle resets reached the admission controller")
	}
}

func TestClusterStartValidation(t *testing.T) {
	if _, err := Start(Options{}); err == nil {
		t.Error("Start accepted nil workload")
	}
	w := miniWorkload(t)
	bad := core.Config{AC: core.StrategyPerTask, IR: core.StrategyPerJob, LB: core.StrategyNone}
	if _, err := Start(Options{Workload: w, Config: bad}); err == nil {
		t.Error("Start accepted invalid config")
	}
}
