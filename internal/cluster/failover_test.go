package cluster

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/spec"
)

// failoverWorkload is a three-processor workload in which every stage placed
// on any single processor declares a replica elsewhere, so no single node
// loss withdraws a task — the zero-loss failover precondition.
func failoverWorkload(t *testing.T) *spec.Workload {
	t.Helper()
	w, err := spec.Parse([]byte(`{
	  "name": "failover",
	  "processors": 3,
	  "tasks": [
	    {"id": "cam", "kind": "aperiodic", "deadline": "500ms", "meanInterarrival": "250ms",
	     "subtasks": [
	       {"exec": "3ms", "processor": 0, "replicas": [2]},
	       {"exec": "2ms", "processor": 1, "replicas": [2]}
	     ]},
	    {"id": "lidar", "kind": "aperiodic", "deadline": "400ms", "meanInterarrival": "250ms",
	     "subtasks": [{"exec": "4ms", "processor": 1, "replicas": [0]}]},
	    {"id": "fuse", "kind": "aperiodic", "deadline": "600ms", "meanInterarrival": "250ms",
	     "subtasks": [
	       {"exec": "3ms", "processor": 2, "replicas": [0]},
	       {"exec": "2ms", "processor": 0, "replicas": [2]}
	     ]}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// submitAll injects count arrivals of every deployed task and returns the
// number of non-error submissions.
func submitAll(t *testing.T, c *Cluster, count int) int {
	t.Helper()
	ids := make([]string, 0, count*3)
	for _, task := range c.Tasks() {
		for i := 0; i < count; i++ {
			ids = append(ids, task.ID)
		}
	}
	adms, err := c.SubmitBatch(ids)
	if err != nil {
		t.Fatalf("SubmitBatch: %v", err)
	}
	return len(adms)
}

// TestFailoverZeroLossAndWatchSemantics drives the whole survival story on
// one cluster — burst, kill, failover, burst, recover, burst, drain — and
// checks the zero-loss obligations plus the watch stream's ordering
// guarantees across the failure events.
func TestFailoverZeroLossAndWatchSemantics(t *testing.T) {
	cfg := core.Config{AC: core.StrategyPerTask, IR: core.StrategyPerTask, LB: core.StrategyPerTask}
	c, err := Start(Options{Workload: failoverWorkload(t), Config: cfg, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	watch, err := c.Watch(core.WatchOptions{Buffer: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}

	submitAll(t, c, 4)
	// Kill while jobs are in flight so the dead-letter tracker has stranded
	// triggers to redeliver.
	submitAll(t, c, 3)
	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	report, err := c.Failover(1)
	if err != nil {
		t.Fatal(err)
	}
	if report.Node != "app1" || report.Proc != 1 {
		t.Errorf("report identifies %s/%d, want app1/1", report.Node, report.Proc)
	}
	if report.Epoch < 1 {
		t.Errorf("failover epoch = %d, want >= 1", report.Epoch)
	}
	if report.Lost != 0 {
		t.Errorf("failover lost %d stranded jobs", report.Lost)
	}
	if len(report.Withdrawn) != 0 {
		t.Errorf("fully replicated workload withdrew tasks: %v", report.Withdrawn)
	}
	// cam and lidar each had a stage homed on processor 1; both must move.
	if len(report.Rehomed["cam"]) == 0 || len(report.Rehomed["lidar"]) == 0 {
		t.Errorf("rehoming incomplete: %v", report.Rehomed)
	}

	submitAll(t, c, 3)
	if err := c.RecoverNode(1); err != nil {
		t.Fatal(err)
	}
	submitAll(t, c, 3)

	if !c.Drain(5 * time.Second) {
		t.Fatal("executors never drained")
	}
	// Admission decisions resolve asynchronously, so Released == Completed
	// can hold transiently while the last burst is still being decided:
	// require a snapshot that is both drained and quiet.
	snap := c.Snapshot()
	settle(t, 20*time.Second, func() bool {
		s := c.Snapshot()
		if s.Released != s.Completed {
			snap = s
			return false
		}
		// A loaded CI machine can sit on a pending decision for a while;
		// demand half a second of total silence before trusting the counts.
		time.Sleep(500 * time.Millisecond)
		s2 := c.Snapshot()
		snap = s2
		return s2 == s
	})
	if snap.Released != snap.Completed {
		t.Errorf("lost jobs: released %d, completed %d", snap.Released, snap.Completed)
	}
	if snap.Epoch != report.Epoch {
		t.Errorf("snapshot epoch %d != failover epoch %d", snap.Epoch, report.Epoch)
	}
	if _, lost := c.RedeliveryStats(); lost != 0 {
		t.Errorf("redelivery lost %d jobs", lost)
	}
	if err := c.AuditAdmissionState(); err != nil {
		t.Error(err)
	}

	// Give trailing Done events time to land, then read the stream back.
	time.Sleep(100 * time.Millisecond)
	watch.Cancel()
	if watch.Dropped() != 0 {
		t.Fatalf("watch dropped %d events; assertions below would be unsound", watch.Dropped())
	}
	var lastSeq int64
	completedBy := make(map[string]map[int64]int)
	nodeDown, nodeRecovered := 0, 0
	for ev := range watch.Events() {
		if ev.Seq <= lastSeq {
			t.Fatalf("Seq not strictly increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Kind {
		case core.WatchCompleted:
			if completedBy[ev.Task] == nil {
				completedBy[ev.Task] = make(map[int64]int)
			}
			completedBy[ev.Task][ev.Job]++
		case core.WatchNodeDown:
			nodeDown++
			if ev.Task != "app1" || ev.Job != -1 {
				t.Errorf("NodeDown event = %q/%d, want app1/-1", ev.Task, ev.Job)
			}
			if nodeRecovered != 0 {
				t.Error("NodeDown delivered after NodeRecovered")
			}
		case core.WatchNodeRecovered:
			nodeRecovered++
			if ev.Task != "app1" || ev.Job != -1 {
				t.Errorf("NodeRecovered event = %q/%d, want app1/-1", ev.Task, ev.Job)
			}
		}
	}
	if nodeDown != 1 {
		t.Errorf("NodeDown delivered %d times, want exactly once", nodeDown)
	}
	if nodeRecovered != 1 {
		t.Errorf("NodeRecovered delivered %d times, want exactly once", nodeRecovered)
	}
	var completions int64
	for task, jobs := range completedBy {
		for job, n := range jobs {
			completions++
			if n != 1 {
				t.Errorf("job %s/%d completed %d times on the watch stream (redelivery double-count)", task, job, n)
			}
		}
	}
	if completions != snap.Completed {
		t.Errorf("watch saw %d completions, counters say %d", completions, snap.Completed)
	}
}

// TestDetectorAutoFailover kills a node silently and lets the heartbeat
// detector find it: the WatchNodeDown declaration must arrive, the automatic
// failover must advance the epoch, and submissions to the re-homed task must
// succeed afterwards.
func TestDetectorAutoFailover(t *testing.T) {
	cfg := core.Config{AC: core.StrategyPerTask, IR: core.StrategyPerTask, LB: core.StrategyPerTask}
	c, err := Start(Options{
		Workload:         failoverWorkload(t),
		Config:           cfg,
		Seed:             13,
		HeartbeatTimeout: 150 * time.Millisecond,
		AutoFailover:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	watch, err := c.Watch(core.WatchOptions{Kinds: []core.WatchKind{core.WatchNodeDown}})
	if err != nil {
		t.Fatal(err)
	}
	defer watch.Cancel()

	if err := c.KillNode(0); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-watch.Events():
		if ev.Task != "app0" {
			t.Fatalf("detector declared %q dead, want app0", ev.Task)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("detector never declared the silent node dead")
	}

	// The detector runs the failover itself; wait for the epoch to advance.
	deadline := time.Now().Add(10 * time.Second)
	for c.Snapshot().Epoch < 1 {
		if time.Now().After(deadline) {
			t.Fatal("auto-failover never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// cam's home stage was on processor 0; after the failover it is re-homed
	// and a fresh submission must be accepted without ErrNodeDown.
	if _, err := c.Submit("cam"); err != nil {
		t.Fatalf("submit to re-homed task after auto-failover: %v", err)
	}
	var h *NodeHealth
	health := c.Health()
	for i := range health {
		if health[i].Node == "app0" {
			h = &health[i]
		}
	}
	if h == nil {
		t.Fatal("health report missing app0")
	}
	if h.Alive || !h.Suspect {
		t.Errorf("health for killed node = %+v, want dead and suspect", *h)
	}
}

// TestFailoverErrorSurface pins the failure-plane error contract: typed
// sentinels on submissions and lifecycle transactions while a node is down,
// and the failover/recover state machine's refusals.
func TestFailoverErrorSurface(t *testing.T) {
	cfg := core.Config{AC: core.StrategyPerTask, IR: core.StrategyPerTask, LB: core.StrategyPerTask}
	c, err := Start(Options{Workload: failoverWorkload(t), Config: cfg, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	if err := c.KillNode(5); err == nil {
		t.Error("KillNode accepted an unknown processor")
	}
	if _, err := c.Failover(1); err == nil || !strings.Contains(err.Error(), "not down") {
		t.Errorf("Failover on a live processor: %v, want not-down refusal", err)
	}
	if err := c.RecoverNode(1); err == nil || !strings.Contains(err.Error(), "not down") {
		t.Errorf("RecoverNode on a live processor: %v, want not-down refusal", err)
	}

	if err := c.KillNode(1); err != nil {
		t.Fatal(err)
	}
	if err := c.KillNode(1); !errors.Is(err, live.ErrNodeDown) {
		t.Errorf("double KillNode: %v, want ErrNodeDown", err)
	}
	// lidar is homed on the dead processor and has not been failed over yet.
	if _, err := c.Submit("lidar"); !errors.Is(err, live.ErrNodeDown) {
		t.Errorf("Submit to dead home: %v, want ErrNodeDown", err)
	}
	// Lifecycle transactions are gated while a node is down un-failed-over.
	to := core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerJob, LB: core.StrategyPerJob}
	if _, err := c.Reconfigure(to); !errors.Is(err, live.ErrNodeDown) {
		t.Errorf("Reconfigure with a dead node: %v, want ErrNodeDown", err)
	}
	if err := c.RemoveTasks([]string{"fuse"}); !errors.Is(err, live.ErrNodeDown) {
		t.Errorf("RemoveTasks with a dead node: %v, want ErrNodeDown", err)
	}

	if _, err := c.Failover(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Failover(1); err == nil || !strings.Contains(err.Error(), "already failed over") {
		t.Errorf("repeat Failover: %v, want already-failed-over refusal", err)
	}
	// The re-homed task accepts submissions again.
	if _, err := c.Submit("lidar"); err != nil {
		t.Errorf("Submit after failover: %v", err)
	}

	if err := c.RecoverNode(1); err != nil {
		t.Fatal(err)
	}
	if err := c.RecoverNode(1); err == nil || !strings.Contains(err.Error(), "not down") {
		t.Errorf("repeat RecoverNode: %v, want not-down refusal", err)
	}
	// With the node recovered the lifecycle gate opens again.
	if _, err := c.Reconfigure(to); err != nil {
		t.Errorf("Reconfigure after recovery: %v", err)
	}
}
