package cluster

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/ccm"
	"repro/internal/configengine"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/live"
	"repro/internal/orb"
)

// TestDeployToDeadNodeFails verifies the launcher reports an unreachable
// node instead of partially deploying.
func TestDeployToDeadNodeFails(t *testing.T) {
	w := miniWorkload(t)
	cfg := core.Config{AC: core.StrategyPerJob, IR: core.StrategyNone, LB: core.StrategyNone}

	// One real node, one dead address.
	node, err := live.NewNode("app0", 0, "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	reg := ccm.NewRegistry()
	if err := live.Register(reg); err != nil {
		t.Fatal(err)
	}
	deploy.NewNodeManager(node.ORB, reg, node.Container, node.Channel)

	plan, err := configengine.GeneratePlan("doomed", w, cfg,
		deploy.Node{Name: "manager", Address: "127.0.0.1:1", Processor: -1}, // dead
		[]deploy.Node{
			{Name: "app0", Address: node.Addr, Processor: 0},
			{Name: "app1", Address: "127.0.0.1:1", Processor: 1}, // dead
		})
	if err != nil {
		t.Fatal(err)
	}
	launcher := orb.New("test-launcher")
	defer launcher.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = deploy.NewLauncher(launcher).Execute(ctx, plan)
	if err == nil {
		t.Fatal("deployment to dead nodes succeeded")
	}
	if !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("error = %v, want unreachable-node report", err)
	}
	// The surviving node must not have been touched.
	if ids := node.Container.InstanceIDs(); len(ids) != 0 {
		t.Errorf("partial install on surviving node: %v", ids)
	}
}

// TestClusterSurvivesAppNodeLoss kills one application node mid-run and
// checks the rest of the system keeps admitting and completing jobs homed on
// surviving nodes.
func TestClusterSurvivesAppNodeLoss(t *testing.T) {
	cfg := core.Config{AC: core.StrategyPerJob, IR: core.StrategyNone, LB: core.StrategyNone}
	c := startCluster(t, cfg)
	if err := c.StartDrivers(1.0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)

	// Kill application node 0 (home of "flow"). The drivers for that node
	// will fail; node 1's "alert" task must keep flowing.
	te1, err := c.TE(1)
	if err != nil {
		t.Fatal(err)
	}
	before := te1.StatsSnapshot().Released
	_ = c.Apps[0].Close()

	time.Sleep(500 * time.Millisecond)
	c.StopDrivers()

	after := te1.StatsSnapshot().Released
	if after <= before {
		t.Errorf("no releases on surviving node after failure (before %d, after %d)", before, after)
	}
	// The admission controller is still alive and its ledger consistent.
	ac, err := c.AC()
	if err != nil {
		t.Fatal(err)
	}
	if err := ac.AuditLedger(); err != nil {
		t.Error(err)
	}
}

// TestTaskEffectorSurvivesManagerLoss verifies that arrivals during a
// manager outage fail with an error (the push cannot be delivered) without
// wedging the effector, and that local state stays consistent.
func TestTaskEffectorSurvivesManagerLoss(t *testing.T) {
	cfg := core.Config{AC: core.StrategyPerJob, IR: core.StrategyNone, LB: core.StrategyNone}
	c := startCluster(t, cfg)

	te1, err := c.TE(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := te1.Arrive("alert"); err != nil {
		t.Fatalf("baseline arrival failed: %v", err)
	}

	_ = c.Manager.Close()
	// A one-way push racing the connection teardown may still land in the
	// OS buffer and "succeed"; once the reset arrives the pooled connection
	// is dead and the redial must fail. Retry until the outage is observed,
	// bounded so a wedged effector still fails the test.
	deadline := time.Now().Add(10 * time.Second)
	sawError := false
	arrivals := int64(1)
	for time.Now().Before(deadline) {
		done := make(chan error, 1)
		go func() {
			_, err := te1.Arrive("alert")
			done <- err
		}()
		select {
		case err := <-done:
			arrivals++
			if err != nil {
				sawError = true
			}
		case <-time.After(10 * time.Second):
			t.Fatal("Arrive wedged during manager outage")
		}
		if sawError {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !sawError {
		t.Error("arrivals never reported the manager outage")
	}
	// The effector still counts every arrival and remains usable.
	if got := te1.StatsSnapshot().Arrived; got != arrivals {
		t.Errorf("Arrived = %d, want %d", got, arrivals)
	}
}
