// Package cluster assembles a complete live middleware deployment in one
// process: a task manager node and N application nodes on TCP loopback,
// deployed through the real pipeline — configuration engine → XML plan →
// plan launcher → per-node NodeManager servants → container activation —
// exactly the Figure 4 flow, with every event crossing real sockets.
//
// It is the substrate for the Section 7.3 overhead measurements, the
// runnable examples, and the end-to-end integration tests.
package cluster

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ccm"
	"repro/internal/configengine"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/live"
	"repro/internal/orb"
	"repro/internal/sched"
	"repro/internal/spec"
)

// Options configures a cluster start.
type Options struct {
	// Workload is the workload specification; Workload.Processors
	// application nodes are started.
	Workload *spec.Workload
	// Config is the AC/IR/LB strategy combination.
	Config core.Config
	// ExecScale compresses subtask execution times (default 1.0). Scale the
	// workload itself (spec durations) to compress periods and deadlines
	// consistently.
	ExecScale float64
	// Seed drives the arrival generators.
	Seed int64
	// NodeOptions tune every node's transport plane (ORB send queue and
	// write batch, gateway sink queue and batch).
	NodeOptions []live.NodeOption
}

// Cluster is a running live deployment.
type Cluster struct {
	// Manager is the task manager node; Apps are the application nodes in
	// processor order.
	Manager *live.Node
	Apps    []*live.Node
	// Plan is the executed deployment plan.
	Plan *deploy.Plan

	tasks     []*sched.Task
	collector *live.Collector
	drivers   []*live.Driver
	launcher  *orb.ORB
	seed      int64
}

// Start builds, deploys and activates a cluster. Callers must Close it.
func Start(opts Options) (*Cluster, error) {
	if opts.Workload == nil {
		return nil, fmt.Errorf("cluster: nil workload")
	}
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	if opts.ExecScale == 0 {
		opts.ExecScale = 1
	}
	tasks, err := opts.Workload.SchedTasks()
	if err != nil {
		return nil, err
	}

	registry := ccm.NewRegistry()
	if err := live.Register(registry); err != nil {
		return nil, err
	}

	c := &Cluster{tasks: tasks, seed: opts.Seed}
	fail := func(err error) (*Cluster, error) {
		c.Close()
		return nil, err
	}

	c.Manager, err = live.NewNode("manager", -1, "127.0.0.1:0", opts.ExecScale, opts.NodeOptions...)
	if err != nil {
		return fail(err)
	}
	deploy.NewNodeManager(c.Manager.ORB, registry, c.Manager.Container, c.Manager.Channel)
	managerDecl := deploy.Node{Name: "manager", Address: c.Manager.Addr, Processor: -1}

	appDecls := make([]deploy.Node, opts.Workload.Processors)
	for i := 0; i < opts.Workload.Processors; i++ {
		name := fmt.Sprintf("app%d", i)
		node, err := live.NewNode(name, i, "127.0.0.1:0", opts.ExecScale, opts.NodeOptions...)
		if err != nil {
			return fail(err)
		}
		c.Apps = append(c.Apps, node)
		deploy.NewNodeManager(node.ORB, registry, node.Container, node.Channel)
		appDecls[i] = deploy.Node{Name: name, Address: node.Addr, Processor: i}
	}

	c.Plan, err = configengine.GeneratePlan("cluster", opts.Workload, opts.Config, managerDecl, appDecls)
	if err != nil {
		return fail(err)
	}

	// The plan launcher runs as its own deployment tool with a client-only
	// ORB, as DAnCE's Plan Launcher does.
	c.launcher = orb.New("plan-launcher")
	if err := deploy.NewLauncher(c.launcher).Execute(context.Background(), c.Plan); err != nil {
		return fail(err)
	}

	c.collector = live.NewCollector(tasks)
	for _, app := range c.Apps {
		c.collector.Attach(app.Channel)
	}
	return c, nil
}

// Tasks returns the deployed scheduling-model tasks.
func (c *Cluster) Tasks() []*sched.Task { return c.tasks }

// Collector returns the completion collector.
func (c *Cluster) Collector() *live.Collector { return c.collector }

// TE returns the task effector on application processor i.
func (c *Cluster) TE(i int) (*live.TaskEffector, error) {
	comp, ok := c.Apps[i].Container.Lookup(fmt.Sprintf("TE-%d", i))
	if !ok {
		return nil, fmt.Errorf("cluster: no task effector on processor %d", i)
	}
	te, ok := comp.(*live.TaskEffector)
	if !ok {
		return nil, fmt.Errorf("cluster: TE-%d has unexpected type %T", i, comp)
	}
	return te, nil
}

// IR returns the idle resetter on application processor i.
func (c *Cluster) IR(i int) (*live.IdleResetter, error) {
	comp, ok := c.Apps[i].Container.Lookup(fmt.Sprintf("IR-%d", i))
	if !ok {
		return nil, fmt.Errorf("cluster: no idle resetter on processor %d", i)
	}
	ir, ok := comp.(*live.IdleResetter)
	if !ok {
		return nil, fmt.Errorf("cluster: IR-%d has unexpected type %T", i, comp)
	}
	return ir, nil
}

// AC returns the central admission controller.
func (c *Cluster) AC() (*live.AdmissionController, error) {
	comp, ok := c.Manager.Container.Lookup("Central-AC")
	if !ok {
		return nil, fmt.Errorf("cluster: no Central-AC on manager")
	}
	ac, ok := comp.(*live.AdmissionController)
	if !ok {
		return nil, fmt.Errorf("cluster: Central-AC has unexpected type %T", comp)
	}
	return ac, nil
}

// Subtasks returns every subtask component instance across the cluster,
// keyed by instance ID.
func (c *Cluster) Subtasks() map[string]*live.Subtask {
	out := make(map[string]*live.Subtask)
	for _, app := range c.Apps {
		for _, id := range app.Container.InstanceIDs() {
			if comp, ok := app.Container.Lookup(id); ok {
				if st, ok := comp.(*live.Subtask); ok {
					out[id] = st
				}
			}
		}
	}
	return out
}

// StartDrivers launches the arrival generators (one per application node)
// with the given time compression.
func (c *Cluster) StartDrivers(timeScale float64) error {
	if len(c.drivers) > 0 {
		return fmt.Errorf("cluster: drivers already started")
	}
	for i := range c.Apps {
		te, err := c.TE(i)
		if err != nil {
			return err
		}
		d := live.NewDriver(te, c.tasks, timeScale, c.seed+int64(i))
		c.drivers = append(c.drivers, d)
		d.Start()
	}
	return nil
}

// StopDrivers halts arrival generation.
func (c *Cluster) StopDrivers() {
	for _, d := range c.drivers {
		d.Stop()
	}
	c.drivers = nil
}

// TransportStats snapshots every node's transport-plane counters, keyed by
// node name — the overload accounting surface for scale experiments: how
// well writes batched, and whether backpressure shed any events.
func (c *Cluster) TransportStats() map[string]live.NodeTransportStats {
	out := make(map[string]live.NodeTransportStats, len(c.Apps)+1)
	if c.Manager != nil {
		out[c.Manager.Name] = c.Manager.TransportStats()
	}
	for _, app := range c.Apps {
		out[app.Name] = app.TransportStats()
	}
	return out
}

// Drain waits until every application executor is idle or the timeout
// expires, so in-flight jobs finish before measurement collection.
func (c *Cluster) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		idle := true
		for _, app := range c.Apps {
			if !app.Executor.Idle() {
				idle = false
				break
			}
		}
		if idle {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// Close stops drivers and tears every node down.
func (c *Cluster) Close() {
	c.StopDrivers()
	if c.launcher != nil {
		c.launcher.Shutdown()
	}
	for _, app := range c.Apps {
		_ = app.Close()
	}
	if c.Manager != nil {
		_ = c.Manager.Close()
	}
}
