// Package cluster assembles a complete live middleware deployment in one
// process: a task manager node and N application nodes on TCP loopback,
// deployed through the real pipeline — configuration engine → XML plan →
// plan launcher → per-node NodeManager servants → container activation —
// exactly the Figure 4 flow, with every event crossing real sockets.
//
// It is the substrate for the Section 7.3 overhead measurements, the
// runnable examples, and the end-to-end integration tests.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/ccm"
	"repro/internal/configengine"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/live"
	"repro/internal/orb"
	"repro/internal/sched"
	"repro/internal/spec"
)

// Options configures a cluster start.
type Options struct {
	// Workload is the workload specification; Workload.Processors
	// application nodes are started.
	Workload *spec.Workload
	// Config is the AC/IR/LB strategy combination.
	Config core.Config
	// ExecScale compresses subtask execution times (default 1.0). Scale the
	// workload itself (spec durations) to compress periods and deadlines
	// consistently.
	ExecScale float64
	// Seed drives the arrival generators.
	Seed int64
	// NodeOptions tune every node's transport plane (ORB send queue and
	// write batch, gateway sink queue and batch).
	NodeOptions []live.NodeOption
}

// Cluster is a running live deployment. It implements the unified Binding
// surface (Submit / Snapshot / Reconfigure / Stop) shared with the
// simulation binding, so tools and experiments drive either through one
// API.
type Cluster struct {
	// Manager is the task manager node; Apps are the application nodes in
	// processor order.
	Manager *live.Node
	Apps    []*live.Node
	// Plan is the executed deployment plan. Reconfigure folds its deltas
	// back in, so the plan always describes the running configuration.
	Plan *deploy.Plan

	tasks     []*sched.Task
	collector *live.Collector
	drivers   []*live.Driver
	launcher  *orb.ORB
	seed      int64

	// cfgMu guards the active configuration and serializes Reconfigure
	// transactions (the AC additionally refuses overlapping quiesces).
	cfgMu sync.Mutex
	cfg   core.Config
}

// Start builds, deploys and activates a cluster. Callers must Close it.
func Start(opts Options) (*Cluster, error) {
	if opts.Workload == nil {
		return nil, fmt.Errorf("cluster: nil workload")
	}
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	if opts.ExecScale == 0 {
		opts.ExecScale = 1
	}
	tasks, err := opts.Workload.SchedTasks()
	if err != nil {
		return nil, err
	}

	registry := ccm.NewRegistry()
	if err := live.Register(registry); err != nil {
		return nil, err
	}

	c := &Cluster{tasks: tasks, seed: opts.Seed, cfg: opts.Config}
	fail := func(err error) (*Cluster, error) {
		c.Close()
		return nil, err
	}

	c.Manager, err = live.NewNode("manager", -1, "127.0.0.1:0", opts.ExecScale, opts.NodeOptions...)
	if err != nil {
		return fail(err)
	}
	deploy.NewNodeManager(c.Manager.ORB, registry, c.Manager.Container, c.Manager.Channel)
	managerDecl := deploy.Node{Name: "manager", Address: c.Manager.Addr, Processor: -1}

	appDecls := make([]deploy.Node, opts.Workload.Processors)
	for i := 0; i < opts.Workload.Processors; i++ {
		name := fmt.Sprintf("app%d", i)
		node, err := live.NewNode(name, i, "127.0.0.1:0", opts.ExecScale, opts.NodeOptions...)
		if err != nil {
			return fail(err)
		}
		c.Apps = append(c.Apps, node)
		deploy.NewNodeManager(node.ORB, registry, node.Container, node.Channel)
		appDecls[i] = deploy.Node{Name: name, Address: node.Addr, Processor: i}
	}

	c.Plan, err = configengine.GeneratePlan("cluster", opts.Workload, opts.Config, managerDecl, appDecls)
	if err != nil {
		return fail(err)
	}

	// The plan launcher runs as its own deployment tool with a client-only
	// ORB, as DAnCE's Plan Launcher does.
	c.launcher = orb.New("plan-launcher")
	if err := deploy.NewLauncher(c.launcher).Execute(context.Background(), c.Plan); err != nil {
		return fail(err)
	}

	c.collector = live.NewCollector(tasks)
	for _, app := range c.Apps {
		c.collector.Attach(app.Channel)
	}
	return c, nil
}

// Tasks returns the deployed scheduling-model tasks.
func (c *Cluster) Tasks() []*sched.Task { return c.tasks }

// Config returns the currently active strategy combination.
func (c *Cluster) Config() core.Config {
	c.cfgMu.Lock()
	defer c.cfgMu.Unlock()
	return c.cfg
}

// Submit injects one job arrival for the named task at its home (first
// stage) processor's task effector — the live half of the unified Binding
// surface — and returns the assigned job number.
func (c *Cluster) Submit(taskID string) (int64, error) {
	for _, t := range c.tasks {
		if t.ID != taskID {
			continue
		}
		te, err := c.TE(t.Subtasks[0].Processor)
		if err != nil {
			return 0, err
		}
		return te.Arrive(taskID)
	}
	return 0, fmt.Errorf("cluster: unknown task %q", taskID)
}

// Snapshot aggregates the effectors' and collector's counters with the
// active configuration and reconfiguration epoch.
func (c *Cluster) Snapshot() core.BindingSnapshot {
	snap := core.BindingSnapshot{Config: c.Config()}
	if ac, err := c.AC(); err == nil {
		snap.Epoch = ac.Epoch()
	}
	snap.Arrived, snap.Released, snap.Skipped, snap.Completed = c.counters()
	snap.InFlight = snap.Released - snap.Completed
	return snap
}

// counters sums the effector-side job counters and the collector's
// completions.
func (c *Cluster) counters() (arrived, released, skipped, completed int64) {
	for i := range c.Apps {
		te, err := c.TE(i)
		if err != nil {
			continue
		}
		s := te.StatsSnapshot()
		arrived += s.Arrived
		released += s.Released
		skipped += s.Skipped
	}
	if c.collector != nil {
		completed = c.collector.Completed()
	}
	return arrived, released, skipped, completed
}

// Reconfigure swaps the cluster's AC/IR/LB strategy combination on the
// running deployment without dropping jobs: the configuration engine emits
// the delta (rejecting invalid targets before anything is touched), and the
// plan launcher executes the epoch-versioned two-phase transaction over the
// real ORB — quiesce admission on the manager, swap the strategy objects on
// every node through the component Reconfigure lifecycle stage, wire any
// new federation routes, resume and replay the arrivals buffered meanwhile.
// Jobs in flight keep executing on their old placements throughout; Accept
// decisions made before the quiesce stay valid and are recognizably stale
// (epoch-stamped) to the effector caches.
func (c *Cluster) Reconfigure(to core.Config) (*core.ReconfigReport, error) {
	c.cfgMu.Lock()
	defer c.cfgMu.Unlock()
	delta, err := configengine.ReconfigDelta(c.Plan, to)
	if err != nil {
		return nil, err
	}
	before := c.inFlight()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	outcome, err := deploy.NewLauncher(c.launcher).ExecuteReconfig(ctx, delta)
	if err != nil {
		return nil, err
	}
	from := c.cfg
	delta.Apply(c.Plan)
	c.cfg = to
	return &core.ReconfigReport{
		From:           from,
		To:             to,
		Epoch:          outcome.Epoch,
		Quiesce:        outcome.QuiesceDuration,
		Deferred:       outcome.Deferred,
		InFlightBefore: before,
		InFlightAfter:  c.inFlight(),
		NodeTimings:    outcome.NodeTimings,
	}, nil
}

// inFlight counts released-but-uncompleted jobs from the effector and
// collector counters.
func (c *Cluster) inFlight() int64 {
	_, released, _, completed := c.counters()
	return released - completed
}

// Stop is the Binding teardown: drivers halt and every node shuts down.
func (c *Cluster) Stop() error {
	c.Close()
	return nil
}

// Collector returns the completion collector.
func (c *Cluster) Collector() *live.Collector { return c.collector }

// TE returns the task effector on application processor i.
func (c *Cluster) TE(i int) (*live.TaskEffector, error) {
	comp, ok := c.Apps[i].Container.Lookup(fmt.Sprintf("TE-%d", i))
	if !ok {
		return nil, fmt.Errorf("cluster: no task effector on processor %d", i)
	}
	te, ok := comp.(*live.TaskEffector)
	if !ok {
		return nil, fmt.Errorf("cluster: TE-%d has unexpected type %T", i, comp)
	}
	return te, nil
}

// IR returns the idle resetter on application processor i.
func (c *Cluster) IR(i int) (*live.IdleResetter, error) {
	comp, ok := c.Apps[i].Container.Lookup(fmt.Sprintf("IR-%d", i))
	if !ok {
		return nil, fmt.Errorf("cluster: no idle resetter on processor %d", i)
	}
	ir, ok := comp.(*live.IdleResetter)
	if !ok {
		return nil, fmt.Errorf("cluster: IR-%d has unexpected type %T", i, comp)
	}
	return ir, nil
}

// AC returns the central admission controller.
func (c *Cluster) AC() (*live.AdmissionController, error) {
	comp, ok := c.Manager.Container.Lookup("Central-AC")
	if !ok {
		return nil, fmt.Errorf("cluster: no Central-AC on manager")
	}
	ac, ok := comp.(*live.AdmissionController)
	if !ok {
		return nil, fmt.Errorf("cluster: Central-AC has unexpected type %T", comp)
	}
	return ac, nil
}

// Subtasks returns every subtask component instance across the cluster,
// keyed by instance ID.
func (c *Cluster) Subtasks() map[string]*live.Subtask {
	out := make(map[string]*live.Subtask)
	for _, app := range c.Apps {
		for _, id := range app.Container.InstanceIDs() {
			if comp, ok := app.Container.Lookup(id); ok {
				if st, ok := comp.(*live.Subtask); ok {
					out[id] = st
				}
			}
		}
	}
	return out
}

// StartDrivers launches the arrival generators (one per application node)
// with the given time compression.
func (c *Cluster) StartDrivers(timeScale float64) error {
	if len(c.drivers) > 0 {
		return fmt.Errorf("cluster: drivers already started")
	}
	for i := range c.Apps {
		te, err := c.TE(i)
		if err != nil {
			return err
		}
		d := live.NewDriver(te, c.tasks, timeScale, c.seed+int64(i))
		c.drivers = append(c.drivers, d)
		d.Start()
	}
	return nil
}

// StopDrivers halts arrival generation.
func (c *Cluster) StopDrivers() {
	for _, d := range c.drivers {
		d.Stop()
	}
	c.drivers = nil
}

// TransportStats snapshots every node's transport-plane counters, keyed by
// node name — the overload accounting surface for scale experiments: how
// well writes batched, and whether backpressure shed any events.
func (c *Cluster) TransportStats() map[string]live.NodeTransportStats {
	out := make(map[string]live.NodeTransportStats, len(c.Apps)+1)
	if c.Manager != nil {
		out[c.Manager.Name] = c.Manager.TransportStats()
	}
	for _, app := range c.Apps {
		out[app.Name] = app.TransportStats()
	}
	return out
}

// Drain waits until every application executor is idle or the timeout
// expires, so in-flight jobs finish before measurement collection.
func (c *Cluster) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		idle := true
		for _, app := range c.Apps {
			if !app.Executor.Idle() {
				idle = false
				break
			}
		}
		if idle {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// Close stops drivers and tears every node down.
func (c *Cluster) Close() {
	c.StopDrivers()
	if c.launcher != nil {
		c.launcher.Shutdown()
	}
	for _, app := range c.Apps {
		_ = app.Close()
	}
	if c.Manager != nil {
		_ = c.Manager.Close()
	}
}
