// Package cluster assembles a complete live middleware deployment in one
// process: a task manager node and N application nodes on TCP loopback,
// deployed through the real pipeline — configuration engine → XML plan →
// plan launcher → per-node NodeManager servants → container activation —
// exactly the Figure 4 flow, with every event crossing real sockets.
//
// It is the substrate for the Section 7.3 overhead measurements, the
// runnable examples, and the end-to-end integration tests.
package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ccm"
	"repro/internal/configengine"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/eventchan"
	"repro/internal/live"
	"repro/internal/orb"
	"repro/internal/sched"
	"repro/internal/spec"
)

// Options configures a cluster start.
type Options struct {
	// Workload is the workload specification; Workload.Processors
	// application nodes are started.
	Workload *spec.Workload
	// Config is the AC/IR/LB strategy combination.
	Config core.Config
	// ExecScale compresses subtask execution times (default 1.0). Scale the
	// workload itself (spec durations) to compress periods and deadlines
	// consistently.
	ExecScale float64
	// Seed drives the arrival generators.
	Seed int64
	// NodeOptions tune every node's transport plane (ORB send queue and
	// write batch, gateway sink queue and batch).
	NodeOptions []live.NodeOption
	// HeartbeatTimeout is the heartbeat silence span after which the failure
	// detector declares an application node dead (default
	// DefaultHeartbeatTimeout).
	HeartbeatTimeout time.Duration
	// AutoFailover makes the detector run the failover transaction itself
	// when it declares a node dead; without it the declaration only surfaces
	// as a WatchNodeDown event and Failover is the caller's move.
	AutoFailover bool
}

// Cluster is a running live deployment. It implements the unified Binding
// surface (Submit / Snapshot / Reconfigure / Stop) shared with the
// simulation binding, so tools and experiments drive either through one
// API.
type Cluster struct {
	// Manager is the task manager node; Apps are the application nodes in
	// processor order.
	Manager *live.Node
	Apps    []*live.Node
	// Plan is the executed deployment plan. Reconfigure folds its deltas
	// back in, so the plan always describes the running configuration.
	Plan *deploy.Plan

	collector *live.Collector
	drivers   []*live.Driver
	launcher  *orb.ORB
	seed      int64

	// registry, execScale and nodeOpts are retained from Start so
	// RecoverNode can assemble a replacement node identically.
	registry  *ccm.Registry
	execScale float64
	nodeOpts  []live.NodeOption

	// detector and tracker are the failure plane (failover.go).
	detector *detector
	tracker  *tracker

	// failMu guards the node-liveness and failover-deferral state. It is a
	// leaf lock: Submit consults it without cfgMu, so a failover holding
	// cfgMu across its network phase never blocks the submission path.
	failMu          sync.Mutex
	deadProcs       map[int]bool
	failedOver      map[int]bool
	failoverActive  bool
	deferredSubmits []string
	// lostStats banks dead effectors' counters when RecoverNode replaces
	// their node, keeping the binding counters monotonic across the swap.
	lostStats map[int]live.TEStats

	// cfgMu guards the active configuration, the stopped flag and
	// serializes Reconfigure / AddTasks / RemoveTasks transactions (the AC
	// additionally refuses overlapping quiesces).
	cfgMu   sync.Mutex
	cfg     core.Config
	stopped bool

	// taskMu guards the deployed task set, which the open-world lifecycle
	// calls swap while submissions read it.
	taskMu    sync.RWMutex
	tasks     []*sched.Task
	deadlines map[string]time.Duration

	// hub fans lifecycle events out to Watch streams; epoch and cfgVal
	// mirror the reconfiguration epoch and active combination for event
	// stamping — the watch taps run synchronously in event-plane pusher
	// goroutines, so they must never wait on cfgMu (which lifecycle
	// transactions hold across their network phase).
	hub    core.WatchHub
	epoch  atomic.Int64
	cfgVal atomic.Value // core.Config
}

// Start builds, deploys and activates a cluster. Callers must Close it.
func Start(opts Options) (*Cluster, error) {
	if opts.Workload == nil {
		return nil, fmt.Errorf("cluster: nil workload")
	}
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	if opts.ExecScale == 0 {
		opts.ExecScale = 1
	}
	tasks, err := opts.Workload.SchedTasks()
	if err != nil {
		return nil, err
	}

	registry := ccm.NewRegistry()
	if err := live.Register(registry); err != nil {
		return nil, err
	}

	c := &Cluster{
		seed:      opts.Seed,
		cfg:       opts.Config,
		registry:  registry,
		execScale: opts.ExecScale,
		nodeOpts:  opts.NodeOptions,
	}
	c.cfgVal.Store(opts.Config)
	c.setTasks(tasks)
	fail := func(err error) (*Cluster, error) {
		c.Close()
		return nil, err
	}

	c.Manager, err = live.NewNode("manager", -1, "127.0.0.1:0", opts.ExecScale, opts.NodeOptions...)
	if err != nil {
		return fail(err)
	}
	deploy.NewNodeManager(c.Manager.ORB, registry, c.Manager.Container, c.Manager.Channel)
	managerDecl := deploy.Node{Name: "manager", Address: c.Manager.Addr, Processor: -1}

	appDecls := make([]deploy.Node, opts.Workload.Processors)
	for i := 0; i < opts.Workload.Processors; i++ {
		name := fmt.Sprintf("app%d", i)
		node, err := live.NewNode(name, i, "127.0.0.1:0", opts.ExecScale, opts.NodeOptions...)
		if err != nil {
			return fail(err)
		}
		c.Apps = append(c.Apps, node)
		deploy.NewNodeManager(node.ORB, registry, node.Container, node.Channel)
		appDecls[i] = deploy.Node{Name: name, Address: node.Addr, Processor: i}
	}

	c.Plan, err = configengine.GeneratePlan("cluster", opts.Workload, opts.Config, managerDecl, appDecls)
	if err != nil {
		return fail(err)
	}

	// The plan launcher runs as its own deployment tool with a client-only
	// ORB, as DAnCE's Plan Launcher does.
	c.launcher = orb.New("plan-launcher")
	if err := deploy.NewLauncher(c.launcher).Execute(context.Background(), c.Plan); err != nil {
		return fail(err)
	}

	c.collector = live.NewCollector(tasks)
	for _, app := range c.Apps {
		c.collector.Attach(app.Channel)
	}

	// Watch taps: the hub observes releases on every application node's
	// channel (local pushes only — a federated re-delivery of a relocated
	// release would double-count), rejections on the manager's channel, and
	// completions on the last-stage nodes. The handlers are inert until the
	// first Watch subscribes.
	for _, app := range c.Apps {
		app.Channel.Subscribe(live.EvRelease, c.tapRelease(app.Name))
		app.Channel.Subscribe(live.EvDone, c.tapDone(app.Name))
	}
	c.Manager.Channel.Subscribe(live.EvAccept, c.tapAccept(c.Manager.Name))

	// Failure plane: the dead-letter tracker tails every application node's
	// local job hops, and the detector tails the heartbeat stream on the
	// manager.
	c.tracker = newTracker(c)
	for _, app := range c.Apps {
		c.tracker.attach(app)
	}
	timeout := opts.HeartbeatTimeout
	if timeout <= 0 {
		timeout = DefaultHeartbeatTimeout
	}
	c.detector = newDetector(c, timeout, opts.AutoFailover)
	c.detector.start()
	return c, nil
}

// Tasks returns the deployed scheduling-model tasks.
func (c *Cluster) Tasks() []*sched.Task {
	c.taskMu.RLock()
	defer c.taskMu.RUnlock()
	return c.tasks
}

// setTasks swaps the deployed task set and refreshes the deadline index
// (departed tasks keep their deadline entries so draining completions still
// account deadline misses).
func (c *Cluster) setTasks(tasks []*sched.Task) {
	c.taskMu.Lock()
	defer c.taskMu.Unlock()
	c.tasks = tasks
	if c.deadlines == nil {
		c.deadlines = make(map[string]time.Duration, len(tasks))
	}
	for _, t := range tasks {
		c.deadlines[t.ID] = t.Deadline
	}
}

// Config returns the currently active strategy combination.
func (c *Cluster) Config() core.Config {
	c.cfgMu.Lock()
	defer c.cfgMu.Unlock()
	return c.cfg
}

// Submit injects one job arrival for the named task at its home (first
// stage) processor's task effector — the live half of the unified Binding
// surface. The returned Admission resolves synchronously for per-task
// cached decisions and is Pending otherwise; the terminal outcome surfaces
// on the binding's watch stream. During a failover the arrival is deferred
// (Pending) and replayed against the re-homed task set when the transaction
// completes; a submission homed on a dead processor that has not failed over
// fails with ErrNodeDown.
func (c *Cluster) Submit(taskID string) (core.Admission, error) {
	proc, err := c.homeProc(taskID)
	if err != nil {
		return core.Admission{Task: taskID, Job: -1}, err
	}
	c.failMu.Lock()
	if c.failoverActive {
		c.deferredSubmits = append(c.deferredSubmits, taskID)
		c.failMu.Unlock()
		return core.Admission{
			Task: taskID, Job: -1,
			Outcome: core.AdmissionPending,
			Reason:  "failover in progress: arrival deferred",
		}, nil
	}
	if c.deadProcs[proc] {
		c.failMu.Unlock()
		return core.Admission{Task: taskID, Job: -1},
			fmt.Errorf("cluster: submit %q: processor %d: %w", taskID, proc, live.ErrNodeDown)
	}
	c.failMu.Unlock()
	te, err := c.TE(proc)
	if err != nil {
		return core.Admission{Task: taskID, Job: -1}, err
	}
	return te.SubmitJob(taskID)
}

// SubmitBatch injects one arrival per named task, grouping the arrivals by
// home task effector so each group takes the effector lock once and its
// "Task Arrive" events push back to back — the gateway's group-commit
// forwarder coalesces them into a few ORB frames instead of one invocation
// each. IDs are validated up front; an unknown task fails the whole batch
// before any arrival is injected. If a group nevertheless fails mid-flight
// (e.g. its task was removed concurrently), the returned slice is still
// complete and faithful: injected arrivals keep their admissions, the
// failed group's entries resolve as Rejected with the error in Reason, and
// the first error is returned alongside.
func (c *Cluster) SubmitBatch(taskIDs []string) ([]core.Admission, error) {
	type group struct {
		ids  []string
		idxs []int
	}
	groups := make(map[int]*group)
	order := make([]int, 0, 4)
	for i, id := range taskIDs {
		proc, err := c.homeProc(id)
		if err != nil {
			return nil, err
		}
		g, ok := groups[proc]
		if !ok {
			g = &group{}
			groups[proc] = g
			order = append(order, proc)
		}
		g.ids = append(g.ids, id)
		g.idxs = append(g.idxs, i)
	}
	out := make([]core.Admission, len(taskIDs))
	for i, id := range taskIDs {
		out[i] = core.Admission{Task: id, Job: -1}
	}
	c.failMu.Lock()
	if c.failoverActive {
		// Defer the whole batch, as a quiesce defers arrivals; the replay
		// after the failover re-injects them one by one.
		c.deferredSubmits = append(c.deferredSubmits, taskIDs...)
		c.failMu.Unlock()
		for i := range out {
			out[i].Outcome = core.AdmissionPending
			out[i].Reason = "failover in progress: arrival deferred"
		}
		return out, nil
	}
	dead := make(map[int]bool, len(c.deadProcs))
	for p := range c.deadProcs {
		dead[p] = true
	}
	c.failMu.Unlock()
	var firstErr error
	failGroup := func(g *group, err error) {
		for _, idx := range g.idxs {
			out[idx].Outcome = core.AdmissionRejected
			out[idx].Reason = err.Error()
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	for _, proc := range order {
		g := groups[proc]
		if dead[proc] {
			failGroup(g, fmt.Errorf("cluster: submit batch: processor %d: %w", proc, live.ErrNodeDown))
			continue
		}
		te, err := c.TE(proc)
		if err != nil {
			failGroup(g, err)
			continue
		}
		adms, err := te.SubmitBatch(g.ids)
		if err != nil && adms == nil {
			failGroup(g, err)
			continue
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		for i, adm := range adms {
			out[g.idxs[i]] = adm
		}
	}
	return out, firstErr
}

// homeProc resolves a task's home (first stage) processor.
func (c *Cluster) homeProc(taskID string) (int, error) {
	c.taskMu.RLock()
	defer c.taskMu.RUnlock()
	for _, t := range c.tasks {
		if t.ID == taskID {
			return t.Subtasks[0].Processor, nil
		}
	}
	return 0, fmt.Errorf("cluster: %w: %q", core.ErrUnknownTask, taskID)
}

// lifecycleGate rejects lifecycle transactions that cannot run: a failover
// in flight (ErrFailoverInProgress — the transaction would queue behind it
// on cfgMu and then act on a stale view), or a dead node that has not been
// recovered (ErrNodeDown — the delta would RPC it). Callers hold cfgMu.
func (c *Cluster) lifecycleGate(op string) error {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	if c.failoverActive {
		return fmt.Errorf("cluster: %s: %w", op, live.ErrFailoverInProgress)
	}
	for proc := range c.deadProcs {
		return fmt.Errorf("cluster: %s: processor %d: %w", op, proc, live.ErrNodeDown)
	}
	return nil
}

// AddTasks registers new tasks on the running deployment through the
// configuration engine's task-set delta: the plan launcher quiesces
// admission, installs the added tasks' subtask components on the running
// nodes, wires the new federation routes, pushes the union workload — with
// EDMS priorities re-assigned over it — to the admission controller, load
// balancer and every task effector, and resumes. Arrivals buffered during
// the quiesce replay against the enlarged task set.
func (c *Cluster) AddTasks(tasks []*sched.Task) error {
	c.cfgMu.Lock()
	defer c.cfgMu.Unlock()
	if c.stopped {
		return fmt.Errorf("cluster: add tasks: %w", core.ErrStopped)
	}
	if err := c.lifecycleGate("add tasks"); err != nil {
		return err
	}
	delta, err := configengine.AddTasksDelta(c.Plan, tasks)
	if err != nil {
		return err
	}
	outcome, err := c.executeDelta(delta)
	if err != nil {
		return err
	}
	c.epoch.Store(outcome.Epoch)
	if err := c.refreshTasks(); err != nil {
		return err
	}
	if c.hub.Active() {
		for _, t := range tasks {
			c.emit(core.WatchEvent{Kind: core.WatchTaskAdded, Task: t.ID, Job: -1, Config: c.cfg})
		}
	}
	return nil
}

// RemoveTasks withdraws tasks from the running deployment: under the same
// quiesce protocol, the admission controller releases the departed tasks'
// remaining ledger contributions (including per-task reservations) and every
// task effector drops their holds and cached decisions. Jobs already
// released keep executing on the still-installed subtask components — no
// admitted job is lost — and those instances go inert once drained.
func (c *Cluster) RemoveTasks(ids []string) error {
	c.cfgMu.Lock()
	defer c.cfgMu.Unlock()
	if c.stopped {
		return fmt.Errorf("cluster: remove tasks: %w", core.ErrStopped)
	}
	if err := c.lifecycleGate("remove tasks"); err != nil {
		return err
	}
	delta, err := configengine.RemoveTasksDelta(c.Plan, ids)
	if err != nil {
		return err
	}
	outcome, err := c.executeDelta(delta)
	if err != nil {
		return err
	}
	c.epoch.Store(outcome.Epoch)
	if err := c.refreshTasks(); err != nil {
		return err
	}
	if c.hub.Active() {
		for _, id := range ids {
			c.emit(core.WatchEvent{Kind: core.WatchTaskRemoved, Task: id, Job: -1, Config: c.cfg})
		}
	}
	return nil
}

// executeDelta runs one reconfiguration transaction against the live nodes
// and folds it into the plan. Callers hold cfgMu.
func (c *Cluster) executeDelta(delta *deploy.Delta) (*deploy.ReconfigOutcome, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	outcome, err := deploy.NewLauncher(c.launcher).ExecuteReconfig(ctx, delta)
	if err != nil {
		return nil, err
	}
	delta.Apply(c.Plan)
	return outcome, nil
}

// refreshTasks re-reads the deployed task set (with its re-assigned EDMS
// priorities) from the plan's admission controller instance. Callers hold
// cfgMu.
func (c *Cluster) refreshTasks() error {
	for _, inst := range c.Plan.Instances {
		if inst.Implementation != live.ImplAdmissionController {
			continue
		}
		wl, ok := inst.Attrs()[live.AttrWorkload]
		if !ok {
			return fmt.Errorf("cluster: plan admission controller has no workload attribute")
		}
		w, err := spec.Parse([]byte(wl))
		if err != nil {
			return err
		}
		tasks, err := w.SchedTasks()
		if err != nil {
			return err
		}
		c.setTasks(tasks)
		return nil
	}
	return fmt.Errorf("cluster: plan has no admission controller instance")
}

// Watch opens an ordered stream of lifecycle events observed at the binding:
// admissions (job releases on the application nodes), rejections (admission
// controller decisions), completions and deadline misses, task-set changes
// and reconfigurations. Per-stream delivery is in strictly increasing Seq
// order; a consumer that falls behind loses newest events (counted) rather
// than backpressuring the event plane.
func (c *Cluster) Watch(opts core.WatchOptions) (*core.WatchStream, error) {
	c.cfgMu.Lock()
	stopped := c.stopped
	c.cfgMu.Unlock()
	if stopped {
		return nil, fmt.Errorf("cluster: watch: %w", core.ErrStopped)
	}
	return c.hub.Subscribe(opts), nil
}

// emit stamps and publishes one watch event. Callers fill Config themselves
// (lifecycle paths hold cfgMu and use c.cfg; taps use the lock-free
// configSnapshot mirror), so emit never takes the configuration lock.
func (c *Cluster) emit(ev core.WatchEvent) {
	ev.At = time.Duration(time.Now().UnixNano())
	if ev.Epoch == 0 {
		ev.Epoch = c.epoch.Load()
	}
	c.hub.Emit(ev)
}

// configSnapshot reads the active combination without cfgMu: the watch taps
// run synchronously in event-plane pusher goroutines and must not block on
// a lifecycle transaction holding the lock across its network phase.
func (c *Cluster) configSnapshot() core.Config {
	if v, ok := c.cfgVal.Load().(core.Config); ok {
		return v
	}
	return core.Config{}
}

// decodeEvent gob-decodes a live event payload.
func decodeEvent(payload []byte, out any) error {
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(out)
}

// tapRelease observes job releases on one application node's channel. Only
// locally pushed events count: a federated re-delivery of a relocated
// release carries the home node's source name and is skipped.
func (c *Cluster) tapRelease(node string) eventchan.Handler {
	return func(ev eventchan.Event) {
		if !c.hub.Active() || ev.Source != node {
			return
		}
		var trg live.Trigger
		if err := decodeEvent(ev.Payload, &trg); err != nil {
			return
		}
		c.emit(core.WatchEvent{
			Kind: core.WatchAdmitted, Task: trg.Task, Job: trg.Job,
			Placement: trg.Placement, Config: c.configSnapshot(),
		})
	}
}

// tapAccept observes rejection decisions on the manager's channel (accepted
// decisions surface as releases on the application nodes).
func (c *Cluster) tapAccept(node string) eventchan.Handler {
	return func(ev eventchan.Event) {
		if !c.hub.Active() || ev.Source != node {
			return
		}
		var dec live.Accept
		if err := decodeEvent(ev.Payload, &dec); err != nil || dec.Ok {
			return
		}
		c.emit(core.WatchEvent{
			Kind: core.WatchRejected, Task: dec.Task, Job: dec.Job,
			Epoch: dec.Epoch, Config: c.configSnapshot(),
		})
	}
}

// tapDone observes job completions on one application node's channel.
func (c *Cluster) tapDone(node string) eventchan.Handler {
	return func(ev eventchan.Event) {
		if !c.hub.Active() || ev.Source != node {
			return
		}
		var done live.Done
		if err := decodeEvent(ev.Payload, &done); err != nil {
			return
		}
		resp := time.Duration(done.DoneNanos - done.ArrivalNanos)
		out := core.WatchEvent{
			Kind: core.WatchCompleted, Task: done.Task, Job: done.Job,
			Response: resp, Config: c.configSnapshot(),
		}
		c.emit(out)
		c.taskMu.RLock()
		dl, ok := c.deadlines[done.Task]
		c.taskMu.RUnlock()
		if ok && resp > dl {
			out.Kind = core.WatchDeadlineMiss
			c.emit(out)
		}
	}
}

// Snapshot aggregates the effectors' and collector's counters with the
// active configuration and reconfiguration epoch.
func (c *Cluster) Snapshot() core.BindingSnapshot {
	snap := core.BindingSnapshot{Config: c.Config()}
	if ac, err := c.AC(); err == nil {
		snap.Epoch = ac.Epoch()
	}
	snap.Arrived, snap.Released, snap.Skipped, snap.Completed, snap.Shed = c.counters()
	snap.InFlight = snap.Released - snap.Completed
	snap.WatchDropped = c.hub.Dropped()
	return snap
}

// counters sums the effector-side job counters and the collector's
// completions. A killed node's effector keeps answering from memory (its
// container retains instances past shutdown), and RecoverNode banks the dead
// effector's totals into lostStats before the replacement zeroes them, so
// the sums stay monotonic across node loss and recovery.
func (c *Cluster) counters() (arrived, released, skipped, completed, shed int64) {
	for i := range c.Apps {
		te, err := c.TE(i)
		if err != nil {
			continue
		}
		s := te.StatsSnapshot()
		arrived += s.Arrived
		released += s.Released
		skipped += s.Skipped
		shed += s.Overloaded
	}
	c.failMu.Lock()
	for _, s := range c.lostStats {
		arrived += s.Arrived
		released += s.Released
		skipped += s.Skipped
		shed += s.Overloaded
	}
	c.failMu.Unlock()
	if c.collector != nil {
		completed = c.collector.Completed()
	}
	return arrived, released, skipped, completed, shed
}

// Reconfigure swaps the cluster's AC/IR/LB strategy combination on the
// running deployment without dropping jobs: the configuration engine emits
// the delta (rejecting invalid targets before anything is touched), and the
// plan launcher executes the epoch-versioned two-phase transaction over the
// real ORB — quiesce admission on the manager, swap the strategy objects on
// every node through the component Reconfigure lifecycle stage, wire any
// new federation routes, resume and replay the arrivals buffered meanwhile.
// Jobs in flight keep executing on their old placements throughout; Accept
// decisions made before the quiesce stay valid and are recognizably stale
// (epoch-stamped) to the effector caches.
func (c *Cluster) Reconfigure(to core.Config) (*core.ReconfigReport, error) {
	c.cfgMu.Lock()
	defer c.cfgMu.Unlock()
	if c.stopped {
		return nil, fmt.Errorf("cluster: reconfigure: %w", core.ErrStopped)
	}
	if err := c.lifecycleGate("reconfigure"); err != nil {
		return nil, err
	}
	delta, err := configengine.ReconfigDelta(c.Plan, to)
	if err != nil {
		return nil, err
	}
	before := c.inFlight()
	outcome, err := c.executeDelta(delta)
	if err != nil {
		return nil, err
	}
	from := c.cfg
	c.cfg = to
	c.cfgVal.Store(to)
	c.epoch.Store(outcome.Epoch)
	if c.hub.Active() {
		c.emit(core.WatchEvent{
			Kind: core.WatchReconfigured, Task: "", Job: -1,
			Config: to, Epoch: outcome.Epoch,
		})
	}
	return &core.ReconfigReport{
		From:           from,
		To:             to,
		Epoch:          outcome.Epoch,
		Quiesce:        outcome.QuiesceDuration,
		Deferred:       outcome.Deferred,
		InFlightBefore: before,
		InFlightAfter:  c.inFlight(),
		NodeTimings:    outcome.NodeTimings,
	}, nil
}

// inFlight counts released-but-uncompleted jobs from the effector and
// collector counters.
func (c *Cluster) inFlight() int64 {
	_, released, _, completed, _ := c.counters()
	return released - completed
}

// Stop is the Binding teardown: watch streams close, drivers halt and every
// node shuts down.
func (c *Cluster) Stop() error {
	c.Close()
	return nil
}

// Collector returns the completion collector.
func (c *Cluster) Collector() *live.Collector { return c.collector }

// TE returns the task effector on application processor i.
func (c *Cluster) TE(i int) (*live.TaskEffector, error) {
	comp, ok := c.Apps[i].Container.Lookup(fmt.Sprintf("TE-%d", i))
	if !ok {
		return nil, fmt.Errorf("cluster: no task effector on processor %d", i)
	}
	te, ok := comp.(*live.TaskEffector)
	if !ok {
		return nil, fmt.Errorf("cluster: TE-%d has unexpected type %T", i, comp)
	}
	return te, nil
}

// IR returns the idle resetter on application processor i.
func (c *Cluster) IR(i int) (*live.IdleResetter, error) {
	comp, ok := c.Apps[i].Container.Lookup(fmt.Sprintf("IR-%d", i))
	if !ok {
		return nil, fmt.Errorf("cluster: no idle resetter on processor %d", i)
	}
	ir, ok := comp.(*live.IdleResetter)
	if !ok {
		return nil, fmt.Errorf("cluster: IR-%d has unexpected type %T", i, comp)
	}
	return ir, nil
}

// AC returns the central admission controller.
func (c *Cluster) AC() (*live.AdmissionController, error) {
	comp, ok := c.Manager.Container.Lookup("Central-AC")
	if !ok {
		return nil, fmt.Errorf("cluster: no Central-AC on manager")
	}
	ac, ok := comp.(*live.AdmissionController)
	if !ok {
		return nil, fmt.Errorf("cluster: Central-AC has unexpected type %T", comp)
	}
	return ac, nil
}

// Subtasks returns every subtask component instance across the cluster,
// keyed by instance ID.
func (c *Cluster) Subtasks() map[string]*live.Subtask {
	out := make(map[string]*live.Subtask)
	for _, app := range c.Apps {
		for _, id := range app.Container.InstanceIDs() {
			if comp, ok := app.Container.Lookup(id); ok {
				if st, ok := comp.(*live.Subtask); ok {
					out[id] = st
				}
			}
		}
	}
	return out
}

// StartDrivers launches the arrival generators (one per application node)
// with the given time compression. Drivers generate the task set deployed
// at the time of the call; tasks added later are driven through Submit.
func (c *Cluster) StartDrivers(timeScale float64) error {
	if len(c.drivers) > 0 {
		return fmt.Errorf("cluster: drivers already started")
	}
	tasks := c.Tasks()
	for i := range c.Apps {
		te, err := c.TE(i)
		if err != nil {
			return err
		}
		d := live.NewDriver(te, tasks, timeScale, c.seed+int64(i))
		c.drivers = append(c.drivers, d)
		d.Start()
	}
	return nil
}

// StopDrivers halts arrival generation.
func (c *Cluster) StopDrivers() {
	for _, d := range c.drivers {
		d.Stop()
	}
	c.drivers = nil
}

// TransportStats snapshots every node's transport-plane counters, keyed by
// node name — the overload accounting surface for scale experiments: how
// well writes batched, and whether backpressure shed any events.
func (c *Cluster) TransportStats() map[string]live.NodeTransportStats {
	out := make(map[string]live.NodeTransportStats, len(c.Apps)+1)
	if c.Manager != nil {
		out[c.Manager.Name] = c.Manager.TransportStats()
	}
	for _, app := range c.Apps {
		out[app.Name] = app.TransportStats()
	}
	return out
}

// Drain waits until every application executor is idle or the timeout
// expires, so in-flight jobs finish before measurement collection.
func (c *Cluster) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		idle := true
		for _, app := range c.Apps {
			if !app.Executor.Idle() {
				idle = false
				break
			}
		}
		if idle {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// Close stops drivers, closes watch streams and tears every node down.
// Nodes already killed by the chaos hooks are skipped.
func (c *Cluster) Close() {
	c.cfgMu.Lock()
	c.stopped = true
	c.cfgMu.Unlock()
	if c.detector != nil {
		c.detector.halt()
	}
	c.hub.CloseAll()
	c.StopDrivers()
	if c.launcher != nil {
		c.launcher.Shutdown()
	}
	for i, app := range c.Apps {
		if c.isDead(i) {
			continue
		}
		_ = app.Close()
	}
	if c.Manager != nil {
		_ = c.Manager.Close()
	}
}
