package cluster

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/sched"
)

// tenantA and tenantB are the joining tasks of the live lifecycle tests.
func tenantTasksLive() []*sched.Task {
	return []*sched.Task{
		{
			ID: "tenant-a", Kind: sched.Aperiodic,
			Deadline: 50 * time.Millisecond, MeanInterarrival: 40 * time.Millisecond,
			Subtasks: []sched.Subtask{{Index: 0, Exec: time.Millisecond, Processor: 0}},
		},
		{
			ID: "tenant-b", Kind: sched.Periodic,
			Period: 70 * time.Millisecond, Deadline: 70 * time.Millisecond,
			Subtasks: []sched.Subtask{
				{Index: 0, Exec: 2 * time.Millisecond, Processor: 1},
				{Index: 1, Exec: time.Millisecond, Processor: 0},
			},
		},
	}
}

// TestClusterAddRemoveTasksLive is the live half of the open-world tentpole
// pin: a running cluster under driver load gains two tenant tasks through
// the configuration-engine delta (subtask installs + workload updates +
// routes, under the quiesce protocol), serves batch arrivals at them, then
// removes them again — with zero admitted-job loss and a clean ledger audit
// afterwards. Runs under -race in CI.
func TestClusterAddRemoveTasksLive(t *testing.T) {
	cfg := core.Config{AC: core.StrategyPerTask, IR: core.StrategyPerTask, LB: core.StrategyPerTask}
	c := startCluster(t, cfg)

	watch, err := c.Watch(core.WatchOptions{Buffer: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	var events []core.WatchEvent
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		for ev := range watch.Events() {
			events = append(events, ev)
		}
	}()

	if err := c.StartDrivers(1.0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)

	// Tenant joins: the plan gains the subtask instances and the AC, LB and
	// TEs adopt the union workload.
	if err := c.AddTasks(tenantTasksLive()); err != nil {
		t.Fatal(err)
	}
	if snap := c.Snapshot(); snap.Epoch != 1 {
		t.Errorf("epoch after AddTasks = %d, want 1", snap.Epoch)
	}
	found := 0
	for _, inst := range c.Plan.Instances {
		if inst.Implementation == live.ImplSubtask {
			if id := inst.Attrs()[live.AttrTask]; id == "tenant-a" || id == "tenant-b" {
				found++
			}
		}
	}
	if found != 3 {
		t.Errorf("plan gained %d tenant subtask instances, want 3", found)
	}

	// Duplicate registration is refused with the typed sentinel.
	if err := c.AddTasks(tenantTasksLive()[:1]); !errors.Is(err, core.ErrTaskExists) {
		t.Errorf("duplicate AddTasks error = %v, want ErrTaskExists", err)
	}

	// Batch arrivals at the new tasks release and complete for real.
	adms, err := c.SubmitBatch([]string{"tenant-a", "tenant-b", "tenant-a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(adms) != 3 || adms[0].Job != 0 || adms[2].Job != 1 || adms[1].Task != "tenant-b" {
		t.Errorf("batch admissions = %+v", adms)
	}
	time.Sleep(200 * time.Millisecond)

	// Tenant leaves: ledger contributions withdrawn, submissions refused.
	if err := c.RemoveTasks([]string{"tenant-a", "tenant-b"}); err != nil {
		t.Fatal(err)
	}
	if snap := c.Snapshot(); snap.Epoch != 2 {
		t.Errorf("epoch after RemoveTasks = %d, want 2", snap.Epoch)
	}
	if _, err := c.Submit("tenant-a"); !errors.Is(err, core.ErrUnknownTask) {
		t.Errorf("submit to removed task error = %v, want ErrUnknownTask", err)
	}
	if err := c.RemoveTasks([]string{"ghost"}); !errors.Is(err, core.ErrUnknownTask) {
		t.Errorf("remove unknown task error = %v, want ErrUnknownTask", err)
	}

	time.Sleep(150 * time.Millisecond)
	c.StopDrivers()
	if !c.Drain(3 * time.Second) {
		t.Fatal("executors never drained")
	}

	// Zero admitted-job loss across the churn, and closed accounting.
	ok := settle(t, 2*time.Second, func() bool {
		s := c.Snapshot()
		return s.Released == s.Completed && s.Arrived == s.Released+s.Skipped
	})
	s := c.Snapshot()
	if !ok {
		t.Errorf("jobs lost across task churn: arrived %d, released %d, skipped %d, completed %d",
			s.Arrived, s.Released, s.Skipped, s.Completed)
	}

	// Post-run ledger audit: indexes consistent, nothing stranded for the
	// departed tenants.
	ac, err := c.AC()
	if err != nil {
		t.Fatal(err)
	}
	if err := ac.AuditLedger(); err != nil {
		t.Errorf("ledger audit after churn: %v", err)
	}
	for _, ref := range ac.ActiveLedgerJobs() {
		if ref.Task == "tenant-a" || ref.Task == "tenant-b" {
			t.Errorf("ledger holds contributions for removed task: %v", ref)
		}
	}

	// The watch stream observed the churn in order.
	watch.Cancel()
	<-watchDone
	var lastSeq int64
	counts := make(map[core.WatchKind]int)
	for _, ev := range events {
		if ev.Seq <= lastSeq {
			t.Fatalf("watch event out of order: seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		counts[ev.Kind]++
	}
	if counts[core.WatchTaskAdded] != 2 || counts[core.WatchTaskRemoved] != 2 {
		t.Errorf("task lifecycle events = %v", counts)
	}
	if counts[core.WatchAdmitted] == 0 || counts[core.WatchCompleted] == 0 {
		t.Errorf("missing job events: %v", counts)
	}
}

// TestClusterSubmitBatchAmortizes pins the batch ingestion path: admissions
// return in argument order with per-task job numbering, and the per-task
// cached fast path resolves synchronously on the second round.
func TestClusterSubmitBatchAmortizes(t *testing.T) {
	cfg := core.Config{AC: core.StrategyPerTask, IR: core.StrategyNone, LB: core.StrategyNone}
	c := startCluster(t, cfg)

	adms, err := c.SubmitBatch([]string{"flow", "alert", "flow"})
	if err != nil {
		t.Fatal(err)
	}
	if len(adms) != 3 {
		t.Fatalf("batch returned %d admissions", len(adms))
	}
	if adms[0].Task != "flow" || adms[0].Job != 0 || adms[2].Job != 1 {
		t.Errorf("batch order/jobs = %+v", adms)
	}
	for _, adm := range adms {
		if adm.Outcome != core.AdmissionPending {
			t.Errorf("first-round outcome = %v, want pending", adm.Outcome)
		}
	}

	// Wait for the per-task decision to come back and be cached, then the
	// fast path resolves synchronously.
	if !settle(t, 2*time.Second, func() bool {
		adm, err := c.Submit("flow")
		return err == nil && adm.Outcome == core.AdmissionAccepted
	}) {
		t.Error("per-task cached decision never resolved a submit synchronously")
	}
	c.Drain(2 * time.Second)
}
