package cluster

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/live"
)

// settle polls until cond holds or the timeout expires.
func settle(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return cond()
}

// TestClusterReconfigureLiveNoJobLoss is the live half of the tentpole pin:
// a running cluster under driver load swaps from the minimal static
// configuration to the fully dynamic one and no admitted job is lost —
// after the drain, every released job has completed and every arrival was
// decided.
func TestClusterReconfigureLiveNoJobLoss(t *testing.T) {
	from := core.Config{AC: core.StrategyPerTask, IR: core.StrategyNone, LB: core.StrategyNone}
	to := core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerJob, LB: core.StrategyPerJob}
	c := startCluster(t, from)

	if err := c.StartDrivers(1.0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(250 * time.Millisecond)

	rep, err := c.Reconfigure(to)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 1 {
		t.Errorf("epoch = %d, want 1", rep.Epoch)
	}
	if rep.From != from || rep.To != to {
		t.Errorf("report configs = %s -> %s", rep.From, rep.To)
	}
	if rep.Quiesce <= 0 {
		t.Errorf("quiesce duration = %v", rep.Quiesce)
	}
	if len(rep.NodeTimings) == 0 {
		t.Error("no per-node swap timings recorded")
	}
	if got := c.Config(); got != to {
		t.Errorf("cluster config = %s, want %s", got, to)
	}

	// The running system keeps operating under the new configuration.
	time.Sleep(300 * time.Millisecond)
	c.StopDrivers()
	if !c.Drain(3 * time.Second) {
		t.Fatal("executors never drained")
	}

	// Zero admitted-job loss: every released job completes once trailing
	// Done events land, and every arrival was decided.
	ok := settle(t, 2*time.Second, func() bool {
		s := c.Snapshot()
		return s.Released == s.Completed && s.Arrived == s.Released+s.Skipped
	})
	s := c.Snapshot()
	if !ok {
		t.Errorf("jobs lost across reconfiguration: arrived %d, released %d, skipped %d, completed %d",
			s.Arrived, s.Released, s.Skipped, s.Completed)
	}
	if s.Arrived == 0 || s.Released == 0 {
		t.Fatalf("workload inert: %+v", s)
	}
	if s.Epoch != 1 {
		t.Errorf("snapshot epoch = %d", s.Epoch)
	}

	// The manager's controller actually swapped and its ledger is sane.
	ac, err := c.AC()
	if err != nil {
		t.Fatal(err)
	}
	if got := ac.Controller().Config(); got != to {
		t.Errorf("AC controller config = %s, want %s", got, to)
	}
	if err := ac.AuditLedger(); err != nil {
		t.Error(err)
	}
	// The plan was folded forward: a second delta reads the new config.
	if acInst := c.Plan.Instances[0]; acInst.Attrs()[live.AttrACStrategy] != "J" {
		t.Errorf("plan not updated: %v", acInst.Attrs()[live.AttrACStrategy])
	}
}

// TestClusterReconfigureInvalidTarget pins that a contradictory target is
// rejected without disturbing the running configuration.
func TestClusterReconfigureInvalidTarget(t *testing.T) {
	from := core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerJob, LB: core.StrategyNone}
	c := startCluster(t, from)
	bad := core.Config{AC: core.StrategyPerTask, IR: core.StrategyPerJob, LB: core.StrategyNone}
	if _, err := c.Reconfigure(bad); err == nil {
		t.Fatal("contradictory target accepted")
	}
	if got := c.Config(); got != from {
		t.Errorf("config disturbed: %s", got)
	}
	ac, err := c.AC()
	if err != nil {
		t.Fatal(err)
	}
	if got := ac.Controller().Config(); got != from {
		t.Errorf("controller disturbed: %s", got)
	}
	if ac.Quiesced() {
		t.Error("AC left quiesced after rejected target")
	}
	// Still operational: drive briefly and see completions.
	if err := c.StartDrivers(1.0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	c.StopDrivers()
	c.Drain(2 * time.Second)
	if !settle(t, 2*time.Second, func() bool { return c.Collector().Completed() > 0 }) {
		t.Error("no completions after rejected reconfiguration")
	}
}

// TestClusterReconfigureEnablesIdleResetting pins the route delta: moving
// from IR-none to IR-per-job wires the IdleReset federation routes on the
// fly, so reset reports start reaching the manager.
func TestClusterReconfigureEnablesIdleResetting(t *testing.T) {
	c := startCluster(t, core.Config{AC: core.StrategyPerJob, IR: core.StrategyNone, LB: core.StrategyNone})
	if _, err := c.Reconfigure(core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerJob, LB: core.StrategyNone}); err != nil {
		t.Fatal(err)
	}
	if err := c.StartDrivers(1.0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	c.StopDrivers()
	c.Drain(2 * time.Second)
	ac, err := c.AC()
	if err != nil {
		t.Fatal(err)
	}
	if !settle(t, 2*time.Second, func() bool { return ac.ResetsApplied() > 0 }) {
		t.Error("no idle resets reached the manager after enabling IR live")
	}
}

// TestClusterSubmitAndSnapshot pins the unified Binding surface on the
// live cluster.
func TestClusterSubmitAndSnapshot(t *testing.T) {
	c := startCluster(t, core.Config{AC: core.StrategyPerJob, IR: core.StrategyNone, LB: core.StrategyNone})
	adm, err := c.Submit("alert")
	if err != nil {
		t.Fatal(err)
	}
	if adm.Job != 0 || adm.Task != "alert" {
		t.Errorf("first admission = %+v", adm)
	}
	if adm.Outcome != core.AdmissionPending {
		t.Errorf("per-job AC submission outcome = %v, want pending", adm.Outcome)
	}
	if _, err := c.Submit("ghost"); !errors.Is(err, core.ErrUnknownTask) {
		t.Errorf("unknown task error = %v, want ErrUnknownTask", err)
	}
	if !settle(t, 2*time.Second, func() bool {
		s := c.Snapshot()
		return s.Arrived == 1 && s.Completed == 1
	}) {
		t.Errorf("submitted job never completed: %+v", c.Snapshot())
	}
	if s := c.Snapshot(); s.Config.AC != core.StrategyPerJob || s.Epoch != 0 {
		t.Errorf("snapshot = %+v", s)
	}
}

// TestClusterReconfigureConcurrentQuiesceRefused pins the ErrQuiesced
// sentinel: a second quiesce while one is open is refused at the AC.
func TestClusterReconfigureConcurrentQuiesceRefused(t *testing.T) {
	c := startCluster(t, core.Config{AC: core.StrategyPerJob, IR: core.StrategyNone, LB: core.StrategyNone})
	ac, err := c.AC()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ac.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if _, err := ac.Quiesce(); !errors.Is(err, live.ErrQuiesced) {
		t.Errorf("second quiesce error = %v, want ErrQuiesced", err)
	}
	// Reconfigure without quiesce → ErrNotQuiesced after resume.
	if _, err := ac.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := ac.Reconfigure(map[string]string{}); !errors.Is(err, live.ErrNotQuiesced) {
		t.Errorf("unquiesced reconfigure error = %v, want ErrNotQuiesced", err)
	}
}
