// Node-loss survival: heartbeat failure detection, chaos hooks, and the
// zero-loss failover transaction.
//
// The failure plane has three parts. A detector on the task manager watches
// the per-node heartbeat beacons (EvHeartbeat over the federated event
// plane) and declares a node dead after a silence timeout. A dead-letter
// tracker tails every application node's locally pushed Release/Trigger/Done
// events, so at any instant it knows each in-flight job's placement and the
// stage it is on — the redelivery source of truth. Failover itself is one
// reconfiguration transaction through the same quiesce→delta→resume
// machinery strategy swaps use: the configuration engine synthesizes a
// processor-removal delta (dead stages re-home onto surviving replicas), the
// launcher executes it skipping the dead node, the warm-standby admission
// mirror is fenced at the new epoch, and every job stranded on the dead
// processor is re-pushed onto the survivors with a remapped placement.
// Submissions arriving mid-failover are deferred and replayed, like a
// quiesce defers arrivals.
package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"repro/internal/configengine"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/eventchan"
	"repro/internal/live"
	"repro/internal/sched"
)

// DefaultHeartbeatTimeout is the heartbeat silence span after which the
// detector declares a node dead. At the default beacon period (25ms) it
// tolerates well over a dozen consecutive losses, so scheduling noise on a
// loaded test machine does not trigger false positives.
const DefaultHeartbeatTimeout = 500 * time.Millisecond

// redeliverySource marks events re-pushed by the failover plane. The watch
// taps and the dead-letter tracker filter on the pushing node's name, so a
// redelivery never double-counts as a fresh release.
const redeliverySource = "failover"

// encodeEvent gob-encodes a live event payload (the redelivery push path).
func encodeEvent(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// NodeHealth is one node's liveness as seen by the failure detector.
type NodeHealth struct {
	// Node names the application node; Proc is its processor index.
	Node string
	Proc int
	// Alive is false once the node is marked dead (killed, or declared by
	// the detector).
	Alive bool
	// Suspect is true once the detector declared the node silent.
	Suspect bool
	// Beats counts heartbeats received; SinceBeat is the silence span at
	// snapshot time.
	Beats     int64
	SinceBeat time.Duration
}

// detector is the manager-side failure detector: it tails the heartbeat
// stream and declares nodes dead after a silence timeout.
type detector struct {
	c       *Cluster
	timeout time.Duration
	auto    bool

	mu       sync.Mutex
	lastSeen map[string]time.Time
	beats    map[string]int64
	suspect  map[string]bool
	procOf   map[string]int

	stop chan struct{}
	wg   sync.WaitGroup
}

// newDetector builds a detector over the cluster's application nodes. Every
// node starts with a full timeout of grace before its first beat is due.
func newDetector(c *Cluster, timeout time.Duration, auto bool) *detector {
	d := &detector{
		c:        c,
		timeout:  timeout,
		auto:     auto,
		lastSeen: make(map[string]time.Time, len(c.Apps)),
		beats:    make(map[string]int64, len(c.Apps)),
		suspect:  make(map[string]bool, len(c.Apps)),
		procOf:   make(map[string]int, len(c.Apps)),
		stop:     make(chan struct{}),
	}
	now := time.Now()
	for _, app := range c.Apps {
		d.lastSeen[app.Name] = now
		d.procOf[app.Name] = app.Proc
	}
	return d
}

// start subscribes to the heartbeat stream on the manager's channel and
// launches the monitor goroutine.
func (d *detector) start() {
	d.c.Manager.Channel.Subscribe(live.EvHeartbeat, d.onBeat)
	d.wg.Add(1)
	go d.monitor()
}

// halt stops the monitor goroutine.
func (d *detector) halt() {
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
	d.wg.Wait()
}

// onBeat records one heartbeat. Beats from a node already declared dead are
// counted but do not resurrect it — only RecoverNode does.
func (d *detector) onBeat(ev eventchan.Event) {
	var hb live.Heartbeat
	if err := decodeEvent(ev.Payload, &hb); err != nil {
		return
	}
	d.mu.Lock()
	if _, known := d.lastSeen[hb.Node]; known {
		d.beats[hb.Node]++
		if !d.suspect[hb.Node] {
			d.lastSeen[hb.Node] = time.Now()
		}
	}
	d.mu.Unlock()
}

// monitor periodically scans for silent nodes.
func (d *detector) monitor() {
	defer d.wg.Done()
	period := d.timeout / 8
	if period < time.Millisecond {
		period = time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
			d.scan()
		}
	}
}

// scan declares every newly silent node dead.
func (d *detector) scan() {
	now := time.Now()
	type down struct {
		name string
		proc int
	}
	var downs []down
	d.mu.Lock()
	for name, seen := range d.lastSeen {
		if d.suspect[name] || now.Sub(seen) <= d.timeout {
			continue
		}
		d.suspect[name] = true
		downs = append(downs, down{name, d.procOf[name]})
	}
	d.mu.Unlock()
	for _, dn := range downs {
		d.c.nodeDeclaredDown(dn.name, dn.proc, d.auto)
	}
}

// markSuspect latches a node as declared-dead, reporting whether this call
// made the transition. Failover uses it so the NodeDown announcement is
// emitted exactly once whether the detector or a manual Failover ran first.
func (d *detector) markSuspect(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.suspect[name] {
		return false
	}
	d.suspect[name] = true
	return true
}

// revive clears a recovered node's suspicion and restarts its grace period.
func (d *detector) revive(name string) {
	d.mu.Lock()
	d.suspect[name] = false
	d.lastSeen[name] = time.Now()
	d.mu.Unlock()
}

// health snapshots per-node liveness in processor order.
func (d *detector) health() []NodeHealth {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]NodeHealth, 0, len(d.c.Apps))
	for _, app := range d.c.Apps {
		out = append(out, NodeHealth{
			Node:      app.Name,
			Proc:      app.Proc,
			Alive:     !d.c.isDead(app.Proc),
			Suspect:   d.suspect[app.Name],
			Beats:     d.beats[app.Name],
			SinceBeat: now.Sub(d.lastSeen[app.Name]),
		})
	}
	return out
}

// nodeDeclaredDown is the detector's declaration callback: announce on the
// watch stream and, under AutoFailover, run the failover transaction.
func (c *Cluster) nodeDeclaredDown(name string, proc int, auto bool) {
	c.emit(core.WatchEvent{Kind: core.WatchNodeDown, Task: name, Job: -1, Config: c.configSnapshot()})
	if !auto {
		return
	}
	c.failMu.Lock()
	if c.deadProcs == nil {
		c.deadProcs = make(map[int]bool)
	}
	c.deadProcs[proc] = true
	c.failMu.Unlock()
	go func() {
		_, _ = c.Failover(proc)
	}()
}

// Health reports per-node heartbeat status from the failure detector.
func (c *Cluster) Health() []NodeHealth {
	if c.detector == nil {
		return nil
	}
	return c.detector.health()
}

// trackedJob is one in-flight job's position: the placement it is executing
// under and the stage it is on (or about to enter).
type trackedJob struct {
	placement    []sched.PlacedStage
	arrivalNanos int64
	nextStage    int
	// redelivered latches once the failover plane re-pushed this job, so
	// the at-failover scan and the stranded-trigger path cannot both fire.
	// A genuine later hop (pushed by a live node) clears it.
	redelivered bool
}

// tracker is the dead-letter plane: it tails every application node's local
// Release/Trigger/Done pushes so that, at failover time, the set of jobs
// stranded on the dead processor — and the exact stage to resume each from —
// is known without any node's cooperation.
type tracker struct {
	c *Cluster

	mu   sync.Mutex
	jobs map[sched.JobRef]*trackedJob
	// active marks processors whose failover completed: a trigger bound for
	// one is stranded (its executor is gone) and redelivers immediately.
	active map[int]bool

	redelivered int64
	lost        int64
}

// newTracker builds an empty tracker.
func newTracker(c *Cluster) *tracker {
	return &tracker{
		c:      c,
		jobs:   make(map[sched.JobRef]*trackedJob),
		active: make(map[int]bool),
	}
}

// attach subscribes the tracker to one application node's channel. Only
// locally pushed events are tracked (ev.Source == node): the federated copy
// of a release or trigger carries the origin's name and is skipped, so each
// hop is recorded exactly once.
func (tr *tracker) attach(app *live.Node) {
	hop := tr.hopHandler(app.Name)
	app.Channel.Subscribe(live.EvRelease, hop)
	app.Channel.Subscribe(live.EvTrigger, hop)
	app.Channel.Subscribe(live.EvDone, tr.doneHandler(app.Name))
}

// hopHandler records a job entering a stage. If the stage's processor has
// already been failed over, the trigger is a dead letter — the executor that
// would run it is gone — and the job redelivers onto the survivors at once.
func (tr *tracker) hopHandler(node string) eventchan.Handler {
	return func(ev eventchan.Event) {
		if ev.Source != node {
			return
		}
		var trg live.Trigger
		if err := decodeEvent(ev.Payload, &trg); err != nil {
			return
		}
		if trg.Stage < 0 || trg.Stage >= len(trg.Placement) {
			return
		}
		ref := sched.JobRef{Task: trg.Task, Job: trg.Job}
		var stranded *live.Trigger
		tr.mu.Lock()
		j := tr.jobs[ref]
		if j == nil {
			j = &trackedJob{}
			tr.jobs[ref] = j
		}
		j.placement = trg.Placement
		j.arrivalNanos = trg.ArrivalNanos
		j.nextStage = trg.Stage
		j.redelivered = false
		if tr.active[trg.Placement[trg.Stage].Proc] {
			j.redelivered = true
			t := trg
			stranded = &t
		}
		tr.mu.Unlock()
		if stranded != nil {
			// Redeliver off the pusher's goroutine: the push into the
			// survivor's channel may block on its gateway.
			go tr.c.redeliver(*stranded)
		}
	}
}

// doneHandler retires a completed job.
func (tr *tracker) doneHandler(node string) eventchan.Handler {
	return func(ev eventchan.Event) {
		if ev.Source != node {
			return
		}
		var done live.Done
		if err := decodeEvent(ev.Payload, &done); err != nil {
			return
		}
		tr.mu.Lock()
		delete(tr.jobs, sched.JobRef{Task: done.Task, Job: done.Job})
		tr.mu.Unlock()
	}
}

// activate marks a processor's failover complete and collects every job
// currently stranded on it (its next stage was placed there). The collected
// jobs are latched as redelivered under the same lock that makes future
// stranded triggers redeliver, so no job can fall between the scan and the
// live path.
func (tr *tracker) activate(proc int) []live.Trigger {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.active[proc] = true
	var out []live.Trigger
	for ref, j := range tr.jobs {
		if j.redelivered || j.nextStage >= len(j.placement) {
			continue
		}
		if !tr.active[j.placement[j.nextStage].Proc] {
			continue
		}
		j.redelivered = true
		out = append(out, live.Trigger{
			Task: ref.Task, Job: ref.Job, Stage: j.nextStage,
			Placement: j.placement, ArrivalNanos: j.arrivalNanos,
		})
	}
	return out
}

// deactivate clears a processor from the stranded set once its node
// recovered — placements may legitimately target it again.
func (tr *tracker) deactivate(proc int) {
	tr.mu.Lock()
	delete(tr.active, proc)
	tr.mu.Unlock()
}

// stats snapshots the redelivery counters.
func (tr *tracker) stats() (redelivered, lost int64) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.redelivered, tr.lost
}

// count records one redelivery outcome.
func (tr *tracker) count(ok bool) {
	tr.mu.Lock()
	if ok {
		tr.redelivered++
	} else {
		tr.lost++
	}
	tr.mu.Unlock()
}

// RedeliveryStats reports how many stranded jobs the failover plane re-pushed
// onto survivors, and how many had no surviving route (their task was
// withdrawn by the failover).
func (c *Cluster) RedeliveryStats() (redelivered, lost int64) {
	if c.tracker == nil {
		return 0, 0
	}
	return c.tracker.stats()
}

// redeliver re-pushes one stranded job onto the survivors: stages still
// placed on dead processors are remapped to their post-failover homes, and
// the release (stage 0) or trigger (later stages) is pushed into the new
// stage-host's channel. The push carries a synthetic source so the watch
// taps and the tracker do not count it as a fresh hop; the subtask
// components route purely on the payload placement, so exactly one survivor
// executes it. Returns false if the job's task did not survive the failover.
func (c *Cluster) redeliver(trg live.Trigger) bool {
	ok := c.redeliverLocked(trg)
	if c.tracker != nil {
		c.tracker.count(ok)
	}
	return ok
}

// redeliverLocked is redeliver without the outcome accounting.
func (c *Cluster) redeliverLocked(trg live.Trigger) bool {
	var task *sched.Task
	for _, t := range c.Tasks() {
		if t.ID == trg.Task {
			task = t
			break
		}
	}
	if task == nil || len(task.Subtasks) < len(trg.Placement) {
		// Withdrawn by the failover: no surviving replica for some stage.
		return false
	}
	pl := make([]sched.PlacedStage, len(trg.Placement))
	copy(pl, trg.Placement)
	for s := trg.Stage; s < len(pl); s++ {
		if c.isDead(pl[s].Proc) {
			pl[s].Proc = task.Subtasks[s].Processor
		}
	}
	target := pl[trg.Stage].Proc
	if target < 0 || target >= len(c.Apps) || c.isDead(target) {
		return false
	}
	trg.Placement = pl
	evType := live.EvTrigger
	if trg.Stage == 0 {
		evType = live.EvRelease
	}
	payload, err := encodeEvent(trg)
	if err != nil {
		return false
	}
	err = c.Apps[target].Channel.Push(eventchan.Event{
		Type: evType, Source: redeliverySource, Payload: payload,
	})
	return err == nil
}

// isDead reports whether a processor's node is currently down.
func (c *Cluster) isDead(proc int) bool {
	c.failMu.Lock()
	defer c.failMu.Unlock()
	return c.deadProcs[proc]
}

// KillNode is the chaos hook: it hard-stops application node i — container,
// executor and transport — exactly as a crash would, halts its arrival
// generator, and prunes the survivors' gateway routes to the dead address so
// they stop dialing it. Detection, announcement and failover are left to the
// failure detector (or an explicit Failover call): the kill itself is
// silent, as a real crash is.
func (c *Cluster) KillNode(i int) error {
	if i < 0 || i >= len(c.Apps) {
		return fmt.Errorf("cluster: kill node: no processor %d", i)
	}
	c.failMu.Lock()
	if c.deadProcs == nil {
		c.deadProcs = make(map[int]bool)
	}
	if c.deadProcs[i] {
		c.failMu.Unlock()
		return fmt.Errorf("cluster: kill node: processor %d: %w", i, live.ErrNodeDown)
	}
	c.deadProcs[i] = true
	c.failMu.Unlock()
	app := c.Apps[i]
	_ = app.Close()
	if i < len(c.drivers) && c.drivers[i] != nil {
		c.drivers[i].Stop()
	}
	c.pruneSinks(app.Addr)
	return nil
}

// pruneSinks removes every surviving gateway's route to a dead address.
func (c *Cluster) pruneSinks(addr string) {
	if c.Manager != nil {
		c.Manager.Channel.RemoveRemoteSink(addr)
	}
	for j, app := range c.Apps {
		if c.isDead(j) {
			continue
		}
		app.Channel.RemoveRemoteSink(addr)
	}
}

// RecoverNode replaces a dead application node with a fresh one (same name
// and processor slot, new address) and redeploys its slice of the running
// plan — which Delta.Apply kept truthful across reconfigurations and
// failovers, so the recovered node comes back with the post-failover
// component state, not the pre-crash one. The node rejoins as standby
// capacity: tasks re-homed away by a failover stay where they are, and its
// replica slots make it a failover target again. Emits WatchNodeRecovered.
func (c *Cluster) RecoverNode(i int) error {
	c.cfgMu.Lock()
	defer c.cfgMu.Unlock()
	if c.stopped {
		return fmt.Errorf("cluster: recover node: %w", core.ErrStopped)
	}
	if i < 0 || i >= len(c.Apps) {
		return fmt.Errorf("cluster: recover node: no processor %d", i)
	}
	c.failMu.Lock()
	dead := c.deadProcs[i]
	busy := c.failoverActive
	c.failMu.Unlock()
	if busy {
		return fmt.Errorf("cluster: recover node: %w", live.ErrFailoverInProgress)
	}
	if !dead {
		return fmt.Errorf("cluster: recover node: processor %d is not down", i)
	}

	old := c.Apps[i]
	// Bank the dead effector's counters: the replacement starts at zero and
	// the binding's counters must stay monotonic across the swap.
	if te, err := c.TE(i); err == nil {
		s := te.StatsSnapshot()
		c.failMu.Lock()
		if c.lostStats == nil {
			c.lostStats = make(map[int]live.TEStats)
		}
		prev := c.lostStats[i]
		prev.Arrived += s.Arrived
		prev.Released += s.Released
		prev.Skipped += s.Skipped
		prev.Relocated += s.Relocated
		prev.Overloaded += s.Overloaded
		c.lostStats[i] = prev
		c.failMu.Unlock()
	}

	node, err := live.NewNode(old.Name, i, "127.0.0.1:0", c.execScale, c.nodeOpts...)
	if err != nil {
		return err
	}
	deploy.NewNodeManager(node.ORB, c.registry, node.Container, node.Channel)
	for j := range c.Plan.Nodes {
		if c.Plan.Nodes[j].Name == old.Name {
			c.Plan.Nodes[j].Address = node.Addr
		}
	}
	c.Apps[i] = node
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := deploy.NewLauncher(c.launcher).RedeployNode(ctx, c.Plan, old.Name); err != nil {
		// The slot stays marked dead; a retry can replace the node again.
		_ = node.Close()
		c.Apps[i] = old
		for j := range c.Plan.Nodes {
			if c.Plan.Nodes[j].Name == old.Name {
				c.Plan.Nodes[j].Address = old.Addr
			}
		}
		return err
	}

	// Re-attach the observation planes to the replacement channel.
	if c.collector != nil {
		c.collector.Attach(node.Channel)
	}
	node.Channel.Subscribe(live.EvRelease, c.tapRelease(node.Name))
	node.Channel.Subscribe(live.EvDone, c.tapDone(node.Name))
	if c.tracker != nil {
		c.tracker.attach(node)
		c.tracker.deactivate(i)
	}

	c.failMu.Lock()
	delete(c.deadProcs, i)
	delete(c.failedOver, i)
	c.failMu.Unlock()
	if c.detector != nil {
		c.detector.revive(node.Name)
	}
	c.emit(core.WatchEvent{Kind: core.WatchNodeRecovered, Task: node.Name, Job: -1, Config: c.configSnapshot()})
	return nil
}

// FailoverReport describes one completed failover transaction.
type FailoverReport struct {
	// Node and Proc identify the failed node.
	Node string
	Proc int
	// Epoch is the post-failover configuration epoch; replication records
	// stamped below it are fenced out of the standby mirror.
	Epoch int64
	// Duration is the whole transaction's wall time (delta synthesis through
	// redelivery); Quiesce is the admission-quiesce span within it.
	Duration time.Duration
	Quiesce  time.Duration
	// Redelivered counts stranded jobs re-pushed onto survivors at failover;
	// Lost counts stranded jobs whose task did not survive (no replica).
	Redelivered int
	Lost        int
	// ReplayedSubmits counts submissions deferred during the failover and
	// replayed after it.
	ReplayedSubmits int
	// Rehomed maps task IDs to the stages that moved off the dead processor
	// (stage → new processor); Withdrawn lists tasks lost with the node.
	Rehomed   map[string]map[int]int
	Withdrawn []string
}

// Failover removes a dead processor from the running deployment with no
// admitted-job loss: the configuration engine synthesizes the
// processor-removal delta (stages homed on the dead processor re-home onto
// surviving replicas, EDMS priorities re-assigned), the launcher executes it
// through the standard quiesce transaction — skipping the dead node — the
// warm-standby admission mirror is fenced at the new epoch so straggling
// pre-failover replication records are recognizably stale, and every job the
// dead-letter tracker shows stranded on the dead processor is redelivered
// onto the survivors. Submissions arriving during the transaction are
// deferred and replayed at the end. The node must already be marked dead
// (KillNode, or the detector's declaration).
func (c *Cluster) Failover(proc int) (*FailoverReport, error) {
	if proc < 0 || proc >= len(c.Apps) {
		return nil, fmt.Errorf("cluster: failover: no processor %d", proc)
	}
	c.failMu.Lock()
	if c.failoverActive {
		c.failMu.Unlock()
		return nil, fmt.Errorf("cluster: failover: %w", live.ErrFailoverInProgress)
	}
	if c.failedOver[proc] {
		c.failMu.Unlock()
		return nil, fmt.Errorf("cluster: failover: processor %d already failed over", proc)
	}
	if !c.deadProcs[proc] {
		c.failMu.Unlock()
		return nil, fmt.Errorf("cluster: failover: processor %d is not down", proc)
	}
	c.failoverActive = true
	c.failMu.Unlock()

	report, err := c.runFailover(proc)

	c.failMu.Lock()
	c.failoverActive = false
	if err == nil {
		if c.failedOver == nil {
			c.failedOver = make(map[int]bool)
		}
		c.failedOver[proc] = true
	}
	replay := c.deferredSubmits
	c.deferredSubmits = nil
	c.failMu.Unlock()

	// Replay the submissions deferred while the failover held admission —
	// against the re-homed task set, exactly as a quiesce replays arrivals.
	for _, id := range replay {
		_, _ = c.Submit(id)
	}
	if report != nil {
		report.ReplayedSubmits = len(replay)
	}
	return report, err
}

// runFailover executes the failover transaction body. The caller has set
// failoverActive, which routes concurrent submissions to the deferral queue.
func (c *Cluster) runFailover(proc int) (*FailoverReport, error) {
	c.cfgMu.Lock()
	defer c.cfgMu.Unlock()
	if c.stopped {
		return nil, fmt.Errorf("cluster: failover: %w", core.ErrStopped)
	}
	start := time.Now()
	name := c.Apps[proc].Name
	// Announce exactly once, whichever of the detector and this transaction
	// gets there first, and before the redelivered jobs' events.
	if c.detector != nil && c.detector.markSuspect(name) {
		c.emit(core.WatchEvent{Kind: core.WatchNodeDown, Task: name, Job: -1, Config: c.configSnapshot()})
	}

	delta, surgery, err := configengine.FailoverDelta(c.Plan, proc)
	if err != nil {
		return nil, err
	}
	outcome, err := c.executeDelta(delta)
	if err != nil {
		return nil, err
	}
	c.epoch.Store(outcome.Epoch)
	if err := c.refreshTasks(); err != nil {
		return nil, err
	}
	// Fence the warm standby: replication records stamped with a
	// pre-failover epoch are decisions from the dead era.
	if sb, err := c.Standby(); err == nil {
		sb.Fence(outcome.Epoch)
	}

	redelivered, lost := 0, 0
	if c.tracker != nil {
		for _, trg := range c.tracker.activate(proc) {
			if c.redeliver(trg) {
				redelivered++
			} else {
				lost++
			}
		}
	}
	return &FailoverReport{
		Node:        name,
		Proc:        proc,
		Epoch:       outcome.Epoch,
		Duration:    time.Since(start),
		Quiesce:     outcome.QuiesceDuration,
		Redelivered: redelivered,
		Lost:        lost,
		Rehomed:     surgery.Rehomed,
		Withdrawn:   surgery.Withdrawn,
	}, nil
}

// Standby returns the warm-standby admission mirror on the manager.
func (c *Cluster) Standby() (*live.StandbyAC, error) {
	comp, ok := c.Manager.Container.Lookup("Standby-AC")
	if !ok {
		return nil, fmt.Errorf("cluster: no Standby-AC on manager")
	}
	sb, ok := comp.(*live.StandbyAC)
	if !ok {
		return nil, fmt.Errorf("cluster: Standby-AC has unexpected type %T", comp)
	}
	return sb, nil
}

// AuditAdmissionState checks the active admission controller's ledger and
// the warm-standby mirror for internal consistency — the post-failover
// zero-loss proof obligation.
func (c *Cluster) AuditAdmissionState() error {
	if ac, err := c.AC(); err == nil {
		if err := ac.AuditLedger(); err != nil {
			return fmt.Errorf("cluster: active ledger: %w", err)
		}
	}
	sb, err := c.Standby()
	if err != nil {
		return nil
	}
	if err := sb.Audit(); err != nil {
		return fmt.Errorf("cluster: standby ledger: %w", err)
	}
	return nil
}
