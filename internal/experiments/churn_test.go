package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// TestChurnSweepSmall runs a compressed churn sweep and pins the open-world
// guarantees the experiment exists to prove: tasks joined and left mid-run,
// no admitted job was lost, and the watch stream stayed ordered.
func TestChurnSweepSmall(t *testing.T) {
	opts := ChurnOptions{Sets: 1, Horizon: 15 * time.Second, Workers: 0}
	results, err := RunChurn(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3 default combos", len(results))
	}
	for _, r := range results {
		if r.TasksAdded == 0 || r.TasksRemoved == 0 {
			t.Errorf("%s set %d: no churn happened: %+v", r.Combo, r.Set, r)
		}
		if r.Lost != 0 {
			t.Errorf("%s set %d: lost %d admitted jobs", r.Combo, r.Set, r.Lost)
		}
		if !r.OrderOK {
			t.Errorf("%s set %d: watch stream out of order", r.Combo, r.Set)
		}
		if r.BatchSubmitted == 0 {
			t.Errorf("%s set %d: no batch submissions", r.Combo, r.Set)
		}
	}
	table := RenderChurn("churn", results)
	if !strings.Contains(table, "T_N_N") || !strings.Contains(table, "J_J_J") {
		t.Errorf("table missing combos:\n%s", table)
	}
	doc, err := RenderChurnJSON(results, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc, `"experiment": "churn"`) || !strings.Contains(doc, `"watch_order_ok": true`) {
		t.Errorf("JSON missing fields:\n%s", doc)
	}
}

// TestChurnLiveSmoke runs the real-transport churn smoke: tenants cycle
// through a live cluster under the quiesce protocol with zero job loss and
// a clean post-run ledger.
func TestChurnLiveSmoke(t *testing.T) {
	res, err := RunChurnLive(ChurnLiveOptions{Settle: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksAdded == 0 || res.TasksRemoved != res.TasksAdded {
		t.Errorf("churn counts: %+v", res)
	}
	if res.Lost != 0 {
		t.Errorf("lost %d admitted jobs", res.Lost)
	}
	if !res.LedgerClean {
		t.Error("ledger audit failed after live churn")
	}
	// One epoch per lifecycle delta: Tenants adds + Tenants removals.
	if res.Epoch != 4 {
		t.Errorf("final epoch = %d, want 4", res.Epoch)
	}
	if res.WatchEvents == 0 {
		t.Error("live watch stream observed nothing")
	}
	doc, err := RenderChurnJSON(nil, res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(doc, `"ledger_clean": true`) {
		t.Errorf("live JSON missing audit:\n%s", doc)
	}
	if res.Config != (core.Config{AC: core.StrategyPerTask, IR: core.StrategyPerTask, LB: core.StrategyPerTask}) {
		t.Errorf("default live config = %s", res.Config)
	}
}
