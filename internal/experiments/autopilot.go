package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
	wspec "repro/internal/spec"
)

// This file is the autopilot experiment: for each regime-change scenario it
// runs every static AC_IR_LB combination as a baseline, then the same
// scenario with the closed-loop controller enabled, and compares
// deadline-miss rates. The claim under test is the tentpole's: a controller
// that observes the traffic and switches configs at regime boundaries beats
// every static choice, because the scenarios are built so that no single
// configuration is right for both regimes — the calm phase has a
// tight-deadline task whose slack is smaller than the decision round trip
// (so per-job admission misses every job and only the cached per-task path
// meets deadlines), while the burst phase overdrives a second task past the
// admission bound (so per-task's cached accept floods the processor and
// only per-job shedding keeps misses down).

// AutopilotOptions parameterizes the experiment.
type AutopilotOptions struct {
	// Scenarios filters the built-in scenario list by name; empty runs all.
	Scenarios []string
	// Workers bounds the static-sweep parallelism (below 1: one per CPU).
	Workers int
	// Live additionally runs the controller on the live loopback cluster
	// for scenarios that define a live leg.
	Live bool
	// TimeScale overrides the live compression factor (zero: spec default).
	TimeScale float64
}

// AutopilotRun is one scenario execution's slim outcome row.
type AutopilotRun struct {
	// Combo is the static AC_IR_LB tuple, or "autopilot" for controller runs.
	Combo   string `json:"combo"`
	Binding string `json:"binding"`
	Arrived int64  `json:"arrived"`
	// Completed, Missed and Lost are the run totals after the drain.
	Completed int64 `json:"completed"`
	Missed    int64 `json:"missed"`
	Lost      int64 `json:"lost"`
	// MissRate is the deadline-miss fraction over completed jobs.
	MissRate float64 `json:"miss_rate"`
	// Actuations counts the controller's Reconfigure calls (zero on static
	// runs); RegimeChanges its classified transitions.
	Actuations    int64 `json:"actuations,omitempty"`
	RegimeChanges int64 `json:"regime_changes,omitempty"`
	// LedgerClean is the post-run admission-ledger audit.
	LedgerClean bool `json:"ledger_clean"`
	// Passed is the spec invariant verdict; Violations the failures.
	Passed     bool     `json:"passed"`
	Violations []string `json:"violations,omitempty"`
}

// AutopilotScenarioReport is one scenario's static-versus-controller
// comparison.
type AutopilotScenarioReport struct {
	// Scenario names the spec; Description documents its regime structure.
	Scenario    string `json:"scenario"`
	Description string `json:"description,omitempty"`
	// Static holds the 15 static-combination baseline rows (sim binding).
	Static []AutopilotRun `json:"static"`
	// Autopilot holds the controller rows: sim, plus live when requested.
	Autopilot []AutopilotRun `json:"autopilot"`
	// BestStatic is the lowest-miss-rate static combo and its rate.
	BestStatic     string  `json:"best_static"`
	BestStaticMiss float64 `json:"best_static_miss_rate"`
	// AutopilotMiss is the controller's sim miss rate.
	AutopilotMiss float64 `json:"autopilot_miss_rate"`
	// Beaten reports whether the controller's miss rate is strictly lower
	// than every static combination's.
	Beaten bool `json:"beaten"`
}

// AutopilotReport is the experiment outcome across scenarios.
type AutopilotReport struct {
	Scenarios []*AutopilotScenarioReport `json:"scenarios"`
}

// AutopilotPassed is the experiment's acceptance verdict: the controller
// beats every static combination on at least two scenarios, and every
// controller run (both bindings) satisfied its invariant block — zero
// admitted-job loss, clean ledger audit, bounded actuations.
func AutopilotPassed(rep *AutopilotReport) bool {
	if rep == nil || len(rep.Scenarios) == 0 {
		return false
	}
	beaten := 0
	for _, sc := range rep.Scenarios {
		if sc.Beaten {
			beaten++
		}
		for _, r := range sc.Autopilot {
			if !r.Passed {
				return false
			}
		}
		if len(sc.Autopilot) == 0 {
			return false
		}
	}
	return beaten >= 2
}

// autopilotScenario is one built-in regime-change scenario definition. The
// shared workload puts the tight task (period 10ms, deadline 1.75ms, exec
// 1ms, processor 0; utilization 0.571, under the single-task AUB ceiling
// 2−√2) on its natural arrivals and drives the flood task (period 50ms,
// deadline 40ms, exec 5ms, processor 1) with the scenario's shape, whose
// peak pushes processor 1 far past the admission bound.
type autopilotScenario struct {
	name        string
	description string
	shape       scenario.ShapeSpec
	// maxActs / liveMaxActs bound the controller's actuations per binding.
	maxActs     int64
	liveMaxActs int64
	// disableMMPPFit turns off the per-task burst-ratio estimator: slow
	// ramps (the diurnal tide) trip a ratio fit early and latch it, so that
	// scenario relies on the absolute aggregate-rate thresholds instead.
	disableMMPPFit bool
	// live marks the scenario as having a wall-clock leg.
	live bool
}

// autopilotScenarios is the built-in scenario list.
func autopilotScenarios() []autopilotScenario {
	return []autopilotScenario{
		{
			name:        "autopilot-mmpp-burst",
			description: "calm Poisson floor with MMPP bursts to 240/s on the flood task",
			shape: scenario.ShapeSpec{
				Kind: "mmpp", Rate: 20, Peak: 240,
				DwellBase:  wspec.Duration(8 * time.Second),
				DwellBurst: wspec.Duration(3 * time.Second),
			},
			maxActs: 10, liveMaxActs: 14,
		},
		{
			name:        "autopilot-flash-crowd",
			description: "one flash crowd: ramp to 240/s at 12s, hold 6s, ramp down",
			shape: scenario.ShapeSpec{
				Kind: "flashcrowd", Rate: 20, Peak: 240,
				At:   wspec.Duration(12 * time.Second),
				Ramp: wspec.Duration(1 * time.Second),
				Hold: wspec.Duration(6 * time.Second),
			},
			maxActs: 6, liveMaxActs: 12, live: true,
		},
		{
			name:        "autopilot-diurnal-tide",
			description: "sinusoidal tide from trough 10/s to peak 260/s over one 30s period",
			shape: scenario.ShapeSpec{
				Kind: "diurnal", Rate: 10, Peak: 260,
				Period: wspec.Duration(30 * time.Second),
			},
			maxActs: 8, liveMaxActs: 12, disableMMPPFit: true,
		},
	}
}

// autopilotWorkload is the shared two-processor discriminator task set.
func autopilotWorkload() *wspec.Workload {
	return &wspec.Workload{
		Name:       "autopilot-regime",
		Processors: 2,
		Tasks: []wspec.TaskSpec{
			{
				ID: "tight", Kind: "periodic",
				Period:   wspec.Duration(10 * time.Millisecond),
				Deadline: wspec.Duration(1750 * time.Microsecond),
				Subtasks: []wspec.SubtaskSpec{{Exec: wspec.Duration(time.Millisecond), Processor: 0}},
			},
			{
				ID: "flood", Kind: "periodic",
				Period:   wspec.Duration(50 * time.Millisecond),
				Deadline: wspec.Duration(40 * time.Millisecond),
				Subtasks: []wspec.SubtaskSpec{{Exec: wspec.Duration(5 * time.Millisecond), Processor: 1}},
			},
		},
	}
}

// autopilotHorizon is the scenario length.
const autopilotHorizon = 30 * time.Second

// spec materializes the scenario for one starting config, with or without
// the controller block, and validates it end to end.
func (sc autopilotScenario) spec(config string, pilot bool) (*scenario.Spec, error) {
	s := &scenario.Spec{
		Name:        sc.name,
		Description: sc.description,
		Config:      config,
		Horizon:     wspec.Duration(autopilotHorizon),
		Seed:        42,
		Workload:    scenario.WorkloadRef{Inline: autopilotWorkload()},
		Arrivals: []scenario.ArrivalBlock{
			{Tasks: []string{"flood"}, Shape: sc.shape},
		},
		// The static baseline asserts only sanity (the ledger stays
		// consistent and the workload actually ran); miss rates are the
		// measurement, not an invariant.
		Invariants: &scenario.Invariants{LedgerAudit: true, MinArrived: 2000},
	}
	if pilot {
		maxActs := sc.maxActs
		liveMaxActs := sc.liveMaxActs
		// The tight task's 175µs scaled deadline is unachievable on the
		// wall clock, so the live leg only asserts the run held together.
		liveMiss := 0.99
		s.Invariants.ZeroAdmittedLoss = true
		s.Invariants.MaxActuations = &maxActs
		s.Invariants.Live = &scenario.InvariantOverrides{
			MaxMissRate:   &liveMiss,
			MaxActuations: &liveMaxActs,
		}
		burstEnter, burstExit := 3.0, 1.5
		if sc.disableMMPPFit {
			burstEnter, burstExit = 1000, 999
		}
		s.Autopilot = &scenario.AutopilotSpec{
			Enabled:  true,
			Tick:     wspec.Duration(100 * time.Millisecond),
			Window:   wspec.Duration(500 * time.Millisecond),
			Dwell:    wspec.Duration(250 * time.Millisecond),
			Cooldown: wspec.Duration(500 * time.Millisecond),
			Calm:     "T_T_N",
			Burst:    "J_J_N",
			Overload: "J_J_N",
			// The aggregate floor is tight's 100/s plus flood's 20/s base;
			// the band [160, 250] sits well clear of both the floor and the
			// ~±22/s window noise, and the 340/s burst aggregate.
			RateHigh:   250,
			RateLow:    160,
			BurstEnter: burstEnter,
			BurstExit:  burstExit,
			// MissHigh above 1 disables miss-triggered overload: the tight
			// task misses continuously under per-job admission, so a
			// miss-rate trigger would latch the overload regime forever.
			MissHigh:   2,
			RejectHigh: 0.6,
		}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: autopilot scenario %q: %w", sc.name, err)
	}
	return s, nil
}

// run converts a scenario result to the slim row form.
func autopilotRow(combo string, res *scenario.Result) AutopilotRun {
	return AutopilotRun{
		Combo:         combo,
		Binding:       res.Binding,
		Arrived:       res.Arrived,
		Completed:     res.Completed,
		Missed:        res.Missed,
		Lost:          res.Lost,
		MissRate:      res.MissRate,
		Actuations:    res.Actuations,
		RegimeChanges: res.RegimeChanges,
		LedgerClean:   res.LedgerClean,
		Passed:        res.Passed,
		Violations:    res.Violations,
	}
}

// RunAutopilot executes the experiment: per scenario, the 15-combination
// static sweep (sim), then the controller run (sim, plus live when asked).
func RunAutopilot(opts AutopilotOptions) (*AutopilotReport, error) {
	scenarios := autopilotScenarios()
	if len(opts.Scenarios) > 0 {
		want := make(map[string]bool, len(opts.Scenarios))
		for _, n := range opts.Scenarios {
			want[n] = true
		}
		kept := scenarios[:0]
		for _, sc := range scenarios {
			if want[sc.name] {
				kept = append(kept, sc)
				delete(want, sc.name)
			}
		}
		if len(want) > 0 {
			for n := range want {
				return nil, fmt.Errorf("experiments: autopilot: unknown scenario %q", n)
			}
		}
		scenarios = kept
	}
	workers := ResolveWorkers(opts.Workers)
	combos := core.AllCombinations()

	rep := &AutopilotReport{}
	for _, sc := range scenarios {
		sr := &AutopilotScenarioReport{
			Scenario:    sc.name,
			Description: sc.description,
			Static:      make([]AutopilotRun, len(combos)),
		}

		// Static baseline: every combination starts — and stays — at its
		// config for the whole scenario.
		err := runTrials(len(combos), workers, func(i int) error {
			spec, err := sc.spec(combos[i].String(), false)
			if err != nil {
				return err
			}
			res, err := scenario.RunSim(spec, nil)
			if err != nil {
				return fmt.Errorf("experiments: autopilot %s static %s: %w", sc.name, combos[i], err)
			}
			sr.Static[i] = autopilotRow(combos[i].String(), res)
			return nil
		})
		if err != nil {
			return nil, err
		}

		// Controller run: starts at the calm config; the autopilot moves it.
		pilotSpec, err := sc.spec("T_T_N", true)
		if err != nil {
			return nil, err
		}
		simRes, err := scenario.RunSim(pilotSpec, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: autopilot %s: %w", sc.name, err)
		}
		sr.Autopilot = append(sr.Autopilot, autopilotRow("autopilot", simRes))
		sr.AutopilotMiss = simRes.MissRate

		if opts.Live && sc.live {
			liveRes, err := scenario.RunLive(pilotSpec, opts.TimeScale, nil)
			if err != nil {
				return nil, fmt.Errorf("experiments: autopilot %s live: %w", sc.name, err)
			}
			sr.Autopilot = append(sr.Autopilot, autopilotRow("autopilot", liveRes))
		}

		sr.Beaten = true
		for i, row := range sr.Static {
			if i == 0 || row.MissRate < sr.BestStaticMiss {
				sr.BestStatic, sr.BestStaticMiss = row.Combo, row.MissRate
			}
			if sr.AutopilotMiss >= row.MissRate {
				sr.Beaten = false
			}
		}
		rep.Scenarios = append(rep.Scenarios, sr)
	}
	return rep, nil
}

// RenderAutopilot formats the report as per-scenario tables plus the
// acceptance verdict.
func RenderAutopilot(rep *AutopilotReport) string {
	var b strings.Builder
	for _, sc := range rep.Scenarios {
		fmt.Fprintf(&b, "Scenario %q (horizon %v)\n", sc.Scenario, autopilotHorizon)
		if sc.Description != "" {
			fmt.Fprintf(&b, "  %s\n", sc.Description)
		}
		fmt.Fprintf(&b, "%-10s %-5s %8s %9s %7s %5s %9s %5s %7s %8s\n",
			"combo", "bind", "arrived", "completed", "missed", "lost", "missrate", "acts", "ledger", "verdict")
		rows := make([]AutopilotRun, 0, len(sc.Static)+len(sc.Autopilot))
		rows = append(rows, sc.Static...)
		rows = append(rows, sc.Autopilot...)
		for _, r := range rows {
			ledger := "clean"
			if !r.LedgerClean {
				ledger = "BAD"
			}
			verdict := "PASS"
			if !r.Passed {
				verdict = "FAIL"
			}
			fmt.Fprintf(&b, "%-10s %-5s %8d %9d %7d %5d %9.4f %5d %7s %8s\n",
				r.Combo, r.Binding, r.Arrived, r.Completed, r.Missed, r.Lost,
				r.MissRate, r.Actuations, ledger, verdict)
			for _, v := range r.Violations {
				fmt.Fprintf(&b, "           violation: %s\n", v)
			}
		}
		outcome := "does NOT beat"
		if sc.Beaten {
			outcome = "beats"
		}
		fmt.Fprintf(&b, "autopilot %.4f %s best static %s at %.4f\n\n",
			sc.AutopilotMiss, outcome, sc.BestStatic, sc.BestStaticMiss)
	}
	verdict := "FAIL"
	if AutopilotPassed(rep) {
		verdict = "PASS"
	}
	fmt.Fprintf(&b, "autopilot acceptance: %s (controller must beat every static combo on >= 2 scenarios with clean invariants)\n", verdict)
	return b.String()
}

// RenderAutopilotJSON emits the report as an indented JSON document.
func RenderAutopilotJSON(rep *AutopilotReport) (string, error) {
	doc := struct {
		Experiment string                     `json:"experiment"`
		Passed     bool                       `json:"passed"`
		Scenarios  []*AutopilotScenarioReport `json:"scenarios"`
	}{
		Experiment: "autopilot",
		Passed:     AutopilotPassed(rep),
		Scenarios:  rep.Scenarios,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("experiments: encode autopilot: %w", err)
	}
	return string(out), nil
}
