package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/spec"
)

// FailoverOptions parameterizes the kill-a-node sweep: each trial starts a
// fresh live cluster, pumps traffic, abruptly kills one application node
// with admitted jobs in flight, waits for the heartbeat detector to declare
// it dead, runs the zero-loss failover, recovers the node, and audits the
// admission state. One trial per victim processor by default, so every
// placement geometry (home, replica target, bystander) is exercised.
type FailoverOptions struct {
	// Config is the strategy combination (default T_T_T).
	Config core.Config
	// Victims lists the processors to kill, one trial each (default every
	// processor of the built-in three-processor workload).
	Victims []int
	// Bursts is the number of warm-up submit bursts before the kill and the
	// number after the failover and after the recovery (default 3).
	Bursts int
	// Settle is the pause between bursts (default 50ms).
	Settle time.Duration
	// HeartbeatTimeout is the detector's silence span (default the cluster's
	// DefaultHeartbeatTimeout); the detection-latency column measures it.
	HeartbeatTimeout time.Duration
	// Seed drives the cluster's arrival generators.
	Seed int64
}

func (o FailoverOptions) withDefaults() FailoverOptions {
	if (o.Config == core.Config{}) {
		o.Config = core.Config{AC: core.StrategyPerTask, IR: core.StrategyPerTask, LB: core.StrategyPerTask}
	}
	if len(o.Victims) == 0 {
		o.Victims = []int{0, 1, 2}
	}
	if o.Bursts == 0 {
		o.Bursts = 3
	}
	if o.Settle == 0 {
		o.Settle = 50 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 23
	}
	return o
}

// failoverTasks is the sweep's fixed workload: three processors, every stage
// placed on any processor declares a replica elsewhere, so no single node
// loss can withdraw a task — the failover must preserve everything.
func failoverTasks() []*sched.Task {
	return []*sched.Task{
		{
			ID: "cam", Kind: sched.Aperiodic,
			Deadline: 80 * time.Millisecond, MeanInterarrival: 60 * time.Millisecond,
			Subtasks: []sched.Subtask{
				{Index: 0, Exec: 2 * time.Millisecond, Processor: 0, Replicas: []int{2}},
				{Index: 1, Exec: time.Millisecond, Processor: 1, Replicas: []int{2}},
			},
		},
		{
			ID: "lidar", Kind: sched.Aperiodic,
			Deadline: 60 * time.Millisecond, MeanInterarrival: 50 * time.Millisecond,
			Subtasks: []sched.Subtask{
				{Index: 0, Exec: 2 * time.Millisecond, Processor: 1, Replicas: []int{0}},
			},
		},
		{
			ID: "fuse", Kind: sched.Aperiodic,
			Deadline: 100 * time.Millisecond, MeanInterarrival: 80 * time.Millisecond,
			Subtasks: []sched.Subtask{
				{Index: 0, Exec: 2 * time.Millisecond, Processor: 2, Replicas: []int{0}},
				{Index: 1, Exec: time.Millisecond, Processor: 0, Replicas: []int{1}},
			},
		},
	}
}

// FailoverTrialResult is one kill-a-node trial's outcome.
type FailoverTrialResult struct {
	// Victim is the killed processor; Node its node name.
	Victim int
	Node   string
	// InFlightAtKill is Released − Completed the instant before the kill:
	// the admitted jobs the failover must not lose.
	InFlightAtKill int64
	// Detection is kill → the heartbeat detector's WatchNodeDown
	// declaration; FailoverLatency is the failover transaction's duration
	// (Quiesce the admission-quiesce span within it); TotalOutage is kill →
	// failover complete, the span a task homed on the victim had no home.
	Detection       time.Duration
	FailoverLatency time.Duration
	Quiesce         time.Duration
	TotalOutage     time.Duration
	// Redelivered counts stranded jobs re-pushed onto survivors;
	// RedeliveryLost counts stranded jobs with no surviving replica (zero
	// here by construction); ReplayedSubmits the submissions deferred during
	// the transaction.
	Redelivered     int
	RedeliveryLost  int
	ReplayedSubmits int
	// Rehomed counts the stage moves off the dead processor; Withdrawn the
	// tasks lost with it (zero here by construction).
	Rehomed   int
	Withdrawn int
	// Recovery is the RecoverNode duration (fresh node + redeploy).
	Recovery time.Duration
	// Epoch is the final configuration epoch (the failover bumps it once).
	Epoch int64
	// Arrived through Lost are the run totals after drain and settle; Lost
	// is Released − Completed, the zero-loss verdict.
	Arrived, Released, Skipped, Completed, Lost int64
	// AuditClean reports the post-run admission-state audit (active ledger
	// and warm-standby mirror).
	AuditClean bool
	// NodeDownSeen and NodeRecoveredSeen report the watch stream carried the
	// failure-plane lifecycle events; WatchEvents counts all events.
	NodeDownSeen      bool
	NodeRecoveredSeen bool
	WatchEvents       int64
	// Wall is the trial's wall-clock duration.
	Wall time.Duration
}

// RunFailover executes the kill-a-node sweep, one live cluster per victim.
func RunFailover(opts FailoverOptions) ([]FailoverTrialResult, error) {
	opts = opts.withDefaults()
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	results := make([]FailoverTrialResult, 0, len(opts.Victims))
	for _, victim := range opts.Victims {
		r, err := runFailoverTrial(victim, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: failover victim %d: %w", victim, err)
		}
		results = append(results, r)
	}
	return results, nil
}

func runFailoverTrial(victim int, opts FailoverOptions) (FailoverTrialResult, error) {
	res := FailoverTrialResult{Victim: victim}
	tasks := failoverTasks()
	if victim < 0 || victim >= 3 {
		return res, fmt.Errorf("victim %d outside the workload's 3 processors", victim)
	}
	w := spec.FromTasks("failover", 3, tasks)
	start := time.Now()
	c, err := cluster.Start(cluster.Options{
		Workload: w, Config: opts.Config, Seed: opts.Seed,
		HeartbeatTimeout: opts.HeartbeatTimeout,
	})
	if err != nil {
		return res, err
	}
	defer c.Close()
	res.Node = c.Apps[victim].Name

	watch, err := c.Watch(core.WatchOptions{Buffer: 1 << 14})
	if err != nil {
		return res, err
	}
	var watchEvents atomic.Int64
	downCh := make(chan time.Time, 1)
	var recoveredSeen atomic.Bool
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		for ev := range watch.Events() {
			watchEvents.Add(1)
			switch ev.Kind {
			case core.WatchNodeDown:
				select {
				case downCh <- time.Now():
				default:
				}
			case core.WatchNodeRecovered:
				recoveredSeen.Store(true)
			}
		}
	}()

	// Burst the full task set; repeats put several jobs of each task in
	// flight at once. Submissions the AC rejects still count as arrivals.
	burst := func(repeat int) error {
		ids := make([]string, 0, repeat*len(tasks))
		for i := 0; i < repeat; i++ {
			for _, t := range c.Tasks() {
				ids = append(ids, t.ID)
			}
		}
		_, err := c.SubmitBatch(ids)
		return err
	}
	for i := 0; i < opts.Bursts; i++ {
		if err := burst(2); err != nil {
			return res, err
		}
		time.Sleep(opts.Settle)
	}

	// A final burst with no settle, so the kill lands with jobs mid-chain.
	if err := burst(3); err != nil {
		return res, err
	}
	snap := c.Snapshot()
	res.InFlightAtKill = snap.Released - snap.Completed

	killAt := time.Now()
	if err := c.KillNode(victim); err != nil {
		return res, err
	}
	select {
	case at := <-downCh:
		res.Detection = at.Sub(killAt)
		res.NodeDownSeen = true
	case <-time.After(10 * time.Second):
		return res, fmt.Errorf("heartbeat detector never declared node %d down", victim)
	}
	rep, err := c.Failover(victim)
	if err != nil {
		return res, err
	}
	res.TotalOutage = time.Since(killAt)
	res.FailoverLatency = rep.Duration
	res.Quiesce = rep.Quiesce
	res.Redelivered = rep.Redelivered
	res.RedeliveryLost = rep.Lost
	res.ReplayedSubmits = rep.ReplayedSubmits
	for _, stages := range rep.Rehomed {
		res.Rehomed += len(stages)
	}
	res.Withdrawn = len(rep.Withdrawn)

	// Traffic against the re-homed placement, then recover the node and
	// pump again: the recovered node must serve its old processor.
	for i := 0; i < opts.Bursts; i++ {
		if err := burst(2); err != nil {
			return res, err
		}
		time.Sleep(opts.Settle)
	}
	recoverAt := time.Now()
	if err := c.RecoverNode(victim); err != nil {
		return res, err
	}
	res.Recovery = time.Since(recoverAt)
	for i := 0; i < opts.Bursts; i++ {
		if err := burst(2); err != nil {
			return res, err
		}
		time.Sleep(opts.Settle)
	}

	c.Drain(5 * time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s := c.Snapshot()
		if s.Released == s.Completed {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	final := c.Snapshot()
	res.Arrived, res.Released, res.Skipped, res.Completed =
		final.Arrived, final.Released, final.Skipped, final.Completed
	res.Lost = final.Released - final.Completed
	res.Epoch = final.Epoch
	res.AuditClean = c.AuditAdmissionState() == nil
	watch.Cancel()
	<-watchDone
	res.NodeRecoveredSeen = recoveredSeen.Load()
	res.WatchEvents = watchEvents.Load()
	res.Wall = time.Since(start)
	return res, nil
}

// FailoverPassed reports whether every trial met the sweep's hard
// obligations: zero admitted-job loss, a clean admission-state audit, no
// task withdrawn, and both failure-plane watch events observed.
func FailoverPassed(results []FailoverTrialResult) bool {
	for _, r := range results {
		if r.Lost != 0 || !r.AuditClean || r.RedeliveryLost != 0 || r.Withdrawn != 0 ||
			!r.NodeDownSeen || !r.NodeRecoveredSeen {
			return false
		}
	}
	return len(results) > 0
}

// RenderFailover formats the sweep as a table.
func RenderFailover(title string, results []FailoverTrialResult) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-7s %-9s %9s %9s %9s %9s %6s %7s %8s %9s %6s %6s %6s\n",
		"victim", "inflight", "detect", "failover", "quiesce", "recover",
		"redel", "rehomed", "arrived", "completed", "lost", "audit", "epoch")
	for _, r := range results {
		audit := "clean"
		if !r.AuditClean {
			audit = "DIRTY"
		}
		fmt.Fprintf(&b, "%-7d %-9d %9s %9s %9s %9s %6d %7d %8d %9d %6d %6s %6d\n",
			r.Victim, r.InFlightAtKill,
			r.Detection.Round(time.Millisecond), r.FailoverLatency.Round(time.Millisecond),
			r.Quiesce.Round(time.Millisecond), r.Recovery.Round(time.Millisecond),
			r.Redelivered, r.Rehomed, r.Arrived, r.Completed, r.Lost, audit, r.Epoch)
	}
	return b.String()
}

// failoverJSON is the machine-readable form of one trial.
type failoverJSON struct {
	Victim            int     `json:"victim"`
	Node              string  `json:"node"`
	InFlightAtKill    int64   `json:"in_flight_at_kill"`
	DetectionMS       float64 `json:"detection_ms"`
	FailoverMS        float64 `json:"failover_ms"`
	QuiesceMS         float64 `json:"quiesce_ms"`
	TotalOutageMS     float64 `json:"total_outage_ms"`
	RecoveryMS        float64 `json:"recovery_ms"`
	Redelivered       int     `json:"redelivered"`
	RedeliveryLost    int     `json:"redelivery_lost"`
	ReplayedSubmits   int     `json:"replayed_submits"`
	Rehomed           int     `json:"rehomed_stages"`
	Withdrawn         int     `json:"withdrawn_tasks"`
	Epoch             int64   `json:"epoch"`
	Arrived           int64   `json:"arrived"`
	Released          int64   `json:"released"`
	Skipped           int64   `json:"skipped"`
	Completed         int64   `json:"completed"`
	Lost              int64   `json:"lost"`
	AuditClean        bool    `json:"audit_clean"`
	NodeDownSeen      bool    `json:"node_down_seen"`
	NodeRecoveredSeen bool    `json:"node_recovered_seen"`
	WatchEvents       int64   `json:"watch_events"`
	WallSeconds       float64 `json:"wall_seconds"`
}

// RenderFailoverJSON emits the sweep as an indented JSON document.
func RenderFailoverJSON(results []FailoverTrialResult) (string, error) {
	doc := struct {
		Experiment string         `json:"experiment"`
		Passed     bool           `json:"passed"`
		Results    []failoverJSON `json:"results"`
	}{Experiment: "failover", Passed: FailoverPassed(results)}
	for _, r := range results {
		doc.Results = append(doc.Results, failoverJSON{
			Victim:            r.Victim,
			Node:              r.Node,
			InFlightAtKill:    r.InFlightAtKill,
			DetectionMS:       float64(r.Detection) / float64(time.Millisecond),
			FailoverMS:        float64(r.FailoverLatency) / float64(time.Millisecond),
			QuiesceMS:         float64(r.Quiesce) / float64(time.Millisecond),
			TotalOutageMS:     float64(r.TotalOutage) / float64(time.Millisecond),
			RecoveryMS:        float64(r.Recovery) / float64(time.Millisecond),
			Redelivered:       r.Redelivered,
			RedeliveryLost:    r.RedeliveryLost,
			ReplayedSubmits:   r.ReplayedSubmits,
			Rehomed:           r.Rehomed,
			Withdrawn:         r.Withdrawn,
			Epoch:             r.Epoch,
			Arrived:           r.Arrived,
			Released:          r.Released,
			Skipped:           r.Skipped,
			Completed:         r.Completed,
			Lost:              r.Lost,
			AuditClean:        r.AuditClean,
			NodeDownSeen:      r.NodeDownSeen,
			NodeRecoveredSeen: r.NodeRecoveredSeen,
			WatchEvents:       r.WatchEvents,
			WallSeconds:       r.Wall.Seconds(),
		})
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("experiments: encode failover: %w", err)
	}
	return string(out), nil
}
