package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
	wspec "repro/internal/spec"
)

func miniScenario() *scenario.Spec {
	fig := 0
	return &scenario.Spec{
		Name:     "exp-mini",
		Config:   "T_T_T",
		Horizon:  wspec.Duration(5_000_000_000),
		Seed:     7,
		Workload: scenario.WorkloadRef{Figure5: &fig},
		Arrivals: []scenario.ArrivalBlock{
			{Tasks: []string{"A0"}, Shape: scenario.ShapeSpec{Kind: "constant", Rate: 5}},
		},
		Invariants: &scenario.Invariants{
			ZeroAdmittedLoss: true,
			LedgerAudit:      true,
			WatchOrdering:    true,
		},
	}
}

// RunScenario orchestrates binding selection, recording, and rendering.
func TestRunScenarioSim(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	rep, err := RunScenario(ScenarioOptions{
		Spec:       miniScenario(),
		Bindings:   []string{scenario.BindingSim},
		RecordPath: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() || len(rep.Results) != 1 {
		t.Fatalf("unexpected report: passed=%v results=%d", rep.Passed(), len(rep.Results))
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatalf("journal not written: %v", err)
	}
	if _, err := scenario.DecodeJournal(data); err != nil {
		t.Fatalf("recorded journal invalid: %v", err)
	}

	table := RenderScenario(rep)
	if !strings.Contains(table, "exp-mini") || !strings.Contains(table, "PASS") {
		t.Fatalf("table missing content:\n%s", table)
	}
	doc, err := RenderScenarioJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Experiment string `json:"experiment"`
		Passed     bool   `json:"passed"`
		Results    []struct {
			Binding string `json:"binding"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(doc), &parsed); err != nil {
		t.Fatalf("JSON output invalid: %v", err)
	}
	if parsed.Experiment != "scenario" || !parsed.Passed || len(parsed.Results) != 1 || parsed.Results[0].Binding != "sim" {
		t.Fatalf("JSON document wrong: %+v", parsed)
	}
}

// Orchestration-level misuse is rejected up front.
func TestRunScenarioOptionErrors(t *testing.T) {
	if _, err := RunScenario(ScenarioOptions{}); err == nil {
		t.Error("nil spec accepted")
	}
	if _, err := RunScenario(ScenarioOptions{Spec: miniScenario(), Bindings: []string{"quantum"}}); err == nil {
		t.Error("unknown binding accepted")
	}
	if _, err := RunScenario(ScenarioOptions{Spec: miniScenario(), RecordPath: "x.jsonl"}); err == nil {
		t.Error("recording with two bindings accepted")
	}
}
