package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// ReconfigOptions parameterizes the reconfiguration experiment: random
// Figure 5 workloads run under the From combination, swap to To at SwitchAt
// through the epoch-versioned quiesce protocol, and finish under the new
// configuration. The experiment measures the cost of reconfiguring a loaded
// system: quiesce latency, arrivals deferred across the swap, in-flight
// jobs preserved, and — the hard guarantee — that no admitted job is lost.
type ReconfigOptions struct {
	// From and To are the combinations before and after the swap. Defaults:
	// T_N_N → J_J_J, the minimal static configuration to the fully dynamic
	// one.
	From, To core.Config
	// Sets is the number of random task sets (default 5).
	Sets int
	// Horizon is the workload duration (default 2 minutes).
	Horizon time.Duration
	// SwitchAt is the virtual reconfiguration instant (default Horizon/2).
	SwitchAt time.Duration
	// LinkDelay and ACDelay configure the simulated delays; zero uses the
	// calibrated defaults.
	LinkDelay time.Duration
	ACDelay   time.Duration
	// Workers bounds concurrent trials, as in FigureOptions.
	Workers int
}

// withDefaults fills unset options.
func (o ReconfigOptions) withDefaults() ReconfigOptions {
	if (o.From == core.Config{}) {
		o.From = core.Config{AC: core.StrategyPerTask, IR: core.StrategyNone, LB: core.StrategyNone}
	}
	if (o.To == core.Config{}) {
		o.To = core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerJob, LB: core.StrategyPerJob}
	}
	if o.Sets == 0 {
		o.Sets = 5
	}
	if o.Horizon == 0 {
		o.Horizon = 2 * time.Minute
	}
	if o.SwitchAt == 0 {
		o.SwitchAt = o.Horizon / 2
	}
	return o
}

// ReconfigResult is one task set's outcome.
type ReconfigResult struct {
	// Set is the task-set number.
	Set int
	// Report is the swap's protocol report (quiesce latency, deferred
	// arrivals, in-flight jobs preserved, reservations rebased).
	Report core.ReconfigReport
	// Arrived, Released, Skipped and Completed are the run totals across
	// both configurations.
	Arrived, Released, Skipped, Completed int64
	// Lost is Released − Completed after the drain: admitted jobs that
	// never finished. The protocol guarantees zero.
	Lost int64
	// Ratio is the run's overall accepted utilization ratio.
	Ratio float64
}

// RunReconfig executes the reconfiguration experiment.
func RunReconfig(opts ReconfigOptions) ([]ReconfigResult, error) {
	opts = opts.withDefaults()
	if err := opts.From.Validate(); err != nil {
		return nil, err
	}
	if err := opts.To.Validate(); err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers < 0 {
		workers = ResolveWorkers(workers)
	}
	results := make([]ReconfigResult, opts.Sets)
	err := runTrials(opts.Sets, workers, func(set int) error {
		p := workload.Figure5Params(set)
		tasks, err := workload.Generate(p)
		if err != nil {
			return fmt.Errorf("experiments: reconfig set %d: %w", set, err)
		}
		sim, err := core.NewSimSystem(core.SimConfig{
			Strategies: opts.From,
			NumProcs:   workload.MaxProc(tasks) + 1,
			LinkDelay:  opts.LinkDelay,
			ACDelay:    opts.ACDelay,
			Horizon:    opts.Horizon,
			Seed:       p.Seed ^ 0x5DEECE66D,
		}, tasks)
		if err != nil {
			return fmt.Errorf("experiments: reconfig set %d: %w", set, err)
		}
		rep, err := sim.ScheduleReconfig(opts.SwitchAt, opts.To)
		if err != nil {
			return fmt.Errorf("experiments: reconfig set %d: %w", set, err)
		}
		m := sim.Run()
		results[set] = ReconfigResult{
			Set:       set,
			Report:    *rep,
			Arrived:   m.Total.Arrived,
			Released:  m.Total.Released,
			Skipped:   m.Total.Skipped,
			Completed: m.Total.Completed,
			Lost:      m.Total.Released - m.Total.Completed,
			Ratio:     m.AcceptedUtilizationRatio(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RenderReconfig formats the experiment as a table.
func RenderReconfig(title string, results []ReconfigResult) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-4s %-8s %-8s %10s %9s %9s %9s %6s %7s\n",
		"set", "from", "to", "quiesce", "deferred", "inflight", "released", "lost", "ratio")
	for _, r := range results {
		fmt.Fprintf(&b, "%-4d %-8s %-8s %10s %9d %9d %9d %6d %7.3f\n",
			r.Set, r.Report.From, r.Report.To, r.Report.Quiesce,
			r.Report.Deferred, r.Report.InFlightBefore, r.Released, r.Lost, r.Ratio)
	}
	return b.String()
}

// reconfigJSON is the machine-readable form of one result.
type reconfigJSON struct {
	Set            int     `json:"set"`
	From           string  `json:"from"`
	To             string  `json:"to"`
	Epoch          int64   `json:"epoch"`
	QuiesceNanos   int64   `json:"quiesce_nanos"`
	Deferred       int64   `json:"deferred"`
	InFlightBefore int64   `json:"inflight_before"`
	InFlightAfter  int64   `json:"inflight_after"`
	Released       int64   `json:"released"`
	Completed      int64   `json:"completed"`
	Lost           int64   `json:"lost"`
	Ratio          float64 `json:"ratio"`
}

// RenderReconfigJSON emits the experiment as an indented JSON document.
func RenderReconfigJSON(results []ReconfigResult) (string, error) {
	doc := struct {
		Experiment string         `json:"experiment"`
		Results    []reconfigJSON `json:"results"`
	}{Experiment: "reconfig"}
	for _, r := range results {
		doc.Results = append(doc.Results, reconfigJSON{
			Set:            r.Set,
			From:           r.Report.From.String(),
			To:             r.Report.To.String(),
			Epoch:          r.Report.Epoch,
			QuiesceNanos:   int64(r.Report.Quiesce),
			Deferred:       r.Report.Deferred,
			InFlightBefore: r.Report.InFlightBefore,
			InFlightAfter:  r.Report.InFlightAfter,
			Released:       r.Released,
			Completed:      r.Completed,
			Lost:           r.Lost,
			Ratio:          r.Ratio,
		})
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("experiments: encode reconfig: %w", err)
	}
	return string(out), nil
}
