package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// fullOpts runs the paper's full parameters (10 sets, 5 simulated minutes);
// the DES makes this cheap in wall-clock time.
func fullOpts() FigureOptions {
	return FigureOptions{Sets: 10, Horizon: 5 * time.Minute}
}

func TestFigure5Shape(t *testing.T) {
	results, err := RunFigure5(fullOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 15 {
		t.Fatalf("got %d combos, want 15", len(results))
	}
	for _, r := range results {
		if r.Mean <= 0 || r.Mean > 1 {
			t.Errorf("%s: mean ratio %g out of (0, 1]", r.Combo, r.Mean)
		}
		if len(r.PerSet) != 10 {
			t.Errorf("%s: %d per-set results, want 10", r.Combo, len(r.PerSet))
		}
	}

	// Paper finding 1: enabling IR per job significantly outperforms IR per
	// task or no IR.
	irJ, irT, irN := MeanOf(results, "*_J_*"), MeanOf(results, "*_T_*"), MeanOf(results, "*_N_*")
	if irJ <= irT || irJ <= irN {
		t.Errorf("IR per job mean %.3f not above per-task %.3f / none %.3f", irJ, irT, irN)
	}

	// Paper finding 2: enabling idle resetting or load balancing increases
	// admitted utilization.
	if lbOn := MeanOf(results, "*_*_T"); lbOn <= MeanOf(results, "*_*_N") {
		t.Errorf("LB per task mean %.3f not above no-LB %.3f", lbOn, MeanOf(results, "*_*_N"))
	}
	if irT <= irN {
		t.Errorf("IR per task mean %.3f not above no-IR %.3f", irT, irN)
	}

	// Paper finding 3: J_J_* configurations outperform all others; J_J_J
	// averages highest.
	best := Best(results)
	if !strings.HasPrefix(best.Combo.String(), "J_J_") {
		t.Errorf("best combo %s, want a J_J_* configuration", best.Combo)
	}
}

func TestFigure6Shape(t *testing.T) {
	results, err := RunFigure6(fullOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 15 {
		t.Fatalf("got %d combos, want 15", len(results))
	}

	// Paper finding: with an imbalanced workload, LB per task provides a
	// significant improvement over no LB, while LB per task and per job are
	// comparable. Check within every AC/IR group, as the paper's Figure 6
	// bar triples do.
	byName := make(map[string]float64, len(results))
	for _, r := range results {
		byName[r.Combo.String()] = r.Mean
	}
	for _, group := range []string{"T_N", "T_T", "J_N", "J_T", "J_J"} {
		none := byName[group+"_N"]
		perTask := byName[group+"_T"]
		perJob := byName[group+"_J"]
		if perTask <= none {
			t.Errorf("group %s: LB per task %.3f not above no-LB %.3f", group, perTask, none)
		}
		// "Not much difference between load balancing per task vs per job":
		// allow a generous band rather than a strict ordering.
		if diff := perTask - perJob; diff > 0.15 || diff < -0.15 {
			t.Errorf("group %s: per-task %.3f vs per-job %.3f differ by more than 0.15", group, perTask, perJob)
		}
	}
}

func TestFigureOptionsCombosFilter(t *testing.T) {
	only := []core.Config{{AC: core.StrategyPerJob, IR: core.StrategyPerJob, LB: core.StrategyPerJob}}
	results, err := RunFigure5(FigureOptions{Sets: 2, Horizon: 30 * time.Second, Combos: only})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Combo != only[0] {
		t.Fatalf("results = %+v, want single J_J_J entry", results)
	}
	if len(results[0].PerSet) != 2 {
		t.Errorf("PerSet = %v, want 2 entries", results[0].PerSet)
	}
}

func TestFigureDeterminism(t *testing.T) {
	opts := FigureOptions{Sets: 3, Horizon: time.Minute}
	a, err := RunFigure5(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFigure5(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Mean != b[i].Mean {
			t.Errorf("%s: mean %g vs %g across identical runs", a[i].Combo, a[i].Mean, b[i].Mean)
		}
	}
}

func TestMeanOf(t *testing.T) {
	results := []ComboResult{
		{Combo: core.Config{AC: core.StrategyPerTask, IR: core.StrategyNone, LB: core.StrategyNone}, Mean: 0.2},
		{Combo: core.Config{AC: core.StrategyPerJob, IR: core.StrategyNone, LB: core.StrategyNone}, Mean: 0.4},
		{Combo: core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerJob, LB: core.StrategyNone}, Mean: 0.6},
	}
	if got := MeanOf(results, "*_N_*"); !approx(got, 0.3) {
		t.Errorf("MeanOf(*_N_*) = %g, want 0.3", got)
	}
	if got := MeanOf(results, "J_*_*"); !approx(got, 0.5) {
		t.Errorf("MeanOf(J_*_*) = %g, want 0.5", got)
	}
	if got := MeanOf(results, "*_*_J"); got != 0 {
		t.Errorf("MeanOf with no matches = %g, want 0", got)
	}
}

func TestRenderers(t *testing.T) {
	results := []ComboResult{
		{Combo: core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerJob, LB: core.StrategyPerJob},
			Mean: 0.75, PerSet: []float64{0.7, 0.8}},
	}
	fig := RenderFigure("Figure X", results)
	if !strings.Contains(fig, "J_J_J") || !strings.Contains(fig, "0.750") {
		t.Errorf("RenderFigure output missing fields:\n%s", fig)
	}
	csv := RenderCSV(results)
	if !strings.Contains(csv, "combo,mean,set0,set1") || !strings.Contains(csv, "J_J_J,0.750000,0.700000,0.800000") {
		t.Errorf("RenderCSV output unexpected:\n%s", csv)
	}
}

func TestRanked(t *testing.T) {
	results := []ComboResult{
		{Combo: core.Config{AC: core.StrategyPerTask, IR: core.StrategyNone, LB: core.StrategyNone}, Mean: 0.2},
		{Combo: core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerJob, LB: core.StrategyPerJob}, Mean: 0.9},
	}
	ranked := Ranked(results)
	if ranked[0].Mean != 0.9 || ranked[1].Mean != 0.2 {
		t.Errorf("Ranked order wrong: %+v", ranked)
	}
	// Input order preserved.
	if results[0].Mean != 0.2 {
		t.Error("Ranked mutated its input")
	}
}

func approx(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
