package experiments

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunTrialsCoversAllIndexes checks every index runs exactly once and the
// worker bound is respected.
func TestRunTrialsCoversAllIndexes(t *testing.T) {
	const n, workers = 100, 4
	var ran [n]int32
	var inFlight, peak int32
	var mu sync.Mutex
	err := runTrials(n, workers, func(i int) error {
		cur := atomic.AddInt32(&inFlight, 1)
		mu.Lock()
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		atomic.AddInt32(&ran[i], 1)
		atomic.AddInt32(&inFlight, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range ran {
		if c != 1 {
			t.Fatalf("trial %d ran %d times", i, c)
		}
	}
	if peak > workers {
		t.Errorf("observed %d concurrent trials, worker bound is %d", peak, workers)
	}
}

// TestRunTrialsFirstErrorByIndex checks that the lowest-indexed failure wins
// regardless of completion order, matching the serial loop's semantics.
func TestRunTrialsFirstErrorByIndex(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("trial %d failed", i) }
	err := runTrials(10, 4, func(i int) error {
		if i == 7 || i == 3 {
			return boom(i)
		}
		return nil
	})
	if err == nil || err.Error() != "trial 3 failed" {
		t.Fatalf("err = %v, want trial 3's error", err)
	}

	sentinel := errors.New("serial failure")
	calls := 0
	err = runTrials(10, 1, func(i int) error {
		calls++
		if i == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("serial err = %v, want sentinel", err)
	}
	if calls != 3 {
		t.Errorf("serial run made %d calls after failure at index 2, want 3", calls)
	}
}

// TestFigureParallelBitIdentical is the acceptance check for the concurrent
// runner: RunFigure5/RunFigure6 results must be bit-identical between the
// serial and parallel paths, per-set values included.
func TestFigureParallelBitIdentical(t *testing.T) {
	for _, fig := range []struct {
		name string
		run  func(FigureOptions) ([]ComboResult, error)
	}{
		{"figure5", RunFigure5},
		{"figure6", RunFigure6},
	} {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			opts := FigureOptions{Sets: 3, Horizon: 45 * time.Second}
			serial, err := fig.run(opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Workers = 8
			parallel, err := fig.run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(serial) != len(parallel) {
				t.Fatalf("serial %d combos, parallel %d", len(serial), len(parallel))
			}
			for i := range serial {
				if serial[i].Combo != parallel[i].Combo {
					t.Fatalf("combo order diverged at %d: %s vs %s", i, serial[i].Combo, parallel[i].Combo)
				}
				if serial[i].Mean != parallel[i].Mean {
					t.Errorf("%s: mean %v (serial) vs %v (parallel)", serial[i].Combo, serial[i].Mean, parallel[i].Mean)
				}
				for s := range serial[i].PerSet {
					if serial[i].PerSet[s] != parallel[i].PerSet[s] {
						t.Errorf("%s set %d: %v (serial) vs %v (parallel)",
							serial[i].Combo, s, serial[i].PerSet[s], parallel[i].PerSet[s])
					}
				}
			}
		})
	}
}

// TestAblationParallelBitIdentical checks the same property for the
// AUB-vs-DS ablation's per-seed fan-out.
func TestAblationParallelBitIdentical(t *testing.T) {
	opts := AblationOptions{Procs: 3, Tasks: 9, Horizon: 30 * time.Second, Seeds: 6}
	serial, err := RunAblationAUBvsDS(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 6
	parallel, err := RunAblationAUBvsDS(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Technique != parallel[i].Technique {
			t.Fatalf("technique order diverged: %s vs %s", serial[i].Technique, parallel[i].Technique)
		}
		if serial[i].AcceptedRatio != parallel[i].AcceptedRatio {
			t.Errorf("%s: ratio %v (serial) vs %v (parallel)", serial[i].Technique, serial[i].AcceptedRatio, parallel[i].AcceptedRatio)
		}
		for s := range serial[i].PerSeed {
			if serial[i].PerSeed[s] != parallel[i].PerSeed[s] {
				t.Errorf("%s seed %d: %v vs %v", serial[i].Technique, s, serial[i].PerSeed[s], parallel[i].PerSeed[s])
			}
		}
	}
}

// TestResolveWorkers pins the worker-count normalization.
func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(3); got != 3 {
		t.Errorf("ResolveWorkers(3) = %d", got)
	}
	if got := ResolveWorkers(0); got < 1 {
		t.Errorf("ResolveWorkers(0) = %d, want ≥ 1", got)
	}
	if got := ResolveWorkers(-2); got < 1 {
		t.Errorf("ResolveWorkers(-2) = %d, want ≥ 1", got)
	}
}

// TestRenderJSON sanity-checks the machine-readable renderers.
func TestRenderJSON(t *testing.T) {
	results, err := RunFigure5(FigureOptions{Sets: 2, Horizon: 20 * time.Second, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	out, err := RenderFigureJSON("figure5", results)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"figure": "figure5"`) || !strings.Contains(out, `"combo": "J_J_J"`) {
		t.Errorf("figure JSON missing fields:\n%s", out)
	}

	ab, err := RunAblationAUBvsDS(AblationOptions{Horizon: 15 * time.Second, Seeds: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	abOut, err := RenderAblationJSON(ab)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(abOut, `"technique": "AUB"`) || !strings.Contains(abOut, `"technique": "DS"`) {
		t.Errorf("ablation JSON missing fields:\n%s", abOut)
	}
}
