package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestRunReconfigZeroLoss(t *testing.T) {
	opts := ReconfigOptions{Sets: 3, Horizon: 30 * time.Second, Workers: 2}
	results, err := RunReconfig(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Lost != 0 {
			t.Errorf("set %d lost %d admitted jobs", r.Set, r.Lost)
		}
		if r.Report.Epoch != 1 {
			t.Errorf("set %d epoch = %d", r.Set, r.Report.Epoch)
		}
		if r.Report.From.String() != "T_N_N" || r.Report.To.String() != "J_J_J" {
			t.Errorf("set %d combos = %s -> %s", r.Set, r.Report.From, r.Report.To)
		}
		if r.Report.Quiesce <= 0 {
			t.Errorf("set %d quiesce = %v", r.Set, r.Report.Quiesce)
		}
		if r.Released == 0 || r.Ratio <= 0 {
			t.Errorf("set %d inert: %+v", r.Set, r)
		}
	}

	table := RenderReconfig("title", results)
	if !strings.Contains(table, "title") || !strings.Contains(table, "T_N_N") {
		t.Errorf("table = %q", table)
	}
	doc, err := RenderReconfigJSON(results)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"experiment": "reconfig"`, `"lost": 0`, `"from": "T_N_N"`} {
		if !strings.Contains(doc, want) {
			t.Errorf("JSON missing %s", want)
		}
	}
}

func TestRunReconfigRejectsInvalid(t *testing.T) {
	if _, err := RunReconfig(ReconfigOptions{
		To: core.Config{AC: core.StrategyPerTask, IR: core.StrategyPerJob, LB: core.StrategyNone},
	}); err == nil {
		t.Error("contradictory target accepted")
	}
}
