package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
)

// This file is the concurrent trial harness for the experiment runners.
// Every (combo, set) trial of the Figure 5/6 sweeps and every seed of the
// ablation owns an independent SimSystem (or replay ledger), so trials are
// embarrassingly parallel; the harness fans them across a bounded worker
// pool while writing each result into its pre-assigned slot, which keeps
// result ordering — and therefore the rendered figures — bit-identical to
// the serial runner.

// ResolveWorkers normalizes a worker-count option: values below 1 select
// one worker per available CPU, everything else is used as given.
func ResolveWorkers(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// runTrials executes fn(i) for every i in [0, n) on at most workers
// concurrent goroutines. With workers ≤ 1 it degenerates to a plain serial
// loop on the calling goroutine (no goroutines spawned, deterministic
// failure point). Every trial runs regardless of other trials' failures —
// results land in caller-owned slots — and the error of the lowest-indexed
// failed trial is returned, matching the serial loop's first-error
// semantics.
func runTrials(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// comboJSON is the machine-readable form of one ComboResult; the combo is
// emitted as its AC_IR_LB tuple string.
type comboJSON struct {
	Combo  string    `json:"combo"`
	Mean   float64   `json:"mean"`
	PerSet []float64 `json:"per_set"`
}

// figureJSON is the top-level JSON document for one figure series.
type figureJSON struct {
	Figure  string      `json:"figure"`
	Results []comboJSON `json:"results"`
}

// RenderFigureJSON emits a figure series as an indented JSON document for
// machine consumption (the -json mode of rtmw-bench).
func RenderFigureJSON(name string, results []ComboResult) (string, error) {
	doc := figureJSON{Figure: name, Results: make([]comboJSON, 0, len(results))}
	for _, r := range results {
		doc.Results = append(doc.Results, comboJSON{
			Combo:  r.Combo.String(),
			Mean:   r.Mean,
			PerSet: r.PerSet,
		})
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("experiments: encode %s: %w", name, err)
	}
	return string(out), nil
}

// ablationJSON is the machine-readable form of one ablation technique row.
type ablationJSON struct {
	Technique     string    `json:"technique"`
	AcceptedRatio float64   `json:"accepted_ratio"`
	PerSeed       []float64 `json:"per_seed"`
}

// RenderAblationJSON emits the AUB-vs-DS comparison as indented JSON.
func RenderAblationJSON(results []AblationResult) (string, error) {
	doc := struct {
		Ablation string         `json:"ablation"`
		Results  []ablationJSON `json:"results"`
	}{Ablation: "AUB-vs-DS"}
	for _, r := range results {
		doc.Results = append(doc.Results, ablationJSON{
			Technique:     r.Technique,
			AcceptedRatio: r.AcceptedRatio,
			PerSeed:       r.PerSeed,
		})
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("experiments: encode ablation: %w", err)
	}
	return string(out), nil
}
