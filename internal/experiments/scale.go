package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// ScalePoint is one (processors, tasks) configuration of the scalability
// sweep.
type ScalePoint struct {
	// Procs is the number of application processors.
	Procs int
	// Tasks is the number of end-to-end tasks in the generated workload.
	Tasks int
}

func (p ScalePoint) String() string { return fmt.Sprintf("%dx%d", p.Procs, p.Tasks) }

// ScaleOptions parameterizes the scalability sweep: the same simulated
// middleware as the figure experiments, run over workloads far beyond the
// paper's five-processor testbed to measure the substrate's throughput as
// the platform grows.
type ScaleOptions struct {
	// Points lists the (procs, tasks) configurations; nil runs the default
	// ladder 5x100, 50x10000, 200x50000.
	Points []ScalePoint
	// Horizon is the virtual workload duration per point (default 2s; the
	// scale workloads use 100ms–2s deadlines, so a couple of seconds already
	// releases several jobs per task).
	Horizon time.Duration
	// Combo is the strategy combination under test (default J_J_J, the
	// fully dynamic configuration that stresses every service).
	Combo core.Config
	// LinkDelay and ACDelay configure the simulated delays; zero uses the
	// calibrated defaults.
	LinkDelay time.Duration
	ACDelay   time.Duration
	// Set selects the workload seed (as a figure task-set number).
	Set int
}

func (o ScaleOptions) withDefaults() ScaleOptions {
	if len(o.Points) == 0 {
		o.Points = []ScalePoint{{5, 100}, {50, 10_000}, {200, 50_000}}
	}
	if o.Horizon == 0 {
		o.Horizon = 2 * time.Second
	}
	if (o.Combo == core.Config{}) {
		o.Combo = core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerJob, LB: core.StrategyPerJob}
	}
	return o
}

// ScaleResult is one point's outcome: the virtual workload it processed and
// the wall-clock throughput the substrate sustained doing it.
type ScaleResult struct {
	// Point is the (procs, tasks) configuration.
	Point ScalePoint
	// Jobs counts job arrivals; Released and Completed count admitted and
	// finished jobs.
	Jobs      int64
	Released  int64
	Completed int64
	// Ratio is the accepted utilization ratio (the paper's headline metric).
	Ratio float64
	// Events is the number of discrete events the engine fired.
	Events int64
	// Wall is the wall-clock time the run took.
	Wall time.Duration
	// JobsPerSec and EventsPerSec are the wall-clock throughputs.
	JobsPerSec   float64
	EventsPerSec float64
}

// RunScale executes the scalability sweep serially (each point is itself a
// large single-threaded simulation; the figure sweeps are where trial-level
// parallelism pays).
func RunScale(opts ScaleOptions) ([]ScaleResult, error) {
	opts = opts.withDefaults()
	results := make([]ScaleResult, 0, len(opts.Points))
	for _, pt := range opts.Points {
		params := workload.ScaleParams(pt.Procs, pt.Tasks, opts.Set)
		tasks, err := workload.Generate(params)
		if err != nil {
			return nil, fmt.Errorf("experiments: scale %s: %w", pt, err)
		}
		sim, err := core.NewSimSystem(core.SimConfig{
			Strategies: opts.Combo,
			NumProcs:   pt.Procs,
			LinkDelay:  opts.LinkDelay,
			ACDelay:    opts.ACDelay,
			Horizon:    opts.Horizon,
			Seed:       params.Seed ^ 0x5DEECE66D,
		}, tasks)
		if err != nil {
			return nil, fmt.Errorf("experiments: scale %s: %w", pt, err)
		}
		start := time.Now()
		m := sim.Run()
		wall := time.Since(start)
		if wall <= 0 {
			wall = time.Nanosecond
		}
		results = append(results, ScaleResult{
			Point:        pt,
			Jobs:         m.Total.Arrived,
			Released:     m.Total.Released,
			Completed:    m.Total.Completed,
			Ratio:        m.AcceptedUtilizationRatio(),
			Events:       sim.Engine().Fired(),
			Wall:         wall,
			JobsPerSec:   float64(m.Total.Arrived) / wall.Seconds(),
			EventsPerSec: float64(sim.Engine().Fired()) / wall.Seconds(),
		})
	}
	return results, nil
}

// RenderScale formats the sweep as a throughput table.
func RenderScale(title string, results []ScaleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %7s %12s %14s %14s %10s\n",
		"procsxtasks", "jobs", "released", "events", "ratio", "wall", "jobs/sec", "events/sec", "")
	for _, r := range results {
		fmt.Fprintf(&b, "%-12s %10d %10d %10d %7.3f %12s %14.0f %14.0f\n",
			r.Point, r.Jobs, r.Released, r.Events, r.Ratio,
			r.Wall.Round(time.Millisecond), r.JobsPerSec, r.EventsPerSec)
	}
	return b.String()
}

// scaleJSON is the machine-readable form of one scale point.
type scaleJSON struct {
	Procs        int     `json:"procs"`
	Tasks        int     `json:"tasks"`
	Jobs         int64   `json:"jobs"`
	Released     int64   `json:"released"`
	Completed    int64   `json:"completed"`
	Ratio        float64 `json:"accepted_ratio"`
	Events       int64   `json:"events"`
	WallSeconds  float64 `json:"wall_seconds"`
	JobsPerSec   float64 `json:"jobs_per_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// RenderScaleJSON emits the sweep as an indented JSON document (the -json
// mode of rtmw-bench, consumed by the CI perf-trajectory artifact).
func RenderScaleJSON(results []ScaleResult) (string, error) {
	doc := struct {
		Sweep   string      `json:"sweep"`
		Results []scaleJSON `json:"results"`
	}{Sweep: "scale"}
	for _, r := range results {
		doc.Results = append(doc.Results, scaleJSON{
			Procs:        r.Point.Procs,
			Tasks:        r.Point.Tasks,
			Jobs:         r.Jobs,
			Released:     r.Released,
			Completed:    r.Completed,
			Ratio:        r.Ratio,
			Events:       r.Events,
			WallSeconds:  r.Wall.Seconds(),
			JobsPerSec:   r.JobsPerSec,
			EventsPerSec: r.EventsPerSec,
		})
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("experiments: encode scale sweep: %w", err)
	}
	return string(out), nil
}

// ParseScalePoints parses a comma-separated list of PROCSxTASKS pairs, e.g.
// "5x100,50x10000,200x50000".
func ParseScalePoints(s string) ([]ScalePoint, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []ScalePoint
	for _, part := range strings.Split(s, ",") {
		var p ScalePoint
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%dx%d", &p.Procs, &p.Tasks); err != nil {
			return nil, fmt.Errorf("experiments: bad scale point %q (want PROCSxTASKS): %w", part, err)
		}
		if p.Procs < 1 || p.Tasks < 1 {
			return nil, fmt.Errorf("experiments: bad scale point %q: counts must be positive", part)
		}
		out = append(out, p)
	}
	return out, nil
}
