package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestOverheadReportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("live overhead run in -short mode")
	}
	rep, err := RunOverhead(OverheadOptions{Duration: 3 * time.Second, PingCount: 200})
	if err != nil {
		t.Fatal(err)
	}

	// Every primitive operation collected samples.
	for i := 1; i <= 8; i++ {
		op, ok := rep.Ops[i]
		if !ok {
			t.Fatalf("operation %d missing", i)
		}
		if op.Count == 0 {
			t.Errorf("operation %d (%s): no samples", i, op.Name)
		}
		if op.Mean < 0 || op.Max < op.Mean {
			t.Errorf("operation %d: mean %v max %v inconsistent", i, op.Mean, op.Max)
		}
	}

	// Paper shape: the manager-side computations (plan generation,
	// admission test, utilization update) are orders of magnitude below the
	// communication delay; every composite service delay stays well under
	// the paper's 2 ms acceptability bar (loopback is faster than their
	// 100 Mbps switch).
	comm := rep.Ops[2].Mean
	for _, op := range []int{3, 4, 8} {
		if rep.Ops[op].Mean > comm {
			t.Errorf("operation %d mean %v exceeds communication delay %v", op, rep.Ops[op].Mean, comm)
		}
	}
	rows := make(map[string]OverheadRow, len(rep.Rows))
	for _, r := range rep.Rows {
		rows[r.Name] = r
	}
	for _, name := range []string{
		"AC without LB", "AC with LB (no re-allocation)", "AC with LB (re-allocation)",
		"LB (no re-allocation)", "LB (re-allocation)", "IR (on AC side)",
		"IR (other part)", "Communication Delay",
	} {
		row, ok := rows[name]
		if !ok {
			t.Fatalf("row %q missing", name)
		}
		if row.Mean <= 0 {
			t.Errorf("row %q: non-positive mean", name)
		}
		if row.Mean > 5*time.Millisecond {
			t.Errorf("row %q: mean %v far above the paper's 2 ms envelope", name, row.Mean)
		}
	}
	// IR's AC-side cost is the cheapest row, as in Figure 8.
	if rows["IR (on AC side)"].Mean >= rows["Communication Delay"].Mean {
		t.Errorf("IR (on AC side) %v not below communication delay %v",
			rows["IR (on AC side)"].Mean, rows["Communication Delay"].Mean)
	}
	// Composite rows equal the sum of their parts (mean composition).
	wantACNoLB := rep.Ops[1].Mean + rep.Ops[2].Mean + rep.Ops[4].Mean + rep.Ops[2].Mean + rep.Ops[5].Mean
	if rows["AC without LB"].Mean != wantACNoLB {
		t.Errorf("AC without LB mean %v != composed %v", rows["AC without LB"].Mean, wantACNoLB)
	}

	out := RenderOverhead(rep)
	for _, want := range []string{"Figure 7", "Figure 8", "AC without LB", "(1+2+4+2+5)"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q", want)
		}
	}
}
