package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eventchan"
	"repro/internal/spec"
	"repro/internal/workload"
)

// OverheadOptions parameterizes the Section 7.3 overhead measurement.
type OverheadOptions struct {
	// Duration is how long the measured workload runs (the paper ran 5
	// minutes; the compressed default is 5 seconds).
	Duration time.Duration
	// TimeScale compresses the Section 7.3 workload's periods, deadlines
	// and execution times uniformly (synthetic utilization is invariant).
	// Default 0.05.
	TimeScale float64
	// PingCount is the number of event round trips used to estimate the
	// one-way communication delay, as in the paper (1000).
	PingCount int
	// Set selects the random workload seed set.
	Set int
}

// withDefaults fills unset options.
func (o OverheadOptions) withDefaults() OverheadOptions {
	if o.Duration == 0 {
		o.Duration = 5 * time.Second
	}
	if o.TimeScale == 0 {
		o.TimeScale = 0.05
	}
	if o.PingCount == 0 {
		o.PingCount = 1000
	}
	return o
}

// OpResult is one measured operation (mean/max over its samples).
type OpResult struct {
	// Name describes the operation.
	Name string
	// Mean and Max are the observed statistics.
	Mean time.Duration
	Max  time.Duration
	// Count is the number of samples.
	Count int64
}

// OverheadReport collects the Figure 7 primitive operations and the Figure 8
// composite delay rows.
type OverheadReport struct {
	// Ops are the primitive operations (numbered as in Figure 7):
	// 1 hold task + push event, 2 communication delay, 3 generate
	// deployment plan, 4 admission test, 5 release the task, 6 release the
	// duplicate task, 7 report completed subtask, 8 update synthetic
	// utilization.
	Ops map[int]OpResult
	// Rows are the composite service delays in the paper's Figure 8 order.
	Rows []OverheadRow
}

// OverheadRow is one Figure 8 line: a service delay composed from operation
// costs.
type OverheadRow struct {
	// Name matches the paper's row label.
	Name string
	// Formula lists the composed operation numbers, e.g. "1+2+4+2+5".
	Formula string
	// Mean and Max are sums of the component means and maxes.
	Mean time.Duration
	Max  time.Duration
}

// RunOverhead reproduces the Section 7.3 methodology: a random workload on 3
// application processors plus a central task manager over real TCP loopback.
// Two runs cover the configuration space the paper measures: one with load
// balancing enabled (J_J_J) for the plan-generation and re-allocation rows,
// and one without (J_J_N) for the AC-without-LB row. The one-way
// communication delay is measured by pushing an event back and forth
// PingCount times and halving the round-trip time.
func RunOverhead(opts OverheadOptions) (*OverheadReport, error) {
	opts = opts.withDefaults()

	tasks, err := workload.Generate(workload.OverheadParams(opts.Set))
	if err != nil {
		return nil, err
	}
	scaled := workload.Scale(tasks, opts.TimeScale)
	w := spec.FromTasks("overhead", workload.MaxProc(scaled)+1, scaled)

	withLB, err := measureRun(w, core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerJob, LB: core.StrategyPerJob}, opts)
	if err != nil {
		return nil, err
	}
	noLB, err := measureRun(w, core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerJob, LB: core.StrategyNone}, opts)
	if err != nil {
		return nil, err
	}

	ops := map[int]OpResult{
		1: withLB.holdPush.named("hold the task, push event"),
		2: withLB.comm.named("communication delay"),
		3: withLB.location.named("generate acceptable deployment plan"),
		4: noLB.test.named("apply the admission test"),
		5: withLB.releaseHome.named("release the task"),
		6: withLB.releaseDup.named("release the duplicate task"),
		7: withLB.report.named("report completed subtask"),
		8: withLB.reset.named("update synthetic utilization"),
	}

	rep := &OverheadReport{Ops: ops}
	compose := func(name, formula string, nums ...int) {
		var mean, maxSum time.Duration
		for _, n := range nums {
			mean += ops[n].Mean
			maxSum += ops[n].Max
		}
		rep.Rows = append(rep.Rows, OverheadRow{Name: name, Formula: formula, Mean: mean, Max: maxSum})
	}
	// The paper folds the admission test into the plan-generation step when
	// LB is enabled ("returns an assignment plan that is acceptable"), so
	// rows quoting operation 3 implicitly include the test; we compose 3+4
	// explicitly under the paper's row labels.
	compose("AC without LB", "(1+2+4+2+5)", 1, 2, 4, 2, 5)
	compose("AC with LB (no re-allocation)", "(1+2+3+2+5)", 1, 2, 3, 4, 2, 5)
	compose("AC with LB (re-allocation)", "(1+2+3+2+6)", 1, 2, 3, 4, 2, 6)
	compose("LB (no re-allocation)", "(1+2+3+2+5)", 1, 2, 3, 4, 2, 5)
	compose("LB (re-allocation)", "(1+2+3+2+6)", 1, 2, 3, 4, 2, 6)
	compose("IR (on AC side)", "(8)", 8)
	compose("IR (other part)", "(7+2)", 7, 2)
	compose("Communication Delay", "(2)", 2)
	return rep, nil
}

// runStats are the primitive measurements of one cluster run.
type runStats struct {
	holdPush, comm, location, test, releaseHome, releaseDup, report, reset statSummary
}

// statSummary is a plain (mean, max, count) triple.
type statSummary struct {
	mean  time.Duration
	max   time.Duration
	count int64
}

// named converts to an exported OpResult.
func (s statSummary) named(name string) OpResult {
	return OpResult{Name: name, Mean: s.mean, Max: s.max, Count: s.count}
}

// fromOp snapshots a core.OpStats.
func fromOp(s *core.OpStats) statSummary {
	return statSummary{mean: s.Mean(), max: s.Max(), count: s.Count()}
}

// merge pools two summaries (approximate: weighted mean, max of maxes).
func merge(a, b statSummary) statSummary {
	total := a.count + b.count
	if total == 0 {
		return statSummary{}
	}
	mean := (time.Duration(a.count)*a.mean + time.Duration(b.count)*b.mean) / time.Duration(total)
	maxOf := a.max
	if b.max > maxOf {
		maxOf = b.max
	}
	return statSummary{mean: mean, max: maxOf, count: total}
}

// measureRun deploys one cluster, drives the workload, and harvests the
// primitive operation timings.
func measureRun(w *spec.Workload, cfg core.Config, opts OverheadOptions) (*runStats, error) {
	c, err := cluster.Start(cluster.Options{Workload: w, Config: cfg, Seed: int64(opts.Set) + 1})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	comm, err := measureCommDelay(c, opts.PingCount)
	if err != nil {
		return nil, err
	}

	if err := c.StartDrivers(1.0); err != nil {
		return nil, err
	}
	time.Sleep(opts.Duration)
	c.StopDrivers()
	c.Drain(5 * time.Second)

	ac, err := c.AC()
	if err != nil {
		return nil, err
	}
	ctrl := ac.Controller()

	rs := &runStats{comm: comm}
	rs.location = fromOp(&ctrl.Timing().Location)
	rs.test = fromOp(&ctrl.Timing().Test)
	rs.reset = fromOp(&ctrl.Timing().Reset)
	for i := range c.Apps {
		te, err := c.TE(i)
		if err != nil {
			return nil, err
		}
		rs.holdPush = merge(rs.holdPush, fromOp(&te.HoldPush))
		ir, err := c.IR(i)
		if err != nil {
			return nil, err
		}
		rs.report = merge(rs.report, fromOp(&ir.ReportPush))
	}
	// Stage-0 subtask instances measure release handling: home instances
	// are operation 5 (release the task), duplicates operation 6 (release
	// the duplicate task).
	homes := make(map[string]int)
	for _, t := range c.Tasks() {
		homes[t.ID] = t.Subtasks[0].Processor
	}
	for id, st := range c.Subtasks() {
		parts := strings.SplitN(strings.TrimPrefix(id, "Sub-"), "@P", 2)
		if len(parts) != 2 {
			continue
		}
		nameStage := parts[0]
		idx := strings.LastIndex(nameStage, "-")
		if idx < 0 || nameStage[idx+1:] != "0" {
			continue
		}
		taskID := nameStage[:idx]
		var proc int
		if _, err := fmt.Sscanf(parts[1], "%d", &proc); err != nil {
			continue
		}
		if homes[taskID] == proc {
			rs.releaseHome = merge(rs.releaseHome, fromOp(&st.ReleaseHandle))
		} else {
			rs.releaseDup = merge(rs.releaseDup, fromOp(&st.ReleaseHandle))
		}
	}
	return rs, nil
}

// measureCommDelay pushes an event back and forth between application node 0
// and the manager, as the paper does, and halves the mean/max round trip.
func measureCommDelay(c *cluster.Cluster, count int) (statSummary, error) {
	const pingType = "OverheadPing"
	const pongType = "OverheadPong"
	app := c.Apps[0]
	manager := c.Manager

	pong := make(chan struct{}, 1)
	manager.Channel.Subscribe(pingType, func(eventchan.Event) {
		// Reflect back to the app node.
		_ = manager.Channel.Push(eventchan.Event{Type: pongType})
	})
	app.Channel.Subscribe(pongType, func(eventchan.Event) {
		select {
		case pong <- struct{}{}:
		default:
		}
	})
	manager.Channel.AddRemoteSink(pongType, app.Addr)
	app.Channel.AddRemoteSink(pingType, manager.Addr)

	var total, maxRTT time.Duration
	for i := 0; i < count; i++ {
		start := time.Now()
		if err := app.Channel.Push(eventchan.Event{Type: pingType}); err != nil {
			return statSummary{}, err
		}
		select {
		case <-pong:
		case <-time.After(5 * time.Second):
			return statSummary{}, fmt.Errorf("experiments: ping %d timed out", i)
		}
		rtt := time.Since(start)
		total += rtt
		if rtt > maxRTT {
			maxRTT = rtt
		}
	}
	return statSummary{
		mean:  total / time.Duration(count) / 2,
		max:   maxRTT / 2,
		count: int64(count),
	}, nil
}

// RenderOverhead formats the report like the paper's Figures 7 and 8.
func RenderOverhead(rep *OverheadReport) string {
	var b strings.Builder
	b.WriteString("Figure 7: measured operation costs\n")
	fmt.Fprintf(&b, "%-4s %-38s %10s %10s %8s\n", "op", "operation", "mean", "max", "samples")
	for i := 1; i <= 8; i++ {
		op := rep.Ops[i]
		fmt.Fprintf(&b, "%-4d %-38s %10s %10s %8d\n", i, op.Name, us(op.Mean), us(op.Max), op.Count)
	}
	b.WriteString("\nFigure 8: service overheads (µs)\n")
	fmt.Fprintf(&b, "%-34s %-14s %10s %10s\n", "service", "composition", "mean", "max")
	for _, row := range rep.Rows {
		fmt.Fprintf(&b, "%-34s %-14s %10s %10s\n", row.Name, row.Formula, us(row.Mean), us(row.Max))
	}
	return b.String()
}

// us renders a duration in whole microseconds, the paper's unit.
func us(d time.Duration) string {
	return fmt.Sprintf("%d", d.Microseconds())
}
