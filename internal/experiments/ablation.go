package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/sched"
)

// This file reproduces the comparison behind the paper's Section 2 design
// decision: "aperiodic utilization bound (AUB) has a comparable performance
// to deferrable server, and requires less complex scheduling mechanisms in
// middleware", which is why the configurable services are built on AUB. The
// ablation replays identical Poisson streams of aperiodic jobs through both
// admission techniques and compares accepted utilization ratios.

// AblationOptions parameterizes the AUB-vs-DS comparison.
type AblationOptions struct {
	// Procs is the number of processors.
	Procs int
	// Tasks is the number of aperiodic task streams.
	Tasks int
	// Horizon is the virtual duration of each run.
	Horizon time.Duration
	// TargetUtil is the per-processor offered synthetic load.
	TargetUtil float64
	// ServerUtil is the deferrable server's bandwidth B/P per processor.
	ServerUtil float64
	// Seeds is the number of independent runs to average.
	Seeds int
	// Workers bounds how many seeds replay concurrently. Zero or one runs
	// serially; negative values use one worker per CPU. Each seed owns an
	// independent stream and ledger and lands in its own result slot, so
	// the output is bit-identical for any worker count.
	Workers int
}

// withDefaults fills unset fields.
func (o AblationOptions) withDefaults() AblationOptions {
	if o.Procs == 0 {
		o.Procs = 3
	}
	if o.Tasks == 0 {
		o.Tasks = 9
	}
	if o.Horizon == 0 {
		o.Horizon = 2 * time.Minute
	}
	if o.TargetUtil == 0 {
		o.TargetUtil = 0.5
	}
	if o.ServerUtil == 0 {
		o.ServerUtil = 0.6
	}
	if o.Seeds == 0 {
		o.Seeds = 5
	}
	return o
}

// AblationResult is one technique's outcome.
type AblationResult struct {
	// Technique is "AUB" or "DS".
	Technique string
	// AcceptedRatio is the accepted utilization ratio averaged over seeds.
	AcceptedRatio float64
	// PerSeed holds the per-seed ratios.
	PerSeed []float64
}

// aperiodicStream is one pre-generated arrival stream.
type arrivalEvent struct {
	at   time.Duration
	task *sched.Task
	job  int64
}

// RunAblationAUBvsDS replays identical aperiodic arrival streams through
// AUB-based admission (with idle resetting disabled, matching the DS model's
// lack of execution simulation) and deferrable-server admission, and
// reports both accepted utilization ratios.
func RunAblationAUBvsDS(opts AblationOptions) ([]AblationResult, error) {
	opts = opts.withDefaults()
	workers := opts.Workers
	if workers < 0 {
		workers = ResolveWorkers(workers)
	}
	aub := AblationResult{Technique: "AUB", PerSeed: make([]float64, opts.Seeds)}
	ds := AblationResult{Technique: "DS", PerSeed: make([]float64, opts.Seeds)}

	err := runTrials(opts.Seeds, workers, func(seed int) error {
		tasks, events, err := ablationStream(opts, int64(seed))
		if err != nil {
			return err
		}
		aub.PerSeed[seed] = replayAUB(opts, tasks, events)
		dsRatio, err := replayDS(opts, events)
		if err != nil {
			return err
		}
		ds.PerSeed[seed] = dsRatio
		return nil
	})
	if err != nil {
		return nil, err
	}
	aub.AcceptedRatio = meanOf(aub.PerSeed)
	ds.AcceptedRatio = meanOf(ds.PerSeed)
	return []AblationResult{aub, ds}, nil
}

// meanOf averages a slice.
func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// ablationStream generates single-stage aperiodic tasks with Poisson
// arrivals whose offered load is TargetUtil per processor, and the merged
// time-ordered arrival sequence.
func ablationStream(opts AblationOptions, seed int64) ([]*sched.Task, []arrivalEvent, error) {
	rng := rand.New(rand.NewSource(seed*7919 + 13))
	perProc := opts.Tasks / opts.Procs
	if perProc == 0 {
		perProc = 1
	}
	var tasks []*sched.Task
	for i := 0; i < opts.Tasks; i++ {
		proc := i % opts.Procs
		deadline := time.Duration(250+rng.Intn(2000)) * time.Millisecond
		// Offered load per task stream: TargetUtil split across streams on
		// the processor; exec = share * deadline (mean interarrival equals
		// the deadline, so C/D is also the long-run offered utilization).
		share := opts.TargetUtil / float64(perProc)
		exec := time.Duration(share * float64(deadline))
		if exec <= 0 {
			exec = time.Millisecond
		}
		tasks = append(tasks, &sched.Task{
			ID:               fmt.Sprintf("A%d", i),
			Kind:             sched.Aperiodic,
			Deadline:         deadline,
			MeanInterarrival: deadline,
			Subtasks:         []sched.Subtask{{Index: 0, Exec: exec, Processor: proc}},
		})
	}
	sched.AssignEDMSPriorities(tasks)

	var events []arrivalEvent
	for _, t := range tasks {
		now := time.Duration(0)
		job := int64(0)
		for {
			u := rng.Float64()
			for u == 0 {
				u = rng.Float64()
			}
			now += time.Duration(-float64(t.MeanInterarrival) * math.Log(u))
			if now > opts.Horizon {
				break
			}
			events = append(events, arrivalEvent{at: now, task: t, job: job})
			job++
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].task.ID < events[j].task.ID
	})
	return tasks, events, nil
}

// replayAUB runs the stream through the AUB ledger (contributions expire at
// job deadlines; no idle resetting, mirroring the DS model's admission-only
// view).
func replayAUB(opts AblationOptions, tasks []*sched.Task, events []arrivalEvent) float64 {
	ledger := sched.NewLedger(opts.Procs)
	type expiry struct {
		at  time.Duration
		ref sched.JobRef
	}
	var pending []expiry
	var offered, accepted float64
	for _, ev := range events {
		// Expire everything due before this arrival.
		kept := pending[:0]
		for _, e := range pending {
			if e.at <= ev.at {
				ledger.ExpireJob(e.ref)
			} else {
				kept = append(kept, e)
			}
		}
		pending = kept

		util := ev.task.TotalUtil()
		offered += util
		placement := []sched.PlacedStage{{
			Stage: 0,
			Proc:  ev.task.Subtasks[0].Processor,
			Util:  ev.task.StageUtil(0),
		}}
		if !ledger.Admissible(placement) {
			continue
		}
		ref := sched.JobRef{Task: ev.task.ID, Job: ev.job}
		if err := ledger.AddJob(ref, sched.Aperiodic, placement, false, ev.at+ev.task.Deadline); err != nil {
			continue
		}
		pending = append(pending, expiry{at: ev.at + ev.task.Deadline, ref: ref})
		accepted += util
	}
	if offered == 0 {
		return 0
	}
	return accepted / offered
}

// replayDS runs the same stream through per-processor deferrable servers.
func replayDS(opts AblationOptions, events []arrivalEvent) (float64, error) {
	period := 100 * time.Millisecond
	budget := time.Duration(opts.ServerUtil * float64(period))
	ds, err := sched.NewDSAdmission(opts.Procs, budget, period)
	if err != nil {
		return 0, err
	}
	var offered, accepted float64
	for _, ev := range events {
		ds.Expire(ev.at)
		util := ev.task.TotalUtil()
		offered += util
		if ds.Arrive(ev.task, ev.job, ev.at) {
			accepted += util
		}
	}
	if offered == 0 {
		return 0, nil
	}
	return accepted / offered, nil
}

// RenderAblation formats the comparison.
func RenderAblation(results []AblationResult) string {
	var b strings.Builder
	b.WriteString("Ablation: AUB vs deferrable-server admission (aperiodic streams)\n")
	fmt.Fprintf(&b, "%-10s %-10s %s\n", "technique", "ratio", "per-seed")
	for _, r := range results {
		fmt.Fprintf(&b, "%-10s %-10.3f %v\n", r.Technique, r.AcceptedRatio, roundSlice(r.PerSeed))
	}
	return b.String()
}

// roundSlice trims floats for printing.
func roundSlice(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Round(x*1000) / 1000
	}
	return out
}
