package experiments

import (
	"testing"
	"time"

	"repro/internal/core"
)

// TestScaleSweepSmall checks the sweep's accounting on a small point: jobs
// flow, events fire, and released ≤ arrived.
func TestScaleSweepSmall(t *testing.T) {
	res, err := RunScale(ScaleOptions{
		Points:  []ScalePoint{{Procs: 5, Tasks: 100}},
		Horizon: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d results, want 1", len(res))
	}
	r := res[0]
	if r.Jobs == 0 {
		t.Error("no jobs arrived")
	}
	if r.Released > r.Jobs {
		t.Errorf("released %d > arrived %d", r.Released, r.Jobs)
	}
	if r.Completed != r.Released {
		t.Errorf("completed %d != released %d after drain", r.Completed, r.Released)
	}
	if r.Events <= r.Jobs {
		t.Errorf("events %d should exceed jobs %d", r.Events, r.Jobs)
	}
	if r.Ratio < 0 || r.Ratio > 1 {
		t.Errorf("ratio %g out of range", r.Ratio)
	}
}

// TestScaleSweepDeterministic: equal options produce identical virtual
// outcomes (wall-clock fields differ, virtual accounting must not).
func TestScaleSweepDeterministic(t *testing.T) {
	opts := ScaleOptions{
		Points:  []ScalePoint{{Procs: 10, Tasks: 500}},
		Horizon: time.Second,
		Combo:   core.Config{AC: core.StrategyPerJob, IR: core.StrategyPerTask, LB: core.StrategyPerJob},
	}
	a, err := RunScale(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScale(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Jobs != b[0].Jobs || a[0].Released != b[0].Released || a[0].Events != b[0].Events || a[0].Ratio != b[0].Ratio {
		t.Errorf("same options diverged: %+v vs %+v", a[0], b[0])
	}
}

// TestScaleSweep200x50k is the large-scenario regime of the sweep — 200
// processors, 50k tasks, tens of thousands of jobs — the "simulate at scale
// what the testbed couldn't" configuration. It runs in CI's race job too
// (the whole sim is single-goroutine, so this doubles as a race audit of the
// pooled engine under a heavy event load), and the post-run ledger audit
// inside SimSystem.Run re-verifies every admission index at population
// sizes the unit tests never reach.
func TestScaleSweep200x50k(t *testing.T) {
	if testing.Short() {
		t.Skip("large scale point; skipped with -short")
	}
	res, err := RunScale(ScaleOptions{
		Points:  []ScalePoint{{Procs: 200, Tasks: 50_000}},
		Horizon: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Jobs < 10_000 {
		t.Errorf("only %d jobs arrived; want a large-scenario load (≥10000)", r.Jobs)
	}
	if r.Completed != r.Released {
		t.Errorf("completed %d != released %d after drain", r.Completed, r.Released)
	}
	t.Logf("200x50k: %d jobs, %d events, %.0f jobs/sec, %.0f events/sec",
		r.Jobs, r.Events, r.JobsPerSec, r.EventsPerSec)
}

// TestParseScalePoints covers the CLI's point-list syntax.
func TestParseScalePoints(t *testing.T) {
	pts, err := ParseScalePoints("5x100, 50x10000,200x50000")
	if err != nil {
		t.Fatal(err)
	}
	want := []ScalePoint{{5, 100}, {50, 10_000}, {200, 50_000}}
	if len(pts) != len(want) {
		t.Fatalf("got %d points, want %d", len(pts), len(want))
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("point %d = %+v, want %+v", i, pts[i], want[i])
		}
	}
	if _, err := ParseScalePoints("bogus"); err == nil {
		t.Error("accepted malformed point list")
	}
	if _, err := ParseScalePoints("0x10"); err == nil {
		t.Error("accepted non-positive processor count")
	}
	if pts, err := ParseScalePoints("  "); err != nil || pts != nil {
		t.Errorf("blank list should be (nil, nil), got (%v, %v)", pts, err)
	}
}
