package experiments

import (
	"testing"
)

// TestRunAutopilotBeatsStatics is the tentpole acceptance test: on every
// regime-change scenario the controller must post a strictly lower
// deadline-miss rate than each of the 15 static combinations, with zero
// admitted-job loss, clean ledger audits and bounded actuations.
func TestRunAutopilotBeatsStatics(t *testing.T) {
	rep, err := RunAutopilot(AutopilotOptions{})
	if err != nil {
		t.Fatalf("RunAutopilot: %v", err)
	}
	if len(rep.Scenarios) != 3 {
		t.Fatalf("expected 3 scenarios, got %d", len(rep.Scenarios))
	}
	beaten := 0
	for _, sc := range rep.Scenarios {
		if len(sc.Static) != 15 {
			t.Errorf("%s: expected 15 static rows, got %d", sc.Scenario, len(sc.Static))
		}
		for _, r := range sc.Autopilot {
			if !r.Passed {
				t.Errorf("%s (%s): autopilot run failed invariants: %v", sc.Scenario, r.Binding, r.Violations)
			}
			if r.Lost != 0 {
				t.Errorf("%s (%s): %d admitted jobs lost", sc.Scenario, r.Binding, r.Lost)
			}
			if !r.LedgerClean {
				t.Errorf("%s (%s): ledger audit failed", sc.Scenario, r.Binding)
			}
			if r.Actuations == 0 {
				t.Errorf("%s (%s): controller never actuated", sc.Scenario, r.Binding)
			}
		}
		if sc.Beaten {
			beaten++
		} else {
			t.Logf("%s: autopilot %.4f vs best static %s %.4f (not beaten)",
				sc.Scenario, sc.AutopilotMiss, sc.BestStatic, sc.BestStaticMiss)
		}
	}
	if beaten < 2 {
		t.Errorf("autopilot beat every static on %d scenarios, need >= 2\n%s", beaten, RenderAutopilot(rep))
	}
	if !AutopilotPassed(rep) {
		t.Errorf("AutopilotPassed = false\n%s", RenderAutopilot(rep))
	}
}

// TestRunAutopilotScenarioFilter checks the name filter and its unknown-name
// rejection.
func TestRunAutopilotScenarioFilter(t *testing.T) {
	rep, err := RunAutopilot(AutopilotOptions{Scenarios: []string{"autopilot-flash-crowd"}})
	if err != nil {
		t.Fatalf("RunAutopilot: %v", err)
	}
	if len(rep.Scenarios) != 1 || rep.Scenarios[0].Scenario != "autopilot-flash-crowd" {
		t.Fatalf("filter returned wrong scenarios: %+v", rep.Scenarios)
	}
	if _, err := RunAutopilot(AutopilotOptions{Scenarios: []string{"no-such"}}); err == nil {
		t.Fatal("expected error for unknown scenario name")
	}
}
