package experiments

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestAblationAUBvsDS(t *testing.T) {
	results, err := RunAblationAUBvsDS(AblationOptions{
		Procs:   3,
		Tasks:   9,
		Horizon: time.Minute,
		Seeds:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	byName := map[string]AblationResult{}
	for _, r := range results {
		byName[r.Technique] = r
		if r.AcceptedRatio <= 0 || r.AcceptedRatio > 1 {
			t.Errorf("%s: ratio %g out of (0, 1]", r.Technique, r.AcceptedRatio)
		}
		if len(r.PerSeed) != 5 {
			t.Errorf("%s: %d seeds, want 5", r.Technique, len(r.PerSeed))
		}
	}
	aub, ds := byName["AUB"], byName["DS"]
	if aub.Technique == "" || ds.Technique == "" {
		t.Fatal("missing technique results")
	}
	// The paper's Section 2 finding: comparable performance. Both accept a
	// solid majority of offered utilization at 0.5 load, and they land
	// within a modest band of each other.
	if aub.AcceptedRatio < 0.5 {
		t.Errorf("AUB accepted ratio %.3f unexpectedly low", aub.AcceptedRatio)
	}
	if ds.AcceptedRatio < 0.5 {
		t.Errorf("DS accepted ratio %.3f unexpectedly low", ds.AcceptedRatio)
	}
	if diff := math.Abs(aub.AcceptedRatio - ds.AcceptedRatio); diff > 0.35 {
		t.Errorf("AUB %.3f vs DS %.3f differ by %.3f — not comparable", aub.AcceptedRatio, ds.AcceptedRatio, diff)
	}

	out := RenderAblation(results)
	if !strings.Contains(out, "AUB") || !strings.Contains(out, "DS") {
		t.Errorf("render missing techniques:\n%s", out)
	}
}

func TestAblationDeterministic(t *testing.T) {
	opts := AblationOptions{Procs: 2, Tasks: 4, Horizon: 30 * time.Second, Seeds: 2}
	a, err := RunAblationAUBvsDS(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAblationAUBvsDS(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].AcceptedRatio != b[i].AcceptedRatio {
			t.Errorf("%s: %g vs %g across identical runs", a[i].Technique, a[i].AcceptedRatio, b[i].AcceptedRatio)
		}
	}
}
