package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/scenario"
)

// ScenarioOptions parameterizes one declarative scenario execution: which
// bindings run the spec, the live time compression, and an optional journal
// recording.
type ScenarioOptions struct {
	// Spec is the parsed scenario.
	Spec *scenario.Spec
	// Bindings lists the bindings to run, in order: scenario.BindingSim
	// and/or scenario.BindingLive. Default: both, sim first.
	Bindings []string
	// TimeScale overrides the live compression factor (zero uses the
	// spec's).
	TimeScale float64
	// RecordPath, when set, records the run to a journal file. Recording
	// requires exactly one binding — a journal captures one run.
	RecordPath string
}

// ScenarioReport is the execution's outcome across bindings.
type ScenarioReport struct {
	// Spec is the executed scenario.
	Spec *scenario.Spec
	// Results holds one entry per binding, in execution order.
	Results []*scenario.Result
	// RecordPath echoes the written journal, when recording.
	RecordPath string
}

// Passed reports whether every binding satisfied the invariant block.
func (r *ScenarioReport) Passed() bool {
	for _, res := range r.Results {
		if !res.Passed {
			return false
		}
	}
	return len(r.Results) > 0
}

// RunScenario executes a scenario spec against the requested bindings,
// recording a journal when asked. Execution errors abort; invariant
// violations do not — they are reported per binding so callers (the CLI,
// CI) decide the exit status from Passed.
func RunScenario(opts ScenarioOptions) (*ScenarioReport, error) {
	if opts.Spec == nil {
		return nil, fmt.Errorf("experiments: scenario: nil spec")
	}
	bindings := opts.Bindings
	if len(bindings) == 0 {
		bindings = []string{scenario.BindingSim, scenario.BindingLive}
	}
	for _, b := range bindings {
		if b != scenario.BindingSim && b != scenario.BindingLive {
			return nil, fmt.Errorf("experiments: scenario: unknown binding %q", b)
		}
	}
	if opts.RecordPath != "" && len(bindings) != 1 {
		return nil, fmt.Errorf("experiments: scenario: recording requires exactly one binding, got %d", len(bindings))
	}

	rep := &ScenarioReport{Spec: opts.Spec, RecordPath: opts.RecordPath}
	for _, b := range bindings {
		var rec *scenario.Recorder
		var recFile *os.File
		if opts.RecordPath != "" {
			h, err := scenario.RecordHeader(opts.Spec, b, opts.TimeScale)
			if err != nil {
				return nil, err
			}
			recFile, err = os.Create(opts.RecordPath)
			if err != nil {
				return nil, fmt.Errorf("experiments: scenario: %w", err)
			}
			rec = scenario.NewRecorder(recFile, h)
		}
		var res *scenario.Result
		var err error
		switch b {
		case scenario.BindingSim:
			res, err = scenario.RunSim(opts.Spec, rec)
		case scenario.BindingLive:
			res, err = scenario.RunLive(opts.Spec, opts.TimeScale, rec)
		}
		if recFile != nil {
			if cerr := recFile.Close(); err == nil && cerr != nil {
				err = cerr
			}
			if rerr := rec.Err(); err == nil && rerr != nil {
				err = rerr
			}
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: scenario %q on %s: %w", opts.Spec.Name, b, err)
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

// RenderScenario formats the report as a table plus per-binding verdicts.
func RenderScenario(rep *ScenarioReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario %q (%s, horizon %v, seed %d)\n",
		rep.Spec.Name, rep.Spec.Config, time.Duration(rep.Spec.Horizon), rep.Spec.Seed)
	if rep.Spec.Description != "" {
		fmt.Fprintf(&b, "  %s\n", rep.Spec.Description)
	}
	fmt.Fprintf(&b, "%-6s %8s %9s %9s %6s %7s %9s %6s %8s %7s %8s\n",
		"bind", "arrived", "released", "completed", "lost", "ratio", "missrate", "epoch", "watch-ev", "ledger", "verdict")
	for _, r := range rep.Results {
		ledger := "clean"
		if !r.LedgerClean {
			ledger = "BAD"
		}
		verdict := "PASS"
		if !r.Passed {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "%-6s %8d %9d %9d %6d %7.3f %9.4f %6d %8d %7s %8s\n",
			r.Binding, r.Arrived, r.Released, r.Completed, r.Lost, r.Ratio,
			r.MissRate, r.Epoch, r.WatchEvents, ledger, verdict)
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "       violation: %s\n", v)
		}
	}
	if rep.RecordPath != "" {
		fmt.Fprintf(&b, "journal recorded to %s\n", rep.RecordPath)
	}
	return b.String()
}

// RenderScenarioJSON emits the report as an indented JSON document.
func RenderScenarioJSON(rep *ScenarioReport) (string, error) {
	doc := struct {
		Experiment string             `json:"experiment"`
		Scenario   string             `json:"scenario"`
		Config     string             `json:"config"`
		Seed       int64              `json:"seed"`
		Passed     bool               `json:"passed"`
		Journal    string             `json:"journal,omitempty"`
		Results    []*scenario.Result `json:"results"`
	}{
		Experiment: "scenario",
		Scenario:   rep.Spec.Name,
		Config:     rep.Spec.Config,
		Seed:       rep.Spec.Seed,
		Passed:     rep.Passed(),
		Journal:    rep.RecordPath,
		Results:    rep.Results,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("experiments: encode scenario: %w", err)
	}
	return string(out), nil
}
