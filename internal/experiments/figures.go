// Package experiments regenerates the paper's evaluation artifacts: the
// accepted-utilization-ratio comparisons of Figures 5 and 6 over all 15
// valid strategy combinations, and the service overhead accounting of
// Figures 7 and 8. Each runner returns structured results and a renderer
// prints the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// FigureOptions parameterizes a Figure 5/6 style experiment.
type FigureOptions struct {
	// Sets is the number of random task sets to average over (the paper
	// uses 10).
	Sets int
	// Horizon is the per-run workload duration (the paper runs 5 minutes).
	Horizon time.Duration
	// LinkDelay and ACDelay configure the simulated communication and
	// manager-side processing delays; zero values use the defaults
	// calibrated from the paper's Figure 8 measurements.
	LinkDelay time.Duration
	ACDelay   time.Duration
	// Combos restricts the strategy combinations; nil runs all 15.
	Combos []core.Config
	// Workers bounds how many (combo, set) trials run concurrently. Zero or
	// one runs serially on the calling goroutine; negative values use one
	// worker per CPU. Every trial owns an independent SimSystem seeded from
	// its set number and results are assembled in (combo, set) order, so
	// the output is bit-identical for any worker count.
	Workers int
}

// withDefaults fills unset options.
func (o FigureOptions) withDefaults() FigureOptions {
	if o.Sets == 0 {
		o.Sets = 10
	}
	if o.Horizon == 0 {
		o.Horizon = 5 * time.Minute
	}
	if len(o.Combos) == 0 {
		o.Combos = core.AllCombinations()
	}
	return o
}

// ComboResult is the accepted utilization ratio of one strategy combination
// averaged over the task sets.
type ComboResult struct {
	// Combo is the AC_IR_LB tuple.
	Combo core.Config
	// Mean is the average accepted utilization ratio over all sets.
	Mean float64
	// PerSet holds the per-task-set ratios.
	PerSet []float64
	// Jobs is the total number of job arrivals simulated across the sets —
	// the denominator for jobs/sec perf-trajectory metrics.
	Jobs int64
}

// RunFigure5 reproduces Section 7.1: random balanced workloads over 5
// application processors, all 15 combinations, accepted utilization ratio
// averaged over the task sets.
func RunFigure5(opts FigureOptions) ([]ComboResult, error) {
	return runFigure(workload.Figure5Params, opts)
}

// RunFigure6 reproduces Section 7.2: imbalanced workloads with all home
// subtasks on three processors at synthetic utilization 0.7 and duplicates
// on the two spare processors.
func RunFigure6(opts FigureOptions) ([]ComboResult, error) {
	return runFigure(workload.Figure6Params, opts)
}

// runFigure fans every (combo, set) trial across the bounded worker pool
// and aggregates the ratios in deterministic (combo, set) order.
func runFigure(params func(set int) workload.Params, opts FigureOptions) ([]ComboResult, error) {
	opts = opts.withDefaults()
	workers := opts.Workers
	if workers < 0 {
		workers = ResolveWorkers(workers)
	}

	// One slot per trial, indexed combo-major so assembly is a simple walk.
	ratios := make([]float64, len(opts.Combos)*opts.Sets)
	jobs := make([]int64, len(ratios))
	err := runTrials(len(ratios), workers, func(i int) error {
		combo := opts.Combos[i/opts.Sets]
		set := i % opts.Sets
		p := params(set)
		tasks, err := workload.Generate(p)
		if err != nil {
			return fmt.Errorf("experiments: set %d: %w", set, err)
		}
		sim, err := core.NewSimSystem(core.SimConfig{
			Strategies: combo,
			NumProcs:   workload.MaxProc(tasks) + 1,
			LinkDelay:  opts.LinkDelay,
			ACDelay:    opts.ACDelay,
			Horizon:    opts.Horizon,
			Seed:       p.Seed ^ 0x5DEECE66D,
		}, tasks)
		if err != nil {
			return fmt.Errorf("experiments: combo %s set %d: %w", combo, set, err)
		}
		m := sim.Run()
		ratios[i] = m.AcceptedUtilizationRatio()
		jobs[i] = m.Total.Arrived
		return nil
	})
	if err != nil {
		return nil, err
	}

	results := make([]ComboResult, 0, len(opts.Combos))
	for c, combo := range opts.Combos {
		perSet := append([]float64(nil), ratios[c*opts.Sets:(c+1)*opts.Sets]...)
		var sum float64
		for _, r := range perSet {
			sum += r
		}
		var total int64
		for _, j := range jobs[c*opts.Sets : (c+1)*opts.Sets] {
			total += j
		}
		results = append(results, ComboResult{
			Combo:  combo,
			Mean:   sum / float64(len(perSet)),
			PerSet: perSet,
			Jobs:   total,
		})
	}
	return results, nil
}

// MeanOf returns the mean ratio of the combos whose tuple matches the
// pattern, where '*' in a position matches any strategy (e.g. "*_J_*").
func MeanOf(results []ComboResult, pattern string) float64 {
	parts := strings.Split(pattern, "_")
	var sum float64
	var n int
	for _, r := range results {
		have := strings.Split(r.Combo.String(), "_")
		match := len(parts) == len(have)
		for i := 0; match && i < len(parts); i++ {
			if parts[i] != "*" && parts[i] != have[i] {
				match = false
			}
		}
		if match {
			sum += r.Mean
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Best returns the combination with the highest mean ratio.
func Best(results []ComboResult) ComboResult {
	best := results[0]
	for _, r := range results[1:] {
		if r.Mean > best.Mean {
			best = r
		}
	}
	return best
}

// RenderFigure formats the results as the paper's bar figure: one row per
// combination with an ASCII bar scaled to [0, 1].
func RenderFigure(title string, results []ComboResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s %-7s %s\n", "combo", "ratio", "accepted utilization ratio")
	const width = 50
	for _, r := range results {
		n := int(r.Mean*width + 0.5)
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		fmt.Fprintf(&b, "%-8s %6.3f  |%s%s|\n",
			r.Combo, r.Mean, strings.Repeat("#", n), strings.Repeat(" ", width-n))
	}
	return b.String()
}

// RenderCSV emits the series as CSV (combo, mean, per-set columns) for
// external plotting.
func RenderCSV(results []ComboResult) string {
	var b strings.Builder
	sets := 0
	for _, r := range results {
		if len(r.PerSet) > sets {
			sets = len(r.PerSet)
		}
	}
	b.WriteString("combo,mean")
	for i := 0; i < sets; i++ {
		fmt.Fprintf(&b, ",set%d", i)
	}
	b.WriteByte('\n')
	for _, r := range results {
		fmt.Fprintf(&b, "%s,%.6f", r.Combo, r.Mean)
		for _, v := range r.PerSet {
			fmt.Fprintf(&b, ",%.6f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Ranked returns the results sorted by descending mean ratio (stable on
// combo name for ties).
func Ranked(results []ComboResult) []ComboResult {
	out := append([]ComboResult(nil), results...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Mean != out[j].Mean {
			return out[i].Mean > out[j].Mean
		}
		return out[i].Combo.String() < out[j].Combo.String()
	})
	return out
}
