package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/spec"
	"repro/internal/workload"
)

// ChurnOptions parameterizes the open-world churn sweep: random Figure 5
// workloads run under each strategy combination while tenants — small groups
// of tasks — join and leave the running binding on fixed schedules, the
// tenant-churn / rolling-fleet shape open CPS deployments actually see. Each
// join goes through AddTasks (EDMS re-assignment + ledger registration) and
// a SubmitBatch burst; each departure goes through RemoveTasks (ledger
// withdrawal). Every run finishes with the ledger invariant audit, and the
// sweep pins the open-world guarantee: zero admitted jobs lost across any
// number of task arrivals and departures.
type ChurnOptions struct {
	// Combos are the strategy combinations under churn. Default: T_N_N (the
	// minimal static configuration), T_T_T (the engine's default), and J_J_J
	// (fully dynamic).
	Combos []core.Config
	// Sets is the number of random task sets per combo (default 3).
	Sets int
	// Horizon is the workload duration (default 2 minutes).
	Horizon time.Duration
	// AddEvery is the interval between tenant joins (default Horizon/12).
	AddEvery time.Duration
	// RemoveEvery is the interval between tenant departures (default
	// Horizon/8): departures lag joins, so the task set grows and shrinks.
	RemoveEvery time.Duration
	// TenantTasks is the number of tasks per joining tenant (default 3).
	TenantTasks int
	// LinkDelay and ACDelay configure the simulated delays; zero uses the
	// calibrated defaults.
	LinkDelay time.Duration
	ACDelay   time.Duration
	// Workers bounds concurrent trials, as in FigureOptions.
	Workers int
}

// withDefaults fills unset options.
func (o ChurnOptions) withDefaults() ChurnOptions {
	if len(o.Combos) == 0 {
		o.Combos = []core.Config{
			{AC: core.StrategyPerTask, IR: core.StrategyNone, LB: core.StrategyNone},
			{AC: core.StrategyPerTask, IR: core.StrategyPerTask, LB: core.StrategyPerTask},
			{AC: core.StrategyPerJob, IR: core.StrategyPerJob, LB: core.StrategyPerJob},
		}
	}
	if o.Sets == 0 {
		o.Sets = 3
	}
	if o.Horizon == 0 {
		o.Horizon = 2 * time.Minute
	}
	if o.AddEvery == 0 {
		o.AddEvery = o.Horizon / 12
	}
	if o.RemoveEvery == 0 {
		o.RemoveEvery = o.Horizon / 8
	}
	if o.TenantTasks == 0 {
		o.TenantTasks = 3
	}
	return o
}

// ChurnResult is one (combo, set) trial's outcome.
type ChurnResult struct {
	// Combo and Set identify the trial.
	Combo core.Config
	Set   int
	// TasksAdded and TasksRemoved count the tasks that joined and left
	// mid-run; BatchSubmitted counts the arrivals injected through
	// SubmitBatch bursts at each join.
	TasksAdded     int
	TasksRemoved   int
	BatchSubmitted int
	// Arrived, Released, Skipped and Completed are the run totals across the
	// churning task set.
	Arrived, Released, Skipped, Completed int64
	// Lost is Released − Completed after the drain: admitted jobs that never
	// finished. The open-world protocol guarantees zero.
	Lost int64
	// Ratio is the run's accepted utilization ratio.
	Ratio float64
	// WatchEvents and WatchDropped are the lifecycle events observed (and
	// shed) by the trial's watch stream; OrderOK reports that the stream's
	// sequence numbers were strictly increasing.
	WatchEvents  int64
	WatchDropped int64
	OrderOK      bool
	// Wall is the wall-clock run time; JobsPerSec the throughput.
	Wall       time.Duration
	JobsPerSec float64
}

// tenantTasks synthesizes one joining tenant's task group: small one- or
// two-stage tasks (mostly aperiodic, the paper's open-environment shape)
// pinned to random processors, with deadlines in the Figure 5 range.
func tenantTasks(trial, tenant, count, numProcs int, rng *rand.Rand) ([]*sched.Task, []string) {
	tasks := make([]*sched.Task, 0, count)
	ids := make([]string, 0, count)
	for k := 0; k < count; k++ {
		id := fmt.Sprintf("tenant%d-%d-t%d", trial, tenant, k)
		deadline := time.Duration(100+rng.Intn(300)) * time.Millisecond
		stages := 1 + rng.Intn(2)
		t := &sched.Task{ID: id, Deadline: deadline}
		if rng.Intn(4) == 0 {
			t.Kind = sched.Periodic
			t.Period = deadline
		} else {
			t.Kind = sched.Aperiodic
			t.MeanInterarrival = 2 * deadline
		}
		util := 0.01 + 0.04*rng.Float64()
		for s := 0; s < stages; s++ {
			t.Subtasks = append(t.Subtasks, sched.Subtask{
				Index:     s,
				Exec:      time.Duration(util / float64(stages) * float64(deadline)),
				Processor: rng.Intn(numProcs),
			})
		}
		tasks = append(tasks, t)
		ids = append(ids, id)
	}
	return tasks, ids
}

// RunChurn executes the churn sweep: every (combo, set) trial fans over the
// worker pool, and each trial drives adds, removes and batch submissions at
// exact virtual times through the binding's At hook. A trial fails if any
// lifecycle call errors; ledger inconsistencies panic inside Run's audit.
func RunChurn(opts ChurnOptions) ([]ChurnResult, error) {
	opts = opts.withDefaults()
	for _, combo := range opts.Combos {
		if err := combo.Validate(); err != nil {
			return nil, err
		}
	}
	workers := opts.Workers
	if workers < 0 {
		workers = ResolveWorkers(workers)
	}
	total := len(opts.Combos) * opts.Sets
	results := make([]ChurnResult, total)
	err := runTrials(total, workers, func(trial int) error {
		combo := opts.Combos[trial/opts.Sets]
		set := trial % opts.Sets
		r, err := runChurnTrial(trial, combo, set, opts)
		if err != nil {
			return fmt.Errorf("experiments: churn %s set %d: %w", combo, set, err)
		}
		results[trial] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// runChurnTrial executes one churning simulation.
func runChurnTrial(trial int, combo core.Config, set int, opts ChurnOptions) (ChurnResult, error) {
	p := workload.Figure5Params(set)
	tasks, err := workload.Generate(p)
	if err != nil {
		return ChurnResult{}, err
	}
	numProcs := workload.MaxProc(tasks) + 1
	sim, err := core.NewSimSystem(core.SimConfig{
		Strategies: combo,
		NumProcs:   numProcs,
		LinkDelay:  opts.LinkDelay,
		ACDelay:    opts.ACDelay,
		Horizon:    opts.Horizon,
		Seed:       p.Seed ^ 0x5DEECE66D,
	}, tasks)
	if err != nil {
		return ChurnResult{}, err
	}

	// An always-on watch stream: the trial doubles as an ordering check on
	// the observation plane under churn.
	watch, err := sim.Watch(core.WatchOptions{Buffer: 1 << 16})
	if err != nil {
		return ChurnResult{}, err
	}
	var watchEvents atomic.Int64
	orderOK := atomic.Bool{}
	orderOK.Store(true)
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		var lastSeq int64
		for ev := range watch.Events() {
			if ev.Seq <= lastSeq {
				orderOK.Store(false)
			}
			lastSeq = ev.Seq
			watchEvents.Add(1)
		}
	}()

	res := ChurnResult{Combo: combo, Set: set}
	rng := rand.New(rand.NewSource(p.Seed ^ 0x9E3779B9))
	var tenants [][]string
	var cbErr error
	fail := func(err error) {
		if err != nil && cbErr == nil {
			cbErr = err
		}
	}
	tenant := 0
	for at := opts.AddEvery; at < opts.Horizon; at += opts.AddEvery {
		if err := sim.At(at, func() {
			ts, ids := tenantTasks(trial, tenant, opts.TenantTasks, numProcs, rng)
			tenant++
			if err := sim.AddTasks(ts); err != nil {
				fail(err)
				return
			}
			adms, err := sim.SubmitBatch(ids)
			if err != nil {
				fail(err)
				return
			}
			res.TasksAdded += len(ids)
			res.BatchSubmitted += len(adms)
			tenants = append(tenants, ids)
		}); err != nil {
			return res, err
		}
	}
	for at := opts.RemoveEvery; at < opts.Horizon; at += opts.RemoveEvery {
		if err := sim.At(at, func() {
			if len(tenants) == 0 {
				return
			}
			ids := tenants[0]
			tenants = tenants[1:]
			if err := sim.RemoveTasks(ids); err != nil {
				fail(err)
				return
			}
			res.TasksRemoved += len(ids)
		}); err != nil {
			return res, err
		}
	}

	start := time.Now()
	m := sim.Run() // the post-run ledger audit panics on inconsistency
	res.Wall = time.Since(start)
	if err := sim.Stop(); err != nil {
		return res, err
	}
	<-watchDone
	if cbErr != nil {
		return res, cbErr
	}

	res.Arrived = m.Total.Arrived
	res.Released = m.Total.Released
	res.Skipped = m.Total.Skipped
	res.Completed = m.Total.Completed
	res.Lost = m.Total.Released - m.Total.Completed
	res.Ratio = m.AcceptedUtilizationRatio()
	res.WatchEvents = watchEvents.Load()
	res.WatchDropped = watch.Dropped()
	res.OrderOK = orderOK.Load()
	if res.Wall > 0 {
		res.JobsPerSec = float64(res.Arrived) / res.Wall.Seconds()
	}
	return res, nil
}

// RenderChurn formats the sweep as a table.
func RenderChurn(title string, results []ChurnResult) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-8s %-4s %6s %6s %8s %9s %9s %6s %7s %9s %8s\n",
		"combo", "set", "added", "gone", "arrived", "released", "completed", "lost", "ratio", "watch-ev", "order")
	for _, r := range results {
		order := "ok"
		if !r.OrderOK {
			order = "BROKEN"
		}
		fmt.Fprintf(&b, "%-8s %-4d %6d %6d %8d %9d %9d %6d %7.3f %9d %8s\n",
			r.Combo, r.Set, r.TasksAdded, r.TasksRemoved, r.Arrived, r.Released,
			r.Completed, r.Lost, r.Ratio, r.WatchEvents, order)
	}
	return b.String()
}

// ChurnLiveOptions parameterizes the live churn smoke: a small real cluster
// (TCP loopback) that adds tenants, bursts arrivals at them, removes them
// again, and audits the admission ledger afterwards.
type ChurnLiveOptions struct {
	// Config is the strategy combination (default T_T_T).
	Config core.Config
	// Tenants is the number of joining tenants (default 2); TenantTasks the
	// tasks per tenant (default 2).
	Tenants     int
	TenantTasks int
	// Settle is the pause after each lifecycle phase, letting arrivals and
	// completions flow (default 150ms).
	Settle time.Duration
}

func (o ChurnLiveOptions) withDefaults() ChurnLiveOptions {
	if (o.Config == core.Config{}) {
		o.Config = core.Config{AC: core.StrategyPerTask, IR: core.StrategyPerTask, LB: core.StrategyPerTask}
	}
	if o.Tenants == 0 {
		o.Tenants = 2
	}
	if o.TenantTasks == 0 {
		o.TenantTasks = 2
	}
	if o.Settle == 0 {
		o.Settle = 150 * time.Millisecond
	}
	return o
}

// ChurnLiveResult is the live smoke's outcome.
type ChurnLiveResult struct {
	// Config is the combination under test.
	Config core.Config
	// TasksAdded and TasksRemoved count the tenant tasks cycled through the
	// running deployment; Epoch is the final reconfiguration epoch (one per
	// lifecycle delta).
	TasksAdded   int
	TasksRemoved int
	Epoch        int64
	// Arrived, Released, Skipped and Completed are the final counters.
	Arrived, Released, Skipped, Completed int64
	// Lost is Released − Completed after the drain (zero on success).
	Lost int64
	// LedgerClean reports the post-run ledger invariant audit.
	LedgerClean bool
	// WatchEvents counts lifecycle events observed on the live watch stream.
	WatchEvents int64
	// Wall is the smoke's wall-clock duration.
	Wall time.Duration
}

// RunChurnLive executes the live churn smoke on an in-process cluster.
func RunChurnLive(opts ChurnLiveOptions) (*ChurnLiveResult, error) {
	opts = opts.withDefaults()
	if err := opts.Config.Validate(); err != nil {
		return nil, err
	}
	base := []*sched.Task{
		{
			ID: "flow", Kind: sched.Periodic,
			Period: 60 * time.Millisecond, Deadline: 60 * time.Millisecond,
			Subtasks: []sched.Subtask{
				{Index: 0, Exec: 2 * time.Millisecond, Processor: 0, Replicas: []int{1}},
				{Index: 1, Exec: time.Millisecond, Processor: 1},
			},
		},
		{
			ID: "alert", Kind: sched.Aperiodic,
			Deadline: 50 * time.Millisecond, MeanInterarrival: 40 * time.Millisecond,
			Subtasks: []sched.Subtask{
				{Index: 0, Exec: time.Millisecond, Processor: 1},
			},
		},
	}
	w := spec.FromTasks("churn-live", 2, base)
	start := time.Now()
	c, err := cluster.Start(cluster.Options{Workload: w, Config: opts.Config, Seed: 11})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	watch, err := c.Watch(core.WatchOptions{Buffer: 1 << 14})
	if err != nil {
		return nil, err
	}
	var watchEvents atomic.Int64
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		for range watch.Events() {
			watchEvents.Add(1)
		}
	}()

	res := &ChurnLiveResult{Config: opts.Config}
	if _, err := c.SubmitBatch([]string{"flow", "alert", "alert"}); err != nil {
		return nil, err
	}
	time.Sleep(opts.Settle)

	var tenantIDs [][]string
	rng := rand.New(rand.NewSource(17))
	for n := 0; n < opts.Tenants; n++ {
		ts, ids := tenantTasks(0, n, opts.TenantTasks, 2, rng)
		if err := c.AddTasks(ts); err != nil {
			return nil, err
		}
		if _, err := c.SubmitBatch(ids); err != nil {
			return nil, err
		}
		res.TasksAdded += len(ids)
		tenantIDs = append(tenantIDs, ids)
		time.Sleep(opts.Settle)
	}
	for _, ids := range tenantIDs {
		if err := c.RemoveTasks(ids); err != nil {
			return nil, err
		}
		res.TasksRemoved += len(ids)
	}
	time.Sleep(opts.Settle)
	c.Drain(5 * time.Second)

	// Completions propagate through local Done events; settle until the
	// counters agree or the deadline passes.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap := c.Snapshot()
		if snap.Released == snap.Completed {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	snap := c.Snapshot()
	res.Arrived, res.Released, res.Skipped, res.Completed = snap.Arrived, snap.Released, snap.Skipped, snap.Completed
	res.Lost = snap.Released - snap.Completed
	res.Epoch = snap.Epoch
	ac, err := c.AC()
	if err != nil {
		return nil, err
	}
	res.LedgerClean = ac.AuditLedger() == nil
	watch.Cancel()
	<-watchDone
	res.WatchEvents = watchEvents.Load()
	res.Wall = time.Since(start)
	return res, nil
}

// RenderChurnLive formats the live smoke's outcome.
func RenderChurnLive(r *ChurnLiveResult) string {
	ledger := "clean"
	if !r.LedgerClean {
		ledger = "INCONSISTENT"
	}
	return fmt.Sprintf(
		"Live churn smoke (%s): %d tasks joined, %d left, epoch %d; arrived %d, released %d, completed %d, lost %d; ledger %s; %d watch events in %v\n",
		r.Config, r.TasksAdded, r.TasksRemoved, r.Epoch,
		r.Arrived, r.Released, r.Completed, r.Lost, ledger, r.WatchEvents, r.Wall.Round(time.Millisecond))
}

// churnJSON is the machine-readable form of one churn trial.
type churnJSON struct {
	Combo          string  `json:"combo"`
	Set            int     `json:"set"`
	TasksAdded     int     `json:"tasks_added"`
	TasksRemoved   int     `json:"tasks_removed"`
	BatchSubmitted int     `json:"batch_submitted"`
	Arrived        int64   `json:"arrived"`
	Released       int64   `json:"released"`
	Skipped        int64   `json:"skipped"`
	Completed      int64   `json:"completed"`
	Lost           int64   `json:"lost"`
	Ratio          float64 `json:"accepted_ratio"`
	WatchEvents    int64   `json:"watch_events"`
	WatchDropped   int64   `json:"watch_dropped"`
	OrderOK        bool    `json:"watch_order_ok"`
	WallSeconds    float64 `json:"wall_seconds"`
	JobsPerSec     float64 `json:"jobs_per_sec"`
}

// churnLiveJSON is the machine-readable form of the live smoke.
type churnLiveJSON struct {
	Config       string  `json:"config"`
	TasksAdded   int     `json:"tasks_added"`
	TasksRemoved int     `json:"tasks_removed"`
	Epoch        int64   `json:"epoch"`
	Arrived      int64   `json:"arrived"`
	Released     int64   `json:"released"`
	Completed    int64   `json:"completed"`
	Lost         int64   `json:"lost"`
	LedgerClean  bool    `json:"ledger_clean"`
	WatchEvents  int64   `json:"watch_events"`
	WallSeconds  float64 `json:"wall_seconds"`
}

// RenderChurnJSON emits the sweep (and, when non-nil, the live smoke) as an
// indented JSON document for the CI perf-trajectory artifact.
func RenderChurnJSON(results []ChurnResult, liveSmoke *ChurnLiveResult) (string, error) {
	doc := struct {
		Experiment string         `json:"experiment"`
		Results    []churnJSON    `json:"results"`
		Live       *churnLiveJSON `json:"live,omitempty"`
	}{Experiment: "churn"}
	for _, r := range results {
		doc.Results = append(doc.Results, churnJSON{
			Combo:          r.Combo.String(),
			Set:            r.Set,
			TasksAdded:     r.TasksAdded,
			TasksRemoved:   r.TasksRemoved,
			BatchSubmitted: r.BatchSubmitted,
			Arrived:        r.Arrived,
			Released:       r.Released,
			Skipped:        r.Skipped,
			Completed:      r.Completed,
			Lost:           r.Lost,
			Ratio:          r.Ratio,
			WatchEvents:    r.WatchEvents,
			WatchDropped:   r.WatchDropped,
			OrderOK:        r.OrderOK,
			WallSeconds:    r.Wall.Seconds(),
			JobsPerSec:     r.JobsPerSec,
		})
	}
	if liveSmoke != nil {
		doc.Live = &churnLiveJSON{
			Config:       liveSmoke.Config.String(),
			TasksAdded:   liveSmoke.TasksAdded,
			TasksRemoved: liveSmoke.TasksRemoved,
			Epoch:        liveSmoke.Epoch,
			Arrived:      liveSmoke.Arrived,
			Released:     liveSmoke.Released,
			Completed:    liveSmoke.Completed,
			Lost:         liveSmoke.Lost,
			LedgerClean:  liveSmoke.LedgerClean,
			WatchEvents:  liveSmoke.WatchEvents,
			WallSeconds:  liveSmoke.Wall.Seconds(),
		}
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("experiments: encode churn: %w", err)
	}
	return string(out), nil
}
