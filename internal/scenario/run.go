// Scenario execution and replay are a deterministic-replay surface: a sim
// run of a given spec is bit-reproducible, and replay must re-derive it.
//
//rtmw:deterministic file
package scenario

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/autopilot"
	"repro/internal/cluster"
	"repro/internal/core"
	wspec "repro/internal/spec"
	"repro/internal/workload"
)

// Binding names for Result.Binding.
const (
	BindingSim  = "sim"
	BindingLive = "live"
)

// Result is one scenario execution's outcome on one binding, including the
// invariant verdict.
type Result struct {
	// Scenario, Binding, Config, Horizon and Seed identify the run.
	Scenario string         `json:"scenario"`
	Binding  string         `json:"binding"`
	Config   string         `json:"config"`
	Horizon  wspec.Duration `json:"horizon"`
	Seed     int64          `json:"seed"`
	// TimeScale is the live compression factor (zero on the simulation).
	TimeScale float64 `json:"time_scale,omitempty"`
	// Ops is the compiled timeline length; FilteredArrivals counts arrivals
	// dropped because their task was not active (not yet added, or already
	// removed) when they fired.
	Ops              int `json:"ops"`
	FilteredArrivals int `json:"filtered_arrivals"`
	// Arrived through Lost are the run totals; Lost is Released − Completed
	// after the drain.
	Arrived   int64 `json:"arrived"`
	Released  int64 `json:"released"`
	Skipped   int64 `json:"skipped"`
	Completed int64 `json:"completed"`
	Missed    int64 `json:"missed"`
	Lost      int64 `json:"lost"`
	// Ratio is the accepted utilization ratio on the simulation and the
	// released/arrived count ratio on the live binding (whose counters do
	// not carry utilizations).
	Ratio float64 `json:"ratio"`
	// MissRate is the deadline-miss fraction over completed jobs.
	MissRate float64 `json:"miss_rate"`
	// Epoch is the final reconfiguration epoch.
	Epoch int64 `json:"epoch"`
	// WatchEvents, WatchDropped and WatchOrdered describe the run's watch
	// stream; LedgerClean the post-run admission-ledger audit.
	WatchEvents  int64 `json:"watch_events"`
	WatchDropped int64 `json:"watch_dropped"`
	WatchOrdered bool  `json:"watch_ordered"`
	LedgerClean  bool  `json:"ledger_clean"`
	// Wall is the execution's wall-clock time.
	Wall time.Duration `json:"wall_ns"`
	// Actuations, RegimeChanges and Decisions describe the autopilot when
	// the spec enables it: total Reconfigure actuations, classified regime
	// transitions, and the controller's decision journal.
	Actuations    int64                `json:"actuations,omitempty"`
	RegimeChanges int64                `json:"regime_changes,omitempty"`
	Decisions     []autopilot.Decision `json:"decisions,omitempty"`
	// MetricsJSON is the sim run's canonical metrics document — the
	// byte-identity artifact of the determinism guarantee. Excluded from
	// the marshaled result (the scenario JSON output stays compact).
	MetricsJSON []byte `json:"-"`
	// Violations lists every invariant the run broke; Passed is their
	// absence.
	Violations []string `json:"violations,omitempty"`
	Passed     bool     `json:"passed"`
}

// evaluate applies the spec's invariant block to a finished run, returning
// the violations. Live runs use the block's live overrides where present.
func evaluate(inv *Invariants, binding string, r *Result) []string {
	var v []string
	if inv.ZeroAdmittedLoss && r.Lost != 0 {
		v = append(v, fmt.Sprintf("zeroAdmittedLoss: %d admitted jobs lost (released %d, completed %d)", r.Lost, r.Released, r.Completed))
	}
	if inv.LedgerAudit && !r.LedgerClean {
		v = append(v, "ledgerAudit: admission ledger inconsistent after run")
	}
	if inv.WatchOrdering && !r.WatchOrdered {
		v = append(v, "watchOrdering: watch stream delivered out-of-order sequence numbers")
	}
	maxMiss := inv.MaxMissRate
	minArrived := inv.MinArrived
	if binding == BindingLive && inv.Live != nil {
		if inv.Live.MaxMissRate != nil {
			maxMiss = inv.Live.MaxMissRate
		}
		if inv.Live.MinArrived != nil {
			minArrived = *inv.Live.MinArrived
		}
	}
	if maxMiss != nil && r.MissRate > *maxMiss {
		v = append(v, fmt.Sprintf("maxMissRate: miss rate %.4f exceeds ceiling %.4f", r.MissRate, *maxMiss))
	}
	if minArrived > 0 && r.Arrived < minArrived {
		v = append(v, fmt.Sprintf("minArrived: only %d arrivals, expected at least %d", r.Arrived, minArrived))
	}
	if inv.MaxWatchDropped != nil && r.WatchDropped > *inv.MaxWatchDropped {
		v = append(v, fmt.Sprintf("maxWatchDropped: %d events dropped, cap %d", r.WatchDropped, *inv.MaxWatchDropped))
	}
	maxAct := inv.MaxActuations
	if binding == BindingLive && inv.Live != nil && inv.Live.MaxActuations != nil {
		maxAct = inv.Live.MaxActuations
	}
	if maxAct != nil && r.Actuations > *maxAct {
		v = append(v, fmt.Sprintf("maxActuations: autopilot actuated %d times, cap %d", r.Actuations, *maxAct))
	}
	return v
}

// watchProbe consumes a binding's watch stream concurrently: it counts
// events and deadline misses, checks strict Seq ordering, and forwards
// every event to the recorder when one is attached.
type watchProbe struct {
	stream  *core.WatchStream
	events  atomic.Int64
	misses  atomic.Int64
	ordered atomic.Bool
	done    chan struct{}
}

func newWatchProbe(stream *core.WatchStream, rec *Recorder) *watchProbe {
	p := &watchProbe{stream: stream, done: make(chan struct{})}
	p.ordered.Store(true)
	go func() {
		defer close(p.done)
		var lastSeq int64
		for ev := range stream.Events() {
			if ev.Seq <= lastSeq {
				p.ordered.Store(false)
			}
			lastSeq = ev.Seq
			p.events.Add(1)
			if ev.Kind == core.WatchDeadlineMiss {
				p.misses.Add(1)
			}
			if rec != nil {
				rec.Event(ev)
			}
		}
	}()
	return p
}

// finish cancels the stream, waits for the consumer, and fills the result's
// watch fields.
func (p *watchProbe) finish(r *Result) {
	p.stream.Cancel()
	<-p.done
	r.WatchEvents = p.events.Load()
	r.WatchDropped = p.stream.Dropped()
	r.WatchOrdered = p.ordered.Load()
}

// scenarioWatchBuffer sizes the run's watch stream: scenarios burst tens of
// thousands of lifecycle events, and a recording run must not shed any.
const scenarioWatchBuffer = 1 << 16

// RunSim executes the scenario on the deterministic simulation binding.
// Arrivals are open-loop (ExternalArrivals), driven entirely by the
// compiled timeline through At callbacks, so two runs of the same spec are
// identical event-for-event. When rec is non-nil the applied (post-filter)
// ops and the watch stream are recorded.
func RunSim(s *Spec, rec *Recorder) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c, err := compile(s)
	if err != nil {
		return nil, err
	}
	cfg, err := core.ParseConfig(s.Config)
	if err != nil {
		return nil, err
	}
	sim, err := core.NewSimSystem(core.SimConfig{
		Strategies:       cfg,
		NumProcs:         c.procs,
		Horizon:          time.Duration(s.Horizon),
		Seed:             s.Seed,
		ExternalArrivals: true,
	}, c.tasks)
	if err != nil {
		return nil, err
	}

	stream, err := sim.Watch(core.WatchOptions{Buffer: scenarioWatchBuffer})
	if err != nil {
		return nil, err
	}
	probe := newWatchProbe(stream, rec)

	res := &Result{
		Scenario: s.Name, Binding: BindingSim, Config: s.Config,
		Horizon: s.Horizon, Seed: s.Seed, Ops: len(c.ops),
	}
	active := make(map[string]bool, len(c.tasks))
	for _, t := range c.tasks {
		active[t.ID] = true
	}
	var cbErr error
	fail := func(err error) {
		if err != nil && cbErr == nil {
			cbErr = err
		}
	}
	for _, op := range c.ops {
		op := op
		var fn func()
		switch op.Kind {
		case InjectAddTasks:
			fn = func() {
				added, err := injectionTasks(Injection{Kind: InjectAddTasks, Tasks: op.Add}, c.procs)
				if err != nil {
					fail(err)
					return
				}
				if rec != nil {
					rec.Op(JournalOp{At: wspec.Duration(op.At), Op: InjectAddTasks, Add: op.Add})
				}
				if err := sim.AddTasks(added); err != nil {
					fail(err)
					return
				}
				for _, t := range added {
					active[t.ID] = true
				}
			}
		case InjectReconfigure:
			fn = func() {
				to, err := core.ParseConfig(op.To)
				if err != nil {
					fail(err)
					return
				}
				if rec != nil {
					rec.Op(JournalOp{At: wspec.Duration(op.At), Op: InjectReconfigure, To: op.To})
				}
				if _, err := sim.Reconfigure(to); err != nil {
					fail(err)
				}
			}
		case InjectKillNode, InjectRecoverNode:
			// The simulation has no node model: a node fault is recorded as a
			// timeline marker and otherwise ignored. Run the spec on the live
			// binding to exercise the failure path.
			fn = func() {
				if rec != nil {
					node := op.Node
					rec.Op(JournalOp{At: wspec.Duration(op.At), Op: op.Kind, Node: &node})
				}
			}
		default:
			fn = func() {
				_, err := applyOp(sim, op, active, res, rec)
				fail(err)
			}
		}
		if err := sim.At(op.At, fn); err != nil {
			return nil, err
		}
	}

	// The autopilot attaches after the timeline is scheduled, so at any
	// shared instant its decision tick runs after that instant's arrivals —
	// the controller sees the freshest window, and a recorded actuation
	// lands after the same-instant ops in the journal, which is exactly the
	// order Replay re-schedules.
	var ap *autopilot.Autopilot
	if s.Autopilot != nil && s.Autopilot.Enabled {
		opts, err := s.Autopilot.options()
		if err != nil {
			return nil, err
		}
		opts.OnAction = func(at time.Duration, from, to core.Config) {
			if rec != nil {
				rec.Op(JournalOp{At: wspec.Duration(at), Op: InjectReconfigure, To: to.String()})
			}
		}
		// An overload shed runs on the engine thread (inside the tick
		// callback), so retiring the victims from the active set here is
		// race-free, and later timeline arrivals for them are filtered
		// exactly as a remove_tasks injection's would be.
		opts.OnShed = func(at time.Duration, ids []string) {
			if rec != nil {
				rec.Op(JournalOp{At: wspec.Duration(at), Op: InjectRemoveTasks, IDs: ids})
			}
			for _, id := range ids {
				active[id] = false
			}
		}
		if ap, err = autopilot.New(opts); err != nil {
			return nil, err
		}
		if err := ap.AttachSim(sim, time.Duration(s.Autopilot.At), time.Duration(s.Horizon)); err != nil {
			return nil, err
		}
	}

	start := time.Now()
	m := sim.Run() // panics on ledger inconsistency; audited again below
	res.Wall = time.Since(start)
	ledgerErr := sim.Controller().Ledger().CheckInvariants()
	snap := sim.Snapshot()
	if err := sim.Stop(); err != nil {
		return nil, err
	}
	probe.finish(res)
	if cbErr != nil {
		return nil, cbErr
	}

	res.Arrived = m.Total.Arrived
	res.Released = m.Total.Released
	res.Skipped = m.Total.Skipped
	res.Completed = m.Total.Completed
	res.Missed = m.Total.Missed
	res.Lost = m.Total.Released - m.Total.Completed
	res.Ratio = m.AcceptedUtilizationRatio()
	res.MissRate = m.Total.MissRatio()
	res.Epoch = snap.Epoch
	res.LedgerClean = ledgerErr == nil
	if ap != nil {
		st := ap.Stats()
		res.Actuations = st.Actuations
		res.RegimeChanges = st.RegimeChanges
		res.Decisions = ap.Journal()
	}
	if res.MetricsJSON, err = CanonicalMetricsJSON(s.Name, m); err != nil {
		return nil, err
	}
	res.Violations = evaluate(s.Invariants, BindingSim, res)
	res.Passed = len(res.Violations) == 0
	return res, nil
}

// binding is the op surface applyOp drives — the subset of the unified
// Binding interface both executors share.
type binding interface {
	SubmitBatch(ids []string) ([]core.Admission, error)
	RemoveTasks(ids []string) error
}

// applyOp applies one timeline op to a binding, filtering against the
// active task set, recording the post-filter op, and updating the result's
// counters. AddTasks and Reconfigure differ per binding (task scaling,
// config types), so the callers handle those kinds before delegating here.
func applyOp(b binding, op Op, active map[string]bool, res *Result, rec *Recorder) (bool, error) {
	switch op.Kind {
	case OpSubmit:
		ids := make([]string, 0, len(op.Tasks))
		for _, id := range op.Tasks {
			if active[id] {
				ids = append(ids, id)
			} else {
				res.FilteredArrivals++
			}
		}
		if len(ids) == 0 {
			return false, nil
		}
		if rec != nil {
			rec.Op(JournalOp{At: wspec.Duration(op.At), Op: OpSubmit, Tasks: ids})
		}
		if _, err := b.SubmitBatch(ids); err != nil {
			return false, err
		}
		return true, nil
	case InjectRemoveTasks:
		ids := make([]string, 0, len(op.IDs))
		for _, id := range op.IDs {
			if active[id] {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			return false, nil
		}
		if rec != nil {
			rec.Op(JournalOp{At: wspec.Duration(op.At), Op: InjectRemoveTasks, IDs: ids})
		}
		if err := b.RemoveTasks(ids); err != nil {
			return false, err
		}
		for _, id := range ids {
			delete(active, id)
		}
		return true, nil
	}
	return false, fmt.Errorf("scenario: applyOp: unexpected op kind %q", op.Kind)
}

// RunLive executes the scenario on the live loopback cluster. The workload
// and every joining task are compressed by the time-scale factor (zero
// means the spec's setting), the timeline plays back against the wall clock
// at the same compression, and the run drains and settles before the
// invariant check. When rec is non-nil, ops are recorded in the scenario's
// unscaled virtual timebase so the journal replays into the simulation.
func RunLive(s *Spec, timeScale float64, rec *Recorder) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c, err := compile(s)
	if err != nil {
		return nil, err
	}
	cfg, err := core.ParseConfig(s.Config)
	if err != nil {
		return nil, err
	}
	scale := timeScale
	if scale <= 0 {
		scale = s.timeScale()
	}

	w := wspec.FromTasks(s.Name, c.procs, workload.Scale(c.tasks, 1/scale))
	start := time.Now()
	cl, err := cluster.Start(cluster.Options{Workload: w, Config: cfg, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	stream, err := cl.Watch(core.WatchOptions{Buffer: scenarioWatchBuffer})
	if err != nil {
		return nil, err
	}
	probe := newWatchProbe(stream, rec)

	res := &Result{
		Scenario: s.Name, Binding: BindingLive, Config: s.Config,
		Horizon: s.Horizon, Seed: s.Seed, TimeScale: scale, Ops: len(c.ops),
	}
	active := make(map[string]bool, len(c.tasks))
	for _, t := range c.tasks {
		active[t.ID] = true
	}

	base := time.Now()

	// The live controller runs on the wall clock: options scale by the same
	// compression as the workload, and recorded actuations convert back to
	// the scenario timebase so a live journal replays into the simulation.
	var ap *autopilot.Autopilot
	if s.Autopilot != nil && s.Autopilot.Enabled {
		opts, err := s.Autopilot.options()
		if err != nil {
			return nil, err
		}
		opts = opts.Scale(scale)
		// Shedding is sim-only in the declarative runner: this loop owns the
		// active-task set, and the controller goroutine removing tasks
		// mid-timeline would race it (see AutopilotSpec.OverloadShed).
		opts.OverloadShed = nil
		baseNano := time.Duration(base.UnixNano())
		opts.OnAction = func(at time.Duration, from, to core.Config) {
			if rec != nil {
				rec.Op(JournalOp{At: wspec.Duration(float64(at-baseNano) * scale), Op: InjectReconfigure, To: to.String()})
			}
		}
		if ap, err = autopilot.New(opts); err != nil {
			return nil, err
		}
		if err := ap.Start(cl); err != nil {
			return nil, err
		}
		defer ap.Stop()
	}

	for _, op := range c.ops {
		wall := base.Add(time.Duration(float64(op.At) / scale))
		if d := time.Until(wall); d > 0 {
			time.Sleep(d)
		}
		switch op.Kind {
		case InjectAddTasks:
			added, err := injectionTasks(Injection{Kind: InjectAddTasks, Tasks: op.Add}, c.procs)
			if err != nil {
				return nil, err
			}
			if rec != nil {
				rec.Op(JournalOp{At: wspec.Duration(op.At), Op: InjectAddTasks, Add: op.Add})
			}
			if err := cl.AddTasks(workload.Scale(added, 1/scale)); err != nil {
				return nil, err
			}
			for _, t := range added {
				active[t.ID] = true
			}
		case InjectReconfigure:
			to, err := core.ParseConfig(op.To)
			if err != nil {
				return nil, err
			}
			if rec != nil {
				rec.Op(JournalOp{At: wspec.Duration(op.At), Op: InjectReconfigure, To: op.To})
			}
			if _, err := cl.Reconfigure(to); err != nil {
				return nil, err
			}
		case InjectKillNode:
			// Kill the node abruptly, then run the failover synchronously so
			// the timeline's ordering stays deterministic: every later op sees
			// the post-failover placement. Tasks the failover withdrew (no
			// surviving replica) leave the active set, so their remaining
			// arrivals are filtered rather than submitted into an error.
			if rec != nil {
				node := op.Node
				rec.Op(JournalOp{At: wspec.Duration(op.At), Op: InjectKillNode, Node: &node})
			}
			if err := cl.KillNode(op.Node); err != nil {
				return nil, err
			}
			report, err := cl.Failover(op.Node)
			if err != nil {
				return nil, err
			}
			for _, id := range report.Withdrawn {
				delete(active, id)
			}
		case InjectRecoverNode:
			if rec != nil {
				node := op.Node
				rec.Op(JournalOp{At: wspec.Duration(op.At), Op: InjectRecoverNode, Node: &node})
			}
			if err := cl.RecoverNode(op.Node); err != nil {
				return nil, err
			}
		default:
			if _, err := applyOp(cl, op, active, res, rec); err != nil {
				return nil, err
			}
		}
	}

	// Play out the remaining horizon, then drain and settle: completions
	// propagate through local Done events, so wait until the released and
	// completed counters agree (or the deadline passes — counted as loss).
	if d := time.Until(base.Add(time.Duration(float64(time.Duration(s.Horizon)) / scale))); d > 0 {
		time.Sleep(d)
	}
	// Halt the controller at the horizon so the drain's emptying queues
	// don't read as one more regime change.
	if ap != nil {
		ap.Stop()
		st := ap.Stats()
		res.Actuations = st.Actuations
		res.RegimeChanges = st.RegimeChanges
		res.Decisions = ap.Journal()
	}
	cl.Drain(5 * time.Second)
	settleDeadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(settleDeadline) {
		snap := cl.Snapshot()
		if snap.Released == snap.Completed {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	res.Wall = time.Since(start)

	snap := cl.Snapshot()
	res.Arrived = snap.Arrived
	res.Released = snap.Released
	res.Skipped = snap.Skipped
	res.Completed = snap.Completed
	res.Lost = snap.Released - snap.Completed
	res.Epoch = snap.Epoch
	if snap.Arrived > 0 {
		res.Ratio = float64(snap.Released) / float64(snap.Arrived)
	}
	// The live audit covers the active ledger and the warm-standby mirror:
	// replication is synchronous on the manager's local channel, so a clean
	// run must leave both consistent.
	res.LedgerClean = cl.AuditAdmissionState() == nil
	probe.finish(res)
	res.Missed = probe.misses.Load()
	if res.Completed > 0 {
		res.MissRate = float64(res.Missed) / float64(res.Completed)
	}
	res.Violations = evaluate(s.Invariants, BindingLive, res)
	res.Passed = len(res.Violations) == 0
	return res, nil
}
