// Package scenario is the declarative scenario engine: workload scenarios —
// arrival shapes, mid-run injections and expected-invariant blocks — are
// specified as JSON files and executed against either middleware binding
// (the deterministic simulation or the live loopback cluster) from the same
// spec, replacing the bespoke Go harness each experiment used to need.
//
// A spec composes four layers:
//
//   - a workload (one of the paper's random task sets, or inline tasks);
//   - arrival shapes per task group (flash crowd, diurnal tide, MMPP
//     bursts, correlated multi-task spikes, steady Poisson, or the task's
//     natural process), compiled to one deterministic arrival timeline;
//   - mid-run injections (AddTasks/RemoveTasks churn, Reconfigure swaps,
//     submit storms) at exact scenario times;
//   - an invariant block the run must satisfy (zero admitted-job loss,
//     deadline-miss-rate ceilings, a clean ledger audit, watch-stream
//     ordering), evaluated after the drain.
//
// Because the compiled timeline is deterministic given the spec's seed, a
// simulation run of a scenario is bit-reproducible, and any run — sim or
// live — can be recorded to a journal (the input timeline plus the observed
// watch stream) and replayed into the simulation offline; see journal.go.
//
//rtmw:deterministic file
package scenario

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/autopilot"
	"repro/internal/core"
	"repro/internal/sched"
	wspec "repro/internal/spec"
	"repro/internal/workload"
)

// Typed spec-rejection errors, discriminated with errors.Is. Every
// validation failure wraps ErrSpec; the specific sentinels mark the failure
// classes tools branch on.
var (
	// ErrSpec marks any invalid scenario specification.
	ErrSpec = errors.New("invalid scenario spec")
	// ErrUnknownShape marks an arrival block whose shape kind is not one of
	// the workload package's generators.
	ErrUnknownShape = fmt.Errorf("%w: unknown arrival shape", ErrSpec)
	// ErrUnknownInjection marks an injection whose kind is not add_tasks,
	// remove_tasks, reconfigure, submit_storm, kill_node or recover_node.
	ErrUnknownInjection = fmt.Errorf("%w: unknown injection kind", ErrSpec)
	// ErrMissingInvariants marks a spec with no invariant block (or an empty
	// one): a scenario that asserts nothing is a workload generator, not a
	// test, so the engine refuses it.
	ErrMissingInvariants = fmt.Errorf("%w: missing invariant block", ErrSpec)
)

// Injection kinds.
const (
	InjectAddTasks    = "add_tasks"
	InjectRemoveTasks = "remove_tasks"
	InjectReconfigure = "reconfigure"
	InjectSubmitStorm = "submit_storm"
	InjectKillNode    = "kill_node"
	InjectRecoverNode = "recover_node"
)

// Spec is one declarative scenario. Durations use the workload
// specification's human-readable encoding ("250ms", "30s").
type Spec struct {
	// Name labels the scenario in results and journals.
	Name string `json:"name"`
	// Description documents intent; the engine ignores it.
	Description string `json:"description,omitempty"`
	// Config is the starting AC_IR_LB strategy combination (e.g. "T_T_T").
	Config string `json:"config"`
	// Horizon is the scenario length in scenario (virtual) time; arrivals
	// and injections all land within it, and the run drains afterwards.
	Horizon wspec.Duration `json:"horizon"`
	// Seed makes timeline generation deterministic.
	Seed int64 `json:"seed"`
	// Workload selects the task set.
	Workload WorkloadRef `json:"workload"`
	// Arrivals maps task groups to arrival shapes. Tasks no block claims
	// follow their natural arrival process.
	Arrivals []ArrivalBlock `json:"arrivals,omitempty"`
	// Injections are the mid-run operations.
	Injections []Injection `json:"injections,omitempty"`
	// Invariants is the expected-invariant block; required.
	Invariants *Invariants `json:"invariants"`
	// Autopilot enables the closed-loop controller for the run.
	Autopilot *AutopilotSpec `json:"autopilot,omitempty"`
	// Live tunes the live-binding execution.
	Live LiveSettings `json:"live,omitempty"`
}

// WorkloadRef selects the scenario's task set: exactly one field must be
// set.
type WorkloadRef struct {
	// Figure5 and Figure6 pick one of the paper's random task sets by set
	// index (Sections 7.1 and 7.2).
	Figure5 *int `json:"figure5,omitempty"`
	Figure6 *int `json:"figure6,omitempty"`
	// Inline embeds an explicit workload specification.
	Inline *wspec.Workload `json:"inline,omitempty"`
}

// ArrivalBlock assigns one arrival shape to a group of tasks.
type ArrivalBlock struct {
	// Tasks names the group. Empty means "every task not named by another
	// block" (at most one such default block is allowed). Names may also
	// reference tasks an add_tasks injection introduces; their arrivals
	// before the join are filtered out (and counted) at execution.
	Tasks []string `json:"tasks,omitempty"`
	// Shape is the arrival-shape parameterization.
	Shape ShapeSpec `json:"shape"`
}

// ShapeSpec is the JSON form of workload.Shape; rates are arrivals per
// second of scenario time.
type ShapeSpec struct {
	Kind       string         `json:"kind"`
	Rate       float64        `json:"rate,omitempty"`
	Peak       float64        `json:"peak,omitempty"`
	At         wspec.Duration `json:"at,omitempty"`
	Ramp       wspec.Duration `json:"ramp,omitempty"`
	Hold       wspec.Duration `json:"hold,omitempty"`
	Period     wspec.Duration `json:"period,omitempty"`
	DwellBase  wspec.Duration `json:"dwellBase,omitempty"`
	DwellBurst wspec.Duration `json:"dwellBurst,omitempty"`
	Every      wspec.Duration `json:"every,omitempty"`
	Burst      int            `json:"burst,omitempty"`
}

// shape converts to the workload package's generator parameterization.
func (s ShapeSpec) shape() workload.Shape {
	return workload.Shape{
		Kind:       workload.ShapeKind(s.Kind),
		Rate:       s.Rate,
		Peak:       s.Peak,
		At:         time.Duration(s.At),
		Ramp:       time.Duration(s.Ramp),
		Hold:       time.Duration(s.Hold),
		Period:     time.Duration(s.Period),
		DwellBase:  time.Duration(s.DwellBase),
		DwellBurst: time.Duration(s.DwellBurst),
		Every:      time.Duration(s.Every),
		Burst:      s.Burst,
	}
}

// Injection is one mid-run operation at an exact scenario time.
type Injection struct {
	// At is the scenario time of the operation (within the horizon).
	At wspec.Duration `json:"at"`
	// Kind is add_tasks, remove_tasks, reconfigure, submit_storm, kill_node
	// or recover_node.
	Kind string `json:"kind"`
	// Tasks are the joining tasks (add_tasks).
	Tasks []wspec.TaskSpec `json:"tasks,omitempty"`
	// IDs name the departing tasks (remove_tasks) or the storm's targets
	// (submit_storm).
	IDs []string `json:"ids,omitempty"`
	// To is the target combination (reconfigure).
	To string `json:"to,omitempty"`
	// Count is the storm's arrivals per named task (default 1).
	Count int `json:"count,omitempty"`
	// Node is the target processor (kill_node, recover_node). On the live
	// binding a kill abruptly terminates the processor's node and runs the
	// zero-loss failover synchronously; a recover replaces it with a fresh
	// node. The simulation binding has no node model and records both as
	// timeline no-ops.
	Node *int `json:"node,omitempty"`
}

// AutopilotSpec enables and tunes the closed-loop controller
// (internal/autopilot) for a scenario run. Durations and rates are in
// scenario time; the live runner scales them by the spec's timeScale. Unset
// fields take the controller's defaults.
type AutopilotSpec struct {
	// Enabled turns the controller on.
	Enabled bool `json:"enabled"`
	// At is when the controller attaches (sim binding; the live runner
	// starts the controller with the run). Default 0.
	At wspec.Duration `json:"at,omitempty"`
	// Tick is the decision cadence; Window the estimator window.
	Tick   wspec.Duration `json:"tick,omitempty"`
	Window wspec.Duration `json:"window,omitempty"`
	// Dwell and Cooldown are the no-flap hysteresis: minimum regime
	// stability before acting, and the minimum gap between actuations.
	Dwell    wspec.Duration `json:"dwell,omitempty"`
	Cooldown wspec.Duration `json:"cooldown,omitempty"`
	// MaxActuations hard-caps total actuations (0 = unbounded).
	MaxActuations int64 `json:"maxActuations,omitempty"`
	// Calm, Burst and Overload are the policy table's target configs
	// (AC_IR_LB tuples).
	Calm     string `json:"calm,omitempty"`
	Burst    string `json:"burst,omitempty"`
	Overload string `json:"overload,omitempty"`
	// RateHigh/RateLow are absolute aggregate arrival-rate thresholds
	// (arrivals/sec of scenario time); BurstEnter/BurstExit the per-task
	// MMPP fit multipliers; MissHigh/RejectHigh the overload ceilings.
	RateHigh   float64 `json:"rateHigh,omitempty"`
	RateLow    float64 `json:"rateLow,omitempty"`
	BurstEnter float64 `json:"burstEnter,omitempty"`
	BurstExit  float64 `json:"burstExit,omitempty"`
	MissHigh   float64 `json:"missHigh,omitempty"`
	RejectHigh float64 `json:"rejectHigh,omitempty"`
	// OverloadShed names tasks the controller removes (once) when it first
	// actuates in the overload regime. Simulation binding only: the live
	// runner's timeline loop owns the active-task bookkeeping, so it strips
	// this field rather than race the controller goroutine against it.
	OverloadShed []string `json:"overloadShed,omitempty"`
}

// options converts the spec block to controller options (scenario timebase).
func (a *AutopilotSpec) options() (autopilot.Options, error) {
	o := autopilot.Options{
		Tick:          time.Duration(a.Tick),
		Window:        time.Duration(a.Window),
		MinDwell:      time.Duration(a.Dwell),
		Cooldown:      time.Duration(a.Cooldown),
		MaxActuations: a.MaxActuations,
		RateHigh:      a.RateHigh,
		RateLow:       a.RateLow,
		BurstEnter:    a.BurstEnter,
		BurstExit:     a.BurstExit,
		MissHigh:      a.MissHigh,
		RejectHigh:    a.RejectHigh,
		OverloadShed:  a.OverloadShed,
	}
	var err error
	parse := func(dst *core.Config, s, axis string) {
		if err != nil || s == "" {
			return
		}
		if *dst, err = core.ParseConfig(s); err != nil {
			err = fmt.Errorf("autopilot %s config: %w", axis, err)
		}
	}
	parse(&o.Calm, a.Calm, "calm")
	parse(&o.Burst, a.Burst, "burst")
	parse(&o.Overload, a.Overload, "overload")
	return o, err
}

// validate checks the block against the scenario horizon by building a
// throwaway controller, so every controller-side constraint (hysteresis
// bands, config validity) is enforced at parse time.
func (a *AutopilotSpec) validate(horizon wspec.Duration) error {
	if !a.Enabled {
		return nil
	}
	if a.At < 0 || a.At > horizon {
		return fmt.Errorf("%w: autopilot.at %v outside [0, %v]", ErrSpec, time.Duration(a.At), time.Duration(horizon))
	}
	for _, d := range []wspec.Duration{a.Tick, a.Window, a.Dwell, a.Cooldown} {
		if d < 0 {
			return fmt.Errorf("%w: autopilot durations must be non-negative", ErrSpec)
		}
	}
	if a.MaxActuations < 0 {
		return fmt.Errorf("%w: autopilot.maxActuations must be non-negative", ErrSpec)
	}
	opts, err := a.options()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSpec, err)
	}
	if _, err := autopilot.New(opts); err != nil {
		return fmt.Errorf("%w: %v", ErrSpec, err)
	}
	return nil
}

// Invariants is the expected-invariant block: only the set fields are
// enforced, and at least one must be.
type Invariants struct {
	// ZeroAdmittedLoss asserts every released job completed after the drain
	// (the open-world protocol's headline guarantee).
	ZeroAdmittedLoss bool `json:"zeroAdmittedLoss,omitempty"`
	// LedgerAudit asserts the admission ledger's index invariants hold after
	// the run.
	LedgerAudit bool `json:"ledgerAudit,omitempty"`
	// WatchOrdering asserts the scenario's watch stream delivered strictly
	// increasing sequence numbers.
	WatchOrdering bool `json:"watchOrdering,omitempty"`
	// MaxMissRate caps the deadline-miss rate over completed jobs.
	MaxMissRate *float64 `json:"maxMissRate,omitempty"`
	// MinArrived floors the arrival count, guarding against a scenario that
	// silently exercised nothing.
	MinArrived int64 `json:"minArrived,omitempty"`
	// MaxWatchDropped caps the events the scenario's watch stream shed.
	MaxWatchDropped *int64 `json:"maxWatchDropped,omitempty"`
	// MaxActuations caps the autopilot's actuation count — the bounded-
	// actuation half of the no-flap guarantee, asserted per run.
	MaxActuations *int64 `json:"maxActuations,omitempty"`
	// Live overrides ceilings for the live binding, whose wall-clock jitter
	// makes the simulation's deterministic bounds too tight.
	Live *InvariantOverrides `json:"live,omitempty"`
}

// InvariantOverrides relaxes per-binding ceilings.
type InvariantOverrides struct {
	MaxMissRate   *float64 `json:"maxMissRate,omitempty"`
	MinArrived    *int64   `json:"minArrived,omitempty"`
	MaxActuations *int64   `json:"maxActuations,omitempty"`
}

// empty reports whether no invariant is set.
func (inv *Invariants) empty() bool {
	return !inv.ZeroAdmittedLoss && !inv.LedgerAudit && !inv.WatchOrdering &&
		inv.MaxMissRate == nil && inv.MinArrived == 0 && inv.MaxWatchDropped == nil &&
		inv.MaxActuations == nil
}

// LiveSettings tunes live-binding execution.
type LiveSettings struct {
	// TimeScale is the wall-clock compression factor: every workload
	// duration shrinks by it and the timeline plays back that much faster,
	// so a 30s scenario at TimeScale 10 takes ~3s of wall clock. Synthetic
	// utilizations are invariant under the scaling. Default 10.
	TimeScale float64 `json:"timeScale,omitempty"`
}

// DefaultTimeScale is the live compression when the spec sets none.
const DefaultTimeScale = 10

// Parse decodes and validates a scenario specification.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	if err := jsonUnmarshalStrict(data, &s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec end to end: the workload resolves, the
// configuration and every injection target parse, every arrival shape is a
// known generator with sane parameters, every task reference names a task
// that exists at some point of the scenario, and the invariant block is
// present and non-empty.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("%w: missing name", ErrSpec)
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("%w: horizon must be positive, got %v", ErrSpec, time.Duration(s.Horizon))
	}
	if _, err := core.ParseConfig(s.Config); err != nil {
		return fmt.Errorf("%w: config: %v", ErrSpec, err)
	}
	tasks, procs, err := s.Workload.resolve()
	if err != nil {
		return err
	}
	if s.Live.TimeScale < 0 {
		return fmt.Errorf("%w: live.timeScale must be non-negative", ErrSpec)
	}

	// The task-ID universe: initial workload tasks plus every add_tasks
	// injection's tasks.
	universe := make(map[string]bool, len(tasks))
	for _, t := range tasks {
		universe[t.ID] = true
	}
	for i, inj := range s.Injections {
		if inj.Kind != InjectAddTasks {
			continue
		}
		added, err := injectionTasks(inj, procs)
		if err != nil {
			return fmt.Errorf("%w: injection %d: %v", ErrSpec, i, err)
		}
		for _, t := range added {
			if universe[t.ID] {
				return fmt.Errorf("%w: injection %d re-adds task %q", ErrSpec, i, t.ID)
			}
			universe[t.ID] = true
		}
	}

	claimed := make(map[string]int, len(universe))
	defaultBlocks := 0
	for i, b := range s.Arrivals {
		sh := b.Shape.shape()
		switch sh.Kind {
		case workload.ShapeConstant, workload.ShapeFlashCrowd, workload.ShapeDiurnal,
			workload.ShapeMMPP, workload.ShapeSpike, workload.ShapeNatural:
			if err := sh.Validate(); err != nil {
				return fmt.Errorf("%w: arrivals[%d]: %v", ErrSpec, i, err)
			}
		default:
			return fmt.Errorf("%w: arrivals[%d]: %q", ErrUnknownShape, i, b.Shape.Kind)
		}
		if len(b.Tasks) == 0 {
			defaultBlocks++
			if defaultBlocks > 1 {
				return fmt.Errorf("%w: more than one default (all-tasks) arrival block", ErrSpec)
			}
			continue
		}
		for _, id := range b.Tasks {
			if !universe[id] {
				return fmt.Errorf("%w: arrivals[%d] references unknown task %q", ErrSpec, i, id)
			}
			if prev, dup := claimed[id]; dup {
				return fmt.Errorf("%w: task %q claimed by arrival blocks %d and %d", ErrSpec, id, prev, i)
			}
			claimed[id] = i
		}
	}

	for i, inj := range s.Injections {
		if inj.At < 0 || inj.At > s.Horizon {
			return fmt.Errorf("%w: injection %d at %v outside [0, %v]", ErrSpec, i, time.Duration(inj.At), time.Duration(s.Horizon))
		}
		switch inj.Kind {
		case InjectAddTasks:
			// Validated above while building the universe.
		case InjectRemoveTasks, InjectSubmitStorm:
			if len(inj.IDs) == 0 {
				return fmt.Errorf("%w: injection %d (%s) names no ids", ErrSpec, i, inj.Kind)
			}
			for _, id := range inj.IDs {
				if !universe[id] {
					return fmt.Errorf("%w: injection %d (%s) references unknown task %q", ErrSpec, i, inj.Kind, id)
				}
			}
			if inj.Count < 0 {
				return fmt.Errorf("%w: injection %d: negative count", ErrSpec, i)
			}
		case InjectReconfigure:
			to, err := core.ParseConfig(inj.To)
			if err != nil {
				return fmt.Errorf("%w: injection %d: to: %v", ErrSpec, i, err)
			}
			if err := to.Validate(); err != nil {
				return fmt.Errorf("%w: injection %d: %v", ErrSpec, i, err)
			}
		case InjectKillNode, InjectRecoverNode:
			if inj.Node == nil {
				return fmt.Errorf("%w: injection %d (%s) sets no node", ErrSpec, i, inj.Kind)
			}
			if n := *inj.Node; n < 0 || n >= procs {
				return fmt.Errorf("%w: injection %d (%s) node %d outside [0, %d)", ErrSpec, i, inj.Kind, n, procs)
			}
		default:
			return fmt.Errorf("%w: injection %d: %q", ErrUnknownInjection, i, inj.Kind)
		}
	}
	if err := s.validateNodeFaults(); err != nil {
		return err
	}

	if s.Invariants == nil || s.Invariants.empty() {
		return fmt.Errorf("%w (scenario %q)", ErrMissingInvariants, s.Name)
	}
	if s.Invariants.MaxMissRate != nil && (*s.Invariants.MaxMissRate < 0 || *s.Invariants.MaxMissRate > 1) {
		return fmt.Errorf("%w: maxMissRate %g outside [0, 1]", ErrSpec, *s.Invariants.MaxMissRate)
	}
	if s.Invariants.MaxActuations != nil && *s.Invariants.MaxActuations < 0 {
		return fmt.Errorf("%w: maxActuations must be non-negative", ErrSpec)
	}
	if s.Autopilot != nil {
		if err := s.Autopilot.validate(s.Horizon); err != nil {
			return err
		}
		for _, id := range s.Autopilot.OverloadShed {
			if !universe[id] {
				return fmt.Errorf("%w: autopilot.overloadShed references unknown task %q", ErrSpec, id)
			}
		}
	}
	return nil
}

// validateNodeFaults checks that each node's kill/recover injections
// alternate — a kill first, then at most one recover per kill — in the same
// order the compiler plays them (by time, spec order breaking ties), so a
// spec that would double-kill a node or recover a live one fails at parse
// time rather than mid-run.
func (s *Spec) validateNodeFaults() error {
	type fault struct {
		at   wspec.Duration
		kind string
		node int
		idx  int
	}
	var faults []fault
	for i, inj := range s.Injections {
		if inj.Kind == InjectKillNode || inj.Kind == InjectRecoverNode {
			faults = append(faults, fault{at: inj.At, kind: inj.Kind, node: *inj.Node, idx: i})
		}
	}
	sort.SliceStable(faults, func(i, j int) bool { return faults[i].at < faults[j].at })
	dead := make(map[int]bool)
	for _, f := range faults {
		switch f.kind {
		case InjectKillNode:
			if dead[f.node] {
				return fmt.Errorf("%w: injection %d kills node %d twice without a recover", ErrSpec, f.idx, f.node)
			}
			dead[f.node] = true
		case InjectRecoverNode:
			if !dead[f.node] {
				return fmt.Errorf("%w: injection %d recovers node %d before any kill", ErrSpec, f.idx, f.node)
			}
			delete(dead, f.node)
		}
	}
	return nil
}

// resolve materializes the referenced task set and its processor count.
func (w WorkloadRef) resolve() ([]*sched.Task, int, error) {
	set := 0
	count := 0
	if w.Figure5 != nil {
		count++
	}
	if w.Figure6 != nil {
		count++
	}
	if w.Inline != nil {
		count++
	}
	if count != 1 {
		return nil, 0, fmt.Errorf("%w: workload must set exactly one of figure5, figure6, inline", ErrSpec)
	}
	switch {
	case w.Figure5 != nil:
		set = *w.Figure5
		tasks, err := workload.Generate(workload.Figure5Params(set))
		if err != nil {
			return nil, 0, fmt.Errorf("%w: workload figure5 set %d: %v", ErrSpec, set, err)
		}
		return tasks, workload.MaxProc(tasks) + 1, nil
	case w.Figure6 != nil:
		set = *w.Figure6
		tasks, err := workload.Generate(workload.Figure6Params(set))
		if err != nil {
			return nil, 0, fmt.Errorf("%w: workload figure6 set %d: %v", ErrSpec, set, err)
		}
		return tasks, workload.MaxProc(tasks) + 1, nil
	default:
		tasks, err := w.Inline.SchedTasks()
		if err != nil {
			return nil, 0, fmt.Errorf("%w: inline workload: %v", ErrSpec, err)
		}
		return tasks, w.Inline.Processors, nil
	}
}

// injectionTasks converts an add_tasks injection's task specs to validated
// scheduling-model tasks, bounded by the scenario's processor count.
func injectionTasks(inj Injection, procs int) ([]*sched.Task, error) {
	if len(inj.Tasks) == 0 {
		return nil, fmt.Errorf("add_tasks injection has no tasks")
	}
	w := &wspec.Workload{Name: "injection", Processors: procs, Tasks: inj.Tasks}
	return w.SchedTasks()
}

// timeScale resolves the live compression factor.
func (s *Spec) timeScale() float64 {
	if s.Live.TimeScale > 0 {
		return s.Live.TimeScale
	}
	return DefaultTimeScale
}
