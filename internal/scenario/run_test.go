package scenario

import (
	"os"
	"path/filepath"
	"testing"

	wspec "repro/internal/spec"
)

// churnSpec is a compact open-world scenario used across the run and
// journal tests: an inline workload, a joining tenant, a storm, a
// departure, and a strategy swap.
func churnSpec() *Spec {
	inline := &wspec.Workload{
		Name:       "mini",
		Processors: 2,
		Tasks: []wspec.TaskSpec{
			{
				ID: "flow", Kind: "periodic",
				Period: wspec.Duration(60_000_000), Deadline: wspec.Duration(60_000_000),
				Subtasks: []wspec.SubtaskSpec{
					{Exec: wspec.Duration(2_000_000), Processor: 0, Replicas: []int{1}},
					{Exec: wspec.Duration(1_000_000), Processor: 1},
				},
			},
			{
				ID: "alert", Kind: "aperiodic",
				Deadline: wspec.Duration(50_000_000), MeanInterarrival: wspec.Duration(40_000_000),
				Subtasks: []wspec.SubtaskSpec{
					{Exec: wspec.Duration(1_000_000), Processor: 1, Replicas: []int{0}},
				},
			},
		},
	}
	maxDropped := int64(0)
	return &Spec{
		Name:     "mini-churn",
		Config:   "T_T_T",
		Horizon:  wspec.Duration(2_000_000_000), // 2s
		Seed:     99,
		Workload: WorkloadRef{Inline: inline},
		Arrivals: []ArrivalBlock{
			{Tasks: []string{"alert"}, Shape: ShapeSpec{Kind: "constant", Rate: 30}},
			{Tasks: []string{"guest"}, Shape: ShapeSpec{Kind: "spike", At: wspec.Duration(900_000_000), Every: wspec.Duration(200_000_000), Burst: 2}},
		},
		Injections: []Injection{
			{
				At:   wspec.Duration(500_000_000),
				Kind: InjectAddTasks,
				Tasks: []wspec.TaskSpec{{
					ID: "guest", Kind: "aperiodic",
					Deadline: wspec.Duration(80_000_000), MeanInterarrival: wspec.Duration(100_000_000),
					Subtasks: []wspec.SubtaskSpec{{Exec: wspec.Duration(1_000_000), Processor: 0, Replicas: []int{1}}},
				}},
			},
			{At: wspec.Duration(800_000_000), Kind: InjectSubmitStorm, IDs: []string{"alert"}, Count: 5},
			{At: wspec.Duration(1_200_000_000), Kind: InjectReconfigure, To: "J_J_J"},
			{At: wspec.Duration(1_500_000_000), Kind: InjectRemoveTasks, IDs: []string{"guest"}},
		},
		Invariants: &Invariants{
			ZeroAdmittedLoss: true,
			LedgerAudit:      true,
			WatchOrdering:    true,
			MinArrived:       40,
			MaxWatchDropped:  &maxDropped,
		},
		Live: LiveSettings{TimeScale: 10},
	}
}

// The sim executor is deterministic run to run and satisfies the spec's
// invariant block.
func TestRunSimDeterministicChurn(t *testing.T) {
	a, err := RunSim(churnSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Passed {
		t.Fatalf("invariants violated: %v", a.Violations)
	}
	if a.Epoch != 1 {
		t.Fatalf("reconfigure did not advance epoch: %d", a.Epoch)
	}
	// Arrivals scheduled for "guest" before its join must be filtered, and
	// the spike train schedules some (at 900ms the task exists; the compile
	// also assigns natural pre-add arrivals to nothing — so assert only
	// that the mechanism reported consistently).
	b, err := RunSim(churnSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Arrived != b.Arrived || a.Released != b.Released || a.Completed != b.Completed ||
		a.Missed != b.Missed || a.Ratio != b.Ratio || a.FilteredArrivals != b.FilteredArrivals {
		t.Fatalf("sim runs differ:\n%+v\n%+v", a, b)
	}
}

// Arrivals targeted at a task before it joins (or after it leaves) are
// filtered, not errors.
func TestRunSimFiltersInactiveArrivals(t *testing.T) {
	s := churnSpec()
	// Aim a dense constant stream at the guest task across its whole
	// lifetime: pre-join and post-leave arrivals must be filtered.
	s.Arrivals[1] = ArrivalBlock{Tasks: []string{"guest"}, Shape: ShapeSpec{Kind: "constant", Rate: 20}}
	res, err := RunSim(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.FilteredArrivals == 0 {
		t.Fatal("expected pre-join/post-leave guest arrivals to be filtered")
	}
	if !res.Passed {
		t.Fatalf("invariants violated: %v", res.Violations)
	}
}

// Every checked-in scenario spec parses, validates, and passes its
// invariant block on the simulation binding — the sim half of the CI
// scenario matrix, kept green locally.
func TestCheckedInScenarioSpecsSim(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	specs := 0
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		specs++
		t.Run(e.Name(), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			s, err := Parse(data)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunSim(s, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Passed {
				t.Fatalf("scenario %q violated invariants: %v", s.Name, res.Violations)
			}
		})
	}
	if specs < 6 {
		t.Fatalf("expected at least 6 checked-in scenario specs, found %d", specs)
	}
}

// The live executor runs the same compact spec end to end on a loopback
// cluster and satisfies the same invariant block.
func TestRunLiveChurnSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live cluster smoke skipped in -short mode")
	}
	res, err := RunLive(churnSpec(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("live invariants violated: %v (result %+v)", res.Violations, res)
	}
	if res.Binding != BindingLive || res.TimeScale != 10 {
		t.Fatalf("unexpected live result identity: %+v", res)
	}
}
