// Timeline compilation is a deterministic-replay surface: identical specs
// must compile to identical timelines on every run and every Go version.
//
//rtmw:deterministic file
package scenario

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"repro/internal/sched"
	wspec "repro/internal/spec"
	"repro/internal/workload"
)

// OpSubmit is the compiled arrival operation; the injection kinds reuse
// their spec names.
const OpSubmit = "submit"

// Op is one compiled timeline operation, in the scenario's virtual
// timebase. The op list is the scenario's entire input: executing it
// against a binding needs no further randomness, which is what makes the
// timeline recordable and replayable.
type Op struct {
	// At is the operation's scenario time.
	At time.Duration
	// Kind is OpSubmit or an injection kind.
	Kind string
	// Tasks are the arriving task IDs (OpSubmit; repeats mean multiple
	// arrivals at the same instant).
	Tasks []string
	// Add carries the joining task specs (add_tasks), in the scenario's
	// unscaled timebase — the live executor scales them at apply time.
	Add []wspec.TaskSpec
	// IDs name the departing tasks (remove_tasks).
	IDs []string
	// To is the target combination (reconfigure).
	To string
	// Node is the target processor (kill_node, recover_node).
	Node int
}

// compiled is a spec lowered to an executable form.
type compiled struct {
	tasks []*sched.Task // initial workload
	procs int
	ops   []Op
	// arrivals is the total compiled arrival count (before the executor's
	// liveness filtering).
	arrivals int
}

// taskSeed derives a per-(block, task) rng seed from the scenario seed, so
// every task's timeline is independent but fully determined by the spec.
func taskSeed(seed int64, blockIdx int, taskID string) int64 {
	h := fnv.New64a()
	h.Write([]byte(taskID))
	return seed ^ int64(h.Sum64()) ^ (int64(blockIdx+1) * int64(0x9E3779B97F4A7C15&0x7FFFFFFFFFFFFFFF))
}

// compile lowers a validated spec to its deterministic op timeline:
// per-task arrival instants from the assigned shapes (tasks no block claims
// follow their natural process), submit storms expanded to arrival bursts,
// and the structural injections interleaved. Ops are sorted by time;
// injections order before arrivals at the same instant, so a task added at
// t receives its t arrivals and a task removed at t does not.
func compile(s *Spec) (*compiled, error) {
	tasks, procs, err := s.Workload.resolve()
	if err != nil {
		return nil, err
	}
	horizon := time.Duration(s.Horizon)

	// The task universe in deterministic order: initial tasks, then each
	// add_tasks injection's tasks in injection order.
	type member struct {
		task *sched.Task
		idx  int
	}
	universe := make(map[string]member, len(tasks))
	order := 0
	for _, t := range tasks {
		universe[t.ID] = member{task: t, idx: order}
		order++
	}
	allIDs := make([]string, 0, len(tasks))
	for _, t := range tasks {
		allIDs = append(allIDs, t.ID)
	}
	for _, inj := range s.Injections {
		if inj.Kind != InjectAddTasks {
			continue
		}
		added, err := injectionTasks(inj, procs)
		if err != nil {
			return nil, err
		}
		for _, t := range added {
			universe[t.ID] = member{task: t, idx: order}
			order++
			allIDs = append(allIDs, t.ID)
		}
	}

	// Shape assignment: explicit block > default block > natural.
	claimed := make(map[string]int, len(universe))
	defaultBlock := -1
	for i, b := range s.Arrivals {
		if len(b.Tasks) == 0 {
			defaultBlock = i
			continue
		}
		for _, id := range b.Tasks {
			claimed[id] = i
		}
	}

	// Per-task arrival instants.
	type arrival struct {
		at  time.Duration
		idx int
		id  string
	}
	var events []arrival
	for _, id := range allIDs {
		m := universe[id]
		blockIdx := -1
		sh := workload.Shape{Kind: workload.ShapeNatural}
		if bi, ok := claimed[id]; ok {
			blockIdx = bi
			sh = s.Arrivals[bi].Shape.shape()
		} else if defaultBlock >= 0 {
			blockIdx = defaultBlock
			sh = s.Arrivals[defaultBlock].Shape.shape()
		}
		rng := rand.New(rand.NewSource(taskSeed(s.Seed, blockIdx, id)))
		var times []time.Duration
		if sh.Kind == workload.ShapeNatural {
			times = workload.NaturalTimes(m.task, horizon, rng)
		} else {
			times = sh.Times(horizon, rng)
		}
		for _, at := range times {
			events = append(events, arrival{at: at, idx: m.idx, id: id})
		}
	}

	// Submit storms are correlated arrival bursts at exact instants.
	for _, inj := range s.Injections {
		if inj.Kind != InjectSubmitStorm {
			continue
		}
		count := inj.Count
		if count <= 0 {
			count = 1
		}
		for _, id := range inj.IDs {
			m := universe[id]
			for k := 0; k < count; k++ {
				events = append(events, arrival{at: time.Duration(inj.At), idx: m.idx, id: id})
			}
		}
	}

	sort.SliceStable(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].idx < events[j].idx
	})

	// Structural injections first (in spec order), then the grouped arrival
	// ops; the stable sort keeps injections ahead of arrivals at equal
	// times.
	var ops []Op
	for _, inj := range s.Injections {
		switch inj.Kind {
		case InjectAddTasks:
			ops = append(ops, Op{At: time.Duration(inj.At), Kind: InjectAddTasks, Add: inj.Tasks})
		case InjectRemoveTasks:
			ops = append(ops, Op{At: time.Duration(inj.At), Kind: InjectRemoveTasks, IDs: inj.IDs})
		case InjectReconfigure:
			ops = append(ops, Op{At: time.Duration(inj.At), Kind: InjectReconfigure, To: inj.To})
		case InjectKillNode:
			ops = append(ops, Op{At: time.Duration(inj.At), Kind: InjectKillNode, Node: *inj.Node})
		case InjectRecoverNode:
			ops = append(ops, Op{At: time.Duration(inj.At), Kind: InjectRecoverNode, Node: *inj.Node})
		}
	}
	for i := 0; i < len(events); {
		j := i
		for j < len(events) && events[j].at == events[i].at {
			j++
		}
		ids := make([]string, 0, j-i)
		for _, e := range events[i:j] {
			ids = append(ids, e.id)
		}
		ops = append(ops, Op{At: events[i].at, Kind: OpSubmit, Tasks: ids})
		i = j
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].At < ops[j].At })

	return &compiled{tasks: tasks, procs: procs, ops: ops, arrivals: len(events)}, nil
}
