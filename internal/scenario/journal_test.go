package scenario

import (
	"bytes"
	"testing"
)

// Record a churn scenario on the sim, replay the journal twice: both
// replays must produce byte-identical canonical metrics, and they must
// reproduce the recorded run's counters exactly — the offline
// incident-reproduction guarantee.
func TestRecordReplayBitIdentical(t *testing.T) {
	s := churnSpec()
	h, err := RecordHeader(s, BindingSim, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := NewRecorder(&buf, h)
	orig, err := RunSim(s, rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Fatalf("recorder error: %v", err)
	}

	j, err := DecodeJournal(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if j.Header.Scenario != s.Name || j.Header.Binding != BindingSim {
		t.Fatalf("journal header wrong: %+v", j.Header)
	}
	if len(j.Ops) == 0 || len(j.Events) == 0 {
		t.Fatalf("journal missing content: %d ops, %d events", len(j.Ops), len(j.Events))
	}

	r1, err := Replay(j)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Replay(j)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.MetricsJSON, r2.MetricsJSON) {
		t.Fatal("replays produced different metrics documents")
	}
	if r1.Arrived != orig.Arrived || r1.Released != orig.Released ||
		r1.Completed != orig.Completed || r1.Missed != orig.Missed || r1.Lost != orig.Lost {
		t.Fatalf("replay diverged from recorded run:\nreplay   %+v\noriginal %+v", r1, orig)
	}

	// Re-recording the replayed timeline must yield the identical op list:
	// record → replay → record is a fixed point.
	var buf2 bytes.Buffer
	rec2 := NewRecorder(&buf2, h)
	if _, err := RunSim(s, rec2); err != nil {
		t.Fatal(err)
	}
	j2, err := DecodeJournal(buf2.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(j2.Ops) != len(j.Ops) {
		t.Fatalf("re-recorded op count differs: %d vs %d", len(j2.Ops), len(j.Ops))
	}
	for i := range j.Ops {
		a, b := j.Ops[i], j2.Ops[i]
		if a.At != b.At || a.Op != b.Op || len(a.Tasks) != len(b.Tasks) || a.To != b.To {
			t.Fatalf("re-recorded op %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// Malformed journals are rejected with line-positioned errors.
func TestReadJournalRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not jsonl":      "hello\n",
		"unknown type":   `{"type":"frame"}` + "\n",
		"missing header": `{"type":"op","op":{"at":"1s","op":"submit","tasks":["a"]}}` + "\n",
		"wrong format":   `{"type":"header","header":{"format":"other","version":1}}` + "\n",
		"wrong version":  `{"type":"header","header":{"format":"rtmw-scenario-journal","version":9}}` + "\n",
	}
	for name, doc := range cases {
		if _, err := DecodeJournal([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
