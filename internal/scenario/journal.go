// Journal encoding and the canonical golden-metrics rendering are a
// deterministic-replay surface: the same run must serialize byte-identically.
//
//rtmw:deterministic file
package scenario

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	wspec "repro/internal/spec"
)

// JournalFormat and JournalVersion identify the journal file format: JSON
// lines, one object per line — a header line, then the applied ops and
// observed watch events in recording order.
const (
	JournalFormat  = "rtmw-scenario-journal"
	JournalVersion = 1
)

// JournalHeader describes the recorded run. Workload is the full initial
// task set in the scenario's unscaled virtual timebase (live runs scale
// tasks at apply time, not here), so a journal is self-contained: replay
// needs no access to the original spec.
type JournalHeader struct {
	Format   string         `json:"format"`
	Version  int            `json:"version"`
	Scenario string         `json:"scenario"`
	Binding  string         `json:"binding"`
	Config   string         `json:"config"`
	Horizon  wspec.Duration `json:"horizon"`
	Seed     int64          `json:"seed"`
	// TimeScale is the live run's compression (zero for sim recordings).
	TimeScale float64         `json:"timeScale,omitempty"`
	Workload  *wspec.Workload `json:"workload"`
}

// JournalOp is one applied (post-filter) timeline operation, in the
// scenario's virtual timebase.
type JournalOp struct {
	At    wspec.Duration   `json:"at"`
	Op    string           `json:"op"`
	Tasks []string         `json:"tasks,omitempty"`
	Add   []wspec.TaskSpec `json:"add,omitempty"`
	IDs   []string         `json:"ids,omitempty"`
	To    string           `json:"to,omitempty"`
	Node  *int             `json:"node,omitempty"`
}

// JournalEvent is one observed watch event. Events are observational —
// replay reconstructs the run from the ops alone — but they make the
// journal a complete incident record.
type JournalEvent struct {
	Seq   int64          `json:"seq"`
	Kind  string         `json:"kind"`
	Task  string         `json:"task,omitempty"`
	Job   int64          `json:"job"`
	At    wspec.Duration `json:"at"`
	Epoch int64          `json:"epoch"`
}

// journalLine is the on-disk line envelope.
type journalLine struct {
	Type   string         `json:"type"`
	Header *JournalHeader `json:"header,omitempty"`
	Op     *JournalOp     `json:"op,omitempty"`
	Event  *JournalEvent  `json:"event,omitempty"`
}

// Journal is a decoded recording.
type Journal struct {
	Header JournalHeader
	Ops    []JournalOp
	Events []JournalEvent
}

// Recorder captures a run to a journal stream. The executor writes ops and
// the watch consumer writes events concurrently, so writes are serialized
// by a mutex; encoding errors stick and surface through Err.
type Recorder struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewRecorder starts a recording by writing the header line.
func NewRecorder(w io.Writer, h JournalHeader) *Recorder {
	h.Format = JournalFormat
	h.Version = JournalVersion
	r := &Recorder{enc: json.NewEncoder(w)}
	r.write(journalLine{Type: "header", Header: &h})
	return r
}

func (r *Recorder) write(line journalLine) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	r.err = r.enc.Encode(line)
}

// Op records one applied timeline operation.
func (r *Recorder) Op(op JournalOp) { r.write(journalLine{Type: "op", Op: &op}) }

// Event records one observed watch event.
func (r *Recorder) Event(ev core.WatchEvent) {
	r.write(journalLine{Type: "event", Event: &JournalEvent{
		Seq: ev.Seq, Kind: ev.Kind.String(), Task: ev.Task, Job: ev.Job,
		At: wspec.Duration(ev.At), Epoch: ev.Epoch,
	}})
}

// Err returns the first write error, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// DecodeJournal parses a journal from bytes.
func DecodeJournal(data []byte) (*Journal, error) {
	return ReadJournal(bytes.NewReader(data))
}

// ReadJournal parses a journal stream: the header line, then ops and events
// in recording order.
func ReadJournal(r io.Reader) (*Journal, error) {
	j := &Journal{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := 0
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		n++
		var line journalLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("scenario: journal line %d: %w", n, err)
		}
		switch line.Type {
		case "header":
			if line.Header == nil {
				return nil, fmt.Errorf("scenario: journal line %d: empty header", n)
			}
			j.Header = *line.Header
		case "op":
			if line.Op == nil {
				return nil, fmt.Errorf("scenario: journal line %d: empty op", n)
			}
			j.Ops = append(j.Ops, *line.Op)
		case "event":
			if line.Event == nil {
				return nil, fmt.Errorf("scenario: journal line %d: empty event", n)
			}
			j.Events = append(j.Events, *line.Event)
		default:
			return nil, fmt.Errorf("scenario: journal line %d: unknown type %q", n, line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scenario: read journal: %w", err)
	}
	if j.Header.Format != JournalFormat {
		return nil, fmt.Errorf("scenario: not a scenario journal (format %q)", j.Header.Format)
	}
	if j.Header.Version != JournalVersion {
		return nil, fmt.Errorf("scenario: unsupported journal version %d", j.Header.Version)
	}
	if j.Header.Workload == nil {
		return nil, fmt.Errorf("scenario: journal has no workload")
	}
	return j, nil
}

// ReplayResult is a deterministic re-execution's outcome: the run counters
// plus the canonical metrics document. Because the simulation is a
// deterministic function of (workload, config, seed, op timeline), replays
// of the same journal yield byte-identical MetricsJSON — the property the
// offline incident-reproduction path rests on.
type ReplayResult struct {
	Scenario  string
	Arrived   int64
	Released  int64
	Skipped   int64
	Completed int64
	Missed    int64
	Lost      int64
	Ratio     float64
	// MetricsJSON is the canonical (indented, key-sorted, per-task sorted)
	// metrics document; byte-compare it across replays.
	MetricsJSON []byte
}

// Replay re-executes a journal's op timeline in the simulation binding:
// the header's workload, configuration and seed rebuild the sim in
// open-loop mode, and the recorded ops are scheduled verbatim at their
// virtual times. A journal recorded from a sim run reproduces that run
// exactly; one recorded from a live run reproduces the live arrival
// timeline under the simulator's deterministic execution model.
func Replay(j *Journal) (*ReplayResult, error) {
	cfg, err := core.ParseConfig(j.Header.Config)
	if err != nil {
		return nil, fmt.Errorf("scenario: replay: %w", err)
	}
	tasks, err := j.Header.Workload.SchedTasks()
	if err != nil {
		return nil, fmt.Errorf("scenario: replay: %w", err)
	}
	sim, err := core.NewSimSystem(core.SimConfig{
		Strategies:       cfg,
		NumProcs:         j.Header.Workload.Processors,
		Horizon:          time.Duration(j.Header.Horizon),
		Seed:             j.Header.Seed,
		ExternalArrivals: true,
	}, tasks)
	if err != nil {
		return nil, fmt.Errorf("scenario: replay: %w", err)
	}
	var cbErr error
	fail := func(err error) {
		if err != nil && cbErr == nil {
			cbErr = err
		}
	}
	for i, op := range j.Ops {
		op := op
		i := i
		var fn func()
		switch op.Op {
		case OpSubmit:
			fn = func() { _, err := sim.SubmitBatch(op.Tasks); fail(err) }
		case InjectAddTasks:
			fn = func() {
				added, err := injectionTasks(Injection{Kind: InjectAddTasks, Tasks: op.Add}, j.Header.Workload.Processors)
				if err != nil {
					fail(err)
					return
				}
				fail(sim.AddTasks(added))
			}
		case InjectRemoveTasks:
			fn = func() { fail(sim.RemoveTasks(op.IDs)) }
		case InjectReconfigure:
			fn = func() {
				to, err := core.ParseConfig(op.To)
				if err != nil {
					fail(err)
					return
				}
				_, err = sim.Reconfigure(to)
				fail(err)
			}
		case InjectKillNode, InjectRecoverNode:
			// Node faults are live-binding events; the simulation has no node
			// model, so a replayed fault is a timeline marker only.
			fn = func() {}
		default:
			return nil, fmt.Errorf("scenario: replay: op %d: unknown kind %q", i, op.Op)
		}
		if err := sim.At(time.Duration(op.At), fn); err != nil {
			return nil, fmt.Errorf("scenario: replay: op %d: %w", i, err)
		}
	}
	m := sim.Run()
	if err := sim.Stop(); err != nil {
		return nil, err
	}
	if cbErr != nil {
		return nil, fmt.Errorf("scenario: replay: %w", cbErr)
	}
	doc, err := CanonicalMetricsJSON(j.Header.Scenario, m)
	if err != nil {
		return nil, err
	}
	return &ReplayResult{
		Scenario:    j.Header.Scenario,
		Arrived:     m.Total.Arrived,
		Released:    m.Total.Released,
		Skipped:     m.Total.Skipped,
		Completed:   m.Total.Completed,
		Missed:      m.Total.Missed,
		Lost:        m.Total.Released - m.Total.Completed,
		Ratio:       m.AcceptedUtilizationRatio(),
		MetricsJSON: doc,
	}, nil
}

// metricsKindJSON is the canonical serialization of one accounting bucket.
type metricsKindJSON struct {
	Arrived       int64   `json:"arrived"`
	Released      int64   `json:"released"`
	Skipped       int64   `json:"skipped"`
	Completed     int64   `json:"completed"`
	Missed        int64   `json:"missed"`
	ArrivedUtil   float64 `json:"arrived_util"`
	ReleasedUtil  float64 `json:"released_util"`
	TotalResponse int64   `json:"total_response_ns"`
	MaxResponse   int64   `json:"max_response_ns"`
}

func kindJSON(k core.KindMetrics) metricsKindJSON {
	return metricsKindJSON{
		Arrived: k.Arrived, Released: k.Released, Skipped: k.Skipped,
		Completed: k.Completed, Missed: k.Missed,
		ArrivedUtil: k.ArrivedUtil, ReleasedUtil: k.ReleasedUtil,
		TotalResponse: int64(k.TotalResponse), MaxResponse: int64(k.MaxResponse),
	}
}

// CanonicalMetricsJSON renders a metrics value as a canonical document:
// fixed field order, per-task entries sorted by ID, indented. Two identical
// runs produce byte-identical documents, so replay determinism reduces to
// bytes.Equal.
func CanonicalMetricsJSON(scenario string, m *core.Metrics) ([]byte, error) {
	type taskEntry struct {
		ID string `json:"id"`
		metricsKindJSON
	}
	doc := struct {
		Scenario  string          `json:"scenario"`
		Total     metricsKindJSON `json:"total"`
		Periodic  metricsKindJSON `json:"periodic"`
		Aperiodic metricsKindJSON `json:"aperiodic"`
		Tasks     []taskEntry     `json:"tasks"`
	}{
		Scenario:  scenario,
		Total:     kindJSON(m.Total),
		Periodic:  kindJSON(m.Periodic),
		Aperiodic: kindJSON(m.Aperiodic),
	}
	for _, id := range m.TaskIDs() {
		doc.Tasks = append(doc.Tasks, taskEntry{ID: id, metricsKindJSON: kindJSON(m.Task(id))})
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encode metrics: %w", err)
	}
	return out, nil
}

// jsonUnmarshalStrict decodes JSON rejecting unknown fields and trailing
// data, so spec typos fail loudly instead of silently validating a
// different scenario.
func jsonUnmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return fmt.Errorf("trailing data after spec document")
	}
	return nil
}

// RecordHeader builds the journal header for a spec about to run on a
// binding. The workload snapshot is taken from the compiled initial task
// set, unscaled.
func RecordHeader(s *Spec, bindingName string, timeScale float64) (JournalHeader, error) {
	c, err := compile(s)
	if err != nil {
		return JournalHeader{}, err
	}
	return JournalHeader{
		Scenario: s.Name,
		Binding:  bindingName,
		Config:   s.Config,
		Horizon:  s.Horizon,
		Seed:     s.Seed,
		TimeScale: func() float64 {
			if bindingName == BindingLive {
				if timeScale > 0 {
					return timeScale
				}
				return s.timeScale()
			}
			return 0
		}(),
		Workload: wspec.FromTasks(s.Name, c.procs, c.tasks),
	}, nil
}
