package scenario

import (
	"errors"
	"strings"
	"testing"
	"time"

	wspec "repro/internal/spec"
)

// validSpec returns a minimal spec that passes validation; tests mutate it.
func validSpec() *Spec {
	fig := 0
	return &Spec{
		Name:     "t",
		Config:   "T_T_T",
		Horizon:  wspec.Duration(5_000_000_000),
		Seed:     1,
		Workload: WorkloadRef{Figure5: &fig},
		Arrivals: []ArrivalBlock{
			{Tasks: []string{"A0"}, Shape: ShapeSpec{Kind: "constant", Rate: 2}},
		},
		Invariants: &Invariants{ZeroAdmittedLoss: true},
	}
}

// Every malformed spec must be rejected with the matching typed error, so
// tools can branch on errors.Is instead of scraping messages.
func TestSpecValidationErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   error
	}{
		{
			name:   "bad arrival shape kind",
			mutate: func(s *Spec) { s.Arrivals[0].Shape.Kind = "sawtooth" },
			want:   ErrUnknownShape,
		},
		{
			name:   "bad arrival shape parameters",
			mutate: func(s *Spec) { s.Arrivals[0].Shape.Rate = -3 },
			want:   ErrSpec,
		},
		{
			name:   "missing invariant block",
			mutate: func(s *Spec) { s.Invariants = nil },
			want:   ErrMissingInvariants,
		},
		{
			name:   "empty invariant block",
			mutate: func(s *Spec) { s.Invariants = &Invariants{} },
			want:   ErrMissingInvariants,
		},
		{
			name: "unknown injection kind",
			mutate: func(s *Spec) {
				s.Injections = []Injection{{Kind: "chaos_monkey"}}
			},
			want: ErrUnknownInjection,
		},
		{
			name:   "missing name",
			mutate: func(s *Spec) { s.Name = "" },
			want:   ErrSpec,
		},
		{
			name:   "bad config",
			mutate: func(s *Spec) { s.Config = "N_N_N" },
			want:   ErrSpec,
		},
		{
			name:   "non-positive horizon",
			mutate: func(s *Spec) { s.Horizon = 0 },
			want:   ErrSpec,
		},
		{
			name:   "unknown arrival task",
			mutate: func(s *Spec) { s.Arrivals[0].Tasks = []string{"ghost"} },
			want:   ErrSpec,
		},
		{
			name: "duplicate task claim",
			mutate: func(s *Spec) {
				s.Arrivals = append(s.Arrivals, ArrivalBlock{
					Tasks: []string{"A0"}, Shape: ShapeSpec{Kind: "constant", Rate: 1},
				})
			},
			want: ErrSpec,
		},
		{
			name: "two default blocks",
			mutate: func(s *Spec) {
				s.Arrivals = []ArrivalBlock{
					{Shape: ShapeSpec{Kind: "constant", Rate: 1}},
					{Shape: ShapeSpec{Kind: "constant", Rate: 2}},
				}
			},
			want: ErrSpec,
		},
		{
			name: "injection beyond horizon",
			mutate: func(s *Spec) {
				s.Injections = []Injection{{At: s.Horizon * 2, Kind: InjectSubmitStorm, IDs: []string{"A0"}}}
			},
			want: ErrSpec,
		},
		{
			name: "remove_tasks without ids",
			mutate: func(s *Spec) {
				s.Injections = []Injection{{Kind: InjectRemoveTasks}}
			},
			want: ErrSpec,
		},
		{
			name: "reconfigure to invalid combo",
			mutate: func(s *Spec) {
				s.Injections = []Injection{{Kind: InjectReconfigure, To: "T_J_T"}}
			},
			want: ErrSpec,
		},
		{
			name: "workload with no selector",
			mutate: func(s *Spec) {
				s.Workload = WorkloadRef{}
				s.Arrivals = nil
			},
			want: ErrSpec,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid spec")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v does not match %v", err, tc.want)
			}
			// Every rejection is also an ErrSpec.
			if !errors.Is(err, ErrSpec) {
				t.Fatalf("error %v does not wrap ErrSpec", err)
			}
		})
	}
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// Parse must reject syntax errors and unknown fields with ErrSpec.
func TestParseStrict(t *testing.T) {
	if _, err := Parse([]byte("{not json")); !errors.Is(err, ErrSpec) {
		t.Fatalf("syntax error: got %v, want ErrSpec", err)
	}
	unknown := `{"name":"x","config":"T_T_T","horizon":"5s","workload":{"figure5":0},"invariants":{"zeroAdmittedLoss":true},"typoField":1}`
	if _, err := Parse([]byte(unknown)); !errors.Is(err, ErrSpec) {
		t.Fatalf("unknown field: got %v, want ErrSpec", err)
	}
	ok := `{"name":"x","config":"T_T_T","horizon":"5s","seed":3,"workload":{"figure5":0},"invariants":{"zeroAdmittedLoss":true}}`
	s, err := Parse([]byte(ok))
	if err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	if s.Name != "x" || s.Seed != 3 {
		t.Fatalf("parsed spec wrong: %+v", s)
	}
}

// The compiled timeline is deterministic and ordered, with structural
// injections ahead of arrivals at equal instants.
func TestCompileDeterministicAndOrdered(t *testing.T) {
	s := validSpec()
	s.Injections = []Injection{
		{At: s.Horizon / 2, Kind: InjectSubmitStorm, IDs: []string{"A1"}, Count: 3},
		{At: s.Horizon / 2, Kind: InjectReconfigure, To: "J_J_J"},
	}
	a, err := compile(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.ops) != len(b.ops) {
		t.Fatalf("compile nondeterministic: %d vs %d ops", len(a.ops), len(b.ops))
	}
	reconfigSeen := false
	stormArrivals := 0
	for i, op := range a.ops {
		bop := b.ops[i]
		if op.At != bop.At || op.Kind != bop.Kind || len(op.Tasks) != len(bop.Tasks) {
			t.Fatalf("compile nondeterministic at op %d: %+v vs %+v", i, op, bop)
		}
		if i > 0 && op.At < a.ops[i-1].At {
			t.Fatalf("ops out of order at %d: %v after %v", i, op.At, a.ops[i-1].At)
		}
		if op.Kind == InjectReconfigure {
			reconfigSeen = true
		}
		if op.Kind == OpSubmit && op.At == time.Duration(s.Horizon/2) {
			if !reconfigSeen {
				t.Fatal("arrival op at the injection instant ran before the reconfigure")
			}
			for _, id := range op.Tasks {
				if id == "A1" {
					stormArrivals++
				}
			}
		}
	}
	if stormArrivals < 3 {
		t.Fatalf("submit storm lost arrivals: %d of 3", stormArrivals)
	}
	if a.arrivals == 0 {
		t.Fatal("compile produced no arrivals")
	}
	if !strings.HasPrefix(a.tasks[0].ID, "A") && !strings.HasPrefix(a.tasks[0].ID, "P") {
		t.Fatalf("unexpected workload task %q", a.tasks[0].ID)
	}
}

// Node-fault injections validate their target and per-node kill/recover
// alternation, and compile into ordered ops carrying the node index.
func TestNodeFaultValidationAndCompile(t *testing.T) {
	node := func(n int) *int { return &n }
	bad := []struct {
		name       string
		injections []Injection
	}{
		{"kill without node", []Injection{{At: 1, Kind: InjectKillNode}}},
		{"recover without node", []Injection{{At: 1, Kind: InjectRecoverNode}}},
		{"node out of range", []Injection{{At: 1, Kind: InjectKillNode, Node: node(9)}}},
		{"negative node", []Injection{{At: 1, Kind: InjectKillNode, Node: node(-1)}}},
		{"double kill", []Injection{
			{At: 1, Kind: InjectKillNode, Node: node(0)},
			{At: 2, Kind: InjectKillNode, Node: node(0)},
		}},
		{"recover before kill", []Injection{{At: 1, Kind: InjectRecoverNode, Node: node(0)}}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			s.Injections = tc.injections
			if err := s.Validate(); !errors.Is(err, ErrSpec) {
				t.Fatalf("Validate = %v, want ErrSpec", err)
			}
		})
	}

	// Kill/recover/kill on one node alternates legally; a second node's kill
	// is independent.
	s := validSpec()
	s.Injections = []Injection{
		{At: s.Horizon / 4, Kind: InjectKillNode, Node: node(1)},
		{At: s.Horizon / 2, Kind: InjectRecoverNode, Node: node(1)},
		{At: 3 * s.Horizon / 4, Kind: InjectKillNode, Node: node(1)},
		{At: s.Horizon / 2, Kind: InjectKillNode, Node: node(2)},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("legal fault schedule rejected: %v", err)
	}
	tl, err := compile(s)
	if err != nil {
		t.Fatal(err)
	}
	kills, recovers := 0, 0
	for i, op := range tl.ops {
		switch op.Kind {
		case InjectKillNode:
			kills++
			if op.Node != 1 && op.Node != 2 {
				t.Errorf("kill op targets node %d", op.Node)
			}
		case InjectRecoverNode:
			recovers++
			if op.Node != 1 {
				t.Errorf("recover op targets node %d", op.Node)
			}
		case OpSubmit:
			// Faults sort ahead of arrivals at the same instant, so a
			// same-tick arrival always sees the post-fault cluster.
			for j := i + 1; j < len(tl.ops); j++ {
				if tl.ops[j].At == op.At && tl.ops[j].Kind == InjectKillNode {
					t.Fatalf("kill op at %v ordered after an arrival at the same instant", op.At)
				}
			}
		}
	}
	if kills != 3 || recovers != 1 {
		t.Fatalf("compiled %d kills and %d recovers, want 3 and 1", kills, recovers)
	}
}
