package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	wspec "repro/internal/spec"
)

// autopilotSpec is a compact regime-shift scenario: the tight task's slack
// is below the decision round trip (so only cached per-task admission meets
// its deadlines) while MMPP bursts overdrive the flood task past the
// admission bound (so only per-job testing sheds them).
func autopilotSpec(shed []string) *Spec {
	maxActs := int64(10)
	return &Spec{
		Name:    "autopilot-determinism",
		Config:  "T_T_N",
		Horizon: wspec.Duration(12 * time.Second),
		Seed:    42,
		Workload: WorkloadRef{Inline: &wspec.Workload{
			Name:       "autopilot-determinism",
			Processors: 2,
			Tasks: []wspec.TaskSpec{
				{
					ID: "tight", Kind: "periodic",
					Period:   wspec.Duration(10 * time.Millisecond),
					Deadline: wspec.Duration(1750 * time.Microsecond),
					Subtasks: []wspec.SubtaskSpec{{Exec: wspec.Duration(time.Millisecond), Processor: 0}},
				},
				{
					ID: "flood", Kind: "periodic",
					Period:   wspec.Duration(50 * time.Millisecond),
					Deadline: wspec.Duration(40 * time.Millisecond),
					Subtasks: []wspec.SubtaskSpec{{Exec: wspec.Duration(5 * time.Millisecond), Processor: 1}},
				},
			},
		}},
		Arrivals: []ArrivalBlock{{
			Tasks: []string{"flood"},
			Shape: ShapeSpec{
				Kind: "mmpp", Rate: 20, Peak: 240,
				DwellBase:  wspec.Duration(4 * time.Second),
				DwellBurst: wspec.Duration(2 * time.Second),
			},
		}},
		Autopilot: &AutopilotSpec{
			Enabled:  true,
			Tick:     wspec.Duration(100 * time.Millisecond),
			Window:   wspec.Duration(500 * time.Millisecond),
			Dwell:    wspec.Duration(250 * time.Millisecond),
			Cooldown: wspec.Duration(500 * time.Millisecond),
			Calm:     "T_T_N", Burst: "J_J_N", Overload: "J_J_N",
			RateHigh: 250, RateLow: 160,
			BurstEnter: 3, BurstExit: 1.5,
			MissHigh: 2, RejectHigh: 0.6,

			OverloadShed: shed,
		},
		Invariants: &Invariants{
			ZeroAdmittedLoss: true,
			LedgerAudit:      true,
			MaxActuations:    &maxActs,
			MinArrived:       1000,
		},
	}
}

// TestRunSimAutopilotDeterministic: with the controller in the loop, two sim
// runs of the same spec produce byte-identical canonical metrics and the
// same decision journal — the controller's decisions are a pure function of
// the virtual-time event sequence.
func TestRunSimAutopilotDeterministic(t *testing.T) {
	s := autopilotSpec(nil)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	r1, err := RunSim(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSim(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Actuations == 0 {
		t.Fatalf("controller never actuated; decisions: %+v", r1.Decisions)
	}
	if !r1.Passed {
		t.Fatalf("run violated invariants: %v", r1.Violations)
	}
	if len(r1.MetricsJSON) == 0 {
		t.Fatal("no canonical metrics document")
	}
	if !bytes.Equal(r1.MetricsJSON, r2.MetricsJSON) {
		t.Fatal("repeat runs produced different canonical metrics documents")
	}
	d1, _ := json.Marshal(r1.Decisions)
	d2, _ := json.Marshal(r2.Decisions)
	if !bytes.Equal(d1, d2) {
		t.Fatalf("repeat runs produced different decision journals:\n%s\n%s", d1, d2)
	}
}

// TestRunSimAutopilotRecordReplay: a recorded controller run replays
// bit-for-bit — the journal carries the actuations as ordinary reconfigure
// ops, so the offline replay reproduces the controlled run without the
// controller.
func TestRunSimAutopilotRecordReplay(t *testing.T) {
	s := autopilotSpec(nil)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	h, err := RecordHeader(s, BindingSim, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := NewRecorder(&buf, h)
	orig, err := RunSim(s, rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Fatalf("recorder error: %v", err)
	}
	j, err := DecodeJournal(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	reconfigs := 0
	for _, op := range j.Ops {
		if op.Op == InjectReconfigure {
			reconfigs++
		}
	}
	if int64(reconfigs) != orig.Actuations {
		t.Fatalf("journal has %d reconfigure ops, run actuated %d times", reconfigs, orig.Actuations)
	}
	r1, err := Replay(j)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Replay(j)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.MetricsJSON, r2.MetricsJSON) {
		t.Fatal("replays produced different metrics documents")
	}
	if !bytes.Equal(orig.MetricsJSON, r1.MetricsJSON) {
		t.Fatalf("replay diverged from the recorded controller run:\noriginal %s\nreplay   %s",
			orig.MetricsJSON, r1.MetricsJSON)
	}
}

// TestRunSimAutopilotOverloadShed: a spec-driven overload shed removes the
// victim once, journals a remove_tasks op, filters the victim's later
// arrivals, and the journal still replays to the recorded counters.
func TestRunSimAutopilotOverloadShed(t *testing.T) {
	s := autopilotSpec([]string{"flood"})
	// A constant overdrive makes the overload (rejection-rate) trigger
	// deterministic and early.
	s.Arrivals[0].Shape = ShapeSpec{Kind: "constant", Rate: 400}
	s.Autopilot.RejectHigh = 0.3
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	h, err := RecordHeader(s, BindingSim, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := NewRecorder(&buf, h)
	res, err := RunSim(s, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("shed run violated invariants: %v", res.Violations)
	}
	var shed int
	for _, d := range res.Decisions {
		if len(d.Shed) > 0 {
			shed++
		}
	}
	if shed != 1 {
		t.Fatalf("expected exactly one shed decision, got %d: %+v", shed, res.Decisions)
	}
	j, err := DecodeJournal(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	removes := 0
	for _, op := range j.Ops {
		if op.Op == InjectRemoveTasks {
			removes++
		}
	}
	if removes != 1 {
		t.Fatalf("journal has %d remove_tasks ops, want 1", removes)
	}
	rr, err := Replay(j)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Arrived != res.Arrived || rr.Released != res.Released ||
		rr.Completed != res.Completed || rr.Missed != res.Missed || rr.Lost != res.Lost {
		t.Fatalf("shed replay diverged:\nreplay   %+v\noriginal %+v", rr, res)
	}
}

// TestAutopilotSpecValidation: the spec block rejects unknown shed targets
// and incoherent controller options at parse time.
func TestAutopilotSpecValidation(t *testing.T) {
	s := autopilotSpec([]string{"no-such-task"})
	if err := s.Validate(); err == nil {
		t.Fatal("accepted overloadShed with unknown task")
	}
	s = autopilotSpec(nil)
	s.Autopilot.BurstEnter, s.Autopilot.BurstExit = 2, 3
	if err := s.Validate(); err == nil {
		t.Fatal("accepted exit >= enter burst hysteresis")
	}
	s = autopilotSpec(nil)
	s.Autopilot.Calm = "Q_Q_Q"
	if err := s.Validate(); err == nil {
		t.Fatal("accepted unparseable policy config")
	}
}
