package ccm

import (
	"errors"
	"testing"

	"repro/internal/eventchan"
	"repro/internal/orb"
)

// fakeComponent records lifecycle calls.
type fakeComponent struct {
	name        string
	configured  map[string]string
	activated   bool
	passivated  bool
	log         *[]string
	failOn      string // "configure" | "activate" | "passivate"
	activations int
}

func (f *fakeComponent) Configure(attrs map[string]string) error {
	if f.failOn == "configure" {
		return errors.New("configure failed")
	}
	f.configured = attrs
	return nil
}

func (f *fakeComponent) Activate(ctx *Context) error {
	if f.failOn == "activate" {
		return errors.New("activate failed")
	}
	f.activated = true
	f.activations++
	if f.log != nil {
		*f.log = append(*f.log, "activate:"+f.name)
	}
	return nil
}

func (f *fakeComponent) Passivate() error {
	if f.failOn == "passivate" {
		return errors.New("passivate failed")
	}
	f.passivated = true
	if f.log != nil {
		*f.log = append(*f.log, "passivate:"+f.name)
	}
	return nil
}

func testContext(t *testing.T) *Context {
	t.Helper()
	o := orb.New("test-node")
	t.Cleanup(o.Shutdown)
	return &Context{Node: "test-node", ORB: o, Events: eventchan.New("test-node", o)}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("AC", func() Component { return &fakeComponent{name: "ac"} }); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("AC", func() Component { return nil }); err == nil {
		t.Error("duplicate registration succeeded")
	}
	if err := r.Register("nil", nil); err == nil {
		t.Error("nil factory registered")
	}
	comp, err := r.Create("AC")
	if err != nil {
		t.Fatal(err)
	}
	if comp.(*fakeComponent).name != "ac" {
		t.Error("factory not invoked")
	}
	if _, err := r.Create("missing"); err == nil {
		t.Error("unknown implementation created")
	}
	if err := r.Register("LB", func() Component { return &fakeComponent{name: "lb"} }); err != nil {
		t.Fatal(err)
	}
	if got := r.Implementations(); len(got) != 2 || got[0] != "AC" || got[1] != "LB" {
		t.Errorf("Implementations() = %v, want [AC LB]", got)
	}
}

func TestContainerLifecycleOrder(t *testing.T) {
	c := NewContainer(testContext(t))
	var log []string
	a := &fakeComponent{name: "a", log: &log}
	b := &fakeComponent{name: "b", log: &log}
	if err := c.Install("a", a, map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Install("b", b, nil); err != nil {
		t.Fatal(err)
	}
	if a.configured["k"] != "v" {
		t.Error("attributes not delivered to Configure")
	}
	if err := c.Activate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	want := []string{"activate:a", "activate:b", "passivate:b", "passivate:a"}
	if len(log) != len(want) {
		t.Fatalf("lifecycle log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("lifecycle log = %v, want %v", log, want)
		}
	}
}

func TestContainerInstallErrors(t *testing.T) {
	c := NewContainer(testContext(t))
	if err := c.Install("x", nil, nil); err == nil {
		t.Error("nil component installed")
	}
	bad := &fakeComponent{failOn: "configure"}
	if err := c.Install("bad", bad, nil); err == nil {
		t.Error("failing Configure accepted")
	}
	ok := &fakeComponent{}
	if err := c.Install("dup", ok, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Install("dup", &fakeComponent{}, nil); err == nil {
		t.Error("duplicate instance ID accepted")
	}
}

func TestContainerActivateUnwindsOnFailure(t *testing.T) {
	c := NewContainer(testContext(t))
	good := &fakeComponent{name: "good"}
	bad := &fakeComponent{name: "bad", failOn: "activate"}
	if err := c.Install("good", good, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Install("bad", bad, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Activate(); err == nil {
		t.Fatal("activation succeeded despite failing component")
	}
	if !good.passivated {
		t.Error("previously activated component not unwound")
	}
}

func TestContainerDynamicInstallAfterActivate(t *testing.T) {
	c := NewContainer(testContext(t))
	if err := c.Activate(); err != nil {
		t.Fatal(err)
	}
	late := &fakeComponent{name: "late"}
	if err := c.Install("late", late, nil); err != nil {
		t.Fatal(err)
	}
	if !late.activated {
		t.Error("post-activation install not activated immediately")
	}
	if err := c.Activate(); err == nil {
		t.Error("double activation succeeded")
	}
}

func TestContainerLookup(t *testing.T) {
	c := NewContainer(testContext(t))
	comp := &fakeComponent{}
	if err := c.Install("id1", comp, nil); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Lookup("id1")
	if !ok || got != Component(comp) {
		t.Error("Lookup failed for installed instance")
	}
	if _, ok := c.Lookup("nope"); ok {
		t.Error("Lookup found missing instance")
	}
	ids := c.InstanceIDs()
	if len(ids) != 1 || ids[0] != "id1" {
		t.Errorf("InstanceIDs = %v", ids)
	}
}

func TestContainerShutdownCollectsErrors(t *testing.T) {
	c := NewContainer(testContext(t))
	bad := &fakeComponent{failOn: "passivate"}
	good := &fakeComponent{}
	if err := c.Install("bad", bad, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Install("good", good, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Activate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Shutdown(); err == nil {
		t.Error("Shutdown swallowed passivation error")
	}
	if !good.passivated {
		t.Error("good component not passivated despite sibling failure")
	}
}

func TestNewContainerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("incomplete context did not panic")
		}
	}()
	NewContainer(&Context{})
}

// reconfigurableComponent is a fakeComponent that also accepts live
// attribute changes.
type reconfigurableComponent struct {
	fakeComponent
	reconfigured map[string]string
	failReconfig bool
}

func (r *reconfigurableComponent) Reconfigure(attrs map[string]string) error {
	if r.failReconfig {
		return errors.New("reconfigure failed")
	}
	r.reconfigured = attrs
	return nil
}

func TestContainerReconfigureLifecycle(t *testing.T) {
	c := NewContainer(testContext(t))
	rc := &reconfigurableComponent{}
	plain := &fakeComponent{}
	if err := c.Install("rc", rc, map[string]string{"A": "1"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Install("plain", plain, nil); err != nil {
		t.Fatal(err)
	}
	if got := c.State(); got != StateAssembling {
		t.Errorf("state before activation = %s", got)
	}

	// Reconfiguration is an active-only lifecycle stage.
	if err := c.Reconfigure("rc", map[string]string{"A": "2"}); err == nil {
		t.Error("reconfigure before activation succeeded")
	}
	if err := c.Activate(); err != nil {
		t.Fatal(err)
	}
	if got := c.State(); got != StateActive {
		t.Errorf("state after activation = %s", got)
	}

	attrs := map[string]string{"A": "2"}
	if err := c.Reconfigure("rc", attrs); err != nil {
		t.Fatal(err)
	}
	if rc.reconfigured["A"] != "2" {
		t.Errorf("attrs not applied: %v", rc.reconfigured)
	}
	// Boundary copy: caller mutations must not leak into the component.
	attrs["A"] = "tampered"
	if rc.reconfigured["A"] != "2" {
		t.Error("attribute map not boundary-copied")
	}
	if got := c.State(); got != StateActive {
		t.Errorf("state after reconfiguration = %s", got)
	}

	// Unknown and non-reconfigurable instances fail cleanly.
	if err := c.Reconfigure("ghost", nil); err == nil {
		t.Error("unknown instance reconfigured")
	}
	if err := c.Reconfigure("plain", nil); err == nil {
		t.Error("non-reconfigurable component reconfigured")
	}

	// A failing component reconfiguration surfaces and the container
	// returns to Active.
	rc.failReconfig = true
	if err := c.Reconfigure("rc", nil); err == nil {
		t.Error("component failure swallowed")
	}
	if got := c.State(); got != StateActive {
		t.Errorf("state after failed reconfiguration = %s", got)
	}

	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if got := c.State(); got != StateStopped {
		t.Errorf("state after shutdown = %s", got)
	}
	if err := c.Reconfigure("rc", nil); err == nil {
		t.Error("reconfigure after shutdown succeeded")
	}
}

func TestContainerStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		StateAssembling:    "Assembling",
		StateActive:        "Active",
		StateReconfiguring: "Reconfiguring",
		StateStopped:       "Stopped",
		State(42):          "State(42)",
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}
