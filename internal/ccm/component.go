// Package ccm is a lightweight component model in the spirit of the Light
// Weight CORBA Component Model that CIAO implements and the paper builds
// its services on: components are units of implementation with configurable
// attributes and ports, installed into per-node containers that provide the
// execution context (ORB, local event channel) and drive the lifecycle
// (configure → activate → passivate).
//
// The paper's key claim about this layer is that it turns scheduling
// strategies into "installable and configurable units": the same component
// implementation is instantiated with different attribute values (e.g.
// AC_Strategy=PT vs PJ) by the deployment engine, with no code changes.
package ccm

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/eventchan"
	"repro/internal/orb"
)

// Context is the container-provided execution environment handed to a
// component at activation.
type Context struct {
	// Node is the hosting node's name.
	Node string
	// ORB is the node's object request broker, for facet registration and
	// receptacle invocations.
	ORB *orb.ORB
	// Events is the node's local event channel (with its federation
	// gateways), for event source/sink ports.
	Events *eventchan.Channel
	// Services carries binding-specific node services (e.g. the live
	// binding's executor) that components resolve at activation, like CCM
	// container-provided facets.
	Services map[string]any
}

// Service returns a named container service, or nil.
func (c *Context) Service(name string) any {
	if c.Services == nil {
		return nil
	}
	return c.Services[name]
}

// Component is the unit of implementation and composition. Implementations
// are registered in a Registry and instantiated by the deployment engine.
type Component interface {
	// Configure applies attribute values (the CCM Configurator /
	// set_configuration path). It is called exactly once, before Activate.
	Configure(attrs map[string]string) error
	// Activate wires the component's ports into the container context and
	// starts any internal dispatch threads.
	Activate(ctx *Context) error
	// Passivate stops internal activity and waits for it to finish. It is
	// called at container shutdown, after which the component is discarded.
	Passivate() error
}

// Reconfigurable is the optional fourth lifecycle stage: components that
// implement it accept attribute changes while active, without passivation.
// Reconfigure receives only the attributes being changed (plus the
// coordination epoch), applies them atomically with respect to the
// component's own event handlers, and leaves the component running. It is
// the hot-swap half of the paper's "installable and configurable units"
// claim: the same instance serves a new strategy value with no redeploy.
type Reconfigurable interface {
	Reconfigure(attrs map[string]string) error
}

// Factory creates one component instance.
type Factory func() Component

// Registry maps component implementation names to factories: the component
// repository the deployment engine installs from.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]Factory)}
}

// Register adds an implementation. Duplicate names are an error so deployers
// notice conflicting repositories.
func (r *Registry) Register(implementation string, f Factory) error {
	if f == nil {
		return errors.New("ccm: nil factory")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.factories[implementation]; ok {
		return fmt.Errorf("ccm: implementation %q already registered", implementation)
	}
	r.factories[implementation] = f
	return nil
}

// Create instantiates an implementation by name.
func (r *Registry) Create(implementation string) (Component, error) {
	r.mu.RLock()
	f, ok := r.factories[implementation]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ccm: unknown implementation %q", implementation)
	}
	return f(), nil
}

// Implementations lists registered names in sorted order.
func (r *Registry) Implementations() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for name := range r.factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// instance is one installed component with its metadata.
type instance struct {
	id   string
	comp Component
}

// State is a container's lifecycle position. The machine is
//
//	Assembling → Active ⇄ Reconfiguring
//	     └──────────┴────→ Stopped
//
// Reconfiguring is entered while one or more instances apply a live
// attribute change and left when the last one finishes; installs and
// lookups keep working throughout, so a reconfiguration never blocks the
// data plane.
type State int

// Container lifecycle states.
const (
	// StateAssembling is the initial state: instances install and configure
	// but nothing runs yet.
	StateAssembling State = iota
	// StateActive means every installed instance is activated.
	StateActive
	// StateReconfiguring means at least one instance is applying a live
	// attribute change; the container is still serving.
	StateReconfiguring
	// StateStopped means the container has shut down.
	StateStopped
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateAssembling:
		return "Assembling"
	case StateActive:
		return "Active"
	case StateReconfiguring:
		return "Reconfiguring"
	case StateStopped:
		return "Stopped"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Container hosts component instances on one node and drives their
// lifecycle. Install order is preserved: activation runs in install order
// and passivation in reverse, so consumers can be activated before
// producers.
type Container struct {
	ctx *Context

	mu        sync.Mutex
	instances []instance
	byID      map[string]Component
	state     State
	// reconfiguring counts in-progress Reconfigure calls; the container
	// shows StateReconfiguring while it is non-zero.
	reconfiguring int
}

// NewContainer returns a container bound to the node context.
func NewContainer(ctx *Context) *Container {
	if ctx == nil || ctx.ORB == nil || ctx.Events == nil {
		panic("ccm: container requires a complete context")
	}
	return &Container{ctx: ctx, byID: make(map[string]Component)}
}

// Node returns the hosting node's name.
func (c *Container) Node() string { return c.ctx.Node }

// State returns the container's lifecycle state.
func (c *Container) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Install configures and registers a component instance under a unique ID.
// If the container is already activated, the instance is activated
// immediately (dynamic installs during reconfiguration).
func (c *Container) Install(id string, comp Component, attrs map[string]string) error {
	if comp == nil {
		return errors.New("ccm: nil component")
	}
	// Copy attrs at the boundary so later caller mutations cannot leak in.
	copied := make(map[string]string, len(attrs))
	for k, v := range attrs {
		copied[k] = v
	}
	if err := comp.Configure(copied); err != nil {
		return fmt.Errorf("ccm: configure %s: %w", id, err)
	}
	c.mu.Lock()
	if _, ok := c.byID[id]; ok {
		c.mu.Unlock()
		return fmt.Errorf("ccm: instance %q already installed", id)
	}
	c.instances = append(c.instances, instance{id: id, comp: comp})
	c.byID[id] = comp
	activated := c.state == StateActive || c.state == StateReconfiguring
	c.mu.Unlock()
	// Activate outside the lock: components may look up peers in the
	// container from Activate.
	if activated {
		if err := comp.Activate(c.ctx); err != nil {
			return fmt.Errorf("ccm: activate %s: %w", id, err)
		}
	}
	return nil
}

// Lookup returns an installed instance by ID.
func (c *Container) Lookup(id string) (Component, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	comp, ok := c.byID[id]
	return comp, ok
}

// InstanceIDs lists installed instance IDs in install order.
func (c *Container) InstanceIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.instances))
	for i, in := range c.instances {
		out[i] = in.id
	}
	return out
}

// Activate activates every installed instance in install order. On failure,
// already-activated instances are passivated in reverse order before the
// error is returned. Component Activate calls run outside the container
// lock so they may resolve peers via Lookup.
func (c *Container) Activate() error {
	c.mu.Lock()
	if c.state != StateAssembling {
		c.mu.Unlock()
		return errors.New("ccm: container already activated")
	}
	c.state = StateActive
	instances := append([]instance(nil), c.instances...)
	c.mu.Unlock()

	for i, in := range instances {
		if err := in.comp.Activate(c.ctx); err != nil {
			for j := i - 1; j >= 0; j-- {
				// Best effort unwind; the activation error dominates.
				_ = instances[j].comp.Passivate()
			}
			c.mu.Lock()
			c.state = StateAssembling
			c.mu.Unlock()
			return fmt.Errorf("ccm: activate %s: %w", in.id, err)
		}
	}
	return nil
}

// Reconfigure applies a live attribute change to one activated instance —
// the container lifecycle's hot path for strategy swaps. The instance must
// implement Reconfigurable; attribute maps are boundary-copied as in
// Install. The container shows StateReconfiguring for the duration and
// returns to StateActive when the last concurrent reconfiguration ends;
// the component's own Reconfigure is responsible for atomicity with
// respect to its event handlers.
func (c *Container) Reconfigure(id string, attrs map[string]string) error {
	c.mu.Lock()
	if c.state != StateActive && c.state != StateReconfiguring {
		c.mu.Unlock()
		return fmt.Errorf("ccm: reconfigure %s: container is %s, not active", id, c.state)
	}
	comp, ok := c.byID[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("ccm: reconfigure: instance %q not installed", id)
	}
	rc, ok := comp.(Reconfigurable)
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("ccm: instance %q (%T) is not reconfigurable", id, comp)
	}
	c.reconfiguring++
	c.state = StateReconfiguring
	c.mu.Unlock()

	copied := make(map[string]string, len(attrs))
	for k, v := range attrs {
		copied[k] = v
	}
	err := rc.Reconfigure(copied)

	c.mu.Lock()
	c.reconfiguring--
	if c.reconfiguring == 0 && c.state == StateReconfiguring {
		c.state = StateActive
	}
	c.mu.Unlock()
	if err != nil {
		return fmt.Errorf("ccm: reconfigure %s: %w", id, err)
	}
	return nil
}

// Shutdown passivates every instance in reverse install order, returning the
// first error encountered (all instances are still passivated). Passivation
// runs outside the container lock, mirroring Activate.
func (c *Container) Shutdown() error {
	c.mu.Lock()
	instances := append([]instance(nil), c.instances...)
	c.state = StateStopped
	c.mu.Unlock()

	var firstErr error
	for i := len(instances) - 1; i >= 0; i-- {
		if err := instances[i].comp.Passivate(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("ccm: passivate %s: %w", instances[i].id, err)
		}
	}
	return firstErr
}
