// Package ccm is a lightweight component model in the spirit of the Light
// Weight CORBA Component Model that CIAO implements and the paper builds
// its services on: components are units of implementation with configurable
// attributes and ports, installed into per-node containers that provide the
// execution context (ORB, local event channel) and drive the lifecycle
// (configure → activate → passivate).
//
// The paper's key claim about this layer is that it turns scheduling
// strategies into "installable and configurable units": the same component
// implementation is instantiated with different attribute values (e.g.
// AC_Strategy=PT vs PJ) by the deployment engine, with no code changes.
package ccm

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/eventchan"
	"repro/internal/orb"
)

// Context is the container-provided execution environment handed to a
// component at activation.
type Context struct {
	// Node is the hosting node's name.
	Node string
	// ORB is the node's object request broker, for facet registration and
	// receptacle invocations.
	ORB *orb.ORB
	// Events is the node's local event channel (with its federation
	// gateways), for event source/sink ports.
	Events *eventchan.Channel
	// Services carries binding-specific node services (e.g. the live
	// binding's executor) that components resolve at activation, like CCM
	// container-provided facets.
	Services map[string]any
}

// Service returns a named container service, or nil.
func (c *Context) Service(name string) any {
	if c.Services == nil {
		return nil
	}
	return c.Services[name]
}

// Component is the unit of implementation and composition. Implementations
// are registered in a Registry and instantiated by the deployment engine.
type Component interface {
	// Configure applies attribute values (the CCM Configurator /
	// set_configuration path). It is called exactly once, before Activate.
	Configure(attrs map[string]string) error
	// Activate wires the component's ports into the container context and
	// starts any internal dispatch threads.
	Activate(ctx *Context) error
	// Passivate stops internal activity and waits for it to finish. It is
	// called at container shutdown, after which the component is discarded.
	Passivate() error
}

// Factory creates one component instance.
type Factory func() Component

// Registry maps component implementation names to factories: the component
// repository the deployment engine installs from.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]Factory)}
}

// Register adds an implementation. Duplicate names are an error so deployers
// notice conflicting repositories.
func (r *Registry) Register(implementation string, f Factory) error {
	if f == nil {
		return errors.New("ccm: nil factory")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.factories[implementation]; ok {
		return fmt.Errorf("ccm: implementation %q already registered", implementation)
	}
	r.factories[implementation] = f
	return nil
}

// Create instantiates an implementation by name.
func (r *Registry) Create(implementation string) (Component, error) {
	r.mu.RLock()
	f, ok := r.factories[implementation]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ccm: unknown implementation %q", implementation)
	}
	return f(), nil
}

// Implementations lists registered names in sorted order.
func (r *Registry) Implementations() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for name := range r.factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// instance is one installed component with its metadata.
type instance struct {
	id   string
	comp Component
}

// Container hosts component instances on one node and drives their
// lifecycle. Install order is preserved: activation runs in install order
// and passivation in reverse, so consumers can be activated before
// producers.
type Container struct {
	ctx *Context

	mu        sync.Mutex
	instances []instance
	byID      map[string]Component
	activated bool
}

// NewContainer returns a container bound to the node context.
func NewContainer(ctx *Context) *Container {
	if ctx == nil || ctx.ORB == nil || ctx.Events == nil {
		panic("ccm: container requires a complete context")
	}
	return &Container{ctx: ctx, byID: make(map[string]Component)}
}

// Node returns the hosting node's name.
func (c *Container) Node() string { return c.ctx.Node }

// Install configures and registers a component instance under a unique ID.
// If the container is already activated, the instance is activated
// immediately (dynamic installs during reconfiguration).
func (c *Container) Install(id string, comp Component, attrs map[string]string) error {
	if comp == nil {
		return errors.New("ccm: nil component")
	}
	// Copy attrs at the boundary so later caller mutations cannot leak in.
	copied := make(map[string]string, len(attrs))
	for k, v := range attrs {
		copied[k] = v
	}
	if err := comp.Configure(copied); err != nil {
		return fmt.Errorf("ccm: configure %s: %w", id, err)
	}
	c.mu.Lock()
	if _, ok := c.byID[id]; ok {
		c.mu.Unlock()
		return fmt.Errorf("ccm: instance %q already installed", id)
	}
	c.instances = append(c.instances, instance{id: id, comp: comp})
	c.byID[id] = comp
	activated := c.activated
	c.mu.Unlock()
	// Activate outside the lock: components may look up peers in the
	// container from Activate.
	if activated {
		if err := comp.Activate(c.ctx); err != nil {
			return fmt.Errorf("ccm: activate %s: %w", id, err)
		}
	}
	return nil
}

// Lookup returns an installed instance by ID.
func (c *Container) Lookup(id string) (Component, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	comp, ok := c.byID[id]
	return comp, ok
}

// InstanceIDs lists installed instance IDs in install order.
func (c *Container) InstanceIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.instances))
	for i, in := range c.instances {
		out[i] = in.id
	}
	return out
}

// Activate activates every installed instance in install order. On failure,
// already-activated instances are passivated in reverse order before the
// error is returned. Component Activate calls run outside the container
// lock so they may resolve peers via Lookup.
func (c *Container) Activate() error {
	c.mu.Lock()
	if c.activated {
		c.mu.Unlock()
		return errors.New("ccm: container already activated")
	}
	c.activated = true
	instances := append([]instance(nil), c.instances...)
	c.mu.Unlock()

	for i, in := range instances {
		if err := in.comp.Activate(c.ctx); err != nil {
			for j := i - 1; j >= 0; j-- {
				// Best effort unwind; the activation error dominates.
				_ = instances[j].comp.Passivate()
			}
			c.mu.Lock()
			c.activated = false
			c.mu.Unlock()
			return fmt.Errorf("ccm: activate %s: %w", in.id, err)
		}
	}
	return nil
}

// Shutdown passivates every instance in reverse install order, returning the
// first error encountered (all instances are still passivated). Passivation
// runs outside the container lock, mirroring Activate.
func (c *Container) Shutdown() error {
	c.mu.Lock()
	instances := append([]instance(nil), c.instances...)
	c.activated = false
	c.mu.Unlock()

	var firstErr error
	for i := len(instances) - 1; i >= 0; i-- {
		if err := instances[i].comp.Passivate(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("ccm: passivate %s: %w", instances[i].id, err)
		}
	}
	return firstErr
}
