package des

import (
	"testing"
	"time"
)

// The engine microbenchmarks compare the pooled 4-ary engine against the
// retained reference implementation on the simulation's dominant shapes: a
// deep timer churn (every fired event schedules a successor, as arrival
// chains do) and a preemptive processor workload. The ratio between the
// pooled and reference variants is the substrate speedup independent of the
// middleware layers above it.

const benchChurnDepth = 4096

func BenchmarkEngineChurn(b *testing.B) {
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := NewEngine()
			remaining := benchChurnDepth
			var tick func()
			tick = func() {
				if remaining--; remaining > 0 {
					e.After(time.Microsecond, tick)
				}
			}
			e.After(time.Microsecond, tick)
			e.Run()
			if e.Fired() != benchChurnDepth {
				b.Fatalf("fired %d, want %d", e.Fired(), benchChurnDepth)
			}
		}
		b.ReportMetric(float64(b.N)*benchChurnDepth/b.Elapsed().Seconds(), "events/sec")
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := newRefEngine()
			remaining := benchChurnDepth
			var tick func()
			tick = func() {
				if remaining--; remaining > 0 {
					e.After(time.Microsecond, tick)
				}
			}
			e.After(time.Microsecond, tick)
			e.Run()
			if e.Fired() != benchChurnDepth {
				b.Fatalf("fired %d, want %d", e.Fired(), benchChurnDepth)
			}
		}
		b.ReportMetric(float64(b.N)*benchChurnDepth/b.Elapsed().Seconds(), "events/sec")
	})
}

// benchEventSink counts typed events, for the allocation-free dispatch path.
type benchEventSink struct {
	e         *Engine
	remaining int
}

func (s *benchEventSink) HandleEvent(ev Event) {
	if s.remaining--; s.remaining > 0 {
		s.e.AfterEvent(time.Microsecond, s, ev)
	}
}

func BenchmarkEngineTypedChurn(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		sink := &benchEventSink{e: e, remaining: benchChurnDepth}
		e.AfterEvent(time.Microsecond, sink, Event{Kind: 1})
		e.Run()
		if e.Fired() != benchChurnDepth {
			b.Fatalf("fired %d, want %d", e.Fired(), benchChurnDepth)
		}
	}
	b.ReportMetric(float64(b.N)*benchChurnDepth/b.Elapsed().Seconds(), "events/sec")
}

const benchProcJobs = 2048

func BenchmarkProcessorLoad(b *testing.B) {
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := NewEngine()
			p := NewProcessor(e, 0)
			done := 0
			sink := procSink{done: &done}
			for j := 0; j < benchProcJobs; j++ {
				at := time.Duration(j%257) * 500 * time.Microsecond
				prio := j % 5
				e.At(at, func() {
					p.SubmitEvent(prio, 700*time.Microsecond, sink, Event{})
				})
			}
			e.Run()
			if done != benchProcJobs {
				b.Fatalf("completed %d, want %d", done, benchProcJobs)
			}
		}
		b.ReportMetric(float64(b.N)*benchProcJobs/b.Elapsed().Seconds(), "jobs/sec")
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := newRefEngine()
			p := newRefProcessor(e, 0)
			done := 0
			for j := 0; j < benchProcJobs; j++ {
				at := time.Duration(j%257) * 500 * time.Microsecond
				prio := j % 5
				e.At(at, func() {
					p.Submit(&refExecRequest{
						Priority:   prio,
						Remaining:  700 * time.Microsecond,
						OnComplete: func() { done++ },
					})
				})
			}
			e.Run()
			if done != benchProcJobs {
				b.Fatalf("completed %d, want %d", done, benchProcJobs)
			}
		}
		b.ReportMetric(float64(b.N)*benchProcJobs/b.Elapsed().Seconds(), "jobs/sec")
	})
}

type procSink struct{ done *int }

func (s procSink) HandleEvent(Event) { *s.done++ }
