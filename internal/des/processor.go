package des

import (
	"fmt"
	"time"
)

// ExecRequest is one unit of work submitted to a simulated processor: a
// subjob with a fixed-priority dispatch thread, per the paper's F/I and Last
// Subtask components.
//
// Submit copies the request into a pooled internal record, so the struct
// itself is a parameter block: the processor does not retain it, and on
// completion it writes Remaining = 0, sets done, and clears OnComplete so
// the request never pins the callback's captured state. Hot simulation
// paths use SubmitEvent instead, which takes no heap record at all.
type ExecRequest struct {
	// Label identifies the request in traces and tests.
	Label string
	// Priority orders requests; smaller values preempt larger ones (EDMS
	// priorities start at one for the shortest deadline).
	Priority int
	// Remaining is the execution time still owed. It is set to zero when the
	// request completes.
	Remaining time.Duration
	// OnComplete runs (inside the engine) when the request finishes. It is
	// cleared after firing.
	OnComplete func()

	done bool
}

// reqSlot is one pooled execution record. gen increments on every recycle so
// a stale completion event (impossible by construction, but cheap to check)
// can never complete the slot's new occupant.
type reqSlot struct {
	label      string
	prio       int32
	gen        uint32
	active     bool
	seq        int64
	remaining  time.Duration
	started    time.Duration
	onComplete func()
	h          EventHandler
	ev         Event
	ext        *ExecRequest
}

// readyEnt is one ready-queue record: the ordering key inline plus the slot
// index.
type readyEnt struct {
	prio int32
	seq  int64
	idx  int32
}

func readyLess(a, b readyEnt) bool {
	return a.prio < b.prio || (a.prio == b.prio && a.seq < b.seq)
}

// Processor simulates a single CPU under preemptive fixed-priority
// scheduling. Submitting a request with a priority smaller than the running
// request's priority preempts it; the preempted request keeps its remaining
// execution time and resumes later.
//
// When the processor transitions to idle it invokes the idle callback via a
// zero-delay event, mirroring the paper's lowest-priority "idle detector"
// thread: the callback only fires if the processor is still idle when the
// event executes, so back-to-back completions and arrivals do not produce
// spurious idle reports.
type Processor struct {
	// ID numbers the processor within the cluster.
	ID int

	eng     *Engine
	slots   []reqSlot
	free    []int32
	ready   []readyEnt // 4-ary min-heap ordered by (priority, seq)
	running int32      // slot index of the running request, -1 when idle
	onIdle  func()

	complete Timer
	idleEvt  Timer
	seq      int64

	// BusyTime accumulates total executed time, for utilization accounting
	// in tests.
	BusyTime time.Duration
}

// NewProcessor returns an idle processor bound to the engine.
func NewProcessor(eng *Engine, id int) *Processor {
	return &Processor{ID: id, eng: eng, running: -1}
}

// SetIdleCallback installs fn to be called (via a zero-delay event) whenever
// the processor transitions from busy to idle. Passing nil disables it.
func (p *Processor) SetIdleCallback(fn func()) { p.onIdle = fn }

// Idle reports whether the processor has no running or ready work.
func (p *Processor) Idle() bool { return p.running < 0 && len(p.ready) == 0 }

// QueueLen returns the number of ready (not running) requests.
func (p *Processor) QueueLen() int { return len(p.ready) }

// allocReq takes a free request slot, growing the arena when needed.
func (p *Processor) allocReq() int32 {
	if n := len(p.free); n > 0 {
		idx := p.free[n-1]
		p.free = p.free[:n-1]
		return idx
	}
	p.slots = append(p.slots, reqSlot{})
	return int32(len(p.slots) - 1)
}

// freeReq recycles a completed slot, dropping every callback/payload
// reference so finished requests never pin dead job state.
func (p *Processor) freeReq(idx int32) {
	s := &p.slots[idx]
	s.gen++
	s.active = false
	s.label = ""
	s.onComplete = nil
	s.h = nil
	s.ev = Event{}
	s.ext = nil
	p.free = append(p.free, idx)
}

// Submit enqueues a request, preempting the running request if the new one
// has higher priority (smaller value). The request struct is copied into a
// pooled record; see ExecRequest.
func (p *Processor) Submit(r *ExecRequest) {
	if r == nil || r.Remaining <= 0 {
		panic(fmt.Sprintf("des: processor %d: invalid exec request %+v", p.ID, r))
	}
	if r.done {
		panic(fmt.Sprintf("des: processor %d: resubmitting completed request %q", p.ID, r.Label))
	}
	idx := p.allocReq()
	s := &p.slots[idx]
	s.label = r.Label
	s.prio = int32(r.Priority)
	s.remaining = r.Remaining
	s.onComplete = r.OnComplete
	s.h = nil
	s.ev = Event{}
	s.ext = r
	p.submitSlot(idx)
}

// SubmitEvent enqueues a unit of work whose completion delivers a typed
// event to h instead of invoking a closure. This is the allocation-free
// submission path used by the simulation binding's hot loop.
func (p *Processor) SubmitEvent(priority int, exec time.Duration, h EventHandler, ev Event) {
	if exec <= 0 {
		panic(fmt.Sprintf("des: processor %d: invalid execution time %v", p.ID, exec))
	}
	if h == nil {
		panic(fmt.Sprintf("des: processor %d: nil completion handler", p.ID))
	}
	idx := p.allocReq()
	s := &p.slots[idx]
	s.label = ""
	s.prio = int32(priority)
	s.remaining = exec
	s.onComplete = nil
	s.h = h
	s.ev = ev
	s.ext = nil
	p.submitSlot(idx)
}

// submitSlot dispatches a filled slot: start it, preempt for it, or queue it.
func (p *Processor) submitSlot(idx int32) {
	p.seq++
	s := &p.slots[idx]
	s.seq = p.seq
	s.active = true
	if p.running < 0 {
		p.start(idx)
		return
	}
	run := &p.slots[p.running]
	if s.prio < run.prio {
		p.preempt()
		p.readyPush(readyEnt{prio: run.prio, seq: run.seq, idx: p.running})
		p.running = -1
		p.start(idx)
		return
	}
	p.readyPush(readyEnt{prio: s.prio, seq: s.seq, idx: idx})
}

// preempt stops the running request, charging it for the time executed so
// far.
func (p *Processor) preempt() {
	run := &p.slots[p.running]
	ran := p.eng.Now() - run.started
	run.remaining -= ran
	p.BusyTime += ran
	p.complete.Cancel()
	p.complete = Timer{}
}

// start begins executing the slot and schedules its completion as a typed
// engine event carrying (slot, generation) — no closure.
func (p *Processor) start(idx int32) {
	p.running = idx
	s := &p.slots[idx]
	s.started = p.eng.Now()
	p.complete = p.eng.schedule(p.eng.now+s.remaining, dispatchProcComplete, nil, nil, p, Event{A: idx, B: int32(s.gen)})
}

// completeEvent is the engine's dispatch target for completion timers.
func (p *Processor) completeEvent(idx int32, gen uint32) {
	s := &p.slots[idx]
	if !s.active || s.gen != gen || p.running != idx {
		panic(fmt.Sprintf("des: processor %d: completion for stale request slot %d", p.ID, idx))
	}
	p.finish(idx)
}

// finish completes the running request, dispatches the next ready request,
// and arms the idle callback if the processor drained.
func (p *Processor) finish(idx int32) {
	s := &p.slots[idx]
	p.BusyTime += p.eng.Now() - s.started
	// Copy the completion dispatch and recycle before invoking, so the
	// callback can submit new work that reuses this slot and the processor
	// retains no reference to finished state.
	onComplete, h, ev, ext := s.onComplete, s.h, s.ev, s.ext
	p.running = -1
	p.complete = Timer{}
	p.freeReq(idx)
	if ext != nil {
		ext.Remaining = 0
		ext.done = true
		ext.OnComplete = nil
	}
	if onComplete != nil {
		onComplete()
	} else if h != nil {
		h.HandleEvent(ev)
	}
	// The completion callback may have submitted new local work
	// synchronously.
	if p.running < 0 && len(p.ready) > 0 {
		next := p.readyPop()
		p.start(next.idx)
	}
	if p.Idle() && p.onIdle != nil {
		p.armIdle()
	}
}

// armIdle schedules the idle callback at the current time (zero delay). The
// callback re-checks idleness when it runs, like a lowest-priority idle
// detector thread that only gets the CPU when nothing else is ready.
func (p *Processor) armIdle() {
	if p.idleEvt.Pending() {
		return
	}
	p.idleEvt = p.eng.schedule(p.eng.now, dispatchProcIdle, nil, nil, p, Event{})
}

// idleEvent is the engine's dispatch target for idle-detector timers.
func (p *Processor) idleEvent() {
	if p.Idle() && p.onIdle != nil {
		p.onIdle()
	}
}

// readyPush inserts an entry into the 4-ary ready heap.
func (p *Processor) readyPush(x readyEnt) {
	h := append(p.ready, x)
	i := len(h) - 1
	for i > 0 {
		par := (i - 1) / 4
		if !readyLess(h[i], h[par]) {
			break
		}
		h[i], h[par] = h[par], h[i]
		i = par
	}
	p.ready = h
}

// readyPop removes and returns the highest-priority ready entry, sifting the
// former tail down through a hole (one write per level instead of a swap).
// readyEnt holds no pointers, so the vacated tail slot needs no zeroing.
func (p *Processor) readyPop() readyEnt {
	h := p.ready
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			best, bv := c, h[c]
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if readyLess(h[j], bv) {
					best, bv = j, h[j]
				}
			}
			if !readyLess(bv, last) {
				break
			}
			h[i] = bv
			i = best
		}
		h[i] = last
	}
	p.ready = h
	return top
}

// Link models a point-to-point network path with a fixed one-way delay, used
// for event pushes and remote invocations between simulated nodes.
type Link struct {
	eng   *Engine
	delay time.Duration

	// Messages counts sends, for overhead accounting in tests.
	Messages int64
}

// NewLink returns a link with the given one-way delay. The paper's testbed
// measured a mean one-way delay of 322 µs on 100 Mbps Ethernet; simulation
// configs default to that figure.
func NewLink(eng *Engine, delay time.Duration) *Link {
	if delay < 0 {
		panic("des: negative link delay")
	}
	return &Link{eng: eng, delay: delay}
}

// Delay returns the one-way delay of the link.
func (l *Link) Delay() time.Duration { return l.delay }

// Send delivers fn after the link's one-way delay.
func (l *Link) Send(fn func()) {
	l.Messages++
	l.eng.After(l.delay, fn)
}

// SendEvent delivers a typed event to h after the link's one-way delay — the
// allocation-free counterpart of Send.
func (l *Link) SendEvent(h EventHandler, ev Event) {
	l.Messages++
	l.eng.AfterEvent(l.delay, h, ev)
}
