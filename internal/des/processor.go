package des

import (
	"container/heap"
	"fmt"
	"time"
)

// ExecRequest is one unit of work submitted to a simulated processor: a
// subjob with a fixed-priority dispatch thread, per the paper's F/I and Last
// Subtask components.
type ExecRequest struct {
	// Label identifies the request in traces and tests.
	Label string
	// Priority orders requests; smaller values preempt larger ones (EDMS
	// priorities start at one for the shortest deadline).
	Priority int
	// Remaining is the execution time still owed. The processor decrements
	// it across preemptions.
	Remaining time.Duration
	// OnComplete runs (inside the engine) when the request finishes.
	OnComplete func()

	seq     int64
	started time.Duration
	done    bool
}

// reqHeap orders ready requests by (priority, submission order).
type reqHeap []*ExecRequest

func (h reqHeap) Len() int { return len(h) }
func (h reqHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority < h[j].Priority
	}
	return h[i].seq < h[j].seq
}
func (h reqHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *reqHeap) Push(x any)   { *h = append(*h, x.(*ExecRequest)) }
func (h *reqHeap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return r
}

// Processor simulates a single CPU under preemptive fixed-priority
// scheduling. Submitting a request with a priority smaller than the running
// request's priority preempts it; the preempted request keeps its remaining
// execution time and resumes later.
//
// When the processor transitions to idle it invokes the idle callback via a
// zero-delay event, mirroring the paper's lowest-priority "idle detector"
// thread: the callback only fires if the processor is still idle when the
// event executes, so back-to-back completions and arrivals do not produce
// spurious idle reports.
type Processor struct {
	// ID numbers the processor within the cluster.
	ID int

	eng      *Engine
	ready    reqHeap
	running  *ExecRequest
	complete *Timer
	seq      int64
	onIdle   func()
	idleEvt  *Timer

	// BusyTime accumulates total executed time, for utilization accounting
	// in tests.
	BusyTime time.Duration
}

// NewProcessor returns an idle processor bound to the engine.
func NewProcessor(eng *Engine, id int) *Processor {
	return &Processor{ID: id, eng: eng}
}

// SetIdleCallback installs fn to be called (via a zero-delay event) whenever
// the processor transitions from busy to idle. Passing nil disables it.
func (p *Processor) SetIdleCallback(fn func()) { p.onIdle = fn }

// Idle reports whether the processor has no running or ready work.
func (p *Processor) Idle() bool { return p.running == nil && len(p.ready) == 0 }

// QueueLen returns the number of ready (not running) requests.
func (p *Processor) QueueLen() int { return len(p.ready) }

// Submit enqueues a request, preempting the running request if the new one
// has higher priority (smaller value).
func (p *Processor) Submit(r *ExecRequest) {
	if r == nil || r.Remaining <= 0 {
		panic(fmt.Sprintf("des: processor %d: invalid exec request %+v", p.ID, r))
	}
	if r.done {
		panic(fmt.Sprintf("des: processor %d: resubmitting completed request %q", p.ID, r.Label))
	}
	p.seq++
	r.seq = p.seq
	if p.running == nil {
		p.start(r)
		return
	}
	if r.Priority < p.running.Priority {
		p.preempt()
		heap.Push(&p.ready, p.running)
		p.running = nil
		p.start(r)
		return
	}
	heap.Push(&p.ready, r)
}

// preempt stops the running request, charging it for the time executed so
// far.
func (p *Processor) preempt() {
	ran := p.eng.Now() - p.running.started
	p.running.Remaining -= ran
	p.BusyTime += ran
	p.complete.Cancel()
	p.complete = nil
}

// start begins executing r and schedules its completion.
func (p *Processor) start(r *ExecRequest) {
	p.running = r
	r.started = p.eng.Now()
	p.complete = p.eng.After(r.Remaining, func() { p.finish(r) })
}

// finish completes the running request, dispatches the next ready request,
// and arms the idle callback if the processor drained.
func (p *Processor) finish(r *ExecRequest) {
	p.BusyTime += p.eng.Now() - r.started
	r.Remaining = 0
	r.done = true
	p.running = nil
	p.complete = nil
	if r.OnComplete != nil {
		r.OnComplete()
	}
	// OnComplete may have submitted new local work synchronously.
	if p.running == nil && len(p.ready) > 0 {
		next := heap.Pop(&p.ready).(*ExecRequest)
		p.start(next)
	}
	if p.Idle() && p.onIdle != nil {
		p.armIdle()
	}
}

// armIdle schedules the idle callback at the current time (zero delay). The
// callback re-checks idleness when it runs, like a lowest-priority idle
// detector thread that only gets the CPU when nothing else is ready.
func (p *Processor) armIdle() {
	if p.idleEvt != nil && p.idleEvt.Pending() {
		return
	}
	p.idleEvt = p.eng.After(0, func() {
		if p.Idle() && p.onIdle != nil {
			p.onIdle()
		}
	})
}

// Link models a point-to-point network path with a fixed one-way delay, used
// for event pushes and remote invocations between simulated nodes.
type Link struct {
	eng   *Engine
	delay time.Duration

	// Messages counts sends, for overhead accounting in tests.
	Messages int64
}

// NewLink returns a link with the given one-way delay. The paper's testbed
// measured a mean one-way delay of 322 µs on 100 Mbps Ethernet; simulation
// configs default to that figure.
func NewLink(eng *Engine, delay time.Duration) *Link {
	if delay < 0 {
		panic("des: negative link delay")
	}
	return &Link{eng: eng, delay: delay}
}

// Delay returns the one-way delay of the link.
func (l *Link) Delay() time.Duration { return l.delay }

// Send delivers fn after the link's one-way delay.
func (l *Link) Send(fn func()) {
	l.Messages++
	l.eng.After(l.delay, fn)
}
