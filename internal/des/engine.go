// Package des provides a deterministic discrete-event simulation substrate:
// a virtual clock with cancellable timers, preemptive fixed-priority
// processor models, and fixed-delay network links.
//
// The paper's schedulability experiments (Figures 5 and 6) ran on a
// six-machine KURT-Linux testbed with kernel-supported real-time priorities.
// Go's runtime cannot pin OS real-time priorities for goroutines, so this
// package substitutes a virtual-time simulation in which priorities and
// preemption are exact and runs are perfectly reproducible. The live
// bindings (internal/orb, internal/eventchan) cover the parts of the
// evaluation that need real clocks.
//
// The engine is single-threaded: callbacks run inside Run, one at a time, in
// (time, sequence) order. Events scheduled at equal times fire in the order
// they were scheduled.
package des

import (
	"container/heap"
	"fmt"
	"time"
)

// Timer is a handle to a scheduled callback. Cancelling an already-fired or
// already-cancelled timer is a no-op.
type Timer struct {
	at      time.Duration
	seq     int64
	fn      func()
	cancel  bool
	fired   bool
	heapIdx int
	inHeap  bool
}

// Cancel prevents the callback from firing. It reports whether the timer was
// still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.cancel || t.fired {
		return false
	}
	t.cancel = true
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool { return t != nil && !t.cancel && !t.fired }

// timerHeap orders timers by (time, sequence).
type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*Timer)
	t.heapIdx = len(*h)
	t.inHeap = true
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.inHeap = false
	*h = old[:n-1]
	return t
}

// Engine is the simulation core. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     time.Duration
	seq     int64
	pending timerHeap
	fired   int64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time as an offset from simulation start.
func (e *Engine) Now() time.Duration { return e.now }

// Fired returns the number of callbacks executed so far. Intended for tests
// and instrumentation.
func (e *Engine) Fired() int64 { return e.fired }

// At schedules fn to run at the given absolute virtual time. Scheduling in
// the past (before Now) panics: it indicates a simulation logic bug, not a
// recoverable condition.
func (e *Engine) At(at time.Duration, fn func()) *Timer {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("des: scheduling nil callback")
	}
	e.seq++
	t := &Timer{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.pending, t)
	return t
}

// After schedules fn to run d from now. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	return e.At(e.now+d, fn)
}

// Step executes the next pending event, advancing the clock to its time. It
// reports whether an event was executed.
func (e *Engine) Step() bool {
	for e.pending.Len() > 0 {
		t := heap.Pop(&e.pending).(*Timer)
		if t.cancel {
			continue
		}
		e.now = t.at
		t.fired = true
		e.fired++
		t.fn()
		return true
	}
	return false
}

// RunUntil executes events in order until the queue is empty or the next
// event is strictly after the horizon. The clock finishes at the horizon (or
// at the last event time if later events remain).
func (e *Engine) RunUntil(horizon time.Duration) {
	for e.pending.Len() > 0 {
		// Peek without popping: cancelled timers are skipped lazily.
		t := e.pending[0]
		if t.cancel {
			heap.Pop(&e.pending)
			continue
		}
		if t.at > horizon {
			break
		}
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// PendingCount returns the number of scheduled, not-yet-cancelled events.
func (e *Engine) PendingCount() int {
	n := 0
	for _, t := range e.pending {
		if !t.cancel {
			n++
		}
	}
	return n
}
