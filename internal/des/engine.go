// Package des provides a deterministic discrete-event simulation substrate:
// a virtual clock with cancellable timers, preemptive fixed-priority
// processor models, and fixed-delay network links.
//
// The paper's schedulability experiments (Figures 5 and 6) ran on a
// six-machine KURT-Linux testbed with kernel-supported real-time priorities.
// Go's runtime cannot pin OS real-time priorities for goroutines, so this
// package substitutes a virtual-time simulation in which priorities and
// preemption are exact and runs are perfectly reproducible. The live
// bindings (internal/orb, internal/eventchan) cover the parts of the
// evaluation that need real clocks.
//
// The engine is single-threaded: callbacks run inside Run, one at a time, in
// (time, sequence) order. Events scheduled at equal times fire in the order
// they were scheduled.
//
// # Allocation-free hot path
//
// The engine is built for large sweeps (hundreds of processors, tens of
// thousands of tasks), so the per-event machinery avoids the heap entirely:
//
//   - timers live in a pooled slot arena recycled through a free list; a
//     Timer handle is a value (engine, slot, generation) triple, and the
//     generation counter keeps Cancel/Pending safe after the slot has been
//     recycled for a later event;
//   - the pending queue is an inlined 4-ary heap over (time, seq, slot)
//     records — no container/heap, no interface boxing, no per-operation
//     method values, and comparisons touch only inline fields;
//   - besides closure callbacks (At/After), events can carry a small typed
//     payload (AtEvent/AfterEvent) dispatched to an EventHandler, so the
//     dominant simulation paths schedule events without capturing state in
//     a fresh closure.
//
// The paper-simple implementation (heap-allocated timers boxed through
// container/heap) is retained in reference.go; a differential property test
// proves the two produce identical (time, seq) firing traces.
package des

import (
	"fmt"
	"time"
)

// Event is a small typed payload delivered to an EventHandler when its timer
// fires. The fields have no fixed meaning to the engine; handlers define
// their own Kind space and field conventions. Carrying state here instead of
// in a captured closure is what keeps the simulation hot path allocation
// free.
type Event struct {
	// Kind selects the handler's dispatch arm.
	Kind int32
	// A and B are small operands (typically pool indices or stage numbers).
	A, B int32
	// N is a wide operand (typically a job number).
	N int64
	// D is a duration operand (typically an arrival time).
	D time.Duration
}

// EventHandler consumes typed events scheduled with AtEvent/AfterEvent.
// Implementations are usually a single struct with a jump table over
// Event.Kind.
type EventHandler interface {
	HandleEvent(ev Event)
}

// dispatch kinds for pooled timer slots.
const (
	dispatchNone uint8 = iota // slot is free
	dispatchFunc
	dispatchHandler
	dispatchProcComplete
	dispatchProcIdle
)

// slot is one pooled timer record. Slots are recycled through Engine.free;
// gen increments on every recycle so stale Timer handles go inert instead of
// touching the slot's new occupant.
type slot struct {
	at        time.Duration
	seq       int64
	gen       uint32
	dispatch  uint8
	cancelled bool
	ev        Event
	fn        func()
	h         EventHandler
	proc      *Processor
}

// Timer is a handle to a scheduled callback. It is a plain value — copying
// it is cheap and the zero value is inert. Cancelling an already-fired or
// already-cancelled timer is a no-op.
type Timer struct {
	e   *Engine
	idx int32
	gen uint32
}

// Cancel prevents the callback from firing. It reports whether the timer was
// still pending. The slot's callback and payload references are dropped
// immediately so a long drain cannot pin dead state; the slot itself is
// recycled lazily when the heap pops it.
func (t Timer) Cancel() bool {
	if t.e == nil {
		return false
	}
	s := &t.e.slots[t.idx]
	if s.gen != t.gen || s.dispatch == dispatchNone || s.cancelled {
		return false
	}
	s.cancelled = true
	s.fn = nil
	s.h = nil
	s.proc = nil
	s.ev = Event{}
	t.e.live--
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t Timer) Pending() bool {
	if t.e == nil {
		return false
	}
	s := &t.e.slots[t.idx]
	return s.gen == t.gen && s.dispatch != dispatchNone && !s.cancelled
}

// heapEnt is one pending-queue record: the ordering key inline plus the slot
// index, so heap comparisons never chase a pointer.
type heapEnt struct {
	at  time.Duration
	seq int64
	idx int32
}

func entLess(a, b heapEnt) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// Engine is the simulation core. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now   time.Duration
	seq   int64
	fired int64
	live  int // scheduled, not-yet-cancelled events — O(1) PendingCount
	slots []slot
	free  []int32
	heap  []heapEnt // 4-ary min-heap ordered by (at, seq)
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time as an offset from simulation start.
func (e *Engine) Now() time.Duration { return e.now }

// Fired returns the number of callbacks executed so far. Intended for tests
// and instrumentation.
func (e *Engine) Fired() int64 { return e.fired }

// alloc takes a free slot, growing the arena when the free list is empty.
//
//rtmw:noalloc
func (e *Engine) alloc() int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		return idx
	}
	e.slots = append(e.slots, slot{})
	return int32(len(e.slots) - 1)
}

// recycle returns a popped slot to the free list, bumping its generation so
// outstanding handles go inert, and dropping every callback/payload
// reference so fired or cancelled events never pin dead state.
//
//rtmw:noalloc
func (e *Engine) recycle(idx int32) {
	s := &e.slots[idx]
	s.gen++
	s.dispatch = dispatchNone
	s.cancelled = false
	s.fn = nil
	s.h = nil
	s.proc = nil
	s.ev = Event{}
	e.free = append(e.free, idx)
}

// schedule is the single scheduling entry point behind At/AtEvent and the
// processor-internal event kinds.
//
//rtmw:noalloc
func (e *Engine) schedule(at time.Duration, dispatch uint8, fn func(), h EventHandler, proc *Processor, ev Event) Timer {
	if at < e.now {
		//rtmw:ignore noalloc programmer-error panic path, never taken in steady state
		panic(fmt.Sprintf("des: scheduling at %v before now %v", at, e.now))
	}
	e.seq++
	idx := e.alloc()
	s := &e.slots[idx]
	s.at = at
	s.seq = e.seq
	s.dispatch = dispatch
	s.cancelled = false
	s.fn = fn
	s.h = h
	s.proc = proc
	s.ev = ev
	e.heapPush(heapEnt{at: at, seq: e.seq, idx: idx})
	e.live++
	return Timer{e: e, idx: idx, gen: s.gen}
}

// At schedules fn to run at the given absolute virtual time. Scheduling in
// the past (before Now) panics: it indicates a simulation logic bug, not a
// recoverable condition.
func (e *Engine) At(at time.Duration, fn func()) Timer {
	if fn == nil {
		panic("des: scheduling nil callback")
	}
	return e.schedule(at, dispatchFunc, fn, nil, nil, Event{})
}

// After schedules fn to run d from now. Negative d panics.
func (e *Engine) After(d time.Duration, fn func()) Timer {
	return e.At(e.now+d, fn)
}

// AtEvent schedules a typed event for h at the given absolute virtual time.
// Unlike At, no closure is involved: the payload travels in the pooled slot,
// so steady-state scheduling does not allocate.
//
//rtmw:noalloc
func (e *Engine) AtEvent(at time.Duration, h EventHandler, ev Event) Timer {
	if h == nil {
		panic("des: scheduling nil event handler")
	}
	return e.schedule(at, dispatchHandler, nil, h, nil, ev)
}

// AfterEvent schedules a typed event for h at d from now.
//
//rtmw:noalloc
func (e *Engine) AfterEvent(d time.Duration, h EventHandler, ev Event) Timer {
	return e.AtEvent(e.now+d, h, ev)
}

// Step executes the next pending event, advancing the clock to its time. It
// reports whether an event was executed.
//
//rtmw:noalloc
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ent := e.heapPop()
		s := &e.slots[ent.idx]
		if s.cancelled {
			e.recycle(ent.idx)
			continue
		}
		// Copy the dispatch fields and recycle before invoking, so the
		// callback can schedule new events straight into this slot and the
		// engine retains no reference to fired state.
		dispatch, fn, h, proc, ev := s.dispatch, s.fn, s.h, s.proc, s.ev
		e.recycle(ent.idx)
		e.live--
		e.now = ent.at
		e.fired++
		switch dispatch {
		case dispatchFunc:
			fn()
		case dispatchHandler:
			h.HandleEvent(ev)
		case dispatchProcComplete:
			proc.completeEvent(ev.A, uint32(ev.B))
		case dispatchProcIdle:
			proc.idleEvent()
		}
		return true
	}
	return false
}

// RunUntil executes events in order until the queue is empty or the next
// event is strictly after the horizon. The clock finishes at the horizon (or
// at the last event time if later events remain).
//
//rtmw:noalloc
func (e *Engine) RunUntil(horizon time.Duration) {
	for len(e.heap) > 0 {
		// Peek without popping: cancelled timers are recycled lazily.
		top := e.heap[0]
		if e.slots[top.idx].cancelled {
			e.heapPop()
			e.recycle(top.idx)
			continue
		}
		if top.at > horizon {
			break
		}
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// Run executes events until the queue is empty.
//
//rtmw:noalloc
func (e *Engine) Run() {
	for e.Step() {
	}
}

// PendingCount returns the number of scheduled, not-yet-cancelled events.
// It is O(1): the engine keeps a live counter instead of scanning the heap,
// so invariant audits inside hot test loops stay cheap.
func (e *Engine) PendingCount() int { return e.live }

// heapPush inserts an entry into the 4-ary heap.
//
//rtmw:noalloc
func (e *Engine) heapPush(x heapEnt) {
	e.heap = append(e.heap, x)
	h := e.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !entLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

// heapPop removes and returns the minimum entry, sifting the former tail
// down through a hole (one write per level instead of a swap). heapEnt holds
// no pointers, so the vacated tail slot needs no zeroing.
//
//rtmw:noalloc
func (e *Engine) heapPop() heapEnt {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			best, bv := c, h[c]
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if entLess(h[j], bv) {
					best, bv = j, h[j]
				}
			}
			if !entLess(bv, last) {
				break
			}
			h[i] = bv
			i = best
		}
		h[i] = last
	}
	e.heap = h
	return top
}
