package des

// This file retains the paper-simple simulation substrate exactly as it
// stood before the pooled engine landed: heap-allocated timers boxed through
// container/heap's any interface, closure callbacks on every path, and a
// binary heap. It is the ground truth for the differential property test
// (TestEngineDifferential / TestProcessorDifferential drive random
// schedule/cancel/preempt sequences through both implementations and assert
// identical (time, seq, fired) traces) and the baseline for the engine
// microbenchmarks — the same retained-reference pattern as
// sched.referenceAdmissible and orb.WithLegacyWriter.

import (
	"container/heap"
	"fmt"
	"time"
)

// refTimer is the reference engine's timer: one heap allocation per event,
// holding its callback closure until the record is garbage collected.
type refTimer struct {
	at     time.Duration
	seq    int64
	fn     func()
	cancel bool
	fired  bool
}

// Cancel prevents the callback from firing. It reports whether the timer was
// still pending.
func (t *refTimer) Cancel() bool {
	if t == nil || t.cancel || t.fired {
		return false
	}
	t.cancel = true
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t *refTimer) Pending() bool { return t != nil && !t.cancel && !t.fired }

// refTimerHeap orders timers by (time, sequence).
type refTimerHeap []*refTimer

func (h refTimerHeap) Len() int { return len(h) }
func (h refTimerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refTimerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refTimerHeap) Push(x any)   { *h = append(*h, x.(*refTimer)) }
func (h *refTimerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// refEngine is the reference simulation core.
type refEngine struct {
	now     time.Duration
	seq     int64
	pending refTimerHeap
	fired   int64
}

func newRefEngine() *refEngine { return &refEngine{} }

func (e *refEngine) Now() time.Duration { return e.now }
func (e *refEngine) Fired() int64       { return e.fired }

// At schedules fn to run at the given absolute virtual time.
func (e *refEngine) At(at time.Duration, fn func()) *refTimer {
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("des: scheduling nil callback")
	}
	e.seq++
	t := &refTimer{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.pending, t)
	return t
}

// After schedules fn to run d from now.
func (e *refEngine) After(d time.Duration, fn func()) *refTimer {
	return e.At(e.now+d, fn)
}

// Step executes the next pending event, advancing the clock to its time.
func (e *refEngine) Step() bool {
	for e.pending.Len() > 0 {
		t := heap.Pop(&e.pending).(*refTimer)
		if t.cancel {
			continue
		}
		e.now = t.at
		t.fired = true
		e.fired++
		t.fn()
		return true
	}
	return false
}

// RunUntil executes events in order until the queue is empty or the next
// event is strictly after the horizon.
func (e *refEngine) RunUntil(horizon time.Duration) {
	for e.pending.Len() > 0 {
		t := e.pending[0]
		if t.cancel {
			heap.Pop(&e.pending)
			continue
		}
		if t.at > horizon {
			break
		}
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// Run executes events until the queue is empty.
func (e *refEngine) Run() {
	for e.Step() {
	}
}

// PendingCount returns the number of scheduled, not-yet-cancelled events by
// scanning the heap — the O(n) cost the live counter replaced.
func (e *refEngine) PendingCount() int {
	n := 0
	for _, t := range e.pending {
		if !t.cancel {
			n++
		}
	}
	return n
}

// refExecRequest is the reference processor's heap-allocated work record.
type refExecRequest struct {
	Label      string
	Priority   int
	Remaining  time.Duration
	OnComplete func()

	seq     int64
	started time.Duration
	done    bool
}

// refReqHeap orders ready requests by (priority, submission order).
type refReqHeap []*refExecRequest

func (h refReqHeap) Len() int { return len(h) }
func (h refReqHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority < h[j].Priority
	}
	return h[i].seq < h[j].seq
}
func (h refReqHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refReqHeap) Push(x any)   { *h = append(*h, x.(*refExecRequest)) }
func (h *refReqHeap) Pop() any {
	old := *h
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return r
}

// refProcessor is the reference preemptive fixed-priority processor.
type refProcessor struct {
	ID int

	eng      *refEngine
	ready    refReqHeap
	running  *refExecRequest
	complete *refTimer
	seq      int64
	onIdle   func()
	idleEvt  *refTimer

	BusyTime time.Duration
}

func newRefProcessor(eng *refEngine, id int) *refProcessor {
	return &refProcessor{ID: id, eng: eng}
}

func (p *refProcessor) SetIdleCallback(fn func()) { p.onIdle = fn }

func (p *refProcessor) Idle() bool { return p.running == nil && len(p.ready) == 0 }

func (p *refProcessor) QueueLen() int { return len(p.ready) }

// Submit enqueues a request, preempting the running request if the new one
// has higher priority (smaller value).
func (p *refProcessor) Submit(r *refExecRequest) {
	if r == nil || r.Remaining <= 0 {
		panic(fmt.Sprintf("des: processor %d: invalid exec request %+v", p.ID, r))
	}
	if r.done {
		panic(fmt.Sprintf("des: processor %d: resubmitting completed request %q", p.ID, r.Label))
	}
	p.seq++
	r.seq = p.seq
	if p.running == nil {
		p.start(r)
		return
	}
	if r.Priority < p.running.Priority {
		p.preempt()
		heap.Push(&p.ready, p.running)
		p.running = nil
		p.start(r)
		return
	}
	heap.Push(&p.ready, r)
}

func (p *refProcessor) preempt() {
	ran := p.eng.Now() - p.running.started
	p.running.Remaining -= ran
	p.BusyTime += ran
	p.complete.Cancel()
	p.complete = nil
}

func (p *refProcessor) start(r *refExecRequest) {
	p.running = r
	r.started = p.eng.Now()
	p.complete = p.eng.After(r.Remaining, func() { p.finish(r) })
}

func (p *refProcessor) finish(r *refExecRequest) {
	p.BusyTime += p.eng.Now() - r.started
	r.Remaining = 0
	r.done = true
	p.running = nil
	p.complete = nil
	if r.OnComplete != nil {
		r.OnComplete()
	}
	if p.running == nil && len(p.ready) > 0 {
		next := heap.Pop(&p.ready).(*refExecRequest)
		p.start(next)
	}
	if p.Idle() && p.onIdle != nil {
		p.armIdle()
	}
}

func (p *refProcessor) armIdle() {
	if p.idleEvt != nil && p.idleEvt.Pending() {
		return
	}
	p.idleEvt = p.eng.After(0, func() {
		if p.Idle() && p.onIdle != nil {
			p.onIdle()
		}
	})
}
