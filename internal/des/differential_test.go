package des

import (
	"math/rand"
	"testing"
	"time"
)

// traceRec is one fired event in a differential trace: the virtual time it
// fired at plus the logical identity assigned at scheduling time. Two
// engines driven by the same operation sequence must produce identical
// traces — same events, same order, same clock readings.
type traceRec struct {
	at time.Duration
	id int
}

// TestEngineDifferential drives random schedule/cancel/step/run-until
// sequences through the pooled engine and the retained reference engine and
// asserts identical (time, seq, fired) behavior, including nested scheduling
// from inside callbacks and handles cancelled long after their slots have
// been recycled.
func TestEngineDifferential(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		eng := NewEngine()
		ref := newRefEngine()

		var gotNew, gotRef []traceRec
		var handles []Timer
		var refHandles []*refTimer
		nextID := 0

		// schedule registers the same logical event on both engines; with
		// probability 1/4 the callback schedules a follow-up event, so the
		// trace exercises nested scheduling and slot reuse inside Step.
		var schedule func(at time.Duration)
		schedule = func(at time.Duration) {
			id := nextID
			nextID++
			nested := rng.Intn(4) == 0
			var nestedDelay time.Duration
			if nested {
				nestedDelay = time.Duration(rng.Intn(20)) * time.Millisecond
			}
			handles = append(handles, eng.At(at, func() {
				gotNew = append(gotNew, traceRec{at: eng.Now(), id: id})
				if nested {
					// Nested events are recorded under a derived ID; both
					// engines derive it identically.
					nid := -id - 1
					eng.After(nestedDelay, func() {
						gotNew = append(gotNew, traceRec{at: eng.Now(), id: nid})
					})
				}
			}))
			refHandles = append(refHandles, ref.At(at, func() {
				gotRef = append(gotRef, traceRec{at: ref.Now(), id: id})
				if nested {
					nid := -id - 1
					ref.After(nestedDelay, func() {
						gotRef = append(gotRef, traceRec{at: ref.Now(), id: nid})
					})
				}
			}))
		}

		ops := 200 + rng.Intn(400)
		for op := 0; op < ops; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3:
				schedule(eng.Now() + time.Duration(rng.Intn(500))*time.Millisecond)
			case 4:
				// Same-instant events must fire FIFO on both engines.
				at := eng.Now() + time.Duration(rng.Intn(50))*time.Millisecond
				for i := 0; i < 1+rng.Intn(4); i++ {
					schedule(at)
				}
			case 5, 6:
				if len(handles) > 0 {
					i := rng.Intn(len(handles))
					cNew := handles[i].Cancel()
					cRef := refHandles[i].Cancel()
					if cNew != cRef {
						t.Fatalf("seed %d: Cancel disagreement on handle %d: pooled %v, reference %v", seed, i, cNew, cRef)
					}
				}
			case 7:
				for i := 0; i < 1+rng.Intn(10); i++ {
					sNew := eng.Step()
					sRef := ref.Step()
					if sNew != sRef {
						t.Fatalf("seed %d: Step disagreement: pooled %v, reference %v", seed, sNew, sRef)
					}
				}
			case 8:
				h := eng.Now() + time.Duration(rng.Intn(800))*time.Millisecond
				eng.RunUntil(h)
				ref.RunUntil(h)
			case 9:
				// Pending/PendingCount parity on a random handle plus the
				// aggregate counter (O(1) pooled vs O(n) reference scan).
				if len(handles) > 0 {
					i := rng.Intn(len(handles))
					if pNew, pRef := handles[i].Pending(), refHandles[i].Pending(); pNew != pRef {
						t.Fatalf("seed %d: Pending disagreement on handle %d: pooled %v, reference %v", seed, i, pNew, pRef)
					}
				}
				if eng.PendingCount() != ref.PendingCount() {
					t.Fatalf("seed %d: PendingCount %d != reference %d", seed, eng.PendingCount(), ref.PendingCount())
				}
			}
			if eng.Now() != ref.Now() {
				t.Fatalf("seed %d: clock drift: pooled %v, reference %v", seed, eng.Now(), ref.Now())
			}
		}
		eng.Run()
		ref.Run()

		if eng.Fired() != ref.Fired() {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, eng.Fired(), ref.Fired())
		}
		if len(gotNew) != len(gotRef) {
			t.Fatalf("seed %d: trace length %d != reference %d", seed, len(gotNew), len(gotRef))
		}
		for i := range gotNew {
			if gotNew[i] != gotRef[i] {
				t.Fatalf("seed %d: trace diverges at %d: pooled %+v, reference %+v", seed, i, gotNew[i], gotRef[i])
			}
		}
		if eng.PendingCount() != 0 || ref.PendingCount() != 0 {
			t.Fatalf("seed %d: events left pending after Run", seed)
		}
	}
}

// TestProcessorDifferential drives random submit/preempt workloads (with
// idle detection armed) through the pooled processor and the reference
// processor and asserts identical completion traces, busy time, and idle
// callback counts.
func TestProcessorDifferential(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		eng := NewEngine()
		ref := newRefEngine()
		proc := NewProcessor(eng, 0)
		refProc := newRefProcessor(ref, 0)

		var gotNew, gotRef []traceRec
		idlesNew, idlesRef := 0, 0
		proc.SetIdleCallback(func() { idlesNew++ })
		refProc.SetIdleCallback(func() { idlesRef++ })

		n := 20 + rng.Intn(80)
		for i := 0; i < n; i++ {
			id := i
			arrival := time.Duration(rng.Intn(2000)) * time.Millisecond
			exec := time.Duration(1+rng.Intn(80)) * time.Millisecond
			prio := 1 + rng.Intn(6)
			chain := rng.Intn(5) == 0
			var chainExec time.Duration
			if chain {
				chainExec = time.Duration(1+rng.Intn(20)) * time.Millisecond
			}
			eng.At(arrival, func() {
				proc.SubmitEvent(prio, exec, completionRecorder{
					rec: func() {
						gotNew = append(gotNew, traceRec{at: eng.Now(), id: id})
						if chain {
							// Chained local work submitted from inside the
							// completion, mirroring the sim's same-processor
							// stage hand-off.
							proc.SubmitEvent(prio, chainExec, completionRecorder{rec: func() {
								gotNew = append(gotNew, traceRec{at: eng.Now(), id: -id - 1})
							}}, Event{})
						}
					},
				}, Event{})
			})
			ref.At(arrival, func() {
				refProc.Submit(&refExecRequest{
					Priority:  prio,
					Remaining: exec,
					OnComplete: func() {
						gotRef = append(gotRef, traceRec{at: ref.Now(), id: id})
						if chain {
							refProc.Submit(&refExecRequest{
								Priority:  prio,
								Remaining: chainExec,
								OnComplete: func() {
									gotRef = append(gotRef, traceRec{at: ref.Now(), id: -id - 1})
								},
							})
						}
					},
				})
			})
		}
		eng.Run()
		ref.Run()

		if len(gotNew) != len(gotRef) {
			t.Fatalf("seed %d: completion trace length %d != reference %d", seed, len(gotNew), len(gotRef))
		}
		for i := range gotNew {
			if gotNew[i] != gotRef[i] {
				t.Fatalf("seed %d: completion trace diverges at %d: pooled %+v, reference %+v", seed, i, gotNew[i], gotRef[i])
			}
		}
		if proc.BusyTime != refProc.BusyTime {
			t.Fatalf("seed %d: busy time %v != reference %v", seed, proc.BusyTime, refProc.BusyTime)
		}
		if idlesNew != idlesRef {
			t.Fatalf("seed %d: idle callbacks %d != reference %d", seed, idlesNew, idlesRef)
		}
		if !proc.Idle() || !refProc.Idle() {
			t.Fatalf("seed %d: processor not idle after drain", seed)
		}
		if proc.QueueLen() != 0 || refProc.QueueLen() != 0 {
			t.Fatalf("seed %d: ready queues not drained: pooled %d, reference %d", seed, proc.QueueLen(), refProc.QueueLen())
		}
	}
}

// completionRecorder adapts a func to EventHandler for the differential
// test's typed submissions.
type completionRecorder struct{ rec func() }

func (c completionRecorder) HandleEvent(Event) { c.rec() }

// TestTimerHandleSafetyAfterRecycle pins the generation-counter contract:
// a handle whose slot has been recycled for a later event must stay inert —
// Cancel returns false and must not cancel the slot's new occupant.
func TestTimerHandleSafetyAfterRecycle(t *testing.T) {
	e := NewEngine()
	fired := 0
	first := e.At(time.Millisecond, func() { fired++ })
	if !e.Step() {
		t.Fatal("no event to step")
	}
	// The slot is free now; the next timer reuses it.
	second := e.At(2*time.Millisecond, func() { fired++ })
	if first.Pending() {
		t.Error("stale handle reports pending after recycle")
	}
	if first.Cancel() {
		t.Error("stale handle cancelled a recycled slot")
	}
	if !second.Pending() {
		t.Error("stale Cancel hit the slot's new occupant")
	}
	e.Run()
	if fired != 2 {
		t.Errorf("fired %d events, want 2", fired)
	}
}
