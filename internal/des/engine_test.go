package des

import (
	"testing"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30*time.Millisecond, func() { got = append(got, 3) })
	e.At(10*time.Millisecond, func() { got = append(got, 1) })
	e.At(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
	if e.Now() != 30*time.Millisecond {
		t.Errorf("Now() = %v, want 30ms", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("Fired() = %d, want 3", e.Fired())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events ran out of order: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	timer := e.After(time.Millisecond, func() { ran = true })
	if !timer.Pending() {
		t.Error("fresh timer not pending")
	}
	if !timer.Cancel() {
		t.Error("Cancel returned false for pending timer")
	}
	if timer.Cancel() {
		t.Error("second Cancel returned true")
	}
	e.Run()
	if ran {
		t.Error("cancelled callback ran")
	}
	if timer.Pending() {
		t.Error("cancelled timer still pending")
	}
	var zero Timer
	if zero.Cancel() {
		t.Error("zero-value timer Cancel returned true")
	}
	if zero.Pending() {
		t.Error("zero-value timer reports pending")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(10*time.Millisecond, func() { got = append(got, 1) })
	e.At(50*time.Millisecond, func() { got = append(got, 2) })
	e.RunUntil(20 * time.Millisecond)
	if len(got) != 1 {
		t.Fatalf("RunUntil executed %d events, want 1", len(got))
	}
	if e.Now() != 20*time.Millisecond {
		t.Errorf("Now() = %v, want horizon 20ms", e.Now())
	}
	if e.PendingCount() != 1 {
		t.Errorf("PendingCount() = %d, want 1", e.PendingCount())
	}
	e.RunUntil(time.Second)
	if len(got) != 2 {
		t.Fatalf("second RunUntil executed %d total, want 2", len(got))
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var got []string
	e.At(time.Millisecond, func() {
		got = append(got, "a")
		e.After(time.Millisecond, func() { got = append(got, "b") })
		e.After(0, func() { got = append(got, "a2") })
	})
	e.Run()
	want := []string{"a", "a2", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(time.Second, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.At(time.Millisecond, func() {})
}

func TestEngineNilCallbackPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	e.At(time.Second, nil)
}
