package des

import (
	"math/rand"
	"testing"
	"time"
)

// TestProcessorWorkConservation drives random job sets through the
// preemptive processor and checks the fundamental scheduling invariants:
// every job completes exactly once, total busy time equals total submitted
// execution time, and no job finishes before its arrival plus execution
// time.
func TestProcessorWorkConservation(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		eng := NewEngine()
		p := NewProcessor(eng, 0)

		type jobRec struct {
			arrival  time.Duration
			exec     time.Duration
			done     time.Duration
			finished bool
		}
		n := 5 + rng.Intn(40)
		jobs := make([]*jobRec, n)
		var totalExec time.Duration
		for i := 0; i < n; i++ {
			j := &jobRec{
				arrival: time.Duration(rng.Intn(1000)) * time.Millisecond,
				exec:    time.Duration(1+rng.Intn(50)) * time.Millisecond,
			}
			jobs[i] = j
			totalExec += j.exec
			prio := 1 + rng.Intn(5)
			eng.At(j.arrival, func() {
				p.Submit(&ExecRequest{
					Priority:  prio,
					Remaining: j.exec,
					OnComplete: func() {
						if j.finished {
							t.Error("job completed twice")
						}
						j.finished = true
						j.done = eng.Now()
					},
				})
			})
		}
		eng.Run()

		for i, j := range jobs {
			if !j.finished {
				t.Fatalf("seed %d: job %d never completed", seed, i)
			}
			if j.done < j.arrival+j.exec {
				t.Errorf("seed %d: job %d finished at %v, before arrival %v + exec %v",
					seed, i, j.done, j.arrival, j.exec)
			}
		}
		if p.BusyTime != totalExec {
			t.Errorf("seed %d: busy time %v != total submitted execution %v", seed, p.BusyTime, totalExec)
		}
		if !p.Idle() {
			t.Errorf("seed %d: processor not idle after drain", seed)
		}
	}
}

// TestProcessorPriorityDominance checks that whenever a strictly
// higher-priority job is pending, lower-priority jobs submitted at the same
// instant never complete first.
func TestProcessorPriorityDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		eng := NewEngine()
		p := NewProcessor(eng, 0)
		var order []int
		// All jobs arrive at t=0 with distinct priorities and random
		// execution times: completion order must equal priority order.
		n := 2 + rng.Intn(6)
		eng.At(0, func() {
			perm := rng.Perm(n)
			for _, prio := range perm {
				prio := prio
				p.Submit(&ExecRequest{
					Priority:   prio,
					Remaining:  time.Duration(1+rng.Intn(30)) * time.Millisecond,
					OnComplete: func() { order = append(order, prio) },
				})
			}
		})
		eng.Run()
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				t.Fatalf("trial %d: completion order %v violates priority order", trial, order)
			}
		}
	}
}
