package des

import (
	"testing"
	"time"
)

func TestProcessorRunsInPriorityOrder(t *testing.T) {
	e := NewEngine()
	p := NewProcessor(e, 0)
	var got []string
	submit := func(label string, prio int, exec time.Duration) {
		p.Submit(&ExecRequest{
			Label:      label,
			Priority:   prio,
			Remaining:  exec,
			OnComplete: func() { got = append(got, label) },
		})
	}
	// All submitted at t=0; "low" starts first but completes last because
	// higher-priority arrivals run before the ready queue is consulted.
	e.At(0, func() {
		submit("low", 5, 10*time.Millisecond)
		submit("high", 1, 10*time.Millisecond)
		submit("mid", 3, 10*time.Millisecond)
	})
	e.Run()
	want := []string{"high", "mid", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("completion order %v, want %v", got, want)
		}
	}
}

func TestProcessorPreemption(t *testing.T) {
	e := NewEngine()
	p := NewProcessor(e, 0)
	var events []string
	var lowDone, highDone time.Duration
	e.At(0, func() {
		p.Submit(&ExecRequest{
			Label: "low", Priority: 10, Remaining: 100 * time.Millisecond,
			OnComplete: func() { events = append(events, "low"); lowDone = e.Now() },
		})
	})
	e.At(30*time.Millisecond, func() {
		p.Submit(&ExecRequest{
			Label: "high", Priority: 1, Remaining: 20 * time.Millisecond,
			OnComplete: func() { events = append(events, "high"); highDone = e.Now() },
		})
	})
	e.Run()
	if len(events) != 2 || events[0] != "high" || events[1] != "low" {
		t.Fatalf("completion order %v, want [high low]", events)
	}
	// high: 30ms arrival + 20ms exec = 50ms. low: 100ms exec + 20ms
	// preemption = 120ms.
	if highDone != 50*time.Millisecond {
		t.Errorf("high completed at %v, want 50ms", highDone)
	}
	if lowDone != 120*time.Millisecond {
		t.Errorf("low completed at %v, want 120ms", lowDone)
	}
	if p.BusyTime != 120*time.Millisecond {
		t.Errorf("BusyTime = %v, want 120ms", p.BusyTime)
	}
}

func TestProcessorEqualPriorityFIFO(t *testing.T) {
	e := NewEngine()
	p := NewProcessor(e, 0)
	var got []string
	e.At(0, func() {
		for _, label := range []string{"a", "b", "c"} {
			label := label
			p.Submit(&ExecRequest{
				Label: label, Priority: 2, Remaining: time.Millisecond,
				OnComplete: func() { got = append(got, label) },
			})
		}
	})
	e.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("equal-priority order %v, want %v", got, want)
		}
	}
}

func TestProcessorNoPreemptionByEqualPriority(t *testing.T) {
	e := NewEngine()
	p := NewProcessor(e, 0)
	var first string
	e.At(0, func() {
		p.Submit(&ExecRequest{Label: "running", Priority: 2, Remaining: 50 * time.Millisecond,
			OnComplete: func() {
				if first == "" {
					first = "running"
				}
			}})
	})
	e.At(10*time.Millisecond, func() {
		p.Submit(&ExecRequest{Label: "later", Priority: 2, Remaining: time.Millisecond,
			OnComplete: func() {
				if first == "" {
					first = "later"
				}
			}})
	})
	e.Run()
	if first != "running" {
		t.Errorf("equal-priority arrival preempted the running request")
	}
}

func TestProcessorIdleCallback(t *testing.T) {
	e := NewEngine()
	p := NewProcessor(e, 0)
	idles := 0
	p.SetIdleCallback(func() { idles++ })
	e.At(0, func() {
		p.Submit(&ExecRequest{Label: "j1", Priority: 1, Remaining: 10 * time.Millisecond})
	})
	// Back-to-back work arriving exactly at completion time: the idle
	// detector runs at the same virtual instant but after the arrival, so no
	// idle report happens in between.
	e.At(10*time.Millisecond, func() {
		p.Submit(&ExecRequest{Label: "j2", Priority: 1, Remaining: 5 * time.Millisecond})
	})
	e.Run()
	if idles != 1 {
		t.Errorf("idle callback fired %d times, want 1 (only after final drain)", idles)
	}
	if !p.Idle() {
		t.Error("processor should be idle after run")
	}
}

func TestProcessorIdleNotSpuriousDuringChain(t *testing.T) {
	e := NewEngine()
	p := NewProcessor(e, 0)
	idles := 0
	p.SetIdleCallback(func() { idles++ })
	// A completion that immediately submits local follow-up work inside
	// OnComplete must not trigger an idle report.
	e.At(0, func() {
		p.Submit(&ExecRequest{Label: "first", Priority: 1, Remaining: time.Millisecond,
			OnComplete: func() {
				p.Submit(&ExecRequest{Label: "second", Priority: 1, Remaining: time.Millisecond})
			}})
	})
	e.Run()
	if idles != 1 {
		t.Errorf("idle callback fired %d times, want 1", idles)
	}
}

func TestProcessorSubmitValidation(t *testing.T) {
	e := NewEngine()
	p := NewProcessor(e, 0)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("nil request", func() { p.Submit(nil) })
	mustPanic("zero remaining", func() { p.Submit(&ExecRequest{Remaining: 0}) })
	done := &ExecRequest{Remaining: time.Millisecond, done: true}
	mustPanic("completed request", func() { p.Submit(done) })
}

func TestLinkDelay(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 322*time.Microsecond)
	var at time.Duration
	e.At(time.Millisecond, func() {
		l.Send(func() { at = e.Now() })
	})
	e.Run()
	want := time.Millisecond + 322*time.Microsecond
	if at != want {
		t.Errorf("message delivered at %v, want %v", at, want)
	}
	if l.Messages != 1 {
		t.Errorf("Messages = %d, want 1", l.Messages)
	}
	if l.Delay() != 322*time.Microsecond {
		t.Errorf("Delay() = %v", l.Delay())
	}
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	NewLink(e, -time.Second)
}
