// Package noalloc exercises the allocation-construct checks on annotated
// functions, including the sanctioned amortized append shapes.
package noalloc

import "fmt"

type ent struct {
	at  int64
	idx int
}

type engine struct {
	heap    []ent
	scratch []int
	label   string
}

func sinkAny(v interface{})  {}
func sinkErr(err error)      {}
func sinkPtr(p *engine)      {}
func variadic(vs ...any)     {}
func helper(x int) int       { return x }
func (e *engine) step() bool { return len(e.heap) > 0 }

//rtmw:noalloc
func closures(e *engine) {
	f := func() {} // want `closure literal in noalloc function`
	f()
}

//rtmw:noalloc
func fmtCall(e *engine) {
	fmt.Println(e.label) // want `call into package fmt allocates`
}

//rtmw:noalloc
func badAppend(e *engine, x ent) {
	h := append(e.heap, x) // want `unbounded append: result does not land back in its source`
	_ = h
}

//rtmw:noalloc
func goodAppend(e *engine, x ent) {
	e.heap = append(e.heap, x)
	e.scratch = append(e.scratch[:0], 1, 2)
}

//rtmw:noalloc
func paramAppend(buf []int, v int) []int {
	return append(buf, v)
}

//rtmw:noalloc
func returnForeignAppend(e *engine, v int) []int {
	return append(e.scratch, v) // want `unbounded append`
}

//rtmw:noalloc
func makeNew(n int) {
	s := make([]int, n) // want `make allocates`
	p := new(engine)    // want `new allocates`
	_, _ = s, p
}

//rtmw:noalloc
func lazyInit(e *engine, n int) {
	if e.scratch == nil {
		//rtmw:ignore noalloc one-time lazy scratch growth, amortized to zero
		e.scratch = make([]int, n)
	}
}

//rtmw:noalloc
func addrLit() *engine {
	return &engine{} // want `&composite-literal allocates`
}

//rtmw:noalloc
func sliceLit() {
	s := []int{1, 2, 3} // want `slice literal allocates its backing store`
	m := map[int]int{}  // want `map literal allocates its backing store`
	_, _ = s, m
}

//rtmw:noalloc
func valueLit() ent {
	return ent{at: 1, idx: 2} // value composite literals stay on the stack
}

//rtmw:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//rtmw:noalloc
func boxing(e *engine, n int) {
	sinkAny(n)     // want `interface boxing: int passed as interface\{\} allocates`
	sinkAny(e)     // pointers fit the interface word: no boxing
	variadic(*e)   // want `variadic call allocates its argument slice` `interface boxing`
	variadic(e, e) // want `variadic call allocates its argument slice`
	sinkErr(nil)
}

//rtmw:noalloc
func conversions(b []byte, s string) {
	x := string(b) // want `string\(\[\]byte\) conversion copies`
	y := []byte(s) // want `\[\]byte\(string\) conversion copies`
	_, _ = x, y
}

//rtmw:noalloc
func cleanHotPath(e *engine, x ent) bool {
	for e.step() {
		e.heap = append(e.heap, x)
		if helper(len(e.heap)) > 4 {
			return true
		}
	}
	return false
}

// unannotated may allocate freely: none of this is flagged.
func unannotated(e *engine, n int) *engine {
	s := make([]int, n)
	f := func() {}
	f()
	_ = s
	_ = fmt.Sprintf("%d", n)
	return &engine{}
}
