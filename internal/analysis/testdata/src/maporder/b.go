// File-level determinism scope: every function in this file is on the
// deterministic path.
//
//rtmw:deterministic file
package maporder

func wholeFile(m map[int]int) int {
	sum := 0
	for _, v := range m { // want `map iteration on a determinism-critical path`
		sum += v
	}
	return sum
}

func wholeFileIdiom(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
