// Package maporder exercises the determinism-scope map-iteration checks.
package maporder

import "sort"

type pair struct {
	k string
	v int
}

//rtmw:deterministic
func render(m map[string]int) []string {
	for k := range m { // want `map iteration on a determinism-critical path`
		_ = k
	}

	// The collect-then-sort idiom is recognized without an annotation.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Collecting values (or fields of the loop variables) is fine too.
	vals := make([]int, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}

	total := 0
	//rtmw:ignore maporder order-insensitive accumulation into a scalar
	for _, v := range m {
		total += v
	}
	return keys
}

//rtmw:deterministic
func computedCollect(m map[string]int) []pair {
	var pairs []pair
	for k, v := range m { // want `map iteration on a determinism-critical path`
		pairs = append(pairs, pair{k, v})
	}
	return pairs
}

//rtmw:deterministic
func sliceRangeFine(s []int) int {
	total := 0
	for _, v := range s {
		total += v
	}
	return total
}

// unannotated functions in an unannotated file iterate maps freely.
func unannotated(m map[string]int) {
	for k := range m {
		_ = k
	}
}
