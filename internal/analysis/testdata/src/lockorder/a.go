// Package lockorder fixes the sharded-ledger locking lattice in miniature:
// rank 1 indexed shard mutexes, the rank 2 cross-registry mutex, and rank 3
// leaf mutexes (journal, route stripes).
package lockorder

import (
	"math/bits"
	"sync"
)

type shard struct {
	mu sync.Mutex //rtmw:lockrank 1 indexed
	n  int
}

type stripe struct {
	mu sync.Mutex //rtmw:lockrank 3 indexed
	m  map[int]uint64
}

type journal struct {
	mu  sync.Mutex //rtmw:lockrank 3
	ops []int
}

type ledger struct {
	shards  []shard
	crossMu sync.Mutex //rtmw:lockrank 2
	stripes [32]stripe
	journal journal
}

// lockAllAscending is the sanctioned whole-ledger pattern.
func (l *ledger) lockAllAscending() {
	for i := 0; i < len(l.shards); i++ {
		l.shards[i].mu.Lock()
	}
	l.crossMu.Lock()
	l.journal.mu.Lock()
	l.journal.mu.Unlock()
	l.crossMu.Unlock()
	for i := range l.shards {
		l.shards[i].mu.Unlock()
	}
}

// maskWalk locks the shards of a mask via the lowest-set-bit walk.
func (l *ledger) maskWalk(mask uint64) {
	for m := mask; m != 0; m &= m - 1 {
		l.shards[bits.TrailingZeros64(m)].mu.Lock()
	}
	l.crossMu.Lock()
	l.crossMu.Unlock()
	for m := mask; m != 0; m &= m - 1 {
		l.shards[bits.TrailingZeros64(m)].mu.Unlock()
	}
}

// rangeAscending locks every shard through a range loop.
func (l *ledger) rangeAscending() {
	for i := range l.shards {
		l.shards[i].mu.Lock()
	}
	for i := range l.shards {
		l.shards[i].mu.Unlock()
	}
}

// shardUnderCross violates "crossMu nests inside the shard locks".
func (l *ledger) shardUnderCross(s int) {
	l.crossMu.Lock()
	l.shards[s].mu.Lock() // want `acquires shard\.mu \(rank 1\) while holding ledger\.crossMu \(rank 2\)`
	l.shards[s].mu.Unlock()
	l.crossMu.Unlock()
}

// crossUnderJournal violates "leaves are acquired last".
func (l *ledger) crossUnderJournal() {
	l.journal.mu.Lock()
	l.crossMu.Lock() // want `acquires ledger\.crossMu \(rank 2\) while holding journal\.mu \(rank 3\)`
	l.crossMu.Unlock()
	l.journal.mu.Unlock()
}

// stripeUnderJournal nests two leaf classes: no order is defined.
func (l *ledger) stripeUnderJournal(i int) {
	l.journal.mu.Lock()
	l.stripes[i].mu.Lock() // want `acquires stripe\.mu while holding journal\.mu: both rank 3`
	l.stripes[i].mu.Unlock()
	l.journal.mu.Unlock()
}

// twoSites takes two shard locks from different call sites: ascending order
// cannot be proven.
func (l *ledger) twoSites(a, b int) {
	l.shards[a].mu.Lock()
	l.shards[b].mu.Lock() // want `second shard\.mu instance at a different call site`
	l.shards[b].mu.Unlock()
	l.shards[a].mu.Unlock()
}

// descending holds shard locks across iterations of a descending loop.
func (l *ledger) descending() {
	for i := len(l.shards) - 1; i >= 0; i-- {
		l.shards[i].mu.Lock() // want `without an ascending-index proof`
	}
	for i := range l.shards {
		l.shards[i].mu.Unlock()
	}
}

// reacquire self-deadlocks on a non-indexed mutex.
func (l *ledger) reacquire() {
	l.crossMu.Lock()
	l.crossMu.Lock() // want `re-acquires ledger\.crossMu while already holding it`
	l.crossMu.Unlock()
	l.crossMu.Unlock()
}

// loopNoUnlock re-locks crossMu on the second iteration.
func (l *ledger) loopNoUnlock(n int) {
	for i := 0; i < n; i++ {
		l.crossMu.Lock() // want `still held at the end of the body: the next iteration self-deadlocks`
		l.journal.ops = append(l.journal.ops, i)
	}
}

// sequentialShards is fine: the first lock is released before the second.
func (l *ledger) sequentialShards(a, b int) {
	l.shards[a].mu.Lock()
	l.shards[a].mu.Unlock()
	l.shards[b].mu.Lock()
	l.shards[b].mu.Unlock()
}

// deferredCross holds crossMu to the end of the function via defer; taking
// a shard lock below it must still be flagged.
func (l *ledger) deferredCross(s int) {
	l.crossMu.Lock()
	defer l.crossMu.Unlock()
	l.journal.mu.Lock()
	l.journal.mu.Unlock()
	l.shards[s].mu.Lock() // want `acquires shard\.mu \(rank 1\) while holding ledger\.crossMu \(rank 2\)`
	l.shards[s].mu.Unlock()
}

// branchMerge: the early-return branch releases, the fall-through path does
// not — the analyzer must keep crossMu held on the fall-through.
func (l *ledger) branchMerge(s int, bail bool) {
	l.crossMu.Lock()
	if bail {
		l.crossMu.Unlock()
		return
	}
	l.shards[s].mu.Lock() // want `while holding ledger\.crossMu`
	l.shards[s].mu.Unlock()
	l.crossMu.Unlock()
}

// bothBranchesRelease merges to an empty held set: no finding.
func (l *ledger) bothBranchesRelease(s int, a bool) {
	l.crossMu.Lock()
	if a {
		l.crossMu.Unlock()
	} else {
		l.crossMu.Unlock()
	}
	l.shards[s].mu.Lock()
	l.shards[s].mu.Unlock()
}

// viaLocal resolves the shard mutex through a local pointer.
func (l *ledger) viaLocal(s int) {
	sh := &l.shards[s]
	l.crossMu.Lock()
	sh.mu.Lock() // want `while holding ledger\.crossMu`
	sh.mu.Unlock()
	l.crossMu.Unlock()
}

// ignored documents a deliberate (fixture-only) suppression.
func (l *ledger) ignored(s int) {
	l.crossMu.Lock()
	//rtmw:ignore lockorder fixture exercising the suppression path
	l.shards[s].mu.Lock()
	l.shards[s].mu.Unlock()
	l.crossMu.Unlock()
}
