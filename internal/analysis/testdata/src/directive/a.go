// Package directive exercises the annotation-grammar checks.
package directive

//rtmw:bogus // want `unknown rtmw directive "bogus"`
func unknownKind() {}

//rtmw:ignore noalloc // want `the reason is mandatory`
func missingReason() {}

//rtmw:ignore nosuchanalyzer because reasons // want `names unknown analyzer "nosuchanalyzer"`
func unknownAnalyzer() {}

//rtmw:deterministic sometimes // want `takes no argument or the single word`
func badDeterministicArg() {}

//rtmw:noalloc really // want `takes no arguments`
func badNoallocArg() {}

type s struct {
	a int //rtmw:lockrank nine // want `rank "nine" is not an integer`
	b int //rtmw:lockrank 2 sharded // want `second argument must be .indexed.`
	c int //rtmw:lockrank 1 indexed
}

//rtmw:noalloc
func wellFormed() {}
