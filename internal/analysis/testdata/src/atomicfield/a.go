// Package atomicfield exercises the all-or-nothing atomic-access check.
package atomicfield

import (
	"sync"
	"sync/atomic"
)

type stats struct {
	arrived  int64
	released int64
	plain    int64 // never touched atomically: plain access is fine
	flag     uint32
}

type server struct {
	mu    sync.Mutex
	stats stats
}

func (s *server) hot() {
	atomic.AddInt64(&s.stats.arrived, 1)
	atomic.AddInt64(&s.stats.released, 1)
	atomic.StoreUint32(&s.stats.flag, 1)
}

func (s *server) snapshot() (int64, int64) {
	return atomic.LoadInt64(&s.stats.arrived), atomic.LoadInt64(&s.stats.released)
}

// badRead races hot(): holding mu does not serialize against atomic adders.
func (s *server) badRead() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.arrived // want `plain access to field arrived`
}

// badWrite is a lost-update race with the atomic adders.
func (s *server) badWrite() {
	s.stats.released = 0 // want `plain access to field released`
	s.stats.flag++       // want `plain access to field flag`
}

// plainField was never accessed atomically: not tracked.
func (s *server) plainField() int64 {
	s.stats.plain++
	return s.stats.plain
}

// ignored documents a deliberate pre-publication initialization.
func newServer() *server {
	s := &server{}
	//rtmw:ignore atomicfield pre-publication init, no concurrent readers yet
	s.stats.arrived = 0
	return s
}
