// Package sentinelwrap exercises %w discipline for typed Err* sentinels.
package sentinelwrap

import (
	"errors"
	"fmt"
)

var (
	ErrStopped  = errors.New("stopped")
	ErrNodeDown = errors.New("node down")
	auxiliary   = errors.New("not a sentinel by name")
)

func wrapped(task string) error {
	return fmt.Errorf("te %q: %w", task, ErrStopped)
}

func flattenedV(task string) error {
	return fmt.Errorf("te %q: %v", task, ErrStopped) // want `sentinel ErrStopped formatted with %v: use %w`
}

func flattenedS(node int) error {
	return fmt.Errorf("node %d: %s", node, ErrNodeDown) // want `sentinel ErrNodeDown formatted with %s: use %w`
}

func notASentinel() error {
	return fmt.Errorf("aux: %v", auxiliary) // lowercase name: not part of the sentinel surface
}

func dynamicErr(err error) error {
	return fmt.Errorf("op failed: %v", err) // non-sentinel values may flatten
}

func twoSentinels() error {
	return fmt.Errorf("%v then %w", ErrStopped, ErrNodeDown) // want `sentinel ErrStopped formatted with %v`
}

func widthAndFlags(n int) error {
	return fmt.Errorf("%-4d %v", n, ErrStopped) // want `sentinel ErrStopped formatted with %v`
}
