package analysis

import (
	"go/ast"
	"go/types"
)

// NoAlloc rejects per-call allocation constructs inside functions annotated
// `//rtmw:noalloc` — the static complement to benchguard's 0 allocs/op
// runtime pins on the des event loop, Ledger.Admissible/TestAndAdd, the
// autopilot ingest/tick path, and the TE cached-submit path.
//
// Flagged: closure literals, calls into package fmt, make/new,
// &composite-literal, slice/map composite literals, string concatenation,
// string<->[]byte conversions, interface boxing (a concrete non-pointer
// value passed where an interface is expected), and unbounded append.
// Append is allowed in exactly the two amortized scratch-reuse shapes the
// hot paths use: `x = append(x, ...)` (including `x = append(x[:0], ...)`)
// where the result lands back in the same variable or field, and
// `return append(p, ...)` where p is a parameter (caller-owned buffer).
// One-time lazy scratch growth must carry an explicit
// `//rtmw:ignore noalloc <reason>`.
//
// The check is intraprocedural: callees are vetted by their own annotation
// (or by benchguard), not transitively.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc: "reject per-call allocation constructs (closures, fmt, boxing, " +
		"unbounded append, make/new, &composite, string concat) in " +
		"//rtmw:noalloc functions",
	Run: runNoAlloc,
}

func runNoAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !FuncDirective(fn, "noalloc") {
				continue
			}
			checkNoAlloc(pass, fn)
		}
	}
	return nil
}

func checkNoAlloc(pass *Pass, fn *ast.FuncDecl) {
	allowedAppends := collectAllowedAppends(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in noalloc function (captures escape to the heap)")
			return false // its body is the closure's problem, not this path's
		case *ast.CompositeLit:
			t := pass.Info.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "%s literal allocates its backing store", kindName(t))
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite-literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if t := pass.Info.TypeOf(n); t != nil && isString(t) {
					pass.Reportf(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.CallExpr:
			checkNoAllocCall(pass, n, allowedAppends)
		}
		return true
	})
}

func checkNoAllocCall(pass *Pass, call *ast.CallExpr, allowedAppends map[*ast.CallExpr]bool) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	switch {
	case tv.IsType(): // conversion
		checkConversion(pass, call, tv.Type)
	case tv.IsBuiltin():
		name := builtinName(call.Fun)
		switch name {
		case "append":
			if !allowedAppends[call] {
				pass.Reportf(call.Pos(),
					"unbounded append: result does not land back in its source (want `x = append(x, ...)` or `return append(param, ...)`)")
			}
		case "make":
			pass.Reportf(call.Pos(), "make allocates; one-time lazy growth needs //rtmw:ignore noalloc <reason>")
		case "new":
			pass.Reportf(call.Pos(), "new allocates; one-time lazy growth needs //rtmw:ignore noalloc <reason>")
		}
	default:
		if callsPackage(pass, call, "fmt") {
			pass.Reportf(call.Pos(), "call into package fmt allocates (and boxes every operand)")
			return
		}
		checkBoxing(pass, call)
	}
}

// checkConversion flags conversions that copy memory or box.
func checkConversion(pass *Pass, call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := pass.Info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	switch target.Underlying().(type) {
	case *types.Interface:
		if boxes(src) {
			pass.Reportf(call.Pos(), "conversion of %s to interface boxes on the heap", src)
		}
	case *types.Slice:
		if isString(src) {
			pass.Reportf(call.Pos(), "[]byte(string) conversion copies and allocates")
		}
	case *types.Basic:
		if isString(target) && !isString(src) {
			if _, ok := src.Underlying().(*types.Slice); ok {
				pass.Reportf(call.Pos(), "string([]byte) conversion copies and allocates")
			}
		}
	}
}

// checkBoxing flags concrete non-pointer-shaped arguments passed where the
// callee expects an interface: the conversion materializes the value on the
// heap.
func checkBoxing(pass *Pass, call *ast.CallExpr) {
	sig, ok := pass.Info.TypeOf(call.Fun).Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= params.Len() {
		pass.Reportf(call.Pos(), "variadic call allocates its argument slice")
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... forwards the slice, no per-element boxing
			}
			param = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			param = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := param.Underlying().(*types.Interface); !isIface {
			continue
		}
		if _, isTypeParam := param.(*types.TypeParam); isTypeParam {
			continue
		}
		at := pass.Info.TypeOf(arg)
		if at == nil || !boxes(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "interface boxing: %s passed as %s allocates", at, param)
	}
}

// boxes reports whether converting a value of type t to an interface
// allocates: concrete non-pointer-shaped values do; pointers, channels,
// maps, funcs, unsafe pointers, and values already behind an interface fit
// the interface word.
func boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil && u.Kind() != types.Invalid
	default:
		return true
	}
}

// collectAllowedAppends finds append calls in the two sanctioned amortized
// shapes (see the analyzer doc).
func collectAllowedAppends(pass *Pass, fn *ast.FuncDecl) map[*ast.CallExpr]bool {
	allowed := make(map[*ast.CallExpr]bool)
	params := make(map[types.Object]bool)
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := appendCall(pass, rhs)
				if !ok || len(call.Args) == 0 {
					continue
				}
				if n.Tok.String() == "=" && exprText(n.Lhs[i]) == exprText(sliceBase(call.Args[0])) {
					allowed[call] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				call, ok := appendCall(pass, res)
				if !ok || len(call.Args) == 0 {
					continue
				}
				if ident, ok := sliceBase(call.Args[0]).(*ast.Ident); ok && params[pass.Info.Uses[ident]] {
					allowed[call] = true
				}
			}
		}
		return true
	})
	return allowed
}

func appendCall(pass *Pass, e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	if tv, ok := pass.Info.Types[call.Fun]; !ok || !tv.IsBuiltin() || builtinName(call.Fun) != "append" {
		return nil, false
	}
	return call, true
}

// sliceBase strips slicing and parens: base of `x[:0]` is `x`.
func sliceBase(e ast.Expr) ast.Expr {
	for {
		switch t := e.(type) {
		case *ast.SliceExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return e
		}
	}
}

func exprText(e ast.Expr) string { return types.ExprString(e) }

func builtinName(fun ast.Expr) string {
	if ident, ok := ast.Unparen(fun).(*ast.Ident); ok {
		return ident.Name
	}
	return ""
}

// callsPackage reports whether call invokes a function of the named
// standard-library package.
func callsPackage(pass *Pass, call *ast.CallExpr, pkgPath string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[ident].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
