// Package analysistest checks rtmw-vet analyzers against fixture packages
// annotated with `// want` comments, mirroring the shape of
// golang.org/x/tools/go/analysis/analysistest on the homegrown framework.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads the fixture package under dir (every .go file), runs the
// analyzer over it through the same pipeline cmd/rtmw-vet uses (including
// //rtmw:ignore filtering), and checks the diagnostics against `// want`
// comments:
//
//	m.Lock() // want `while holding`
//	x = 1    // want `plain access` `second finding on the same line`
//
// Each backquoted string is a regexp that must match one diagnostic on that
// line; diagnostics on lines without a matching want, and wants without a
// diagnostic, fail the test.
func Run(t testing.TB, dir string, a *analysis.Analyzer) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files under %s (%v)", dir, err)
	}
	sort.Strings(files)
	moduleDir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.LoadFiles(moduleDir, "fixture/"+filepath.Base(dir), files)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, dir, err)
	}
	checkWants(t, pkg.Fset, pkg, diags)
}

type wantSpec struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("`([^`]*)`")

// checkWants compares diagnostics against // want comments line by line.
func checkWants(t testing.TB, fset *token.FileSet, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*wantSpec
	for _, f := range pkg.Files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &wantSpec{file: pos.Filename, line: pos.Line, re: re, raw: m[1]})
				}
			}
		}
	}
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Position.Filename || w.line != d.Position.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want `%s`", w.file, w.line, w.raw)
		}
	}
}
