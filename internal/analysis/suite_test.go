package analysis_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestLockOrder(t *testing.T)   { analysistest.Run(t, fixture("lockorder"), analysis.LockOrder) }
func TestNoAlloc(t *testing.T)     { analysistest.Run(t, fixture("noalloc"), analysis.NoAlloc) }
func TestMapOrder(t *testing.T)    { analysistest.Run(t, fixture("maporder"), analysis.MapOrder) }
func TestAtomicField(t *testing.T) { analysistest.Run(t, fixture("atomicfield"), analysis.AtomicField) }
func TestSentinelWrap(t *testing.T) {
	analysistest.Run(t, fixture("sentinelwrap"), analysis.SentinelWrap)
}
func TestDirectives(t *testing.T) { analysistest.Run(t, fixture("directive"), analysis.Directives) }

// TestLookup pins the analyzer registry the -only flag and //rtmw:ignore
// grammar check resolve against.
func TestLookup(t *testing.T) {
	for _, name := range []string{"lockorder", "noalloc", "maporder", "atomicfield", "sentinelwrap", "directive"} {
		if analysis.Lookup(name) == nil {
			t.Errorf("Lookup(%q) = nil", name)
		}
	}
	if analysis.Lookup("nope") != nil {
		t.Errorf("Lookup(nope) != nil")
	}
	if len(analysis.Suite) != 6 {
		t.Errorf("Suite has %d analyzers, want 6", len(analysis.Suite))
	}
}

// TestRepoClean runs the full suite over the whole module, pinning the
// acceptance criterion `go run ./cmd/rtmw-vet ./...` exits clean — any
// invariant regression fails here before CI's lint job sees it.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages, expected the whole module", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := analysis.RunPackage(pkg, analysis.Suite)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
