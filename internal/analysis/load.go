package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// A Package is one type-checked unit of analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList enumerates packages (and, with -deps, their transitive imports)
// with export data compiled, from the module rooted at dir.
func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{
		"list", "-e", "-deps", "-export",
		"-json=Dir,ImportPath,Name,GoFiles,Export,Standard,DepOnly,Error",
	}, args...)...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errb.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// expImporter resolves imports from the export data `go list -export`
// reported, caching across the packages of one load.
type expImporter struct {
	gc      types.ImporterFrom
	exports map[string]string
}

func newExpImporter(fset *token.FileSet, exports map[string]string) *expImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	return &expImporter{gc: imp.(types.ImporterFrom), exports: exports}
}

func (e *expImporter) Import(path string) (*types.Package, error) {
	return e.ImportFrom(path, "", 0)
}

func (e *expImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.gc.ImportFrom(path, dir, mode)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := newInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Load enumerates the packages matching patterns in the module rooted at
// dir, parses their non-test sources, and type-checks them with imports
// satisfied from export data. It is the module-analysis entry point used by
// cmd/rtmw-vet.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	imp := newExpImporter(fset, exports)
	var out []*Package
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, err := typeCheck(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadFiles parses and type-checks a loose set of Go files as one package —
// the fixture loader behind RunFixture. Imports (standard library only, by
// construction of the fixtures) are resolved from export data compiled on
// demand; moduleDir anchors the `go list` invocation.
func LoadFiles(moduleDir, pkgPath string, filenames []string) (*Package, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(filenames))
	importSet := make(map[string]bool)
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			path := spec.Path.Value
			importSet[path[1:len(path)-1]] = true
		}
	}
	delete(importSet, "unsafe")
	imports := make([]string, 0, len(importSet))
	for path := range importSet {
		imports = append(imports, path)
	}
	sort.Strings(imports)
	exports := make(map[string]string)
	if len(imports) > 0 {
		pkgs, err := goList(moduleDir, imports...)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return typeCheck(fset, pkgPath, files, newExpImporter(fset, exports))
}
