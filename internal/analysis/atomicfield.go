package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicField enforces all-or-nothing atomicity per field: a struct field
// whose address is passed to a sync/atomic function anywhere in the package
// must be accessed through sync/atomic everywhere in the package. One plain
// read racing atomic writers is still a data race — and unlike -race, this
// check does not need the racy interleaving to actually run.
//
// Fields of the atomic.* wrapper types (atomic.Int64, atomic.Pointer, ...)
// need no checking: their only access surface is already atomic. The scope
// is one package per pass, matching where such fields are declared and
// (package-internally) mutated; genuinely pre-publication initialization
// can justify an //rtmw:ignore.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "a struct field accessed via sync/atomic anywhere must be " +
		"accessed atomically everywhere in the package",
	Run: runAtomicField,
}

func runAtomicField(pass *Pass) error {
	type firstUse struct {
		node ast.Node
		fn   string // atomic function name, for the diagnostic
	}
	// Pass 1: fields used atomically, and the selector chains those
	// sanctioned uses own.
	atomicOf := make(map[*types.Var]firstUse)
	sanctioned := make(map[ast.Node]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := atomicCallName(pass, call)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				field, ok := fieldOf(pass, sel)
				if !ok {
					continue
				}
				if _, seen := atomicOf[field]; !seen {
					atomicOf[field] = firstUse{node: un, fn: name}
				}
				markSanctioned(sanctioned, sel)
			}
			return true
		})
	}
	if len(atomicOf) == 0 {
		return nil
	}

	// Pass 2: every other access to those fields is a plain (racy) access.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			field, ok := fieldOf(pass, sel)
			if !ok {
				return true
			}
			use, isAtomic := atomicOf[field]
			if !isAtomic {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"plain access to field %s, which is accessed with atomic.%s at %s: every access must go through sync/atomic",
				field.Name(), use.fn, pass.Fset.Position(use.node.Pos()))
			return true
		})
	}
	return nil
}

// atomicCallName matches calls to the function forms of sync/atomic
// (atomic.AddInt64, atomic.LoadUint32, ...). Methods on the atomic.Int64
// family don't take addresses of plain fields and need no tracking.
func atomicCallName(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.Info.Uses[ident].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return "", false
	}
	return sel.Sel.Name, true
}

// fieldOf resolves a selector to the struct field it selects, if any.
func fieldOf(pass *Pass, sel *ast.SelectorExpr) (*types.Var, bool) {
	if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v, true
		}
		return nil, false
	}
	if v, ok := pass.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v, true
	}
	return nil, false
}

// markSanctioned records the selector chain of one atomic access so pass 2
// does not flag the access that is itself atomic (`&te.Stats.Arrived`
// sanctions both the `.Arrived` selector and the inner `.Stats` one).
func markSanctioned(sanctioned map[ast.Node]bool, sel *ast.SelectorExpr) {
	sanctioned[sel] = true
	if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		markSanctioned(sanctioned, inner)
	}
}
