package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// SentinelWrap keeps errors.Is discrimination working: when a typed
// sentinel (a package-level `var ErrFoo = ...` of error type, like
// core.ErrStopped, scenario.ErrSpec, or cluster.ErrNodeDown) flows into
// fmt.Errorf, it must be formatted with %w. Formatting it with %v or %s
// flattens it to text — the returned error no longer matches
// `errors.Is(err, ErrFoo)` and every caller switching on the sentinel
// silently takes the wrong path.
var SentinelWrap = &Analyzer{
	Name: "sentinelwrap",
	Doc: "typed Err* sentinels passed to fmt.Errorf must be wrapped with " +
		"%w so errors.Is keeps working",
	Run: runSentinelWrap,
}

func runSentinelWrap(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isFmtErrorf(pass, call) || len(call.Args) < 2 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok || lit.Kind.String() != "STRING" {
				return true
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			verbs := formatVerbs(format)
			for i, arg := range call.Args[1:] {
				sentinel, ok := sentinelName(pass, arg)
				if !ok {
					continue
				}
				if i < len(verbs) && verbs[i] != 'w' {
					pass.Reportf(arg.Pos(),
						"sentinel %s formatted with %%%c: use %%w so errors.Is(err, %s) keeps working",
						sentinel, verbs[i], sentinel)
				}
			}
			return true
		})
	}
	return nil
}

func isFmtErrorf(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return false
	}
	return callsPackage(pass, call, "fmt")
}

// sentinelName matches a reference to a package-level error variable whose
// name starts with Err (possibly qualified, `core.ErrStopped`).
func sentinelName(pass *Pass, arg ast.Expr) (string, bool) {
	var obj types.Object
	var label string
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[e]
		label = e.Name
	case *ast.SelectorExpr:
		if pkg, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := pass.Info.Uses[pkg].(*types.PkgName); isPkg {
				obj = pass.Info.Uses[e.Sel]
				label = pkg.Name + "." + e.Sel.Name
			}
		}
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !strings.HasPrefix(v.Name(), "Err") || !implementsError(v.Type()) {
		return "", false
	}
	return label, true
}

func implementsError(t types.Type) bool {
	iface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// formatVerbs extracts the verb letter consuming each successive argument
// of a Printf-style format: flags, width, and precision are skipped, `*`
// consumes an argument of its own, and %% consumes none.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break // literal %%
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if (c >= '0' && c <= '9') || strings.ContainsRune("+-# .[]", rune(c)) {
				i++
				continue
			}
			// The verb letter.
			verbs = append(verbs, c)
			break
		}
	}
	return verbs
}
